#ifndef EPIDEMIC_LOG_AUX_LOG_H_
#define EPIDEMIC_LOG_AUX_LOG_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "log/log_vector.h"
#include "vv/version_vector.h"

namespace epidemic {

/// Redo information for one user update. The paper presents whole-data-item
/// copying (§2), so an operation is modelled as the complete new state the
/// update produced (value or tombstone); AcceptPropagation and intra-node
/// replay both install state wholesale.
struct UpdateOp {
  std::string new_value;
  bool deleted = false;  // true when the operation was a Delete
};

/// One record of the auxiliary log AUX_i (§4.4): `(m, x, v, op)` where `v`
/// is the IVV the *auxiliary* copy of x had when the update was applied
/// (excluding this update) and `op` carries enough to re-do the update.
/// Unlike log-vector records these can be large, but they are never sent
/// between nodes.
struct AuxRecord {
  uint64_t m = 0;  // position in the node's auxiliary update sequence
  ItemId item = 0;
  VersionVector vv;  // aux IVV before this update
  UpdateOp op;

  AuxRecord* prev = nullptr;  // global (whole-log) order
  AuxRecord* next = nullptr;
  AuxRecord* item_prev = nullptr;  // per-item order
  AuxRecord* item_next = nullptr;
};

/// The auxiliary log (§4.4): append-only sequence of updates applied to
/// out-of-bound (auxiliary) data items, supporting
///   * Earliest(x) — oldest record for item x — in O(1), and
///   * removal of any record (possibly mid-log) in O(1),
/// via a global doubly-linked list threaded with per-item sublists.
///
/// Thread-compatible, not thread-safe: owned by exactly one Replica and
/// serialized by whatever serializes that replica (the owning shard's
/// single-writer task section in the server deployment — DESIGN.md §11).
/// Its intrusive pointers must never be observed mid-splice, which is why
/// the mutating methods require the shard context (DESIGN.md §12).
class AuxLog {
 public:
  AuxLog() = default;
  ~AuxLog();

  AuxLog(const AuxLog&) = delete;
  AuxLog& operator=(const AuxLog&) = delete;

  /// Appends a record for `item`. `vv_before` is the auxiliary IVV at apply
  /// time, excluding the update being logged.
  AuxRecord* Append(ItemId item, const VersionVector& vv_before, UpdateOp op)
      REQUIRES_SHARD_CONTEXT;

  /// Earliest(x): the oldest record referring to `item`, or nullptr. O(1).
  AuxRecord* Earliest(ItemId item) const;

  /// Unlinks and frees `record`. O(1).
  void Remove(AuxRecord* record) REQUIRES_SHARD_CONTEXT;

  /// Drops every record referring to `item` (used when an auxiliary copy is
  /// abandoned). Linear in the number of records for that item.
  void RemoveAllForItem(ItemId item) REQUIRES_SHARD_CONTEXT;

  AuxRecord* head() const { return head_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Number of records currently held for `item`.
  size_t CountForItem(ItemId item) const;

 private:
  struct ItemChain {
    AuxRecord* head = nullptr;
    AuxRecord* tail = nullptr;
  };

  AuxRecord* head_ = nullptr;
  AuxRecord* tail_ = nullptr;
  size_t size_ = 0;
  uint64_t next_m_ = 1;
  std::unordered_map<ItemId, ItemChain> chains_;
};

}  // namespace epidemic

#endif  // EPIDEMIC_LOG_AUX_LOG_H_
