#include "log/log_vector.h"

#include "common/logging.h"

namespace epidemic {

OriginLog::OriginLog() = default;

OriginLog::~OriginLog() { FreeAll(); }

OriginLog::OriginLog(OriginLog&& other) noexcept
    : head_(other.head_), tail_(other.tail_), size_(other.size_) {
  other.head_ = other.tail_ = nullptr;
  other.size_ = 0;
}

OriginLog& OriginLog::operator=(OriginLog&& other) noexcept {
  if (this != &other) {
    FreeAll();
    head_ = other.head_;
    tail_ = other.tail_;
    size_ = other.size_;
    other.head_ = other.tail_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void OriginLog::FreeAll() {
  LogRecord* r = head_;
  while (r != nullptr) {
    LogRecord* next = r->next;
    delete r;
    r = next;
  }
  head_ = tail_ = nullptr;
  size_ = 0;
}

void OriginLog::AddLogRecord(ItemId item, UpdateCount seq, LogRecord** slot) {
  // Unlink the superseded record for the same item first — found in O(1) via
  // the P_j(x) pointer — so it cannot get in the way of the position search
  // below. A dominating copy always carries an equal-or-newer record for its
  // item, so this never removes a record newer than the incoming one.
  if (*slot != nullptr) {
    EPI_DCHECK((*slot)->item == item);
    Unlink(*slot);
    delete *slot;
    *slot = nullptr;
  }

  // Insert in sequence order. The paper's AddLogRecord appends at the tail,
  // which is right while received tails are contiguous suffixes of the
  // origin's history; once a conflict drops records from a tail (§5.1
  // step 2), a third party can relay a newer record before the recipient
  // ever sees an older one for a different item, and a blind append would
  // break the strictly-increasing order CollectTail's suffix walk and the
  // recipient-side tail validation both depend on. Walking back from the
  // tail keeps the common in-order case O(1).
  LogRecord* after = tail_;
  while (after != nullptr && after->seq > seq) after = after->prev;
  // Each origin sequence number names exactly one update of one item, so no
  // two records may ever claim the same seq.
  EPI_DCHECK(after == nullptr || after->seq != seq);
  LogRecord* rec = new LogRecord{item, seq, after, nullptr};
  rec->next = after != nullptr ? after->next : head_;
  if (rec->next != nullptr) {
    rec->next->prev = rec;
  } else {
    tail_ = rec;
  }
  if (after != nullptr) {
    after->next = rec;
  } else {
    head_ = rec;
  }
  ++size_;
  *slot = rec;
}

void OriginLog::Remove(LogRecord* record, LogRecord** slot) {
  EPI_CHECK(*slot == record) << "Remove: P(x) pointer does not match record";
  Unlink(record);
  delete record;
  *slot = nullptr;
}

void OriginLog::Unlink(LogRecord* record) {
  if (record->prev != nullptr) {
    record->prev->next = record->next;
  } else {
    head_ = record->next;
  }
  if (record->next != nullptr) {
    record->next->prev = record->prev;
  } else {
    tail_ = record->prev;
  }
  record->prev = record->next = nullptr;
  --size_;
}

size_t OriginLog::CollectTail(UpdateCount after,
                              std::vector<LogRecord>* out) const {
  // Records are in origin order, i.e. strictly increasing seq, so the
  // matching records form a suffix. Walk back from the tail to find its
  // start, then emit oldest-first.
  LogRecord* first = nullptr;
  for (LogRecord* r = tail_; r != nullptr && r->seq > after; r = r->prev) {
    first = r;
  }
  size_t count = 0;
  for (LogRecord* r = first; r != nullptr; r = r->next) {
    out->push_back(LogRecord{r->item, r->seq, nullptr, nullptr});
    ++count;
  }
  return count;
}

size_t LogVector::TotalRecords() const {
  size_t total = 0;
  for (const OriginLog& log : logs_) total += log.size();
  return total;
}

}  // namespace epidemic
