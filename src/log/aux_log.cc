#include "log/aux_log.h"

#include <utility>

#include "common/logging.h"

namespace epidemic {

AuxLog::~AuxLog() {
  AuxRecord* r = head_;
  while (r != nullptr) {
    AuxRecord* next = r->next;
    delete r;
    r = next;
  }
}

AuxRecord* AuxLog::Append(ItemId item, const VersionVector& vv_before,
                          UpdateOp op) {
  AuxRecord* rec = new AuxRecord;
  rec->m = next_m_++;
  rec->item = item;
  rec->vv = vv_before;
  rec->op = std::move(op);

  // Global list tail.
  rec->prev = tail_;
  if (tail_ != nullptr) {
    tail_->next = rec;
  } else {
    head_ = rec;
  }
  tail_ = rec;

  // Per-item chain tail.
  ItemChain& chain = chains_[item];
  rec->item_prev = chain.tail;
  if (chain.tail != nullptr) {
    chain.tail->item_next = rec;
  } else {
    chain.head = rec;
  }
  chain.tail = rec;

  ++size_;
  return rec;
}

AuxRecord* AuxLog::Earliest(ItemId item) const {
  auto it = chains_.find(item);
  return it == chains_.end() ? nullptr : it->second.head;
}

void AuxLog::Remove(AuxRecord* record) {
  // Global list.
  if (record->prev != nullptr) {
    record->prev->next = record->next;
  } else {
    head_ = record->next;
  }
  if (record->next != nullptr) {
    record->next->prev = record->prev;
  } else {
    tail_ = record->prev;
  }

  // Per-item chain.
  auto it = chains_.find(record->item);
  EPI_CHECK(it != chains_.end()) << "aux record with no item chain";
  ItemChain& chain = it->second;
  if (record->item_prev != nullptr) {
    record->item_prev->item_next = record->item_next;
  } else {
    chain.head = record->item_next;
  }
  if (record->item_next != nullptr) {
    record->item_next->item_prev = record->item_prev;
  } else {
    chain.tail = record->item_prev;
  }
  if (chain.head == nullptr) chains_.erase(it);

  delete record;
  --size_;
}

void AuxLog::RemoveAllForItem(ItemId item) {
  AuxRecord* r = Earliest(item);
  while (r != nullptr) {
    AuxRecord* next = r->item_next;
    Remove(r);
    r = next;
  }
}

size_t AuxLog::CountForItem(ItemId item) const {
  size_t count = 0;
  for (AuxRecord* r = Earliest(item); r != nullptr; r = r->item_next) ++count;
  return count;
}

}  // namespace epidemic
