#ifndef EPIDEMIC_LOG_LOG_VECTOR_H_
#define EPIDEMIC_LOG_LOG_VECTOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "vv/version_vector.h"

namespace epidemic {

/// Dense per-node index of a data item inside one replica's item store.
/// Ids are local to a node; the wire format always carries item *names*.
using ItemId = uint32_t;

/// One record of the log vector (paper §4.2): "data item x was updated by
/// the origin node; the update's sequence number there was `seq`".
///
/// Records register only the *fact* of an update, never redo information, so
/// they are constant-size — the property §6 relies on when bounding message
/// overhead to a constant per shipped item.
struct LogRecord {
  ItemId item = 0;
  UpdateCount seq = 0;  // value of V_jj at the origin j, including this update
  LogRecord* prev = nullptr;
  LogRecord* next = nullptr;
};

/// One component L_ij of the log vector: updates originated at one node `j`,
/// in j's execution order, with **at most one record per data item** — when a
/// newer record for x arrives, the older one is unlinked in O(1) through the
/// caller-supplied back-pointer P_j(x) (Fig. 1).
///
/// The list is intrusive and pool-allocated; head is the oldest record.
class OriginLog {
 public:
  OriginLog();
  ~OriginLog();

  OriginLog(const OriginLog&) = delete;
  OriginLog& operator=(const OriginLog&) = delete;
  OriginLog(OriginLog&&) noexcept;
  OriginLog& operator=(OriginLog&&) noexcept;

  /// AddLogRecord (§4.2): inserts (item, seq) at its seq-ordered position —
  /// the tail in the common case — and unlinks the previous record for the
  /// same item, passed via `*slot` — the P_j(x) pointer owned by the item's
  /// control state. On return `*slot` points at the new record. O(1) when
  /// records arrive in origin order; linear in the displacement when a
  /// conflict-induced record drop at a third party delivered them out of
  /// order (post-§5.1 executions only).
  void AddLogRecord(ItemId item, UpdateCount seq, LogRecord** slot)
      REQUIRES_SHARD_CONTEXT;

  /// Removes a record (used when conflict handling drops records referring
  /// to a conflicting item from a received tail — §5.1 step 2 — and by
  /// tests). `*slot` must equal `record`; it is reset to null. O(1).
  void Remove(LogRecord* record, LogRecord** slot) REQUIRES_SHARD_CONTEXT;

  /// Oldest / newest records, or nullptr when empty.
  LogRecord* head() const { return head_; }
  LogRecord* tail() const { return tail_; }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Collects the suffix of records with `seq > after`, oldest first, by
  /// walking back from the tail — time linear in the number of records
  /// *selected*, never in the log length (§6: "computing tails D_k is done
  /// in time linear in the number of records selected").
  ///
  /// Returns the number appended to `*out`.
  size_t CollectTail(UpdateCount after, std::vector<LogRecord>* out) const;

 private:
  void Unlink(LogRecord* record);
  void FreeAll();

  LogRecord* head_ = nullptr;
  LogRecord* tail_ = nullptr;
  size_t size_ = 0;
};

/// The full log vector L_i of node i (§4.2): one OriginLog per node in the
/// replica set. Total records are bounded by n·N since each component holds
/// at most one record per item.
class LogVector {
 public:
  explicit LogVector(size_t num_nodes) : logs_(num_nodes) {}

  /// Mutable access hands out the component for AddLogRecord/Remove, so it
  /// requires the owner's context; const inspection is capability-free.
  OriginLog& ForOrigin(NodeId j) REQUIRES_SHARD_CONTEXT { return logs_[j]; }
  const OriginLog& ForOrigin(NodeId j) const { return logs_[j]; }

  size_t num_nodes() const { return logs_.size(); }

  /// Total record count across all components (≤ n·N).
  size_t TotalRecords() const;

 private:
  std::vector<OriginLog> logs_;
};

}  // namespace epidemic

#endif  // EPIDEMIC_LOG_LOG_VECTOR_H_
