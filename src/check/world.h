#ifndef EPIDEMIC_CHECK_WORLD_H_
#define EPIDEMIC_CHECK_WORLD_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "check/action.h"
#include "common/buffer_pool.h"
#include "common/result.h"
#include "common/status.h"
#include "core/conflict.h"
#include "core/replica.h"
#include "core/sharded_replica.h"
#include "runtime/scheduler.h"
#include "vv/version_vector.h"

namespace epidemic::check {

/// Intentional protocol defects the checker can inject to prove that its
/// oracles actually fire (checker self-test, ISSUE acceptance criterion).
/// Every mutation is a pure function of the schedule, so replaying a trace
/// under the same mutation reproduces the violation deterministically.
enum class Mutation {
  kNone,
  /// Crash recovery "forgets" the snapshot and restarts from pristine empty
  /// state — a node's DBVV regresses, which the monotonicity oracle flags.
  kAmnesia,
  /// Conflict events are silently dropped (no listener), so concurrent
  /// updates diverge with no conflict ever reported — the quiescence oracle
  /// flags divergence without a conflict.
  kMuteConflicts,
  /// The first anti-entropy reply that ships items has the shipped IVV
  /// inflated by one (origin = the source node), planting a phantom update:
  /// replicas later reach equal IVVs with different values. Only supported
  /// with one shard (the tamper edits the in-memory reply).
  kTamperIvv,
};

/// Parses the --mutate spelling ("none", "amnesia", "mute-conflicts",
/// "tamper-ivv").
Result<Mutation> ParseMutation(std::string_view name);
std::string_view MutationName(Mutation mutation);

struct WorldConfig {
  size_t num_nodes = 2;
  size_t num_items = 2;
  /// 1 = drive the plain Replica core; >1 = drive ShardedReplica through
  /// the real per-shard wire segment encode/decode.
  size_t num_shards = 1;
  /// Include tombstone writes in the alphabet.
  bool with_deletes = false;
  /// Wire format driven by the sharded path: 3 (default) checks the v3
  /// delta-encoded segments (tags 17/18) end to end — encode, zero-copy
  /// decode, view accept; 2 checks the owned v2 path (tags 14/15).
  /// Ignored when num_shards == 1 (the plain core has no wire step).
  size_t wire_version = 3;
  Mutation mutation = Mutation::kNone;
};

/// A small cluster of real replicas the checker schedules explicitly. The
/// world applies one Action at a time against the production entry points
/// (`Replica`/`ShardedReplica`), collects conflict events, and serializes
/// its full protocol state through the production snapshot codec — which is
/// both how the DFS stores states and how the kCrash action is modeled
/// (recovery at a checkpoint boundary; journal-suffix replay equivalence is
/// covered by journal_test).
class World {
 public:
  /// Fresh cluster: every replica empty.
  explicit World(const WorldConfig& config);

  /// Rebuilds a cluster from per-node snapshot blobs (see SnapshotBlobs).
  /// `tampered` restores the one-shot kTamperIvv trigger state.
  static Result<std::unique_ptr<World>> Restore(
      const WorldConfig& config, const std::vector<std::string>& blobs,
      bool tampered);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Applies one schedule action. Statuses that are legal protocol
  /// outcomes — an OOB fetch finding nothing or detecting a conflict — are
  /// mapped to OK; anything else non-OK is a genuine protocol error the
  /// checker reports as a violation.
  Status Apply(const Action& action);

  /// Every node's CheckInvariants, first failure wins (prefixed with the
  /// node id).
  Status CheckInvariants() const;

  /// Node `i`'s canonical protocol state (Replica::CanonicalState, or the
  /// sharded aggregate).
  std::string NodeCanonicalState(size_t i) const;

  /// Production snapshot blob per node — the DFS's state representation.
  std::vector<std::string> SnapshotBlobs() const;

  /// Conflict events collected since the last drain, across all nodes.
  /// Under kMuteConflicts this is always empty (that is the defect).
  std::vector<ConflictEvent> DrainConflicts();

  /// Node `i`'s whole-database version vector (aggregate over shards).
  VersionVector NodeDbvv(size_t i) const;

  /// Observation of one item at one node for the convergence oracle.
  /// Zero-IVV items without an auxiliary copy read as absent (they are
  /// protocol-invisible, see Replica::CanonicalState).
  struct ItemView {
    bool present = false;
    std::string value;
    bool deleted = false;
    VersionVector ivv;
    bool has_aux = false;
    std::string aux_value;
    bool aux_deleted = false;
    VersionVector aux_ivv;

    bool operator==(const ItemView&) const = default;
  };
  ItemView Observe(size_t node, std::string_view name) const;

  /// True when node `i` holds a user-visible copy of the item (guard for
  /// enumerating useful kOob actions).
  bool NodeHasItem(size_t node, std::string_view name) const;

  /// True when node `i` holds at least one auxiliary copy (guard for
  /// enumerating useful kPump actions).
  bool NodeHasAux(size_t node) const;

  size_t num_nodes() const { return nodes_.size(); }
  const WorldConfig& config() const { return config_; }
  bool tampered() const { return tampered_; }

 private:
  struct Node {
    /// Records conflicts unless the world mutes them. Owned here so
    /// snapshot-restored replicas can be rewired to it.
    RecordingConflictListener listener;
    /// Exactly one of the two is set, per config().num_shards.
    std::unique_ptr<Replica> plain;
    std::unique_ptr<ShardedReplica> sharded;
    /// Sharded nodes only: the production shard scheduler in manual mode
    /// — no threads, no parking, no clocks; the world's Apply steps are
    /// its explicit pump. Every mutation and every per-shard propagation
    /// step runs as a scheduler task, so the checker exercises the same
    /// single-writer discipline the server runs under, deterministically.
    std::unique_ptr<runtime::ShardScheduler> sched;
  };

  World(const WorldConfig& config, bool tampered);

  ConflictListener* listener_for(Node& node);
  Status ApplySync(size_t recipient, size_t source);
  Status ApplyCrash(size_t node);
  const Item* FindUserItem(size_t node, std::string_view name) const;

  WorldConfig config_;
  std::vector<std::unique_ptr<Node>> nodes_;
  /// Scratch for v3 segment encoding in the sharded sync path (mirrors
  /// the server's pooled-buffer serve pipeline).
  BufferPool buffer_pool_;
  /// kTamperIvv fires once per World instance; part of the checker's state
  /// digest so deduplication stays sound under the mutation.
  bool tampered_ = false;
};

}  // namespace epidemic::check

#endif  // EPIDEMIC_CHECK_WORLD_H_
