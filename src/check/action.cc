#include "check/action.h"

#include <sstream>
#include <string>
#include <vector>

namespace epidemic::check {
namespace {

std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::istringstream in{std::string(line)};
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

Result<uint32_t> ParseIndex(const std::string& tok) {
  uint32_t v = 0;
  for (char c : tok) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("expected a number, got '" + tok + "'");
    }
    v = v * 10 + static_cast<uint32_t>(c - '0');
    if (v > 1'000'000) return Status::InvalidArgument("index out of range");
  }
  if (tok.empty()) return Status::InvalidArgument("empty index");
  return v;
}

}  // namespace

std::string ItemName(uint32_t item) {
  std::string name = "k";
  name += std::to_string(item);
  return name;
}

std::string FormatAction(const Action& action) {
  switch (action.kind) {
    case ActionKind::kUpdate:
      return "update " + std::to_string(action.a) + " " +
             std::to_string(action.item);
    case ActionKind::kDelete:
      return "delete " + std::to_string(action.a) + " " +
             std::to_string(action.item);
    case ActionKind::kSync:
      return "sync " + std::to_string(action.a) + " " +
             std::to_string(action.b);
    case ActionKind::kOob:
      return "oob " + std::to_string(action.a) + " " +
             std::to_string(action.b) + " " + std::to_string(action.item);
    case ActionKind::kPump:
      return "pump " + std::to_string(action.a);
    case ActionKind::kCrash:
      return "crash " + std::to_string(action.a);
  }
  return "?";
}

Result<Action> ParseAction(std::string_view line) {
  std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) return Status::InvalidArgument("empty action line");
  const std::string& verb = tokens[0];

  auto arity = [&](size_t want) -> Status {
    if (tokens.size() != want + 1) {
      return Status::InvalidArgument("'" + verb + "' takes " +
                                     std::to_string(want) + " arguments: '" +
                                     std::string(line) + "'");
    }
    return Status::OK();
  };

  Action action;
  if (verb == "update" || verb == "delete") {
    action.kind =
        verb == "update" ? ActionKind::kUpdate : ActionKind::kDelete;
    EPI_RETURN_NOT_OK(arity(2));
    auto a = ParseIndex(tokens[1]);
    auto item = ParseIndex(tokens[2]);
    if (!a.ok()) return a.status();
    if (!item.ok()) return item.status();
    action.a = *a;
    action.item = *item;
    return action;
  }
  if (verb == "sync") {
    action.kind = ActionKind::kSync;
    EPI_RETURN_NOT_OK(arity(2));
    auto a = ParseIndex(tokens[1]);
    auto b = ParseIndex(tokens[2]);
    if (!a.ok()) return a.status();
    if (!b.ok()) return b.status();
    action.a = *a;
    action.b = *b;
    return action;
  }
  if (verb == "oob") {
    action.kind = ActionKind::kOob;
    EPI_RETURN_NOT_OK(arity(3));
    auto a = ParseIndex(tokens[1]);
    auto b = ParseIndex(tokens[2]);
    auto item = ParseIndex(tokens[3]);
    if (!a.ok()) return a.status();
    if (!b.ok()) return b.status();
    if (!item.ok()) return item.status();
    action.a = *a;
    action.b = *b;
    action.item = *item;
    return action;
  }
  if (verb == "pump" || verb == "crash") {
    action.kind = verb == "pump" ? ActionKind::kPump : ActionKind::kCrash;
    EPI_RETURN_NOT_OK(arity(1));
    auto a = ParseIndex(tokens[1]);
    if (!a.ok()) return a.status();
    action.a = *a;
    return action;
  }
  return Status::InvalidArgument("unknown action verb '" + verb + "'");
}

std::string EncodeTrace(const TraceFile& trace) {
  std::string out;
  out += "# epicheck trace — replay with: epicheck --replay <file>\n";
  out += "nodes " + std::to_string(trace.nodes) + "\n";
  out += "items " + std::to_string(trace.items) + "\n";
  out += "shards " + std::to_string(trace.shards) + "\n";
  out += "wire " + std::to_string(trace.wire) + "\n";
  out += "mutate " + trace.mutation + "\n";
  for (const Action& action : trace.actions) {
    out += FormatAction(action) + "\n";
  }
  return out;
}

Result<TraceFile> DecodeTrace(std::string_view text) {
  TraceFile trace;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string_view line = text.substr(
        start, end == std::string_view::npos ? text.size() - start
                                             : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;

    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& verb = tokens[0];
    if (verb == "nodes" || verb == "items" || verb == "shards" ||
        verb == "wire") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument("'" + verb + "' takes one argument");
      }
      auto v = ParseIndex(tokens[1]);
      if (!v.ok()) return v.status();
      if (verb == "nodes") trace.nodes = *v;
      if (verb == "items") trace.items = *v;
      if (verb == "shards") trace.shards = *v;
      if (verb == "wire") trace.wire = *v;
      continue;
    }
    if (verb == "mutate") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument("'mutate' takes one argument");
      }
      trace.mutation = tokens[1];
      continue;
    }
    auto action = ParseAction(line);
    if (!action.ok()) return action.status();
    trace.actions.push_back(*action);
  }
  return trace;
}

}  // namespace epidemic::check
