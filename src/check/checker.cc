#include "check/checker.h"

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>

namespace epidemic::check {
namespace {

/// How many full sync+pump sweeps the quiescence oracle runs before
/// declaring that the system does not quiesce. With n ≤ 3 honest replicas,
/// n-1 sweeps reach every node transitively (Theorem 5's premise) and a
/// couple more retire auxiliary chains; 16 leaves a wide margin, so hitting
/// the cap means a genuine livelock (e.g. an update loop planted by a
/// mutation).
constexpr size_t kMaxClosureSweeps = 16;

/// One DFS state: the production snapshot of every node, plus the two
/// pieces of schedule context that protocol state alone does not carry —
/// which items had a conflict reported on this path, and whether the
/// one-shot tamper mutation already fired.
struct Bundle {
  std::vector<std::string> blobs;
  std::set<std::string> conflicted;  // ordered for deterministic digests
  bool tampered = false;
  uint64_t digest = 0;
};

uint64_t Fnv1a(uint64_t h, std::string_view bytes) {
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

Result<std::unique_ptr<World>> RestoreWorld(const WorldConfig& config,
                                            const Bundle& bundle) {
  return World::Restore(config, bundle.blobs, bundle.tampered);
}

uint64_t DigestOf(World& world, const std::set<std::string>& conflicted) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < world.num_nodes(); ++i) {
    h = Fnv1a(h, world.NodeCanonicalState(i));
    h = Fnv1a(h, "|");
  }
  for (const std::string& name : conflicted) {
    h = Fnv1a(h, name);
    h = Fnv1a(h, ";");
  }
  h = Fnv1a(h, world.tampered() ? "T" : "t");
  return h;
}

Bundle InitialBundle(const WorldConfig& config) {
  World world(config);
  Bundle bundle;
  bundle.blobs = world.SnapshotBlobs();
  bundle.digest = DigestOf(world, bundle.conflicted);
  return bundle;
}

std::string DescribeVv(const VersionVector& vv) { return vv.ToString(); }

/// Applies `action` to a world restored from `from` and runs every
/// per-transition oracle. Returns OK and fills `next` on success; a non-OK
/// status describes the violation (or infrastructure failure, which the
/// checker also treats as a finding — the snapshot codec is under test via
/// kCrash and state transfer).
Status StepChecked(const WorldConfig& config, const Bundle& from,
                   const Action& action, Bundle* next) {
  auto restored = RestoreWorld(config, from);
  if (!restored.ok()) {
    return Status::Internal("state restore failed: " +
                            restored.status().message());
  }
  World& world = **restored;

  // Pre-state observations for the monotonicity oracles.
  std::vector<VersionVector> pre_dbvv;
  std::vector<std::vector<World::ItemView>> pre_items(world.num_nodes());
  for (size_t i = 0; i < world.num_nodes(); ++i) {
    pre_dbvv.push_back(world.NodeDbvv(i));
    for (uint32_t k = 0; k < config.num_items; ++k) {
      pre_items[i].push_back(world.Observe(i, ItemName(k)));
    }
  }

  Status applied = world.Apply(action);
  if (!applied.ok()) {
    return Status::Internal("action '" + FormatAction(action) +
                            "' failed: " + applied.ToString());
  }

  // Oracle 1: structural invariants (§4.1, log discipline, §5.2 aux).
  Status invariants = world.CheckInvariants();
  if (!invariants.ok()) {
    return Status::Internal("after '" + FormatAction(action) +
                            "': " + invariants.message());
  }

  // Oracle 2: conflict soundness — every event fired must name genuinely
  // concurrent vectors (the "if" half of criterion 1; the "only if" half is
  // the quiescence oracle's divergence-without-conflict check).
  std::set<std::string> conflicted = from.conflicted;
  for (const ConflictEvent& event : world.DrainConflicts()) {
    if (!VersionVector::Conflicts(event.local_vv, event.remote_vv)) {
      return Status::Internal(
          "conflict reported for '" + event.item_name +
          "' on comparable vectors " + DescribeVv(event.local_vv) + " vs " +
          DescribeVv(event.remote_vv) + " after '" + FormatAction(action) +
          "'");
    }
    conflicted.insert(event.item_name);
  }

  // Oracle 3: monotonicity — a replica never un-learns updates (DBVV), and
  // an adopted copy is never dominated by the copy it replaced (IVVs).
  for (size_t i = 0; i < world.num_nodes(); ++i) {
    VersionVector dbvv = world.NodeDbvv(i);
    if (!VersionVector::DominatesOrEqual(dbvv, pre_dbvv[i])) {
      return Status::Internal("node " + std::to_string(i) +
                              " DBVV regressed from " +
                              DescribeVv(pre_dbvv[i]) + " to " +
                              DescribeVv(dbvv) + " after '" +
                              FormatAction(action) + "'");
    }
    for (uint32_t k = 0; k < config.num_items; ++k) {
      const World::ItemView& pre = pre_items[i][k];
      if (!pre.present) continue;
      World::ItemView post = world.Observe(i, ItemName(k));
      if (!post.present) {
        return Status::Internal("node " + std::to_string(i) + " lost item " +
                                ItemName(k) + " after '" +
                                FormatAction(action) + "'");
      }
      if (!VersionVector::DominatesOrEqual(post.ivv, pre.ivv)) {
        return Status::Internal(
            "node " + std::to_string(i) + " item " + ItemName(k) +
            " regular IVV regressed from " + DescribeVv(pre.ivv) + " to " +
            DescribeVv(post.ivv) + " after '" + FormatAction(action) + "'");
      }
      const VersionVector& pre_user = pre.has_aux ? pre.aux_ivv : pre.ivv;
      const VersionVector& post_user =
          post.has_aux ? post.aux_ivv : post.ivv;
      if (!VersionVector::DominatesOrEqual(post_user, pre_user)) {
        return Status::Internal(
            "node " + std::to_string(i) + " item " + ItemName(k) +
            " user-visible IVV regressed from " + DescribeVv(pre_user) +
            " to " + DescribeVv(post_user) + " after '" +
            FormatAction(action) + "'");
      }
    }
  }

  next->blobs = world.SnapshotBlobs();
  next->conflicted = std::move(conflicted);
  next->tampered = world.tampered();
  next->digest = DigestOf(world, next->conflicted);
  return Status::OK();
}

/// The quiescence oracle: from `at`, run sync+pump sweeps to a fixpoint and
/// require either full convergence or divergence confined to items with a
/// reported conflict. Returns the violation description, or empty.
std::string CheckQuiescence(const WorldConfig& config, const Bundle& at) {
  auto restored = RestoreWorld(config, at);
  if (!restored.ok()) {
    return "state restore failed: " + restored.status().message();
  }
  World& world = **restored;
  std::set<std::string> conflicted = at.conflicted;

  auto canon_all = [&] {
    std::string all;
    for (size_t i = 0; i < world.num_nodes(); ++i) {
      all += world.NodeCanonicalState(i);
      all += '|';
    }
    return all;
  };

  std::string prev;
  bool fixpoint = false;
  for (size_t sweep = 0; sweep < kMaxClosureSweeps; ++sweep) {
    for (uint32_t a = 0; a < world.num_nodes(); ++a) {
      for (uint32_t b = 0; b < world.num_nodes(); ++b) {
        if (a == b) continue;
        Status s = world.Apply(Action{ActionKind::kSync, a, b, 0});
        if (!s.ok()) return "closure sync failed: " + s.ToString();
      }
    }
    for (uint32_t a = 0; a < world.num_nodes(); ++a) {
      Status s = world.Apply(Action{ActionKind::kPump, a, 0, 0});
      if (!s.ok()) return "closure pump failed: " + s.ToString();
    }
    for (const ConflictEvent& event : world.DrainConflicts()) {
      conflicted.insert(event.item_name);
    }
    std::string canon = canon_all();
    if (canon == prev) {
      fixpoint = true;
      break;
    }
    prev = std::move(canon);
  }
  if (!fixpoint) {
    return "no quiescence: sync/pump closure still changing state after " +
           std::to_string(kMaxClosureSweeps) + " sweeps";
  }

  bool identical = true;
  for (size_t i = 1; i < world.num_nodes(); ++i) {
    if (world.NodeCanonicalState(i) != world.NodeCanonicalState(0)) {
      identical = false;
      break;
    }
  }
  if (identical) return "";

  // Criterion: quiescence ⇒ identical replicas, except for items on which
  // a conflict was reported (those wait for application-level resolution,
  // §2). Divergence anywhere else means an update was silently lost or
  // mis-adopted.
  if (conflicted.empty()) {
    return "replicas differ at quiescence and no conflict was ever "
           "reported";
  }
  for (uint32_t k = 0; k < config.num_items; ++k) {
    std::string name = ItemName(k);
    World::ItemView first = world.Observe(0, name);
    for (size_t i = 1; i < world.num_nodes(); ++i) {
      if (!(world.Observe(i, name) == first)) {
        if (!conflicted.contains(name)) {
          return "item " + name +
                 " diverged at quiescence without a reported conflict";
        }
        break;
      }
    }
  }
  return "";
}

std::vector<Action> EnumerateActions(const CheckerConfig& config,
                                     World& world) {
  const size_t n = world.num_nodes();
  const uint32_t items = static_cast<uint32_t>(config.world.num_items);
  std::vector<Action> out;
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t k = 0; k < items; ++k) {
      out.push_back(Action{ActionKind::kUpdate, a, 0, k});
      if (config.world.with_deletes) {
        out.push_back(Action{ActionKind::kDelete, a, 0, k});
      }
    }
  }
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = 0; b < n; ++b) {
      if (a != b) out.push_back(Action{ActionKind::kSync, a, b, 0});
    }
  }
  if (config.with_oob) {
    for (uint32_t a = 0; a < n; ++a) {
      for (uint32_t b = 0; b < n; ++b) {
        if (a == b) continue;
        for (uint32_t k = 0; k < items; ++k) {
          // Only fetch what the source can serve; an empty-handed OOB is a
          // guaranteed no-op (NotFound) and would just bloat the frontier.
          if (world.NodeHasItem(b, ItemName(k))) {
            out.push_back(Action{ActionKind::kOob, a, b, k});
          }
        }
      }
    }
  }
  if (config.with_pump) {
    for (uint32_t a = 0; a < n; ++a) {
      if (world.NodeHasAux(a)) out.push_back(Action{ActionKind::kPump, a, 0, 0});
    }
  }
  if (config.with_crash) {
    for (uint32_t a = 0; a < n; ++a) {
      out.push_back(Action{ActionKind::kCrash, a, 0, 0});
    }
  }
  return out;
}

struct DfsContext {
  const CheckerConfig& config;
  std::unordered_set<uint64_t> seen;
  CheckReport report;
  std::vector<Action> path;
};

/// Returns true when a violation was recorded (aborts the search).
bool Dfs(DfsContext& ctx, const Bundle& from, size_t depth) {
  if (depth >= ctx.config.max_depth) return false;
  auto restored = RestoreWorld(ctx.config.world, from);
  if (!restored.ok()) {
    ctx.report.violation = ViolationInfo{
        "state restore failed: " + restored.status().message(), ctx.path};
    return true;
  }
  std::vector<Action> actions = EnumerateActions(ctx.config, **restored);
  restored->reset();  // the step rebuilds its own copy

  for (const Action& action : actions) {
    ctx.path.push_back(action);
    ++ctx.report.transitions;
    Bundle next;
    Status s = StepChecked(ctx.config.world, from, action, &next);
    if (!s.ok()) {
      ctx.report.violation = ViolationInfo{s.message(), ctx.path};
      return true;
    }
    if (!ctx.seen.insert(next.digest).second) {
      ++ctx.report.dedup_hits;
      ctx.path.pop_back();
      continue;
    }
    ++ctx.report.states_explored;
    std::string q = CheckQuiescence(ctx.config.world, next);
    if (!q.empty()) {
      ctx.report.violation = ViolationInfo{std::move(q), ctx.path};
      return true;
    }
    if (Dfs(ctx, next, depth + 1)) return true;
    ctx.path.pop_back();
  }
  return false;
}

}  // namespace

CheckReport RunCheck(const CheckerConfig& config) {
  DfsContext ctx{config, {}, {}, {}};
  Bundle root = InitialBundle(config.world);
  ctx.seen.insert(root.digest);
  ctx.report.states_explored = 1;
  std::string q = CheckQuiescence(config.world, root);
  if (!q.empty()) {
    ctx.report.violation = ViolationInfo{std::move(q), {}};
    return ctx.report;
  }
  Dfs(ctx, root, 0);
  return ctx.report;
}

CheckReport ReplayTrace(const WorldConfig& config,
                        const std::vector<Action>& actions) {
  CheckReport report;
  report.states_explored = 1;
  Bundle state = InitialBundle(config);
  std::vector<Action> path;
  for (const Action& action : actions) {
    path.push_back(action);
    ++report.transitions;
    Bundle next;
    Status s = StepChecked(config, state, action, &next);
    if (!s.ok()) {
      report.violation = ViolationInfo{s.message(), path};
      return report;
    }
    ++report.states_explored;
    state = std::move(next);
  }
  std::string q = CheckQuiescence(config, state);
  if (!q.empty()) report.violation = ViolationInfo{std::move(q), path};
  return report;
}

std::vector<Action> MinimizeTrace(const WorldConfig& config,
                                  std::vector<Action> trace) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (size_t i = 0; i < trace.size(); ++i) {
      std::vector<Action> candidate = trace;
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
      if (ReplayTrace(config, candidate).violation.has_value()) {
        trace = std::move(candidate);
        shrunk = true;
        break;
      }
    }
  }
  return trace;
}

}  // namespace epidemic::check
