#ifndef EPIDEMIC_CHECK_ACTION_H_
#define EPIDEMIC_CHECK_ACTION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace epidemic::check {

/// The model checker's schedule alphabet: everything that can happen to a
/// small cluster between two observations. Each action maps onto the real
/// protocol entry points (DESIGN.md §9).
enum class ActionKind {
  kUpdate,  // node `a` writes item `item` (a fresh, locally unique value)
  kDelete,  // node `a` tombstones item `item`
  kSync,    // node `a` pulls one anti-entropy exchange from node `b` (§5.1)
  kOob,     // node `a` out-of-bound fetches item `item` from node `b` (§5.2)
  kPump,    // node `a` runs intra-node propagation over all aux items (Fig. 4)
  kCrash,   // node `a` crashes and recovers from a snapshot of its state
};

/// One step of a schedule. `b` and `item` are meaningful only for the kinds
/// that use them (see ActionKind).
struct Action {
  ActionKind kind = ActionKind::kUpdate;
  uint32_t a = 0;     // acting node
  uint32_t b = 0;     // peer node (kSync, kOob)
  uint32_t item = 0;  // item index (kUpdate, kDelete, kOob)

  bool operator==(const Action&) const = default;
};

/// Item index -> the name used in the checked cluster ("k0", "k1", ...).
std::string ItemName(uint32_t item);

/// One-line textual form, e.g. "update 0 1", "sync 0 1", "oob 0 1 0".
/// FormatAction and ParseAction round-trip.
std::string FormatAction(const Action& action);

/// Parses one FormatAction line. InvalidArgument on malformed input or
/// unknown verbs.
Result<Action> ParseAction(std::string_view line);

/// A violation trace as stored on disk: the configuration needed to rebuild
/// the world plus the action schedule. The `mutation` string is the
/// --mutate spelling ("none", "amnesia", ...), kept as text so the trace
/// file stays self-describing.
struct TraceFile {
  uint32_t nodes = 2;
  uint32_t items = 2;
  uint32_t shards = 1;
  /// Wire format for the sharded path: 3 = v3 delta segments, 2 = v2
  /// owned segments (WorldConfig::wire_version). Traces written before
  /// the directive existed decode as 3 — the protocol outcomes are
  /// identical across formats, so replay stays faithful either way.
  uint32_t wire = 3;
  std::string mutation = "none";
  std::vector<Action> actions;
};

/// Renders a trace file: `#`-comment header, `nodes/items/shards/mutate`
/// directives, then one action per line.
std::string EncodeTrace(const TraceFile& trace);

/// Parses EncodeTrace output. Blank lines and `#` comments are ignored;
/// unknown directives are errors so stale files fail loudly.
Result<TraceFile> DecodeTrace(std::string_view text);

}  // namespace epidemic::check

#endif  // EPIDEMIC_CHECK_ACTION_H_
