#ifndef EPIDEMIC_CHECK_CHECKER_H_
#define EPIDEMIC_CHECK_CHECKER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/action.h"
#include "check/world.h"

namespace epidemic::check {

/// What to explore and how far.
struct CheckerConfig {
  WorldConfig world;
  /// Maximum schedule length (actions along one DFS path).
  size_t max_depth = 8;
  /// Alphabet toggles: kUpdate/kSync are always on (without them nothing
  /// happens); the rest can be disabled to shrink the space.
  bool with_oob = true;
  bool with_pump = true;
  bool with_crash = true;
};

/// A property failure: what broke, and the schedule that reaches it from
/// the initial (all-empty) state. For transition violations the last action
/// of `trace` is the offending one; for quiescence violations the final
/// *state* fails and `trace` is the path to it.
struct ViolationInfo {
  std::string description;
  std::vector<Action> trace;
};

struct CheckReport {
  /// Unique states discovered (after canonical-state deduplication),
  /// including the initial state.
  uint64_t states_explored = 0;
  /// Transitions executed (each runs the full per-transition oracle).
  uint64_t transitions = 0;
  /// Transitions that landed on an already-explored state.
  uint64_t dedup_hits = 0;
  /// First violation found, if any (DFS order — deterministic).
  std::optional<ViolationInfo> violation;
};

/// Bounded exhaustive DFS over all schedules up to `max_depth`, driving the
/// real replica code. After every transition the oracle asserts:
///   * every node's Replica::CheckInvariants (§4.1 + logs + §5.2 aux),
///   * per-node DBVV monotonicity and per-item IVV monotonicity (an adopted
///     copy is never dominated by what it replaced),
///   * every conflict event fired names genuinely concurrent IVVs.
/// At every newly discovered state it additionally runs the quiescence
/// oracle: sync/pump closure must reach a fixpoint where all replicas are
/// identical, or where every divergent item had a conflict reported
/// (the paper's "conflicts are detected, nothing is silently lost").
/// Stops at the first violation.
CheckReport RunCheck(const CheckerConfig& config);

/// Replays one explicit schedule with the same per-transition oracle, then
/// runs the quiescence oracle on the final state. Used by --replay and by
/// the minimizer; infrastructure failures (malformed actions, snapshot
/// decode errors) are reported as violations too.
CheckReport ReplayTrace(const WorldConfig& config,
                        const std::vector<Action>& actions);

/// Greedy delta-debugging: repeatedly drops single actions while the
/// shrunken schedule still produces *a* violation under ReplayTrace.
/// `trace` must already violate; returns the 1-minimal schedule.
std::vector<Action> MinimizeTrace(const WorldConfig& config,
                                  std::vector<Action> trace);

}  // namespace epidemic::check

#endif  // EPIDEMIC_CHECK_CHECKER_H_
