#include "check/world.h"

#include <utility>
#include <vector>

#include "core/snapshot.h"
#include "core/wire.h"

namespace epidemic::check {

namespace {

/// Manual-mode scheduler for a sharded node: num_shards single-writer
/// sections, zero threads, zero read cache (the checker has no concurrent
/// readers, and cache state is not canonical protocol state).
std::unique_ptr<runtime::ShardScheduler> MakeManualScheduler(
    size_t num_shards) {
  runtime::ShardScheduler::Options opts;
  opts.num_shards = num_shards;
  opts.manual = true;
  opts.read_cache_slots = 0;
  return std::make_unique<runtime::ShardScheduler>(opts);
}

}  // namespace

Result<Mutation> ParseMutation(std::string_view name) {
  if (name == "none") return Mutation::kNone;
  if (name == "amnesia") return Mutation::kAmnesia;
  if (name == "mute-conflicts") return Mutation::kMuteConflicts;
  if (name == "tamper-ivv") return Mutation::kTamperIvv;
  return Status::InvalidArgument(
      "unknown mutation '" + std::string(name) +
      "' (valid: none, amnesia, mute-conflicts, tamper-ivv)");
}

std::string_view MutationName(Mutation mutation) {
  switch (mutation) {
    case Mutation::kNone:
      return "none";
    case Mutation::kAmnesia:
      return "amnesia";
    case Mutation::kMuteConflicts:
      return "mute-conflicts";
    case Mutation::kTamperIvv:
      return "tamper-ivv";
  }
  return "?";
}

World::World(const WorldConfig& config) : World(config, /*tampered=*/false) {
  for (size_t i = 0; i < config_.num_nodes; ++i) {
    auto node = std::make_unique<Node>();
    NodeId id = static_cast<NodeId>(i);
    if (config_.num_shards > 1) {
      node->sharded = std::make_unique<ShardedReplica>(
          id, config_.num_nodes, config_.num_shards, listener_for(*node));
      node->sched = MakeManualScheduler(config_.num_shards);
    } else {
      node->plain = std::make_unique<Replica>(id, config_.num_nodes,
                                              listener_for(*node));
    }
    nodes_.push_back(std::move(node));
  }
}

World::World(const WorldConfig& config, bool tampered)
    : config_(config), tampered_(tampered) {}

Result<std::unique_ptr<World>> World::Restore(
    const WorldConfig& config, const std::vector<std::string>& blobs,
    bool tampered) {
  if (blobs.size() != config.num_nodes) {
    return Status::InvalidArgument("snapshot blob count mismatch");
  }
  auto world = std::unique_ptr<World>(new World(config, tampered));
  for (const std::string& blob : blobs) {
    auto node = std::make_unique<Node>();
    if (config.num_shards > 1) {
      auto replica = DecodeShardedSnapshot(blob, world->listener_for(*node));
      if (!replica.ok()) return replica.status();
      node->sharded = std::move(*replica);
      node->sched = MakeManualScheduler(config.num_shards);
    } else {
      auto replica = DecodeSnapshot(blob, world->listener_for(*node));
      if (!replica.ok()) return replica.status();
      node->plain = std::move(*replica);
    }
    world->nodes_.push_back(std::move(node));
  }
  return world;
}

ConflictListener* World::listener_for(Node& node) {
  // Muting the listener IS the kMuteConflicts defect: conflicts still
  // happen, nobody hears about them.
  if (config_.mutation == Mutation::kMuteConflicts) return nullptr;
  return &node.listener;
}

Status World::Apply(const Action& action) {
  // Single-owner escape: the checker drives every node from one thread, so
  // that thread IS each plain replica's single writer. Sharded nodes still
  // go through their manual scheduler below, whose tokens re-assert the
  // capability inside each task.
  AssertShardContextHeld();
  const size_t n = nodes_.size();
  if (action.a >= n) return Status::InvalidArgument("acting node out of range");
  Node& node = *nodes_[action.a];
  const std::string name = ItemName(action.item);

  switch (action.kind) {
    case ActionKind::kUpdate: {
      if (action.item >= config_.num_items) {
        return Status::InvalidArgument("item index out of range");
      }
      // A fresh, schedule-deterministic value naming the writer and the
      // version, so the convergence oracle can tell versions apart:
      // "u<node>.<item>.<total updates reflected + 1>".
      const Item* item = FindUserItem(action.a, name);
      UpdateCount version = (item ? item->UserIvv().Total() : 0) + 1;
      std::string value = "u";
      value += std::to_string(action.a);
      value += ".";
      value += name;
      value += ".";
      value += std::to_string(version);
      if (node.plain) return node.plain->Update(name, value);
      // Sharded: the update is one task in its shard's single-writer
      // section, executed by the manual pump inside Execute.
      Status status;
      node.sched->Execute(node.sharded->ShardOf(name),
                          runtime::TaskKind::kLocalUpdate, /*mutates=*/true,
                          [&](const runtime::ShardToken& token) {
                            runtime::AssertShardContext(token);
                            status = node.sharded->Update(name, value);
                          });
      return status;
    }
    case ActionKind::kDelete: {
      if (action.item >= config_.num_items) {
        return Status::InvalidArgument("item index out of range");
      }
      if (node.plain) return node.plain->Delete(name);
      Status status;
      node.sched->Execute(node.sharded->ShardOf(name),
                          runtime::TaskKind::kLocalUpdate, /*mutates=*/true,
                          [&](const runtime::ShardToken& token) {
                            runtime::AssertShardContext(token);
                            status = node.sharded->Delete(name);
                          });
      return status;
    }
    case ActionKind::kSync:
      if (action.b >= n || action.b == action.a) {
        return Status::InvalidArgument("sync peer out of range");
      }
      return ApplySync(action.a, action.b);
    case ActionKind::kOob: {
      if (action.b >= n || action.b == action.a) {
        return Status::InvalidArgument("oob peer out of range");
      }
      if (action.item >= config_.num_items) {
        return Status::InvalidArgument("item index out of range");
      }
      Node& source = *nodes_[action.b];
      OobRequest req;
      OobResponse resp;
      Status s;
      if (node.plain) {
        req = node.plain->BuildOobRequest(name);
        resp = source.plain->HandleOobRequest(req);
        s = node.plain->AcceptOobResponse(resp);
      } else {
        // Each §5.2 step is a task on the item's shard — build and accept
        // on the requester, serve on the source — mirroring the server's
        // OobFetch task structure.
        const size_t shard = node.sharded->ShardOf(name);
        node.sched->Execute(shard, runtime::TaskKind::kSnapshot,
                            /*mutates=*/false,
                            [&](const runtime::ShardToken&) {
                              req = node.sharded->BuildOobRequest(name);
                            });
        source.sched->Execute(shard, runtime::TaskKind::kServe,
                              /*mutates=*/false,
                              [&](const runtime::ShardToken& token) {
                                runtime::AssertShardContext(token);
                                resp = source.sharded->HandleOobRequest(req);
                              });
        node.sched->Execute(shard, runtime::TaskKind::kAccept,
                            /*mutates=*/true,
                            [&](const runtime::ShardToken& token) {
                              runtime::AssertShardContext(token);
                              s = node.sharded->AcceptOobResponse(resp);
                            });
      }
      // NotFound (source never heard of the item) and Conflict (reported to
      // the listener) are legal §5.2 outcomes, not protocol errors.
      if (s.IsNotFound() || s.IsConflict()) return Status::OK();
      return s;
    }
    case ActionKind::kPump:
      if (node.plain) {
        node.plain->PumpIntraNode();
      } else {
        // Touches every shard: run under the scheduler's cross-shard
        // barrier, like the server's whole-database operations.
        node.sched->ExecuteExclusive(
            /*mutates=*/true, [&](const runtime::ExclusiveToken& token) {
              runtime::AssertShardContext(token);
              node.sharded->PumpIntraNode();
            });
      }
      return Status::OK();
    case ActionKind::kCrash:
      return ApplyCrash(action.a);
  }
  return Status::Internal("unreachable");
}

Status World::ApplySync(size_t recipient, size_t source) {
  // Single-owner escape: same as Apply — the checker's one driver thread
  // is the single writer of both plain replicas in this exchange.
  AssertShardContextHeld();
  Node& r = *nodes_[recipient];
  Node& s = *nodes_[source];
  if (r.plain) {
    PropagationRequest req = r.plain->BuildPropagationRequest();
    PropagationResponse resp = s.plain->HandlePropagationRequest(req);
    if (config_.mutation == Mutation::kTamperIvv && !tampered_ &&
        !resp.items.empty()) {
      // Plant one phantom update attributed to the source.
      resp.items[0].ivv.Increment(static_cast<NodeId>(source));
      tampered_ = true;
    }
    return r.plain->AcceptPropagation(resp);
  }
  // Sharded: the owned-shard path, exactly the server's task structure —
  // snapshot the handshake as one batch on the recipient's scheduler,
  // serve each stale shard as a task on the source's scheduler (encoding
  // the real wire segment body: v3 delta segments, tags 17/18, by
  // default; the owned v2 bodies, tags 14/15, under --wire 2), then
  // decode and accept each segment as a task on the recipient. The manual
  // pump drains every batch in ascending shard order, so the whole
  // exchange is a pure function of the schedule.
  ShardedReplica& rrep = *r.sharded;
  ShardedReplica& srep = *s.sharded;
  const size_t num_shards = rrep.num_shards();
  const bool v3 = config_.wire_version >= 3;

  ShardedPropagationRequest req;
  req.requester = rrep.id();
  if (v3) req.wire_version = kWireV3;
  req.shard_dbvvs.resize(num_shards);
  {
    std::vector<runtime::ShardScheduler::BatchItem> work;
    work.reserve(num_shards);
    for (size_t k = 0; k < num_shards; ++k) {
      work.push_back({k, runtime::TaskKind::kSnapshot, /*mutates=*/false,
                      [&rrep, &req, k](const runtime::ShardToken&) {
                        req.shard_dbvvs[k] = rrep.shard(k).dbvv();
                      }});
    }
    r.sched->ExecuteBatch(std::move(work));
  }

  std::vector<std::string> bodies(num_shards);
  std::vector<char> has_body(num_shards, 0);
  wire::V3SegmentOptions opts;  // no compression in the model checker
  {
    std::vector<runtime::ShardScheduler::BatchItem> work;
    work.reserve(num_shards);
    for (size_t k = 0; k < num_shards; ++k) {
      work.push_back(
          {k, runtime::TaskKind::kServe, /*mutates=*/false,
           [this, &srep, &req, &opts, &bodies, &has_body, v3,
            k](const runtime::ShardToken& token) {
             runtime::AssertShardContext(token);
             const PropagationRequest shard_req{req.requester,
                                                req.shard_dbvvs[k]};
             if (v3) {
               const PropagationResponseView& view =
                   srep.HandleShardPropagationView(k, shard_req);
               if (view.you_are_current) return;
               bodies[k] = buffer_pool_.Get();
               wire::EncodeShardSegmentBodyV3(view, srep.shard(k).dbvv(),
                                              opts, &buffer_pool_,
                                              &bodies[k]);
             } else {
               PropagationResponse shard_resp =
                   srep.HandleShardPropagation(k, shard_req);
               if (shard_resp.you_are_current) return;
               bodies[k] = wire::EncodeShardSegmentBody(shard_resp);
             }
             has_body[k] = 1;
           }});
    }
    s.sched->ExecuteBatch(std::move(work));
  }

  std::vector<Status> statuses(num_shards);
  std::vector<wire::SegmentViewStorage> storages(v3 ? num_shards : 0);
  {
    std::vector<runtime::ShardScheduler::BatchItem> work;
    work.reserve(num_shards);
    for (size_t k = 0; k < num_shards; ++k) {
      if (has_body[k] == 0) continue;
      work.push_back(
          {k, runtime::TaskKind::kAccept, /*mutates=*/true,
           [&rrep, &bodies, &statuses, &storages, v3,
            k](const runtime::ShardToken& token) {
             runtime::AssertShardContext(token);
             if (v3) {
               PropagationResponseView view;
               Status st = wire::DecodeShardSegmentBodyV3(bodies[k],
                                                          &storages[k], &view);
               statuses[k] =
                   st.ok() ? rrep.AcceptShardPropagation(k, view) : st;
               return;
             }
             Result<PropagationResponse> decoded =
                 wire::DecodeShardSegmentBody(bodies[k]);
             statuses[k] = decoded.ok()
                               ? rrep.AcceptShardPropagation(k, *decoded)
                               : decoded.status();
           }});
    }
    r.sched->ExecuteBatch(std::move(work));
  }
  for (size_t k = 0; k < num_shards; ++k) {
    if (has_body[k] != 0) {
      buffer_pool_.Put(std::move(bodies[k]));
      if (!statuses[k].ok()) return statuses[k];
    }
  }
  return Status::OK();
}

Status World::ApplyCrash(size_t index) {
  Node& node = *nodes_[index];
  NodeId id = static_cast<NodeId>(index);
  if (config_.mutation == Mutation::kAmnesia) {
    // The defect: recovery "finds" no snapshot and rejoins empty.
    if (node.plain) {
      node.plain =
          std::make_unique<Replica>(id, config_.num_nodes, listener_for(node));
    } else {
      node.sharded = std::make_unique<ShardedReplica>(
          id, config_.num_nodes, config_.num_shards, listener_for(node));
    }
    return Status::OK();
  }
  // Honest crash: lose the process, recover from a snapshot of the current
  // state (recovery at a checkpoint boundary; replaying a journal suffix on
  // top is journal_test's concern). Soft state (counters, peer DBVVs) is
  // legitimately lost.
  if (node.plain) {
    std::string blob = EncodeSnapshot(*node.plain);
    auto restored = DecodeSnapshot(blob, listener_for(node));
    if (!restored.ok()) return restored.status();
    node.plain = std::move(*restored);
  } else {
    std::string blob = EncodeShardedSnapshot(*node.sharded);
    auto restored = DecodeShardedSnapshot(blob, listener_for(node));
    if (!restored.ok()) return restored.status();
    node.sharded = std::move(*restored);
  }
  return Status::OK();
}

Status World::CheckInvariants() const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = *nodes_[i];
    Status s = node.plain ? node.plain->CheckInvariants()
                          : node.sharded->CheckInvariants();
    if (!s.ok()) {
      return Status::Internal("node " + std::to_string(i) + ": " +
                              s.message());
    }
  }
  return Status::OK();
}

std::string World::NodeCanonicalState(size_t i) const {
  const Node& node = *nodes_[i];
  return node.plain ? node.plain->CanonicalState()
                    : node.sharded->CanonicalState();
}

std::vector<std::string> World::SnapshotBlobs() const {
  std::vector<std::string> blobs;
  blobs.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    blobs.push_back(node->plain ? EncodeSnapshot(*node->plain)
                                : EncodeShardedSnapshot(*node->sharded));
  }
  return blobs;
}

std::vector<ConflictEvent> World::DrainConflicts() {
  std::vector<ConflictEvent> events;
  for (const auto& node : nodes_) {
    for (const ConflictEvent& e : node->listener.events()) {
      events.push_back(e);
    }
    node->listener.Clear();
  }
  return events;
}

VersionVector World::NodeDbvv(size_t i) const {
  const Node& node = *nodes_[i];
  return node.plain ? node.plain->dbvv() : node.sharded->AggregateDbvv();
}

const Item* World::FindUserItem(size_t index, std::string_view name) const {
  const Node& node = *nodes_[index];
  const Item* item = node.plain ? node.plain->FindItem(name)
                                : node.sharded->FindItem(name);
  if (item == nullptr) return nullptr;
  if (item->ivv.Total() == 0 && !item->HasAux()) return nullptr;
  return item;
}

World::ItemView World::Observe(size_t index, std::string_view name) const {
  ItemView view;
  const Item* item = FindUserItem(index, name);
  if (item == nullptr) return view;
  view.present = true;
  view.value = item->value;
  view.deleted = item->deleted;
  view.ivv = item->ivv;
  view.has_aux = item->HasAux();
  if (item->HasAux()) {
    view.aux_value = item->aux->value;
    view.aux_deleted = item->aux->deleted;
    view.aux_ivv = item->aux->ivv;
  }
  return view;
}

bool World::NodeHasItem(size_t index, std::string_view name) const {
  return FindUserItem(index, name) != nullptr;
}

bool World::NodeHasAux(size_t index) const {
  const Node& node = *nodes_[index];
  if (node.plain) {
    for (const auto& item : node.plain->items()) {
      if (item->HasAux()) return true;
    }
    return false;
  }
  for (size_t k = 0; k < node.sharded->num_shards(); ++k) {
    for (const auto& item : node.sharded->shard(k).items()) {
      if (item->HasAux()) return true;
    }
  }
  return false;
}

}  // namespace epidemic::check
