#ifndef EPIDEMIC_NET_TCP_TRANSPORT_H_
#define EPIDEMIC_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "net/transport.h"

namespace epidemic::net {

/// Frame helpers shared by server and client: 4-byte little-endian length
/// prefix followed by the payload. Exposed for tests.
Status WriteFrame(int fd, std::string_view payload);
Result<std::string> ReadFrame(int fd);

/// Minimal threaded TCP RPC server: an accept loop plus one thread per
/// connection; each connection carries a sequence of framed
/// request/response pairs handled by the registered RequestHandler.
///
/// Listens on 127.0.0.1 only — this is a replication endpoint for the
/// examples and integration tests, not a hardened network service.
class TcpServer {
 public:
  explicit TcpServer(RequestHandler* handler) : handler_(handler) {}
  ~TcpServer() { Stop(); }

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds and starts accepting. `port` 0 picks an ephemeral port,
  /// retrievable via port() afterwards.
  Status Start(uint16_t port);

  /// Stops accepting, closes the listener, and joins all threads. Safe to
  /// call more than once.
  void Stop();

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  RequestHandler* handler_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  Mutex workers_mu_;
  std::vector<std::thread> workers_ GUARDED_BY(workers_mu_);
};

/// Transport that maps NodeIds to TCP endpoints and performs one
/// connect/request/response/close cycle per Call. Simple and robust; peers
/// are expected to be local or LAN-near in this library's deployments.
class TcpTransport : public Transport {
 public:
  explicit TcpTransport(size_t num_nodes) : ports_(num_nodes, 0) {}

  /// All endpoints are 127.0.0.1:<port>.
  void SetPeerPort(NodeId id, uint16_t port) { ports_[id] = port; }

  Result<std::string> Call(NodeId dest, std::string_view request) override;

 private:
  std::vector<uint16_t> ports_;
};

}  // namespace epidemic::net

#endif  // EPIDEMIC_NET_TCP_TRANSPORT_H_
