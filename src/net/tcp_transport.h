#ifndef EPIDEMIC_NET_TCP_TRANSPORT_H_
#define EPIDEMIC_NET_TCP_TRANSPORT_H_

#include <sys/uio.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "net/transport.h"

namespace epidemic::net {

/// Hard ceiling on one frame's payload. Anything larger is a corrupt or
/// hostile peer, not a legitimate exchange.
inline constexpr uint32_t kMaxFrameBytes = 256u << 20;  // 256 MiB

/// Frame helpers shared by server and client: 4-byte little-endian length
/// prefix, 1 flags byte, then the payload. Exposed for tests.
///
/// WriteFrame transparently LZ-compresses large payloads when that shrinks
/// them (flag bit 0). WriteFrameV sends the payload as the iovec pieces
/// verbatim (header + pieces in one sendmsg train — no stitch copy, no
/// transparent compression; the v3 wire negotiates segment-level
/// compression separately). ReadFrameInto reuses `payload`'s capacity, so
/// a long-lived connection reads every frame allocation-free once warm.
Status WriteFrame(int fd, std::string_view payload);
Status WriteFrameV(int fd, const struct iovec* iov, size_t iovcnt);
Status ReadFrameInto(int fd, std::string* payload);
Result<std::string> ReadFrame(int fd);

/// Minimal threaded TCP RPC server: an accept loop plus one thread per
/// connection; each connection carries a sequence of framed
/// request/response pairs handled by the registered RequestHandler.
/// Replies are sent vectored (HandleRequestV + writev), so a handler that
/// produces its reply as pieces never assembles a contiguous frame.
///
/// Listens on 127.0.0.1 only — this is a replication endpoint for the
/// examples and integration tests, not a hardened network service.
class TcpServer {
 public:
  explicit TcpServer(RequestHandler* handler) : handler_(handler) {}
  ~TcpServer() { Stop(); }

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds and starts accepting. `port` 0 picks an ephemeral port,
  /// retrievable via port() afterwards.
  Status Start(uint16_t port);

  /// Stops accepting, closes the listener, shuts down every live
  /// connection (persistent clients park in recv between requests — the
  /// shutdown is what unblocks them), and joins all threads. Safe to call
  /// more than once.
  void Stop();

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  RequestHandler* handler_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  Mutex workers_mu_;
  std::vector<std::thread> workers_ GUARDED_BY(workers_mu_);
  /// fds of live connections, registered at accept and deregistered by
  /// the owning worker just before it closes them; Stop() shuts these
  /// down (never closes — the owner does) to unblock parked reads.
  std::unordered_set<int> conn_fds_ GUARDED_BY(workers_mu_);
};

/// Transport that maps NodeIds to TCP endpoints, keeping one long-lived
/// pooled connection per peer: request/response pairs are framed back to
/// back over the reused socket, a dead socket is reconnected and the call
/// retried once, and a peer that refuses connections is put in a sticky
/// exponential backoff window (calls inside the window fail fast with
/// Unavailable instead of re-dialing). `Options::pool_connections=false`
/// restores the legacy connect-per-call behavior — kept as the benchmark
/// baseline.
struct TcpTransportOptions {
  bool pool_connections = true;
  /// First backoff window after a failed connect; doubles per
  /// consecutive failure up to the max. A successful connect resets it.
  TimeMicros backoff_initial_micros = 50 * 1000;
  TimeMicros backoff_max_micros = 2 * 1000 * 1000;
};

class TcpTransport : public Transport {
 public:
  using Options = TcpTransportOptions;

  explicit TcpTransport(size_t num_nodes, Options options = Options());
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// All endpoints are 127.0.0.1:<port>. Configure before calling.
  void SetPeerPort(NodeId id, uint16_t port) { ports_[id] = port; }

  Result<std::string> Call(NodeId dest, std::string_view request) override;
  Status CallInto(NodeId dest, std::string_view request,
                  std::string* response) override;
  TransportStats Stats(bool reset) override;

 private:
  /// Per-peer pooled connection. The mutex serializes callers to the same
  /// peer (one in-flight request per connection — the framing has no
  /// multiplexing); different peers proceed in parallel.
  struct PeerConn {
    Mutex mu;
    int fd GUARDED_BY(mu) = -1;
    TimeMicros backoff_until GUARDED_BY(mu) = 0;
    TimeMicros backoff_micros GUARDED_BY(mu) = 0;
  };

  Status CallPooled(PeerConn& pc, uint16_t port, std::string_view request,
                    std::string* response);

  std::vector<uint16_t> ports_;
  Options options_;
  std::vector<std::unique_ptr<PeerConn>> conns_;

  // Counter surface behind Stats(). Plain monotonic atomics: callers on
  // different peers bump them concurrently.
  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> connections_opened_{0};
  std::atomic<uint64_t> connections_reused_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> backoff_skips_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
};

}  // namespace epidemic::net

#endif  // EPIDEMIC_NET_TCP_TRANSPORT_H_
