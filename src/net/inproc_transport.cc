#include "net/inproc_transport.h"

namespace epidemic::net {

InProcHub::InProcHub(size_t num_nodes) {
  slots_.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    slots_.push_back(std::make_unique<Slot>());
  }
}

void InProcHub::Register(NodeId id, RequestHandler* handler) {
  MutexLock lock(slots_[id]->mu);
  slots_[id]->handler = handler;
}

void InProcHub::SetNodeUp(NodeId id, bool up) {
  MutexLock lock(slots_[id]->mu);
  slots_[id]->up = up;
}

bool InProcHub::IsNodeUp(NodeId id) const {
  MutexLock lock(slots_[id]->mu);
  return slots_[id]->up;
}

Result<std::string> InProcHub::Call(NodeId dest, std::string_view request) {
  if (dest >= slots_.size()) {
    return Status::InvalidArgument("destination node id out of range");
  }
  Slot& slot = *slots_[dest];
  MutexLock lock(slot.mu);
  if (!slot.up) {
    return Status::Unavailable("node " + std::to_string(dest) + " is down");
  }
  if (slot.handler == nullptr) {
    return Status::Unavailable("node " + std::to_string(dest) +
                               " has no handler registered");
  }
  return slot.handler->HandleRequest(request);
}

}  // namespace epidemic::net
