#ifndef EPIDEMIC_NET_INPROC_TRANSPORT_H_
#define EPIDEMIC_NET_INPROC_TRANSPORT_H_

#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "net/transport.h"

namespace epidemic::net {

/// Same-process message hub: each node registers its handler; calls are
/// dispatched directly, serialized per destination by a mutex (the replica
/// itself is single-threaded by contract).
///
/// Nodes can be marked down, in which case calls to them fail with
/// Unavailable — used by failure-injection tests.
class InProcHub {
 public:
  explicit InProcHub(size_t num_nodes);

  /// `handler` must outlive the hub or be unregistered (nullptr) first.
  void Register(NodeId id, RequestHandler* handler);

  void SetNodeUp(NodeId id, bool up);
  bool IsNodeUp(NodeId id) const;

  Result<std::string> Call(NodeId dest, std::string_view request);

  size_t num_nodes() const { return slots_.size(); }

 private:
  struct Slot {
    mutable Mutex mu;
    RequestHandler* handler GUARDED_BY(mu) = nullptr;
    bool up GUARDED_BY(mu) = true;
  };
  std::vector<std::unique_ptr<Slot>> slots_;
};

/// Transport facade over a shared hub.
class InProcTransport : public Transport {
 public:
  explicit InProcTransport(InProcHub* hub) : hub_(hub) {}

  Result<std::string> Call(NodeId dest, std::string_view request) override {
    return hub_->Call(dest, request);
  }

 private:
  InProcHub* hub_;
};

}  // namespace epidemic::net

#endif  // EPIDEMIC_NET_INPROC_TRANSPORT_H_
