#ifndef EPIDEMIC_NET_INPROC_TRANSPORT_H_
#define EPIDEMIC_NET_INPROC_TRANSPORT_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "net/transport.h"

namespace epidemic::net {

/// Same-process message hub: each node registers its handler; calls are
/// dispatched directly, serialized per destination by a mutex (the replica
/// itself is single-threaded by contract).
///
/// Nodes can be marked down, in which case calls to them fail with
/// Unavailable — used by failure-injection tests.
class InProcHub {
 public:
  explicit InProcHub(size_t num_nodes);

  /// `handler` must outlive the hub or be unregistered (nullptr) first.
  void Register(NodeId id, RequestHandler* handler);

  void SetNodeUp(NodeId id, bool up);
  bool IsNodeUp(NodeId id) const;

  Result<std::string> Call(NodeId dest, std::string_view request);

  size_t num_nodes() const { return slots_.size(); }

 private:
  struct Slot {
    mutable Mutex mu;
    RequestHandler* handler GUARDED_BY(mu) = nullptr;
    bool up GUARDED_BY(mu) = true;
  };
  std::vector<std::unique_ptr<Slot>> slots_;
};

/// Transport facade over a shared hub. Tracks the same counter surface as
/// TcpTransport (calls + frame bytes; there is nothing to pool in-process,
/// so the connection counters stay zero) so server-level stats report the
/// transport layer identically under both deployments.
class InProcTransport : public Transport {
 public:
  explicit InProcTransport(InProcHub* hub) : hub_(hub) {}

  Result<std::string> Call(NodeId dest, std::string_view request) override {
    // relaxed: monotonic stats counters, read only for reporting.
    calls_.fetch_add(1, std::memory_order_relaxed);
    bytes_sent_.fetch_add(request.size(), std::memory_order_relaxed);
    Result<std::string> r = hub_->Call(dest, request);
    if (r.ok()) {
      // relaxed: monotonic stats counter (see above).
      bytes_received_.fetch_add(r->size(), std::memory_order_relaxed);
    }
    return r;
  }

  TransportStats Stats(bool reset) override {
    TransportStats s;
    // relaxed: counters are independent monotonic totals; a call racing the
    // read lands in this report or the next, both acceptable.
    if (reset) {
      // relaxed: monotonic stats counters drained into a report.
      s.calls = calls_.exchange(0, std::memory_order_relaxed);
      s.bytes_sent = bytes_sent_.exchange(0, std::memory_order_relaxed);
      s.bytes_received = bytes_received_.exchange(0, std::memory_order_relaxed);
    } else {
      // relaxed: monotonic stats counters read for a report.
      s.calls = calls_.load(std::memory_order_relaxed);
      s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
      s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
    }
    return s;
  }

 private:
  InProcHub* hub_;
  std::atomic<uint64_t> calls_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};
};

}  // namespace epidemic::net

#endif  // EPIDEMIC_NET_INPROC_TRANSPORT_H_
