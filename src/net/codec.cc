#include "net/codec.h"

#include <utility>

#include "core/wire.h"

namespace epidemic::net {

namespace {

// Protocol-message bodies are shared with the journal (core/wire.h); only
// the client messages are encoded here.

void EncodeBody(ByteWriter& w, const PropagationRequest& m) {
  wire::EncodePropagationRequestBody(w, m);
}

void EncodeBody(ByteWriter& w, const PropagationResponse& m) {
  wire::EncodePropagationResponseBody(w, m);
}

void EncodeBody(ByteWriter& w, const OobRequest& m) {
  wire::EncodeOobRequestBody(w, m);
}

void EncodeBody(ByteWriter& w, const OobResponse& m) {
  wire::EncodeOobResponseBody(w, m);
}

void EncodeBody(ByteWriter& w, const ClientUpdateRequest& m) {
  w.PutString(m.item_name);
  w.PutString(m.value);
}

void EncodeBody(ByteWriter& w, const ClientReadRequest& m) {
  w.PutString(m.item_name);
}

void EncodeBody(ByteWriter& w, const ClientOobFetchRequest& m) {
  w.PutVarint64(m.from_peer);
  w.PutString(m.item_name);
}

void EncodeBody(ByteWriter& w, const ClientReply& m) {
  w.PutU8(m.code);
  w.PutString(m.payload);
}

void EncodeBody(ByteWriter& w, const ClientDeleteRequest& m) {
  w.PutString(m.item_name);
}

void EncodeBody(ByteWriter&, const ClientStatsRequest&) {}

void EncodeBody(ByteWriter& w, const ClientScanRequest& m) {
  w.PutString(m.prefix);
  w.PutVarint64(m.limit);
}

void EncodeBody(ByteWriter& w, const ClientSyncRequest& m) {
  w.PutVarint64(m.peer);
}

void EncodeBody(ByteWriter&, const ClientCheckpointRequest&) {}

void EncodeBody(ByteWriter& w, const ShardedPropagationRequest& m) {
  if (m.wire_version >= kWireV3) {
    wire::EncodeShardedPropagationRequestBodyV3(w, m);
  } else {
    wire::EncodeShardedPropagationRequestBody(w, m);
  }
}

void EncodeBody(ByteWriter& w, const ShardedPropagationResponse& m) {
  // The v3 response envelope prefixes the v2 layout (num_shards + opaque
  // segments) with a flags byte and the source's mutation epoch; the
  // segment body format differs too, which the tag announces.
  if (m.wire_version >= kWireV3) {
    wire::EncodeShardedPropagationResponseBodyV3(w, m);
  } else {
    wire::EncodeShardedPropagationResponseBody(w, m);
  }
}

void EncodeBody(ByteWriter&, const ClientResetStatsRequest&) {}

MessageType TagOf(const Message& msg) {
  switch (msg.index()) {
    case 0:
      return MessageType::kPropagationRequest;
    case 1:
      return MessageType::kPropagationResponse;
    case 2:
      return MessageType::kOobRequest;
    case 3:
      return MessageType::kOobResponse;
    case 4:
      return MessageType::kClientUpdate;
    case 5:
      return MessageType::kClientRead;
    case 6:
      return MessageType::kClientOobFetch;
    case 7:
      return MessageType::kClientReply;
    case 8:
      return MessageType::kClientDelete;
    case 9:
      return MessageType::kClientStats;
    case 10:
      return MessageType::kClientScan;
    case 11:
      return MessageType::kClientSync;
    case 12:
      return MessageType::kClientCheckpoint;
    case 13:
      return std::get<ShardedPropagationRequest>(msg).wire_version >= kWireV3
                 ? MessageType::kShardedPropagationRequestV3
                 : MessageType::kShardedPropagationRequest;
    case 14:
      return std::get<ShardedPropagationResponse>(msg).wire_version >= kWireV3
                 ? MessageType::kShardedPropagationResponseV3
                 : MessageType::kShardedPropagationResponse;
    default:
      return MessageType::kClientResetStats;
  }
}

template <typename T>
Result<Message> Wrap(Result<T> r) {
  if (!r.ok()) return r.status();
  return Message(std::move(*r));
}

Result<Message> DecodeClientUpdate(ByteReader& r) {
  ClientUpdateRequest m;
  auto name = r.GetString();
  if (!name.ok()) return name.status();
  m.item_name = std::move(*name);
  auto value = r.GetString();
  if (!value.ok()) return value.status();
  m.value = std::move(*value);
  return Message(std::move(m));
}

Result<Message> DecodeClientRead(ByteReader& r) {
  ClientReadRequest m;
  auto name = r.GetString();
  if (!name.ok()) return name.status();
  m.item_name = std::move(*name);
  return Message(std::move(m));
}

Result<Message> DecodeClientOobFetch(ByteReader& r) {
  ClientOobFetchRequest m;
  auto peer = r.GetVarint64();
  if (!peer.ok()) return peer.status();
  m.from_peer = static_cast<NodeId>(*peer);
  auto name = r.GetString();
  if (!name.ok()) return name.status();
  m.item_name = std::move(*name);
  return Message(std::move(m));
}

Result<Message> DecodeClientDelete(ByteReader& r) {
  ClientDeleteRequest m;
  auto name = r.GetString();
  if (!name.ok()) return name.status();
  m.item_name = std::move(*name);
  return Message(std::move(m));
}

Result<Message> DecodeClientReply(ByteReader& r) {
  ClientReply m;
  auto code = r.GetU8();
  if (!code.ok()) return code.status();
  m.code = *code;
  auto payload = r.GetString();
  if (!payload.ok()) return payload.status();
  m.payload = std::move(*payload);
  return Message(std::move(m));
}

Result<Message> DecodeClientScan(ByteReader& r) {
  ClientScanRequest m;
  auto prefix = r.GetString();
  if (!prefix.ok()) return prefix.status();
  m.prefix = std::move(*prefix);
  auto limit = r.GetVarint64();
  if (!limit.ok()) return limit.status();
  m.limit = *limit;
  return Message(std::move(m));
}

}  // namespace

std::string EncodeScanListing(
    const std::vector<std::pair<std::string, std::string>>& items) {
  ByteWriter w;
  w.PutVarint64(items.size());
  for (const auto& [name, value] : items) {
    w.PutString(name);
    w.PutString(value);
  }
  return w.Release();
}

Result<std::vector<std::pair<std::string, std::string>>> DecodeScanListing(
    std::string_view payload) {
  ByteReader r(payload);
  auto count = r.GetVarint64();
  if (!count.ok()) return count.status();
  if (*count > (1u << 24)) return Status::Corruption("absurd listing size");
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    auto name = r.GetString();
    if (!name.ok()) return name.status();
    auto value = r.GetString();
    if (!value.ok()) return value.status();
    out.emplace_back(std::move(*name), std::move(*value));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after listing");
  return out;
}

std::string Encode(const Message& msg) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(TagOf(msg)));
  std::visit([&w](const auto& m) { EncodeBody(w, m); }, msg);
  return w.Release();
}

Result<Message> Decode(std::string_view frame) {
  ByteReader r(frame);
  auto tag = r.GetU8();
  if (!tag.ok()) return tag.status();

  Result<Message> result = Status::Corruption("unknown message tag " +
                                              std::to_string(*tag));
  switch (static_cast<MessageType>(*tag)) {
    case MessageType::kPropagationRequest:
      result = Wrap(wire::DecodePropagationRequestBody(r));
      break;
    case MessageType::kPropagationResponse:
      result = Wrap(wire::DecodePropagationResponseBody(r));
      break;
    case MessageType::kOobRequest:
      result = Wrap(wire::DecodeOobRequestBody(r));
      break;
    case MessageType::kOobResponse:
      result = Wrap(wire::DecodeOobResponseBody(r));
      break;
    case MessageType::kClientUpdate:
      result = DecodeClientUpdate(r);
      break;
    case MessageType::kClientRead:
      result = DecodeClientRead(r);
      break;
    case MessageType::kClientOobFetch:
      result = DecodeClientOobFetch(r);
      break;
    case MessageType::kClientReply:
      result = DecodeClientReply(r);
      break;
    case MessageType::kClientDelete:
      result = DecodeClientDelete(r);
      break;
    case MessageType::kClientStats:
      result = Message(ClientStatsRequest{});
      break;
    case MessageType::kClientScan:
      result = DecodeClientScan(r);
      break;
    case MessageType::kClientSync: {
      auto peer = r.GetVarint64();
      if (!peer.ok()) {
        result = peer.status();
      } else {
        result = Message(ClientSyncRequest{static_cast<NodeId>(*peer)});
      }
      break;
    }
    case MessageType::kClientCheckpoint:
      result = Message(ClientCheckpointRequest{});
      break;
    case MessageType::kShardedPropagationRequest:
      result = Wrap(wire::DecodeShardedPropagationRequestBody(r));
      break;
    case MessageType::kShardedPropagationResponse:
      result = Wrap(wire::DecodeShardedPropagationResponseBody(r));
      break;
    case MessageType::kClientResetStats:
      result = Message(ClientResetStatsRequest{});
      break;
    case MessageType::kShardedPropagationRequestV3:
      result = Wrap(wire::DecodeShardedPropagationRequestBodyV3(r));
      break;
    case MessageType::kShardedPropagationResponseV3:
      result = Wrap(wire::DecodeShardedPropagationResponseBodyV3(r));
      break;
  }
  if (result.ok() && !r.AtEnd()) {
    return Status::Corruption("trailing bytes after message body");
  }
  return result;
}

}  // namespace epidemic::net
