#ifndef EPIDEMIC_NET_CODEC_H_
#define EPIDEMIC_NET_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "core/messages.h"
#include "vv/vv_codec.h"

namespace epidemic::net {

/// Client-facing RPCs used by the server module, sharing the protocol
/// codec so everything on the wire has one format.
struct ClientUpdateRequest {
  std::string item_name;
  std::string value;
};

struct ClientReadRequest {
  std::string item_name;
};

/// Deletes an item (writes a tombstone) at the addressed server.
struct ClientDeleteRequest {
  std::string item_name;
};

/// Asks the server for its DebugString (DBVV, counters, sizes).
struct ClientStatsRequest {};

/// Atomically reads-and-resets the server's aggregated protocol counters
/// (all shard locks held for the duration). The reply payload is the
/// DebugString rendered from the counter snapshot taken at reset time.
struct ClientResetStatsRequest {};

/// Admin: asks the server to run one anti-entropy pull from `peer` now,
/// outside its background schedule.
struct ClientSyncRequest {
  NodeId peer = 0;
};

/// Admin: asks a durable server to checkpoint (snapshot + truncate
/// journal) now.
struct ClientCheckpointRequest {};

/// Lists live items by name prefix. The reply payload is a scan listing:
/// varint count followed by (name, value) string pairs — see
/// EncodeScanListing/DecodeScanListing.
struct ClientScanRequest {
  std::string prefix;
  uint64_t limit = 0;  // 0 = unlimited
};

std::string EncodeScanListing(
    const std::vector<std::pair<std::string, std::string>>& items);
Result<std::vector<std::pair<std::string, std::string>>> DecodeScanListing(
    std::string_view payload);

/// Request that the server perform an out-of-bound fetch of an item from a
/// given peer before answering (priority read, §5.2 motivation).
struct ClientOobFetchRequest {
  NodeId from_peer = 0;
  std::string item_name;
};

/// Generic reply for client operations: a status code (0 = OK) plus either
/// an error message or the read value.
struct ClientReply {
  uint8_t code = 0;  // StatusCode numeric value
  std::string payload;
};

/// Every message the codec understands.
using Message =
    std::variant<PropagationRequest, PropagationResponse, OobRequest,
                 OobResponse, ClientUpdateRequest, ClientReadRequest,
                 ClientOobFetchRequest, ClientReply, ClientDeleteRequest,
                 ClientStatsRequest, ClientScanRequest, ClientSyncRequest,
                 ClientCheckpointRequest, ShardedPropagationRequest,
                 ShardedPropagationResponse, ClientResetStatsRequest>;

/// Wire tags; stable across versions, one byte on the wire.
/// Tags 14-16 are the wire-format v2 additions (sharded anti-entropy and
/// atomic stats reset); tags 17-18 are the wire-format v3 exchange
/// (delta-encoded IVVs, indexed tails, optional segment compression —
/// DESIGN.md §10). Older peers reject newer tags as unknown, which is
/// exactly the signal the requester's version fallback keys off.
/// Tags 17-31 are reserved for v3; enum entries named *V3 must live in
/// that range (enforced by tools/protocol_lint.py wire-tag-duplicate).
enum class MessageType : uint8_t {
  kPropagationRequest = 1,
  kPropagationResponse = 2,
  kOobRequest = 3,
  kOobResponse = 4,
  kClientUpdate = 5,
  kClientRead = 6,
  kClientOobFetch = 7,
  kClientReply = 8,
  kClientDelete = 9,
  kClientStats = 10,
  kClientScan = 11,
  kClientSync = 12,
  kClientCheckpoint = 13,
  kShardedPropagationRequest = 14,
  kShardedPropagationResponse = 15,
  kClientResetStats = 16,
  kShardedPropagationRequestV3 = 17,
  kShardedPropagationResponseV3 = 18,
};

/// Serializes any protocol message into a self-describing byte string
/// (leading type tag + body). The inverse of Decode().
std::string Encode(const Message& msg);

/// Parses a frame produced by Encode(). Returns Corruption on malformed or
/// trailing bytes.
Result<Message> Decode(std::string_view frame);

/// Version-vector serialization lives in vv/vv_codec.h (shared with the
/// snapshot format); re-exported here for callers of the wire codec.
using ::epidemic::DecodeVersionVector;
using ::epidemic::EncodeVersionVector;

}  // namespace epidemic::net

#endif  // EPIDEMIC_NET_CODEC_H_
