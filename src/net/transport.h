#ifndef EPIDEMIC_NET_TRANSPORT_H_
#define EPIDEMIC_NET_TRANSPORT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "vv/version_vector.h"

namespace epidemic::net {

/// Server side of an RPC endpoint: consumes one encoded request message and
/// produces one encoded response message (both codec frames, no length
/// prefix — framing belongs to the transport).
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;
  virtual std::string HandleRequest(std::string_view request) = 0;
};

/// Client side: blocking request/response to a peer addressed by NodeId.
/// Implementations: InProcTransport (same-process, for tests and the
/// simulator-backed examples) and TcpTransport (real sockets).
class Transport {
 public:
  virtual ~Transport() = default;
  virtual Result<std::string> Call(NodeId dest, std::string_view request) = 0;
};

}  // namespace epidemic::net

#endif  // EPIDEMIC_NET_TRANSPORT_H_
