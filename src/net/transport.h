#ifndef EPIDEMIC_NET_TRANSPORT_H_
#define EPIDEMIC_NET_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/buffer_pool.h"
#include "common/result.h"
#include "common/status.h"
#include "vv/version_vector.h"

namespace epidemic::net {

/// A response assembled as a sequence of byte pieces, so vectored
/// transports (TcpServer's writev path) can send it without first gluing
/// the pieces into one contiguous string.
///
/// Exactly one of two backings is active:
///   - `owned`: the handler produced the pieces for this reply only. If
///     `recycle_pool` is set the transport returns their capacity there
///     after the send (they came from a BufferPool).
///   - `shared`: the pieces are an immutable cached frame replayed to many
///     peers concurrently (the server's fan-out serve cache); the reply
///     holds a reference, the transport must not mutate them.
struct VectoredReply {
  std::vector<std::string> owned;
  std::shared_ptr<const std::vector<std::string>> shared;
  BufferPool* recycle_pool = nullptr;

  /// The pieces to send, in order.
  const std::vector<std::string>& parts() const {
    return shared != nullptr ? *shared : owned;
  }

  size_t TotalBytes() const {
    size_t n = 0;
    for (const std::string& p : parts()) n += p.size();
    return n;
  }

  /// Resets to empty, recycling owned pieces into `recycle_pool` if set
  /// (shared pieces just drop their reference).
  void Recycle() {
    if (recycle_pool != nullptr) {
      for (std::string& p : owned) recycle_pool->Put(std::move(p));
    }
    owned.clear();
    shared.reset();
    recycle_pool = nullptr;
  }

  /// Glues the pieces into one contiguous frame (the non-vectored
  /// transports' shape). Single owned piece moves instead of copying.
  std::string Flatten() {
    if (shared == nullptr && owned.size() == 1 && recycle_pool == nullptr) {
      std::string out = std::move(owned[0]);
      owned.clear();
      return out;
    }
    std::string out;
    out.reserve(TotalBytes());
    for (const std::string& p : parts()) out.append(p);
    Recycle();
    return out;
  }
};

/// Server side of an RPC endpoint: consumes one encoded request message and
/// produces one encoded response message (both codec frames, no length
/// prefix — framing belongs to the transport).
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;
  virtual std::string HandleRequest(std::string_view request) = 0;

  /// Vectored variant: handlers that can produce the reply as pieces
  /// (header + pooled segment buffers) override this so a vectored
  /// transport never assembles a contiguous response. The default wraps
  /// HandleRequest in a single piece.
  virtual void HandleRequestV(std::string_view request, VectoredReply* reply) {
    reply->Recycle();
    reply->owned.push_back(HandleRequest(request));
  }
};

/// Client-side transport counters (persistent-connection accounting).
/// All zeros for transports that do not track them.
struct TransportStats {
  uint64_t calls = 0;               // Call/CallInto attempts
  uint64_t connections_opened = 0;  // fresh TCP connects that succeeded
  uint64_t connections_reused = 0;  // calls completed over a pooled fd
  uint64_t reconnects = 0;          // pooled fd died mid-call, reconnected
  uint64_t backoff_skips = 0;       // calls rejected inside a backoff window
  uint64_t bytes_sent = 0;          // wire bytes out (headers included)
  uint64_t bytes_received = 0;      // wire bytes in (headers included)
};

/// Client side: blocking request/response to a peer addressed by NodeId.
/// Implementations: InProcTransport (same-process, for tests and the
/// simulator-backed examples) and TcpTransport (real sockets).
class Transport {
 public:
  virtual ~Transport() = default;
  virtual Result<std::string> Call(NodeId dest, std::string_view request) = 0;

  /// Like Call but decodes into a caller-provided buffer whose capacity is
  /// reused across calls (pair with a pooled buffer to keep the steady
  /// state allocation-free). Default shims through Call.
  virtual Status CallInto(NodeId dest, std::string_view request,
                          std::string* response) {
    Result<std::string> r = Call(dest, request);
    if (!r.ok()) return r.status();
    *response = std::move(*r);
    return Status::OK();
  }

  /// Reads (and with `reset` zeroes) the transport counters. Transports
  /// that do not track them return zeros.
  virtual TransportStats Stats(bool reset) {
    (void)reset;
    return TransportStats{};
  }
};

}  // namespace epidemic::net

#endif  // EPIDEMIC_NET_TRANSPORT_H_
