#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/bytes.h"
#include "common/compress.h"
#include "common/logging.h"

namespace epidemic::net {

namespace {

Status SendAll(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(rc);
  }
  return Status::OK();
}

/// Gathered send: one sendmsg train over the iovec list, advancing the
/// (mutable, caller-local) entries across partial writes. sendmsg rather
/// than writev because only the msg-based calls take MSG_NOSIGNAL.
Status SendAllV(int fd, struct iovec* iov, size_t iovcnt) {
  size_t idx = 0;
  while (idx < iovcnt) {
    // Skip entries a previous partial write fully consumed.
    if (iov[idx].iov_len == 0) {
      ++idx;
      continue;
    }
    msghdr msg{};
    msg.msg_iov = iov + idx;
    msg.msg_iovlen = std::min<size_t>(iovcnt - idx, IOV_MAX);
    ssize_t rc = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("sendmsg: ") + std::strerror(errno));
    }
    size_t consumed = static_cast<size_t>(rc);
    while (idx < iovcnt && consumed >= iov[idx].iov_len) {
      consumed -= iov[idx].iov_len;
      iov[idx].iov_len = 0;
      ++idx;
    }
    if (idx < iovcnt && consumed > 0) {
      iov[idx].iov_base = static_cast<char*>(iov[idx].iov_base) + consumed;
      iov[idx].iov_len -= consumed;
    }
  }
  return Status::OK();
}

Status RecvAll(int fd, char* data, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t rc = ::recv(fd, data + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (rc == 0) return Status::IOError("connection closed mid-frame");
    got += static_cast<size_t>(rc);
  }
  return Status::OK();
}

// Payloads this small are never worth compressing.
constexpr size_t kCompressionThreshold = 512;

constexpr uint8_t kFlagCompressed = 0x01;
constexpr size_t kFrameHeaderBytes = 5;  // fixed32 length + flags byte

/// Builds the 5-byte header into `header`. The length is encoded through
/// ByteWriter::PutFixed32, so the wire bytes are little-endian on every
/// host — the old memcpy of a uint32_t leaked the host's byte order into
/// the frame format.
void BuildFrameHeader(uint32_t len, uint8_t flags,
                      char header[kFrameHeaderBytes]) {
  ByteWriter w;
  w.PutFixed32(len);
  w.PutU8(flags);
  std::memcpy(header, w.data().data(), kFrameHeaderBytes);
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame too large");
  }
  // Transparent compression (the dial-up links of §1): used only when it
  // actually shrinks the payload.
  uint8_t flags = 0;
  std::string compressed;
  std::string_view body = payload;
  if (payload.size() >= kCompressionThreshold) {
    compressed = Compress(payload);
    if (compressed.size() < payload.size()) {
      flags |= kFlagCompressed;
      body = compressed;
    }
  }

  char header[kFrameHeaderBytes];
  BuildFrameHeader(static_cast<uint32_t>(body.size()), flags, header);
  EPI_RETURN_NOT_OK(SendAll(fd, header, kFrameHeaderBytes));
  return SendAll(fd, body.data(), body.size());
}

Status WriteFrameV(int fd, const struct iovec* iov, size_t iovcnt) {
  uint64_t total = 0;
  for (size_t i = 0; i < iovcnt; ++i) total += iov[i].iov_len;
  if (total > kMaxFrameBytes) {
    return Status::InvalidArgument("frame too large");
  }
  // Header plus the caller's pieces in one gathered send. No transparent
  // compression on this path: compressing would force assembling the
  // contiguous payload this function exists to avoid (v3 already
  // negotiates per-segment compression where links want it).
  char header[kFrameHeaderBytes];
  BuildFrameHeader(static_cast<uint32_t>(total), /*flags=*/0, header);
  std::vector<struct iovec> vec(iovcnt + 1);
  vec[0].iov_base = header;
  vec[0].iov_len = kFrameHeaderBytes;
  for (size_t i = 0; i < iovcnt; ++i) vec[i + 1] = iov[i];
  return SendAllV(fd, vec.data(), vec.size());
}

Status ReadFrameInto(int fd, std::string* payload) {
  char header[kFrameHeaderBytes];
  EPI_RETURN_NOT_OK(RecvAll(fd, header, kFrameHeaderBytes));
  ByteReader hr(std::string_view(header, kFrameHeaderBytes));
  const uint32_t len = *hr.GetFixed32();   // 5 bytes present by construction
  const uint8_t flags = *hr.GetU8();
  if (len > kMaxFrameBytes) return Status::Corruption("oversized frame");
  if ((flags & ~kFlagCompressed) != 0) {
    return Status::Corruption("unknown frame flags");
  }
  // resize() reuses the string's capacity: a pooled or connection-local
  // buffer makes steady-state reads allocation-free.
  payload->resize(len);
  EPI_RETURN_NOT_OK(RecvAll(fd, payload->data(), len));
  if (flags & kFlagCompressed) {
    Result<std::string> plain = Decompress(*payload, kMaxFrameBytes);
    if (!plain.ok()) return plain.status();
    *payload = std::move(*plain);
  }
  return Status::OK();
}

Result<std::string> ReadFrame(int fd) {
  std::string payload;
  EPI_RETURN_NOT_OK(ReadFrameInto(fd, &payload));
  return payload;
}

Status TcpServer::Start(uint16_t port) {
  if (running_.load()) return Status::FailedPrecondition("already running");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }

  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    MutexLock lock(workers_mu_);
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.insert(fd);
    workers_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TcpServer::ServeConnection(int fd) {
  // Connection-local reusable buffers: with persistent peers the same
  // connection carries thousands of frames, so the request bytes and the
  // reply scaffolding are allocated once and recycled per frame.
  std::string request;
  VectoredReply reply;
  std::vector<struct iovec> iov;
  for (;;) {
    if (!ReadFrameInto(fd, &request).ok()) break;  // peer closed / error
    handler_->HandleRequestV(request, &reply);
    const std::vector<std::string>& parts = reply.parts();
    iov.clear();
    iov.reserve(parts.size());
    for (const std::string& p : parts) {
      if (p.empty()) continue;
      iov.push_back({const_cast<char*>(p.data()), p.size()});
    }
    Status sent = WriteFrameV(fd, iov.data(), iov.size());
    reply.Recycle();
    if (!sent.ok()) break;
  }
  MutexLock lock(workers_mu_);
  conn_fds_.erase(fd);
  ::close(fd);
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Shut the listener down to unblock accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    MutexLock lock(workers_mu_);
    // Persistent clients park their connection in recv between requests;
    // shutdown (not close — the owning worker closes) forces those reads
    // to return so the workers can exit and be joined.
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    workers.swap(workers_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  listen_fd_ = -1;
}

// ---------------------------------------------------------------------------
// TcpTransport.

namespace {

/// Opens a connected TCP_NODELAY socket to 127.0.0.1:`port`.
Result<int> ConnectTo(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int err = errno;
    ::close(fd);
    return Status::Unavailable(std::string("connect: ") +
                               std::strerror(err));
  }
  return fd;
}

}  // namespace

TcpTransport::TcpTransport(size_t num_nodes, Options options)
    : ports_(num_nodes, 0), options_(options) {
  conns_.reserve(num_nodes);
  for (size_t i = 0; i < num_nodes; ++i) {
    conns_.push_back(std::make_unique<PeerConn>());
  }
}

TcpTransport::~TcpTransport() {
  for (auto& pc : conns_) {
    MutexLock lock(pc->mu);
    if (pc->fd >= 0) ::close(pc->fd);
    pc->fd = -1;
  }
}

Result<std::string> TcpTransport::Call(NodeId dest, std::string_view request) {
  std::string response;
  EPI_RETURN_NOT_OK(CallInto(dest, request, &response));
  return response;
}

Status TcpTransport::CallInto(NodeId dest, std::string_view request,
                              std::string* response) {
  if (dest >= ports_.size() || ports_[dest] == 0) {
    return Status::InvalidArgument("no endpoint configured for node " +
                                   std::to_string(dest));
  }
  // relaxed: monotonic stats counter, read only for reporting.
  calls_.fetch_add(1, std::memory_order_relaxed);

  if (!options_.pool_connections) {
    // Legacy connect-per-call shape, kept as the benchmark baseline: one
    // socket/connect/close cycle per request.
    Result<int> fd = ConnectTo(ports_[dest]);
    if (!fd.ok()) return fd.status();
    // relaxed: monotonic stats counter (see above).
    connections_opened_.fetch_add(1, std::memory_order_relaxed);
    Status s = WriteFrame(*fd, request);
    if (s.ok()) s = ReadFrameInto(*fd, response);
    ::close(*fd);
    if (s.ok()) {
      // relaxed: monotonic byte counters, approximate wire accounting.
      bytes_sent_.fetch_add(request.size() + 5, std::memory_order_relaxed);
      bytes_received_.fetch_add(response->size() + 5,
                                std::memory_order_relaxed);
    }
    return s;
  }
  return CallPooled(*conns_[dest], ports_[dest], request, response);
}

Status TcpTransport::CallPooled(PeerConn& pc, uint16_t port,
                                std::string_view request,
                                std::string* response) {
  // One caller per peer at a time: the frame stream has no multiplexing,
  // so the connection carries exactly one request/response pair at once.
  // Different peers use different PeerConns and proceed in parallel.
  MutexLock lock(pc.mu);
  bool fresh = false;
  for (int attempt = 0;; ++attempt) {
    if (pc.fd < 0) {
      const TimeMicros now = RealClock::Default()->NowMicros();
      if (now < pc.backoff_until) {
        // Sticky backoff: this peer refused a connect recently; fail fast
        // instead of re-dialing on every anti-entropy tick.
        // relaxed: monotonic stats counter, read only for reporting.
        backoff_skips_.fetch_add(1, std::memory_order_relaxed);
        return Status::Unavailable("peer in connect backoff");
      }
      Result<int> fd = ConnectTo(port);
      if (!fd.ok()) {
        pc.backoff_micros =
            pc.backoff_micros == 0
                ? options_.backoff_initial_micros
                : std::min(pc.backoff_micros * 2, options_.backoff_max_micros);
        pc.backoff_until = now + pc.backoff_micros;
        return fd.status();
      }
      pc.fd = *fd;
      pc.backoff_micros = 0;
      pc.backoff_until = 0;
      fresh = true;
      // relaxed: monotonic stats counter, read only for reporting.
      connections_opened_.fetch_add(1, std::memory_order_relaxed);
    }
    Status s = WriteFrame(pc.fd, request);
    if (s.ok()) s = ReadFrameInto(pc.fd, response);
    if (s.ok()) {
      if (!fresh) {
        // relaxed: monotonic stats counter (see above).
        connections_reused_.fetch_add(1, std::memory_order_relaxed);
      }
      // relaxed: monotonic byte counters, approximate wire accounting
      // (header included; transparent compression may send fewer).
      bytes_sent_.fetch_add(request.size() + 5, std::memory_order_relaxed);
      bytes_received_.fetch_add(response->size() + 5,
                                std::memory_order_relaxed);
      return Status::OK();
    }
    // The pooled fd died mid-call (typically: the server restarted while
    // we were parked). Drop it; if this was its first failure, reconnect
    // and retry the call once — a fresh connection that still fails is a
    // real error the caller must see.
    ::close(pc.fd);
    pc.fd = -1;
    if (fresh || attempt > 0) return s;
    // relaxed: monotonic stats counter, read only for reporting.
    reconnects_.fetch_add(1, std::memory_order_relaxed);
  }
}

TransportStats TcpTransport::Stats(bool reset) {
  TransportStats s;
  // relaxed: counters are independent monotonic totals; a call racing the
  // read lands in this report or the next, both acceptable.
  auto take = [reset](std::atomic<uint64_t>& c) {
    return reset ? c.exchange(0, std::memory_order_relaxed)
                 : c.load(std::memory_order_relaxed);
  };
  s.calls = take(calls_);
  s.connections_opened = take(connections_opened_);
  s.connections_reused = take(connections_reused_);
  s.reconnects = take(reconnects_);
  s.backoff_skips = take(backoff_skips_);
  s.bytes_sent = take(bytes_sent_);
  s.bytes_received = take(bytes_received_);
  return s;
}

}  // namespace epidemic::net
