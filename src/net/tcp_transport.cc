#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/compress.h"
#include "common/logging.h"

namespace epidemic::net {

namespace {

Status SendAll(int fd, const char* data, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t rc = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Status RecvAll(int fd, char* data, size_t n) {
  size_t got = 0;
  while (got < n) {
    ssize_t rc = ::recv(fd, data + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    if (rc == 0) return Status::IOError("connection closed mid-frame");
    got += static_cast<size_t>(rc);
  }
  return Status::OK();
}

constexpr uint32_t kMaxFrameBytes = 256u << 20;  // 256 MiB sanity bound

// Payloads this small are never worth compressing.
constexpr size_t kCompressionThreshold = 512;

constexpr uint8_t kFlagCompressed = 0x01;

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame too large");
  }
  // Transparent compression (the dial-up links of §1): used only when it
  // actually shrinks the payload.
  uint8_t flags = 0;
  std::string compressed;
  std::string_view body = payload;
  if (payload.size() >= kCompressionThreshold) {
    compressed = Compress(payload);
    if (compressed.size() < payload.size()) {
      flags |= kFlagCompressed;
      body = compressed;
    }
  }

  uint32_t len = static_cast<uint32_t>(body.size());
  char header[5];
  std::memcpy(header, &len, 4);
  header[4] = static_cast<char>(flags);
  EPI_RETURN_NOT_OK(SendAll(fd, header, 5));
  return SendAll(fd, body.data(), body.size());
}

Result<std::string> ReadFrame(int fd) {
  char header[5];
  EPI_RETURN_NOT_OK(RecvAll(fd, header, 5));
  uint32_t len;
  std::memcpy(&len, header, 4);
  uint8_t flags = static_cast<uint8_t>(header[4]);
  if (len > kMaxFrameBytes) return Status::Corruption("oversized frame");
  if ((flags & ~kFlagCompressed) != 0) {
    return Status::Corruption("unknown frame flags");
  }
  std::string payload(len, '\0');
  EPI_RETURN_NOT_OK(RecvAll(fd, payload.data(), len));
  if (flags & kFlagCompressed) {
    return Decompress(payload, kMaxFrameBytes);
  }
  return payload;
}

Status TcpServer::Start(uint16_t port) {
  if (running_.load()) return Status::FailedPrecondition("already running");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(std::string("listen: ") + std::strerror(errno));
  }

  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed by Stop()
    }
    MutexLock lock(workers_mu_);
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    workers_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void TcpServer::ServeConnection(int fd) {
  for (;;) {
    Result<std::string> request = ReadFrame(fd);
    if (!request.ok()) break;  // peer closed or transport error
    std::string response = handler_->HandleRequest(*request);
    if (!WriteFrame(fd, response).ok()) break;
  }
  ::close(fd);
}

void TcpServer::Stop() {
  if (!running_.exchange(false)) return;
  // Shut the listener down to unblock accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    MutexLock lock(workers_mu_);
    workers.swap(workers_);
  }
  for (std::thread& t : workers) {
    if (t.joinable()) t.join();
  }
  listen_fd_ = -1;
}

Result<std::string> TcpTransport::Call(NodeId dest,
                                       std::string_view request) {
  if (dest >= ports_.size() || ports_[dest] == 0) {
    return Status::InvalidArgument("no endpoint configured for node " +
                                   std::to_string(dest));
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(ports_[dest]);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return Status::Unavailable("connect to node " + std::to_string(dest) +
                               ": " + std::strerror(errno));
  }

  Status s = WriteFrame(fd, request);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  Result<std::string> response = ReadFrame(fd);
  ::close(fd);
  return response;
}

}  // namespace epidemic::net
