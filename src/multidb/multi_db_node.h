#ifndef EPIDEMIC_MULTIDB_MULTI_DB_NODE_H_
#define EPIDEMIC_MULTIDB_MULTI_DB_NODE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/conflict.h"
#include "core/replica.h"

namespace epidemic::multidb {

/// A server hosting several replicated databases at once.
///
/// The paper's model (§2): "When the system maintains multiple databases, a
/// separate instance of the protocol runs for each database." MultiDbNode
/// owns one Replica per database name and keeps the instances fully
/// independent — separate DBVVs, logs, and auxiliary structures — while
/// letting a pair of nodes synchronize *all* shared databases in one sweep
/// whose per-database cost is a single DBVV comparison.
class MultiDbNode {
 public:
  /// `listener`, if given, receives conflict reports from every database
  /// and must outlive the node.
  MultiDbNode(NodeId id, size_t num_nodes,
              ConflictListener* listener = nullptr)
      : id_(id), num_nodes_(num_nodes), listener_(listener) {}

  MultiDbNode(const MultiDbNode&) = delete;
  MultiDbNode& operator=(const MultiDbNode&) = delete;

  NodeId id() const { return id_; }
  size_t num_nodes() const { return num_nodes_; }

  /// Returns the protocol instance for `db`, creating it on first use.
  Replica& OpenDatabase(std::string_view db);

  /// Returns the instance or nullptr.
  Replica* FindDatabase(std::string_view db);
  const Replica* FindDatabase(std::string_view db) const;

  /// Database names in lexicographic order.
  std::vector<std::string> ListDatabases() const;
  size_t database_count() const { return databases_.size(); }

  // -------------------------------------------------------------------
  // Convenience client operations addressed as <db, item>.
  //
  // MultiDbNode is thread-compatible like the replicas it owns: whoever
  // calls a mutating entry point must be the node's single writer (the
  // server serializes through its own mutex and asserts the capability
  // under it), which is what REQUIRES_SHARD_CONTEXT checks.

  Status Update(std::string_view db, std::string_view item,
                std::string_view value) REQUIRES_SHARD_CONTEXT {
    return OpenDatabase(db).Update(item, value);
  }
  Status Delete(std::string_view db, std::string_view item)
      REQUIRES_SHARD_CONTEXT {
    return OpenDatabase(db).Delete(item);
  }
  Result<std::string> Read(std::string_view db, std::string_view item)
      REQUIRES_SHARD_CONTEXT;

  // -------------------------------------------------------------------
  // Cross-node synchronization.

  /// One entry of the multi-database handshake: the DBVV of each database
  /// this node hosts. Comparing two summaries costs O(#databases), not
  /// O(#items) — the paper's scalability argument applied per database.
  struct DbSummary {
    std::string db;
    VersionVector dbvv;
  };
  std::vector<DbSummary> BuildSummary() const;

  /// Pulls every database of `source` that this node lags on (databases
  /// this node has never opened are created). Returns the number of
  /// databases that actually transferred items. The caller must own both
  /// nodes (it serves from `source` and accepts into this one).
  Result<size_t> PullAllFrom(MultiDbNode& source) REQUIRES_SHARD_CONTEXT;

  /// Pulls one named database. NotFound if the source doesn't host it.
  Result<size_t> PullFrom(MultiDbNode& source, std::string_view db)
      REQUIRES_SHARD_CONTEXT;

 private:
  NodeId id_;
  size_t num_nodes_;
  ConflictListener* listener_;
  std::map<std::string, std::unique_ptr<Replica>, std::less<>> databases_;
};

}  // namespace epidemic::multidb

#endif  // EPIDEMIC_MULTIDB_MULTI_DB_NODE_H_
