#include "multidb/multi_db_server.h"

#include <variant>

#include "common/bytes.h"
#include "net/codec.h"
#include "vv/vv_codec.h"

namespace epidemic::multidb {

namespace {
constexpr uint8_t kKindRouted = 1;
constexpr uint8_t kKindSummary = 2;

std::string EncodeErrorReply(const Status& s) {
  net::ClientReply reply;
  reply.code = static_cast<uint8_t>(s.code());
  reply.payload = s.message();
  return net::Encode(net::Message(std::move(reply)));
}
}  // namespace

std::string WrapRouted(std::string_view db, std::string_view inner) {
  ByteWriter w;
  w.PutU8(kKindRouted);
  w.PutString(db);
  w.PutBytes(inner.data(), inner.size());
  return w.Release();
}

Result<std::pair<std::string, std::string_view>> UnwrapRouted(
    std::string_view frame) {
  ByteReader r(frame);
  auto kind = r.GetU8();
  if (!kind.ok()) return kind.status();
  if (*kind != kKindRouted) return Status::Corruption("not a routed frame");
  auto db = r.GetString();
  if (!db.ok()) return db.status();
  if (db->empty()) return Status::Corruption("empty database name");
  std::string_view inner = frame.substr(frame.size() - r.remaining());
  return std::make_pair(std::move(*db), inner);
}

std::string SummaryRequestFrame() {
  return std::string(1, static_cast<char>(kKindSummary));
}

std::string EncodeSummary(const std::vector<MultiDbNode::DbSummary>& s) {
  ByteWriter w;
  w.PutVarint64(s.size());
  for (const auto& entry : s) {
    w.PutString(entry.db);
    EncodeVersionVector(&w, entry.dbvv);
  }
  return w.Release();
}

Result<std::vector<MultiDbNode::DbSummary>> DecodeSummary(
    std::string_view frame) {
  ByteReader r(frame);
  auto count = r.GetVarint64();
  if (!count.ok()) return count.status();
  if (*count > (1u << 20)) return Status::Corruption("absurd database count");
  std::vector<MultiDbNode::DbSummary> out;
  out.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    MultiDbNode::DbSummary entry;
    auto db = r.GetString();
    if (!db.ok()) return db.status();
    entry.db = std::move(*db);
    auto vv = DecodeVersionVector(&r);
    if (!vv.ok()) return vv.status();
    entry.dbvv = std::move(*vv);
    out.push_back(std::move(entry));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes after summary");
  return out;
}

std::string MultiDbServer::HandleRequest(std::string_view request) {
  if (request.empty()) {
    return EncodeErrorReply(Status::Corruption("empty frame"));
  }
  const uint8_t kind = static_cast<uint8_t>(request[0]);
  if (kind == kKindSummary) {
    if (request.size() != 1) {
      // The summary request is exactly its kind byte; trailing bytes mean
      // a corrupt or hostile frame, not a bigger request.
      return EncodeErrorReply(
          Status::Corruption("trailing bytes after summary request"));
    }
    MutexLock lock(mu_);
    return EncodeSummary(node_.BuildSummary());
  }
  auto routed = UnwrapRouted(request);
  if (!routed.ok()) return EncodeErrorReply(routed.status());
  MutexLock lock(mu_);
  return HandleRoutedLocked(routed->first, routed->second);
}

std::string MultiDbServer::HandleRoutedLocked(std::string_view db,
                                              std::string_view inner) {
  // Single-owner escape: the caller holds mu_, which serializes every
  // access to node_ — the lock holder IS the node's single writer.
  AssertShardContextHeld();
  auto decoded = net::Decode(inner);
  if (!decoded.ok()) return EncodeErrorReply(decoded.status());
  Replica& replica = node_.OpenDatabase(db);

  if (auto* prop = std::get_if<PropagationRequest>(&*decoded)) {
    if (prop->dbvv.size() != replica.num_nodes()) {
      // Boundary width check: a wrong-width DBVV from the network must
      // not reach the width-EPI_CHECKed VersionVector comparison.
      return EncodeErrorReply(
          Status::InvalidArgument("request DBVV of wrong width"));
    }
    return net::Encode(
        net::Message(replica.HandlePropagationRequest(*prop)));
  }
  if (auto* oob = std::get_if<OobRequest>(&*decoded)) {
    return net::Encode(net::Message(replica.HandleOobRequest(*oob)));
  }
  if (auto* update = std::get_if<net::ClientUpdateRequest>(&*decoded)) {
    Status s = replica.Update(update->item_name, update->value);
    net::ClientReply reply;
    reply.code = static_cast<uint8_t>(s.code());
    reply.payload = s.message();
    return net::Encode(net::Message(std::move(reply)));
  }
  if (auto* del = std::get_if<net::ClientDeleteRequest>(&*decoded)) {
    Status s = replica.Delete(del->item_name);
    net::ClientReply reply;
    reply.code = static_cast<uint8_t>(s.code());
    reply.payload = s.message();
    return net::Encode(net::Message(std::move(reply)));
  }
  if (auto* read = std::get_if<net::ClientReadRequest>(&*decoded)) {
    auto value = replica.Read(read->item_name);
    net::ClientReply reply;
    reply.code = static_cast<uint8_t>(value.status().code());
    reply.payload = value.ok() ? *value : value.status().message();
    return net::Encode(net::Message(std::move(reply)));
  }
  return EncodeErrorReply(
      Status::InvalidArgument("message type not servable per-database"));
}

Status MultiDbServer::Update(std::string_view db, std::string_view item,
                             std::string_view value) {
  MutexLock lock(mu_);
  // Single-owner escape: mu_ serializes all access to node_.
  AssertShardContextHeld();
  return node_.Update(db, item, value);
}

Status MultiDbServer::Delete(std::string_view db, std::string_view item) {
  MutexLock lock(mu_);
  // Single-owner escape: mu_ serializes all access to node_.
  AssertShardContextHeld();
  return node_.Delete(db, item);
}

Result<std::string> MultiDbServer::Read(std::string_view db,
                                        std::string_view item) {
  MutexLock lock(mu_);
  // Single-owner escape: mu_ serializes all access to node_.
  AssertShardContextHeld();
  return node_.Read(db, item);
}

std::vector<MultiDbNode::DbSummary> MultiDbServer::BuildSummary() const {
  MutexLock lock(mu_);
  return node_.BuildSummary();
}

Status MultiDbServer::PullFrom(NodeId peer, std::string_view db) {
  PropagationRequest req;
  {
    MutexLock lock(mu_);
    req = node_.OpenDatabase(db).BuildPropagationRequest();
  }
  auto wire = transport_->Call(
      peer, WrapRouted(db, net::Encode(net::Message(std::move(req)))));
  if (!wire.ok()) return wire.status();
  auto decoded = net::Decode(*wire);
  if (!decoded.ok()) return decoded.status();
  auto* resp = std::get_if<PropagationResponse>(&*decoded);
  if (resp == nullptr) {
    return Status::Corruption("peer sent a non-propagation reply");
  }
  MutexLock lock(mu_);
  // Single-owner escape: mu_ serializes all access to node_.
  AssertShardContextHeld();
  return node_.OpenDatabase(db).AcceptPropagation(*resp);
}

Result<size_t> MultiDbServer::PullAllFrom(NodeId peer) {
  auto wire = transport_->Call(peer, SummaryRequestFrame());
  if (!wire.ok()) return wire.status();
  auto summary = DecodeSummary(*wire);
  if (!summary.ok()) return summary.status();

  // Decide which databases lag with one DBVV comparison each, without
  // holding the lock across the pulls.
  std::vector<std::string> lagging;
  {
    MutexLock lock(mu_);
    for (const auto& entry : *summary) {
      const VersionVector& mine = node_.OpenDatabase(entry.db).dbvv();
      if (entry.dbvv.size() != mine.size()) {
        // A peer advertising a different cluster width is misconfigured
        // or hostile; comparing would abort on the width EPI_CHECK.
        return Status::InvalidArgument("peer summary DBVV of wrong width");
      }
      if (!VersionVector::DominatesOrEqual(mine, entry.dbvv)) {
        lagging.push_back(entry.db);
      }
    }
  }
  for (const std::string& db : lagging) {
    EPI_RETURN_NOT_OK(PullFrom(peer, db));
  }
  return lagging.size();
}

}  // namespace epidemic::multidb
