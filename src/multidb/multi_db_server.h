#ifndef EPIDEMIC_MULTIDB_MULTI_DB_SERVER_H_
#define EPIDEMIC_MULTIDB_MULTI_DB_SERVER_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "multidb/multi_db_node.h"
#include "net/transport.h"

namespace epidemic::multidb {

/// Wire envelope for multi-database RPC. Two frame kinds:
///   kind 1 (routed):  [u8=1][varint len][db name][inner codec frame]
///   kind 2 (summary): [u8=2]                       — request
/// A routed request's reply is the inner frame's reply, un-enveloped; a
/// summary request's reply is [varint count]{[string db][vv]}.
std::string WrapRouted(std::string_view db, std::string_view inner);

/// Splits a routed frame into (db, inner). Corruption on malformed input.
Result<std::pair<std::string, std::string_view>> UnwrapRouted(
    std::string_view frame);

/// The one-byte summary request frame.
std::string SummaryRequestFrame();

std::string EncodeSummary(const std::vector<MultiDbNode::DbSummary>& s);
Result<std::vector<MultiDbNode::DbSummary>> DecodeSummary(
    std::string_view frame);

/// Network-facing multi-database replica server (§2: separate protocol
/// instance per database). Serves routed protocol/client RPCs and the
/// database summary; pulls lagging databases from peers over any
/// net::Transport at a cost of one DBVV comparison per database.
///
/// Locking mirrors ReplicaServer: one mutex guards the whole node, never
/// held across a transport call.
class MultiDbServer : public net::RequestHandler {
 public:
  MultiDbServer(NodeId id, size_t num_nodes, net::Transport* transport)
      : id_(id), transport_(transport), node_(id, num_nodes) {}

  // -------------------------------------------------------------------
  // RPC server side.
  std::string HandleRequest(std::string_view request) override
      EXCLUDES(mu_);

  // -------------------------------------------------------------------
  // Local (thread-safe) API.

  Status Update(std::string_view db, std::string_view item,
                std::string_view value) EXCLUDES(mu_);
  Status Delete(std::string_view db, std::string_view item) EXCLUDES(mu_);
  Result<std::string> Read(std::string_view db, std::string_view item)
      EXCLUDES(mu_);

  std::vector<MultiDbNode::DbSummary> BuildSummary() const EXCLUDES(mu_);

  /// One anti-entropy exchange for one database, over the transport.
  Status PullFrom(NodeId peer, std::string_view db) EXCLUDES(mu_);

  /// Fetches the peer's summary, then pulls every database this node lags
  /// on. Returns the number of databases that transferred items.
  Result<size_t> PullAllFrom(NodeId peer) EXCLUDES(mu_);

  NodeId id() const { return id_; }

 private:
  std::string HandleRoutedLocked(std::string_view db, std::string_view inner)
      REQUIRES(mu_);

  NodeId id_;
  net::Transport* transport_;
  mutable Mutex mu_;
  MultiDbNode node_ GUARDED_BY(mu_);
};

}  // namespace epidemic::multidb

#endif  // EPIDEMIC_MULTIDB_MULTI_DB_SERVER_H_
