#include "multidb/multi_db_node.h"

namespace epidemic::multidb {

Replica& MultiDbNode::OpenDatabase(std::string_view db) {
  auto it = databases_.find(db);
  if (it == databases_.end()) {
    it = databases_
             .emplace(std::string(db),
                      std::make_unique<Replica>(id_, num_nodes_, listener_))
             .first;
  }
  return *it->second;
}

Replica* MultiDbNode::FindDatabase(std::string_view db) {
  auto it = databases_.find(db);
  return it == databases_.end() ? nullptr : it->second.get();
}

const Replica* MultiDbNode::FindDatabase(std::string_view db) const {
  auto it = databases_.find(db);
  return it == databases_.end() ? nullptr : it->second.get();
}

std::vector<std::string> MultiDbNode::ListDatabases() const {
  std::vector<std::string> names;
  names.reserve(databases_.size());
  for (const auto& [name, replica] : databases_) names.push_back(name);
  return names;
}

Result<std::string> MultiDbNode::Read(std::string_view db,
                                      std::string_view item) {
  Replica* replica = FindDatabase(db);
  if (replica == nullptr) {
    return Status::NotFound("no database named '" + std::string(db) + "'");
  }
  return replica->Read(item);
}

std::vector<MultiDbNode::DbSummary> MultiDbNode::BuildSummary() const {
  std::vector<DbSummary> summary;
  summary.reserve(databases_.size());
  for (const auto& [name, replica] : databases_) {
    summary.push_back(DbSummary{name, replica->dbvv()});
  }
  return summary;
}

Result<size_t> MultiDbNode::PullAllFrom(MultiDbNode& source) {
  size_t transferred = 0;
  // Walk the source's summary: one DBVV comparison per database decides
  // whether that database's protocol instance runs at all.
  for (const DbSummary& entry : source.BuildSummary()) {
    Replica& mine = OpenDatabase(entry.db);
    if (VersionVector::DominatesOrEqual(mine.dbvv(), entry.dbvv)) {
      continue;  // already current for this database
    }
    auto copied = PropagateOnce(*source.FindDatabase(entry.db), mine);
    if (!copied.ok()) return copied.status();
    if (*copied > 0) ++transferred;
  }
  return transferred;
}

Result<size_t> MultiDbNode::PullFrom(MultiDbNode& source,
                                     std::string_view db) {
  Replica* theirs = source.FindDatabase(db);
  if (theirs == nullptr) {
    return Status::NotFound("source hosts no database named '" +
                            std::string(db) + "'");
  }
  return PropagateOnce(*theirs, OpenDatabase(db));
}

}  // namespace epidemic::multidb
