#ifndef EPIDEMIC_TOKENS_TOKEN_SERVICE_H_
#define EPIDEMIC_TOKENS_TOKEN_SERVICE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/thread_annotations.h"
#include "common/result.h"
#include "common/status.h"
#include "net/transport.h"
#include "vv/version_vector.h"

namespace epidemic::tokens {

/// Pessimistic replica control via per-item tokens (paper §2): "there is a
/// unique token associated with every data item, and a replica is required
/// to acquire a token before performing any updates". With every update
/// guarded by its token, concurrent updates — and hence version-vector
/// conflicts — cannot occur; anti-entropy still propagates the updates.
///
/// The paper does not prescribe a token-location mechanism, so this module
/// uses a standard sharded directory: each item has a *home node*
/// (hash(item) mod n) that arbitrates its token. A node holding a token
/// keeps it until another node asks (token caching), so repeated updates at
/// one site stay local after the first acquisition.
///
/// Deployment model mirrors the replica: one TokenService per node; the
/// request/release messages are small structs with their own binary codec,
/// routable over any net::Transport (or called directly in-process).

/// Asks `home` for the token of `item` on behalf of `requester`.
struct TokenRequest {
  NodeId requester = 0;
  std::string item;
};

/// Reply from the home node.
struct TokenReply {
  bool granted = false;
  NodeId holder = 0;  // current holder when not granted
  std::string item;
};

/// Returns the token of `item` to its home.
struct TokenRelease {
  NodeId holder = 0;
  std::string item;
};

std::string EncodeTokenRequest(const TokenRequest& m);
std::string EncodeTokenReply(const TokenReply& m);
std::string EncodeTokenRelease(const TokenRelease& m);
Result<TokenRequest> DecodeTokenRequest(std::string_view frame);
Result<TokenReply> DecodeTokenReply(std::string_view frame);
Result<TokenRelease> DecodeTokenRelease(std::string_view frame);

/// The per-node token authority + local cache.
///
/// Thread-compatible (confine to one thread or guard externally), like
/// Replica.
class TokenService {
 public:
  TokenService(NodeId id, size_t num_nodes)
      : id_(id), num_nodes_(num_nodes) {}

  /// The node that arbitrates `item`'s token.
  NodeId HomeOf(std::string_view item) const;

  /// True if this node has explicitly acquired `item`'s token (and may
  /// update the item). Unclaimed tokens are held by nobody — the home node
  /// arbitrates them but must acquire like everyone else to update.
  bool Holds(std::string_view item) const;

  /// Home-side handling of a request: grants when the token is unclaimed
  /// or already owned by the requester, denies with the current holder
  /// otherwise. Callers route this to HomeOf(item).
  TokenReply HandleRequest(const TokenRequest& req);

  /// Home-side handling of a release.
  Status HandleRelease(const TokenRelease& rel);

  /// Client-side: records a granted token locally.
  void AdoptGrant(std::string_view item);

  /// Client-side: gives the token up (pair with a TokenRelease to the
  /// home, unless this node *is* the home).
  void DropLocal(std::string_view item);

  /// Convenience for in-process topologies: acquire `item`'s token for
  /// `services[id_]` from the right home in one call. Returns OK,
  /// or FailedPrecondition naming the holder.
  static Status AcquireDirect(std::vector<TokenService*>& services,
                              NodeId requester, std::string_view item);

  /// Convenience: release back to the home.
  static Status ReleaseDirect(std::vector<TokenService*>& services,
                              NodeId holder, std::string_view item);

  /// Distributed variants: route the request/release to the item's home
  /// node over `transport` (the home serves them through a
  /// TokenServiceHandler). When this node *is* the home, no RPC happens.
  Status Acquire(net::Transport& transport, std::string_view item);
  Status Release(net::Transport& transport, std::string_view item);

  NodeId id() const { return id_; }

 private:
  struct DirectoryEntry {
    NodeId holder;
  };

  NodeId id_;
  size_t num_nodes_;
  // Home-side directory: item -> current holder. Items without an entry
  // are unclaimed (token at home).
  std::unordered_map<std::string, DirectoryEntry> directory_;
  // Client-side cache: tokens this node holds.
  std::unordered_map<std::string, bool> held_;
};

/// RequestHandler facade so a TokenService can be served over any
/// net::Transport (typically registered on a port/hub slot of its own,
/// next to the node's ReplicaServer). Thread-safe: serializes access to
/// the wrapped service.
class TokenServiceHandler : public net::RequestHandler {
 public:
  explicit TokenServiceHandler(TokenService* service) : service_(service) {}

  std::string HandleRequest(std::string_view request) override
      EXCLUDES(mu_);

 private:
  Mutex mu_;
  TokenService* const service_ PT_GUARDED_BY(mu_);
};

}  // namespace epidemic::tokens

#endif  // EPIDEMIC_TOKENS_TOKEN_SERVICE_H_
