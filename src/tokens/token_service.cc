#include "tokens/token_service.h"

#include <functional>
#include <vector>

#include "common/logging.h"

namespace epidemic::tokens {

namespace {
constexpr uint8_t kTagRequest = 1;
constexpr uint8_t kTagReply = 2;
constexpr uint8_t kTagRelease = 3;
}  // namespace

std::string EncodeTokenRequest(const TokenRequest& m) {
  ByteWriter w;
  w.PutU8(kTagRequest);
  w.PutVarint64(m.requester);
  w.PutString(m.item);
  return w.Release();
}

std::string EncodeTokenReply(const TokenReply& m) {
  ByteWriter w;
  w.PutU8(kTagReply);
  w.PutU8(m.granted ? 1 : 0);
  w.PutVarint64(m.holder);
  w.PutString(m.item);
  return w.Release();
}

std::string EncodeTokenRelease(const TokenRelease& m) {
  ByteWriter w;
  w.PutU8(kTagRelease);
  w.PutVarint64(m.holder);
  w.PutString(m.item);
  return w.Release();
}

namespace {
Result<uint8_t> ExpectTag(ByteReader& r, uint8_t expected) {
  auto tag = r.GetU8();
  if (!tag.ok()) return tag.status();
  if (*tag != expected) {
    return Status::Corruption("unexpected token message tag");
  }
  return *tag;
}
}  // namespace

Result<TokenRequest> DecodeTokenRequest(std::string_view frame) {
  ByteReader r(frame);
  EPI_RETURN_NOT_OK(ExpectTag(r, kTagRequest).status());
  TokenRequest m;
  auto requester = r.GetVarint64();
  if (!requester.ok()) return requester.status();
  m.requester = static_cast<NodeId>(*requester);
  auto item = r.GetString();
  if (!item.ok()) return item.status();
  m.item = std::move(*item);
  if (!r.AtEnd()) return Status::Corruption("trailing bytes");
  return m;
}

Result<TokenReply> DecodeTokenReply(std::string_view frame) {
  ByteReader r(frame);
  EPI_RETURN_NOT_OK(ExpectTag(r, kTagReply).status());
  TokenReply m;
  auto granted = r.GetU8();
  if (!granted.ok()) return granted.status();
  m.granted = (*granted != 0);
  auto holder = r.GetVarint64();
  if (!holder.ok()) return holder.status();
  m.holder = static_cast<NodeId>(*holder);
  auto item = r.GetString();
  if (!item.ok()) return item.status();
  m.item = std::move(*item);
  if (!r.AtEnd()) return Status::Corruption("trailing bytes");
  return m;
}

Result<TokenRelease> DecodeTokenRelease(std::string_view frame) {
  ByteReader r(frame);
  EPI_RETURN_NOT_OK(ExpectTag(r, kTagRelease).status());
  TokenRelease m;
  auto holder = r.GetVarint64();
  if (!holder.ok()) return holder.status();
  m.holder = static_cast<NodeId>(*holder);
  auto item = r.GetString();
  if (!item.ok()) return item.status();
  m.item = std::move(*item);
  if (!r.AtEnd()) return Status::Corruption("trailing bytes");
  return m;
}

NodeId TokenService::HomeOf(std::string_view item) const {
  return static_cast<NodeId>(std::hash<std::string_view>{}(item) %
                             num_nodes_);
}

bool TokenService::Holds(std::string_view item) const {
  return held_.contains(std::string(item));
}

TokenReply TokenService::HandleRequest(const TokenRequest& req) {
  EPI_CHECK(HomeOf(req.item) == id_)
      << "token request for '" << req.item << "' routed to non-home node "
      << id_;
  TokenReply reply;
  reply.item = req.item;
  auto it = directory_.find(req.item);
  if (it == directory_.end() || it->second.holder == req.requester) {
    // Unclaimed (or re-request by the current holder): grant. The home
    // node itself goes through this same path for its own updates.
    directory_[req.item] = DirectoryEntry{req.requester};
    reply.granted = true;
    reply.holder = req.requester;
  } else {
    reply.granted = false;
    reply.holder = it->second.holder;
  }
  return reply;
}

Status TokenService::HandleRelease(const TokenRelease& rel) {
  EPI_CHECK(HomeOf(rel.item) == id_)
      << "token release for '" << rel.item << "' routed to non-home node";
  auto it = directory_.find(rel.item);
  if (it == directory_.end() || it->second.holder != rel.holder) {
    return Status::FailedPrecondition("node " + std::to_string(rel.holder) +
                                      " does not hold the token for '" +
                                      rel.item + "'");
  }
  directory_.erase(it);
  return Status::OK();
}

void TokenService::AdoptGrant(std::string_view item) {
  held_[std::string(item)] = true;
}

void TokenService::DropLocal(std::string_view item) {
  held_.erase(std::string(item));
}

Status TokenService::AcquireDirect(std::vector<TokenService*>& services,
                                   NodeId requester, std::string_view item) {
  TokenService* self = services[requester];
  if (self->Holds(item)) return Status::OK();
  TokenService* home = services[self->HomeOf(item)];
  TokenReply reply =
      home->HandleRequest(TokenRequest{requester, std::string(item)});
  if (!reply.granted) {
    return Status::FailedPrecondition(
        "token for '" + std::string(item) + "' is held by node " +
        std::to_string(reply.holder));
  }
  self->AdoptGrant(item);
  return Status::OK();
}

Status TokenService::ReleaseDirect(std::vector<TokenService*>& services,
                                   NodeId holder, std::string_view item) {
  TokenService* self = services[holder];
  TokenService* home = services[self->HomeOf(item)];
  EPI_RETURN_NOT_OK(
      home->HandleRelease(TokenRelease{holder, std::string(item)}));
  self->DropLocal(item);
  return Status::OK();
}

Status TokenService::Acquire(net::Transport& transport,
                             std::string_view item) {
  if (Holds(item)) return Status::OK();
  NodeId home = HomeOf(item);
  TokenReply reply;
  if (home == id_) {
    reply = HandleRequest(TokenRequest{id_, std::string(item)});
  } else {
    auto wire = transport.Call(
        home, EncodeTokenRequest(TokenRequest{id_, std::string(item)}));
    if (!wire.ok()) return wire.status();
    auto decoded = DecodeTokenReply(*wire);
    if (!decoded.ok()) return decoded.status();
    reply = std::move(*decoded);
  }
  if (!reply.granted) {
    return Status::FailedPrecondition(
        "token for '" + std::string(item) + "' is held by node " +
        std::to_string(reply.holder));
  }
  AdoptGrant(item);
  return Status::OK();
}

Status TokenService::Release(net::Transport& transport,
                             std::string_view item) {
  NodeId home = HomeOf(item);
  if (home == id_) {
    EPI_RETURN_NOT_OK(HandleRelease(TokenRelease{id_, std::string(item)}));
  } else {
    auto wire = transport.Call(
        home, EncodeTokenRelease(TokenRelease{id_, std::string(item)}));
    if (!wire.ok()) return wire.status();
    auto decoded = DecodeTokenReply(*wire);
    if (!decoded.ok()) return decoded.status();
    if (!decoded->granted) {
      return Status::FailedPrecondition("home rejected the release of '" +
                                        std::string(item) + "'");
    }
  }
  DropLocal(item);
  return Status::OK();
}

std::string TokenServiceHandler::HandleRequest(std::string_view request) {
  MutexLock lock(mu_);
  // Token frames are self-tagged; try request, then release. A mis-routed
  // frame (this node is not the item's home) is denied here rather than
  // passed into the service, whose HomeOf EPI_CHECKs would turn one
  // hostile frame from any peer into a process abort.
  if (auto req = DecodeTokenRequest(request); req.ok()) {
    if (service_->HomeOf(req->item) != service_->id()) {
      TokenReply reply;
      reply.item = req->item;
      reply.granted = false;
      reply.holder = req->requester;
      return EncodeTokenReply(reply);
    }
    return EncodeTokenReply(service_->HandleRequest(*req));
  }
  if (auto rel = DecodeTokenRelease(request); rel.ok()) {
    TokenReply reply;
    reply.item = rel->item;
    reply.holder = rel->holder;
    if (service_->HomeOf(rel->item) != service_->id()) {
      reply.granted = false;
      return EncodeTokenReply(reply);
    }
    Status s = service_->HandleRelease(*rel);
    reply.granted = s.ok();
    return EncodeTokenReply(reply);
  }
  TokenReply reply;
  reply.granted = false;
  return EncodeTokenReply(reply);
}

}  // namespace epidemic::tokens
