#include "vv/vv_codec.h"

namespace epidemic {

void EncodeVersionVector(ByteWriter* w, const VersionVector& vv) {
  w->PutVarint64(vv.size());
  for (size_t k = 0; k < vv.size(); ++k) {
    w->PutVarint64(vv[static_cast<NodeId>(k)]);
  }
}

Result<VersionVector> DecodeVersionVector(ByteReader* r) {
  auto n = r->GetVarint64();
  if (!n.ok()) return n.status();
  if (*n > (1u << 20)) return Status::Corruption("absurd version vector size");
  VersionVector vv(static_cast<size_t>(*n));
  for (size_t k = 0; k < *n; ++k) {
    auto c = r->GetVarint64();
    if (!c.ok()) return c.status();
    vv[static_cast<NodeId>(k)] = *c;
  }
  return vv;
}

}  // namespace epidemic
