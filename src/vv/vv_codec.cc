#include "vv/vv_codec.h"

#include <cassert>

namespace epidemic {

namespace {

size_t VarintLen(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// One pass over (vv, base) sizing both sparse encodings, so the encoder
/// can pick the smaller and the size estimator can answer without
/// encoding.
struct DeltaPlan {
  bool mode1_ok = false;  // base dominates vv component-wise
  size_t count0 = 0, bytes0 = 0;  // mode 0: nonzero components, absolute
  size_t count1 = 0, bytes1 = 0;  // mode 1: differing components, b - v
  bool use_mode1 = false;
  size_t total_bytes = 0;
};

DeltaPlan PlanDelta(const VersionVector& vv, const VersionVector& base) {
  DeltaPlan p;
  p.mode1_ok = vv.size() == base.size();
  size_t prev0 = 0, prev1 = 0;
  bool first0 = true, first1 = true;
  for (size_t k = 0; k < vv.size(); ++k) {
    const uint64_t v = vv[static_cast<NodeId>(k)];
    if (v != 0) {
      const size_t gap = first0 ? k : k - prev0 - 1;
      p.bytes0 += VarintLen(gap) + VarintLen(v);
      prev0 = k;
      first0 = false;
      ++p.count0;
    }
    if (p.mode1_ok) {
      const uint64_t b = base[static_cast<NodeId>(k)];
      if (v > b) {
        p.mode1_ok = false;
      } else if (v != b) {
        const size_t gap = first1 ? k : k - prev1 - 1;
        p.bytes1 += VarintLen(gap) + VarintLen(b - v);
        prev1 = k;
        first1 = false;
        ++p.count1;
      }
    }
  }
  p.bytes0 += VarintLen(p.count0 << 1);
  p.bytes1 += VarintLen((p.count1 << 1) | 1);
  p.use_mode1 = p.mode1_ok && p.bytes1 < p.bytes0;
  p.total_bytes = p.use_mode1 ? p.bytes1 : p.bytes0;
  return p;
}

}  // namespace

void EncodeVersionVector(ByteWriter* w, const VersionVector& vv) {
  w->PutVarint64(vv.size());
  for (size_t k = 0; k < vv.size(); ++k) {
    w->PutVarint64(vv[static_cast<NodeId>(k)]);
  }
}

Result<VersionVector> DecodeVersionVector(ByteReader* r) {
  auto n = r->GetVarint64();
  if (!n.ok()) return n.status();
  if (*n > (1u << 20)) return Status::Corruption("absurd version vector size");
  VersionVector vv(static_cast<size_t>(*n));
  for (size_t k = 0; k < *n; ++k) {
    auto c = r->GetVarint64();
    if (!c.ok()) return c.status();
    vv[static_cast<NodeId>(k)] = *c;
  }
  return vv;
}

void EncodeVersionVectorDelta(ByteWriter* w, const VersionVector& vv,
                              const VersionVector& base) {
  // Width never travels: the decoder recovers it from `base`. Encoding a
  // vector of a different width would therefore be silently lossy.
  assert(vv.size() == base.size());
  const DeltaPlan p = PlanDelta(vv, base);
  if (p.use_mode1) {
    w->PutVarint64((p.count1 << 1) | 1);
    size_t prev = 0;
    bool first = true;
    for (size_t k = 0; k < vv.size(); ++k) {
      const uint64_t v = vv[static_cast<NodeId>(k)];
      const uint64_t b = base[static_cast<NodeId>(k)];
      if (v == b) continue;
      w->PutVarint64(first ? k : k - prev - 1);
      w->PutVarint64(b - v);
      prev = k;
      first = false;
    }
  } else {
    w->PutVarint64(p.count0 << 1);
    size_t prev = 0;
    bool first = true;
    for (size_t k = 0; k < vv.size(); ++k) {
      const uint64_t v = vv[static_cast<NodeId>(k)];
      if (v == 0) continue;
      w->PutVarint64(first ? k : k - prev - 1);
      w->PutVarint64(v);
      prev = k;
      first = false;
    }
  }
}

Result<VersionVector> DecodeVersionVectorDelta(ByteReader* r,
                                               const VersionVector& base) {
  auto header = r->GetVarint64();
  if (!header.ok()) return header.status();
  const bool complement = (*header & 1) != 0;
  const uint64_t count = *header >> 1;
  if (count > base.size()) {
    return Status::Corruption("delta vv pair count exceeds base width");
  }
  VersionVector vv = complement ? base : VersionVector(base.size());
  size_t idx = 0;
  for (uint64_t i = 0; i < count; ++i) {
    auto gap = r->GetVarint64();
    if (!gap.ok()) return gap.status();
    if (*gap >= base.size()) {  // also forecloses size_t wraparound below
      return Status::Corruption("delta vv index gap out of range");
    }
    idx = (i == 0) ? static_cast<size_t>(*gap)
                   : idx + 1 + static_cast<size_t>(*gap);
    if (idx >= base.size()) {
      return Status::Corruption("delta vv index out of range");
    }
    auto val = r->GetVarint64();
    if (!val.ok()) return val.status();
    const NodeId k = static_cast<NodeId>(idx);
    if (complement) {
      if (*val > base[k]) {
        return Status::Corruption("delta vv complement underflows base");
      }
      vv[k] = base[k] - *val;
    } else {
      vv[k] = *val;
    }
  }
  return vv;
}

size_t VersionVectorDeltaSize(const VersionVector& vv,
                              const VersionVector& base) {
  return PlanDelta(vv, base).total_bytes;
}

}  // namespace epidemic
