#ifndef EPIDEMIC_VV_VERSION_VECTOR_H_
#define EPIDEMIC_VV_VERSION_VECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

namespace epidemic {

/// Identifies a server. The paper assumes a fixed replica set (§2), so ids
/// are dense indices 0..n-1 and version vectors can be dense arrays.
using NodeId = uint32_t;

/// Count of updates originated by one node.
using UpdateCount = uint64_t;

/// Relationship between two version vectors (paper §3, corollaries 1-4).
enum class VvOrder {
  kEqual,        // component-wise identical -> replicas identical
  kDominates,    // lhs >= rhs everywhere, > somewhere -> lhs newer
  kDominatedBy,  // rhs dominates lhs -> lhs older
  kConcurrent,   // each has a component exceeding the other -> inconsistent
};

/// Version vector as introduced in Locus [12] and used throughout the paper.
///
/// `v[j]` counts the updates originated by server `j` that are reflected in
/// the associated replica. The same type serves as
///   * IVV  — item version vector, attached to each data-item copy (§3), and
///   * DBVV — database version vector, attached to each whole-database
///     replica (§4.1); there `V_i[j]` is the total number of updates
///     performed on server j across *all* items reflected at i.
class VersionVector {
 public:
  VersionVector() = default;

  /// Zero vector for a system of `n` nodes (maintenance rule 1, §4.1).
  explicit VersionVector(size_t n) : counts_(n, 0) {}

  /// From explicit components, mainly for tests.
  explicit VersionVector(std::vector<UpdateCount> counts)
      : counts_(std::move(counts)) {}

  size_t size() const { return counts_.size(); }

  UpdateCount operator[](NodeId j) const { return counts_[j]; }
  UpdateCount& operator[](NodeId j) { return counts_[j]; }

  /// Records one more local update by node `j` (rule 2, §4.1).
  void Increment(NodeId j) { ++counts_[j]; }

  /// Component-wise maximum with `other` — the merge applied when missing
  /// updates are obtained from another replica (§3).
  /// Requires same size.
  void MergeMax(const VersionVector& other);

  /// Component-wise `this += (other - base)`.
  ///
  /// Implements DBVV maintenance rule 3 (§4.1): when node i adopts item copy
  /// x_j, its DBVV grows by the per-component surplus of x_j's IVV over the
  /// local IVV. Caller guarantees other >= base component-wise (the protocol
  /// only copies from strictly newer replicas).
  void AddDelta(const VersionVector& newer, const VersionVector& base);

  /// Three-way comparison per §3. O(n).
  static VvOrder Compare(const VersionVector& a, const VersionVector& b);

  /// a dominates-or-equals b (the SendPropagation early-exit test, Fig. 2).
  static bool DominatesOrEqual(const VersionVector& a, const VersionVector& b);

  /// Strict dominance: a newer than b (corollary 3, §3).
  static bool Dominates(const VersionVector& a, const VersionVector& b);

  /// True iff the vectors are inconsistent (corollary 4, §3).
  static bool Conflicts(const VersionVector& a, const VersionVector& b);

  /// Sum of all components — total updates reflected. Used by invariants
  /// and metrics.
  UpdateCount Total() const;

  bool operator==(const VersionVector& other) const = default;

  /// "[3,0,7]" — for logs and test failure messages.
  std::string ToString() const;

  const std::vector<UpdateCount>& counts() const { return counts_; }

 private:
  std::vector<UpdateCount> counts_;
};

}  // namespace epidemic

#endif  // EPIDEMIC_VV_VERSION_VECTOR_H_
