#ifndef EPIDEMIC_VV_VV_CODEC_H_
#define EPIDEMIC_VV_VV_CODEC_H_

#include "common/bytes.h"
#include "common/result.h"
#include "vv/version_vector.h"

namespace epidemic {

/// Binary serialization of version vectors, shared by the wire codec and
/// the snapshot format: varint component count followed by varint counts.
void EncodeVersionVector(ByteWriter* w, const VersionVector& vv);
Result<VersionVector> DecodeVersionVector(ByteReader* r);

/// Sparse delta encoding of `vv` against a shared `base` vector — the
/// wire-v3 per-item IVV format (DESIGN.md §10). Instead of `vv.size()`
/// varints it writes one header varint `(count << 1) | mode` followed by
/// `count` (index-gap, varint) pairs, picking per vector whichever of two
/// sparse views is smaller:
///
///   mode 0 (absolute): pairs cover the nonzero components, value = vv[k].
///     Best for per-item IVVs, which usually track only the origins that
///     actually updated the item.
///   mode 1 (complement): pairs cover components where vv[k] != base[k],
///     value = base[k] - vv[k]. Best for vectors close to the base — e.g.
///     an item every origin has touched. Only legal when base dominates
///     vv; the encoder falls back to mode 0 otherwise.
///
/// Index gaps are `k - prev_k - 1` (first pair: `k`), so indices are
/// strictly increasing by construction. The decoded width is
/// `base.size()`: both sides already share the base (the segment's source
/// DBVV), so the width never travels per item.
///
/// `vv.size()` must equal `base.size()`; the decoder returns Corruption on
/// out-of-range indices or malformed headers.
void EncodeVersionVectorDelta(ByteWriter* w, const VersionVector& vv,
                              const VersionVector& base);
Result<VersionVector> DecodeVersionVectorDelta(ByteReader* r,
                                               const VersionVector& base);

/// Exact number of bytes EncodeVersionVectorDelta will write — used by the
/// size-hinted segment encoder to reserve once up front.
size_t VersionVectorDeltaSize(const VersionVector& vv,
                              const VersionVector& base);

}  // namespace epidemic

#endif  // EPIDEMIC_VV_VV_CODEC_H_
