#ifndef EPIDEMIC_VV_VV_CODEC_H_
#define EPIDEMIC_VV_VV_CODEC_H_

#include "common/bytes.h"
#include "common/result.h"
#include "vv/version_vector.h"

namespace epidemic {

/// Binary serialization of version vectors, shared by the wire codec and
/// the snapshot format: varint component count followed by varint counts.
void EncodeVersionVector(ByteWriter* w, const VersionVector& vv);
Result<VersionVector> DecodeVersionVector(ByteReader* r);

}  // namespace epidemic

#endif  // EPIDEMIC_VV_VV_CODEC_H_
