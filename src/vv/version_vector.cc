#include "vv/version_vector.h"

#include <cassert>

#include "common/logging.h"

namespace epidemic {

void VersionVector::MergeMax(const VersionVector& other) {
  EPI_CHECK(counts_.size() == other.counts_.size())
      << "version vector size mismatch: " << counts_.size() << " vs "
      << other.counts_.size();
  for (size_t k = 0; k < counts_.size(); ++k) {
    if (other.counts_[k] > counts_[k]) counts_[k] = other.counts_[k];
  }
}

void VersionVector::AddDelta(const VersionVector& newer,
                             const VersionVector& base) {
  EPI_CHECK(counts_.size() == newer.size() && counts_.size() == base.size())
      << "version vector size mismatch in AddDelta";
  for (size_t k = 0; k < counts_.size(); ++k) {
    EPI_CHECK(newer[k] >= base[k])
        << "AddDelta requires newer >= base; component " << k << " has "
        << newer[k] << " < " << base[k];
    counts_[k] += newer[k] - base[k];
  }
}

VvOrder VersionVector::Compare(const VersionVector& a,
                               const VersionVector& b) {
  EPI_CHECK(a.size() == b.size())
      << "comparing version vectors of different sizes";
  bool a_greater = false;
  bool b_greater = false;
  for (size_t k = 0; k < a.size(); ++k) {
    if (a.counts_[k] > b.counts_[k]) a_greater = true;
    if (b.counts_[k] > a.counts_[k]) b_greater = true;
  }
  if (a_greater && b_greater) return VvOrder::kConcurrent;
  if (a_greater) return VvOrder::kDominates;
  if (b_greater) return VvOrder::kDominatedBy;
  return VvOrder::kEqual;
}

bool VersionVector::DominatesOrEqual(const VersionVector& a,
                                     const VersionVector& b) {
  VvOrder order = Compare(a, b);
  return order == VvOrder::kDominates || order == VvOrder::kEqual;
}

bool VersionVector::Dominates(const VersionVector& a,
                              const VersionVector& b) {
  return Compare(a, b) == VvOrder::kDominates;
}

bool VersionVector::Conflicts(const VersionVector& a,
                              const VersionVector& b) {
  return Compare(a, b) == VvOrder::kConcurrent;
}

UpdateCount VersionVector::Total() const {
  UpdateCount sum = 0;
  for (UpdateCount c : counts_) sum += c;
  return sum;
}

std::string VersionVector::ToString() const {
  std::string out = "[";
  for (size_t k = 0; k < counts_.size(); ++k) {
    if (k > 0) out += ",";
    out += std::to_string(counts_[k]);
  }
  out += "]";
  return out;
}

}  // namespace epidemic
