#ifndef EPIDEMIC_STORAGE_ITEM_STORE_H_
#define EPIDEMIC_STORAGE_ITEM_STORE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "log/log_vector.h"
#include "vv/version_vector.h"

namespace epidemic {

/// Auxiliary copy of a data item (§4.3), created by out-of-bound copying.
/// It has its own value and its own (auxiliary) IVV; user operations are
/// served from it while the regular copy continues to take part in scheduled
/// update propagation.
struct AuxCopy {
  std::string value;
  bool deleted = false;  // tombstone state of the auxiliary copy
  VersionVector ivv;
};

/// One data item replica plus its control state.
///
/// Control state holds everything the protocol needs in O(1) while the item
/// is being accessed anyway (§6):
///   * `ivv`          — the item version vector of the regular copy,
///   * `p`            — the pointer array P(x): p[j] addresses the (single)
///                      record for this item in log component L_ij (Fig. 1),
///   * `is_selected`  — the IsSelected flag used by SendPropagation to build
///                      the item set S without a per-item hash probe,
///   * `aux`          — auxiliary copy + IVV, present only while the item is
///                      out-of-bound.
struct Item {
  Item(ItemId id_in, std::string name_in, size_t num_nodes)
      : id(id_in), name(std::move(name_in)), ivv(num_nodes),
        p(num_nodes, nullptr) {}

  Item(const Item&) = delete;
  Item& operator=(const Item&) = delete;

  ItemId id;
  std::string name;
  std::string value;     // regular copy
  bool deleted = false;  // tombstone: the item was deleted by an update.
                         // Tombstones replicate like ordinary values so the
                         // delete wins everywhere; the control state stays.
  VersionVector ivv;     // regular IVV
  std::vector<LogRecord*> p;
  bool is_selected = false;
  std::unique_ptr<AuxCopy> aux;

  bool HasAux() const { return aux != nullptr; }

  /// The copy user operations act on: auxiliary if present, else regular
  /// (§5.3).
  const std::string& UserValue() const { return aux ? aux->value : value; }
  bool UserDeleted() const { return aux ? aux->deleted : deleted; }
  const VersionVector& UserIvv() const { return aux ? aux->ivv : ivv; }
};

/// Name-addressable store of a node's data-item replicas.
///
/// Item ids are dense per-node indices handed out in creation order, so the
/// log can reference items by integer and resolve them back in O(1). The
/// paper's model has no item deletion, so ids are stable for the life of the
/// store.
class ItemStore {
 public:
  explicit ItemStore(size_t num_nodes) : num_nodes_(num_nodes) {}

  ItemStore(const ItemStore&) = delete;
  ItemStore& operator=(const ItemStore&) = delete;

  /// Returns the item named `name`, creating an empty replica (zero IVV,
  /// empty value) on first reference — a fresh replica that has seen no
  /// updates, per the initialization rule of §3.
  Item& GetOrCreate(std::string_view name) REQUIRES_SHARD_CONTEXT;

  /// Returns the item or nullptr. Mutable access hands out an Item the
  /// caller may write, so it requires the owner's context; const
  /// inspection is capability-free.
  Item* Find(std::string_view name) REQUIRES_SHARD_CONTEXT;
  const Item* Find(std::string_view name) const;

  Item& Get(ItemId id) REQUIRES_SHARD_CONTEXT { return *items_[id]; }
  const Item& Get(ItemId id) const { return *items_[id]; }

  size_t size() const { return items_.size(); }
  size_t num_nodes() const { return num_nodes_; }

  /// Iteration support (creation order).
  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

 private:
  size_t num_nodes_;
  std::vector<std::unique_ptr<Item>> items_;
  std::unordered_map<std::string, ItemId> by_name_;
};

}  // namespace epidemic

#endif  // EPIDEMIC_STORAGE_ITEM_STORE_H_
