#include "storage/item_store.h"

namespace epidemic {

Item& ItemStore::GetOrCreate(std::string_view name) {
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) return *items_[it->second];
  ItemId id = static_cast<ItemId>(items_.size());
  items_.push_back(std::make_unique<Item>(id, std::string(name), num_nodes_));
  by_name_.emplace(items_.back()->name, id);
  return *items_.back();
}

Item* ItemStore::Find(std::string_view name) {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : items_[it->second].get();
}

const Item* ItemStore::Find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  return it == by_name_.end() ? nullptr : items_[it->second].get();
}

}  // namespace epidemic
