#ifndef EPIDEMIC_CORE_MESSAGES_H_
#define EPIDEMIC_CORE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "vv/version_vector.h"

namespace epidemic {

/// Step (1) of update propagation (§5.1): recipient i sends its DBVV to the
/// prospective source j.
struct PropagationRequest {
  NodeId requester = 0;
  VersionVector dbvv;
};

/// A log-vector record as shipped on the wire. Items are identified by name
/// because ItemIds are node-local. Constant size per record (§6) up to the
/// item name.
struct WireLogRecord {
  std::string item_name;
  UpdateCount seq = 0;
};

/// A member of the item set S (Fig. 2): the source's regular copy of a data
/// item together with its IVV. Tombstones (deleted items) replicate like
/// values so deletes win everywhere.
struct WireItem {
  std::string name;
  std::string value;
  bool deleted = false;
  VersionVector ivv;
};

/// Source j's reply (Fig. 2): either "you-are-current", or the tail vector D
/// (one tail of missed records per origin node, oldest first) plus the set S
/// of referenced items.
struct PropagationResponse {
  bool you_are_current = false;
  std::vector<std::vector<WireLogRecord>> tails;  // D_k indexed by origin k
  std::vector<WireItem> items;                    // S
};

/// Sharded handshake (wire format v2): one round trip carries the DBVV of
/// every shard, so a recipient lagging on any subset of shards pulls all of
/// them in a single exchange. Each shard is a complete instance of the
/// paper's protocol state, so the per-shard semantics (Fig. 2-4) are
/// untouched; the aggregate handshake is O(S) DBVV comparisons but still
/// ships only O(m) items.
struct ShardedPropagationRequest {
  NodeId requester = 0;
  std::vector<VersionVector> shard_dbvvs;  // indexed by shard
};

/// One shard's segment of a sharded reply: the shard index plus the
/// *encoded* PropagationResponse body (core/wire.h). Bodies stay opaque at
/// the envelope layer so each shard can be encoded at the source and
/// decoded at the recipient independently — in parallel, under that shard's
/// lock only.
struct ShardedPropagationSegment {
  uint32_t shard = 0;
  std::string body;  // wire::EncodePropagationResponseBody bytes
};

/// Source reply to a sharded handshake. Shards found current by the O(1)
/// DBVV check are simply omitted; an empty segment list is the sharded
/// "you-are-current". `num_shards` echoes the source's shard count so a
/// topology mismatch is detected before any state is touched.
struct ShardedPropagationResponse {
  uint32_t num_shards = 0;
  std::vector<ShardedPropagationSegment> segments;

  bool you_are_current() const { return segments.empty(); }
};

/// Out-of-bound copy request (§5.2) for a single named item.
struct OobRequest {
  NodeId requester = 0;
  std::string item_name;
};

/// Out-of-bound reply: the source's auxiliary copy if one exists, otherwise
/// its regular copy, with the corresponding IVV. `found` is false when the
/// source has never heard of the item.
struct OobResponse {
  bool found = false;
  std::string item_name;
  std::string value;
  bool deleted = false;
  VersionVector ivv;
};

}  // namespace epidemic

#endif  // EPIDEMIC_CORE_MESSAGES_H_
