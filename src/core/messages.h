#ifndef EPIDEMIC_CORE_MESSAGES_H_
#define EPIDEMIC_CORE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "vv/version_vector.h"

namespace epidemic {

/// Wire protocol versions of the sharded propagation exchange. v2 (tags
/// 14/15) ships dense per-item IVVs and owned strings; v3 (tags 17/18)
/// delta-encodes IVVs against the segment's base DBVV, references tail
/// items by index, and supports zero-copy decode plus optional segment
/// compression (DESIGN.md §10). v1 is the unsharded exchange (tags 1/2).
inline constexpr uint8_t kWireV2 = 2;
inline constexpr uint8_t kWireV3 = 3;

/// v3 request flag: the requester is willing to receive compressed
/// segment bodies (negotiated per exchange; a v3 source never compresses
/// unless the recipient asked).
inline constexpr uint8_t kPropFlagAcceptCompressed = 0x01;

/// v3 request flag: the request is an epoch probe — it carries no shard
/// DBVVs, only `last_epoch`, the source mutation epoch the requester saw
/// on its last completed pull. If the source's epoch still matches, the
/// reply is the O(1) "you-are-current"; otherwise the source answers
/// kPropRespFlagResend and the requester repeats the round with the full
/// per-shard handshake. The whole-database analogue of the paper's O(1)
/// DBVV dominance check: a quiescent round costs O(1), not O(S).
inline constexpr uint8_t kPropFlagEpochProbe = 0x02;

/// v3 response flag: the probe's epoch no longer matches — resend the
/// handshake with shard DBVVs. Carries no segments; the requester must
/// not cache the attached epoch (no data was served under it).
inline constexpr uint8_t kPropRespFlagResend = 0x01;

/// Step (1) of update propagation (§5.1): recipient i sends its DBVV to the
/// prospective source j.
struct PropagationRequest {
  NodeId requester = 0;
  VersionVector dbvv;
};

/// A log-vector record as shipped on the wire. Items are identified by name
/// because ItemIds are node-local. Constant size per record (§6) up to the
/// item name.
struct WireLogRecord {
  std::string item_name;
  UpdateCount seq = 0;
};

/// A member of the item set S (Fig. 2): the source's regular copy of a data
/// item together with its IVV. Tombstones (deleted items) replicate like
/// values so deletes win everywhere.
struct WireItem {
  std::string name;
  std::string value;
  bool deleted = false;
  VersionVector ivv;
};

/// Source j's reply (Fig. 2): either "you-are-current", or the tail vector D
/// (one tail of missed records per origin node, oldest first) plus the set S
/// of referenced items.
struct PropagationResponse {
  bool you_are_current = false;
  std::vector<std::vector<WireLogRecord>> tails;  // D_k indexed by origin k
  std::vector<WireItem> items;                    // S
};

/// Borrowed counterparts of WireLogRecord / WireItem /
/// PropagationResponse: every string is a view into storage owned by
/// someone longer-lived (the source's store on the serve path, the decode
/// buffer on the accept path), and the IVV is a pointer into either the
/// store or a decoded-IVV arena. This is the zero-copy spine of wire v3
/// (DESIGN.md §10): a response travels source store → encoder → network →
/// decode buffer → recipient store with names and values copied exactly
/// once, into the store.
struct WireLogRecordView {
  std::string_view item_name;
  UpdateCount seq = 0;
  /// Index of the record's item within the response's item set S. The v3
  /// encoder writes this index instead of repeating the name (validation
  /// requires every tail name to be in S anyway); decoders of both
  /// versions fill it in.
  uint32_t item_index = 0;
};

struct WireItemView {
  std::string_view name;
  std::string_view value;
  bool deleted = false;
  const VersionVector* ivv = nullptr;  // owned by store / decode storage
};

struct PropagationResponseView {
  bool you_are_current = false;
  std::vector<std::vector<WireLogRecordView>> tails;  // D_k by origin k
  std::vector<WireItemView> items;                    // S

  /// Empties the view while keeping every vector's capacity (including
  /// the per-origin tail vectors), so a reused view allocates only on the
  /// first exchange it serves.
  void Reset(size_t num_tails) {
    you_are_current = false;
    if (tails.size() > num_tails) tails.resize(num_tails);
    for (auto& tail : tails) tail.clear();
    if (tails.size() < num_tails) tails.resize(num_tails);
    items.clear();
  }
};

/// Sharded handshake (wire format v2): one round trip carries the DBVV of
/// every shard, so a recipient lagging on any subset of shards pulls all of
/// them in a single exchange. Each shard is a complete instance of the
/// paper's protocol state, so the per-shard semantics (Fig. 2-4) are
/// untouched; the aggregate handshake is O(S) DBVV comparisons but still
/// ships only O(m) items.
struct ShardedPropagationRequest {
  NodeId requester = 0;
  std::vector<VersionVector> shard_dbvvs;  // indexed by shard
  /// Which wire tag this request travels under (kWireV2 → tag 14,
  /// kWireV3 → tag 17). Not itself serialized — implied by the tag.
  uint8_t wire_version = kWireV2;
  /// v3 only: kPropFlag* negotiation bits (serialized on the v3 wire).
  uint8_t flags = 0;
  /// v3 only: with kPropFlagEpochProbe, the source mutation epoch this
  /// requester recorded from its last completed pull (0 = never pulled).
  uint64_t last_epoch = 0;
};

/// One shard's segment of a sharded reply: the shard index plus the
/// *encoded* PropagationResponse body (core/wire.h). Bodies stay opaque at
/// the envelope layer so each shard can be encoded at the source and
/// decoded at the recipient independently — in parallel, under that shard's
/// lock only.
struct ShardedPropagationSegment {
  uint32_t shard = 0;
  std::string body;  // v2: EncodePropagationResponseBody bytes;
                     // v3: EncodeShardSegmentBodyV3 bytes (self-framed)
};

/// Source reply to a sharded handshake. Shards found current by the O(1)
/// DBVV check are simply omitted; an empty segment list is the sharded
/// "you-are-current". `num_shards` echoes the source's shard count so a
/// topology mismatch is detected before any state is touched.
struct ShardedPropagationResponse {
  uint32_t num_shards = 0;
  std::vector<ShardedPropagationSegment> segments;
  /// Segment body format (kWireV2 or kWireV3); selects the net tag
  /// (15 vs 18) and the per-segment decoder. Implied by the tag on the
  /// wire, never serialized.
  uint8_t wire_version = kWireV2;
  /// v3 only: kPropRespFlag* bits (serialized on the v3 wire).
  uint8_t resp_flags = 0;
  /// v3 only: the source's mutation epoch sampled *before* serving, so
  /// anything the segments miss has a later epoch. The requester caches
  /// it after a successful accept and probes with it next round.
  uint64_t epoch = 0;

  bool you_are_current() const { return segments.empty(); }
  bool resend_requested() const {
    return (resp_flags & kPropRespFlagResend) != 0;
  }
};

/// Out-of-bound copy request (§5.2) for a single named item.
struct OobRequest {
  NodeId requester = 0;
  std::string item_name;
};

/// Out-of-bound reply: the source's auxiliary copy if one exists, otherwise
/// its regular copy, with the corresponding IVV. `found` is false when the
/// source has never heard of the item.
struct OobResponse {
  bool found = false;
  std::string item_name;
  std::string value;
  bool deleted = false;
  VersionVector ivv;
};

}  // namespace epidemic

#endif  // EPIDEMIC_CORE_MESSAGES_H_
