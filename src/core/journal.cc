#include "core/journal.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdlib>
#include <utility>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/logging.h"
#include "core/snapshot.h"
#include "core/wire.h"
#include "vv/vv_codec.h"

namespace epidemic {

namespace {

enum class RecordTag : uint8_t {
  kUpdate = 1,
  kDelete = 2,
  kPropagation = 3,
  kOob = 4,
  kResolve = 5,
  // A raw wire-v3 segment body, journaled verbatim (so the journal pays
  // the same delta/compression savings as the wire) and replayed through
  // the zero-copy decode + view accept. Old journals (tags 1-5) replay
  // unchanged.
  kPropagationSegV3 = 6,
};

std::string JournalPath(const std::string& dir) {
  return dir + "/journal.log";
}
std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.bin";
}

/// Applies one journal record through the replica's normal code paths.
Status ReplayRecord(Replica& replica, std::string_view payload) {
  // Single-owner escape: recovery replays into a freshly constructed
  // replica that Open() has not yet published — no other thread can reach
  // it, so the recovery thread IS the shard's single writer.
  AssertShardContextHeld();
  ByteReader r(payload);
  auto tag = r.GetU8();
  if (!tag.ok()) return tag.status();
  switch (static_cast<RecordTag>(*tag)) {
    case RecordTag::kUpdate: {
      auto name = r.GetString();
      if (!name.ok()) return name.status();
      auto value = r.GetString();
      if (!value.ok()) return value.status();
      return replica.Update(*name, *value);
    }
    case RecordTag::kDelete: {
      auto name = r.GetString();
      if (!name.ok()) return name.status();
      return replica.Delete(*name);
    }
    case RecordTag::kPropagation: {
      auto resp = wire::DecodePropagationResponseBody(r);
      if (!resp.ok()) return resp.status();
      return replica.AcceptPropagation(*resp);
    }
    case RecordTag::kPropagationSegV3: {
      wire::SegmentViewStorage storage;
      PropagationResponseView view;
      Status s = wire::DecodeShardSegmentBodyV3(payload.substr(r.position()),
                                                &storage, &view);
      if (!s.ok()) return s;
      return replica.AcceptPropagation(view);
    }
    case RecordTag::kOob: {
      auto resp = wire::DecodeOobResponseBody(r);
      if (!resp.ok()) return resp.status();
      return replica.AcceptOobResponse(*resp);
    }
    case RecordTag::kResolve: {
      auto name = r.GetString();
      if (!name.ok()) return name.status();
      auto vv = DecodeVersionVector(&r);
      if (!vv.ok()) return vv.status();
      auto value = r.GetString();
      if (!value.ok()) return value.status();
      Status s = replica.ResolveConflict(*name, *vv, *value);
      // A resolve that failed live (stale vector, item out-of-bound) fails
      // identically on replay — a faithful no-op, not corruption.
      if (s.IsInvalidArgument() || s.IsFailedPrecondition()) {
        return Status::OK();
      }
      return s;
    }
  }
  return Status::Corruption("unknown journal record tag");
}

}  // namespace

Result<uint64_t> ReplayJournalBytes(Replica& replica, std::string_view data) {
  uint64_t replayed = 0;
  ByteReader frames(data);
  while (!frames.AtEnd()) {
    auto len = frames.GetVarint64();
    if (!len.ok() || frames.remaining() < *len + 4) break;  // torn tail
    auto payload = frames.GetBytesView(static_cast<size_t>(*len));
    if (!payload.ok()) break;  // unreachable given the remaining() check
    auto stored_crc = frames.GetFixed32();
    if (!stored_crc.ok() || Crc32c(*payload) != *stored_crc) {
      // A failed checksum means the record (and anything after it) is
      // not trustworthy: stop the replay at the last good prefix.
      break;
    }
    Status s = ReplayRecord(replica, *payload);
    if (!s.ok() && !s.IsConflict() && !s.IsNotFound()) {
      // Conflict/NotFound are legitimate outcomes of replayed inputs;
      // anything else means a corrupt journal.
      return Status::Corruption("journal replay failed: " + s.ToString());
    }
    ++replayed;
  }
  return replayed;
}

JournaledReplica::JournaledReplica(std::string dir,
                                   std::unique_ptr<Replica> replica)
    : dir_(std::move(dir)), replica_(std::move(replica)) {}

JournaledReplica::~JournaledReplica() {
  if (journal_ != nullptr) std::fclose(journal_);
}

Result<std::unique_ptr<JournaledReplica>> JournaledReplica::Open(
    const std::string& dir, NodeId id, size_t num_nodes,
    ConflictListener* listener) {
  struct stat st;
  if (stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("'" + dir + "' is not a directory");
  }

  // 1. Base state: the latest snapshot, or a fresh replica.
  std::unique_ptr<Replica> replica;
  auto loaded = LoadSnapshot(SnapshotPath(dir), listener);
  if (loaded.ok()) {
    replica = std::move(*loaded);
    if (replica->id() != id || replica->num_nodes() != num_nodes) {
      return Status::InvalidArgument(
          "snapshot in '" + dir + "' belongs to node " +
          std::to_string(replica->id()) + "/" +
          std::to_string(replica->num_nodes()));
    }
  } else if (loaded.status().IsNotFound()) {
    replica = std::make_unique<Replica>(id, num_nodes, listener);
  } else {
    return loaded.status();
  }

  // 2. Replay the journal suffix. A torn final record (crash mid-append)
  // terminates the replay cleanly; everything before it was applied with
  // write-ahead discipline.
  uint64_t replayed = 0;
  std::FILE* f = std::fopen(JournalPath(dir).c_str(), "rb");
  if (f != nullptr) {
    std::string data;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
    std::fclose(f);

    auto count = ReplayJournalBytes(*replica, data);
    if (!count.ok()) return count.status();
    replayed = *count;
  }

  auto jr = std::unique_ptr<JournaledReplica>(
      new JournaledReplica(dir, std::move(replica)));
  jr->records_ = replayed;
  EPI_RETURN_NOT_OK(jr->OpenJournalForAppend());
  return jr;
}

Status JournaledReplica::OpenJournalForAppend() {
  journal_ = std::fopen(JournalPath(dir_).c_str(), "ab");
  if (journal_ == nullptr) {
    return Status::IOError("cannot open journal in '" + dir_ + "'");
  }
  return Status::OK();
}

Status JournaledReplica::AppendRecord(std::string payload) {
  ByteWriter framed;
  framed.PutVarint64(payload.size());
  framed.PutBytes(payload.data(), payload.size());
  framed.PutFixed32(Crc32c(payload));
  const std::string& frame = framed.data();
  if (std::fwrite(frame.data(), 1, frame.size(), journal_) != frame.size() ||
      std::fflush(journal_) != 0) {
    return Status::IOError("journal append failed");
  }
  ++records_;
  return Status::OK();
}

Status JournaledReplica::Update(std::string_view name,
                                std::string_view value) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(RecordTag::kUpdate));
  w.PutString(name);
  w.PutString(value);
  EPI_RETURN_NOT_OK(AppendRecord(w.Release()));
  return replica_->Update(name, value);
}

Status JournaledReplica::Delete(std::string_view name) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(RecordTag::kDelete));
  w.PutString(name);
  EPI_RETURN_NOT_OK(AppendRecord(w.Release()));
  return replica_->Delete(name);
}

Status JournaledReplica::ResolveConflict(std::string_view name,
                                         const VersionVector& remote_vv,
                                         std::string_view value) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(RecordTag::kResolve));
  w.PutString(name);
  EncodeVersionVector(&w, remote_vv);
  w.PutString(value);
  EPI_RETURN_NOT_OK(AppendRecord(w.Release()));
  return replica_->ResolveConflict(name, remote_vv, value);
}

Status JournaledReplica::AcceptPropagation(const PropagationResponse& resp) {
  if (resp.you_are_current) {
    // No state change; nothing worth journaling.
    return replica_->AcceptPropagation(resp);
  }
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(RecordTag::kPropagation));
  wire::EncodePropagationResponseBody(w, resp);
  EPI_RETURN_NOT_OK(AppendRecord(w.Release()));
  return replica_->AcceptPropagation(resp);
}

Status JournaledReplica::AcceptPropagationSegmentV3(std::string_view body) {
  // Decode (and thereby fully validate) before journaling, so a corrupt
  // body is rejected without leaving an unreplayable record behind.
  wire::SegmentViewStorage storage;
  PropagationResponseView view;
  EPI_RETURN_NOT_OK(wire::DecodeShardSegmentBodyV3(body, &storage, &view));
  ByteWriter w;
  w.Reserve(body.size() + 1);
  w.PutU8(static_cast<uint8_t>(RecordTag::kPropagationSegV3));
  w.PutBytes(body.data(), body.size());
  EPI_RETURN_NOT_OK(AppendRecord(w.Release()));
  return replica_->AcceptPropagation(view);
}

Status JournaledReplica::AcceptOobResponse(const OobResponse& resp) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(RecordTag::kOob));
  wire::EncodeOobResponseBody(w, resp);
  EPI_RETURN_NOT_OK(AppendRecord(w.Release()));
  return replica_->AcceptOobResponse(resp);
}

Status JournaledReplica::Checkpoint() {
  EPI_RETURN_NOT_OK(SaveSnapshot(*replica_, SnapshotPath(dir_)));
  // Truncate the journal: records up to here are covered by the snapshot.
  std::fclose(journal_);
  journal_ = nullptr;
  std::FILE* f = std::fopen(JournalPath(dir_).c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot truncate journal in '" + dir_ + "'");
  }
  std::fclose(f);
  records_ = 0;
  return OpenJournalForAppend();
}

// ---------------------------------------------------------------------------
// JournaledShardedReplica

namespace {

std::string ShardCountPath(const std::string& dir) {
  return dir + "/shards.meta";
}

/// Reads or establishes the pinned shard count. The item→shard mapping is
/// a function of the count, so data written under one count is unreadable
/// under another — hence refuse rather than misroute.
Status PinShardCount(const std::string& dir, size_t num_shards) {
  std::FILE* f = std::fopen(ShardCountPath(dir).c_str(), "rb");
  if (f != nullptr) {
    char buf[32] = {0};
    const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
    std::fclose(f);
    const unsigned long stored = std::strtoul(buf, nullptr, 10);
    if (n == 0 || stored == 0) {
      return Status::Corruption("unreadable shard count in '" + dir + "'");
    }
    if (stored != num_shards) {
      return Status::InvalidArgument(
          "'" + dir + "' was created with " + std::to_string(stored) +
          " shards, cannot open with " + std::to_string(num_shards));
    }
    return Status::OK();
  }
  f = std::fopen(ShardCountPath(dir).c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot write shard count in '" + dir + "'");
  }
  const std::string text = std::to_string(num_shards) + "\n";
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool flushed = (std::fflush(f) == 0);
  std::fclose(f);
  if (written != text.size() || !flushed) {
    return Status::IOError("short write to shard count in '" + dir + "'");
  }
  return Status::OK();
}

std::string ShardDir(const std::string& dir, size_t k) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%03zu", k);
  return dir + "/" + name;
}

}  // namespace

JournaledShardedReplica::JournaledShardedReplica(
    std::vector<std::unique_ptr<JournaledReplica>> shards)
    : shards_(std::move(shards)) {
  std::vector<Replica*> raw;
  raw.reserve(shards_.size());
  for (auto& shard : shards_) raw.push_back(&shard->replica());
  view_ = std::make_unique<ShardedReplica>(std::move(raw));
}

Result<std::unique_ptr<JournaledShardedReplica>> JournaledShardedReplica::Open(
    const std::string& dir, NodeId id, size_t num_nodes, size_t num_shards,
    ConflictListener* listener) {
  if (num_shards == 0) {
    return Status::InvalidArgument("need at least one shard");
  }
  struct stat st;
  if (stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("'" + dir + "' is not a directory");
  }
  EPI_RETURN_NOT_OK(PinShardCount(dir, num_shards));

  std::vector<std::unique_ptr<JournaledReplica>> shards;
  shards.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    const std::string shard_dir = ShardDir(dir, k);
    if (mkdir(shard_dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IOError("cannot create '" + shard_dir + "'");
    }
    auto shard = JournaledReplica::Open(shard_dir, id, num_nodes, listener);
    if (!shard.ok()) {
      return Status::Internal("shard " + std::to_string(k) + ": " +
                              shard.status().message());
    }
    shards.push_back(std::move(*shard));
  }
  return std::unique_ptr<JournaledShardedReplica>(
      new JournaledShardedReplica(std::move(shards)));
}

Status JournaledShardedReplica::AcceptPropagation(
    const ShardedPropagationResponse& resp) {
  if (resp.num_shards != shards_.size()) {
    return Status::InvalidArgument(
        "source runs " + std::to_string(resp.num_shards) +
        " shards, this replica " + std::to_string(shards_.size()));
  }
  Status first_error = Status::OK();
  for (const ShardedPropagationSegment& seg : resp.segments) {
    if (seg.shard >= shards_.size()) {
      if (first_error.ok()) {
        first_error = Status::InvalidArgument("segment shard out of range");
      }
      continue;
    }
    Status s;
    if (resp.wire_version >= kWireV3) {
      s = shards_[seg.shard]->AcceptPropagationSegmentV3(seg.body);
    } else {
      Result<PropagationResponse> decoded =
          wire::DecodeShardSegmentBody(seg.body);
      s = decoded.ok() ? shards_[seg.shard]->AcceptPropagation(*decoded)
                       : decoded.status();
    }
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

Status JournaledShardedReplica::Checkpoint() {
  Status first_error = Status::OK();
  for (auto& shard : shards_) {
    Status s = shard->Checkpoint();
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

uint64_t JournaledShardedReplica::records_since_checkpoint() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->records_since_checkpoint();
  return total;
}

}  // namespace epidemic
