#include "core/journal.h"

#include <sys/stat.h>

#include <utility>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/logging.h"
#include "core/snapshot.h"
#include "core/wire.h"

namespace epidemic {

namespace {

enum class RecordTag : uint8_t {
  kUpdate = 1,
  kDelete = 2,
  kPropagation = 3,
  kOob = 4,
};

std::string JournalPath(const std::string& dir) {
  return dir + "/journal.log";
}
std::string SnapshotPath(const std::string& dir) {
  return dir + "/snapshot.bin";
}

/// Applies one journal record through the replica's normal code paths.
Status ReplayRecord(Replica& replica, std::string_view payload) {
  ByteReader r(payload);
  auto tag = r.GetU8();
  if (!tag.ok()) return tag.status();
  switch (static_cast<RecordTag>(*tag)) {
    case RecordTag::kUpdate: {
      auto name = r.GetString();
      if (!name.ok()) return name.status();
      auto value = r.GetString();
      if (!value.ok()) return value.status();
      return replica.Update(*name, *value);
    }
    case RecordTag::kDelete: {
      auto name = r.GetString();
      if (!name.ok()) return name.status();
      return replica.Delete(*name);
    }
    case RecordTag::kPropagation: {
      auto resp = wire::DecodePropagationResponseBody(r);
      if (!resp.ok()) return resp.status();
      return replica.AcceptPropagation(*resp);
    }
    case RecordTag::kOob: {
      auto resp = wire::DecodeOobResponseBody(r);
      if (!resp.ok()) return resp.status();
      return replica.AcceptOobResponse(*resp);
    }
  }
  return Status::Corruption("unknown journal record tag");
}

}  // namespace

JournaledReplica::JournaledReplica(std::string dir,
                                   std::unique_ptr<Replica> replica)
    : dir_(std::move(dir)), replica_(std::move(replica)) {}

JournaledReplica::~JournaledReplica() {
  if (journal_ != nullptr) std::fclose(journal_);
}

Result<std::unique_ptr<JournaledReplica>> JournaledReplica::Open(
    const std::string& dir, NodeId id, size_t num_nodes,
    ConflictListener* listener) {
  struct stat st;
  if (stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::InvalidArgument("'" + dir + "' is not a directory");
  }

  // 1. Base state: the latest snapshot, or a fresh replica.
  std::unique_ptr<Replica> replica;
  auto loaded = LoadSnapshot(SnapshotPath(dir), listener);
  if (loaded.ok()) {
    replica = std::move(*loaded);
    if (replica->id() != id || replica->num_nodes() != num_nodes) {
      return Status::InvalidArgument(
          "snapshot in '" + dir + "' belongs to node " +
          std::to_string(replica->id()) + "/" +
          std::to_string(replica->num_nodes()));
    }
  } else if (loaded.status().IsNotFound()) {
    replica = std::make_unique<Replica>(id, num_nodes, listener);
  } else {
    return loaded.status();
  }

  // 2. Replay the journal suffix. A torn final record (crash mid-append)
  // terminates the replay cleanly; everything before it was applied with
  // write-ahead discipline.
  uint64_t replayed = 0;
  std::FILE* f = std::fopen(JournalPath(dir).c_str(), "rb");
  if (f != nullptr) {
    std::string data;
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
    std::fclose(f);

    ByteReader frames(data);
    while (!frames.AtEnd()) {
      auto len = frames.GetVarint64();
      if (!len.ok() || frames.remaining() < *len + 4) break;  // torn tail
      std::string_view payload(data.data() + frames.position(),
                               static_cast<size_t>(*len));
      frames.Skip(static_cast<size_t>(*len));
      auto stored_crc = frames.GetFixed32();
      if (!stored_crc.ok() || Crc32c(payload) != *stored_crc) {
        // A failed checksum means the record (and anything after it) is
        // not trustworthy: stop the replay at the last good prefix.
        break;
      }
      Status s = ReplayRecord(*replica, payload);
      if (!s.ok() && !s.IsConflict() && !s.IsNotFound()) {
        // Conflict/NotFound are legitimate outcomes of replayed inputs;
        // anything else means a corrupt journal.
        return Status::Corruption("journal replay failed: " + s.ToString());
      }
      ++replayed;
    }
  }

  auto jr = std::unique_ptr<JournaledReplica>(
      new JournaledReplica(dir, std::move(replica)));
  jr->records_ = replayed;
  EPI_RETURN_NOT_OK(jr->OpenJournalForAppend());
  return jr;
}

Status JournaledReplica::OpenJournalForAppend() {
  journal_ = std::fopen(JournalPath(dir_).c_str(), "ab");
  if (journal_ == nullptr) {
    return Status::IOError("cannot open journal in '" + dir_ + "'");
  }
  return Status::OK();
}

Status JournaledReplica::AppendRecord(std::string payload) {
  ByteWriter framed;
  framed.PutVarint64(payload.size());
  framed.PutBytes(payload.data(), payload.size());
  framed.PutFixed32(Crc32c(payload));
  const std::string& frame = framed.data();
  if (std::fwrite(frame.data(), 1, frame.size(), journal_) != frame.size() ||
      std::fflush(journal_) != 0) {
    return Status::IOError("journal append failed");
  }
  ++records_;
  return Status::OK();
}

Status JournaledReplica::Update(std::string_view name,
                                std::string_view value) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(RecordTag::kUpdate));
  w.PutString(name);
  w.PutString(value);
  EPI_RETURN_NOT_OK(AppendRecord(w.Release()));
  return replica_->Update(name, value);
}

Status JournaledReplica::Delete(std::string_view name) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(RecordTag::kDelete));
  w.PutString(name);
  EPI_RETURN_NOT_OK(AppendRecord(w.Release()));
  return replica_->Delete(name);
}

Status JournaledReplica::AcceptPropagation(const PropagationResponse& resp) {
  if (resp.you_are_current) {
    // No state change; nothing worth journaling.
    return replica_->AcceptPropagation(resp);
  }
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(RecordTag::kPropagation));
  wire::EncodePropagationResponseBody(w, resp);
  EPI_RETURN_NOT_OK(AppendRecord(w.Release()));
  return replica_->AcceptPropagation(resp);
}

Status JournaledReplica::AcceptOobResponse(const OobResponse& resp) {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(RecordTag::kOob));
  wire::EncodeOobResponseBody(w, resp);
  EPI_RETURN_NOT_OK(AppendRecord(w.Release()));
  return replica_->AcceptOobResponse(resp);
}

Status JournaledReplica::Checkpoint() {
  EPI_RETURN_NOT_OK(SaveSnapshot(*replica_, SnapshotPath(dir_)));
  // Truncate the journal: records up to here are covered by the snapshot.
  std::fclose(journal_);
  journal_ = nullptr;
  std::FILE* f = std::fopen(JournalPath(dir_).c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot truncate journal in '" + dir_ + "'");
  }
  std::fclose(f);
  records_ = 0;
  return OpenJournalForAppend();
}

}  // namespace epidemic
