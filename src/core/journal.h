#ifndef EPIDEMIC_CORE_JOURNAL_H_
#define EPIDEMIC_CORE_JOURNAL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/replica.h"
#include "core/sharded_replica.h"

namespace epidemic {

/// Write-ahead journal + deterministic replay recovery.
///
/// A Replica is a deterministic state machine over its *inputs*: user
/// updates/deletes, accepted propagation responses, and accepted
/// out-of-bound responses. JournaledReplica wraps a Replica, appends every
/// input to an on-disk journal *before* applying it, and `Recover` rebuilds
/// the exact replica state by replaying the journal through the ordinary
/// code paths — no second set of mutation logic to keep in sync.
///
/// Pairing with snapshots (snapshot.h): periodically `Checkpoint()` writes
/// a snapshot and truncates the journal, bounding recovery time; recovery
/// is then snapshot load + replay of the journal suffix.
///
/// Record framing: varint length + payload, where the payload is a one-byte
/// record tag followed by the same binary encodings the wire codec uses.
/// A torn final record (crash mid-append) is detected and ignored.
/// Replays a raw journal byte stream (varint-length + payload + CRC-32C
/// frames) into `replica` through the ordinary code paths. A torn or
/// checksum-failing frame ends the replay at the last good prefix — that
/// is the crash-recovery contract, not an error. Returns the number of
/// records applied, or Corruption when a checksummed record fails to
/// apply (a record that passed CRC must replay; anything else means the
/// journal and the code disagree).
///
/// This is the exact loop JournaledReplica::Open runs over journal.log,
/// exposed so recovery tests and the fuzz harness can drive the same
/// decode-then-apply path on arbitrary bytes.
Result<uint64_t> ReplayJournalBytes(Replica& replica, std::string_view data)
    REQUIRES_SHARD_CONTEXT;

class JournaledReplica {
 public:
  /// Recovers (or freshly creates) a journaled replica backed by the files
  /// `<dir>/journal.log` and `<dir>/snapshot.bin`. The directory must
  /// exist. `listener` may be null and must outlive the object.
  static Result<std::unique_ptr<JournaledReplica>> Open(
      const std::string& dir, NodeId id, size_t num_nodes,
      ConflictListener* listener = nullptr);

  ~JournaledReplica();

  JournaledReplica(const JournaledReplica&) = delete;
  JournaledReplica& operator=(const JournaledReplica&) = delete;

  // Journaled mutating operations — logged, then applied.
  Status Update(std::string_view name, std::string_view value)
      REQUIRES_SHARD_CONTEXT;
  Status Delete(std::string_view name) REQUIRES_SHARD_CONTEXT;
  Status ResolveConflict(std::string_view name, const VersionVector& remote_vv,
                         std::string_view value) REQUIRES_SHARD_CONTEXT;
  Status AcceptPropagation(const PropagationResponse& resp)
      REQUIRES_SHARD_CONTEXT;
  Status AcceptOobResponse(const OobResponse& resp) REQUIRES_SHARD_CONTEXT;

  /// Journaled accept of a raw wire-v3 segment body: the body is decoded
  /// zero-copy (which also validates it *before* anything is journaled),
  /// appended verbatim under its own record tag, and applied through the
  /// view path — the owned PropagationResponse is never materialized, on
  /// the live path or on replay.
  Status AcceptPropagationSegmentV3(std::string_view body)
      REQUIRES_SHARD_CONTEXT;

  // Pass-throughs. Read/serve paths touch replica counters/scratch, so
  // they inherit the shard-context requirement of the wrapped methods.
  Result<std::string> Read(std::string_view name) REQUIRES_SHARD_CONTEXT {
    return replica_->Read(name);
  }
  PropagationRequest BuildPropagationRequest() const {
    return replica_->BuildPropagationRequest();
  }
  PropagationResponse HandlePropagationRequest(const PropagationRequest& r)
      REQUIRES_SHARD_CONTEXT {
    return replica_->HandlePropagationRequest(r);
  }
  OobRequest BuildOobRequest(std::string_view name) const {
    return replica_->BuildOobRequest(name);
  }
  OobResponse HandleOobRequest(const OobRequest& r) REQUIRES_SHARD_CONTEXT {
    return replica_->HandleOobRequest(r);
  }

  /// Writes a snapshot and truncates the journal. Recovery afterwards is
  /// snapshot + (empty) journal. Requires the shard context: the snapshot
  /// must observe a quiescent replica (no concurrent mutation mid-encode).
  Status Checkpoint() REQUIRES_SHARD_CONTEXT;

  const Replica& replica() const { return *replica_; }
  Replica& replica() { return *replica_; }

  /// Journal records appended since the last checkpoint (for tests and
  /// monitoring).
  uint64_t records_since_checkpoint() const { return records_; }

 private:
  JournaledReplica(std::string dir, std::unique_ptr<Replica> replica);

  Status AppendRecord(std::string payload);
  Status OpenJournalForAppend();

  std::string dir_;
  std::unique_ptr<Replica> replica_;
  std::FILE* journal_ = nullptr;
  uint64_t records_ = 0;
};

/// A sharded replica where every shard is its own JournaledReplica in a
/// `shard-NNN/` subdirectory of `dir`, plus a `shards.meta` file pinning
/// the shard count (the item→shard mapping depends on it, so reopening
/// with a different count is refused rather than silently misrouting).
///
/// Shards journal and checkpoint independently — a full-database fsync
/// barrier never exists, and recovery replays each shard's suffix through
/// the ordinary code paths. Thread-compatibility matches ShardedReplica:
/// no locking here; the server runs each journaled entry point inside the
/// owning shard's single-writer task section (each touches exactly one
/// shard), which is what the REQUIRES_SHARD_CONTEXT annotations check.
class JournaledShardedReplica {
 public:
  /// Recovers (or freshly creates) the sharded state under `dir`, which
  /// must exist; shard subdirectories are created as needed.
  static Result<std::unique_ptr<JournaledShardedReplica>> Open(
      const std::string& dir, NodeId id, size_t num_nodes, size_t num_shards,
      ConflictListener* listener = nullptr);

  JournaledShardedReplica(const JournaledShardedReplica&) = delete;
  JournaledShardedReplica& operator=(const JournaledShardedReplica&) = delete;

  // Journaled mutating operations, each touching exactly one shard.
  Status Update(std::string_view name, std::string_view value)
      REQUIRES_SHARD_CONTEXT {
    return shards_[view_->ShardOf(name)]->Update(name, value);
  }
  Status Delete(std::string_view name) REQUIRES_SHARD_CONTEXT {
    return shards_[view_->ShardOf(name)]->Delete(name);
  }
  Status ResolveConflict(std::string_view name, const VersionVector& remote_vv,
                         std::string_view value) REQUIRES_SHARD_CONTEXT {
    return shards_[view_->ShardOf(name)]->ResolveConflict(name, remote_vv,
                                                          value);
  }
  Status AcceptShardPropagation(size_t shard, const PropagationResponse& r)
      REQUIRES_SHARD_CONTEXT {
    return shards_[shard]->AcceptPropagation(r);
  }
  /// Journaled accept of one shard's raw v3 segment body (see
  /// JournaledReplica::AcceptPropagationSegmentV3).
  Status AcceptShardPropagationSegmentV3(size_t shard, std::string_view body)
      REQUIRES_SHARD_CONTEXT {
    return shards_[shard]->AcceptPropagationSegmentV3(body);
  }
  Status AcceptOobResponse(const OobResponse& resp) REQUIRES_SHARD_CONTEXT {
    return shards_[view_->ShardOf(resp.item_name)]->AcceptOobResponse(resp);
  }

  /// Applies a full sharded response, journaling each segment to its
  /// shard. Applies every segment even if one fails; first error wins.
  Status AcceptPropagation(const ShardedPropagationResponse& resp)
      REQUIRES_SHARD_CONTEXT;

  /// Checkpoints every shard (first error wins, but all are attempted).
  Status Checkpoint() REQUIRES_SHARD_CONTEXT;
  /// Checkpoints one shard; callers inside that shard's task section need
  /// nothing more.
  Status CheckpointShard(size_t shard) REQUIRES_SHARD_CONTEXT {
    return shards_[shard]->Checkpoint();
  }

  /// Journal records appended since the last checkpoint, over all shards.
  uint64_t records_since_checkpoint() const;

  size_t num_shards() const { return shards_.size(); }
  JournaledReplica& shard(size_t k) { return *shards_[k]; }

  /// Non-owning sharded view over the shard engines — use it for reads,
  /// handshake building/serving, and introspection. Mutations MUST go
  /// through the journaled entry points above or they bypass the journal.
  ShardedReplica& view() { return *view_; }
  const ShardedReplica& view() const { return *view_; }

 private:
  explicit JournaledShardedReplica(
      std::vector<std::unique_ptr<JournaledReplica>> shards);

  std::vector<std::unique_ptr<JournaledReplica>> shards_;
  std::unique_ptr<ShardedReplica> view_;  // non-owning over shards_
};

}  // namespace epidemic

#endif  // EPIDEMIC_CORE_JOURNAL_H_
