#ifndef EPIDEMIC_CORE_JOURNAL_H_
#define EPIDEMIC_CORE_JOURNAL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "core/replica.h"

namespace epidemic {

/// Write-ahead journal + deterministic replay recovery.
///
/// A Replica is a deterministic state machine over its *inputs*: user
/// updates/deletes, accepted propagation responses, and accepted
/// out-of-bound responses. JournaledReplica wraps a Replica, appends every
/// input to an on-disk journal *before* applying it, and `Recover` rebuilds
/// the exact replica state by replaying the journal through the ordinary
/// code paths — no second set of mutation logic to keep in sync.
///
/// Pairing with snapshots (snapshot.h): periodically `Checkpoint()` writes
/// a snapshot and truncates the journal, bounding recovery time; recovery
/// is then snapshot load + replay of the journal suffix.
///
/// Record framing: varint length + payload, where the payload is a one-byte
/// record tag followed by the same binary encodings the wire codec uses.
/// A torn final record (crash mid-append) is detected and ignored.
class JournaledReplica {
 public:
  /// Recovers (or freshly creates) a journaled replica backed by the files
  /// `<dir>/journal.log` and `<dir>/snapshot.bin`. The directory must
  /// exist. `listener` may be null and must outlive the object.
  static Result<std::unique_ptr<JournaledReplica>> Open(
      const std::string& dir, NodeId id, size_t num_nodes,
      ConflictListener* listener = nullptr);

  ~JournaledReplica();

  JournaledReplica(const JournaledReplica&) = delete;
  JournaledReplica& operator=(const JournaledReplica&) = delete;

  // Journaled mutating operations — logged, then applied.
  Status Update(std::string_view name, std::string_view value);
  Status Delete(std::string_view name);
  Status AcceptPropagation(const PropagationResponse& resp);
  Status AcceptOobResponse(const OobResponse& resp);

  // Read-only operations pass straight through.
  Result<std::string> Read(std::string_view name) {
    return replica_->Read(name);
  }
  PropagationRequest BuildPropagationRequest() const {
    return replica_->BuildPropagationRequest();
  }
  PropagationResponse HandlePropagationRequest(const PropagationRequest& r) {
    return replica_->HandlePropagationRequest(r);
  }
  OobRequest BuildOobRequest(std::string_view name) const {
    return replica_->BuildOobRequest(name);
  }
  OobResponse HandleOobRequest(const OobRequest& r) {
    return replica_->HandleOobRequest(r);
  }

  /// Writes a snapshot and truncates the journal. Recovery afterwards is
  /// snapshot + (empty) journal.
  Status Checkpoint();

  const Replica& replica() const { return *replica_; }
  Replica& replica() { return *replica_; }

  /// Journal records appended since the last checkpoint (for tests and
  /// monitoring).
  uint64_t records_since_checkpoint() const { return records_; }

 private:
  JournaledReplica(std::string dir, std::unique_ptr<Replica> replica);

  Status AppendRecord(std::string payload);
  Status OpenJournalForAppend();

  std::string dir_;
  std::unique_ptr<Replica> replica_;
  std::FILE* journal_ = nullptr;
  uint64_t records_ = 0;
};

}  // namespace epidemic

#endif  // EPIDEMIC_CORE_JOURNAL_H_
