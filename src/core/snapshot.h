#ifndef EPIDEMIC_CORE_SNAPSHOT_H_
#define EPIDEMIC_CORE_SNAPSHOT_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "core/replica.h"
#include "core/sharded_replica.h"

namespace epidemic {

/// Durable snapshots of a replica's full protocol state.
///
/// A snapshot captures everything the protocol needs to resume after a
/// process restart: every item (value, tombstone, IVV, P(x)-backed log
/// membership), the auxiliary copies and the auxiliary redo log, the DBVV,
/// and the complete log vector. Counters (ReplicaStats) and the conflict
/// listener are runtime-only and are not captured.
///
/// Restart safety is what makes the §8.2 failure story complete: a crashed
/// node that recovers from its last snapshot simply resumes anti-entropy —
/// its DBVV is by construction dominated by (or equal to) the live nodes',
/// so the next exchanges pull exactly what it missed.
///
/// The format is a versioned binary blob (magic "EPISNAP1") using the same
/// primitives as the wire codec, ending in a CRC-32C over the whole body,
/// so bit rot is rejected before parsing. Snapshots are self-contained and
/// little-endian on the wire.
///
/// Soft state is intentionally NOT captured: stats counters, the conflict
/// listener, and the stability-tracking peer DBVVs (losing the latter just
/// makes the stability frontier conservatively restart at zero).

/// Serializes `replica` into a snapshot blob.
std::string EncodeSnapshot(const Replica& replica);

/// Reconstructs a replica from a snapshot blob. `listener` (optional, must
/// outlive the replica) receives future conflict reports. Fails with
/// Corruption on malformed input and Internal if the decoded state violates
/// protocol invariants.
Result<std::unique_ptr<Replica>> DecodeSnapshot(
    std::string_view blob, ConflictListener* listener = nullptr);

/// EncodeSnapshot + atomic write to `path` (via rename of a temp file).
Status SaveSnapshot(const Replica& replica, const std::string& path);

/// Reads `path` and decodes it.
Result<std::unique_ptr<Replica>> LoadSnapshot(
    const std::string& path, ConflictListener* listener = nullptr);

// -------------------------------------------------------------------------
// Sharded snapshots: a container (magic "EPISHRD1") holding the shard
// count followed by one length-prefixed standard EPISNAP1 blob per shard.
// Each shard blob keeps its own CRC, so per-shard bit rot is still pinned
// to the shard it hit; the container adds a trailing CRC of its own over
// the envelope. Shard k's blob restores shard k — the item→shard mapping
// is implied by the shard count and re-checked on load.

/// Serializes every shard of `replica` into one container blob.
std::string EncodeShardedSnapshot(const ShardedReplica& replica);

/// Reconstructs a sharded replica from a container blob. Fails with
/// Corruption on malformed input, and with Internal if any item sits in a
/// shard `ShardOf` disagrees with (a shard-count mismatch in disguise).
Result<std::unique_ptr<ShardedReplica>> DecodeShardedSnapshot(
    std::string_view blob, ConflictListener* listener = nullptr);

/// EncodeShardedSnapshot + atomic write to `path`.
Status SaveShardedSnapshot(const ShardedReplica& replica,
                           const std::string& path);

/// Reads `path` and decodes it as a sharded snapshot.
Result<std::unique_ptr<ShardedReplica>> LoadShardedSnapshot(
    const std::string& path, ConflictListener* listener = nullptr);

}  // namespace epidemic

#endif  // EPIDEMIC_CORE_SNAPSHOT_H_
