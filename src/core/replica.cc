#include "core/replica.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/bytes.h"
#include "common/logging.h"
#include "core/wire.h"
#include "vv/vv_codec.h"

namespace epidemic {

Replica::Replica(NodeId id, size_t num_nodes, ConflictListener* listener)
    : id_(id),
      num_nodes_(num_nodes),
      listener_(listener),
      store_(num_nodes),
      dbvv_(num_nodes),
      logs_(num_nodes),
      peer_dbvv_(num_nodes, VersionVector(num_nodes)) {
  EPI_CHECK(id < num_nodes) << "node id " << id << " out of range for "
                            << num_nodes << " nodes";
}

// ---------------------------------------------------------------------------
// User operations (§5.3).

Status Replica::Update(std::string_view name, std::string_view value) {
  return ApplyUserWrite(name, value, /*deleted=*/false);
}

Status Replica::Delete(std::string_view name) {
  return ApplyUserWrite(name, /*value=*/"", /*deleted=*/true);
}

Status Replica::ApplyUserWrite(std::string_view name, std::string_view value,
                               bool deleted) {
  if (name.empty()) return Status::InvalidArgument("empty item name");
  Item& item = store_.GetOrCreate(name);
  if (item.HasAux()) {
    // Out-of-bound item: apply on the auxiliary copy, log a redo record
    // carrying the IVV *before* the update, then bump the auxiliary IVV.
    // The DBVV and the log vector are deliberately untouched.
    aux_log_.Append(item.id, item.aux->ivv,
                    UpdateOp{std::string(value), deleted});
    item.aux->value = value;
    item.aux->deleted = deleted;
    item.aux->ivv.Increment(id_);
    ++stats_.updates_aux;
  } else {
    // Regular item: update the copy and do full bookkeeping —
    // v_ii(x) += 1, V_ii += 1, append (x, V_ii) to L_ii (§5.3).
    item.value = value;
    item.deleted = deleted;
    item.ivv.Increment(id_);
    dbvv_.Increment(id_);
    logs_.ForOrigin(id_).AddLogRecord(item.id, dbvv_[id_], &item.p[id_]);
    ++stats_.updates_regular;
  }
  return Status::OK();
}

Result<std::string> Replica::Read(std::string_view name) {
  ++stats_.reads;
  const Item* item = store_.Find(name);
  if (item == nullptr || item->UserDeleted()) {
    return Status::NotFound("no item named '" + std::string(name) + "'");
  }
  return item->UserValue();
}

Status Replica::ResolveConflict(std::string_view name,
                                const VersionVector& remote_vv,
                                std::string_view value) {
  if (remote_vv.size() != num_nodes_) {
    return Status::InvalidArgument("remote version vector of wrong width");
  }
  Item* item = store_.Find(name);
  if (item == nullptr) {
    return Status::NotFound("no item named '" + std::string(name) + "'");
  }
  if (item->HasAux()) {
    return Status::FailedPrecondition(
        "item '" + std::string(name) +
        "' is out-of-bound; resolve after the auxiliary copy retires");
  }
  if (!VersionVector::Conflicts(remote_vv, item->ivv)) {
    return Status::InvalidArgument(
        "vectors do not conflict; use Update for ordinary writes");
  }

  // The resolved copy semantically reflects both branches: merge the IVVs
  // (and grow the DBVV by what the remote branch adds), then apply the
  // chosen value as a fresh local update with full bookkeeping.
  VersionVector merged = item->ivv;
  merged.MergeMax(remote_vv);
  dbvv_.AddDelta(merged, item->ivv);
  item->ivv = merged;

  item->value = value;
  item->deleted = false;
  item->ivv.Increment(id_);
  dbvv_.Increment(id_);
  logs_.ForOrigin(id_).AddLogRecord(item->id, dbvv_[id_], &item->p[id_]);
  ++stats_.conflicts_resolved;
  return Status::OK();
}

std::vector<std::pair<std::string, std::string>> Replica::Scan(
    std::string_view prefix, size_t limit) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& item : store_) {
    if (item->UserDeleted()) continue;
    if (item->name.size() < prefix.size() ||
        std::string_view(item->name).substr(0, prefix.size()) != prefix) {
      continue;
    }
    out.emplace_back(item->name, item->UserValue());
  }
  std::sort(out.begin(), out.end());
  if (limit > 0 && out.size() > limit) out.resize(limit);
  return out;
}

std::string Replica::DebugString() const {
  size_t aux_copies = 0;
  size_t tombstones = 0;
  for (const auto& item : store_) {
    if (item->HasAux()) ++aux_copies;
    if (item->deleted) ++tombstones;
  }
  std::string out;
  out += "replica " + std::to_string(id_) + "/" + std::to_string(num_nodes_);
  out += " dbvv=" + dbvv_.ToString();
  out += " items=" + std::to_string(store_.size());
  out += " tombstones=" + std::to_string(tombstones);
  out += " log_records=" + std::to_string(logs_.TotalRecords());
  out += " aux_copies=" + std::to_string(aux_copies);
  out += " aux_records=" + std::to_string(aux_log_.size());
  out += "\nstats:";
  out += " updates=" + std::to_string(stats_.updates_regular) + "+" +
         std::to_string(stats_.updates_aux) + "aux";
  out += " reads=" + std::to_string(stats_.reads);
  out += " prop_served=" + std::to_string(stats_.propagation_requests_served);
  out += " current_replies=" + std::to_string(stats_.you_are_current_replies);
  out += " items_shipped=" + std::to_string(stats_.items_shipped);
  out += " items_adopted=" + std::to_string(stats_.items_adopted);
  out += " conflicts=" + std::to_string(stats_.conflicts_detected);
  out += " oob_served=" + std::to_string(stats_.oob_requests_served);
  out += " intra_node=" + std::to_string(stats_.intra_node_ops_applied);
  return out;
}

// ---------------------------------------------------------------------------
// Update propagation (§5.1).

PropagationRequest Replica::BuildPropagationRequest() const {
  return PropagationRequest{id_, dbvv_};
}

PropagationResponse Replica::HandlePropagationRequest(
    const PropagationRequest& req) {
  const PropagationResponseView& view = HandlePropagationView(req);
  // The staged pipeline materializes one owned string per name/value the
  // response carries; charge them so allocs/exchange is measurable.
  if (!view.you_are_current) {
    stats_.serve_staging_allocs += 2 * view.items.size();
    for (const auto& tail : view.tails) {
      stats_.serve_staging_allocs += tail.size();
    }
  }
  return wire::MaterializeResponse(view);
}

const PropagationResponseView& Replica::HandlePropagationView(
    const PropagationRequest& req) {
  ++stats_.propagation_requests_served;

  // Stability tracking: the request tells us how far the peer has come.
  if (req.requester < num_nodes_ && req.requester != id_ &&
      req.dbvv.size() == num_nodes_) {
    peer_dbvv_[req.requester].MergeMax(req.dbvv);
  }

  PropagationResponseView& resp = scratch_.serve_view;

  // One DBVV comparison decides, in O(1) w.r.t. the number of data items,
  // whether any propagation is needed at all (Fig. 2, first test). The
  // you-are-current reply constructs nothing — Reset keeps capacity.
  ++stats_.dbvv_comparisons;
  if (VersionVector::DominatesOrEqual(req.dbvv, dbvv_)) {
    resp.Reset(0);
    resp.you_are_current = true;
    ++stats_.you_are_current_replies;
    return resp;
  }

  // Build the tail vector D: for every origin k the requester lags on, the
  // suffix of L_jk with seq > V_i[k] — exactly the updates i missed. All
  // buffers come from the scratch area, so in steady state this allocates
  // nothing.
  resp.Reset(num_nodes_);
  scratch_.item_index.resize(store_.size());
  std::vector<LogRecord>& tail_buf = scratch_.tail_buf;
  std::vector<Item*>& selected = scratch_.selected;
  selected.clear();
  for (NodeId k = 0; k < num_nodes_; ++k) {
    if (dbvv_[k] <= req.dbvv[k]) continue;
    const OriginLog& log = logs_.ForOrigin(k);
    tail_buf.clear();
    tail_buf.reserve(log.size());
    log.CollectTail(req.dbvv[k], &tail_buf);
    resp.tails[k].reserve(tail_buf.size());
    for (const LogRecord& rec : tail_buf) {
      Item& item = store_.Get(rec.item);
      ++stats_.log_records_selected;
      // The IsSelected flag (§6) deduplicates S across tails in O(1) per
      // record, without hashing. Selection order assigns each item its
      // index into S, recorded in the scratch map so tail records can
      // carry it (the v3 segment encoder ships indices, not names).
      if (!item.is_selected) {
        item.is_selected = true;
        scratch_.item_index[item.id] = static_cast<uint32_t>(selected.size());
        selected.push_back(&item);
      }
      resp.tails[k].push_back(WireLogRecordView{
          item.name, rec.seq, scratch_.item_index[item.id]});
    }
  }

  // Emit S: the regular copy and IVV of every referenced item — as views
  // into the live store — flipping the flags back so the store is clean
  // for the next request.
  resp.items.reserve(selected.size());
  for (Item* item : selected) {
    resp.items.push_back(
        WireItemView{item->name, item->value, item->deleted, &item->ivv});
    item->is_selected = false;
    ++stats_.items_shipped;
  }
  return resp;
}

Status Replica::ValidatePropagationResponse(
    const PropagationResponseView& resp) const {
  if (resp.tails.size() != num_nodes_) {
    return Status::InvalidArgument(
        "tail vector has " + std::to_string(resp.tails.size()) +
        " components, expected " + std::to_string(num_nodes_));
  }
  // The item set S must carry well-formed IVVs and no duplicates.
  std::unordered_set<std::string_view> item_names;
  for (const WireItemView& wi : resp.items) {
    if (wi.name.empty()) {
      return Status::InvalidArgument("empty item name in response");
    }
    if (wi.ivv == nullptr || wi.ivv->size() != num_nodes_) {
      return Status::InvalidArgument("received IVV of wrong width for item '" +
                                     std::string(wi.name) + "'");
    }
    if (!item_names.insert(wi.name).second) {
      return Status::InvalidArgument("duplicate item '" + std::string(wi.name) +
                                     "' in response");
    }
  }
  // Tails must be proper suffixes: strictly increasing sequence numbers,
  // all beyond our per-origin horizon (our DBVV component — exactly what
  // the source's CollectTail selects against), and every record must name
  // an item shipped in S. A response violating any of these cannot have
  // come from a correct SendPropagation, and applying it could break the
  // log-order invariant.
  for (NodeId k = 0; k < num_nodes_; ++k) {
    UpdateCount prev = dbvv_[k];
    for (const WireLogRecordView& rec : resp.tails[k]) {
      if (rec.seq <= prev) {
        return Status::InvalidArgument(
            "tail for origin " + std::to_string(k) +
            " is not an ordered suffix beyond our horizon");
      }
      prev = rec.seq;
      if (!item_names.contains(rec.item_name)) {
        return Status::InvalidArgument("tail record references item '" +
                                       std::string(rec.item_name) +
                                       "' not shipped in S");
      }
    }
    // The DBVV horizon above is necessary but not sufficient: DBVV[k] is a
    // sum of item-IVV components, and after a conflict drops records it
    // falls below the largest seq already in L[k]. A forged tail can then
    // claim a seq L[k] already holds for a *different* item and, past the
    // adoption filter, insert a duplicate that breaks origin order (found
    // by fuzzing the v3 segment decoder). Each origin seq names exactly
    // one update of one item, so an equal seq is legitimate only when it
    // names the same item (a re-shipped record, replaced in place via
    // P(x)). Merge-scan the sorted log against the sorted tail to reject
    // the rest.
    const LogRecord* existing = logs_.ForOrigin(k).head();
    for (const WireLogRecordView& rec : resp.tails[k]) {
      while (existing != nullptr && existing->seq < rec.seq) {
        existing = existing->next;
      }
      if (existing != nullptr && existing->seq == rec.seq &&
          store_.Get(existing->item).name != rec.item_name) {
        return Status::InvalidArgument(
            "tail record for origin " + std::to_string(k) + " reuses seq " +
            std::to_string(rec.seq) + " held by item '" +
            store_.Get(existing->item).name + "'");
      }
    }
  }
  return Status::OK();
}

Status Replica::AcceptPropagation(const PropagationResponse& resp) {
  if (resp.you_are_current) return Status::OK();
  // The staged pipeline handed us one owned string per name/value; charge
  // them (the mirror image of the serve-side counter), then run the view
  // implementation over borrows into `resp`.
  stats_.accept_staging_allocs += 2 * resp.items.size();
  for (const auto& tail : resp.tails) {
    stats_.accept_staging_allocs += tail.size();
  }
  wire::MakeResponseView(resp, &scratch_.accept_view);
  return AcceptPropagation(scratch_.accept_view);
}

Status Replica::AcceptPropagation(const PropagationResponseView& resp) {
  if (resp.you_are_current) return Status::OK();

  // Validate the whole response before touching any state, so malformed or
  // malicious input is rejected atomically (the paper assumes correct
  // peers; a production receiver cannot).
  EPI_RETURN_NOT_OK(ValidatePropagationResponse(resp));

  // Step 2 (Fig. 3): adopt every received copy that strictly dominates the
  // local regular copy. Items whose copies were not adopted (conflicts, and
  // the defensively handled impossible cases) have their records dropped
  // from the tails, as the paper prescribes for conflicts. Adoption copies
  // each name and value exactly once — from the view's backing bytes into
  // the store; nothing else is materialized.
  std::vector<Item*> copied;
  std::unordered_set<std::string_view> dropped;
  for (const WireItemView& wi : resp.items) {
    Item& item = store_.GetOrCreate(wi.name);
    ++stats_.item_ivv_comparisons;
    switch (VersionVector::Compare(*wi.ivv, item.ivv)) {
      case VvOrder::kDominates:
        // DBVV maintenance rule 3 (§4.1), then adopt value and IVV.
        dbvv_.AddDelta(*wi.ivv, item.ivv);
        item.value = wi.value;
        item.deleted = wi.deleted;
        item.ivv = *wi.ivv;
        copied.push_back(&item);
        ++stats_.items_adopted;
        break;
      case VvOrder::kConcurrent:
        ReportConflict(item, *wi.ivv, ConflictSource::kPropagation);
        dropped.insert(wi.name);
        break;
      case VvOrder::kEqual:
        // Cannot arise under the protocol's ordering guarantees (§7);
        // tolerated defensively — nothing to adopt, and the records must be
        // dropped so our logs never advertise updates twice.
        ++stats_.redundant_items_received;
        dropped.insert(wi.name);
        break;
      case VvOrder::kDominatedBy:
        // Impossible in conflict-free executions (§7); after a partial
        // adoption forced by a conflict it can legitimately appear, so it
        // is treated like the redundant case.
        EPI_LOG(kDebug) << "node " << id_ << ": received older copy of '"
                        << wi.name << "' during propagation";
        ++stats_.redundant_items_received;
        dropped.insert(wi.name);
        break;
    }
  }

  // Append the surviving tails to our log vector, oldest first, preserving
  // origin order (AddLogRecord keeps at most one record per item).
  for (NodeId k = 0; k < num_nodes_; ++k) {
    for (const WireLogRecordView& rec : resp.tails[k]) {
      if (!dropped.empty() && dropped.contains(rec.item_name)) continue;
      Item& item = store_.GetOrCreate(rec.item_name);
      logs_.ForOrigin(k).AddLogRecord(item.id, rec.seq, &item.p[k]);
      ++stats_.records_appended;
    }
  }

  // Step 3: intra-node propagation (Fig. 4) for every item just copied.
  for (Item* item : copied) {
    IntraNodePropagation(*item);
  }
  return Status::OK();
}

size_t Replica::PumpIntraNode() {
  const uint64_t before = stats_.intra_node_ops_applied;
  for (const auto& item : store_) {
    if (item->HasAux()) IntraNodePropagation(*item);
  }
  return static_cast<size_t>(stats_.intra_node_ops_applied - before);
}

void Replica::IntraNodePropagation(Item& item) {
  if (!item.HasAux()) return;

  // Replay auxiliary updates whose recorded pre-IVV matches the regular
  // copy exactly: each replay is a normal local update (bookkeeping
  // included), after which the next record may match.
  AuxRecord* e = aux_log_.Earliest(item.id);
  while (e != nullptr &&
         VersionVector::Compare(item.ivv, e->vv) == VvOrder::kEqual) {
    item.value = e->op.new_value;
    item.deleted = e->op.deleted;
    item.ivv.Increment(id_);
    dbvv_.Increment(id_);
    logs_.ForOrigin(id_).AddLogRecord(item.id, dbvv_[id_], &item.p[id_]);
    ++stats_.intra_node_ops_applied;
    aux_log_.Remove(e);
    e = aux_log_.Earliest(item.id);
  }

  if (e == nullptr) {
    // No pending auxiliary updates: if the regular copy has caught up with
    // the auxiliary one, the auxiliary copy is no longer needed.
    if (VersionVector::DominatesOrEqual(item.ivv, item.aux->ivv)) {
      item.aux.reset();
      ++stats_.aux_copies_discarded;
    }
  } else if (VersionVector::Conflicts(item.ivv, e->vv)) {
    // The regular copy diverged from the lineage the auxiliary updates were
    // applied on — inconsistent replicas of x exist somewhere (Fig. 4).
    ReportConflict(item, e->vv, ConflictSource::kIntraNode);
  } else if (VersionVector::Dominates(item.ivv, e->vv)) {
    // The regular copy overtook the record's pre-image without replaying
    // it, so the pending auxiliary update was applied on a lineage the
    // regular copy did not follow and can never replay. The competing
    // user-visible line is the auxiliary IVV (= e->vv plus this node's
    // pending increments), by construction concurrent with the regular IVV
    // here — report it, or the divergence stays silent. Found by epicheck:
    // update → oob → concurrent updates at origin and on the auxiliary
    // copy → propagation of the origin's newer regular copy.
    ReportConflict(item, item.aux->ivv, ConflictSource::kIntraNode);
  }
  // Remaining case: e->vv dominates item.ivv — the regular copy must first
  // receive more updates through normal propagation; try again next round.
}

// ---------------------------------------------------------------------------
// Out-of-bound copying (§5.2).

OobRequest Replica::BuildOobRequest(std::string_view name) const {
  return OobRequest{id_, std::string(name)};
}

OobResponse Replica::HandleOobRequest(const OobRequest& req) {
  ++stats_.oob_requests_served;
  OobResponse resp;
  resp.item_name = req.item_name;
  const Item* item = store_.Find(req.item_name);
  if (item == nullptr) return resp;  // found = false
  resp.found = true;
  // Prefer the auxiliary copy — never older than the regular copy (§5.2).
  resp.value = item->UserValue();
  resp.deleted = item->UserDeleted();
  resp.ivv = item->UserIvv();
  return resp;
}

// NOLINT-PROTOCOL(unlogged-store-write): the OOB path adopts into the
// *auxiliary* copy only — §5.2 requires the DBVV, log vector and regular
// copy untouched so ordering guarantees survive; a later scheduled
// propagation re-ships the item (footnote 2, §5.1).
Status Replica::AcceptOobResponse(const OobResponse& resp) {
  if (!resp.found) {
    return Status::NotFound("out-of-bound source has no item '" +
                            resp.item_name + "'");
  }
  if (resp.ivv.size() != num_nodes_) {
    return Status::InvalidArgument("received IVV of wrong width for item '" +
                                   resp.item_name + "'");
  }
  Item& item = store_.GetOrCreate(resp.item_name);
  // Compare against the user-visible copy: the auxiliary IVV when an
  // auxiliary copy exists, the regular IVV otherwise.
  switch (VersionVector::Compare(resp.ivv, item.UserIvv())) {
    case VvOrder::kDominates:
      if (!item.HasAux()) {
        item.aux = std::make_unique<AuxCopy>();
        ++stats_.aux_copies_created;
      }
      // Note: existing auxiliary-log records are intentionally preserved
      // (§5.2) — they replay onto the regular copy later.
      item.aux->value = resp.value;
      item.aux->deleted = resp.deleted;
      item.aux->ivv = resp.ivv;
      ++stats_.oob_copies_adopted;
      return Status::OK();
    case VvOrder::kEqual:
    case VvOrder::kDominatedBy:
      ++stats_.oob_copies_ignored;
      return Status::OK();
    case VvOrder::kConcurrent:
      ReportConflict(item, resp.ivv, ConflictSource::kOutOfBound);
      return Status::Conflict("out-of-bound copy of '" + resp.item_name +
                              "' conflicts with the local copy");
  }
  return Status::Internal("unreachable");
}

// ---------------------------------------------------------------------------
// Stability tracking.

VersionVector Replica::StabilityFrontier() const {
  VersionVector frontier = dbvv_;
  for (NodeId j = 0; j < num_nodes_; ++j) {
    if (j == id_) continue;
    for (NodeId k = 0; k < num_nodes_; ++k) {
      if (peer_dbvv_[j][k] < frontier[k]) frontier[k] = peer_dbvv_[j][k];
    }
  }
  return frontier;
}

bool Replica::IsStable(const Item& item) const {
  VersionVector frontier = StabilityFrontier();
  for (NodeId k = 0; k < num_nodes_; ++k) {
    if (item.ivv[k] > frontier[k]) return false;
  }
  return true;
}

Replica::StabilityInfo Replica::CountStable() const {
  // One frontier computation for the whole pass.
  VersionVector frontier = StabilityFrontier();
  StabilityInfo info;
  for (const auto& item : store_) {
    bool stable = true;
    for (NodeId k = 0; k < num_nodes_ && stable; ++k) {
      stable = item->ivv[k] <= frontier[k];
    }
    if (!stable) continue;
    ++info.stable_items;
    if (item->deleted) ++info.stable_tombstones;
  }
  return info;
}

// ---------------------------------------------------------------------------

void Replica::ReportConflict(const Item& item, const VersionVector& remote,
                             ConflictSource source) {
  ++stats_.conflicts_detected;
  if (listener_ != nullptr) {
    ConflictEvent event;
    event.item_name = item.name;
    event.local_node = id_;
    event.local_vv = source == ConflictSource::kOutOfBound ? item.UserIvv()
                                                           : item.ivv;
    event.remote_vv = remote;
    event.source = source;
    listener_->OnConflict(event);
  }
}

Status Replica::CheckInvariants() const {
  // DBVV invariant: V_i[k] == Σ_x ivv_i(x)[k] over regular copies (§4.1).
  VersionVector sum(num_nodes_);
  for (const auto& item : store_) {
    if (item->ivv.size() != num_nodes_) {
      return Status::Internal("item '" + item->name + "' has IVV of width " +
                              std::to_string(item->ivv.size()));
    }
    for (NodeId k = 0; k < num_nodes_; ++k) sum[k] += item->ivv[k];
  }
  if (!(sum == dbvv_)) {
    return Status::Internal("DBVV invariant violated: sum of IVVs is " +
                            sum.ToString() + " but DBVV is " +
                            dbvv_.ToString());
  }

  // Log invariants per component: strictly increasing seq (origin order),
  // and P(x) back-pointer agreement (which implies ≤ 1 record per item).
  for (NodeId k = 0; k < num_nodes_; ++k) {
    const OriginLog& log = logs_.ForOrigin(k);
    UpdateCount prev_seq = 0;
    size_t walked = 0;
    for (const LogRecord* r = log.head(); r != nullptr; r = r->next) {
      ++walked;
      if (r->seq <= prev_seq && walked > 1) {
        return Status::Internal("log L[" + std::to_string(k) +
                                "] not in origin order");
      }
      prev_seq = r->seq;
      const Item& item = store_.Get(r->item);
      if (item.p[k] != r) {
        return Status::Internal("P(x) back-pointer mismatch for item '" +
                                item.name + "' origin " + std::to_string(k));
      }
    }
    if (walked != log.size()) {
      return Status::Internal("log L[" + std::to_string(k) +
                              "] size mismatch");
    }
  }
  // And the reverse direction: every non-null P(x) points at a record for x.
  for (const auto& item : store_) {
    for (NodeId k = 0; k < num_nodes_; ++k) {
      if (item->p[k] != nullptr && item->p[k]->item != item->id) {
        return Status::Internal("item '" + item->name +
                                "' P(x) points at a foreign record");
      }
    }
    if (item->is_selected) {
      return Status::Internal("item '" + item->name +
                              "' has IsSelected left set");
    }
  }

  // Auxiliary invariant: records in AUX_i only for items that still have an
  // auxiliary copy, and the whole log preserves append order (the m counter
  // is the node's auxiliary update sequence).
  uint64_t prev_m = 0;
  for (const AuxRecord* r = aux_log_.head(); r != nullptr; r = r->next) {
    const Item& item = store_.Get(r->item);
    if (!item.HasAux()) {
      return Status::Internal("aux log record for item '" + item.name +
                              "' which has no auxiliary copy");
    }
    if (r->m <= prev_m) {
      return Status::Internal("AUX log not in append order at item '" +
                              item.name + "'");
    }
    prev_m = r->m;
  }

  // §5.2 auxiliary-structure invariants, per out-of-bound item.
  for (const auto& item : store_) {
    if (!item->HasAux()) continue;
    const VersionVector& aux_ivv = item->aux->ivv;
    if (aux_ivv.size() != num_nodes_) {
      return Status::Internal("item '" + item->name +
                              "' has aux IVV of width " +
                              std::to_string(aux_ivv.size()));
    }
    // The auxiliary copy is never older than the regular copy it shadows:
    // strictly newer in conflict-free executions, and possibly incomparable
    // once a concurrent branch has been adopted into the regular copy. The
    // regular copy dominating (or equalling) the auxiliary one is
    // impossible — intra-node propagation retires the auxiliary copy the
    // moment the regular copy catches up.
    switch (VersionVector::Compare(aux_ivv, item->ivv)) {
      case VvOrder::kDominates:
      case VvOrder::kConcurrent:
        break;
      case VvOrder::kEqual:
      case VvOrder::kDominatedBy:
        return Status::Internal(
            "auxiliary IVV " + aux_ivv.ToString() + " of item '" +
            item->name + "' does not exceed the regular IVV " +
            item->ivv.ToString() + " — the auxiliary copy should have "
            "retired");
    }
    // Redo records for this item replay in origin order: strictly growing
    // pre-update IVVs (mirrors the regular-log seq check), all strictly
    // below the current auxiliary IVV they led up to.
    const AuxRecord* prev = nullptr;
    for (const AuxRecord* r = aux_log_.Earliest(item->id); r != nullptr;
         r = r->item_next) {
      if (r->vv.size() != num_nodes_) {
        return Status::Internal("aux record for item '" + item->name +
                                "' has IVV of width " +
                                std::to_string(r->vv.size()));
      }
      if (prev != nullptr && !VersionVector::Dominates(r->vv, prev->vv)) {
        return Status::Internal("aux log for item '" + item->name +
                                "' not in origin order");
      }
      if (!VersionVector::Dominates(aux_ivv, r->vv)) {
        return Status::Internal(
            "aux record pre-IVV " + r->vv.ToString() + " for item '" +
            item->name + "' is not reflected in the aux IVV " +
            aux_ivv.ToString());
      }
      prev = r;
    }
  }
  return Status::OK();
}

std::string Replica::CanonicalState() const {
  ByteWriter w;
  EncodeVersionVector(&w, dbvv_);

  // Items sorted by name, so two replicas that created the same items in
  // different orders (and therefore assigned different ItemIds) still
  // canonicalize identically. Zero-IVV items without an auxiliary copy are
  // skipped: such a "fresh replica that has seen no updates" (§3) carries
  // no value, no tombstone and no log records, so a replica that merely
  // instantiated the control state (e.g. via a conflicting exchange) is
  // indistinguishable from one that never heard the name.
  std::vector<const Item*> sorted;
  sorted.reserve(store_.size());
  for (const auto& item : store_) {
    if (item->ivv.Total() == 0 && !item->HasAux()) continue;
    sorted.push_back(item.get());
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const Item* a, const Item* b) { return a->name < b->name; });
  w.PutVarint64(sorted.size());
  for (const Item* item : sorted) {
    w.PutString(item->name);
    w.PutString(item->value);
    w.PutU8(item->deleted ? 1 : 0);
    EncodeVersionVector(&w, item->ivv);
    w.PutU8(item->HasAux() ? 1 : 0);
    if (item->HasAux()) {
      w.PutString(item->aux->value);
      w.PutU8(item->aux->deleted ? 1 : 0);
      EncodeVersionVector(&w, item->aux->ivv);
    }
  }

  // Per-origin logs by item name (ids are node-local), in list order —
  // which the log invariant pins to origin order.
  for (NodeId k = 0; k < num_nodes_; ++k) {
    const OriginLog& log = logs_.ForOrigin(k);
    w.PutVarint64(log.size());
    for (const LogRecord* rec = log.head(); rec != nullptr; rec = rec->next) {
      w.PutString(store_.Get(rec->item).name);
      w.PutVarint64(rec->seq);
    }
  }

  // Auxiliary log in append order.
  w.PutVarint64(aux_log_.size());
  for (const AuxRecord* rec = aux_log_.head(); rec != nullptr;
       rec = rec->next) {
    w.PutString(store_.Get(rec->item).name);
    EncodeVersionVector(&w, rec->vv);
    w.PutString(rec->op.new_value);
    w.PutU8(rec->op.deleted ? 1 : 0);
  }
  return w.Release();
}

Result<size_t> PropagateOnce(Replica& source, Replica& recipient) {
  PropagationRequest req = recipient.BuildPropagationRequest();
  PropagationResponse resp = source.HandlePropagationRequest(req);
  uint64_t adopted_before = recipient.stats().items_adopted;
  Status s = recipient.AcceptPropagation(resp);
  if (!s.ok()) return s;
  return static_cast<size_t>(recipient.stats().items_adopted -
                             adopted_before);
}

Result<size_t> PropagateOnceFast(Replica& source, Replica& recipient) {
  PropagationRequest req = recipient.BuildPropagationRequest();
  // The view borrows the source's store; it stays valid through the accept
  // because nothing mutates the source until this call returns (both
  // replicas are confined to this thread).
  const PropagationResponseView& resp = source.HandlePropagationView(req);
  uint64_t adopted_before = recipient.stats().items_adopted;
  Status s = recipient.AcceptPropagation(resp);
  if (!s.ok()) return s;
  return static_cast<size_t>(recipient.stats().items_adopted -
                             adopted_before);
}

}  // namespace epidemic
