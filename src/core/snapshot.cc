#include "core/snapshot.h"

#include <cstdio>
#include <utility>

#include "common/bytes.h"
#include "common/hash.h"
#include "vv/vv_codec.h"

namespace epidemic {

namespace {
constexpr char kMagic[] = "EPISNAP1";  // 8 bytes, version in the last digit
constexpr char kShardedMagic[] = "EPISHRD1";  // sharded container format
constexpr size_t kMagicLen = 8;

Status WriteFileAtomic(const std::string& blob, const std::string& path) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + tmp + "' for writing");
  }
  const size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
  const bool flushed = (std::fflush(f) == 0);
  std::fclose(f);
  if (written != blob.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::IOError("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename snapshot into '" + path + "'");
  }
  return Status::OK();
}

Result<std::string> ReadFileFully(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("no snapshot at '" + path + "'");
  }
  std::string blob;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    blob.append(buf, n);
  }
  const bool read_error = (std::ferror(f) != 0);
  std::fclose(f);
  if (read_error) return Status::IOError("error reading '" + path + "'");
  return blob;
}
}  // namespace

/// Friend of Replica; does the actual state walking.
class SnapshotCodec {
 public:
  static std::string Encode(const Replica& r) {
    ByteWriter w;
    w.PutBytes(kMagic, kMagicLen);
    w.PutVarint64(r.id_);
    w.PutVarint64(r.num_nodes_);
    EncodeVersionVector(&w, r.dbvv_);

    // Items in creation order, so ItemIds are reproduced exactly on load
    // and the log sections can reference them by id.
    w.PutVarint64(r.store_.size());
    for (const auto& item : r.store_) {
      w.PutString(item->name);
      w.PutString(item->value);
      w.PutU8(item->deleted ? 1 : 0);
      EncodeVersionVector(&w, item->ivv);
      w.PutU8(item->HasAux() ? 1 : 0);
      if (item->HasAux()) {
        w.PutString(item->aux->value);
        w.PutU8(item->aux->deleted ? 1 : 0);
        EncodeVersionVector(&w, item->aux->ivv);
      }
    }

    // Log vector: per origin, records oldest-first.
    for (NodeId k = 0; k < r.num_nodes_; ++k) {
      const OriginLog& log = r.logs_.ForOrigin(k);
      w.PutVarint64(log.size());
      for (const LogRecord* rec = log.head(); rec != nullptr;
           rec = rec->next) {
        w.PutVarint64(rec->item);
        w.PutVarint64(rec->seq);
      }
    }

    // Auxiliary log in global order (relative order is what matters; the
    // sequence counter is regenerated on load).
    w.PutVarint64(r.aux_log_.size());
    for (const AuxRecord* rec = r.aux_log_.head(); rec != nullptr;
         rec = rec->next) {
      w.PutVarint64(rec->item);
      EncodeVersionVector(&w, rec->vv);
      w.PutString(rec->op.new_value);
      w.PutU8(rec->op.deleted ? 1 : 0);
    }

    // Trailing CRC-32C over everything above: bit rot is detected before
    // the structural parse even starts.
    std::string body = w.Release();
    ByteWriter out;
    out.PutBytes(body.data(), body.size());
    out.PutFixed32(Crc32c(body));
    return out.Release();
  }

  static Result<std::unique_ptr<Replica>> Decode(std::string_view blob,
                                                 ConflictListener* listener) {
    // Single-owner escape: the replica built below is freshly constructed
    // and unpublished until this function returns it — the decoding thread
    // IS its single writer.
    AssertShardContextHeld();
    if (blob.size() < kMagicLen + 4 ||
        blob.substr(0, kMagicLen) != std::string_view(kMagic, kMagicLen)) {
      return Status::Corruption("not an epidemic snapshot (bad magic)");
    }
    const std::string_view body = blob.substr(0, blob.size() - 4);
    uint32_t stored_crc;
    {
      ByteReader crc_reader(blob.substr(blob.size() - 4));
      auto crc = crc_reader.GetFixed32();
      if (!crc.ok()) return crc.status();
      stored_crc = *crc;
    }
    if (Crc32c(body) != stored_crc) {
      return Status::Corruption("snapshot checksum mismatch");
    }
    ByteReader reader(body.substr(kMagicLen));

    auto id = reader.GetVarint64();
    if (!id.ok()) return id.status();
    auto num_nodes = reader.GetVarint64();
    if (!num_nodes.ok()) return num_nodes.status();
    if (*num_nodes == 0 || *num_nodes > (1u << 20) || *id >= *num_nodes) {
      return Status::Corruption("implausible snapshot header");
    }
    auto replica = std::make_unique<Replica>(
        static_cast<NodeId>(*id), static_cast<size_t>(*num_nodes), listener);

    auto dbvv = DecodeVersionVector(&reader);
    if (!dbvv.ok()) return dbvv.status();
    if (dbvv->size() != *num_nodes) {
      return Status::Corruption("snapshot DBVV width mismatch");
    }
    replica->dbvv_ = std::move(*dbvv);

    auto item_count = reader.GetVarint64();
    if (!item_count.ok()) return item_count.status();
    for (uint64_t i = 0; i < *item_count; ++i) {
      auto name = reader.GetString();
      if (!name.ok()) return name.status();
      if (name->empty()) return Status::Corruption("empty item name");
      Item& item = replica->store_.GetOrCreate(*name);
      if (item.id != i) {
        return Status::Corruption("duplicate item name in snapshot");
      }
      auto value = reader.GetString();
      if (!value.ok()) return value.status();
      item.value = std::move(*value);
      auto deleted = reader.GetU8();
      if (!deleted.ok()) return deleted.status();
      item.deleted = (*deleted != 0);
      auto ivv = DecodeVersionVector(&reader);
      if (!ivv.ok()) return ivv.status();
      if (ivv->size() != *num_nodes) {
        return Status::Corruption("item IVV width mismatch");
      }
      item.ivv = std::move(*ivv);
      auto has_aux = reader.GetU8();
      if (!has_aux.ok()) return has_aux.status();
      if (*has_aux != 0) {
        item.aux = std::make_unique<AuxCopy>();
        auto aux_value = reader.GetString();
        if (!aux_value.ok()) return aux_value.status();
        item.aux->value = std::move(*aux_value);
        auto aux_deleted = reader.GetU8();
        if (!aux_deleted.ok()) return aux_deleted.status();
        item.aux->deleted = (*aux_deleted != 0);
        auto aux_ivv = DecodeVersionVector(&reader);
        if (!aux_ivv.ok()) return aux_ivv.status();
        if (aux_ivv->size() != *num_nodes) {
          return Status::Corruption("aux IVV width mismatch");
        }
        item.aux->ivv = std::move(*aux_ivv);
      }
    }

    for (NodeId k = 0; k < *num_nodes; ++k) {
      auto rec_count = reader.GetVarint64();
      if (!rec_count.ok()) return rec_count.status();
      for (uint64_t i = 0; i < *rec_count; ++i) {
        auto item_id = reader.GetVarint64();
        if (!item_id.ok()) return item_id.status();
        auto seq = reader.GetVarint64();
        if (!seq.ok()) return seq.status();
        if (*item_id >= replica->store_.size()) {
          return Status::Corruption("log record references unknown item");
        }
        Item& item = replica->store_.Get(static_cast<ItemId>(*item_id));
        if (item.p[k] != nullptr) {
          return Status::Corruption("duplicate log record for item '" +
                                    item.name + "'");
        }
        replica->logs_.ForOrigin(k).AddLogRecord(item.id, *seq, &item.p[k]);
      }
    }

    auto aux_count = reader.GetVarint64();
    if (!aux_count.ok()) return aux_count.status();
    for (uint64_t i = 0; i < *aux_count; ++i) {
      auto item_id = reader.GetVarint64();
      if (!item_id.ok()) return item_id.status();
      if (*item_id >= replica->store_.size()) {
        return Status::Corruption("aux record references unknown item");
      }
      auto vv = DecodeVersionVector(&reader);
      if (!vv.ok()) return vv.status();
      auto op_value = reader.GetString();
      if (!op_value.ok()) return op_value.status();
      auto op_deleted = reader.GetU8();
      if (!op_deleted.ok()) return op_deleted.status();
      replica->aux_log_.Append(
          static_cast<ItemId>(*item_id), *vv,
          UpdateOp{std::move(*op_value), *op_deleted != 0});
    }

    if (!reader.AtEnd()) {
      return Status::Corruption("trailing bytes after snapshot");
    }
    EPI_RETURN_NOT_OK(replica->CheckInvariants());
    return replica;
  }
};

std::string EncodeSnapshot(const Replica& replica) {
  return SnapshotCodec::Encode(replica);
}

Result<std::unique_ptr<Replica>> DecodeSnapshot(std::string_view blob,
                                                ConflictListener* listener) {
  return SnapshotCodec::Decode(blob, listener);
}

Status SaveSnapshot(const Replica& replica, const std::string& path) {
  return WriteFileAtomic(EncodeSnapshot(replica), path);
}

Result<std::unique_ptr<Replica>> LoadSnapshot(const std::string& path,
                                              ConflictListener* listener) {
  auto blob = ReadFileFully(path);
  if (!blob.ok()) return blob.status();
  return DecodeSnapshot(*blob, listener);
}

std::string EncodeShardedSnapshot(const ShardedReplica& replica) {
  ByteWriter w;
  w.PutBytes(kShardedMagic, kMagicLen);
  w.PutVarint64(replica.num_shards());
  for (size_t k = 0; k < replica.num_shards(); ++k) {
    w.PutString(EncodeSnapshot(replica.shard(k)));
  }
  std::string body = w.Release();
  ByteWriter out;
  out.PutBytes(body.data(), body.size());
  out.PutFixed32(Crc32c(body));
  return out.Release();
}

Result<std::unique_ptr<ShardedReplica>> DecodeShardedSnapshot(
    std::string_view blob, ConflictListener* listener) {
  if (blob.size() < kMagicLen + 4 ||
      blob.substr(0, kMagicLen) !=
          std::string_view(kShardedMagic, kMagicLen)) {
    return Status::Corruption("not a sharded epidemic snapshot (bad magic)");
  }
  const std::string_view body = blob.substr(0, blob.size() - 4);
  uint32_t stored_crc;
  {
    ByteReader crc_reader(blob.substr(blob.size() - 4));
    auto crc = crc_reader.GetFixed32();
    if (!crc.ok()) return crc.status();
    stored_crc = *crc;
  }
  if (Crc32c(body) != stored_crc) {
    return Status::Corruption("sharded snapshot checksum mismatch");
  }
  ByteReader reader(body.substr(kMagicLen));

  auto num_shards = reader.GetVarint64();
  if (!num_shards.ok()) return num_shards.status();
  if (*num_shards == 0 || *num_shards > (1u << 16)) {
    return Status::Corruption("implausible shard count");
  }
  std::vector<std::unique_ptr<Replica>> shards;
  shards.reserve(static_cast<size_t>(*num_shards));
  for (uint64_t k = 0; k < *num_shards; ++k) {
    auto shard_blob = reader.GetString();
    if (!shard_blob.ok()) return shard_blob.status();
    auto shard = DecodeSnapshot(*shard_blob, listener);
    if (!shard.ok()) {
      return Status::Corruption("shard " + std::to_string(k) + ": " +
                                shard.status().message());
    }
    shards.push_back(std::move(*shard));
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after sharded snapshot");
  }
  if (shards.size() > 1) {
    for (uint64_t k = 0; k < shards.size(); ++k) {
      if (shards[k]->id() != shards[0]->id() ||
          shards[k]->num_nodes() != shards[0]->num_nodes()) {
        return Status::Corruption("shards disagree on node identity");
      }
    }
  }
  // Every item must live in the shard the name hash assigns it to —
  // otherwise the snapshot was taken under a different shard count.
  for (uint64_t k = 0; k < shards.size(); ++k) {
    for (const auto& item : shards[k]->items()) {
      if (ShardedReplica::ShardOf(item->name, shards.size()) != k) {
        return Status::Internal("item '" + item->name + "' found in shard " +
                                std::to_string(k) +
                                " but hashes elsewhere; shard count changed?");
      }
    }
  }
  return std::make_unique<ShardedReplica>(std::move(shards));
}

Status SaveShardedSnapshot(const ShardedReplica& replica,
                           const std::string& path) {
  return WriteFileAtomic(EncodeShardedSnapshot(replica), path);
}

Result<std::unique_ptr<ShardedReplica>> LoadShardedSnapshot(
    const std::string& path, ConflictListener* listener) {
  auto blob = ReadFileFully(path);
  if (!blob.ok()) return blob.status();
  return DecodeShardedSnapshot(*blob, listener);
}

}  // namespace epidemic
