#ifndef EPIDEMIC_CORE_SHARDED_REPLICA_H_
#define EPIDEMIC_CORE_SHARDED_REPLICA_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/buffer_pool.h"
#include "common/result.h"
#include "common/status.h"
#include "core/replica.h"

namespace epidemic {

/// A node's replica partitioned into S independent shards.
///
/// Item names are hashed into a fixed number of shards; each shard owns a
/// complete instance of the paper's protocol state — its own item store,
/// DBVV, log vector, and auxiliary log — so every per-shard exchange is
/// exactly the §5 protocol and the §4.1 invariant `V[k] == Σ ivv(x)[k]`
/// holds per shard (and, by summation, in aggregate). What sharding buys:
///
///   * the "nothing to do" check stays O(1) *per shard* (O(S) per node-pair
///     handshake, still independent of the item count), and a full exchange
///     still ships only O(m) items;
///   * shards share no protocol state, so user operations and anti-entropy
///     on different shards need no coordination — the server layer exploits
///     this with per-shard striped locks and parallel shard processing.
///
/// Thread-compatibility matches Replica: this class does no locking itself.
/// Two operations may run concurrently iff they touch different shards; the
/// routed convenience methods below touch exactly one shard unless
/// documented otherwise. The canonical concurrent deployment is the
/// shard-owned task runtime (runtime/scheduler.h): each shard index maps to
/// a scheduler shard whose single-writer section is the only place mutating
/// calls may run, which is why every mutating method here carries
/// REQUIRES_SHARD_CONTEXT (DESIGN.md §11-§12). Single-threaded callers
/// (simulator, benchmarks, tests) compile without enforcement and drive the
/// methods directly.
class ShardedReplica {
 public:
  static constexpr size_t kDefaultShards = 16;

  /// Owning constructor: builds `num_shards` fresh shard engines.
  /// `listener` (optional, must outlive the object) receives conflicts from
  /// every shard; with concurrent shard access it must be thread-safe.
  ShardedReplica(NodeId id, size_t num_nodes,
                 size_t num_shards = kDefaultShards,
                 ConflictListener* listener = nullptr);

  /// Owning constructor over pre-built shard engines (snapshot restore).
  /// All shards must agree on id/num_nodes.
  explicit ShardedReplica(std::vector<std::unique_ptr<Replica>> shards);

  /// Non-owning view over externally owned shard engines (the durable
  /// server: each shard lives inside its own JournaledReplica). All shards
  /// must agree on id/num_nodes and must outlive the view. Mutating routed
  /// calls through a view bypass any journaling the owner performs, so
  /// views are for inspection and the non-journaled protocol steps
  /// (handshake building/serving) only.
  explicit ShardedReplica(std::vector<Replica*> shards);

  ShardedReplica(const ShardedReplica&) = delete;
  ShardedReplica& operator=(const ShardedReplica&) = delete;

  /// Stable item-name → shard mapping (CRC-32C modulo `num_shards`). Every
  /// replica of a cluster must agree on the shard count or propagation is
  /// rejected at the handshake.
  static size_t ShardOf(std::string_view name, size_t num_shards);
  size_t ShardOf(std::string_view name) const {
    return ShardOf(name, shards_.size());
  }

  // ---------------------------------------------------------------------
  // User operations (§5.3), routed to the owning shard.

  Status Update(std::string_view name, std::string_view value)
      REQUIRES_SHARD_CONTEXT {
    return route(name).Update(name, value);
  }
  Status Delete(std::string_view name) REQUIRES_SHARD_CONTEXT {
    return route(name).Delete(name);
  }
  Result<std::string> Read(std::string_view name) REQUIRES_SHARD_CONTEXT {
    return route(name).Read(name);
  }
  Status ResolveConflict(std::string_view name, const VersionVector& remote_vv,
                         std::string_view value) REQUIRES_SHARD_CONTEXT {
    return route(name).ResolveConflict(name, remote_vv, value);
  }

  /// Merged scan across all shards, sorted by name. Touches every shard.
  std::vector<std::pair<std::string, std::string>> Scan(
      std::string_view prefix, size_t limit = 0) const;

  // ---------------------------------------------------------------------
  // Sharded update propagation: one round trip for all shards.

  /// Step (1): every shard's DBVV in one handshake message.
  ShardedPropagationRequest BuildPropagationRequest() const;

  /// Step (1), wire v3: same handshake, tagged v3 and carrying the
  /// negotiation flags byte (`accept_compressed` advertises that the
  /// source may LZ77-compress large segments).
  ShardedPropagationRequest BuildPropagationRequestV3(
      bool accept_compressed = false) const;

  /// Source side: runs SendPropagation (Fig. 2) per shard; shards the
  /// requester is current on are omitted from the reply. Touches every
  /// shard. The server layer instead calls HandleShardPropagation per shard
  /// under striped locks; this serial form serves single-threaded callers
  /// (simulator, benchmarks, tests).
  ShardedPropagationResponse HandlePropagationRequest(
      const ShardedPropagationRequest& req) REQUIRES_SHARD_CONTEXT;

  /// Source side, wire v3: each stale shard is served zero-copy
  /// (HandlePropagationView) and encoded straight into a v3 segment body —
  /// delta IVVs against the shard's DBVV, indexed tails, compression when
  /// the request's flags allow. Shards the requester is current on
  /// construct nothing at all. `pool` (nullable) supplies the segment and
  /// compression buffers; bodies are moved into the reply, so callers that
  /// want reuse return them to the pool after the frame is encoded.
  ShardedPropagationResponse HandlePropagationRequestV3(
      const ShardedPropagationRequest& req, BufferPool* pool = nullptr)
      REQUIRES_SHARD_CONTEXT;

  /// Recipient side: AcceptPropagation (Fig. 3-4) per received segment.
  /// Touches the shards named by the response. Applies every segment even
  /// if one fails; returns the first error. Dispatches on
  /// `resp.wire_version`: v3 segments decode zero-copy (views into the
  /// segment bytes, applied directly); v2 segments take the historical
  /// owned decode.
  Status AcceptPropagation(const ShardedPropagationResponse& resp)
      REQUIRES_SHARD_CONTEXT;

  // Per-shard building blocks for callers that hold per-shard locks.

  /// Fig. 2 for one shard; `req.dbvv` is the requester's DBVV *of this
  /// shard*.
  PropagationResponse HandleShardPropagation(size_t shard,
                                             const PropagationRequest& req)
      REQUIRES_SHARD_CONTEXT {
    return shards_[shard]->HandlePropagationRequest(req);
  }

  /// Fig. 2 for one shard, zero-copy: the returned view borrows the
  /// shard's store and serve scratch, so it is valid only while the caller
  /// holds that shard's lock and until the shard next mutates or serves.
  const PropagationResponseView& HandleShardPropagationView(
      size_t shard, const PropagationRequest& req) REQUIRES_SHARD_CONTEXT {
    return shards_[shard]->HandlePropagationView(req);
  }

  /// Fig. 3-4 for one shard.
  Status AcceptShardPropagation(size_t shard,
                                const PropagationResponse& resp)
      REQUIRES_SHARD_CONTEXT {
    return shards_[shard]->AcceptPropagation(resp);
  }

  /// Fig. 3-4 for one shard over a borrowed response view.
  Status AcceptShardPropagation(size_t shard,
                                const PropagationResponseView& resp)
      REQUIRES_SHARD_CONTEXT {
    return shards_[shard]->AcceptPropagation(resp);
  }

  /// Runs Replica::PumpIntraNode on every shard (replays pending auxiliary
  /// redo records, retires caught-up auxiliary copies). Touches every
  /// shard; returns the total operations replayed.
  size_t PumpIntraNode() REQUIRES_SHARD_CONTEXT;

  // ---------------------------------------------------------------------
  // Out-of-bound copying (§5.2), routed by item name.

  OobRequest BuildOobRequest(std::string_view name) const {
    return route(name).BuildOobRequest(name);
  }
  OobResponse HandleOobRequest(const OobRequest& req) REQUIRES_SHARD_CONTEXT {
    return route(req.item_name).HandleOobRequest(req);
  }
  Status AcceptOobResponse(const OobResponse& resp) REQUIRES_SHARD_CONTEXT {
    return route(resp.item_name).AcceptOobResponse(resp);
  }

  // ---------------------------------------------------------------------
  // Introspection.

  NodeId id() const { return shards_[0]->id(); }
  size_t num_nodes() const { return shards_[0]->num_nodes(); }
  size_t num_shards() const { return shards_.size(); }
  Replica& shard(size_t k) { return *shards_[k]; }
  const Replica& shard(size_t k) const { return *shards_[k]; }

  /// Component-wise sum of every shard's DBVV — the whole-database version
  /// vector of §4.1, reconstructed. Touches every shard.
  VersionVector AggregateDbvv() const;

  /// Sum of every shard's protocol counters. Touches every shard; for an
  /// atomic aggregate, callers with striped locks must hold them all.
  ReplicaStats TotalStats() const;

  /// Resets every shard's counters. Touches every shard.
  void ResetStats() REQUIRES_SHARD_CONTEXT;

  /// Total regular items across shards. Touches every shard.
  size_t TotalItems() const;

  /// Regular copy of an item (nullptr if absent), from its owning shard.
  const Item* FindItem(std::string_view name) const {
    return route(name).FindItem(name);
  }

  /// Per-shard §4.1/log invariants plus the aggregate DBVV consistency
  /// check (the sum of shard DBVVs must equal the sum of all item IVVs).
  Status CheckInvariants() const;

  /// Deterministic serialization of the protocol state: every shard's
  /// Replica::CanonicalState in shard-index order (the name → shard map is
  /// a pure function, so equal states always shard identically). Touches
  /// every shard. Used by the model checker for state deduplication.
  std::string CanonicalState() const;

  /// Aggregated one-stop summary in the same shape as Replica::DebugString,
  /// plus the shard count and per-shard item/update distribution.
  std::string DebugString() const;

 private:
  Replica& route(std::string_view name) { return *shards_[ShardOf(name)]; }
  const Replica& route(std::string_view name) const {
    return *shards_[ShardOf(name)];
  }

  std::vector<std::unique_ptr<Replica>> owned_;  // empty for views
  std::vector<Replica*> shards_;                 // always size num_shards
};

/// Runs one full sharded anti-entropy exchange (all shards, one logical
/// round trip) pulling from `source` into `recipient`, both in-process,
/// through the real wire encoding of the per-shard segments. Returns the
/// number of items copied.
Result<size_t> PropagateOnceSharded(ShardedReplica& source,
                                    ShardedReplica& recipient)
    REQUIRES_SHARD_CONTEXT;

/// PropagateOnceSharded over wire v3: the source serves zero-copy into v3
/// segment bodies (optionally compressed) and the recipient applies them
/// through the view decoder. `pool` (nullable) backs the segment buffers.
Result<size_t> PropagateOnceShardedV3(ShardedReplica& source,
                                      ShardedReplica& recipient,
                                      bool compress = false,
                                      BufferPool* pool = nullptr)
    REQUIRES_SHARD_CONTEXT;

}  // namespace epidemic

#endif  // EPIDEMIC_CORE_SHARDED_REPLICA_H_
