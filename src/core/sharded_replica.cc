#include "core/sharded_replica.h"

#include <algorithm>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/logging.h"
#include "core/wire.h"

namespace epidemic {

ShardedReplica::ShardedReplica(NodeId id, size_t num_nodes, size_t num_shards,
                               ConflictListener* listener) {
  EPI_CHECK(num_shards >= 1) << "a replica needs at least one shard";
  owned_.reserve(num_shards);
  shards_.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    owned_.push_back(std::make_unique<Replica>(id, num_nodes, listener));
    shards_.push_back(owned_.back().get());
  }
}

ShardedReplica::ShardedReplica(std::vector<std::unique_ptr<Replica>> shards)
    : owned_(std::move(shards)) {
  EPI_CHECK(!owned_.empty()) << "a replica needs at least one shard";
  shards_.reserve(owned_.size());
  for (auto& shard : owned_) {
    EPI_CHECK(shard != nullptr);
    EPI_CHECK(shard->id() == owned_[0]->id() &&
              shard->num_nodes() == owned_[0]->num_nodes())
        << "shards disagree on node identity";
    shards_.push_back(shard.get());
  }
}

ShardedReplica::ShardedReplica(std::vector<Replica*> shards)
    : shards_(std::move(shards)) {
  EPI_CHECK(!shards_.empty()) << "a replica needs at least one shard";
  for (const Replica* shard : shards_) {
    EPI_CHECK(shard != nullptr);
    EPI_CHECK(shard->id() == shards_[0]->id() &&
              shard->num_nodes() == shards_[0]->num_nodes())
        << "shards disagree on node identity";
  }
}

size_t ShardedReplica::ShardOf(std::string_view name, size_t num_shards) {
  if (num_shards <= 1) return 0;
  return Crc32c(name) % num_shards;
}

std::vector<std::pair<std::string, std::string>> ShardedReplica::Scan(
    std::string_view prefix, size_t limit) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const Replica* shard : shards_) {
    auto part = shard->Scan(prefix, /*limit=*/0);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::sort(out.begin(), out.end());
  if (limit > 0 && out.size() > limit) out.resize(limit);
  return out;
}

ShardedPropagationRequest ShardedReplica::BuildPropagationRequest() const {
  ShardedPropagationRequest req;
  req.requester = id();
  req.shard_dbvvs.reserve(shards_.size());
  for (const Replica* shard : shards_) {
    req.shard_dbvvs.push_back(shard->dbvv());
  }
  return req;
}

ShardedPropagationRequest ShardedReplica::BuildPropagationRequestV3(
    bool accept_compressed) const {
  ShardedPropagationRequest req = BuildPropagationRequest();
  req.wire_version = kWireV3;
  if (accept_compressed) req.flags |= kPropFlagAcceptCompressed;
  return req;
}

ShardedPropagationResponse ShardedReplica::HandlePropagationRequest(
    const ShardedPropagationRequest& req) {
  ShardedPropagationResponse resp;
  resp.num_shards = static_cast<uint32_t>(shards_.size());
  if (req.shard_dbvvs.size() != shards_.size()) {
    // Topology mismatch: reply "current" with our shard count so the
    // requester can diagnose; it must not apply anything.
    return resp;
  }
  for (size_t k = 0; k < shards_.size(); ++k) {
    PropagationResponse shard_resp = shards_[k]->HandlePropagationRequest(
        PropagationRequest{req.requester, req.shard_dbvvs[k]});
    if (shard_resp.you_are_current) continue;
    resp.segments.push_back(ShardedPropagationSegment{
        static_cast<uint32_t>(k), wire::EncodeShardSegmentBody(shard_resp)});
  }
  return resp;
}

ShardedPropagationResponse ShardedReplica::HandlePropagationRequestV3(
    const ShardedPropagationRequest& req, BufferPool* pool) {
  ShardedPropagationResponse resp;
  resp.wire_version = kWireV3;
  resp.num_shards = static_cast<uint32_t>(shards_.size());
  if (req.shard_dbvvs.size() != shards_.size()) {
    // Topology mismatch: reply "current" with our shard count so the
    // requester can diagnose; it must not apply anything.
    return resp;
  }
  wire::V3SegmentOptions opts;
  opts.compress = (req.flags & kPropFlagAcceptCompressed) != 0;
  for (size_t k = 0; k < shards_.size(); ++k) {
    const PropagationResponseView& view = shards_[k]->HandlePropagationView(
        PropagationRequest{req.requester, req.shard_dbvvs[k]});
    // A current shard produces no segment and constructs nothing — the
    // O(1) DBVV check is the only work done.
    if (view.you_are_current) continue;
    ShardedPropagationSegment seg;
    seg.shard = static_cast<uint32_t>(k);
    seg.body = pool != nullptr ? pool->Get() : std::string();
    // The delta base is this shard's DBVV: §4.1 gives ivv(x)[j] ≤ V[j]
    // for every item in the shard, so complement deltas never underflow.
    wire::EncodeShardSegmentBodyV3(view, shards_[k]->dbvv(), opts, pool,
                                   &seg.body);
    resp.segments.push_back(std::move(seg));
  }
  return resp;
}

Status ShardedReplica::AcceptPropagation(
    const ShardedPropagationResponse& resp) {
  if (resp.num_shards != shards_.size()) {
    return Status::InvalidArgument(
        "source runs " + std::to_string(resp.num_shards) +
        " shards, this replica " + std::to_string(shards_.size()));
  }
  Status first_error = Status::OK();
  // v3 decode state shared (and reused) across segments: the views live
  // only for the duration of each shard's accept call.
  wire::SegmentViewStorage storage;
  PropagationResponseView view;
  for (const ShardedPropagationSegment& seg : resp.segments) {
    if (seg.shard >= shards_.size()) {
      if (first_error.ok()) {
        first_error = Status::InvalidArgument("segment shard out of range");
      }
      continue;
    }
    Status s;
    if (resp.wire_version >= kWireV3) {
      s = wire::DecodeShardSegmentBodyV3(seg.body, &storage, &view);
      if (s.ok()) s = shards_[seg.shard]->AcceptPropagation(view);
    } else {
      Result<PropagationResponse> decoded =
          wire::DecodeShardSegmentBody(seg.body);
      s = decoded.ok() ? shards_[seg.shard]->AcceptPropagation(*decoded)
                       : decoded.status();
    }
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

VersionVector ShardedReplica::AggregateDbvv() const {
  VersionVector sum(num_nodes());
  for (const Replica* shard : shards_) {
    for (NodeId k = 0; k < num_nodes(); ++k) sum[k] += shard->dbvv()[k];
  }
  return sum;
}

ReplicaStats ShardedReplica::TotalStats() const {
  ReplicaStats total;
  for (const Replica* shard : shards_) total.Accumulate(shard->stats());
  return total;
}

void ShardedReplica::ResetStats() {
  for (Replica* shard : shards_) shard->ResetStats();
}

size_t ShardedReplica::TotalItems() const {
  size_t n = 0;
  for (const Replica* shard : shards_) n += shard->items().size();
  return n;
}

size_t ShardedReplica::PumpIntraNode() {
  size_t applied = 0;
  for (Replica* shard : shards_) applied += shard->PumpIntraNode();
  return applied;
}

Status ShardedReplica::CheckInvariants() const {
  VersionVector ivv_sum(num_nodes());
  for (size_t k = 0; k < shards_.size(); ++k) {
    Status s = shards_[k]->CheckInvariants();
    if (!s.ok()) {
      return Status::Internal("shard " + std::to_string(k) + ": " +
                              s.message());
    }
    for (const auto& item : shards_[k]->items()) {
      for (NodeId j = 0; j < num_nodes(); ++j) ivv_sum[j] += item->ivv[j];
    }
  }
  // Aggregate §4.1: the reconstructed whole-database vector must equal the
  // sum of all item IVVs across all shards.
  VersionVector agg = AggregateDbvv();
  if (!(ivv_sum == agg)) {
    return Status::Internal("aggregate DBVV invariant violated: sum of all "
                            "IVVs is " + ivv_sum.ToString() +
                            " but shard DBVVs sum to " + agg.ToString());
  }
  return Status::OK();
}

std::string ShardedReplica::CanonicalState() const {
  ByteWriter w;
  w.PutVarint64(shards_.size());
  for (const Replica* shard : shards_) w.PutString(shard->CanonicalState());
  return w.Release();
}

std::string ShardedReplica::DebugString() const {
  size_t tombstones = 0;
  size_t aux_copies = 0;
  size_t log_records = 0;
  size_t aux_records = 0;
  for (const Replica* shard : shards_) {
    for (const auto& item : shard->items()) {
      if (item->HasAux()) ++aux_copies;
      if (item->deleted) ++tombstones;
    }
    log_records += shard->log_vector().TotalRecords();
    aux_records += shard->aux_log().size();
  }
  ReplicaStats stats = TotalStats();

  std::string out;
  out += "replica ";
  out += std::to_string(id());
  out += "/";
  out += std::to_string(num_nodes());
  out += " shards=" + std::to_string(shards_.size());
  out += " dbvv=" + AggregateDbvv().ToString();
  out += " items=" + std::to_string(TotalItems());
  out += " tombstones=" + std::to_string(tombstones);
  out += " log_records=" + std::to_string(log_records);
  out += " aux_copies=" + std::to_string(aux_copies);
  out += " aux_records=" + std::to_string(aux_records);
  out += "\nstats:";
  out += " updates=" + std::to_string(stats.updates_regular) + "+" +
         std::to_string(stats.updates_aux) + "aux";
  out += " reads=" + std::to_string(stats.reads);
  out += " prop_served=" + std::to_string(stats.propagation_requests_served);
  out += " current_replies=" + std::to_string(stats.you_are_current_replies);
  out += " items_shipped=" + std::to_string(stats.items_shipped);
  out += " items_adopted=" + std::to_string(stats.items_adopted);
  out += " conflicts=" + std::to_string(stats.conflicts_detected);
  out += " oob_served=" + std::to_string(stats.oob_requests_served);
  out += " intra_node=" + std::to_string(stats.intra_node_ops_applied);
  out += "\nshard items:";
  for (const Replica* shard : shards_) {
    out += " ";
    out += std::to_string(shard->items().size());
  }
  return out;
}

Result<size_t> PropagateOnceSharded(ShardedReplica& source,
                                    ShardedReplica& recipient) {
  ShardedPropagationRequest req = recipient.BuildPropagationRequest();
  ShardedPropagationResponse resp = source.HandlePropagationRequest(req);
  uint64_t adopted_before = recipient.TotalStats().items_adopted;
  Status s = recipient.AcceptPropagation(resp);
  if (!s.ok()) return s;
  return static_cast<size_t>(recipient.TotalStats().items_adopted -
                             adopted_before);
}

Result<size_t> PropagateOnceShardedV3(ShardedReplica& source,
                                      ShardedReplica& recipient,
                                      bool compress, BufferPool* pool) {
  ShardedPropagationRequest req =
      recipient.BuildPropagationRequestV3(compress);
  ShardedPropagationResponse resp =
      source.HandlePropagationRequestV3(req, pool);
  uint64_t adopted_before = recipient.TotalStats().items_adopted;
  Status s = recipient.AcceptPropagation(resp);
  if (!s.ok()) return s;
  if (pool != nullptr) {
    for (ShardedPropagationSegment& seg : resp.segments) {
      pool->Put(std::move(seg.body));
    }
  }
  return static_cast<size_t>(recipient.TotalStats().items_adopted -
                             adopted_before);
}

}  // namespace epidemic
