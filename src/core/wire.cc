#include "core/wire.h"

#include <cassert>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/compress.h"
#include "vv/vv_codec.h"

namespace epidemic::wire {

void EncodePropagationRequestBody(ByteWriter& w,
                                  const PropagationRequest& m) {
  w.PutVarint64(m.requester);
  EncodeVersionVector(&w, m.dbvv);
}

void EncodePropagationResponseBody(ByteWriter& w,
                                   const PropagationResponse& m) {
  w.PutU8(m.you_are_current ? 1 : 0);
  if (m.you_are_current) return;
  w.PutVarint64(m.tails.size());
  for (const auto& tail : m.tails) {
    w.PutVarint64(tail.size());
    for (const WireLogRecord& rec : tail) {
      w.PutString(rec.item_name);
      w.PutVarint64(rec.seq);
    }
  }
  w.PutVarint64(m.items.size());
  for (const WireItem& item : m.items) {
    w.PutString(item.name);
    w.PutString(item.value);
    w.PutU8(item.deleted ? 1 : 0);
    EncodeVersionVector(&w, item.ivv);
  }
}

void EncodeOobRequestBody(ByteWriter& w, const OobRequest& m) {
  w.PutVarint64(m.requester);
  w.PutString(m.item_name);
}

void EncodeOobResponseBody(ByteWriter& w, const OobResponse& m) {
  w.PutU8(m.found ? 1 : 0);
  w.PutString(m.item_name);
  if (!m.found) return;
  w.PutString(m.value);
  w.PutU8(m.deleted ? 1 : 0);
  EncodeVersionVector(&w, m.ivv);
}

Result<PropagationRequest> DecodePropagationRequestBody(ByteReader& r) {
  PropagationRequest m;
  auto requester = r.GetVarint64();
  if (!requester.ok()) return requester.status();
  m.requester = static_cast<NodeId>(*requester);
  auto vv = DecodeVersionVector(&r);
  if (!vv.ok()) return vv.status();
  m.dbvv = std::move(*vv);
  return m;
}

Result<PropagationResponse> DecodePropagationResponseBody(ByteReader& r) {
  PropagationResponse m;
  auto current = r.GetU8();
  if (!current.ok()) return current.status();
  m.you_are_current = (*current != 0);
  if (m.you_are_current) return m;

  auto num_tails = r.GetVarint64();
  if (!num_tails.ok()) return num_tails.status();
  if (*num_tails > (1u << 20)) return Status::Corruption("absurd tail count");
  m.tails.resize(static_cast<size_t>(*num_tails));
  for (auto& tail : m.tails) {
    auto count = r.GetVarint64();
    if (!count.ok()) return count.status();
    tail.reserve(static_cast<size_t>(*count));
    for (uint64_t i = 0; i < *count; ++i) {
      WireLogRecord rec;
      auto name = r.GetString();
      if (!name.ok()) return name.status();
      rec.item_name = std::move(*name);
      auto seq = r.GetVarint64();
      if (!seq.ok()) return seq.status();
      rec.seq = *seq;
      tail.push_back(std::move(rec));
    }
  }

  auto num_items = r.GetVarint64();
  if (!num_items.ok()) return num_items.status();
  m.items.reserve(static_cast<size_t>(*num_items));
  for (uint64_t i = 0; i < *num_items; ++i) {
    WireItem item;
    auto name = r.GetString();
    if (!name.ok()) return name.status();
    item.name = std::move(*name);
    auto value = r.GetString();
    if (!value.ok()) return value.status();
    item.value = std::move(*value);
    auto deleted = r.GetU8();
    if (!deleted.ok()) return deleted.status();
    item.deleted = (*deleted != 0);
    auto vv = DecodeVersionVector(&r);
    if (!vv.ok()) return vv.status();
    item.ivv = std::move(*vv);
    m.items.push_back(std::move(item));
  }
  return m;
}

void EncodeShardedPropagationRequestBody(ByteWriter& w,
                                         const ShardedPropagationRequest& m) {
  w.PutVarint64(m.requester);
  w.PutVarint64(m.shard_dbvvs.size());
  for (const VersionVector& vv : m.shard_dbvvs) {
    EncodeVersionVector(&w, vv);
  }
}

void EncodeShardedPropagationResponseBody(
    ByteWriter& w, const ShardedPropagationResponse& m) {
  // Segment bodies dominate the frame; reserving their sum up front turns
  // the stitch into one allocation instead of a doubling series that
  // re-copies megabytes.
  size_t total = 24;
  for (const ShardedPropagationSegment& seg : m.segments) {
    total += seg.body.size() + 12;
  }
  w.Reserve(w.size() + total);
  w.PutVarint64(m.num_shards);
  w.PutVarint64(m.segments.size());
  for (const ShardedPropagationSegment& seg : m.segments) {
    w.PutVarint64(seg.shard);
    w.PutString(seg.body);
  }
}

Result<ShardedPropagationRequest> DecodeShardedPropagationRequestBody(
    ByteReader& r) {
  ShardedPropagationRequest m;
  auto requester = r.GetVarint64();
  if (!requester.ok()) return requester.status();
  m.requester = static_cast<NodeId>(*requester);
  auto count = r.GetVarint64();
  if (!count.ok()) return count.status();
  if (*count > (1u << 16)) return Status::Corruption("absurd shard count");
  m.shard_dbvvs.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    auto vv = DecodeVersionVector(&r);
    if (!vv.ok()) return vv.status();
    m.shard_dbvvs.push_back(std::move(*vv));
  }
  return m;
}

Result<ShardedPropagationResponse> DecodeShardedPropagationResponseBody(
    ByteReader& r) {
  ShardedPropagationResponse m;
  auto num_shards = r.GetVarint64();
  if (!num_shards.ok()) return num_shards.status();
  if (*num_shards > (1u << 16)) return Status::Corruption("absurd shard count");
  m.num_shards = static_cast<uint32_t>(*num_shards);
  // The segment count and each segment's length prefix are padded-varint
  // backpatch slots in the direct-to-frame serve path
  // (ServeShardedPropagationFrameV3), so these two fields — and only
  // these — decode with the padded getters.
  auto count = r.GetVarint64Padded();
  if (!count.ok()) return count.status();
  if (*count > *num_shards) {
    return Status::Corruption("more segments than shards");
  }
  m.segments.reserve(static_cast<size_t>(*count));
  uint64_t prev_shard = 0;
  for (uint64_t i = 0; i < *count; ++i) {
    ShardedPropagationSegment seg;
    auto shard = r.GetVarint64();
    if (!shard.ok()) return shard.status();
    // Strictly increasing shard indices < num_shards: rejects duplicates
    // and out-of-range segments before any shard state is touched.
    if (*shard >= *num_shards || (i > 0 && *shard <= prev_shard)) {
      return Status::Corruption("segment shard indices not strictly "
                                "increasing within the shard count");
    }
    prev_shard = *shard;
    seg.shard = static_cast<uint32_t>(*shard);
    auto body = r.GetStringPadded();
    if (!body.ok()) return body.status();
    seg.body = std::move(*body);
    m.segments.push_back(std::move(seg));
  }
  return m;
}

std::string EncodeShardSegmentBody(const PropagationResponse& m) {
  ByteWriter w;
  EncodePropagationResponseBody(w, m);
  return w.Release();
}

Result<PropagationResponse> DecodeShardSegmentBody(std::string_view body) {
  ByteReader r(body);
  auto resp = DecodePropagationResponseBody(r);
  if (!resp.ok()) return resp.status();
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after shard segment body");
  }
  return resp;
}

// ---------------------------------------------------------------------------
// Wire format v3
// ---------------------------------------------------------------------------

void EncodeShardedPropagationRequestBodyV3(
    ByteWriter& w, const ShardedPropagationRequest& m) {
  w.PutVarint64(m.requester);
  w.PutU8(m.flags);
  w.PutVarint64(m.last_epoch);
  w.PutVarint64(m.shard_dbvvs.size());
  for (const VersionVector& vv : m.shard_dbvvs) {
    EncodeVersionVector(&w, vv);
  }
}

Result<ShardedPropagationRequest> DecodeShardedPropagationRequestBodyV3(
    ByteReader& r) {
  ShardedPropagationRequest m;
  m.wire_version = kWireV3;
  auto requester = r.GetVarint64();
  if (!requester.ok()) return requester.status();
  m.requester = static_cast<NodeId>(*requester);
  auto flags = r.GetU8();
  if (!flags.ok()) return flags.status();
  m.flags = *flags;
  auto last_epoch = r.GetVarint64();
  if (!last_epoch.ok()) return last_epoch.status();
  m.last_epoch = *last_epoch;
  auto count = r.GetVarint64();
  if (!count.ok()) return count.status();
  if (*count > (1u << 16)) return Status::Corruption("absurd shard count");
  if ((m.flags & kPropFlagEpochProbe) != 0 && *count != 0) {
    return Status::Corruption("epoch probe carrying shard DBVVs");
  }
  m.shard_dbvvs.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    auto vv = DecodeVersionVector(&r);
    if (!vv.ok()) return vv.status();
    m.shard_dbvvs.push_back(std::move(*vv));
  }
  return m;
}

void EncodeShardedPropagationResponseBodyV3(
    ByteWriter& w, const ShardedPropagationResponse& m) {
  w.PutU8(m.resp_flags);
  w.PutVarint64(m.epoch);
  EncodeShardedPropagationResponseBody(w, m);
}

Result<ShardedPropagationResponse> DecodeShardedPropagationResponseBodyV3(
    ByteReader& r) {
  auto resp_flags = r.GetU8();
  if (!resp_flags.ok()) return resp_flags.status();
  auto epoch = r.GetVarint64();
  if (!epoch.ok()) return epoch.status();
  auto m = DecodeShardedPropagationResponseBody(r);
  if (!m.ok()) return m.status();
  if ((*resp_flags & ~kPropRespFlagResend) != 0) {
    return Status::Corruption("unknown sharded response flags");
  }
  if ((*resp_flags & kPropRespFlagResend) != 0 && !m->segments.empty()) {
    return Status::Corruption("resend reply carrying segments");
  }
  m->wire_version = kWireV3;
  m->resp_flags = *resp_flags;
  m->epoch = *epoch;
  return m;
}

Status DecodeShardedPropagationResponseEnvelopeV3(
    ByteReader& r, ShardedResponseEnvelopeView* out) {
  out->segments.clear();
  auto resp_flags = r.GetU8();
  if (!resp_flags.ok()) return resp_flags.status();
  if ((*resp_flags & ~kPropRespFlagResend) != 0) {
    return Status::Corruption("unknown sharded response flags");
  }
  auto epoch = r.GetVarint64();
  if (!epoch.ok()) return epoch.status();
  auto num_shards = r.GetVarint64();
  if (!num_shards.ok()) return num_shards.status();
  if (*num_shards > (1u << 16)) return Status::Corruption("absurd shard count");
  // Padded backpatch slot (see DecodeShardedPropagationResponseBody).
  auto count = r.GetVarint64Padded();
  if (!count.ok()) return count.status();
  if (*count > *num_shards) {
    return Status::Corruption("more segments than shards");
  }
  if ((*resp_flags & kPropRespFlagResend) != 0 && *count != 0) {
    return Status::Corruption("resend reply carrying segments");
  }
  out->resp_flags = *resp_flags;
  out->epoch = *epoch;
  out->num_shards = static_cast<uint32_t>(*num_shards);
  out->segments.reserve(static_cast<size_t>(*count));
  uint64_t prev_shard = 0;
  for (uint64_t i = 0; i < *count; ++i) {
    auto shard = r.GetVarint64();
    if (!shard.ok()) return shard.status();
    if (*shard >= *num_shards || (i > 0 && *shard <= prev_shard)) {
      return Status::Corruption("segment shard indices not strictly "
                                "increasing within the shard count");
    }
    prev_shard = *shard;
    auto body = r.GetStringViewPadded();
    if (!body.ok()) return body.status();
    out->segments.push_back(
        ShardedSegmentView{static_cast<uint32_t>(*shard), *body});
  }
  return Status::OK();
}

namespace {

/// Cheap upper-bound-ish estimate of the inner v3 segment size, so the
/// ByteWriter reserves once instead of doubling. Per item: length
/// prefixes + deleted byte + a typical few-byte delta IVV; per tail
/// record: index + seq varints.
size_t EstimateSegmentInnerSize(const PropagationResponseView& m,
                                const VersionVector& base) {
  size_t est = 2 * base.size() + 16;
  for (const WireItemView& item : m.items) {
    est += item.name.size() + item.value.size() + 16;
  }
  for (const auto& tail : m.tails) {
    est += 2 + 8 * tail.size();
  }
  return est;
}

void EncodeSegmentInnerV3(ByteWriter& w, const PropagationResponseView& m,
                          const VersionVector& base) {
  EncodeVersionVector(&w, base);
  w.PutVarint64(m.items.size());
  for (const WireItemView& item : m.items) {
    w.PutString(item.name);
    w.PutString(item.value);
    w.PutU8(item.deleted ? 1 : 0);
    EncodeVersionVectorDelta(&w, *item.ivv, base);
  }
  w.PutVarint64(m.tails.size());
  for (const auto& tail : m.tails) {
    w.PutVarint64(tail.size());
    UpdateCount prev = 0;
    bool first = true;
    for (const WireLogRecordView& rec : tail) {
      w.PutVarint64(rec.item_index);
      // Records within a tail are strictly increasing in seq, so after
      // the first (absolute) value the gap-minus-one never underflows —
      // and non-increasing sequences are inexpressible on the wire.
      w.PutVarint64(first ? rec.seq : rec.seq - prev - 1);
      prev = rec.seq;
      first = false;
    }
  }
}

}  // namespace

void EncodeShardSegmentBodyV3(const PropagationResponseView& m,
                              const VersionVector& base,
                              const V3SegmentOptions& opts, BufferPool* pool,
                              std::string* out) {
  // Current shards never reach the encoder: the O(1) DBVV check skips
  // them before any buffer is constructed.
  assert(!m.you_are_current);
  const size_t estimate = EstimateSegmentInnerSize(m, base);
  if (opts.compress && estimate >= opts.min_compress_bytes) {
    PooledBuffer inner(pool, estimate);
    {
      ByteWriter iw(std::move(*inner));
      iw.Reserve(estimate);
      EncodeSegmentInnerV3(iw, m, base);
      *inner = iw.Release();
    }
    PooledBuffer packed(pool, inner->size() / 2 + 16);
    CompressTo(*inner, &*packed);
    ByteWriter w(std::move(*out));
    if (packed->size() + 6 < inner->size()) {
      w.Reserve(packed->size() + 8);
      w.PutU8(kSegFlagCompressed);
      w.PutVarint64(inner->size());
      w.PutBytes(packed->data(), packed->size());
    } else {
      w.Reserve(inner->size() + 1);
      w.PutU8(0);
      w.PutBytes(inner->data(), inner->size());
    }
    *out = w.Release();
  } else {
    ByteWriter w(std::move(*out));
    w.Reserve(estimate + 1);
    w.PutU8(0);
    EncodeSegmentInnerV3(w, m, base);
    *out = w.Release();
  }
}

void EncodeShardSegmentBodyV3Into(ByteWriter& w,
                                  const PropagationResponseView& m,
                                  const VersionVector& base) {
  assert(!m.you_are_current);
  w.Reserve(w.size() + EstimateSegmentInnerSize(m, base) + 1);
  w.PutU8(0);
  EncodeSegmentInnerV3(w, m, base);
}

namespace {

/// Shared tail/item body of both view decoders, reading from `r` whose
/// backing bytes the produced views borrow. `dense_ivvs` selects the v2
/// (dense) or v3 (delta vs `base`) IVV layout; `base` is unused for v2.
/// `indexed_tails` selects v3 (item-index) vs v2 (item-name) tails.
Status DecodeViewItemsAndTails(ByteReader& r, bool dense_ivvs,
                               bool indexed_tails, const VersionVector& base,
                               SegmentViewStorage* storage,
                               PropagationResponseView* out) {
  auto num_items = r.GetVarint64();
  if (!num_items.ok()) return num_items.status();
  // Every item costs at least four bytes (two length prefixes, deleted
  // byte, IVV header), so a count beyond the remaining bytes is corrupt —
  // checked before reserving anything.
  if (*num_items > r.remaining()) {
    return Status::Corruption("item count exceeds segment size");
  }
  storage->ivvs.clear();
  storage->ivvs.reserve(static_cast<size_t>(*num_items));
  out->items.clear();
  out->items.reserve(static_cast<size_t>(*num_items));
  for (uint64_t i = 0; i < *num_items; ++i) {
    WireItemView item;
    auto name = r.GetStringView();
    if (!name.ok()) return name.status();
    item.name = *name;
    auto value = r.GetStringView();
    if (!value.ok()) return value.status();
    item.value = *value;
    auto deleted = r.GetU8();
    if (!deleted.ok()) return deleted.status();
    item.deleted = (*deleted != 0);
    auto vv = dense_ivvs ? DecodeVersionVector(&r)
                         : DecodeVersionVectorDelta(&r, base);
    if (!vv.ok()) return vv.status();
    // reserve() above makes these pushes stable, so the pointer into the
    // arena survives the loop.
    storage->ivvs.push_back(std::move(*vv));
    item.ivv = &storage->ivvs.back();
    out->items.push_back(item);
  }

  auto num_tails = r.GetVarint64();
  if (!num_tails.ok()) return num_tails.status();
  if (*num_tails > (1u << 20)) return Status::Corruption("absurd tail count");
  if (out->tails.size() > *num_tails) out->tails.resize(*num_tails);
  for (auto& tail : out->tails) tail.clear();
  if (out->tails.size() < *num_tails) out->tails.resize(*num_tails);
  for (auto& tail : out->tails) {
    auto count = r.GetVarint64();
    if (!count.ok()) return count.status();
    if (*count > r.remaining()) {
      return Status::Corruption("tail record count exceeds segment size");
    }
    tail.reserve(static_cast<size_t>(*count));
    UpdateCount prev = 0;
    for (uint64_t i = 0; i < *count; ++i) {
      WireLogRecordView rec;
      if (indexed_tails) {
        auto idx = r.GetVarint64();
        if (!idx.ok()) return idx.status();
        if (*idx >= out->items.size()) {
          return Status::Corruption("tail item index out of range");
        }
        rec.item_index = static_cast<uint32_t>(*idx);
        rec.item_name = out->items[rec.item_index].name;
        auto seq = r.GetVarint64();
        if (!seq.ok()) return seq.status();
        rec.seq = (i == 0) ? *seq : prev + 1 + *seq;
        if (rec.seq < prev) {
          return Status::Corruption("tail seq overflow");
        }
      } else {
        auto name = r.GetStringView();
        if (!name.ok()) return name.status();
        rec.item_name = *name;
        auto seq = r.GetVarint64();
        if (!seq.ok()) return seq.status();
        rec.seq = *seq;
      }
      prev = rec.seq;
      tail.push_back(rec);
    }
  }
  return Status::OK();
}

}  // namespace

Status DecodeShardSegmentBodyV3(std::string_view body,
                                SegmentViewStorage* storage,
                                PropagationResponseView* out) {
  ByteReader fr(body);
  auto flags = fr.GetU8();
  if (!flags.ok()) return flags.status();
  if ((*flags & ~kSegFlagCompressed) != 0) {
    return Status::Corruption("unknown v3 segment flags");
  }
  std::string_view inner;
  if (*flags & kSegFlagCompressed) {
    auto raw_len = fr.GetVarint64();
    if (!raw_len.ok()) return raw_len.status();
    if (*raw_len > kMaxSegmentBytes) {
      return Status::Corruption("absurd decompressed segment size");
    }
    Status s = DecompressTo(body.substr(fr.position()), &storage->backing,
                            static_cast<size_t>(*raw_len));
    if (!s.ok()) return s;
    if (storage->backing.size() != *raw_len) {
      return Status::Corruption("segment raw length mismatch");
    }
    inner = storage->backing;
  } else {
    inner = body.substr(fr.position());
  }

  ByteReader r(inner);
  out->you_are_current = false;
  auto base = DecodeVersionVector(&r);
  if (!base.ok()) return base.status();
  Status s = DecodeViewItemsAndTails(r, /*dense_ivvs=*/false,
                                     /*indexed_tails=*/true, *base, storage,
                                     out);
  if (!s.ok()) return s;
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after v3 segment body");
  }
  return Status::OK();
}

Status DecodePropagationResponseBodyView(std::string_view body,
                                         SegmentViewStorage* storage,
                                         PropagationResponseView* out) {
  ByteReader r(body);
  auto current = r.GetU8();
  if (!current.ok()) return current.status();
  out->you_are_current = (*current != 0);
  if (out->you_are_current) {
    out->Reset(0);
    out->you_are_current = true;
    if (!r.AtEnd()) {
      return Status::Corruption("trailing bytes after you-are-current");
    }
    return Status::OK();
  }

  // v2 bodies put tails before items; decode tails into a temporary
  // layout is not needed — re-read in order.
  auto num_tails = r.GetVarint64();
  if (!num_tails.ok()) return num_tails.status();
  if (*num_tails > (1u << 20)) return Status::Corruption("absurd tail count");
  if (out->tails.size() > *num_tails) out->tails.resize(*num_tails);
  for (auto& tail : out->tails) tail.clear();
  if (out->tails.size() < *num_tails) out->tails.resize(*num_tails);
  for (auto& tail : out->tails) {
    auto count = r.GetVarint64();
    if (!count.ok()) return count.status();
    if (*count > r.remaining()) {
      return Status::Corruption("tail record count exceeds body size");
    }
    tail.reserve(static_cast<size_t>(*count));
    for (uint64_t i = 0; i < *count; ++i) {
      WireLogRecordView rec;
      auto name = r.GetStringView();
      if (!name.ok()) return name.status();
      rec.item_name = *name;
      auto seq = r.GetVarint64();
      if (!seq.ok()) return seq.status();
      rec.seq = *seq;
      tail.push_back(rec);
    }
  }

  auto num_items = r.GetVarint64();
  if (!num_items.ok()) return num_items.status();
  if (*num_items > r.remaining()) {
    return Status::Corruption("item count exceeds body size");
  }
  storage->ivvs.clear();
  storage->ivvs.reserve(static_cast<size_t>(*num_items));
  out->items.clear();
  out->items.reserve(static_cast<size_t>(*num_items));
  for (uint64_t i = 0; i < *num_items; ++i) {
    WireItemView item;
    auto name = r.GetStringView();
    if (!name.ok()) return name.status();
    item.name = *name;
    auto value = r.GetStringView();
    if (!value.ok()) return value.status();
    item.value = *value;
    auto deleted = r.GetU8();
    if (!deleted.ok()) return deleted.status();
    item.deleted = (*deleted != 0);
    auto vv = DecodeVersionVector(&r);
    if (!vv.ok()) return vv.status();
    storage->ivvs.push_back(std::move(*vv));
    item.ivv = &storage->ivvs.back();
    out->items.push_back(item);
  }
  return Status::OK();
}

void MakeResponseView(const PropagationResponse& m,
                      PropagationResponseView* out,
                      bool fill_tail_indices) {
  out->you_are_current = m.you_are_current;
  out->items.clear();
  out->items.reserve(m.items.size());
  for (const WireItem& item : m.items) {
    out->items.push_back(
        WireItemView{item.name, item.value, item.deleted, &item.ivv});
  }
  std::unordered_map<std::string_view, uint32_t> index;
  if (fill_tail_indices) {
    index.reserve(m.items.size());
    for (size_t i = 0; i < m.items.size(); ++i) {
      index.emplace(m.items[i].name, static_cast<uint32_t>(i));
    }
  }
  if (out->tails.size() > m.tails.size()) out->tails.resize(m.tails.size());
  for (auto& tail : out->tails) tail.clear();
  if (out->tails.size() < m.tails.size()) out->tails.resize(m.tails.size());
  for (size_t k = 0; k < m.tails.size(); ++k) {
    auto& tail = out->tails[k];
    tail.reserve(m.tails[k].size());
    for (const WireLogRecord& rec : m.tails[k]) {
      WireLogRecordView rv;
      rv.item_name = rec.item_name;
      rv.seq = rec.seq;
      if (fill_tail_indices) {
        auto it = index.find(rec.item_name);
        if (it != index.end()) rv.item_index = it->second;
      }
      tail.push_back(rv);
    }
  }
}

PropagationResponse MaterializeResponse(const PropagationResponseView& m) {
  PropagationResponse out;
  out.you_are_current = m.you_are_current;
  out.tails.resize(m.tails.size());
  for (size_t k = 0; k < m.tails.size(); ++k) {
    out.tails[k].reserve(m.tails[k].size());
    for (const WireLogRecordView& rec : m.tails[k]) {
      out.tails[k].push_back(
          WireLogRecord{std::string(rec.item_name), rec.seq});
    }
  }
  out.items.reserve(m.items.size());
  for (const WireItemView& item : m.items) {
    out.items.push_back(WireItem{std::string(item.name),
                                 std::string(item.value), item.deleted,
                                 *item.ivv});
  }
  return out;
}

Result<OobRequest> DecodeOobRequestBody(ByteReader& r) {
  OobRequest m;
  auto requester = r.GetVarint64();
  if (!requester.ok()) return requester.status();
  m.requester = static_cast<NodeId>(*requester);
  auto name = r.GetString();
  if (!name.ok()) return name.status();
  m.item_name = std::move(*name);
  return m;
}

Result<OobResponse> DecodeOobResponseBody(ByteReader& r) {
  OobResponse m;
  auto found = r.GetU8();
  if (!found.ok()) return found.status();
  m.found = (*found != 0);
  auto name = r.GetString();
  if (!name.ok()) return name.status();
  m.item_name = std::move(*name);
  if (!m.found) return m;
  auto value = r.GetString();
  if (!value.ok()) return value.status();
  m.value = std::move(*value);
  auto deleted = r.GetU8();
  if (!deleted.ok()) return deleted.status();
  m.deleted = (*deleted != 0);
  auto vv = DecodeVersionVector(&r);
  if (!vv.ok()) return vv.status();
  m.ivv = std::move(*vv);
  return m;
}

}  // namespace epidemic::wire
