#include "core/wire.h"

#include <utility>

#include "vv/vv_codec.h"

namespace epidemic::wire {

void EncodePropagationRequestBody(ByteWriter& w,
                                  const PropagationRequest& m) {
  w.PutVarint64(m.requester);
  EncodeVersionVector(&w, m.dbvv);
}

void EncodePropagationResponseBody(ByteWriter& w,
                                   const PropagationResponse& m) {
  w.PutU8(m.you_are_current ? 1 : 0);
  if (m.you_are_current) return;
  w.PutVarint64(m.tails.size());
  for (const auto& tail : m.tails) {
    w.PutVarint64(tail.size());
    for (const WireLogRecord& rec : tail) {
      w.PutString(rec.item_name);
      w.PutVarint64(rec.seq);
    }
  }
  w.PutVarint64(m.items.size());
  for (const WireItem& item : m.items) {
    w.PutString(item.name);
    w.PutString(item.value);
    w.PutU8(item.deleted ? 1 : 0);
    EncodeVersionVector(&w, item.ivv);
  }
}

void EncodeOobRequestBody(ByteWriter& w, const OobRequest& m) {
  w.PutVarint64(m.requester);
  w.PutString(m.item_name);
}

void EncodeOobResponseBody(ByteWriter& w, const OobResponse& m) {
  w.PutU8(m.found ? 1 : 0);
  w.PutString(m.item_name);
  if (!m.found) return;
  w.PutString(m.value);
  w.PutU8(m.deleted ? 1 : 0);
  EncodeVersionVector(&w, m.ivv);
}

Result<PropagationRequest> DecodePropagationRequestBody(ByteReader& r) {
  PropagationRequest m;
  auto requester = r.GetVarint64();
  if (!requester.ok()) return requester.status();
  m.requester = static_cast<NodeId>(*requester);
  auto vv = DecodeVersionVector(&r);
  if (!vv.ok()) return vv.status();
  m.dbvv = std::move(*vv);
  return m;
}

Result<PropagationResponse> DecodePropagationResponseBody(ByteReader& r) {
  PropagationResponse m;
  auto current = r.GetU8();
  if (!current.ok()) return current.status();
  m.you_are_current = (*current != 0);
  if (m.you_are_current) return m;

  auto num_tails = r.GetVarint64();
  if (!num_tails.ok()) return num_tails.status();
  if (*num_tails > (1u << 20)) return Status::Corruption("absurd tail count");
  m.tails.resize(static_cast<size_t>(*num_tails));
  for (auto& tail : m.tails) {
    auto count = r.GetVarint64();
    if (!count.ok()) return count.status();
    tail.reserve(static_cast<size_t>(*count));
    for (uint64_t i = 0; i < *count; ++i) {
      WireLogRecord rec;
      auto name = r.GetString();
      if (!name.ok()) return name.status();
      rec.item_name = std::move(*name);
      auto seq = r.GetVarint64();
      if (!seq.ok()) return seq.status();
      rec.seq = *seq;
      tail.push_back(std::move(rec));
    }
  }

  auto num_items = r.GetVarint64();
  if (!num_items.ok()) return num_items.status();
  m.items.reserve(static_cast<size_t>(*num_items));
  for (uint64_t i = 0; i < *num_items; ++i) {
    WireItem item;
    auto name = r.GetString();
    if (!name.ok()) return name.status();
    item.name = std::move(*name);
    auto value = r.GetString();
    if (!value.ok()) return value.status();
    item.value = std::move(*value);
    auto deleted = r.GetU8();
    if (!deleted.ok()) return deleted.status();
    item.deleted = (*deleted != 0);
    auto vv = DecodeVersionVector(&r);
    if (!vv.ok()) return vv.status();
    item.ivv = std::move(*vv);
    m.items.push_back(std::move(item));
  }
  return m;
}

void EncodeShardedPropagationRequestBody(ByteWriter& w,
                                         const ShardedPropagationRequest& m) {
  w.PutVarint64(m.requester);
  w.PutVarint64(m.shard_dbvvs.size());
  for (const VersionVector& vv : m.shard_dbvvs) {
    EncodeVersionVector(&w, vv);
  }
}

void EncodeShardedPropagationResponseBody(
    ByteWriter& w, const ShardedPropagationResponse& m) {
  w.PutVarint64(m.num_shards);
  w.PutVarint64(m.segments.size());
  for (const ShardedPropagationSegment& seg : m.segments) {
    w.PutVarint64(seg.shard);
    w.PutString(seg.body);
  }
}

Result<ShardedPropagationRequest> DecodeShardedPropagationRequestBody(
    ByteReader& r) {
  ShardedPropagationRequest m;
  auto requester = r.GetVarint64();
  if (!requester.ok()) return requester.status();
  m.requester = static_cast<NodeId>(*requester);
  auto count = r.GetVarint64();
  if (!count.ok()) return count.status();
  if (*count > (1u << 16)) return Status::Corruption("absurd shard count");
  m.shard_dbvvs.reserve(static_cast<size_t>(*count));
  for (uint64_t i = 0; i < *count; ++i) {
    auto vv = DecodeVersionVector(&r);
    if (!vv.ok()) return vv.status();
    m.shard_dbvvs.push_back(std::move(*vv));
  }
  return m;
}

Result<ShardedPropagationResponse> DecodeShardedPropagationResponseBody(
    ByteReader& r) {
  ShardedPropagationResponse m;
  auto num_shards = r.GetVarint64();
  if (!num_shards.ok()) return num_shards.status();
  if (*num_shards > (1u << 16)) return Status::Corruption("absurd shard count");
  m.num_shards = static_cast<uint32_t>(*num_shards);
  auto count = r.GetVarint64();
  if (!count.ok()) return count.status();
  if (*count > *num_shards) {
    return Status::Corruption("more segments than shards");
  }
  m.segments.reserve(static_cast<size_t>(*count));
  uint64_t prev_shard = 0;
  for (uint64_t i = 0; i < *count; ++i) {
    ShardedPropagationSegment seg;
    auto shard = r.GetVarint64();
    if (!shard.ok()) return shard.status();
    // Strictly increasing shard indices < num_shards: rejects duplicates
    // and out-of-range segments before any shard state is touched.
    if (*shard >= *num_shards || (i > 0 && *shard <= prev_shard)) {
      return Status::Corruption("segment shard indices not strictly "
                                "increasing within the shard count");
    }
    prev_shard = *shard;
    seg.shard = static_cast<uint32_t>(*shard);
    auto body = r.GetString();
    if (!body.ok()) return body.status();
    seg.body = std::move(*body);
    m.segments.push_back(std::move(seg));
  }
  return m;
}

std::string EncodeShardSegmentBody(const PropagationResponse& m) {
  ByteWriter w;
  EncodePropagationResponseBody(w, m);
  return w.Release();
}

Result<PropagationResponse> DecodeShardSegmentBody(std::string_view body) {
  ByteReader r(body);
  auto resp = DecodePropagationResponseBody(r);
  if (!resp.ok()) return resp.status();
  if (!r.AtEnd()) {
    return Status::Corruption("trailing bytes after shard segment body");
  }
  return resp;
}

Result<OobRequest> DecodeOobRequestBody(ByteReader& r) {
  OobRequest m;
  auto requester = r.GetVarint64();
  if (!requester.ok()) return requester.status();
  m.requester = static_cast<NodeId>(*requester);
  auto name = r.GetString();
  if (!name.ok()) return name.status();
  m.item_name = std::move(*name);
  return m;
}

Result<OobResponse> DecodeOobResponseBody(ByteReader& r) {
  OobResponse m;
  auto found = r.GetU8();
  if (!found.ok()) return found.status();
  m.found = (*found != 0);
  auto name = r.GetString();
  if (!name.ok()) return name.status();
  m.item_name = std::move(*name);
  if (!m.found) return m;
  auto value = r.GetString();
  if (!value.ok()) return value.status();
  m.value = std::move(*value);
  auto deleted = r.GetU8();
  if (!deleted.ok()) return deleted.status();
  m.deleted = (*deleted != 0);
  auto vv = DecodeVersionVector(&r);
  if (!vv.ok()) return vv.status();
  m.ivv = std::move(*vv);
  return m;
}

}  // namespace epidemic::wire
