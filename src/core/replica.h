#ifndef EPIDEMIC_CORE_REPLICA_H_
#define EPIDEMIC_CORE_REPLICA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/conflict.h"
#include "core/messages.h"
#include "log/aux_log.h"
#include "log/log_vector.h"
#include "storage/item_store.h"
#include "vv/version_vector.h"

namespace epidemic {

/// Per-replica protocol counters, primarily for the benchmark harness.
/// "Work" counters (records examined, IVV comparisons) directly measure the
/// complexity claims of §6.
struct ReplicaStats {
  // Anti-entropy.
  uint64_t propagation_requests_served = 0;
  uint64_t you_are_current_replies = 0;
  uint64_t dbvv_comparisons = 0;
  uint64_t log_records_selected = 0;  // records placed into tails D_k
  uint64_t items_shipped = 0;         // |S| across all replies served
  uint64_t item_ivv_comparisons = 0;  // per-item comparisons at recipient
  uint64_t items_adopted = 0;
  uint64_t redundant_items_received = 0;  // received copy equal to local
  uint64_t records_appended = 0;          // AddLogRecord calls at recipient

  // Conflicts.
  uint64_t conflicts_detected = 0;
  uint64_t conflicts_resolved = 0;  // via ResolveConflict

  // User operations.
  uint64_t updates_regular = 0;
  uint64_t updates_aux = 0;
  uint64_t reads = 0;

  // Out-of-bound machinery.
  uint64_t oob_requests_served = 0;
  uint64_t oob_copies_adopted = 0;
  uint64_t oob_copies_ignored = 0;  // received copy was not newer
  uint64_t aux_copies_created = 0;
  uint64_t aux_copies_discarded = 0;
  uint64_t intra_node_ops_applied = 0;

  // Wire hot path (v3, DESIGN.md §10): per-exchange allocation
  // accounting. A "staging alloc" is one owned std::string materialized
  // between the protocol endpoints and the store — the serve counter
  // charges the owned SendPropagation pipeline (name + value per shipped
  // item, name per tail record), the accept counter its mirror image on
  // the receive side. The zero-copy view pipeline leaves both at zero:
  // names and values travel as views and are copied exactly once, into
  // the store. The benches report these as allocs/exchange.
  uint64_t serve_staging_allocs = 0;
  uint64_t accept_staging_allocs = 0;

  // Shard-scheduler health (runtime/scheduler.h). Filled by the server
  // layer when aggregating (a single Replica has no scheduler): total
  // tasks executed across owners/inline callers, and the peak MPSC
  // channel depth observed — the back-pressure signal.
  uint64_t sched_tasks_executed = 0;
  uint64_t sched_queue_depth_peak = 0;

  // Network pipeline (server layer; a bare Replica has no transport).
  // The net_* fields mirror net::TransportStats for this node's client
  // side — persistent-connection accounting (opened vs reused is the
  // connection-churn signal). The serve_cache_* pair counts the fan-out
  // serve cache: a hit replayed an already-encoded propagation frame to
  // another peer asking for the same tail at the same mutation epoch.
  uint64_t net_calls = 0;
  uint64_t net_connections_opened = 0;
  uint64_t net_connections_reused = 0;
  uint64_t net_reconnects = 0;
  uint64_t net_backoff_skips = 0;
  uint64_t net_bytes_sent = 0;
  uint64_t net_bytes_received = 0;
  uint64_t serve_cache_hits = 0;
  uint64_t serve_cache_misses = 0;

  /// Component-wise sum, used to aggregate counters across shards.
  void Accumulate(const ReplicaStats& o) {
    propagation_requests_served += o.propagation_requests_served;
    you_are_current_replies += o.you_are_current_replies;
    dbvv_comparisons += o.dbvv_comparisons;
    log_records_selected += o.log_records_selected;
    items_shipped += o.items_shipped;
    item_ivv_comparisons += o.item_ivv_comparisons;
    items_adopted += o.items_adopted;
    redundant_items_received += o.redundant_items_received;
    records_appended += o.records_appended;
    conflicts_detected += o.conflicts_detected;
    conflicts_resolved += o.conflicts_resolved;
    updates_regular += o.updates_regular;
    updates_aux += o.updates_aux;
    reads += o.reads;
    oob_requests_served += o.oob_requests_served;
    oob_copies_adopted += o.oob_copies_adopted;
    oob_copies_ignored += o.oob_copies_ignored;
    aux_copies_created += o.aux_copies_created;
    aux_copies_discarded += o.aux_copies_discarded;
    intra_node_ops_applied += o.intra_node_ops_applied;
    serve_staging_allocs += o.serve_staging_allocs;
    accept_staging_allocs += o.accept_staging_allocs;
    sched_tasks_executed += o.sched_tasks_executed;
    sched_queue_depth_peak =
        sched_queue_depth_peak > o.sched_queue_depth_peak
            ? sched_queue_depth_peak
            : o.sched_queue_depth_peak;
    net_calls += o.net_calls;
    net_connections_opened += o.net_connections_opened;
    net_connections_reused += o.net_connections_reused;
    net_reconnects += o.net_reconnects;
    net_backoff_skips += o.net_backoff_skips;
    net_bytes_sent += o.net_bytes_sent;
    net_bytes_received += o.net_bytes_received;
    serve_cache_hits += o.serve_cache_hits;
    serve_cache_misses += o.serve_cache_misses;
  }
};

/// A node's replica of the database, implementing the paper's protocol (§5).
///
/// The replica owns the four regular data structures —
///   * the item store (values + IVVs + control state),
///   * the database version vector V_i (§4.1),
///   * the log vector L_i (§4.2),
/// plus the auxiliary structures (auxiliary copies/IVVs inside items and the
/// auxiliary log AUX_i, §4.3–4.4).
///
/// Anti-entropy between replicas i (recipient) and j (source) is a
/// request/response exchange:
///
///   PropagationRequest req = i.BuildPropagationRequest();
///   PropagationResponse resp = j.HandlePropagationRequest(req);
///   i.AcceptPropagation(resp);              // adopts + intra-node replay
///
/// or, in-process, `PropagateOnce(j, i)`.
///
/// Thread-compatibility: a Replica is confined to one writer at a time;
/// all methods are non-blocking and never throw. The class deliberately
/// owns no mutex — serialization comes from the owner that drives it: the
/// shard-owned task runtime (runtime/scheduler.h) for shard replicas,
/// `multidb::MultiDbServer::mu_` for per-database ones, or plain
/// single-threaded confinement in tests and reference drivers. Every
/// mutating method carries REQUIRES_SHARD_CONTEXT, so under Clang
/// `-Wthread-safety` a library call chain can only reach one from inside a
/// scheduled task (or an audited single-owner escape) — DESIGN.md §12.
class Replica {
 public:
  /// `id` is this node's index in the fixed replica set of `num_nodes`
  /// servers (§2: the server set is fixed). `listener` may be null; if given
  /// it must outlive the replica.
  Replica(NodeId id, size_t num_nodes, ConflictListener* listener = nullptr);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  // ---------------------------------------------------------------------
  // User operations (§5.3).

  /// Applies a user update, writing `value` as the item's new contents.
  /// Uses the auxiliary copy when one exists, the regular copy otherwise.
  Status Update(std::string_view name, std::string_view value)
      REQUIRES_SHARD_CONTEXT;

  /// Deletes the item by writing a tombstone — an ordinary update whose
  /// state is "deleted", so it propagates (and conflicts) exactly like a
  /// value write. The control state persists; a later Update revives the
  /// item.
  Status Delete(std::string_view name) REQUIRES_SHARD_CONTEXT;

  /// User-facing read: auxiliary copy when present (it is never older than
  /// the regular copy), regular otherwise. NotFound for unknown or
  /// tombstoned items. Mutating in the capability sense: it bumps the read
  /// counter, so it still requires the shard context (the optimistic
  /// seqlock read path in the server bypasses this method entirely).
  Result<std::string> Read(std::string_view name) REQUIRES_SHARD_CONTEXT;

  /// Resolves a detected conflict on `name` by writing `value` as a new
  /// update that *supersedes both branches*: the item's IVV becomes the
  /// component-wise maximum of the local IVV and `remote_vv` (the vector
  /// reported in the ConflictEvent), plus this node's own increment. Once
  /// propagated, the resolution dominates every conflicting copy, so the
  /// conflict disappears system-wide.
  ///
  /// The paper leaves *choosing* the winning value to the application (§2);
  /// this is the mechanism that makes the choice stick. Fails with
  /// InvalidArgument unless `remote_vv` genuinely conflicts with the local
  /// regular copy, and with FailedPrecondition while the item is
  /// out-of-bound (resolve after the auxiliary copy retires).
  Status ResolveConflict(std::string_view name,
                         const VersionVector& remote_vv,
                         std::string_view value) REQUIRES_SHARD_CONTEXT;

  /// Lists live (non-tombstoned) items whose name starts with `prefix`,
  /// sorted by name, with their user-visible values. `limit` 0 = no limit.
  /// O(N log N) — a convenience for clients and tools, not a protocol op.
  std::vector<std::pair<std::string, std::string>> Scan(
      std::string_view prefix, size_t limit = 0) const;

  // ---------------------------------------------------------------------
  // Update propagation (§5.1).

  /// Step (1): the DBVV handshake message this node sends when it wants to
  /// pull updates from a source.
  PropagationRequest BuildPropagationRequest() const;

  /// SendPropagation (Fig. 2), executed at the source. Detects in O(1)
  /// (one DBVV comparison) that the requester is current; otherwise builds
  /// the tail vector D and item set S in time O(m) where m = items shipped,
  /// using the IsSelected flags (§6). This owned form materializes one
  /// string per name/value — the staged pipeline; the wire-v3 serve path
  /// uses HandlePropagationView instead.
  PropagationResponse HandlePropagationRequest(const PropagationRequest& req)
      REQUIRES_SHARD_CONTEXT;

  /// Zero-copy SendPropagation (Fig. 2): identical protocol decisions and
  /// bookkeeping, but the returned response *borrows* — names and values
  /// are views into this replica's store, IVVs are pointers at live item
  /// IVVs, and the vectors live in a scratch area reused across
  /// exchanges (so steady-state serving allocates nothing, and a
  /// you-are-current reply constructs nothing at all). The view is valid
  /// until this replica is next mutated or serves another request; the
  /// caller must finish encoding/applying it before releasing the lock
  /// that serializes this replica (DESIGN.md §10). Tail records carry
  /// `item_index` into S, ready for the v3 segment encoder.
  const PropagationResponseView& HandlePropagationView(
      const PropagationRequest& req) REQUIRES_SHARD_CONTEXT;

  /// AcceptPropagation (Fig. 3) followed by IntraNodePropagation (Fig. 4)
  /// over the items copied, executed at the recipient. The owned form
  /// wraps the view form below.
  Status AcceptPropagation(const PropagationResponse& resp)
      REQUIRES_SHARD_CONTEXT;

  /// Zero-copy AcceptPropagation: applies a borrowed response (views into
  /// a decode buffer or a peer replica's store). Each adopted name/value
  /// is copied exactly once, into this store; nothing else is
  /// materialized. The backing storage only needs to stay alive for the
  /// duration of the call.
  Status AcceptPropagation(const PropagationResponseView& resp)
      REQUIRES_SHARD_CONTEXT;

  /// Runs the Fig. 4 intra-node propagation loop over every out-of-bound
  /// item, not just ones copied by the last exchange: replays auxiliary
  /// redo records whose pre-IVV matches the regular copy and retires
  /// auxiliary copies the regular copy has caught up with. Each replay is
  /// an ordinary local update with full §4.1 bookkeeping, so this is legal
  /// at any point between protocol steps; AcceptPropagation already runs
  /// the same loop for the items it copies. Returns the number of
  /// auxiliary operations replayed. Used by the model checker (epicheck)
  /// as an explicit schedule action and by callers that want auxiliary
  /// copies retired without waiting for the next exchange.
  size_t PumpIntraNode() REQUIRES_SHARD_CONTEXT;

  // ---------------------------------------------------------------------
  // Out-of-bound copying (§5.2).

  OobRequest BuildOobRequest(std::string_view name) const;

  /// Source side: replies with the auxiliary copy if it exists (never older
  /// than the regular one), else the regular copy.
  OobResponse HandleOobRequest(const OobRequest& req) REQUIRES_SHARD_CONTEXT;

  /// Recipient side: adopts the received copy as (new) auxiliary data if it
  /// strictly dominates the local user-visible copy; ignores it otherwise;
  /// reports a conflict when the IVVs are concurrent. Never touches the
  /// DBVV, the log vector, or existing auxiliary-log records.
  Status AcceptOobResponse(const OobResponse& resp) REQUIRES_SHARD_CONTEXT;

  // ---------------------------------------------------------------------
  // Introspection.

  NodeId id() const { return id_; }
  size_t num_nodes() const { return num_nodes_; }
  const VersionVector& dbvv() const { return dbvv_; }
  const ItemStore& items() const { return store_; }
  const LogVector& log_vector() const { return logs_; }
  const AuxLog& aux_log() const { return aux_log_; }
  const ReplicaStats& stats() const { return stats_; }
  void ResetStats() REQUIRES_SHARD_CONTEXT { stats_ = ReplicaStats{}; }

  /// Regular copy of an item (ignores auxiliary data); nullptr if absent.
  const Item* FindItem(std::string_view name) const {
    return store_.Find(name);
  }

  /// Human-readable one-stop summary: id, DBVV, item/log/aux counts, and
  /// the protocol counters. For operators and the stats RPC.
  std::string DebugString() const;

  // ---------------------------------------------------------------------
  // Stability tracking (extension).
  //
  // Every propagation request a peer sends us carries its DBVV, so this
  // node passively learns how far each peer has come. The component-wise
  // minimum over all peers' last-known DBVVs (and our own) is the
  // *stability frontier*: updates below it are known to be replicated
  // everywhere — safe to archive, compact, or physically purge offline.
  // Knowledge spreads only through direct requests, so the frontier is
  // conservative (it lags under schedules where some pair never talks).

  /// Last DBVV peer `j` presented to us (zero vector if never heard from).
  const VersionVector& LastKnownDbvvOf(NodeId j) const {
    return peer_dbvv_[j];
  }

  /// Component-wise minimum of every node's known DBVV.
  VersionVector StabilityFrontier() const;

  /// True when every update reflected in the item's regular copy is below
  /// the stability frontier.
  bool IsStable(const Item& item) const;

  /// Counts stable items and stable tombstones (purgable garbage).
  struct StabilityInfo {
    size_t stable_items = 0;
    size_t stable_tombstones = 0;
  };
  StabilityInfo CountStable() const;

  /// Checks the DBVV invariant `V_i[k] == Σ_x ivv_i(x)[k]` (§4.1), the
  /// log invariants (≤ 1 record per item per component, origin-ordered,
  /// P(x) back-pointers consistent), and the §5.2 auxiliary-structure
  /// invariants (the auxiliary IVV is never dominated by the regular one,
  /// redo records replay in origin order below the auxiliary IVV, the
  /// auxiliary log preserves append order). Returns OK or Internal with a
  /// description. The invariant oracle of the model checker (epicheck) and
  /// of tests; O(n·N).
  Status CheckInvariants() const;

  /// Deterministic, creation-order-independent serialization of the
  /// protocol state: DBVV, items sorted by name (value, tombstone, IVV,
  /// auxiliary copy), per-origin logs as (item name, seq) lists, and the
  /// auxiliary log in append order. Two replicas have equal canonical
  /// states iff they are indistinguishable to the protocol. Soft state —
  /// counters and the stability-tracking peer DBVVs, which influence no
  /// protocol decision — is deliberately excluded. Used by the model
  /// checker for state deduplication and convergence comparison.
  std::string CanonicalState() const;

 private:
  /// Shared implementation of Update/Delete (§5.3).
  Status ApplyUserWrite(std::string_view name, std::string_view value,
                        bool deleted) REQUIRES_SHARD_CONTEXT;

  /// Read-only structural validation of a propagation response, run before
  /// any state is touched so malformed input is rejected atomically.
  Status ValidatePropagationResponse(const PropagationResponseView& resp) const;

  /// Runs the Fig. 4 loop for one item that was copied by AcceptPropagation.
  void IntraNodePropagation(Item& item) REQUIRES_SHARD_CONTEXT;

  void ReportConflict(const Item& item, const VersionVector& remote,
                      ConflictSource source);

  friend class SnapshotCodec;  // snapshot.cc: serializes/restores privates

  NodeId id_;
  size_t num_nodes_;
  ConflictListener* listener_;

  ItemStore store_;
  VersionVector dbvv_;
  LogVector logs_;
  AuxLog aux_log_;

  /// peer_dbvv_[j]: the DBVV node j presented in its most recent
  /// propagation request to us (stability tracking).
  std::vector<VersionVector> peer_dbvv_;

  /// Serve-side scratch reused across exchanges (DESIGN.md §10): the tail
  /// collection buffer, the selected-item list, the ItemId → S-index map
  /// (entries valid only while the item's IsSelected flag is up), and the
  /// response view handed out by HandlePropagationView. Capacities are
  /// retained, so steady-state serving does not touch the allocator.
  struct PropagationScratch {
    std::vector<LogRecord> tail_buf;
    std::vector<Item*> selected;
    std::vector<uint32_t> item_index;
    PropagationResponseView serve_view;
    PropagationResponseView accept_view;  // owned→view staging for accepts
  };
  PropagationScratch scratch_;

  ReplicaStats stats_;
};

/// Runs one full anti-entropy exchange pulling updates from `source` into
/// `recipient` (both in-process). Returns the number of items copied, or an
/// error status. Uses the staged (owned-string) pipeline — the historical
/// baseline the benches compare against.
Result<size_t> PropagateOnce(Replica& source, Replica& recipient)
    REQUIRES_SHARD_CONTEXT;

/// Same exchange over the zero-copy pipeline: the source's response view
/// (borrowing its store) is applied directly by the recipient, with no
/// intermediate owned strings. `source` and `recipient` must be distinct
/// replicas confined to the calling thread for the duration.
Result<size_t> PropagateOnceFast(Replica& source, Replica& recipient)
    REQUIRES_SHARD_CONTEXT;

}  // namespace epidemic

#endif  // EPIDEMIC_CORE_REPLICA_H_
