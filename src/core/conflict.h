#ifndef EPIDEMIC_CORE_CONFLICT_H_
#define EPIDEMIC_CORE_CONFLICT_H_

#include <string>
#include <vector>

#include "vv/version_vector.h"

namespace epidemic {

/// Where a conflict was noticed.
enum class ConflictSource {
  kPropagation,  // AcceptPropagation saw concurrent IVVs (Fig. 3)
  kOutOfBound,   // OOB reply conflicted with the local copy (§5.2)
  kIntraNode,    // regular IVV conflicted with an auxiliary record (Fig. 4)
};

/// Description of a detected pair of inconsistent replicas. The paper leaves
/// resolution to the application (often manual, §2), so the library only
/// reports.
struct ConflictEvent {
  std::string item_name;
  NodeId local_node = 0;
  VersionVector local_vv;
  VersionVector remote_vv;
  ConflictSource source = ConflictSource::kPropagation;
};

/// Application hook invoked whenever the protocol declares replicas of an
/// item inconsistent. Implementations must not re-enter the replica.
class ConflictListener {
 public:
  virtual ~ConflictListener() = default;
  virtual void OnConflict(const ConflictEvent& event) = 0;
};

/// Default listener: remembers every event for later inspection (tests,
/// examples, the simulator's metrics).
class RecordingConflictListener : public ConflictListener {
 public:
  void OnConflict(const ConflictEvent& event) override {
    events_.push_back(event);
  }

  const std::vector<ConflictEvent>& events() const { return events_; }
  size_t count() const { return events_.size(); }
  void Clear() { events_.clear(); }

 private:
  std::vector<ConflictEvent> events_;
};

}  // namespace epidemic

#endif  // EPIDEMIC_CORE_CONFLICT_H_
