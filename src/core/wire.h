#ifndef EPIDEMIC_CORE_WIRE_H_
#define EPIDEMIC_CORE_WIRE_H_

#include "common/bytes.h"
#include "common/result.h"
#include "core/messages.h"

namespace epidemic::wire {

/// Binary body encodings of the protocol messages (no leading type tag —
/// envelopes belong to the callers: the net codec adds a tag byte, the
/// journal adds a record tag). Shared by the wire codec and the journal so
/// there is exactly one serialization of each message.

void EncodePropagationRequestBody(ByteWriter& w, const PropagationRequest& m);
void EncodePropagationResponseBody(ByteWriter& w,
                                   const PropagationResponse& m);
void EncodeOobRequestBody(ByteWriter& w, const OobRequest& m);
void EncodeOobResponseBody(ByteWriter& w, const OobResponse& m);

Result<PropagationRequest> DecodePropagationRequestBody(ByteReader& r);
Result<PropagationResponse> DecodePropagationResponseBody(ByteReader& r);
Result<OobRequest> DecodeOobRequestBody(ByteReader& r);
Result<OobResponse> DecodeOobResponseBody(ByteReader& r);

}  // namespace epidemic::wire

#endif  // EPIDEMIC_CORE_WIRE_H_
