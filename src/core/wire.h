#ifndef EPIDEMIC_CORE_WIRE_H_
#define EPIDEMIC_CORE_WIRE_H_

#include "common/bytes.h"
#include "common/result.h"
#include "core/messages.h"

namespace epidemic::wire {

/// Binary body encodings of the protocol messages (no leading type tag —
/// envelopes belong to the callers: the net codec adds a tag byte, the
/// journal adds a record tag). Shared by the wire codec and the journal so
/// there is exactly one serialization of each message.

void EncodePropagationRequestBody(ByteWriter& w, const PropagationRequest& m);
void EncodePropagationResponseBody(ByteWriter& w,
                                   const PropagationResponse& m);
void EncodeOobRequestBody(ByteWriter& w, const OobRequest& m);
void EncodeOobResponseBody(ByteWriter& w, const OobResponse& m);
void EncodeShardedPropagationRequestBody(ByteWriter& w,
                                         const ShardedPropagationRequest& m);
void EncodeShardedPropagationResponseBody(ByteWriter& w,
                                          const ShardedPropagationResponse& m);

Result<PropagationRequest> DecodePropagationRequestBody(ByteReader& r);
Result<PropagationResponse> DecodePropagationResponseBody(ByteReader& r);
Result<OobRequest> DecodeOobRequestBody(ByteReader& r);
Result<OobResponse> DecodeOobResponseBody(ByteReader& r);
Result<ShardedPropagationRequest> DecodeShardedPropagationRequestBody(
    ByteReader& r);
Result<ShardedPropagationResponse> DecodeShardedPropagationResponseBody(
    ByteReader& r);

/// Helpers for the opaque per-shard segments of a sharded reply: a segment
/// body is exactly an encoded PropagationResponse body, produced at the
/// source and parsed at the recipient under that shard's lock only.
std::string EncodeShardSegmentBody(const PropagationResponse& m);
Result<PropagationResponse> DecodeShardSegmentBody(std::string_view body);

}  // namespace epidemic::wire

#endif  // EPIDEMIC_CORE_WIRE_H_
