#ifndef EPIDEMIC_CORE_WIRE_H_
#define EPIDEMIC_CORE_WIRE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/buffer_pool.h"
#include "common/bytes.h"
#include "common/result.h"
#include "core/messages.h"

namespace epidemic::wire {

/// Binary body encodings of the protocol messages (no leading type tag —
/// envelopes belong to the callers: the net codec adds a tag byte, the
/// journal adds a record tag). Shared by the wire codec and the journal so
/// there is exactly one serialization of each message.

void EncodePropagationRequestBody(ByteWriter& w, const PropagationRequest& m);
void EncodePropagationResponseBody(ByteWriter& w,
                                   const PropagationResponse& m);
void EncodeOobRequestBody(ByteWriter& w, const OobRequest& m);
void EncodeOobResponseBody(ByteWriter& w, const OobResponse& m);
void EncodeShardedPropagationRequestBody(ByteWriter& w,
                                         const ShardedPropagationRequest& m);
void EncodeShardedPropagationResponseBody(ByteWriter& w,
                                          const ShardedPropagationResponse& m);

Result<PropagationRequest> DecodePropagationRequestBody(ByteReader& r);
Result<PropagationResponse> DecodePropagationResponseBody(ByteReader& r);
Result<OobRequest> DecodeOobRequestBody(ByteReader& r);
Result<OobResponse> DecodeOobResponseBody(ByteReader& r);
Result<ShardedPropagationRequest> DecodeShardedPropagationRequestBody(
    ByteReader& r);
Result<ShardedPropagationResponse> DecodeShardedPropagationResponseBody(
    ByteReader& r);

/// Helpers for the opaque per-shard segments of a sharded reply: a segment
/// body is exactly an encoded PropagationResponse body, produced at the
/// source and parsed at the recipient under that shard's lock only.
std::string EncodeShardSegmentBody(const PropagationResponse& m);
Result<PropagationResponse> DecodeShardSegmentBody(std::string_view body);

// ---------------------------------------------------------------------------
// Wire format v3 (DESIGN.md §10)
// ---------------------------------------------------------------------------

/// v3 segment-body flag bits (first byte of every v3 segment body).
inline constexpr uint8_t kSegFlagCompressed = 0x01;

/// Upper bound on a decompressed v3 segment, enforced before allocating.
inline constexpr size_t kMaxSegmentBytes = size_t{1} << 30;

/// Encoder knobs for one v3 segment. `compress` is only set when the
/// requester advertised kPropFlagAcceptCompressed; bodies smaller than
/// `min_compress_bytes` skip the attempt (the LZ77 pass costs more than
/// it saves on tiny segments).
struct V3SegmentOptions {
  bool compress = false;
  size_t min_compress_bytes = 512;
};

/// Owns everything a decoded PropagationResponseView borrows that is not
/// the caller's receive buffer: the decompressed backing bytes (when the
/// segment was compressed) and the decoded per-item IVVs. Must stay alive
/// until AcceptPropagation has consumed the view. Reusable across
/// segments — decode clears and refills it, keeping capacity.
struct SegmentViewStorage {
  std::string backing;
  std::vector<VersionVector> ivvs;
};

/// v3 sharded handshake body: v2 layout plus a negotiation flags byte and
/// the requester's cached source epoch (kPropFlagEpochProbe rounds carry
/// only the epoch, zero shard DBVVs — the O(1) quiescent round).
void EncodeShardedPropagationRequestBodyV3(
    ByteWriter& w, const ShardedPropagationRequest& m);
Result<ShardedPropagationRequest> DecodeShardedPropagationRequestBodyV3(
    ByteReader& r);

/// v3 sharded reply body: response flags byte + the source's mutation
/// epoch (sampled before serving), then the v2 envelope layout.
void EncodeShardedPropagationResponseBodyV3(
    ByteWriter& w, const ShardedPropagationResponse& m);
Result<ShardedPropagationResponse> DecodeShardedPropagationResponseBodyV3(
    ByteReader& r);

/// Zero-copy view of a decoded v3 sharded reply: segment bodies are views
/// into the reader's buffer (the received wire frame), which must outlive
/// the view. The anti-entropy pull path uses this to hand each segment to
/// its shard's accept task without ever materializing the (potentially
/// multi-megabyte) bodies as owned strings.
struct ShardedSegmentView {
  uint32_t shard = 0;
  std::string_view body;
};
struct ShardedResponseEnvelopeView {
  uint8_t resp_flags = 0;
  uint64_t epoch = 0;
  uint32_t num_shards = 0;
  std::vector<ShardedSegmentView> segments;
  bool resend_requested() const {
    return (resp_flags & kPropRespFlagResend) != 0;
  }
};
/// View-decoding twin of DecodeShardedPropagationResponseBodyV3: same
/// layout, same validations, no segment-body copies.
Status DecodeShardedPropagationResponseEnvelopeV3(
    ByteReader& r, ShardedResponseEnvelopeView* out);

/// Encodes one stale shard's reply as a self-framed v3 segment body into
/// `*out` (replacing its contents, keeping capacity — pass a pooled
/// buffer). Layout, after the flags byte and optional compression frame:
///
///   base DBVV (dense) · item set S (name, value, deleted, delta-IVV vs
///   base) · tails D_k (per record: varint item index into S, then the
///   seq — absolute for the first record, `seq - prev - 1` after).
///
/// Requires `!m.you_are_current` (current shards are skipped before any
/// buffer is touched) and every tail record's `item_index` filled in.
/// `pool` (nullable) supplies compression scratch.
void EncodeShardSegmentBodyV3(const PropagationResponseView& m,
                              const VersionVector& base,
                              const V3SegmentOptions& opts, BufferPool* pool,
                              std::string* out);

/// Appends an *uncompressed* v3 segment body (flags byte + inner layout,
/// identical to EncodeShardSegmentBodyV3 with compression off) directly to
/// `w`. Lets the serve path encode each stale shard straight into the
/// response frame, skipping the per-segment staging buffer and the
/// segment→frame stitch copy. Same preconditions as
/// EncodeShardSegmentBodyV3.
void EncodeShardSegmentBodyV3Into(ByteWriter& w,
                                  const PropagationResponseView& m,
                                  const VersionVector& base);

/// Zero-copy decode of a v3 segment body. On success `out`'s string views
/// point into `body` (or into `storage->backing` when the segment was
/// compressed) and its IVV pointers into `storage->ivvs`; both `body` and
/// `*storage` must outlive the view. Rejects trailing bytes, unknown flag
/// bits, out-of-range item indices, and malformed deltas.
Status DecodeShardSegmentBodyV3(std::string_view body,
                                SegmentViewStorage* storage,
                                PropagationResponseView* out);

/// Zero-copy decode of a *v2* response body (the view-based variant of
/// DecodePropagationResponseBody): names and values become views into
/// `body`, IVVs are decoded dense into `storage->ivvs`. Tail records keep
/// `item_index` unset — v2 bodies identify tail items by name only.
Status DecodePropagationResponseBodyView(std::string_view body,
                                         SegmentViewStorage* storage,
                                         PropagationResponseView* out);

/// Borrow an owned response as a view (string views and IVV pointers into
/// `m`, which must outlive `*out`). With `fill_tail_indices` the tail
/// records' `item_index` is resolved by name — required before v3-encoding
/// a view that was not built by the serve path.
void MakeResponseView(const PropagationResponse& m,
                      PropagationResponseView* out,
                      bool fill_tail_indices = false);
// A temporary would leave every view dangling the moment the call returns.
void MakeResponseView(PropagationResponse&&, PropagationResponseView*,
                      bool = false) = delete;

/// Deep-copies a view into an owned response (test / journal helper).
PropagationResponse MaterializeResponse(const PropagationResponseView& m);

}  // namespace epidemic::wire

#endif  // EPIDEMIC_CORE_WIRE_H_
