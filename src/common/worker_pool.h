#ifndef EPIDEMIC_COMMON_WORKER_POOL_H_
#define EPIDEMIC_COMMON_WORKER_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace epidemic {

/// A small persistent pool for running a batch of independent tasks and
/// waiting for all of them — the shape parallel per-shard anti-entropy
/// needs (fan out over shards, barrier, continue).
///
/// `threads` is the number of *extra* threads: the caller participates in
/// every batch, so `WorkerPool(0)` degrades to plain serial execution with
/// no threads, no locks taken per task, and identical semantics — callers
/// never need a separate code path for the serial case.
///
/// Run() is a barrier: it returns only after every task in the batch has
/// finished. Concurrent Run() calls from different threads are serialized
/// internally (one batch in flight at a time). Tasks must not themselves
/// call Run() on the same pool.
class WorkerPool {
 public:
  explicit WorkerPool(size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Executes every task and returns when all are done. Tasks run in
  /// unspecified order on the pool threads and the calling thread; they
  /// must not throw.
  void Run(std::vector<std::function<void()>> tasks) EXCLUDES(batch_mu_, mu_);

  size_t threads() const { return workers_.size(); }

 private:
  void WorkerLoop() EXCLUDES(mu_);
  /// Claims and runs tasks from the current batch until it is drained.
  /// Returns the number of tasks this thread completed.
  size_t DrainBatch() EXCLUDES(mu_);

  /// Serializes concurrent Run() callers (one batch in flight at a time).
  /// NOLINT-PROTOCOL(unguarded-mutex): pure serialization token — held for
  /// a whole batch, guards no member on its own (mu_ guards the state).
  Mutex batch_mu_ ACQUIRED_BEFORE(mu_);

  Mutex mu_;
  std::condition_variable_any work_ready_;
  std::condition_variable_any batch_done_;
  std::vector<std::function<void()>> tasks_ GUARDED_BY(mu_);
  size_t next_task_ GUARDED_BY(mu_) = 0;
  size_t pending_ GUARDED_BY(mu_) = 0;  // tasks not yet finished
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;

  std::vector<std::thread> workers_;  // set in the constructor, then const
};

}  // namespace epidemic

#endif  // EPIDEMIC_COMMON_WORKER_POOL_H_
