#include "common/hash.h"

#include <array>

namespace epidemic {

namespace {
// Table for CRC-32C (reflected polynomial 0x82f63b78), built at startup.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0x82f63b78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}
}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const auto& table = Table();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace epidemic
