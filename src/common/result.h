#ifndef EPIDEMIC_COMMON_RESULT_H_
#define EPIDEMIC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace epidemic {

/// Holds either a value of type `T` or a non-OK `Status`.
///
/// Mirrors arrow::Result / absl::StatusOr. Accessors assert on misuse in
/// debug builds; callers must check `ok()` first.
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return value;` from Result-returning code.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: allows `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : status_;
  }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace epidemic

/// Evaluates a Result-returning expression; on error returns the Status,
/// otherwise assigns the unwrapped value to `lhs`.
#define EPI_ASSIGN_OR_RETURN(lhs, expr)                 \
  auto _epi_result_##__LINE__ = (expr);                 \
  if (!_epi_result_##__LINE__.ok())                     \
    return _epi_result_##__LINE__.status();             \
  lhs = std::move(_epi_result_##__LINE__).value()

#endif  // EPIDEMIC_COMMON_RESULT_H_
