#ifndef EPIDEMIC_COMMON_BYTES_H_
#define EPIDEMIC_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace epidemic {

/// Append-only binary encoder used by the wire codec.
///
/// Integers are little-endian fixed width or LEB128 varints; strings are
/// varint length-prefixed. The matching decoder is ByteReader.
class ByteWriter {
 public:
  ByteWriter() = default;

  /// Adopts `buf` as the output buffer, clearing its contents but keeping
  /// its capacity. Pairs with BufferPool: a pooled buffer adopted here is
  /// already warm, so steady-state encodes never touch the allocator.
  explicit ByteWriter(std::string buf) : buf_(std::move(buf)) {
    buf_.clear();
  }

  /// Grows capacity to at least `n` bytes (size-hinted encodes reserve the
  /// estimated frame size once up front instead of doubling repeatedly).
  void Reserve(size_t n) { buf_.reserve(n); }

  void PutU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  // Fixed-width integers are encoded byte-by-byte so the wire bytes are
  // little-endian on every host, not just the ones where memcpy happens to
  // produce that order (the frames cross machines, the host ABI must not
  // leak into them).
  void PutFixed32(uint32_t v) {
    char tmp[4];
    for (size_t i = 0; i < 4; ++i) {
      tmp[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    buf_.append(tmp, 4);
  }

  void PutFixed64(uint64_t v) {
    char tmp[8];
    for (size_t i = 0; i < 8; ++i) {
      tmp[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    }
    buf_.append(tmp, 8);
  }

  void PutVarint64(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    buf_.push_back(static_cast<char>(v));
  }

  void PutString(std::string_view s) {
    PutVarint64(s.size());
    buf_.append(s.data(), s.size());
  }

  /// Appends `v` as a LEB128 varint padded to exactly `width` bytes
  /// (continuation bits set on all but the last byte). Non-canonical but
  /// decoded identically by GetVarint64. Used to reserve a fixed-width
  /// slot — typically a length prefix written before its payload exists —
  /// that OverwritePaddedVarint backpatches once the size is known.
  /// `v` must fit in 7 * width bits.
  void PutPaddedVarint(uint64_t v, size_t width) {
    for (size_t i = 0; i + 1 < width; ++i) {
      buf_.push_back(static_cast<char>((v & 0x7f) | 0x80));
      v >>= 7;
    }
    buf_.push_back(static_cast<char>(v & 0x7f));
  }

  /// Rewrites the `width`-byte padded varint at `pos` (previously written
  /// by PutPaddedVarint) in place.
  void OverwritePaddedVarint(size_t pos, uint64_t v, size_t width) {
    for (size_t i = 0; i + 1 < width; ++i) {
      buf_[pos + i] = static_cast<char>((v & 0x7f) | 0x80);
      v >>= 7;
    }
    buf_[pos + width - 1] = static_cast<char>(v & 0x7f);
  }

  void PutBytes(const void* data, size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  const std::string& data() const { return buf_; }
  std::string Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

/// Bounds-checked binary decoder over a borrowed byte span.
///
/// All getters return Corruption on truncated or malformed input; the caller
/// is expected to treat any failure as a poisoned message.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Result<uint8_t> GetU8() {
    if (pos_ + 1 > data_.size()) return Truncated("u8");
    return static_cast<uint8_t>(data_[pos_++]);
  }

  // Little-endian on the wire regardless of host order (see PutFixed32).
  Result<uint32_t> GetFixed32() {
    if (pos_ + 4 > data_.size()) return Truncated("fixed32");
    uint32_t v = 0;
    for (size_t i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> GetFixed64() {
    if (pos_ + 8 > data_.size()) return Truncated("fixed64");
    uint64_t v = 0;
    for (size_t i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  /// Canonical LEB128 decode: exactly one encoding per value. Rejects
  /// overlong (>10-byte) runs, encodings whose final byte is a redundant
  /// zero (non-minimal), and 10-byte encodings carrying bits beyond 2^64.
  /// Adversarial peers otherwise get a free non-canonical alias for every
  /// integer on the wire — a classic dedup/signature bypass. The padded
  /// backpatch slots written by PutPaddedVarint are deliberately
  /// non-minimal; the few fields defined as slots decode with
  /// GetVarint64Padded instead.
  Result<uint64_t> GetVarint64() {
    uint64_t v = 0;
    int shift = 0;
    while (shift <= 63) {
      if (pos_ >= data_.size()) return Truncated("varint64");
      uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      if ((byte & 0x80) == 0) {
        if (shift > 0 && byte == 0) {
          return Status::Corruption("non-minimal varint64 encoding");
        }
        if (shift == 63 && byte > 1) {
          return Status::Corruption("varint64 overflows 64 bits");
        }
        return v | static_cast<uint64_t>(byte) << shift;
      }
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      shift += 7;
    }
    return Status::Corruption("varint64 too long");
  }

  /// Permissive LEB128 decode for fields defined as padded backpatch slots
  /// (PutPaddedVarint): non-minimal encodings accepted, overlong (>10-byte)
  /// and 2^64-overflowing ones still rejected. Use only where the wire
  /// format reserves a fixed-width slot; everything else goes through the
  /// canonical GetVarint64.
  Result<uint64_t> GetVarint64Padded() {
    uint64_t v = 0;
    int shift = 0;
    while (shift <= 63) {
      if (pos_ >= data_.size()) return Truncated("varint64");
      uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
      if ((byte & 0x80) == 0) {
        if (shift == 63 && byte > 1) {
          return Status::Corruption("varint64 overflows 64 bits");
        }
        return v | static_cast<uint64_t>(byte) << shift;
      }
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      shift += 7;
    }
    return Status::Corruption("varint64 too long");
  }

  Result<std::string> GetString() {
    auto len = GetVarint64();
    if (!len.ok()) return len.status();
    if (pos_ + *len > data_.size()) return Truncated("string body");
    std::string s(data_.substr(pos_, *len));
    pos_ += *len;
    return s;
  }

  /// GetString whose length prefix is a padded backpatch slot (the v3
  /// direct-to-frame serve writes segment lengths that way).
  Result<std::string> GetStringPadded() {
    auto len = GetVarint64Padded();
    if (!len.ok()) return len.status();
    if (pos_ + *len > data_.size()) return Truncated("string body");
    std::string s(data_.substr(pos_, *len));
    pos_ += *len;
    return s;
  }

  /// Zero-copy variant of GetString: the returned view borrows the bytes
  /// the reader was constructed over, so it is valid exactly as long as
  /// that buffer. Used by the view-based wire decoders, whose backing
  /// buffer outlives AcceptPropagation (DESIGN.md §10).
  Result<std::string_view> GetStringView() {
    auto len = GetVarint64();
    if (!len.ok()) return len.status();
    if (pos_ + *len > data_.size()) return Truncated("string body");
    std::string_view s = data_.substr(pos_, *len);
    pos_ += *len;
    return s;
  }

  /// GetStringView whose length prefix is a padded backpatch slot (see
  /// GetStringPadded).
  Result<std::string_view> GetStringViewPadded() {
    auto len = GetVarint64Padded();
    if (!len.ok()) return len.status();
    if (pos_ + *len > data_.size()) return Truncated("string body");
    std::string_view s = data_.substr(pos_, *len);
    pos_ += *len;
    return s;
  }

  /// Bounds-checked view of the next `n` raw bytes, advancing past them.
  /// The view borrows the reader's backing buffer (same lifetime contract
  /// as GetStringView). Decoders use this instead of touching data()+pos
  /// themselves — raw pointer arithmetic in decode TUs is rejected by
  /// tools/epilint_ast.py decode-bounds-discipline.
  Result<std::string_view> GetBytesView(size_t n) {
    if (pos_ + n > data_.size()) return Truncated("raw bytes");
    std::string_view s = data_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  /// Advances past `n` bytes without reading them. Returns false (without
  /// moving) when fewer than `n` bytes remain.
  bool Skip(size_t n) {
    if (pos_ + n > data_.size()) return false;
    pos_ += n;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  static Status Truncated(const char* what) {
    return Status::Corruption(std::string("truncated input reading ") + what);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace epidemic

#endif  // EPIDEMIC_COMMON_BYTES_H_
