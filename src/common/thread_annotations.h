#ifndef EPIDEMIC_COMMON_THREAD_ANNOTATIONS_H_
#define EPIDEMIC_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>

/// Clang `-Wthread-safety` annotations plus the annotated locking
/// primitives the rest of the tree uses. The striped shard-locking
/// discipline introduced with `ShardedReplica` ("client ops lock only their
/// shard, whole-DB ops lock in index order, no lock held across transport")
/// is documented in DESIGN.md §8; these macros make the per-mutex half of
/// that discipline machine-checked: every guarded member says which mutex
/// guards it, every locking function says what it acquires, and the build
/// fails under `EPIDEMIC_WERROR_THREAD_SAFETY=ON` (Clang) when code
/// touches a guarded member without its lock.
///
/// Under compilers without the attributes (GCC) every macro expands to
/// nothing, so the annotations are free documentation there.

#if defined(__clang__) && defined(__has_attribute)
#define EPI_TSA_ATTR(x) __attribute__((x))
#else
#define EPI_TSA_ATTR(x)  // no-op outside Clang
#endif

/// On a class: instances are a capability (lockable object).
#define CAPABILITY(x) EPI_TSA_ATTR(capability(x))

/// On a class: RAII object that acquires a capability in its constructor
/// and releases it in its destructor.
#define SCOPED_CAPABILITY EPI_TSA_ATTR(scoped_lockable)

/// On a data member: reads and writes require holding `x`.
#define GUARDED_BY(x) EPI_TSA_ATTR(guarded_by(x))

/// On a pointer member: dereferences require holding `x` (the pointer
/// itself is not guarded).
#define PT_GUARDED_BY(x) EPI_TSA_ATTR(pt_guarded_by(x))

/// On a mutex member: document (and check, where resolvable) lock order.
#define ACQUIRED_BEFORE(...) EPI_TSA_ATTR(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) EPI_TSA_ATTR(acquired_after(__VA_ARGS__))

/// On a function: callers must hold the capability (not acquired inside).
#define REQUIRES(...) EPI_TSA_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  EPI_TSA_ATTR(requires_shared_capability(__VA_ARGS__))

/// On a function: acquires the capability and holds it on return.
#define ACQUIRE(...) EPI_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  EPI_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))

/// On a function: releases a capability the caller holds.
#define RELEASE(...) EPI_TSA_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  EPI_TSA_ATTR(release_shared_capability(__VA_ARGS__))

/// On a function returning bool: acquires the capability iff the return
/// value equals the first argument.
#define TRY_ACQUIRE(...) \
  EPI_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  EPI_TSA_ATTR(try_acquire_shared_capability(__VA_ARGS__))

/// On a function: callers must NOT hold the capability (deadlock guard for
/// functions that acquire it themselves).
#define EXCLUDES(...) EPI_TSA_ATTR(locks_excluded(__VA_ARGS__))

/// On a function: returns a reference to the named capability.
#define RETURN_CAPABILITY(x) EPI_TSA_ATTR(lock_returned(x))

/// On a function: runtime-asserts the capability is held.
#define ASSERT_CAPABILITY(x) EPI_TSA_ATTR(assert_capability(x))

/// Escape hatch for locking patterns outside the static model — in this
/// tree that is exactly the dynamic striped-lock sets of ReplicaServer
/// (lock shards 0..S-1 in index order, or try_lock-claim an arbitrary
/// subset), which name a runtime-indexed mutex the analysis cannot
/// resolve. Every use must carry a comment saying why, and the code it
/// covers must keep to the DESIGN.md §8 lock-order rule.
#define NO_THREAD_SAFETY_ANALYSIS \
  EPI_TSA_ATTR(no_thread_safety_analysis)

namespace epidemic {

/// std::mutex with capability annotations: `-Wthread-safety` only tracks
/// acquisitions made through annotated functions, so the tree locks this
/// wrapper (usually via MutexLock below) instead of std::mutex directly.
/// Same cost — the wrapper is empty — and works as a BasicLockable with
/// std::condition_variable_any for the wait loops.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;  // NOLINT-PROTOCOL(unguarded-mutex): the annotated wrapper itself
};

/// Tag type selecting the adopting MutexLock constructor.
struct AdoptLockT {
  explicit AdoptLockT() = default;
};
inline constexpr AdoptLockT kAdoptLock{};

/// RAII guard over Mutex, visible to the analysis (the annotated
/// replacement for std::lock_guard / std::unique_lock).
class SCOPED_CAPABILITY MutexLock {
 public:
  /// Blocks until `mu` is acquired; releases it on destruction.
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }

  /// Adopts a mutex the caller already holds (e.g. after a successful
  /// try_lock()); releases it on destruction.
  MutexLock(Mutex& mu, AdoptLockT) REQUIRES(mu) : mu_(mu) {}

  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace epidemic

#endif  // EPIDEMIC_COMMON_THREAD_ANNOTATIONS_H_
