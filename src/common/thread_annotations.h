#ifndef EPIDEMIC_COMMON_THREAD_ANNOTATIONS_H_
#define EPIDEMIC_COMMON_THREAD_ANNOTATIONS_H_

#include <mutex>

/// Clang `-Wthread-safety` annotations plus the annotated primitives the
/// rest of the tree uses. Two disciplines are machine-checked here:
///
///  1. Classic mutexes (`Mutex`/`MutexLock` below): every guarded member
///     says which mutex guards it, every locking function says what it
///     acquires, and the build fails under `EPIDEMIC_WERROR_THREAD_SAFETY=ON`
///     (Clang) when code touches a guarded member without its lock.
///
///  2. The shard-context capability (`ShardContext` below, DESIGN.md §12):
///     since the shard-owned task runtime replaced striped locks, shard
///     state is protected by *channel ownership*, not mutexes. The phantom
///     `shard_context` capability makes that statically visible — mutating
///     replica/log/store methods carry `REQUIRES_SHARD_CONTEXT`, and the
///     only code that legitimately asserts the capability is the
///     scheduler's task trampoline (plus a handful of audited single-owner
///     escapes, see AssertShardContextHeld).
///
/// Under compilers without the attributes (GCC) every macro expands to
/// nothing, so the annotations are free documentation there.

#if defined(__clang__) && defined(__has_attribute)
#define EPI_TSA_ATTR(x) __attribute__((x))
#else
#define EPI_TSA_ATTR(x)  // no-op outside Clang
#endif

/// On a class: instances are a capability (lockable object).
#define CAPABILITY(x) EPI_TSA_ATTR(capability(x))

/// On a class: RAII object that acquires a capability in its constructor
/// and releases it in its destructor.
#define SCOPED_CAPABILITY EPI_TSA_ATTR(scoped_lockable)

/// On a data member: reads and writes require holding `x`.
#define GUARDED_BY(x) EPI_TSA_ATTR(guarded_by(x))

/// On a pointer member: dereferences require holding `x` (the pointer
/// itself is not guarded).
#define PT_GUARDED_BY(x) EPI_TSA_ATTR(pt_guarded_by(x))

/// On a mutex member: document (and check, where resolvable) lock order.
#define ACQUIRED_BEFORE(...) EPI_TSA_ATTR(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) EPI_TSA_ATTR(acquired_after(__VA_ARGS__))

/// On a function: callers must hold the capability (not acquired inside).
#define REQUIRES(...) EPI_TSA_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  EPI_TSA_ATTR(requires_shared_capability(__VA_ARGS__))

/// On a function: acquires the capability and holds it on return.
#define ACQUIRE(...) EPI_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  EPI_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))

/// On a function: releases a capability the caller holds.
#define RELEASE(...) EPI_TSA_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  EPI_TSA_ATTR(release_shared_capability(__VA_ARGS__))

/// On a function returning bool: acquires the capability iff the return
/// value equals the first argument.
#define TRY_ACQUIRE(...) \
  EPI_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  EPI_TSA_ATTR(try_acquire_shared_capability(__VA_ARGS__))

/// On a function: callers must NOT hold the capability (deadlock guard for
/// functions that acquire it themselves).
#define EXCLUDES(...) EPI_TSA_ATTR(locks_excluded(__VA_ARGS__))

/// On a function: returns a reference to the named capability.
#define RETURN_CAPABILITY(x) EPI_TSA_ATTR(lock_returned(x))

/// On a function: runtime-asserts the capability is held.
#define ASSERT_CAPABILITY(x) EPI_TSA_ATTR(assert_capability(x))

/// Escape hatch for locking patterns outside the static model (e.g. a
/// runtime-indexed capability the analysis cannot resolve). Prefer
/// AssertShardContextHeld() for shard-state escapes — it is visible to the
/// analysis and greppable. Every use must carry a comment saying why.
#define NO_THREAD_SAFETY_ANALYSIS \
  EPI_TSA_ATTR(no_thread_safety_analysis)

namespace epidemic {

/// Phantom capability representing "the current thread is inside a shard's
/// single-writer section" — i.e. it is the scheduler worker (or manual-mode
/// pump) that holds the shard's gate and is draining its channel. There is
/// no lock to acquire: the capability is *asserted* at the task boundary
/// (ShardScheduler's trampoline, via runtime::AssertShardContext) and
/// *required* by every mutating method on Replica, ShardedReplica,
/// OriginLog/LogVector, AuxLog and ItemStore. Clang's analysis then rejects
/// any call chain that reaches shard state without passing through the
/// scheduler. See DESIGN.md §12.
class CAPABILITY("shard_context") ShardContext {
 public:
  ShardContext() = default;
  ShardContext(const ShardContext&) = delete;
  ShardContext& operator=(const ShardContext&) = delete;
};

/// The single global instance the annotations name. Zero-size phantom —
/// never locked, never inspected at runtime.
inline ShardContext shard_context;

/// `REQUIRES_SHARD_CONTEXT` marks a function as "may only run inside a
/// shard's single-writer section". Enforcement is gated per-TU on
/// EPIDEMIC_CHECK_SHARD_CONTEXT (defined for src/ and tools/ by CMake):
/// library and server code is checked, while tests/benches — which drive
/// single-owner replicas directly from their own thread — compile the same
/// headers with the attribute expanded away. Function attributes do not
/// participate in mangling or the ODR, so mixing checked and unchecked TUs
/// is well-defined.
#if defined(EPIDEMIC_CHECK_SHARD_CONTEXT)
#define REQUIRES_SHARD_CONTEXT REQUIRES(::epidemic::shard_context)
#else
#define REQUIRES_SHARD_CONTEXT  // unchecked TU (tests/bench/examples)
#endif

/// Audited escape: asserts the shard-context capability for the rest of
/// the calling function without any runtime proof. Legitimate only where
/// exactly one actor can possibly reach the state being mutated:
///   * replay/decode of a freshly constructed, not-yet-published replica
///     (journal recovery, snapshot decode),
///   * single-threaded reference drivers (baselines, multidb, epicheck's
///     plain-path executor),
///   * scheduler-external code that holds every gate (ExecuteExclusive).
/// Every call site must carry a comment naming the single owner.
inline void AssertShardContextHeld() ASSERT_CAPABILITY(shard_context) {}

/// std::mutex with capability annotations: `-Wthread-safety` only tracks
/// acquisitions made through annotated functions, so the tree locks this
/// wrapper (usually via MutexLock below) instead of std::mutex directly.
/// Same cost — the wrapper is empty — and works as a BasicLockable with
/// std::condition_variable_any for the wait loops.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;  // NOLINT-PROTOCOL(unguarded-mutex): the annotated wrapper itself
};

/// Tag type selecting the adopting MutexLock constructor.
struct AdoptLockT {
  explicit AdoptLockT() = default;
};
inline constexpr AdoptLockT kAdoptLock{};

/// RAII guard over Mutex, visible to the analysis (the annotated
/// replacement for std::lock_guard / std::unique_lock).
class SCOPED_CAPABILITY MutexLock {
 public:
  /// Blocks until `mu` is acquired; releases it on destruction.
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }

  /// Adopts a mutex the caller already holds (e.g. after a successful
  /// try_lock()); releases it on destruction.
  MutexLock(Mutex& mu, AdoptLockT) REQUIRES(mu) : mu_(mu) {}

  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace epidemic

#endif  // EPIDEMIC_COMMON_THREAD_ANNOTATIONS_H_
