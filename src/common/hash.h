#ifndef EPIDEMIC_COMMON_HASH_H_
#define EPIDEMIC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace epidemic {

/// CRC-32C (Castagnoli polynomial), the checksum RocksDB/LevelDB use for
/// on-disk integrity. Software table implementation; `seed` chains calls.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view s, uint32_t seed = 0) {
  return Crc32c(s.data(), s.size(), seed);
}

}  // namespace epidemic

#endif  // EPIDEMIC_COMMON_HASH_H_
