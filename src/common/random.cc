#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace epidemic {

namespace {
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return lo + Uniform(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s), cdf_(n) {
  assert(n >= 1);
  double sum = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = sum;
  }
  for (uint64_t k = 0; k < n; ++k) cdf_[k] /= sum;
  cdf_[n - 1] = 1.0;  // guard against rounding
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace epidemic
