#include "common/status.h"

namespace epidemic {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code()));
  if (!message().empty()) {
    result += ": ";
    result += message();
  }
  return result;
}

}  // namespace epidemic
