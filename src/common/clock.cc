#include "common/clock.h"

#include <chrono>

namespace epidemic {

TimeMicros RealClock::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RealClock* RealClock::Default() {
  static RealClock* instance = new RealClock();
  return instance;
}

}  // namespace epidemic
