#ifndef EPIDEMIC_COMMON_LOGGING_H_
#define EPIDEMIC_COMMON_LOGGING_H_

#include <cassert>
#include <cstdlib>
#include <sstream>
#include <string>

namespace epidemic {

/// Severity of a log line. kFatal aborts the process after logging.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Process-wide minimum severity; lines below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line collector; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace epidemic

#define EPI_LOG(level)                                          \
  ::epidemic::internal::LogMessage(::epidemic::LogLevel::level, \
                                   __FILE__, __LINE__)

/// Invariant check that stays on in release builds; logs and aborts on
/// failure. Used for protocol invariants whose violation means a bug, not a
/// recoverable error.
#define EPI_CHECK(cond)                                              \
  if (!(cond))                                                       \
  ::epidemic::internal::LogMessage(::epidemic::LogLevel::kFatal,     \
                                   __FILE__, __LINE__)               \
      << "Check failed: " #cond " "

#define EPI_DCHECK(cond) assert(cond)

#endif  // EPIDEMIC_COMMON_LOGGING_H_
