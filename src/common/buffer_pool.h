#ifndef EPIDEMIC_COMMON_BUFFER_POOL_H_
#define EPIDEMIC_COMMON_BUFFER_POOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace epidemic {

/// Thread-safe free list of `std::string` byte buffers.
///
/// The v3 wire hot path (DESIGN.md §10) builds one segment body per stale
/// shard per anti-entropy round; without pooling every round pays a malloc
/// and a free per shard for a buffer whose size is essentially the same as
/// last round's. The pool keeps those buffers warm: Get() hands out a
/// cleared buffer with its old capacity intact (growing it to `hint` when
/// asked), Put() returns it. Buffers above `max_buffer_bytes` are dropped
/// rather than cached so one pathological segment cannot pin memory, and
/// the free list is capped at `max_buffers`.
///
/// Lifetime: the pool must outlive every buffer checked out of it only if
/// the buffer is eventually Put() back — a buffer is a plain std::string,
/// so leaking it past the pool is safe, just unpooled.
class BufferPool {
 public:
  struct Stats {
    uint64_t hits = 0;       ///< Get() served from the free list.
    uint64_t misses = 0;     ///< Get() had to construct a fresh buffer.
    uint64_t returns = 0;    ///< Put() kept the buffer for reuse.
    uint64_t discards = 0;   ///< Put() dropped the buffer (full / too big).
  };

  explicit BufferPool(size_t max_buffers = 64,
                      size_t max_buffer_bytes = size_t{8} << 20)
      : max_buffers_(max_buffers), max_buffer_bytes_(max_buffer_bytes) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a cleared buffer with capacity ≥ `reserve_hint`, reusing a
  /// pooled one when available.
  std::string Get(size_t reserve_hint = 0) EXCLUDES(mu_) {
    std::string buf;
    {
      MutexLock lock(mu_);
      if (!free_.empty()) {
        buf = std::move(free_.back());
        free_.pop_back();
        ++stats_.hits;
      } else {
        ++stats_.misses;
      }
    }
    buf.clear();
    if (reserve_hint > buf.capacity()) buf.reserve(reserve_hint);
    return buf;
  }

  /// Returns `buf` to the free list (or drops it when the list is full or
  /// the buffer outgrew `max_buffer_bytes`). The contents are discarded.
  void Put(std::string buf) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (free_.size() >= max_buffers_ ||
        buf.capacity() > max_buffer_bytes_) {
      ++stats_.discards;
      return;
    }
    ++stats_.returns;
    free_.push_back(std::move(buf));
  }

  Stats stats() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return stats_;
  }

  size_t free_buffers() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return free_.size();
  }

 private:
  const size_t max_buffers_;
  const size_t max_buffer_bytes_;
  mutable Mutex mu_;
  std::vector<std::string> free_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

/// RAII checkout of one BufferPool buffer: takes a buffer in the
/// constructor, returns it in the destructor. With a null pool it degrades
/// to a plain owned string, so call sites can be written once and work
/// with or without pooling.
class PooledBuffer {
 public:
  explicit PooledBuffer(BufferPool* pool, size_t reserve_hint = 0)
      : pool_(pool), buf_(pool ? pool->Get(reserve_hint) : std::string()) {
    if (!pool_ && reserve_hint > 0) buf_.reserve(reserve_hint);
  }

  ~PooledBuffer() {
    if (pool_) pool_->Put(std::move(buf_));
  }

  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  std::string& operator*() { return buf_; }
  std::string* operator->() { return &buf_; }
  const std::string& operator*() const { return buf_; }

 private:
  BufferPool* pool_;
  std::string buf_;
};

}  // namespace epidemic

#endif  // EPIDEMIC_COMMON_BUFFER_POOL_H_
