#include "common/compress.h"

#include <cstring>
#include <vector>

namespace epidemic {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxMatch = kMinMatch + 0x7e;  // control 0x80..0xfe
constexpr size_t kWindow = 1u << 16;
constexpr size_t kHashBits = 15;

uint32_t Hash4(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

void PutVarint(std::string& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void FlushLiterals(std::string& out, std::string_view input, size_t start,
                   size_t end) {
  while (start < end) {
    size_t run = std::min(end - start, size_t{128});
    out.push_back(static_cast<char>(run - 1));
    out.append(input.data() + start, run);
    start += run;
  }
}

}  // namespace

std::string Compress(std::string_view input) {
  std::string out;
  CompressTo(input, &out);
  return out;
}

void CompressTo(std::string_view input, std::string* out_buf) {
  std::string& out = *out_buf;
  out.clear();
  out.reserve(input.size() / 2 + 16);
  std::vector<size_t> table(size_t{1} << kHashBits, SIZE_MAX);

  size_t literal_start = 0;
  size_t pos = 0;
  while (pos + kMinMatch <= input.size()) {
    uint32_t h = Hash4(input.data() + pos);
    size_t candidate = table[h];
    table[h] = pos;

    size_t match_len = 0;
    if (candidate != SIZE_MAX && pos - candidate <= kWindow &&
        candidate < pos) {
      size_t limit = std::min(input.size() - pos, kMaxMatch);
      while (match_len < limit &&
             input[candidate + match_len] == input[pos + match_len]) {
        ++match_len;
      }
    }

    if (match_len >= kMinMatch) {
      FlushLiterals(out, input, literal_start, pos);
      out.push_back(
          static_cast<char>(0x80 | (match_len - kMinMatch)));
      PutVarint(out, pos - candidate);  // distance, >= 1
      pos += match_len;
      literal_start = pos;
    } else {
      ++pos;
    }
  }
  FlushLiterals(out, input, literal_start, input.size());
}

Result<std::string> Decompress(std::string_view compressed,
                               size_t max_output) {
  std::string out;
  Status s = DecompressTo(compressed, &out, max_output);
  if (!s.ok()) return s;
  return out;
}

Status DecompressTo(std::string_view compressed, std::string* out_buf,
                    size_t max_output) {
  std::string& out = *out_buf;
  out.clear();
  size_t pos = 0;
  while (pos < compressed.size()) {
    uint8_t control = static_cast<uint8_t>(compressed[pos++]);
    if ((control & 0x80) == 0) {
      size_t run = static_cast<size_t>(control) + 1;
      if (pos + run > compressed.size()) {
        return Status::Corruption("truncated literal run");
      }
      if (out.size() + run > max_output) {
        return Status::Corruption("decompressed output too large");
      }
      out.append(compressed.data() + pos, run);
      pos += run;
    } else {
      size_t len = static_cast<size_t>(control & 0x7f) + kMinMatch;
      // Varint distance.
      uint64_t dist = 0;
      int shift = 0;
      for (;;) {
        if (pos >= compressed.size() || shift > 28) {
          return Status::Corruption("truncated match distance");
        }
        uint8_t byte = static_cast<uint8_t>(compressed[pos++]);
        dist |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) break;
        shift += 7;
      }
      if (dist == 0 || dist > out.size()) {
        return Status::Corruption("match distance out of range");
      }
      if (out.size() + len > max_output) {
        return Status::Corruption("decompressed output too large");
      }
      // Byte-by-byte copy: overlapping matches (dist < len) are legal and
      // replicate the repeated region, as in every LZ77 family codec.
      size_t src = out.size() - static_cast<size_t>(dist);
      for (size_t i = 0; i < len; ++i) out.push_back(out[src + i]);
    }
  }
  return Status::OK();
}

}  // namespace epidemic
