#include "common/worker_pool.h"

#include <utility>

namespace epidemic {

WorkerPool::WorkerPool(size_t threads) {
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

size_t WorkerPool::DrainBatch() {
  size_t done = 0;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      if (next_task_ >= tasks_.size()) return done;
      task = std::move(tasks_[next_task_++]);
    }
    task();
    ++done;
  }
}

void WorkerPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      MutexLock lock(mu_);
      // Hand-rolled predicate loop (rather than the lambda-predicate wait
      // overload) so the guarded reads stay inside this function's scope,
      // where the analysis can see the lock is held.
      while (!shutdown_ && (generation_ == seen_generation ||
                            next_task_ >= tasks_.size())) {
        work_ready_.wait(mu_);
      }
      if (shutdown_) return;
      seen_generation = generation_;
    }
    const size_t done = DrainBatch();
    if (done > 0) {
      MutexLock lock(mu_);
      pending_ -= done;
      if (pending_ == 0) batch_done_.notify_all();
    }
  }
}

void WorkerPool::Run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (workers_.empty()) {
    // Serial pool: run inline, no synchronization at all.
    for (auto& task : tasks) task();
    return;
  }
  MutexLock batch_lock(batch_mu_);
  {
    MutexLock lock(mu_);
    tasks_ = std::move(tasks);
    next_task_ = 0;
    pending_ = tasks_.size();
    ++generation_;
  }
  work_ready_.notify_all();
  // The caller works too, then waits for stragglers.
  const size_t done = DrainBatch();
  MutexLock lock(mu_);
  pending_ -= done;
  if (pending_ == 0) {
    batch_done_.notify_all();
  } else {
    while (pending_ != 0) batch_done_.wait(mu_);
  }
  tasks_.clear();
}

}  // namespace epidemic
