#include "common/worker_pool.h"

#include <utility>

namespace epidemic {

WorkerPool::WorkerPool(size_t threads) {
  workers_.reserve(threads);
  for (size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

size_t WorkerPool::DrainBatch() {
  size_t done = 0;
  for (;;) {
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (next_task_ >= tasks_.size()) return done;
      task = std::move(tasks_[next_task_++]);
    }
    task();
    ++done;
  }
}

void WorkerPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || (generation_ != seen_generation &&
                             next_task_ < tasks_.size());
      });
      if (shutdown_) return;
      seen_generation = generation_;
    }
    const size_t done = DrainBatch();
    if (done > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      pending_ -= done;
      if (pending_ == 0) batch_done_.notify_all();
    }
  }
}

void WorkerPool::Run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (workers_.empty()) {
    // Serial pool: run inline, no synchronization at all.
    for (auto& task : tasks) task();
    return;
  }
  std::lock_guard<std::mutex> batch_lock(batch_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_ = std::move(tasks);
    next_task_ = 0;
    pending_ = tasks_.size();
    ++generation_;
  }
  work_ready_.notify_all();
  // The caller works too, then waits for stragglers.
  const size_t done = DrainBatch();
  std::unique_lock<std::mutex> lock(mu_);
  pending_ -= done;
  if (pending_ == 0) {
    batch_done_.notify_all();
  } else {
    batch_done_.wait(lock, [&] { return pending_ == 0; });
  }
  tasks_.clear();
  return;
}

}  // namespace epidemic
