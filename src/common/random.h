#ifndef EPIDEMIC_COMMON_RANDOM_H_
#define EPIDEMIC_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace epidemic {

/// Small, fast, deterministic PRNG (xoshiro256**), seeded via SplitMix64.
///
/// Used everywhere randomness is needed so that simulations and tests are
/// reproducible from a single seed. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform in [lo, hi]. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean);

 private:
  uint64_t s_[4];
};

/// Zipf(s) sampler over {0, ..., n-1}: item k has probability proportional to
/// 1/(k+1)^s. Precomputes the CDF once (O(n)); each Sample is O(log n).
///
/// Used by workload generators to model the paper's assumption that few items
/// are "hot" (frequently updated) relative to the database size.
class ZipfSampler {
 public:
  /// `n` must be >= 1. `s` = 0 degenerates to uniform.
  ZipfSampler(uint64_t n, double s);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;
};

}  // namespace epidemic

#endif  // EPIDEMIC_COMMON_RANDOM_H_
