#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/thread_annotations.h"

namespace epidemic {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};
// NOLINT-PROTOCOL(unguarded-mutex): guards stderr (an external resource the
// annotations cannot name), keeping concurrent log lines untorn.
Mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  // relaxed: the level is an isolated filter knob — no other state is
  // published under it, and a briefly stale read only mis-filters a line.
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  // relaxed: isolated filter knob (see SetLogLevel).
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      // relaxed: isolated filter knob (see SetLogLevel).
      enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)) {
  if (enabled_) {
    // Strip the directory part for terseness.
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    MutexLock lock(g_log_mutex);
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace epidemic
