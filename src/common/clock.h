#ifndef EPIDEMIC_COMMON_CLOCK_H_
#define EPIDEMIC_COMMON_CLOCK_H_

#include <cstdint>

namespace epidemic {

/// Microseconds since an arbitrary epoch.
using TimeMicros = int64_t;

/// Time source abstraction so the same code runs under the discrete-event
/// simulator (ManualClock) and in real deployments (RealClock).
class Clock {
 public:
  virtual ~Clock() = default;
  virtual TimeMicros NowMicros() const = 0;
};

/// Wall-clock time from the OS monotonic clock.
class RealClock : public Clock {
 public:
  TimeMicros NowMicros() const override;

  /// Shared process-wide instance.
  static RealClock* Default();
};

/// Manually advanced clock for deterministic simulation and tests.
class ManualClock : public Clock {
 public:
  explicit ManualClock(TimeMicros start = 0) : now_(start) {}

  TimeMicros NowMicros() const override { return now_; }
  void Advance(TimeMicros delta) { now_ += delta; }
  void Set(TimeMicros t) { now_ = t; }

 private:
  TimeMicros now_;
};

}  // namespace epidemic

#endif  // EPIDEMIC_COMMON_CLOCK_H_
