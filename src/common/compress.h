#ifndef EPIDEMIC_COMMON_COMPRESS_H_
#define EPIDEMIC_COMMON_COMPRESS_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace epidemic {

/// Small self-contained LZ77-style byte compressor for bandwidth-starved
/// links (the dial-up deployments of §1). No external dependencies; format:
///
///   token := literal-run | match
///   literal-run := control byte 0x00..0x7f (= run length - 1), then bytes
///   match       := control byte 0x80 | (len - kMinMatch), capped at 0x7f,
///                  then varint distance (1-based, ≤ 64 KiB window)
///
/// Greedy hash-table matcher; typical replication payloads (names, values
/// with shared prefixes, version vectors) compress 2-5x. Incompressible
/// input grows by ≤ 1 byte per 128.
std::string Compress(std::string_view input);

/// Compress into a caller-supplied buffer (replacing its contents, keeping
/// its capacity) — the allocation-free variant for pooled buffers on the
/// v3 wire hot path. `input` must not alias `*out`.
void CompressTo(std::string_view input, std::string* out);

/// Inverse of Compress. `max_output` bounds memory for untrusted input.
/// Corruption on malformed streams.
Result<std::string> Decompress(std::string_view compressed,
                               size_t max_output = size_t{1} << 30);

/// Decompress into a caller-supplied buffer (replacing its contents,
/// keeping its capacity). `compressed` must not alias `*out`.
Status DecompressTo(std::string_view compressed, std::string* out,
                    size_t max_output = size_t{1} << 30);

}  // namespace epidemic

#endif  // EPIDEMIC_COMMON_COMPRESS_H_
