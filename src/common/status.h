#ifndef EPIDEMIC_COMMON_STATUS_H_
#define EPIDEMIC_COMMON_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace epidemic {

/// Error category for a failed operation.
///
/// The library never throws exceptions across API boundaries; fallible
/// operations return a `Status` (or a `Result<T>`, see result.h). `kOk` is
/// represented with a null state pointer so that the success path costs one
/// pointer comparison and no allocation.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kConflict = 4,        // inconsistent replicas detected
  kOutOfRange = 5,
  kCorruption = 6,      // malformed wire data / broken invariant on decode
  kIOError = 7,         // transport / socket failure
  kUnavailable = 8,     // peer down or link closed; retryable
  kFailedPrecondition = 9,
  kTimedOut = 10,
  kCancelled = 11,
  kNotSupported = 12,
  kInternal = 13,
};

/// Returns a stable human-readable name, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// Value-type status word carrying an error code and message.
///
/// Typical use:
///
///   Status s = db.Put(key, value);
///   if (!s.ok()) return s;
///
/// or with the convenience macro:
///
///   EPI_RETURN_NOT_OK(db.Put(key, value));
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : state_(code == StatusCode::kOk
                   ? nullptr
                   : std::make_unique<State>(State{code, std::move(message)})) {}

  Status(const Status& other)
      : state_(other.state_ ? std::make_unique<State>(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
    }
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return state_ ? state_->message : kEmpty;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsConflict() const { return code() == StatusCode::kConflict; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<State> state_;  // null means OK
};

}  // namespace epidemic

/// Propagates a non-OK Status to the caller.
#define EPI_RETURN_NOT_OK(expr)                    \
  do {                                             \
    ::epidemic::Status _epi_status = (expr);       \
    if (!_epi_status.ok()) return _epi_status;     \
  } while (false)

#endif  // EPIDEMIC_COMMON_STATUS_H_
