#include "server/replica_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "core/wire.h"
#include "net/codec.h"

namespace epidemic::server {

using net::ClientOobFetchRequest;
using net::ClientReadRequest;
using net::ClientReply;
using net::ClientUpdateRequest;
using net::Message;

namespace {

std::string EncodeStatusReply(const Status& s, std::string payload = "") {
  ClientReply reply;
  reply.code = static_cast<uint8_t>(s.code());
  // Only the message crosses the wire; the client rebuilds the Status from
  // the code, so no "NotFound: NotFound:" double prefixes.
  reply.payload = s.ok() ? std::move(payload) : s.message();
  return net::Encode(Message(std::move(reply)));
}

/// Converts a decoded ClientReply back into a Status/value pair.
Result<std::string> ReplyToResult(const ClientReply& reply) {
  if (reply.code == 0) return reply.payload;
  return Status(static_cast<StatusCode>(reply.code), reply.payload);
}

}  // namespace

ReplicaServer::ReplicaServer(NodeId id, size_t num_nodes,
                             net::Transport* transport, Options options)
    : id_(id),
      transport_(transport),
      options_(std::move(options)),
      memory_(std::make_unique<ShardedReplica>(
          id, num_nodes, options_.num_shards, &listener_)),
      pool_(options_.ae_workers) {
  shard_mu_ = std::make_unique<Mutex[]>(memory_->num_shards());
  peer_wire_count_ = num_nodes;
  peer_wire_ = std::make_unique<std::atomic<uint8_t>[]>(peer_wire_count_);
}

ReplicaServer::ReplicaServer(std::unique_ptr<JournaledShardedReplica> durable,
                             net::Transport* transport, Options options)
    : id_(durable->view().id()),
      transport_(transport),
      options_(std::move(options)),
      durable_(std::move(durable)),
      pool_(options_.ae_workers) {
  shard_mu_ = std::make_unique<Mutex[]>(durable_->num_shards());
  peer_wire_count_ = durable_->view().num_nodes();
  peer_wire_ = std::make_unique<std::atomic<uint8_t>[]>(peer_wire_count_);
}

ReplicaServer::~ReplicaServer() { Stop(); }

void ReplicaServer::Start() {
  if (options_.anti_entropy_interval_micros <= 0 || options_.peers.empty()) {
    return;
  }
  MutexLock lock(thread_mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  ae_thread_ = std::thread([this] { AntiEntropyLoop(); });
}

void ReplicaServer::Stop() {
  {
    MutexLock lock(thread_mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (ae_thread_.joinable()) ae_thread_.join();
  MutexLock lock(thread_mu_);
  started_ = false;
}

void ReplicaServer::AntiEntropyLoop() {
  size_t next_peer = 0;
  TimeMicros last_checkpoint = RealClock::Default()->NowMicros();
  for (;;) {
    {
      // Hand-rolled deadline loop (not the predicate overload) so the
      // guarded read of stopping_ stays visible to the analysis.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.anti_entropy_interval_micros);
      MutexLock lock(thread_mu_);
      while (!stopping_) {
        if (cv_.wait_until(thread_mu_, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (stopping_) return;
    }
    NodeId peer = options_.peers[next_peer];
    next_peer = (next_peer + 1) % options_.peers.size();
    Status s = PullFrom(peer);
    if (!s.ok() && !s.IsUnavailable()) {
      EPI_LOG(kWarning) << "node " << id_ << ": anti-entropy pull from "
                        << peer << " failed: " << s.ToString();
    }
    if (durable_ != nullptr && options_.checkpoint_interval_micros > 0) {
      TimeMicros now = RealClock::Default()->NowMicros();
      if (now - last_checkpoint >= options_.checkpoint_interval_micros) {
        Status cp = Checkpoint();
        if (!cp.ok()) {
          EPI_LOG(kWarning) << "node " << id_
                            << ": background checkpoint failed: "
                            << cp.ToString();
        }
        last_checkpoint = now;
      }
    }
  }
}

void ReplicaServer::RunStriped(
    std::vector<std::pair<size_t, std::function<void()>>> work) {
  const size_t n = work.size();
  if (n == 0) return;
  if (n == 1) {
    MutexLock lock(shard_mutex(work[0].first));
    work[0].second();
    return;
  }
  // One claim flag per entry; the shard mutex makes the claim + run
  // exclusive, the flag makes it exactly-once.
  auto claimed = std::make_unique<std::atomic<bool>[]>(n);
  for (size_t i = 0; i < n; ++i) {
    claimed[i].store(false, std::memory_order_relaxed);
  }

  auto participant = [this, &work, &claimed, n] {
    for (;;) {
      bool any_unclaimed = false;
      bool progressed = false;
      for (size_t i = 0; i < n; ++i) {
        if (claimed[i].load(std::memory_order_acquire)) continue;
        any_unclaimed = true;
        if (!shard_mutex(work[i].first).try_lock()) continue;
        MutexLock lock(shard_mutex(work[i].first), kAdoptLock);
        if (claimed[i].exchange(true, std::memory_order_acq_rel)) continue;
        work[i].second();
        progressed = true;
      }
      if (!any_unclaimed) return;
      if (progressed) continue;
      // Every unclaimed shard is currently held (by a writer or another
      // participant): block on the first one so the batch always advances.
      for (size_t i = 0; i < n; ++i) {
        if (claimed[i].load(std::memory_order_acquire)) continue;
        MutexLock lock(shard_mutex(work[i].first));
        if (claimed[i].exchange(true, std::memory_order_acq_rel)) continue;
        work[i].second();
        break;
      }
    }
  };

  const size_t participants = std::min(pool_.threads() + 1, n);
  if (participants <= 1) {
    participant();
    return;
  }
  std::vector<std::function<void()>> tasks(participants, participant);
  pool_.Run(std::move(tasks));
}

ShardedPropagationResponse ReplicaServer::ServeShardedPropagation(
    const ShardedPropagationRequest& req) {
  ShardedReplica& rep = sharded();
  const size_t num_shards = rep.num_shards();
  const bool v3 = req.wire_version >= kWireV3;
  ShardedPropagationResponse resp;
  if (v3) resp.wire_version = kWireV3;
  resp.num_shards = static_cast<uint32_t>(num_shards);
  if (req.shard_dbvvs.size() != num_shards) {
    // Topology mismatch: reply "current" carrying our shard count so the
    // requester rejects it instead of applying garbage.
    return resp;
  }
  // Each shard builds and encodes its reply under only its own lock; the
  // per-shard bodies are then stitched together serially. On the v3 path
  // each worker serves its shard zero-copy (the view borrows the shard's
  // store, so encoding completes under that shard's lock — the §4.1/§8
  // discipline the views rely on) straight into a pooled buffer.
  wire::V3SegmentOptions opts;
  opts.compress = v3 && (req.flags & kPropFlagAcceptCompressed) != 0;
  std::vector<std::string> bodies(num_shards);
  std::vector<char> has_body(num_shards, 0);
  std::vector<std::pair<size_t, std::function<void()>>> work;
  work.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    work.emplace_back(k, [this, &rep, &req, &opts, &bodies, &has_body, v3,
                          k] {
      if (v3) {
        const PropagationResponseView& view = rep.HandleShardPropagationView(
            k, PropagationRequest{req.requester, req.shard_dbvvs[k]});
        if (view.you_are_current) return;  // constructs nothing at all
        bodies[k] = buffer_pool_.Get();
        wire::EncodeShardSegmentBodyV3(view, rep.shard(k).dbvv(), opts,
                                       &buffer_pool_, &bodies[k]);
      } else {
        PropagationResponse shard_resp = rep.HandleShardPropagation(
            k, PropagationRequest{req.requester, req.shard_dbvvs[k]});
        if (shard_resp.you_are_current) return;
        bodies[k] = wire::EncodeShardSegmentBody(shard_resp);
      }
      has_body[k] = 1;
    });
  }
  RunStriped(std::move(work));
  for (size_t k = 0; k < num_shards; ++k) {
    if (has_body[k] != 0) {
      resp.segments.push_back(ShardedPropagationSegment{
          static_cast<uint32_t>(k), std::move(bodies[k])});
    }
  }
  return resp;
}

Status ReplicaServer::AcceptShardedPropagation(
    const ShardedPropagationResponse& resp) {
  ShardedReplica& rep = sharded();
  if (resp.num_shards != rep.num_shards()) {
    return Status::InvalidArgument(
        "peer runs " + std::to_string(resp.num_shards) + " shards, we run " +
        std::to_string(rep.num_shards()));
  }
  for (const ShardedPropagationSegment& seg : resp.segments) {
    if (seg.shard >= rep.num_shards()) {
      return Status::InvalidArgument("segment shard out of range");
    }
  }
  // Each segment decodes and applies under only its shard's lock; the
  // segments name distinct shards (the codec enforces strictly increasing
  // indices), so the entries share nothing but the scheduler. v3 segments
  // decode zero-copy: the views (string_views into the segment bytes,
  // IVVs in the per-segment storage) are consumed by the shard's accept
  // before the worker moves on, so nothing outlives its backing.
  const bool v3 = resp.wire_version >= kWireV3;
  std::vector<Status> statuses(resp.segments.size());
  std::vector<wire::SegmentViewStorage> storages(v3 ? resp.segments.size()
                                                    : 0);
  std::vector<std::pair<size_t, std::function<void()>>> work;
  work.reserve(resp.segments.size());
  for (size_t i = 0; i < resp.segments.size(); ++i) {
    const ShardedPropagationSegment& seg = resp.segments[i];
    work.emplace_back(seg.shard, [this, &rep, &seg, &statuses, &storages, v3,
                                  i] {
      if (v3) {
        if (durable_ != nullptr) {
          statuses[i] =
              durable_->AcceptShardPropagationSegmentV3(seg.shard, seg.body);
          return;
        }
        PropagationResponseView view;
        Status s =
            wire::DecodeShardSegmentBodyV3(seg.body, &storages[i], &view);
        statuses[i] = s.ok() ? rep.AcceptShardPropagation(seg.shard, view) : s;
        return;
      }
      Result<PropagationResponse> decoded =
          wire::DecodeShardSegmentBody(seg.body);
      if (!decoded.ok()) {
        statuses[i] = decoded.status();
        return;
      }
      statuses[i] = durable_ != nullptr
                        ? durable_->AcceptShardPropagation(seg.shard, *decoded)
                        : rep.AcceptShardPropagation(seg.shard, *decoded);
    });
  }
  RunStriped(std::move(work));
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

std::string ReplicaServer::HandleRequest(std::string_view request) {
  Result<Message> decoded = net::Decode(request);
  if (!decoded.ok()) return EncodeStatusReply(decoded.status());
  Message& msg = *decoded;

  if (auto* sharded_req = std::get_if<ShardedPropagationRequest>(&msg)) {
    if (sharded_req->wire_version >= kWireV3 && !options_.enable_wire_v3) {
      // Emulate a pre-v3 node: its codec would have failed on tag 17 with
      // exactly this error reply — the requester's fallback signal.
      return EncodeStatusReply(Status::Corruption("unknown message tag 17"));
    }
    Message reply(ServeShardedPropagation(*sharded_req));
    std::string frame = net::Encode(reply);
    // v3 segment bodies came from the buffer pool; recycle their capacity
    // now that the frame owns a copy.
    auto& served = std::get<ShardedPropagationResponse>(reply);
    if (served.wire_version >= kWireV3) {
      for (ShardedPropagationSegment& seg : served.segments) {
        buffer_pool_.Put(std::move(seg.body));
      }
    }
    return frame;
  }
  if (auto* prop_req = std::get_if<PropagationRequest>(&msg)) {
    // Legacy whole-database handshake (wire v1): only meaningful against a
    // single-shard server, where shard 0 *is* the database.
    if (sharded().num_shards() != 1) {
      return EncodeStatusReply(Status::InvalidArgument(
          "server is sharded; use the sharded propagation handshake"));
    }
    MutexLock lock(shard_mutex(0));
    return net::Encode(
        Message(sharded().HandleShardPropagation(0, *prop_req)));
  }
  if (auto* oob_req = std::get_if<OobRequest>(&msg)) {
    const size_t k = sharded().ShardOf(oob_req->item_name);
    MutexLock lock(shard_mutex(k));
    return net::Encode(Message(sharded().HandleOobRequest(*oob_req)));
  }
  if (auto* update = std::get_if<ClientUpdateRequest>(&msg)) {
    return EncodeStatusReply(Update(update->item_name, update->value));
  }
  if (auto* del = std::get_if<net::ClientDeleteRequest>(&msg)) {
    return EncodeStatusReply(Delete(del->item_name));
  }
  if (auto* read = std::get_if<ClientReadRequest>(&msg)) {
    Result<std::string> value = Read(read->item_name);
    if (!value.ok()) return EncodeStatusReply(value.status());
    return EncodeStatusReply(Status::OK(), std::move(*value));
  }
  if (std::get_if<net::ClientStatsRequest>(&msg) != nullptr) {
    return EncodeStatusReply(Status::OK(), Stats());
  }
  if (std::get_if<net::ClientResetStatsRequest>(&msg) != nullptr) {
    // Snapshot the summary and zero the counters in one critical section
    // over all shards, so no concurrent operation falls between the two.
    std::string summary;
    {
      AllShardsLock lock(*this);
      summary = sharded().DebugString();
      sharded().ResetStats();
    }
    return EncodeStatusReply(Status::OK(), std::move(summary));
  }
  if (auto* scan = std::get_if<net::ClientScanRequest>(&msg)) {
    auto items = Scan(scan->prefix, static_cast<size_t>(scan->limit));
    return EncodeStatusReply(Status::OK(), net::EncodeScanListing(items));
  }
  if (auto* sync = std::get_if<net::ClientSyncRequest>(&msg)) {
    if (sync->peer == id_) {
      return EncodeStatusReply(Status::InvalidArgument("cannot self-sync"));
    }
    return EncodeStatusReply(PullFrom(sync->peer));
  }
  if (std::get_if<net::ClientCheckpointRequest>(&msg) != nullptr) {
    return EncodeStatusReply(Checkpoint());
  }
  if (auto* fetch = std::get_if<ClientOobFetchRequest>(&msg)) {
    Status s = OobFetch(fetch->from_peer, fetch->item_name);
    if (!s.ok()) return EncodeStatusReply(s);
    Result<std::string> value = Read(fetch->item_name);
    if (!value.ok()) return EncodeStatusReply(value.status());
    return EncodeStatusReply(Status::OK(), std::move(*value));
  }
  return EncodeStatusReply(
      Status::InvalidArgument("message type not servable"));
}

Status ReplicaServer::Update(std::string_view item, std::string_view value) {
  const size_t k = sharded().ShardOf(item);
  MutexLock lock(shard_mutex(k));
  if (durable_ != nullptr) return durable_->Update(item, value);
  return memory_->Update(item, value);
}

Status ReplicaServer::Delete(std::string_view item) {
  const size_t k = sharded().ShardOf(item);
  MutexLock lock(shard_mutex(k));
  if (durable_ != nullptr) return durable_->Delete(item);
  return memory_->Delete(item);
}

Result<std::string> ReplicaServer::Read(std::string_view item) {
  const size_t k = sharded().ShardOf(item);
  MutexLock lock(shard_mutex(k));
  return sharded().Read(item);
}

Status ReplicaServer::ResolveConflict(std::string_view item,
                                      const VersionVector& remote_vv,
                                      std::string_view value) {
  const size_t k = sharded().ShardOf(item);
  MutexLock lock(shard_mutex(k));
  if (durable_ != nullptr) {
    return durable_->ResolveConflict(item, remote_vv, value);
  }
  return memory_->ResolveConflict(item, remote_vv, value);
}

std::vector<std::pair<std::string, std::string>> ReplicaServer::Scan(
    std::string_view prefix, size_t limit) const {
  // One shard at a time: a scan is a convenience listing, not a consistent
  // whole-database snapshot, so it does not stall writers on all shards.
  std::vector<std::pair<std::string, std::string>> out;
  const ShardedReplica& rep = sharded();
  for (size_t k = 0; k < rep.num_shards(); ++k) {
    MutexLock lock(shard_mutex(k));
    auto part = rep.shard(k).Scan(prefix, /*limit=*/0);
    out.insert(out.end(), std::make_move_iterator(part.begin()),
               std::make_move_iterator(part.end()));
  }
  std::sort(out.begin(), out.end());
  if (limit > 0 && out.size() > limit) out.resize(limit);
  return out;
}

std::string ReplicaServer::Stats() const {
  const ShardedReplica& rep = sharded();
  AllShardsLock lock(*this);
  return rep.DebugString();
}

ReplicaStats ReplicaServer::TotalStats(bool reset) {
  ShardedReplica& rep = sharded();
  AllShardsLock lock(*this);
  ReplicaStats total = rep.TotalStats();
  if (reset) rep.ResetStats();
  return total;
}

Status ReplicaServer::PullFrom(NodeId peer) {
  // Build the per-shard DBVV handshake taking one shard lock at a time,
  // release everything for the RPC, and merge the response per shard.
  // Shards mutated between build and accept simply make the peer ship a
  // little extra; AcceptPropagation is idempotent about duplicates.
  ShardedReplica& rep = sharded();
  const size_t num_shards = rep.num_shards();
  ShardedPropagationRequest req;
  req.requester = id_;
  req.shard_dbvvs.resize(num_shards);
  // Snapshot each shard's DBVV, free shards first (try_lock) so a shard
  // held by a writer doesn't stall the sweep; block only on the stragglers.
  std::vector<char> got(num_shards, 0);
  size_t remaining = num_shards;
  while (remaining > 0) {
    bool progressed = false;
    for (size_t k = 0; k < num_shards; ++k) {
      if (got[k] != 0) continue;
      if (!shard_mutex(k).try_lock()) continue;
      MutexLock lock(shard_mutex(k), kAdoptLock);
      req.shard_dbvvs[k] = rep.shard(k).dbvv();
      got[k] = 1;
      --remaining;
      progressed = true;
    }
    if (progressed) continue;
    for (size_t k = 0; k < num_shards; ++k) {
      if (got[k] != 0) continue;
      MutexLock lock(shard_mutex(k));
      req.shard_dbvvs[k] = rep.shard(k).dbvv();
      got[k] = 1;
      --remaining;
      break;
    }
  }
  // Version negotiation: try v3 unless disabled or the sticky cache says
  // this peer already rejected it; a v3 rejection (the error reply an old
  // node's codec sends for tag 17) downgrades the cache and retries the
  // same handshake as v2.
  const bool peer_known_v2 =
      peer < peer_wire_count_ &&
      peer_wire_[peer].load(std::memory_order_relaxed) == kWireV2;
  bool trying_v3 = options_.enable_wire_v3 && !peer_known_v2;
  if (trying_v3) {
    req.wire_version = kWireV3;
    if (options_.accept_compressed_segments) {
      req.flags |= kPropFlagAcceptCompressed;
    }
  }
  for (;;) {
    Result<std::string> wire = transport_->Call(peer, net::Encode(Message(req)));
    if (!wire.ok()) return wire.status();
    Result<Message> decoded = net::Decode(*wire);
    if (!decoded.ok()) return decoded.status();
    if (auto* resp = std::get_if<ShardedPropagationResponse>(&*decoded)) {
      if (trying_v3 && peer < peer_wire_count_) {
        peer_wire_[peer].store(kWireV3, std::memory_order_relaxed);
      }
      return AcceptShardedPropagation(*resp);
    }
    if (trying_v3 && std::get_if<ClientReply>(&*decoded) != nullptr) {
      if (peer < peer_wire_count_) {
        peer_wire_[peer].store(kWireV2, std::memory_order_relaxed);
      }
      trying_v3 = false;
      req.wire_version = kWireV2;
      req.flags = 0;
      continue;
    }
    return Status::Corruption("peer sent a non-propagation reply");
  }
}

Status ReplicaServer::OobFetch(NodeId peer, std::string_view item) {
  const size_t k = sharded().ShardOf(item);
  OobRequest req;
  {
    MutexLock lock(shard_mutex(k));
    req = sharded().BuildOobRequest(item);
  }
  Result<std::string> wire =
      transport_->Call(peer, net::Encode(Message(std::move(req))));
  if (!wire.ok()) return wire.status();
  Result<Message> decoded = net::Decode(*wire);
  if (!decoded.ok()) return decoded.status();
  auto* resp = std::get_if<OobResponse>(&*decoded);
  if (resp == nullptr) {
    return Status::Corruption("peer sent a non-OOB reply");
  }
  MutexLock lock(shard_mutex(k));
  if (durable_ != nullptr) return durable_->AcceptOobResponse(*resp);
  return memory_->AcceptOobResponse(*resp);
}

void ReplicaServer::WithReplica(
    const std::function<void(const ShardedReplica&)>& fn) const {
  const ShardedReplica& rep = sharded();
  AllShardsLock lock(*this);
  fn(rep);
}

Status ReplicaServer::Checkpoint() {
  if (durable_ == nullptr) {
    return Status::FailedPrecondition("server runs in-memory");
  }
  // Shard by shard: each checkpoint is internally consistent (it is one
  // shard's whole protocol state), so no global barrier is needed.
  Status first_error = Status::OK();
  for (size_t k = 0; k < durable_->num_shards(); ++k) {
    MutexLock lock(shard_mutex(k));
    Status s = durable_->CheckpointShard(k);
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

uint64_t ReplicaServer::conflicts_detected() const {
  const ShardedReplica& rep = sharded();
  uint64_t total = 0;
  for (size_t k = 0; k < rep.num_shards(); ++k) {
    MutexLock lock(shard_mutex(k));
    total += rep.shard(k).stats().conflicts_detected;
  }
  return total;
}

// ---------------------------------------------------------------------------
// ReplicaClient.

namespace {
Result<std::string> CallForReply(net::Transport* transport, NodeId server,
                                 Message msg) {
  Result<std::string> wire = transport->Call(server, net::Encode(msg));
  if (!wire.ok()) return wire.status();
  Result<Message> decoded = net::Decode(*wire);
  if (!decoded.ok()) return decoded.status();
  auto* reply = std::get_if<ClientReply>(&*decoded);
  if (reply == nullptr) return Status::Corruption("expected a client reply");
  return ReplyToResult(*reply);
}
}  // namespace

Status ReplicaClient::Update(std::string_view item, std::string_view value) {
  Result<std::string> r = CallForReply(
      transport_, server_,
      Message(ClientUpdateRequest{std::string(item), std::string(value)}));
  return r.status();
}

Status ReplicaClient::Delete(std::string_view item) {
  Result<std::string> r =
      CallForReply(transport_, server_,
                   Message(net::ClientDeleteRequest{std::string(item)}));
  return r.status();
}

Result<std::string> ReplicaClient::Read(std::string_view item) {
  return CallForReply(transport_, server_,
                      Message(ClientReadRequest{std::string(item)}));
}

Result<std::string> ReplicaClient::OobRead(NodeId from_peer,
                                           std::string_view item) {
  return CallForReply(
      transport_, server_,
      Message(ClientOobFetchRequest{from_peer, std::string(item)}));
}

Result<std::vector<std::pair<std::string, std::string>>> ReplicaClient::Scan(
    std::string_view prefix, uint64_t limit) {
  Result<std::string> payload = CallForReply(
      transport_, server_,
      Message(net::ClientScanRequest{std::string(prefix), limit}));
  if (!payload.ok()) return payload.status();
  return net::DecodeScanListing(*payload);
}

Result<std::string> ReplicaClient::Stats() {
  return CallForReply(transport_, server_,
                      Message(net::ClientStatsRequest{}));
}

Result<std::string> ReplicaClient::ResetStats() {
  return CallForReply(transport_, server_,
                      Message(net::ClientResetStatsRequest{}));
}

Status ReplicaClient::TriggerSync(NodeId peer) {
  return CallForReply(transport_, server_,
                      Message(net::ClientSyncRequest{peer}))
      .status();
}

Status ReplicaClient::TriggerCheckpoint() {
  return CallForReply(transport_, server_,
                      Message(net::ClientCheckpointRequest{}))
      .status();
}

}  // namespace epidemic::server
