#include "server/replica_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "core/wire.h"
#include "net/codec.h"

namespace epidemic::server {

using net::ClientOobFetchRequest;
using net::ClientReadRequest;
using net::ClientReply;
using net::ClientUpdateRequest;
using net::Message;
using runtime::AssertShardContext;
using runtime::ExclusiveToken;
using runtime::ShardReadCache;
using runtime::ShardToken;
using runtime::TaskKind;

namespace {

std::string EncodeStatusReply(const Status& s, std::string payload = "") {
  ClientReply reply;
  reply.code = static_cast<uint8_t>(s.code());
  // Only the message crosses the wire; the client rebuilds the Status from
  // the code, so no "NotFound: NotFound:" double prefixes.
  reply.payload = s.ok() ? std::move(payload) : s.message();
  return net::Encode(Message(std::move(reply)));
}

/// Converts a decoded ClientReply back into a Status/value pair.
Result<std::string> ReplyToResult(const ClientReply& reply) {
  if (reply.code == 0) return reply.payload;
  return Status(static_cast<StatusCode>(reply.code), reply.payload);
}

Status NotFoundFor(std::string_view item) {
  // Must match Replica::Read's wording: optimistic hits on absent items
  // return exactly what the task path would have.
  return Status::NotFound("no item named '" + std::string(item) + "'");
}

runtime::ShardScheduler::Options SchedulerOptions(size_t num_shards,
                                                  size_t workers,
                                                  size_t read_cache_slots) {
  runtime::ShardScheduler::Options opts;
  opts.num_shards = num_shards;
  opts.workers = workers;
  opts.read_cache_slots = read_cache_slots;
  return opts;
}

}  // namespace

ReplicaServer::ReplicaServer(NodeId id, size_t num_nodes,
                             net::Transport* transport, Options options)
    : id_(id),
      transport_(transport),
      options_(std::move(options)),
      memory_(std::make_unique<ShardedReplica>(
          id, num_nodes, options_.num_shards, &listener_)) {
  sched_ = std::make_unique<runtime::ShardScheduler>(SchedulerOptions(
      memory_->num_shards(), options_.ae_workers, options_.read_cache_slots));
  InitShardList();
  peer_wire_count_ = num_nodes;
  peer_wire_ = std::make_unique<std::atomic<uint8_t>[]>(peer_wire_count_);
  peer_epoch_ = std::make_unique<std::atomic<uint64_t>[]>(peer_wire_count_);
}

ReplicaServer::ReplicaServer(std::unique_ptr<JournaledShardedReplica> durable,
                             net::Transport* transport, Options options)
    : id_(durable->view().id()),
      transport_(transport),
      options_(std::move(options)),
      durable_(std::move(durable)) {
  sched_ = std::make_unique<runtime::ShardScheduler>(SchedulerOptions(
      durable_->num_shards(), options_.ae_workers, options_.read_cache_slots));
  InitShardList();
  peer_wire_count_ = durable_->view().num_nodes();
  peer_wire_ = std::make_unique<std::atomic<uint8_t>[]>(peer_wire_count_);
  peer_epoch_ = std::make_unique<std::atomic<uint64_t>[]>(peer_wire_count_);
}

ReplicaServer::~ReplicaServer() { Stop(); }

void ReplicaServer::Start() {
  if (options_.anti_entropy_interval_micros <= 0 || options_.peers.empty()) {
    return;
  }
  MutexLock lock(thread_mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  ae_thread_ = std::thread([this] { AntiEntropyLoop(); });
}

void ReplicaServer::Stop() {
  {
    MutexLock lock(thread_mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (ae_thread_.joinable()) ae_thread_.join();
  MutexLock lock(thread_mu_);
  started_ = false;
}

void ReplicaServer::AntiEntropyLoop() {
  size_t next_peer = 0;
  TimeMicros last_checkpoint = RealClock::Default()->NowMicros();
  for (;;) {
    {
      // Hand-rolled deadline loop (not the predicate overload) so the
      // guarded read of stopping_ stays visible to the analysis.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.anti_entropy_interval_micros);
      MutexLock lock(thread_mu_);
      while (!stopping_) {
        if (cv_.wait_until(thread_mu_, deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (stopping_) return;
    }
    NodeId peer = options_.peers[next_peer];
    next_peer = (next_peer + 1) % options_.peers.size();
    Status s = PullFrom(peer);
    if (!s.ok() && !s.IsUnavailable()) {
      EPI_LOG(kWarning) << "node " << id_ << ": anti-entropy pull from "
                        << peer << " failed: " << s.ToString();
    }
    if (durable_ != nullptr && options_.checkpoint_interval_micros > 0) {
      TimeMicros now = RealClock::Default()->NowMicros();
      if (now - last_checkpoint >= options_.checkpoint_interval_micros) {
        Status cp = Checkpoint();
        if (!cp.ok()) {
          EPI_LOG(kWarning) << "node " << id_
                            << ": background checkpoint failed: "
                            << cp.ToString();
        }
        last_checkpoint = now;
      }
    }
  }
}

ShardedPropagationResponse ReplicaServer::ServeShardedPropagation(
    const ShardedPropagationRequest& req) {
  ShardedReplica& rep = sharded();
  const size_t num_shards = rep.num_shards();
  const bool v3 = req.wire_version >= kWireV3;
  ShardedPropagationResponse resp;
  if (v3) resp.wire_version = kWireV3;
  resp.num_shards = static_cast<uint32_t>(num_shards);
  if (v3) {
    // Sampled *before* any shard is served: a mutation racing with the
    // serve lands with a later epoch, so the requester's next probe
    // mismatches and re-pulls — stale probes are conservative, never
    // lossy (every mutation goes through a mutating task, which is
    // exactly what bumps the epoch).
    resp.epoch = sched_->MutationEpoch();
    if ((req.flags & kPropFlagEpochProbe) != 0) {
      if (req.last_epoch == resp.epoch) return resp;  // O(1) quiescent round
      resp.resp_flags = kPropRespFlagResend;
      return resp;
    }
  }
  if (req.shard_dbvvs.size() != num_shards) {
    // Topology mismatch: reply "current" carrying our shard count so the
    // requester rejects it instead of applying garbage.
    return resp;
  }
  // One anti-entropy round is S tasks fanned out to the shard owners and
  // joined — not S lock acquisitions. Each shard builds and encodes its
  // reply inside its own single-writer section; the per-shard bodies are
  // then stitched together serially. On the v3 path each task serves its
  // shard zero-copy (the view borrows the shard's store, so encoding
  // completes inside that shard's section — the §4.1/§8 discipline the
  // views rely on) straight into a pooled buffer.
  wire::V3SegmentOptions opts;
  opts.compress = v3 && (req.flags & kPropFlagAcceptCompressed) != 0;
  std::vector<std::string> bodies(num_shards);
  std::vector<char> has_body(num_shards, 0);
  sched_->ExecuteBatchIndexed(
      AllShardsList(), TaskKind::kServe, /*mutates=*/false,
      [this, &rep, &req, &opts, &bodies, &has_body, v3](const ShardToken& token,
                                                        size_t k) {
        AssertShardContext(token);
        if (v3) {
          const PropagationResponseView& view = rep.HandleShardPropagationView(
              k, PropagationRequest{req.requester, req.shard_dbvvs[k]});
          if (view.you_are_current) return;
          bodies[k] = buffer_pool_.Get();
          wire::EncodeShardSegmentBodyV3(view, rep.shard(k).dbvv(), opts,
                                         &buffer_pool_, &bodies[k]);
        } else {
          PropagationResponse shard_resp = rep.HandleShardPropagation(
              k, PropagationRequest{req.requester, req.shard_dbvvs[k]});
          if (shard_resp.you_are_current) return;
          bodies[k] = wire::EncodeShardSegmentBody(shard_resp);
        }
        has_body[k] = 1;
      });
  for (size_t k = 0; k < num_shards; ++k) {
    if (has_body[k] != 0) {
      resp.segments.push_back(ShardedPropagationSegment{
          static_cast<uint32_t>(k), std::move(bodies[k])});
    }
  }
  return resp;
}

void ReplicaServer::ServeShardedPropagationPartsV3(
    const ShardedPropagationRequest& req, std::vector<std::string>* parts) {
  ShardedReplica& rep = sharded();
  const size_t num_shards = rep.num_shards();
  parts->clear();
  parts->reserve(1 + num_shards);
  // parts[0]: the envelope. The segment count precedes the segments but is
  // only known after the serve; reserve a padded-varint slot and patch it
  // in at the end. Same trick for each segment's length prefix (5 bytes
  // covers the 1 GiB segment cap). The decoders read exactly these two
  // fields with the padded getters (GetVarint64Padded/GetStringViewPadded)
  // — every other wire varint is canonical-only.
  ByteWriter env(buffer_pool_.Get());
  env.PutU8(
      static_cast<uint8_t>(net::MessageType::kShardedPropagationResponseV3));
  env.PutU8(0);                              // resp_flags: plain full reply
  env.PutVarint64(sched_->MutationEpoch());  // sampled before any shard serves
  env.PutVarint64(num_shards);
  const size_t count_pos = env.size();
  env.PutPaddedVarint(0, 3);
  uint64_t count = 0;
  size_t k = 0;
  // Each stale shard's piece is self-contained — [shard varint][padded
  // length][body] — built in a pooled buffer inside that shard's
  // single-writer section, so a vectored transport sends the pieces with
  // no stitch copy and Flatten() reproduces the contiguous frame bytes.
  // Execute runs the tasks one at a time (serial scheduler: inline behind
  // the gate, or joined before the loop advances), so sharing `parts`,
  // `count` and `k` across them is sound. One std::function is reused for
  // every shard (it reads `k` through the reference capture), so the loop
  // allocates nothing beyond the pooled chunk buffers.
  const std::function<void(const ShardToken&)> serve_one =
      [&](const ShardToken& token) {
        AssertShardContext(token);
        const PropagationResponseView& view = rep.HandleShardPropagationView(
            k, PropagationRequest{req.requester, req.shard_dbvvs[k]});
        if (view.you_are_current) return;
        ++count;
        ByteWriter cw(buffer_pool_.Get());
        cw.PutVarint64(k);
        const size_t len_pos = cw.size();
        cw.PutPaddedVarint(0, 5);
        const size_t body_start = cw.size();
        wire::EncodeShardSegmentBodyV3Into(cw, view, rep.shard(k).dbvv());
        cw.OverwritePaddedVarint(len_pos, cw.size() - body_start, 5);
        parts->push_back(cw.Release());
      };
  for (k = 0; k < num_shards; ++k) {
    sched_->Execute(k, TaskKind::kServe, /*mutates=*/false, serve_one);
  }
  env.OverwritePaddedVarint(count_pos, count, 3);
  parts->insert(parts->begin(), env.Release());
}

uint64_t ReplicaServer::ServeDigest(const ShardedPropagationRequest& req) {
  // FNV-1a, mixed 64 bits at a time. Collisions only cost correctness of
  // the *hit rate*, never of the data: a colliding digest still has to
  // match the current mutation epoch, and the worst case is replaying a
  // reply built for a different request DBVV — which the accept side
  // treats as ordinary duplicate shipping (idempotent). To keep even that
  // cosmetic risk negligible the full entry stores the digest of record
  // and the slot index is taken from it, so two requests disagree only on
  // a full 64-bit collision.
  uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(req.flags);
  mix(req.shard_dbvvs.size());
  for (const VersionVector& vv : req.shard_dbvvs) {
    mix(vv.size());
    for (NodeId j = 0; j < vv.size(); ++j) mix(vv[j]);
  }
  return h;
}

bool ReplicaServer::LookupServeCache(uint64_t digest, uint64_t epoch,
                                     net::VectoredReply* reply) {
  std::shared_ptr<const CachedServeFrame> entry;
  {
    MutexLock lock(serve_cache_mu_);
    entry = serve_cache_[digest % kServeCacheSlots];
  }
  if (entry == nullptr || entry->digest != digest || entry->epoch != epoch) {
    return false;
  }
  // Aliasing shared_ptr: the reply keeps the whole entry alive but the
  // transport only sees the immutable pieces.
  const std::vector<std::string>* parts = &entry->parts;
  reply->shared =
      std::shared_ptr<const std::vector<std::string>>(std::move(entry), parts);
  return true;
}

void ReplicaServer::InsertServeCache(
    std::shared_ptr<const CachedServeFrame> entry) {
  const size_t slot = entry->digest % kServeCacheSlots;
  MutexLock lock(serve_cache_mu_);
  serve_cache_[slot] = std::move(entry);
}

Status ReplicaServer::AcceptShardedPropagation(
    const ShardedPropagationResponse& resp) {
  std::vector<wire::ShardedSegmentView> segments;
  segments.reserve(resp.segments.size());
  for (const ShardedPropagationSegment& seg : resp.segments) {
    segments.push_back(wire::ShardedSegmentView{seg.shard, seg.body});
  }
  return AcceptShardedSegments(resp.num_shards, segments,
                               resp.wire_version >= kWireV3);
}

Status ReplicaServer::AcceptShardedSegments(
    uint32_t num_shards, const std::vector<wire::ShardedSegmentView>& segments,
    bool v3) {
  ShardedReplica& rep = sharded();
  if (num_shards != rep.num_shards()) {
    return Status::InvalidArgument(
        "peer runs " + std::to_string(num_shards) + " shards, we run " +
        std::to_string(rep.num_shards()));
  }
  for (const wire::ShardedSegmentView& seg : segments) {
    if (seg.shard >= rep.num_shards()) {
      return Status::InvalidArgument("segment shard out of range");
    }
  }
  // Each segment decodes and applies as one task on its shard; the
  // segments name distinct shards (the codec enforces strictly increasing
  // indices), so the tasks share nothing but the join. v3 segments decode
  // zero-copy: the views (string_views into the segment bytes, IVVs in
  // the per-segment storage) are consumed by the shard's accept inside
  // the task, so nothing outlives its backing.
  std::vector<Status> statuses(segments.size());
  std::vector<wire::SegmentViewStorage> storages(v3 ? segments.size() : 0);
  std::vector<size_t> shards;
  shards.reserve(segments.size());
  for (const wire::ShardedSegmentView& seg : segments) {
    shards.push_back(seg.shard);
  }
  sched_->ExecuteBatchIndexed(
      shards, TaskKind::kAccept, /*mutates=*/true,
      [this, &rep, &segments, &statuses, &storages, v3](const ShardToken& token,
                                                        size_t i) {
        AssertShardContext(token);
        const wire::ShardedSegmentView& seg = segments[i];
        if (v3) {
          if (durable_ != nullptr) {
            statuses[i] =
                durable_->AcceptShardPropagationSegmentV3(seg.shard, seg.body);
            return;
          }
          PropagationResponseView view;
          Status s =
              wire::DecodeShardSegmentBodyV3(seg.body, &storages[i], &view);
          statuses[i] =
              s.ok() ? rep.AcceptShardPropagation(seg.shard, view) : s;
          return;
        }
        Result<PropagationResponse> decoded =
            wire::DecodeShardSegmentBody(seg.body);
        if (!decoded.ok()) {
          statuses[i] = decoded.status();
          return;
        }
        statuses[i] = durable_ != nullptr
                          ? durable_->AcceptShardPropagation(seg.shard, *decoded)
                          : rep.AcceptShardPropagation(seg.shard, *decoded);
      });
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

std::string ReplicaServer::HandleRequest(std::string_view request) {
  net::VectoredReply reply;
  HandleRequestV(request, &reply);
  // Flatten reproduces the exact frame bytes a contiguous encoder would
  // have produced, so non-vectored transports (InProc, the simulator) see
  // no difference — and still exercise the serve cache.
  return reply.Flatten();
}

void ReplicaServer::HandleRequestV(std::string_view request,
                                   net::VectoredReply* reply) {
  reply->Recycle();
  // Every non-vectored branch replies as one owned piece.
  const auto respond = [reply](std::string frame) {
    reply->owned.push_back(std::move(frame));
  };
  Result<Message> decoded = net::Decode(request);
  if (!decoded.ok()) return respond(EncodeStatusReply(decoded.status()));
  Message& msg = *decoded;

  if (auto* sharded_req = std::get_if<ShardedPropagationRequest>(&msg)) {
    // Boundary width check: shard DBVVs from the network must match this
    // cluster's node count before they reach the width-EPI_CHECKed
    // VersionVector comparisons. A wrong-width vector is a hostile or
    // misconfigured peer, not a programming error — reply, don't abort.
    // (Epoch probes carry zero shard DBVVs; the loop is vacuous.)
    for (const VersionVector& vv : sharded_req->shard_dbvvs) {
      if (vv.size() != sharded().num_nodes()) {
        return respond(EncodeStatusReply(
            Status::InvalidArgument("shard DBVV of wrong width")));
      }
    }
    if (sharded_req->wire_version >= kWireV3 && !options_.enable_wire_v3) {
      // Emulate a pre-v3 node: its codec would have failed on tag 17 with
      // exactly this error reply — the requester's fallback signal.
      return respond(
          EncodeStatusReply(Status::Corruption("unknown message tag 17")));
    }
    if (sharded_req->wire_version >= kWireV3 && !sched_->Parallel() &&
        (sharded_req->flags &
         (kPropFlagEpochProbe | kPropFlagAcceptCompressed)) == 0 &&
        sharded_req->shard_dbvvs.size() == sharded().num_shards()) {
      // Serial scheduler, plain uncompressed full serve: encode as reply
      // pieces. Probes, topology mismatches and compressed serves keep
      // the generic owned-response path below.
      //
      // Fan-out serve cache: the reply is a pure function of (request
      // flags + shard DBVVs, mutation epoch) — serves are read-only
      // tasks, so they never bump the epoch, and every mutation does.
      // Sample the epoch FIRST: a mutation racing with the lookup can
      // only make the epochs mismatch (miss), never produce a stale hit.
      // A hit skips the serve entirely, which also skips the §4.1
      // requester-frontier recording the serve would have done — that
      // only *lags* the peer-DBVV frontier (stability detection,
      // Theorem 5), it never affects what is shipped, so it is
      // conservative, and the next miss from that peer catches it up.
      const uint64_t epoch0 = sched_->MutationEpoch();
      const uint64_t digest = ServeDigest(*sharded_req);
      if (LookupServeCache(digest, epoch0, reply)) {
        // relaxed: monotonic stats counter, read only for reporting.
        serve_cache_hits_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // relaxed: monotonic stats counter (see above).
      serve_cache_misses_.fetch_add(1, std::memory_order_relaxed);
      auto entry = std::make_shared<CachedServeFrame>();
      entry->digest = digest;
      entry->epoch = epoch0;
      ServeShardedPropagationPartsV3(*sharded_req, &entry->parts);
      if (sched_->MutationEpoch() == epoch0) {
        // No mutating task completed across the serve: the pieces are the
        // epoch0 reply, byte for byte (the epoch is monotonic, so equal
        // endpoints pin every sample in between). Publish for replay.
        const std::vector<std::string>* parts = &entry->parts;
        reply->shared = std::shared_ptr<const std::vector<std::string>>(
            entry, parts);
        InsertServeCache(std::move(entry));
      } else {
        // A mutation raced the serve; the reply is still a correct
        // snapshot to send once, but caching it under epoch0 would be
        // wrong and under the new epoch unverifiable. Send and recycle.
        reply->owned = std::move(entry->parts);
        reply->recycle_pool = &buffer_pool_;
      }
      return;
    }
    Message served_msg(ServeShardedPropagation(*sharded_req));
    std::string frame = net::Encode(served_msg);
    // v3 segment bodies came from the buffer pool; recycle their capacity
    // now that the frame owns a copy.
    auto& served = std::get<ShardedPropagationResponse>(served_msg);
    if (served.wire_version >= kWireV3) {
      for (ShardedPropagationSegment& seg : served.segments) {
        buffer_pool_.Put(std::move(seg.body));
      }
    }
    return respond(std::move(frame));
  }
  if (auto* prop_req = std::get_if<PropagationRequest>(&msg)) {
    if (prop_req->dbvv.size() != sharded().num_nodes()) {
      // Same boundary width check as the sharded handshake above.
      return respond(EncodeStatusReply(
          Status::InvalidArgument("request DBVV of wrong width")));
    }
    // Legacy whole-database handshake (wire v1): only meaningful against a
    // single-shard server, where shard 0 *is* the database.
    if (sharded().num_shards() != 1) {
      return respond(EncodeStatusReply(Status::InvalidArgument(
          "server is sharded; use the sharded propagation handshake")));
    }
    std::string frame;
    sched_->Execute(0, TaskKind::kServe, /*mutates=*/false,
                    [this, prop_req, &frame](const ShardToken& token) {
                      AssertShardContext(token);
                      frame = net::Encode(Message(
                          sharded().HandleShardPropagation(0, *prop_req)));
                    });
    return respond(std::move(frame));
  }
  if (auto* oob_req = std::get_if<OobRequest>(&msg)) {
    const size_t k = sharded().ShardOf(oob_req->item_name);
    std::string frame;
    sched_->Execute(k, TaskKind::kServe, /*mutates=*/false,
                    [this, oob_req, &frame](const ShardToken& token) {
                      AssertShardContext(token);
                      frame = net::Encode(
                          Message(sharded().HandleOobRequest(*oob_req)));
                    });
    return respond(std::move(frame));
  }
  if (auto* update = std::get_if<ClientUpdateRequest>(&msg)) {
    return respond(EncodeStatusReply(Update(update->item_name, update->value)));
  }
  if (auto* del = std::get_if<net::ClientDeleteRequest>(&msg)) {
    return respond(EncodeStatusReply(Delete(del->item_name)));
  }
  if (auto* read = std::get_if<ClientReadRequest>(&msg)) {
    Result<std::string> value = Read(read->item_name);
    if (!value.ok()) return respond(EncodeStatusReply(value.status()));
    return respond(EncodeStatusReply(Status::OK(), std::move(*value)));
  }
  if (std::get_if<net::ClientStatsRequest>(&msg) != nullptr) {
    return respond(EncodeStatusReply(Status::OK(), Stats()));
  }
  if (std::get_if<net::ClientResetStatsRequest>(&msg) != nullptr) {
    // Snapshot the summary and zero the counters inside one cross-shard
    // barrier, so no concurrent operation falls between the two.
    std::string summary;
    sched_->ExecuteExclusive(
        /*mutates=*/false, [this, &summary](const ExclusiveToken& token) {
          AssertShardContext(token);
          summary = sharded().DebugString();
          sharded().ResetStats();
        });
    AppendSchedulerSummary(&summary);
    AppendNetSummary(&summary, /*reset=*/true);
    sched_->Stats(/*reset=*/true);
    // relaxed: stats counter reset; an optimistic hit racing the reset lands
    // on one side or the other, both acceptable for reporting.
    optimistic_read_hits_.store(0, std::memory_order_relaxed);
    return respond(EncodeStatusReply(Status::OK(), std::move(summary)));
  }
  if (auto* scan = std::get_if<net::ClientScanRequest>(&msg)) {
    auto items = Scan(scan->prefix, static_cast<size_t>(scan->limit));
    return respond(
        EncodeStatusReply(Status::OK(), net::EncodeScanListing(items)));
  }
  if (auto* sync = std::get_if<net::ClientSyncRequest>(&msg)) {
    if (sync->peer == id_) {
      return respond(
          EncodeStatusReply(Status::InvalidArgument("cannot self-sync")));
    }
    return respond(EncodeStatusReply(PullFrom(sync->peer)));
  }
  if (std::get_if<net::ClientCheckpointRequest>(&msg) != nullptr) {
    return respond(EncodeStatusReply(Checkpoint()));
  }
  if (auto* fetch = std::get_if<ClientOobFetchRequest>(&msg)) {
    Status s = OobFetch(fetch->from_peer, fetch->item_name);
    if (!s.ok()) return respond(EncodeStatusReply(s));
    Result<std::string> value = Read(fetch->item_name);
    if (!value.ok()) return respond(EncodeStatusReply(value.status()));
    return respond(EncodeStatusReply(Status::OK(), std::move(*value)));
  }
  respond(EncodeStatusReply(
      Status::InvalidArgument("message type not servable")));
}

Status ReplicaServer::Update(std::string_view item, std::string_view value) {
  const size_t k = sharded().ShardOf(item);
  Status status;
  sched_->Execute(k, TaskKind::kLocalUpdate, /*mutates=*/true,
                  [this, item, value, &status](const ShardToken& token) {
                    AssertShardContext(token);
                    status = durable_ != nullptr
                                 ? durable_->Update(item, value)
                                 : memory_->Update(item, value);
                  });
  return status;
}

Status ReplicaServer::Delete(std::string_view item) {
  const size_t k = sharded().ShardOf(item);
  Status status;
  sched_->Execute(k, TaskKind::kLocalUpdate, /*mutates=*/true,
                  [this, item, &status](const ShardToken& token) {
                    AssertShardContext(token);
                    status = durable_ != nullptr ? durable_->Delete(item)
                                                 : memory_->Delete(item);
                  });
  return status;
}

Result<std::string> ReplicaServer::Read(std::string_view item) {
  const size_t k = sharded().ShardOf(item);

  // Optimistic lock-free path: a version sample, a cache probe, and a
  // re-validation — no gate, no task, no queue. Any mutating task on the
  // shard bumps the version and sends us to the fallback below.
  ShardReadCache* cache = sched_->read_cache(k);
  if (cache != nullptr) {
    const uint64_t sample = sched_->ReadVersion(k);
    std::string value;
    const ShardReadCache::Outcome outcome = cache->Lookup(item, sample, &value);
    if (outcome != ShardReadCache::Outcome::kMiss &&
        sched_->ValidateVersion(k, sample)) {
      // relaxed: monotonic stats counter, read only for reporting.
      optimistic_read_hits_.fetch_add(1, std::memory_order_relaxed);
      if (outcome == ShardReadCache::Outcome::kAbsent) return NotFoundFor(item);
      return value;
    }
  }

  // Fallback: read inside the shard's section and publish the result for
  // the next optimistic reader at the version current while we hold it.
  Result<std::string> result = Status::Internal("read task did not run");
  sched_->Execute(k, TaskKind::kRead, /*mutates=*/false,
                  [this, item, cache, &result](const ShardToken& token) {
                    AssertShardContext(token);
                    result = sharded().Read(item);
                    if (cache == nullptr) return;
                    const uint64_t version = sched_->CurrentVersion(token);
                    if (result.ok()) {
                      cache->Publish(item, *result, /*absent=*/false, version);
                    } else if (result.status().IsNotFound()) {
                      cache->Publish(item, {}, /*absent=*/true, version);
                    }
                  });
  return result;
}

Status ReplicaServer::ResolveConflict(std::string_view item,
                                      const VersionVector& remote_vv,
                                      std::string_view value) {
  const size_t k = sharded().ShardOf(item);
  Status status;
  sched_->Execute(k, TaskKind::kLocalUpdate, /*mutates=*/true,
                  [this, item, &remote_vv, value,
                   &status](const ShardToken& token) {
                    AssertShardContext(token);
                    status = durable_ != nullptr
                                 ? durable_->ResolveConflict(item, remote_vv,
                                                             value)
                                 : memory_->ResolveConflict(item, remote_vv,
                                                            value);
                  });
  return status;
}

std::vector<std::pair<std::string, std::string>> ReplicaServer::Scan(
    std::string_view prefix, size_t limit) const {
  // One shard at a time: a scan is a convenience listing, not a consistent
  // whole-database snapshot, so it does not stall writers on all shards.
  std::vector<std::pair<std::string, std::string>> out;
  const ShardedReplica& rep = sharded();
  for (size_t k = 0; k < rep.num_shards(); ++k) {
    sched_->Execute(k, TaskKind::kSnapshot, /*mutates=*/false,
                    [&rep, &out, prefix, k](const ShardToken&) {
                      auto part = rep.shard(k).Scan(prefix, /*limit=*/0);
                      out.insert(out.end(),
                                 std::make_move_iterator(part.begin()),
                                 std::make_move_iterator(part.end()));
                    });
  }
  std::sort(out.begin(), out.end());
  if (limit > 0 && out.size() > limit) out.resize(limit);
  return out;
}

void ReplicaServer::AppendSchedulerSummary(std::string* out) const {
  const runtime::SchedulerStats s = sched_->Stats(false);
  out->append("\nsched: tasks=" + std::to_string(s.TotalTasks()) +
              " inline=" + std::to_string(s.inline_tasks) +
              " fast_path=" + std::to_string(s.fast_path_runs) +
              " barriers=" + std::to_string(s.exclusive_barriers) +
              " queue_peak=" + std::to_string(s.queue_depth_peak) +
              " opt_read_hits=" + std::to_string(optimistic_read_hits()));
  for (size_t w = 0; w < s.workers.size(); ++w) {
    out->append(" w" + std::to_string(w) + "=" +
                std::to_string(s.workers[w].tasks_executed) + "/" +
                std::to_string(s.workers[w].queue_depth_peak));
  }
}

void ReplicaServer::AppendNetSummary(std::string* out, bool reset) const {
  const net::TransportStats t = transport_->Stats(reset);
  out->append("\nnet: calls=" + std::to_string(t.calls) +
              " opened=" + std::to_string(t.connections_opened) +
              " reused=" + std::to_string(t.connections_reused) +
              " reconnects=" + std::to_string(t.reconnects) +
              " backoff_skips=" + std::to_string(t.backoff_skips) +
              " bytes_sent=" + std::to_string(t.bytes_sent) +
              " bytes_received=" + std::to_string(t.bytes_received));
  // relaxed: monotonic stats counters folded into a report; an event racing
  // the read lands in this report or the next, both acceptable.
  const auto take = [reset](std::atomic<uint64_t>& c) {
    return reset ? c.exchange(0, std::memory_order_relaxed)
                 : c.load(std::memory_order_relaxed);
  };
  out->append("\nserve_cache: hits=" + std::to_string(take(serve_cache_hits_)) +
              " misses=" + std::to_string(take(serve_cache_misses_)));
}

std::string ReplicaServer::Stats() const {
  const ShardedReplica& rep = sharded();
  std::string summary;
  sched_->ExecuteExclusive(/*mutates=*/false,
                           [&rep, &summary](const ExclusiveToken&) {
                             summary = rep.DebugString();
                           });
  AppendSchedulerSummary(&summary);
  AppendNetSummary(&summary, /*reset=*/false);
  return summary;
}

ReplicaStats ReplicaServer::TotalStats(bool reset) {
  ShardedReplica& rep = sharded();
  ReplicaStats total;
  sched_->ExecuteExclusive(
      /*mutates=*/false, [&rep, &total, reset](const ExclusiveToken& token) {
        AssertShardContext(token);
        total = rep.TotalStats();
        if (reset) rep.ResetStats();
      });
  // Scheduler health and the lock-free read path ride along: optimistic
  // hits never entered a shard section, so the per-shard counters cannot
  // have seen them.
  const runtime::SchedulerStats sched = sched_->Stats(reset);
  total.sched_tasks_executed = sched.TotalTasks();
  total.sched_queue_depth_peak = sched.queue_depth_peak;
  // relaxed: monotonic stats counter folded into a report; a hit racing the
  // exchange lands in this report or the next, both acceptable.
  total.reads += reset ? optimistic_read_hits_.exchange(
                             0, std::memory_order_relaxed)
                       : optimistic_read_hits_.load(std::memory_order_relaxed);
  // Transport and serve-cache counters ride along the same way — they
  // live outside the shards, so the per-shard fold cannot have seen them.
  const net::TransportStats t = transport_->Stats(reset);
  total.net_calls = t.calls;
  total.net_connections_opened = t.connections_opened;
  total.net_connections_reused = t.connections_reused;
  total.net_reconnects = t.reconnects;
  total.net_backoff_skips = t.backoff_skips;
  total.net_bytes_sent = t.bytes_sent;
  total.net_bytes_received = t.bytes_received;
  // relaxed: monotonic stats counters folded into a report (see above).
  total.serve_cache_hits =
      reset ? serve_cache_hits_.exchange(0, std::memory_order_relaxed)
            : serve_cache_hits_.load(std::memory_order_relaxed);
  // relaxed: monotonic stats counter folded into a report (see above).
  total.serve_cache_misses =
      reset ? serve_cache_misses_.exchange(0, std::memory_order_relaxed)
            : serve_cache_misses_.load(std::memory_order_relaxed);
  return total;
}

Status ReplicaServer::PullFrom(NodeId peer) {
  // Snapshot the per-shard DBVV handshake as one scheduler batch, release
  // everything for the RPC, and merge the response per shard. Shards
  // mutated between build and accept simply make the peer ship a little
  // extra; AcceptPropagation is idempotent about duplicates.
  ShardedReplica& rep = sharded();
  const size_t num_shards = rep.num_shards();
  ShardedPropagationRequest req;
  req.requester = id_;
  const auto snapshot_dbvvs = [this, &rep, &req, num_shards] {
    req.shard_dbvvs.resize(num_shards);
    sched_->ExecuteBatchIndexed(AllShardsList(), TaskKind::kSnapshot,
                                /*mutates=*/false,
                                [&rep, &req](const ShardToken& token,
                                             size_t k) {
                                  AssertShardContext(token);
                                  req.shard_dbvvs[k] = rep.shard(k).dbvv();
                                });
  };
  // Version negotiation: try v3 unless disabled or the sticky cache says
  // this peer already rejected it; a v3 rejection (the error reply an old
  // node's codec sends for tag 17) downgrades the cache and retries the
  // same handshake as v2.
  // relaxed: sticky negotiation cache; a stale read only costs one extra
  // rejected v3 attempt before the downgrade is re-learned.
  const bool peer_known_v2 =
      peer < peer_wire_count_ &&
      peer_wire_[peer].load(std::memory_order_relaxed) == kWireV2;
  bool trying_v3 = options_.enable_wire_v3 && !peer_known_v2;
  // Probe first when this peer's mutation epoch is cached from a previous
  // completed pull: if the source is unchanged, the round is O(1) — no
  // DBVV snapshots built, shipped, or compared. A changed source costs
  // one extra (tiny) round trip before the full handshake.
  // relaxed: conservative epoch cache; a stale epoch makes the probe miss
  // and fall back to the full handshake — never lossy.
  const uint64_t cached_epoch =
      trying_v3 && peer < peer_wire_count_
          ? peer_epoch_[peer].load(std::memory_order_relaxed)
          : 0;
  bool probing = cached_epoch != 0;
  if (trying_v3) {
    req.wire_version = kWireV3;
    if (options_.accept_compressed_segments) {
      req.flags |= kPropFlagAcceptCompressed;
    }
    if (probing) {
      req.flags |= kPropFlagEpochProbe;
      req.last_epoch = cached_epoch;
    }
  }
  if (!probing) snapshot_dbvvs();
  // Response frames land in a pooled buffer reused across pulls (and
  // across the probe→resend / v3→v2 retries inside this call) through
  // CallInto, so the steady-state round no longer allocates a fresh
  // frame-sized string per round trip. The zero-copy accept below borrows
  // views into it; the buffer outlives them (returned to the pool only at
  // scope exit).
  PooledBuffer wire(&buffer_pool_);
  for (;;) {
    Status call_status =
        transport_->CallInto(peer, net::Encode(Message(req)), &*wire);
    if (!call_status.ok()) return call_status;
    // v3 reply fast path: decode the envelope as views into the received
    // frame (`*wire` outlives the accept below), so the segment bodies —
    // the bulk of the frame — are never copied out of it.
    if (trying_v3 && !wire->empty() &&
        static_cast<uint8_t>((*wire)[0]) ==
            static_cast<uint8_t>(
                net::MessageType::kShardedPropagationResponseV3)) {
      ByteReader reader(std::string_view(*wire).substr(1));
      wire::ShardedResponseEnvelopeView env;
      Status ds = wire::DecodeShardedPropagationResponseEnvelopeV3(reader,
                                                                   &env);
      if (!ds.ok()) return ds;
      if (!reader.AtEnd()) {
        return Status::Corruption("trailing bytes after message body");
      }
      if (peer < peer_wire_count_) {
        // relaxed: sticky negotiation cache (see the load above).
        peer_wire_[peer].store(kWireV3, std::memory_order_relaxed);
      }
      if (env.resend_requested()) {
        // Probe missed: repeat the round as the full per-shard handshake.
        probing = false;
        req.flags &= static_cast<uint8_t>(~kPropFlagEpochProbe);
        req.last_epoch = 0;
        snapshot_dbvvs();
        continue;
      }
      if (probing) return Status::OK();  // current by epoch; nothing to apply
      Status s = AcceptShardedSegments(env.num_shards, env.segments,
                                       /*v3=*/true);
      if (s.ok() && env.epoch != 0 && peer < peer_wire_count_) {
        // relaxed: conservative epoch cache; stale probes re-pull.
        peer_epoch_[peer].store(env.epoch, std::memory_order_relaxed);
      }
      return s;
    }
    Result<Message> decoded = net::Decode(*wire);
    if (!decoded.ok()) return decoded.status();
    if (auto* resp = std::get_if<ShardedPropagationResponse>(&*decoded)) {
      if (trying_v3 && peer < peer_wire_count_) {
        // relaxed: sticky negotiation cache (see the load above).
        peer_wire_[peer].store(kWireV3, std::memory_order_relaxed);
      }
      if (resp->resend_requested()) {
        // Probe missed: repeat the round as the full per-shard handshake.
        probing = false;
        req.flags &= static_cast<uint8_t>(~kPropFlagEpochProbe);
        req.last_epoch = 0;
        snapshot_dbvvs();
        continue;
      }
      if (probing) return Status::OK();  // current by epoch; nothing to apply
      Status s = AcceptShardedPropagation(*resp);
      if (s.ok() && resp->wire_version >= kWireV3 && resp->epoch != 0 &&
          peer < peer_wire_count_) {
        // relaxed: conservative epoch cache; stale probes re-pull.
        peer_epoch_[peer].store(resp->epoch, std::memory_order_relaxed);
      }
      return s;
    }
    if (trying_v3 && std::get_if<ClientReply>(&*decoded) != nullptr) {
      if (peer < peer_wire_count_) {
        // relaxed: sticky negotiation cache downgrade (see the load above).
        peer_wire_[peer].store(kWireV2, std::memory_order_relaxed);
      }
      trying_v3 = false;
      req.wire_version = kWireV2;
      req.flags = 0;
      req.last_epoch = 0;
      if (probing) {
        probing = false;
        snapshot_dbvvs();
      }
      continue;
    }
    return Status::Corruption("peer sent a non-propagation reply");
  }
}

Status ReplicaServer::OobFetch(NodeId peer, std::string_view item) {
  const size_t k = sharded().ShardOf(item);
  OobRequest req;
  sched_->Execute(k, TaskKind::kSnapshot, /*mutates=*/false,
                  [this, item, &req](const ShardToken&) {
                    req = sharded().BuildOobRequest(item);
                  });
  Result<std::string> wire =
      transport_->Call(peer, net::Encode(Message(std::move(req))));
  if (!wire.ok()) return wire.status();
  Result<Message> decoded = net::Decode(*wire);
  if (!decoded.ok()) return decoded.status();
  auto* resp = std::get_if<OobResponse>(&*decoded);
  if (resp == nullptr) {
    return Status::Corruption("peer sent a non-OOB reply");
  }
  Status status;
  sched_->Execute(k, TaskKind::kAccept, /*mutates=*/true,
                  [this, resp, &status](const ShardToken& token) {
                    AssertShardContext(token);
                    status = durable_ != nullptr
                                 ? durable_->AcceptOobResponse(*resp)
                                 : memory_->AcceptOobResponse(*resp);
                  });
  return status;
}

void ReplicaServer::WithReplica(
    const std::function<void(const ShardedReplica&)>& fn) const {
  const ShardedReplica& rep = sharded();
  sched_->ExecuteExclusive(/*mutates=*/false,
                           [&rep, &fn](const ExclusiveToken&) { fn(rep); });
}

Status ReplicaServer::Checkpoint() {
  if (durable_ == nullptr) {
    return Status::FailedPrecondition("server runs in-memory");
  }
  // Shard by shard: each checkpoint is internally consistent (it is one
  // shard's whole protocol state), so no global barrier is needed.
  Status first_error = Status::OK();
  for (size_t k = 0; k < durable_->num_shards(); ++k) {
    sched_->Execute(k, TaskKind::kSnapshot, /*mutates=*/false,
                    [this, k, &first_error](const ShardToken& token) {
                      AssertShardContext(token);
                      Status s = durable_->CheckpointShard(k);
                      if (!s.ok() && first_error.ok()) first_error = s;
                    });
  }
  return first_error;
}

uint64_t ReplicaServer::conflicts_detected() const {
  const ShardedReplica& rep = sharded();
  uint64_t total = 0;
  for (size_t k = 0; k < rep.num_shards(); ++k) {
    sched_->Execute(k, TaskKind::kStats, /*mutates=*/false,
                    [&rep, &total, k](const ShardToken&) {
                      total += rep.shard(k).stats().conflicts_detected;
                    });
  }
  return total;
}

// ---------------------------------------------------------------------------
// ReplicaClient.

namespace {
Result<std::string> CallForReply(net::Transport* transport, NodeId server,
                                 Message msg) {
  Result<std::string> wire = transport->Call(server, net::Encode(msg));
  if (!wire.ok()) return wire.status();
  Result<Message> decoded = net::Decode(*wire);
  if (!decoded.ok()) return decoded.status();
  auto* reply = std::get_if<ClientReply>(&*decoded);
  if (reply == nullptr) return Status::Corruption("expected a client reply");
  return ReplyToResult(*reply);
}
}  // namespace

Status ReplicaClient::Update(std::string_view item, std::string_view value) {
  Result<std::string> r = CallForReply(
      transport_, server_,
      Message(ClientUpdateRequest{std::string(item), std::string(value)}));
  return r.status();
}

Status ReplicaClient::Delete(std::string_view item) {
  Result<std::string> r =
      CallForReply(transport_, server_,
                   Message(net::ClientDeleteRequest{std::string(item)}));
  return r.status();
}

Result<std::string> ReplicaClient::Read(std::string_view item) {
  return CallForReply(transport_, server_,
                      Message(ClientReadRequest{std::string(item)}));
}

Result<std::string> ReplicaClient::OobRead(NodeId from_peer,
                                           std::string_view item) {
  return CallForReply(
      transport_, server_,
      Message(ClientOobFetchRequest{from_peer, std::string(item)}));
}

Result<std::vector<std::pair<std::string, std::string>>> ReplicaClient::Scan(
    std::string_view prefix, uint64_t limit) {
  Result<std::string> payload = CallForReply(
      transport_, server_,
      Message(net::ClientScanRequest{std::string(prefix), limit}));
  if (!payload.ok()) return payload.status();
  return net::DecodeScanListing(*payload);
}

Result<std::string> ReplicaClient::Stats() {
  return CallForReply(transport_, server_,
                      Message(net::ClientStatsRequest{}));
}

Result<std::string> ReplicaClient::ResetStats() {
  return CallForReply(transport_, server_,
                      Message(net::ClientResetStatsRequest{}));
}

Status ReplicaClient::TriggerSync(NodeId peer) {
  return CallForReply(transport_, server_,
                      Message(net::ClientSyncRequest{peer}))
      .status();
}

Status ReplicaClient::TriggerCheckpoint() {
  return CallForReply(transport_, server_,
                      Message(net::ClientCheckpointRequest{}))
      .status();
}

}  // namespace epidemic::server
