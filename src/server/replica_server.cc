#include "server/replica_server.h"

#include <chrono>
#include <utility>

#include "common/logging.h"
#include "net/codec.h"

namespace epidemic::server {

using net::ClientOobFetchRequest;
using net::ClientReadRequest;
using net::ClientReply;
using net::ClientUpdateRequest;
using net::Message;

namespace {

std::string EncodeStatusReply(const Status& s, std::string payload = "") {
  ClientReply reply;
  reply.code = static_cast<uint8_t>(s.code());
  // Only the message crosses the wire; the client rebuilds the Status from
  // the code, so no "NotFound: NotFound:" double prefixes.
  reply.payload = s.ok() ? std::move(payload) : s.message();
  return net::Encode(Message(std::move(reply)));
}

/// Converts a decoded ClientReply back into a Status/value pair.
Result<std::string> ReplyToResult(const ClientReply& reply) {
  if (reply.code == 0) return reply.payload;
  return Status(static_cast<StatusCode>(reply.code), reply.payload);
}

}  // namespace

ReplicaServer::ReplicaServer(NodeId id, size_t num_nodes,
                             net::Transport* transport, Options options)
    : id_(id),
      transport_(transport),
      options_(std::move(options)),
      memory_(std::make_unique<Replica>(id, num_nodes, &listener_)) {}

ReplicaServer::ReplicaServer(std::unique_ptr<JournaledReplica> durable,
                             net::Transport* transport, Options options)
    : id_(durable->replica().id()),
      transport_(transport),
      options_(std::move(options)),
      durable_(std::move(durable)) {}

ReplicaServer::~ReplicaServer() { Stop(); }

void ReplicaServer::Start() {
  if (options_.anti_entropy_interval_micros <= 0 || options_.peers.empty()) {
    return;
  }
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  ae_thread_ = std::thread([this] { AntiEntropyLoop(); });
}

void ReplicaServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!started_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (ae_thread_.joinable()) ae_thread_.join();
  std::lock_guard<std::mutex> lock(thread_mu_);
  started_ = false;
}

void ReplicaServer::AntiEntropyLoop() {
  size_t next_peer = 0;
  TimeMicros last_checkpoint = RealClock::Default()->NowMicros();
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(thread_mu_);
      cv_.wait_for(
          lock,
          std::chrono::microseconds(options_.anti_entropy_interval_micros),
          [this] { return stopping_; });
      if (stopping_) return;
    }
    NodeId peer = options_.peers[next_peer];
    next_peer = (next_peer + 1) % options_.peers.size();
    Status s = PullFrom(peer);
    if (!s.ok() && !s.IsUnavailable()) {
      EPI_LOG(kWarning) << "node " << id_ << ": anti-entropy pull from "
                        << peer << " failed: " << s.ToString();
    }
    if (durable_ != nullptr && options_.checkpoint_interval_micros > 0) {
      TimeMicros now = RealClock::Default()->NowMicros();
      if (now - last_checkpoint >= options_.checkpoint_interval_micros) {
        Status cp = Checkpoint();
        if (!cp.ok()) {
          EPI_LOG(kWarning) << "node " << id_
                            << ": background checkpoint failed: "
                            << cp.ToString();
        }
        last_checkpoint = now;
      }
    }
  }
}

std::string ReplicaServer::HandleRequest(std::string_view request) {
  Result<Message> decoded = net::Decode(request);
  if (!decoded.ok()) return EncodeStatusReply(decoded.status());
  Message& msg = *decoded;

  if (auto* prop_req = std::get_if<PropagationRequest>(&msg)) {
    std::lock_guard<std::mutex> lock(mu_);
    return net::Encode(Message(rep().HandlePropagationRequest(*prop_req)));
  }
  if (auto* oob_req = std::get_if<OobRequest>(&msg)) {
    std::lock_guard<std::mutex> lock(mu_);
    return net::Encode(Message(rep().HandleOobRequest(*oob_req)));
  }
  if (auto* update = std::get_if<ClientUpdateRequest>(&msg)) {
    return EncodeStatusReply(Update(update->item_name, update->value));
  }
  if (auto* del = std::get_if<net::ClientDeleteRequest>(&msg)) {
    return EncodeStatusReply(Delete(del->item_name));
  }
  if (auto* read = std::get_if<ClientReadRequest>(&msg)) {
    Result<std::string> value = Read(read->item_name);
    if (!value.ok()) return EncodeStatusReply(value.status());
    return EncodeStatusReply(Status::OK(), std::move(*value));
  }
  if (std::get_if<net::ClientStatsRequest>(&msg) != nullptr) {
    return EncodeStatusReply(Status::OK(), Stats());
  }
  if (auto* scan = std::get_if<net::ClientScanRequest>(&msg)) {
    auto items = Scan(scan->prefix, static_cast<size_t>(scan->limit));
    return EncodeStatusReply(Status::OK(), net::EncodeScanListing(items));
  }
  if (auto* sync = std::get_if<net::ClientSyncRequest>(&msg)) {
    if (sync->peer == id_) {
      return EncodeStatusReply(Status::InvalidArgument("cannot self-sync"));
    }
    return EncodeStatusReply(PullFrom(sync->peer));
  }
  if (std::get_if<net::ClientCheckpointRequest>(&msg) != nullptr) {
    return EncodeStatusReply(Checkpoint());
  }
  if (auto* fetch = std::get_if<ClientOobFetchRequest>(&msg)) {
    Status s = OobFetch(fetch->from_peer, fetch->item_name);
    if (!s.ok()) return EncodeStatusReply(s);
    Result<std::string> value = Read(fetch->item_name);
    if (!value.ok()) return EncodeStatusReply(value.status());
    return EncodeStatusReply(Status::OK(), std::move(*value));
  }
  return EncodeStatusReply(
      Status::InvalidArgument("message type not servable"));
}

Status ReplicaServer::Update(std::string_view item, std::string_view value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (durable_ != nullptr) return durable_->Update(item, value);
  return memory_->Update(item, value);
}

Status ReplicaServer::Delete(std::string_view item) {
  std::lock_guard<std::mutex> lock(mu_);
  if (durable_ != nullptr) return durable_->Delete(item);
  return memory_->Delete(item);
}

Result<std::string> ReplicaServer::Read(std::string_view item) {
  std::lock_guard<std::mutex> lock(mu_);
  return rep().Read(item);
}

std::vector<std::pair<std::string, std::string>> ReplicaServer::Scan(
    std::string_view prefix, size_t limit) const {
  std::lock_guard<std::mutex> lock(mu_);
  return rep().Scan(prefix, limit);
}

std::string ReplicaServer::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rep().DebugString();
}

Status ReplicaServer::PullFrom(NodeId peer) {
  // Build the DBVV handshake under the lock, release it for the RPC, and
  // re-acquire to merge the response.
  PropagationRequest req;
  {
    std::lock_guard<std::mutex> lock(mu_);
    req = rep().BuildPropagationRequest();
  }
  Result<std::string> wire =
      transport_->Call(peer, net::Encode(Message(std::move(req))));
  if (!wire.ok()) return wire.status();
  Result<Message> decoded = net::Decode(*wire);
  if (!decoded.ok()) return decoded.status();
  auto* resp = std::get_if<PropagationResponse>(&*decoded);
  if (resp == nullptr) {
    return Status::Corruption("peer sent a non-propagation reply");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (durable_ != nullptr) return durable_->AcceptPropagation(*resp);
  return memory_->AcceptPropagation(*resp);
}

Status ReplicaServer::OobFetch(NodeId peer, std::string_view item) {
  OobRequest req;
  {
    std::lock_guard<std::mutex> lock(mu_);
    req = rep().BuildOobRequest(item);
  }
  Result<std::string> wire =
      transport_->Call(peer, net::Encode(Message(std::move(req))));
  if (!wire.ok()) return wire.status();
  Result<Message> decoded = net::Decode(*wire);
  if (!decoded.ok()) return decoded.status();
  auto* resp = std::get_if<OobResponse>(&*decoded);
  if (resp == nullptr) {
    return Status::Corruption("peer sent a non-OOB reply");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (durable_ != nullptr) return durable_->AcceptOobResponse(*resp);
  return memory_->AcceptOobResponse(*resp);
}

void ReplicaServer::WithReplica(
    const std::function<void(const Replica&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  fn(rep());
}

Status ReplicaServer::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  if (durable_ == nullptr) {
    return Status::FailedPrecondition("server runs in-memory");
  }
  return durable_->Checkpoint();
}

uint64_t ReplicaServer::conflicts_detected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rep().stats().conflicts_detected;
}

// ---------------------------------------------------------------------------
// ReplicaClient.

namespace {
Result<std::string> CallForReply(net::Transport* transport, NodeId server,
                                 Message msg) {
  Result<std::string> wire = transport->Call(server, net::Encode(msg));
  if (!wire.ok()) return wire.status();
  Result<Message> decoded = net::Decode(*wire);
  if (!decoded.ok()) return decoded.status();
  auto* reply = std::get_if<ClientReply>(&*decoded);
  if (reply == nullptr) return Status::Corruption("expected a client reply");
  return ReplyToResult(*reply);
}
}  // namespace

Status ReplicaClient::Update(std::string_view item, std::string_view value) {
  Result<std::string> r = CallForReply(
      transport_, server_,
      Message(ClientUpdateRequest{std::string(item), std::string(value)}));
  return r.status();
}

Status ReplicaClient::Delete(std::string_view item) {
  Result<std::string> r =
      CallForReply(transport_, server_,
                   Message(net::ClientDeleteRequest{std::string(item)}));
  return r.status();
}

Result<std::string> ReplicaClient::Read(std::string_view item) {
  return CallForReply(transport_, server_,
                      Message(ClientReadRequest{std::string(item)}));
}

Result<std::string> ReplicaClient::OobRead(NodeId from_peer,
                                           std::string_view item) {
  return CallForReply(
      transport_, server_,
      Message(ClientOobFetchRequest{from_peer, std::string(item)}));
}

Result<std::vector<std::pair<std::string, std::string>>> ReplicaClient::Scan(
    std::string_view prefix, uint64_t limit) {
  Result<std::string> payload = CallForReply(
      transport_, server_,
      Message(net::ClientScanRequest{std::string(prefix), limit}));
  if (!payload.ok()) return payload.status();
  return net::DecodeScanListing(*payload);
}

Result<std::string> ReplicaClient::Stats() {
  return CallForReply(transport_, server_,
                      Message(net::ClientStatsRequest{}));
}

Status ReplicaClient::TriggerSync(NodeId peer) {
  return CallForReply(transport_, server_,
                      Message(net::ClientSyncRequest{peer}))
      .status();
}

Status ReplicaClient::TriggerCheckpoint() {
  return CallForReply(transport_, server_,
                      Message(net::ClientCheckpointRequest{}))
      .status();
}

}  // namespace epidemic::server
