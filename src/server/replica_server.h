#ifndef EPIDEMIC_SERVER_REPLICA_SERVER_H_
#define EPIDEMIC_SERVER_REPLICA_SERVER_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "core/conflict.h"
#include "core/journal.h"
#include "core/replica.h"
#include "net/transport.h"

namespace epidemic::server {

/// A deployable replica node: wraps a core::Replica behind a mutex, serves
/// protocol and client RPCs as a net::RequestHandler, and (optionally) runs
/// a background anti-entropy thread that periodically pulls updates from
/// its peers in round-robin order — the "separate activity" of the epidemic
/// model (§1).
///
/// Locking: the replica mutex is never held across a transport call, so two
/// servers pulling from each other cannot deadlock; an anti-entropy round
/// is build-request (locked) → RPC (unlocked) → accept (locked).
class ReplicaServer : public net::RequestHandler {
 public:
  struct Options {
    /// Peers this node pulls from, visited round-robin. Usually all other
    /// nodes, or the ring successor for a ring schedule.
    std::vector<NodeId> peers;

    /// Background pull period; 0 disables the thread (pull manually via
    /// PullFrom).
    TimeMicros anti_entropy_interval_micros = 0;

    /// Durable servers: checkpoint (snapshot + journal truncation) roughly
    /// this often, piggybacked on the anti-entropy thread. 0 = only on
    /// explicit Checkpoint() calls.
    TimeMicros checkpoint_interval_micros = 0;
  };

  /// In-memory server. `transport` must outlive the server.
  ReplicaServer(NodeId id, size_t num_nodes, net::Transport* transport,
                Options options);

  /// Durable server over a recovered journaled replica (core/journal.h):
  /// every mutating input is journaled, and `Checkpoint()` snapshots +
  /// truncates. Create the JournaledReplica with JournaledReplica::Open.
  ReplicaServer(std::unique_ptr<JournaledReplica> durable,
                net::Transport* transport, Options options);

  ~ReplicaServer() override;

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  /// Starts the background anti-entropy thread (no-op if the interval is 0).
  void Start();

  /// Stops and joins the background thread. Safe to call repeatedly.
  void Stop();

  // -------------------------------------------------------------------
  // RPC server side.

  /// Decodes one request frame, dispatches it to the replica, and returns
  /// the encoded reply. Unknown/undecodable input yields an encoded
  /// error ClientReply.
  std::string HandleRequest(std::string_view request) override;

  // -------------------------------------------------------------------
  // Local (thread-safe) API.

  Status Update(std::string_view item, std::string_view value);
  Status Delete(std::string_view item);
  Result<std::string> Read(std::string_view item);
  std::vector<std::pair<std::string, std::string>> Scan(
      std::string_view prefix, size_t limit = 0) const;
  std::string Stats() const;

  /// One anti-entropy exchange pulling from `peer` over the transport.
  Status PullFrom(NodeId peer);

  /// Out-of-bound fetch of `item` from `peer` over the transport (§5.2).
  Status OobFetch(NodeId peer, std::string_view item);

  /// Runs `fn` with the replica locked — for inspection in tests/examples.
  void WithReplica(const std::function<void(const Replica&)>& fn) const;

  /// Durable servers only: snapshot + journal truncation. For in-memory
  /// servers returns FailedPrecondition.
  Status Checkpoint();

  bool is_durable() const { return durable_ != nullptr; }

  NodeId id() const { return id_; }
  uint64_t conflicts_detected() const;

 private:
  void AntiEntropyLoop();

  /// The underlying replica, durable or in-memory. Callers hold mu_.
  Replica& rep() { return durable_ ? durable_->replica() : *memory_; }
  const Replica& rep() const {
    return durable_ ? durable_->replica() : *memory_;
  }

  NodeId id_;
  net::Transport* transport_;
  Options options_;

  mutable std::mutex mu_;
  RecordingConflictListener listener_;
  std::unique_ptr<Replica> memory_;             // in-memory mode
  std::unique_ptr<JournaledReplica> durable_;   // durable mode

  std::mutex thread_mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread ae_thread_;
};

/// Blocking client for a ReplicaServer reachable through a transport.
class ReplicaClient {
 public:
  /// Talks to node `server` via `transport` (not owned).
  ReplicaClient(net::Transport* transport, NodeId server)
      : transport_(transport), server_(server) {}

  Status Update(std::string_view item, std::string_view value);
  Status Delete(std::string_view item);
  Result<std::string> Read(std::string_view item);

  /// Lists live items by name prefix (`limit` 0 = unlimited).
  Result<std::vector<std::pair<std::string, std::string>>> Scan(
      std::string_view prefix, uint64_t limit = 0);

  /// Fetches the server's one-line status summary.
  Result<std::string> Stats();

  /// Admin: makes the server pull from `peer` right now.
  Status TriggerSync(NodeId peer);

  /// Admin: makes a durable server checkpoint right now.
  Status TriggerCheckpoint();

  /// Asks the server to out-of-bound-fetch `item` from `from_peer` first,
  /// then returns the (fresh) value — a priority read.
  Result<std::string> OobRead(NodeId from_peer, std::string_view item);

 private:
  net::Transport* transport_;
  NodeId server_;
};

}  // namespace epidemic::server

#endif  // EPIDEMIC_SERVER_REPLICA_SERVER_H_
