#ifndef EPIDEMIC_SERVER_REPLICA_SERVER_H_
#define EPIDEMIC_SERVER_REPLICA_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/buffer_pool.h"
#include "common/clock.h"
#include "common/thread_annotations.h"
#include "common/worker_pool.h"
#include "core/conflict.h"
#include "core/journal.h"
#include "core/replica.h"
#include "core/sharded_replica.h"
#include "net/transport.h"

namespace epidemic::server {

/// Thread-safe conflict listener: shards report conflicts concurrently, so
/// the server records them under a private mutex and lets callers drain.
class LockedConflictListener : public ConflictListener {
 public:
  void OnConflict(const ConflictEvent& event) override EXCLUDES(mu_) {
    MutexLock lock(mu_);
    events_.push_back(event);
  }

  /// Removes and returns everything recorded so far.
  std::vector<ConflictEvent> Take() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return std::exchange(events_, {});
  }

  size_t count() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return events_.size();
  }

 private:
  mutable Mutex mu_;
  std::vector<ConflictEvent> events_ GUARDED_BY(mu_);
};

/// A deployable replica node: wraps a core::ShardedReplica behind striped
/// per-shard locks, serves protocol and client RPCs as a
/// net::RequestHandler, and (optionally) runs a background anti-entropy
/// thread that periodically pulls updates from its peers in round-robin
/// order — the "separate activity" of the epidemic model (§1).
///
/// Locking: one mutex per shard. User operations and single-shard protocol
/// steps take exactly their shard's lock, so operations on different shards
/// never contend. Whole-database operations (stats, WithReplica) take every
/// lock in index order via AllShardsLock; everything else takes at most one
/// at a time, so the lock graph is acyclic. The discipline is enforced by
/// Clang's `-Wthread-safety` where statically expressible (see
/// common/thread_annotations.h and DESIGN.md §8). No lock is ever held
/// across a transport call, so
/// two servers pulling from each other cannot deadlock; an anti-entropy
/// round is build-handshake (locked per shard) → RPC (unlocked) →
/// per-shard accept (each under its own lock, in parallel on the worker
/// pool when `ae_workers > 0`).
class ReplicaServer : public net::RequestHandler {
 public:
  struct Options {
    /// Peers this node pulls from, visited round-robin. Usually all other
    /// nodes, or the ring successor for a ring schedule.
    std::vector<NodeId> peers;

    /// Background pull period; 0 disables the thread (pull manually via
    /// PullFrom).
    TimeMicros anti_entropy_interval_micros = 0;

    /// Durable servers: checkpoint (snapshot + journal truncation) roughly
    /// this often, piggybacked on the anti-entropy thread. 0 = only on
    /// explicit Checkpoint() calls.
    TimeMicros checkpoint_interval_micros = 0;

    /// Shard count for the in-memory constructor (ignored by the durable
    /// one, where JournaledShardedReplica::Open fixes it). Every node of a
    /// cluster must agree.
    size_t num_shards = ShardedReplica::kDefaultShards;

    /// Extra worker threads for per-shard anti-entropy processing; 0 means
    /// shards are processed serially on the calling thread.
    size_t ae_workers = 0;

    /// Speak wire v3 (tags 17/18: delta-encoded IVVs, indexed tails,
    /// zero-copy serve/accept, pooled buffers — DESIGN.md §10). Pulls try
    /// v3 first and fall back per peer when the v3 handshake is rejected
    /// (the sticky per-peer cache remembers). When false the server
    /// emulates a pre-v3 node: it neither sends v3 nor serves v3 requests
    /// (they get the same error reply an old binary's codec would send),
    /// which is what mixed-version interop tests key off.
    bool enable_wire_v3 = true;

    /// With v3: advertise in the handshake that this node accepts
    /// LZ77-compressed segment bodies (kPropFlagAcceptCompressed).
    bool accept_compressed_segments = false;
  };

  /// In-memory server. `transport` must outlive the server.
  ReplicaServer(NodeId id, size_t num_nodes, net::Transport* transport,
                Options options);

  /// Durable server over recovered journaled shards (core/journal.h):
  /// every mutating input is journaled to its shard, and `Checkpoint()`
  /// snapshots + truncates per shard. Create the state with
  /// JournaledShardedReplica::Open. Conflicts flow through the listener
  /// given to Open (pass a LockedConflictListener you own if you need
  /// them); this server's TakeConflicts sees only in-memory-mode events.
  ReplicaServer(std::unique_ptr<JournaledShardedReplica> durable,
                net::Transport* transport, Options options);

  ~ReplicaServer() override;

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  /// Starts the background anti-entropy thread (no-op if the interval is 0).
  void Start() EXCLUDES(thread_mu_);

  /// Stops and joins the background thread. Safe to call repeatedly.
  void Stop() EXCLUDES(thread_mu_);

  // -------------------------------------------------------------------
  // RPC server side.

  /// Decodes one request frame, dispatches it to the replica, and returns
  /// the encoded reply. Unknown/undecodable input yields an encoded
  /// error ClientReply.
  std::string HandleRequest(std::string_view request) override;

  // -------------------------------------------------------------------
  // Local (thread-safe) API.

  Status Update(std::string_view item, std::string_view value);
  Status Delete(std::string_view item);
  Result<std::string> Read(std::string_view item);
  Status ResolveConflict(std::string_view item, const VersionVector& remote_vv,
                         std::string_view value);
  std::vector<std::pair<std::string, std::string>> Scan(
      std::string_view prefix, size_t limit = 0) const;
  std::string Stats() const;

  /// Atomic read of the aggregated protocol counters (all shard locks
  /// held); optionally resets them in the same critical section.
  ReplicaStats TotalStats(bool reset = false);

  /// One anti-entropy exchange pulling from `peer` over the transport —
  /// all shards in one round trip, unchanged shards skipped by the peer.
  Status PullFrom(NodeId peer);

  /// Out-of-bound fetch of `item` from `peer` over the transport (§5.2).
  Status OobFetch(NodeId peer, std::string_view item);

  /// Runs `fn` with every shard locked (a consistent whole-database view)
  /// — for inspection in tests/examples.
  void WithReplica(const std::function<void(const ShardedReplica&)>& fn) const;

  /// Drains conflicts recorded since the last call.
  std::vector<ConflictEvent> TakeConflicts() { return listener_.Take(); }

  /// Durable servers only: snapshot + journal truncation, shard by shard.
  /// For in-memory servers returns FailedPrecondition.
  Status Checkpoint();

  bool is_durable() const { return durable_ != nullptr; }

  NodeId id() const { return id_; }
  size_t num_shards() const { return sharded().num_shards(); }
  uint64_t conflicts_detected() const;

 private:
  void AntiEntropyLoop() EXCLUDES(thread_mu_);

  /// The sharded state, durable or in-memory. Per-shard access requires
  /// that shard's lock in shard_mu_.
  ShardedReplica& sharded() { return durable_ ? durable_->view() : *memory_; }
  const ShardedReplica& sharded() const {
    return durable_ ? durable_->view() : *memory_;
  }

  Mutex& shard_mutex(size_t k) const { return shard_mu_[k]; }

  /// RAII for the whole-database lock-order rule (DESIGN.md §8): acquires
  /// every shard lock in index order, releases in reverse. The one place a
  /// thread ever holds more than one shard lock, so the shard lock graph
  /// stays acyclic. The lock set is runtime-indexed, which is outside the
  /// static analysis' model — hence the annotation escape hatch here, and
  /// only here.
  class AllShardsLock {
   public:
    explicit AllShardsLock(const ReplicaServer& server)
        NO_THREAD_SAFETY_ANALYSIS
        : server_(server) {
      for (size_t k = 0; k < server_.num_shards(); ++k) {
        server_.shard_mutex(k).lock();
      }
    }
    ~AllShardsLock() NO_THREAD_SAFETY_ANALYSIS {
      for (size_t k = server_.num_shards(); k > 0; --k) {
        server_.shard_mutex(k - 1).unlock();
      }
    }
    AllShardsLock(const AllShardsLock&) = delete;
    AllShardsLock& operator=(const AllShardsLock&) = delete;

   private:
    const ReplicaServer& server_;
  };

  /// Serves a sharded handshake: every shard processed under its own lock,
  /// in parallel on the pool.
  ShardedPropagationResponse ServeShardedPropagation(
      const ShardedPropagationRequest& req);

  /// Applies a sharded response: every segment decoded and accepted under
  /// its shard's lock, in parallel on the pool (journaled when durable).
  Status AcceptShardedPropagation(const ShardedPropagationResponse& resp);

  /// Runs each (shard, fn) entry exactly once with that shard's lock held,
  /// on the calling thread plus the worker pool. Entries must name
  /// distinct shards. Shards are claimed opportunistically — free
  /// (try_lock) shards first, blocking only when every unclaimed shard is
  /// writer-held — so one busy shard never stalls the rest of the batch.
  void RunStriped(std::vector<std::pair<size_t, std::function<void()>>> work);

  NodeId id_;
  net::Transport* transport_;
  Options options_;

  LockedConflictListener listener_;
  std::unique_ptr<ShardedReplica> memory_;              // in-memory mode
  std::unique_ptr<JournaledShardedReplica> durable_;    // durable mode
  /// One lock per shard; shard_mu_[k] guards shard k of the sharded
  /// replica (a runtime-indexed slice GUARDED_BY cannot express).
  /// NOLINT-PROTOCOL(unguarded-mutex): the guarded data lives behind
  /// memory_/durable_, striped per shard at runtime; the discipline is
  /// documented above the class and in DESIGN.md §8.
  mutable std::unique_ptr<Mutex[]> shard_mu_;
  mutable WorkerPool pool_;

  /// Recycles v3 segment and compression buffers across exchanges
  /// (internally synchronized; shared by all shard workers).
  BufferPool buffer_pool_;

  /// Sticky per-peer wire-version cache for PullFrom: 0 = unknown (try
  /// v3), kWireV2 after a peer rejected the v3 handshake, kWireV3 after
  /// one succeeded. Lock-free — a stale read only costs one extra
  /// fallback round trip.
  std::unique_ptr<std::atomic<uint8_t>[]> peer_wire_;
  size_t peer_wire_count_ = 0;

  Mutex thread_mu_;
  std::condition_variable_any cv_;
  bool stopping_ GUARDED_BY(thread_mu_) = false;
  bool started_ GUARDED_BY(thread_mu_) = false;
  std::thread ae_thread_;
};

/// Blocking client for a ReplicaServer reachable through a transport.
class ReplicaClient {
 public:
  /// Talks to node `server` via `transport` (not owned).
  ReplicaClient(net::Transport* transport, NodeId server)
      : transport_(transport), server_(server) {}

  Status Update(std::string_view item, std::string_view value);
  Status Delete(std::string_view item);
  Result<std::string> Read(std::string_view item);

  /// Lists live items by name prefix (`limit` 0 = unlimited).
  Result<std::vector<std::pair<std::string, std::string>>> Scan(
      std::string_view prefix, uint64_t limit = 0);

  /// Fetches the server's one-line status summary.
  Result<std::string> Stats();

  /// Atomically reads-and-resets the server's counters; returns the
  /// summary rendered at the moment of the reset.
  Result<std::string> ResetStats();

  /// Admin: makes the server pull from `peer` right now.
  Status TriggerSync(NodeId peer);

  /// Admin: makes a durable server checkpoint right now.
  Status TriggerCheckpoint();

  /// Asks the server to out-of-bound-fetch `item` from `from_peer` first,
  /// then returns the (fresh) value — a priority read.
  Result<std::string> OobRead(NodeId from_peer, std::string_view item);

 private:
  net::Transport* transport_;
  NodeId server_;
};

}  // namespace epidemic::server

#endif  // EPIDEMIC_SERVER_REPLICA_SERVER_H_
