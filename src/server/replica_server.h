#ifndef EPIDEMIC_SERVER_REPLICA_SERVER_H_
#define EPIDEMIC_SERVER_REPLICA_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "common/buffer_pool.h"
#include "common/clock.h"
#include "common/thread_annotations.h"
#include "core/conflict.h"
#include "core/journal.h"
#include "core/replica.h"
#include "core/sharded_replica.h"
#include "core/wire.h"
#include "net/transport.h"
#include "runtime/scheduler.h"

namespace epidemic::server {

/// Thread-safe conflict listener: shards report conflicts concurrently, so
/// the server records them under a private mutex and lets callers drain.
class LockedConflictListener : public ConflictListener {
 public:
  void OnConflict(const ConflictEvent& event) override EXCLUDES(mu_) {
    MutexLock lock(mu_);
    events_.push_back(event);
  }

  /// Removes and returns everything recorded so far.
  std::vector<ConflictEvent> Take() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return std::exchange(events_, {});
  }

  size_t count() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return events_.size();
  }

 private:
  mutable Mutex mu_;
  std::vector<ConflictEvent> events_ GUARDED_BY(mu_);
};

/// A deployable replica node: wraps a core::ShardedReplica behind a
/// single-writer shard scheduler (runtime/scheduler.h), serves protocol and
/// client RPCs as a net::RequestHandler, and (optionally) runs a background
/// anti-entropy thread that periodically pulls updates from its peers in
/// round-robin order — the "separate activity" of the epidemic model (§1).
///
/// Concurrency model (DESIGN.md §11): there are no shard mutexes. Every
/// shard is pinned to one owner and all access to it runs as tasks inside
/// its single-writer section; the `runtime::ShardToken` a task receives is
/// the REQUIRES-style capability proving it. User operations and
/// single-shard protocol steps are one task on one shard; a sharded
/// anti-entropy exchange fans S tasks out to the owners and joins
/// (ExecuteBatch) instead of taking S locks; whole-database operations
/// (stats, WithReplica) run under the scheduler's cross-shard barrier
/// (ExecuteExclusive), which replaced the old AllShardsLock — and with it
/// the codebase's last NO_THREAD_SAFETY_ANALYSIS escape. Reads go through
/// a lock-free optimistic path (seqlock version + per-shard read cache)
/// and fall back to a task only on miss or version churn. No shard is ever
/// held across a transport call, so two servers pulling from each other
/// cannot deadlock.
class ReplicaServer : public net::RequestHandler {
 public:
  struct Options {
    /// Peers this node pulls from, visited round-robin. Usually all other
    /// nodes, or the ring successor for a ring schedule.
    std::vector<NodeId> peers;

    /// Background pull period; 0 disables the thread (pull manually via
    /// PullFrom).
    TimeMicros anti_entropy_interval_micros = 0;

    /// Durable servers: checkpoint (snapshot + journal truncation) roughly
    /// this often, piggybacked on the anti-entropy thread. 0 = only on
    /// explicit Checkpoint() calls.
    TimeMicros checkpoint_interval_micros = 0;

    /// Shard count for the in-memory constructor (ignored by the durable
    /// one, where JournaledShardedReplica::Open fixes it). Every node of a
    /// cluster must agree.
    size_t num_shards = ShardedReplica::kDefaultShards;

    /// Shard-owner worker threads for the scheduler; 0 means callers run
    /// every task inline behind the per-shard gates (still correct, no
    /// extra threads).
    size_t ae_workers = 0;

    /// Per-shard optimistic read-cache slots (0 disables the lock-free
    /// read path; reads then always run as shard tasks).
    size_t read_cache_slots = 256;

    /// Speak wire v3 (tags 17/18: delta-encoded IVVs, indexed tails,
    /// zero-copy serve/accept, pooled buffers — DESIGN.md §10). Pulls try
    /// v3 first and fall back per peer when the v3 handshake is rejected
    /// (the sticky per-peer cache remembers). When false the server
    /// emulates a pre-v3 node: it neither sends v3 nor serves v3 requests
    /// (they get the same error reply an old binary's codec would send),
    /// which is what mixed-version interop tests key off.
    bool enable_wire_v3 = true;

    /// With v3: advertise in the handshake that this node accepts
    /// LZ77-compressed segment bodies (kPropFlagAcceptCompressed).
    bool accept_compressed_segments = false;
  };

  /// In-memory server. `transport` must outlive the server.
  ReplicaServer(NodeId id, size_t num_nodes, net::Transport* transport,
                Options options);

  /// Durable server over recovered journaled shards (core/journal.h):
  /// every mutating input is journaled to its shard, and `Checkpoint()`
  /// snapshots + truncates per shard. Create the state with
  /// JournaledShardedReplica::Open. Conflicts flow through the listener
  /// given to Open (pass a LockedConflictListener you own if you need
  /// them); this server's TakeConflicts sees only in-memory-mode events.
  ReplicaServer(std::unique_ptr<JournaledShardedReplica> durable,
                net::Transport* transport, Options options);

  ~ReplicaServer() override;

  ReplicaServer(const ReplicaServer&) = delete;
  ReplicaServer& operator=(const ReplicaServer&) = delete;

  /// Starts the background anti-entropy thread (no-op if the interval is 0).
  void Start() EXCLUDES(thread_mu_);

  /// Stops and joins the background thread. Safe to call repeatedly.
  void Stop() EXCLUDES(thread_mu_);

  // -------------------------------------------------------------------
  // RPC server side.

  /// Decodes one request frame, dispatches it to the replica, and returns
  /// the encoded reply. Unknown/undecodable input yields an encoded
  /// error ClientReply. (Wraps HandleRequestV — the vectored form is the
  /// real dispatcher, so every transport exercises the same paths.)
  std::string HandleRequest(std::string_view request) override;

  /// Vectored dispatch: v3 propagation serves produce the reply as pieces
  /// (envelope + pooled per-shard chunks, or a replayed cached frame) that
  /// a vectored transport writes without assembling a contiguous string;
  /// every other message type replies as one owned piece.
  void HandleRequestV(std::string_view request,
                      net::VectoredReply* reply) override;

  // -------------------------------------------------------------------
  // Local (thread-safe) API.

  Status Update(std::string_view item, std::string_view value);
  Status Delete(std::string_view item);
  Result<std::string> Read(std::string_view item);
  Status ResolveConflict(std::string_view item, const VersionVector& remote_vv,
                         std::string_view value);
  std::vector<std::pair<std::string, std::string>> Scan(
      std::string_view prefix, size_t limit = 0) const;
  std::string Stats() const;

  /// Atomic read of the aggregated protocol counters (taken under the
  /// cross-shard barrier); optionally resets them in the same critical
  /// section. Scheduler health counters (tasks executed, queue-depth
  /// peak) ride along in the sched_* fields.
  ReplicaStats TotalStats(bool reset = false);

  /// One anti-entropy exchange pulling from `peer` over the transport —
  /// all shards in one round trip, unchanged shards skipped by the peer.
  Status PullFrom(NodeId peer);

  /// Out-of-bound fetch of `item` from `peer` over the transport (§5.2).
  Status OobFetch(NodeId peer, std::string_view item);

  /// Runs `fn` with every shard owned (a consistent whole-database view)
  /// — for inspection in tests/examples.
  void WithReplica(const std::function<void(const ShardedReplica&)>& fn) const;

  /// Drains conflicts recorded since the last call.
  std::vector<ConflictEvent> TakeConflicts() { return listener_.Take(); }

  /// Durable servers only: snapshot + journal truncation, shard by shard.
  /// For in-memory servers returns FailedPrecondition.
  Status Checkpoint();

  bool is_durable() const { return durable_ != nullptr; }

  NodeId id() const { return id_; }
  size_t num_shards() const { return sharded().num_shards(); }
  uint64_t conflicts_detected() const;

  /// Scheduler health, as surfaced through `epidemic_cli stats`.
  runtime::SchedulerStats SchedulerHealth() const {
    return sched_->Stats(false);
  }
  uint64_t optimistic_read_hits() const {
    // relaxed: monotonic stats counter; no payload is ordered behind it.
    return optimistic_read_hits_.load(std::memory_order_relaxed);
  }

 private:
  void AntiEntropyLoop() EXCLUDES(thread_mu_);

  /// The sharded state, durable or in-memory. Per-shard access requires
  /// being inside that shard's single-writer section (hold a ShardToken
  /// for it).
  ShardedReplica& sharded() { return durable_ ? durable_->view() : *memory_; }
  const ShardedReplica& sharded() const {
    return durable_ ? durable_->view() : *memory_;
  }

  /// Serves a sharded handshake: every shard builds and encodes its
  /// segment inside its own single-writer section, fanned out as one
  /// scheduler batch.
  ShardedPropagationResponse ServeShardedPropagation(
      const ShardedPropagationRequest& req);

  /// Serial-scheduler fast path of the serve: encodes every stale shard's
  /// v3 segment as one self-contained piece ([shard varint][padded length
  /// slot][body]) in a pooled buffer inside that shard's single-writer
  /// section, plus a backpatched envelope piece in front — no per-segment
  /// staging buffers and no segment→frame stitch copy (a vectored
  /// transport sends the pieces as-is; Flatten() reproduces the exact
  /// frame bytes of the contiguous encoder for everything else). Only
  /// valid when the scheduler is not parallel — the shard-at-a-time
  /// Execute loop serializes the tasks — and only for uncompressed v3
  /// replies. Fills `parts`; parts[0] is the envelope (tag byte included).
  void ServeShardedPropagationPartsV3(const ShardedPropagationRequest& req,
                                      std::vector<std::string>* parts);

  /// Fan-out serve cache. A full v3 serve's reply is a pure function of
  /// (request flags + shard DBVVs, scheduler mutation epoch): the epoch is
  /// bumped by every mutating task, so equal epochs mean bytewise-equal
  /// replies. When N peers pull the same tail from a quiescent node, the
  /// first request encodes it and the other N-1 replay the cached pieces.
  /// Entries are immutable once published (shared_ptr<const>); the cache
  /// is direct-mapped by digest and invalidated by epoch mismatch.
  struct CachedServeFrame {
    uint64_t digest = 0;
    uint64_t epoch = 0;
    std::vector<std::string> parts;
  };

  /// FNV-1a over the serve-relevant request fields: flags, shard count,
  /// every shard DBVV entry. The requester id is deliberately excluded —
  /// the reply bytes do not depend on it (see the §4.1 frontier note at
  /// the lookup site).
  static uint64_t ServeDigest(const ShardedPropagationRequest& req);

  /// On hit, points `reply` at the cached pieces and returns true.
  bool LookupServeCache(uint64_t digest, uint64_t epoch,
                        net::VectoredReply* reply) EXCLUDES(serve_cache_mu_);
  void InsertServeCache(std::shared_ptr<const CachedServeFrame> entry)
      EXCLUDES(serve_cache_mu_);

  /// Applies a sharded response: every segment decoded and accepted as a
  /// task on its shard (journaled when durable), fanned out as one batch.
  Status AcceptShardedPropagation(const ShardedPropagationResponse& resp);

  /// Shared core of the accept path: segment bodies are borrowed views —
  /// into an owned response, or directly into the received wire frame
  /// (PullFrom's zero-copy v3 path). The backing must outlive the call.
  Status AcceptShardedSegments(uint32_t num_shards,
                               const std::vector<wire::ShardedSegmentView>& segments,
                               bool v3);

  /// Appends the scheduler/optimistic-read health line to a stats summary.
  void AppendSchedulerSummary(std::string* out) const;

  /// Appends the transport + serve-cache lines ("net: ...",
  /// "serve_cache: ...") to a stats summary, optionally resetting the
  /// underlying counters in the same pass.
  void AppendNetSummary(std::string* out, bool reset) const;

  /// The cached [0, S) index list the all-shard batches fan out over;
  /// built once so the anti-entropy hot loop never re-materializes it.
  const std::vector<size_t>& AllShardsList() const { return all_shards_; }
  void InitShardList() {
    all_shards_.resize(sched_->num_shards());
    for (size_t k = 0; k < all_shards_.size(); ++k) all_shards_[k] = k;
  }

  NodeId id_;
  net::Transport* transport_;
  Options options_;

  LockedConflictListener listener_;
  std::unique_ptr<ShardedReplica> memory_;              // in-memory mode
  std::unique_ptr<JournaledShardedReplica> durable_;    // durable mode

  /// Single-writer shard runtime. Declared after the replica state so it
  /// is destroyed (and drained) first — tasks capture `sharded()`.
  std::unique_ptr<runtime::ShardScheduler> sched_;
  std::vector<size_t> all_shards_;

  /// Reads served lock-free from the optimistic cache (never entered a
  /// shard section). Folded into TotalStats().reads.
  mutable std::atomic<uint64_t> optimistic_read_hits_{0};

  /// Recycles v3 segment and compression buffers across exchanges
  /// (internally synchronized; shared by all shard tasks).
  BufferPool buffer_pool_;

  /// Sticky per-peer wire-version cache for PullFrom: 0 = unknown (try
  /// v3), kWireV2 after a peer rejected the v3 handshake, kWireV3 after
  /// one succeeded. Lock-free — a stale read only costs one extra
  /// fallback round trip.
  std::unique_ptr<std::atomic<uint8_t>[]> peer_wire_;
  size_t peer_wire_count_ = 0;
  /// Last mutation epoch observed per peer (0 = never pulled). Lets
  /// PullFrom open with an O(1) epoch probe instead of the full per-shard
  /// DBVV handshake; a stale value only costs one resend round trip.
  std::unique_ptr<std::atomic<uint64_t>[]> peer_epoch_;

  /// Fan-out serve cache slots (direct-mapped by digest). Entries are
  /// immutable; the mutex only guards the slot pointers, never the bytes,
  /// so a hit costs one lock/shared_ptr copy and replays concurrently
  /// with other senders.
  static constexpr size_t kServeCacheSlots = 8;
  mutable Mutex serve_cache_mu_;
  std::shared_ptr<const CachedServeFrame> serve_cache_[kServeCacheSlots]
      GUARDED_BY(serve_cache_mu_);
  mutable std::atomic<uint64_t> serve_cache_hits_{0};
  mutable std::atomic<uint64_t> serve_cache_misses_{0};

  Mutex thread_mu_;
  std::condition_variable_any cv_;
  bool stopping_ GUARDED_BY(thread_mu_) = false;
  bool started_ GUARDED_BY(thread_mu_) = false;
  std::thread ae_thread_;
};

/// Blocking client for a ReplicaServer reachable through a transport.
class ReplicaClient {
 public:
  /// Talks to node `server` via `transport` (not owned).
  ReplicaClient(net::Transport* transport, NodeId server)
      : transport_(transport), server_(server) {}

  Status Update(std::string_view item, std::string_view value);
  Status Delete(std::string_view item);
  Result<std::string> Read(std::string_view item);

  /// Lists live items by name prefix (`limit` 0 = unlimited).
  Result<std::vector<std::pair<std::string, std::string>>> Scan(
      std::string_view prefix, uint64_t limit = 0);

  /// Fetches the server's one-line status summary.
  Result<std::string> Stats();

  /// Atomically reads-and-resets the server's counters; returns the
  /// summary rendered at the moment of the reset.
  Result<std::string> ResetStats();

  /// Admin: makes the server pull from `peer` right now.
  Status TriggerSync(NodeId peer);

  /// Admin: makes a durable server checkpoint right now.
  Status TriggerCheckpoint();

  /// Asks the server to out-of-bound-fetch `item` from `from_peer` first,
  /// then returns the (fresh) value — a priority read.
  Result<std::string> OobRead(NodeId from_peer, std::string_view item);

 private:
  net::Transport* transport_;
  NodeId server_;
};

}  // namespace epidemic::server

#endif  // EPIDEMIC_SERVER_REPLICA_SERVER_H_
