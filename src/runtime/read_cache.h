#ifndef EPIDEMIC_RUNTIME_READ_CACHE_H_
#define EPIDEMIC_RUNTIME_READ_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>

#include "common/hash.h"
#include "runtime/fence.h"
#include "runtime/optimistic_lock.h"

namespace epidemic::runtime {

/// Lock-free read-side cache for one shard, published under the shard's
/// OptimisticVersion.
///
/// The shard's store is a std::map and cannot be read concurrently with
/// mutation, so the hot read path instead consults this fixed,
/// direct-mapped table of seqlock slots. Every byte in a slot lives in an
/// atomic word, which keeps optimistic readers TSAN-clean: a racing
/// republish can only make the slot-sequence re-check fail, never tear a
/// value into the result.
///
/// Staleness discipline: a slot is stamped with the shard version current
/// at publish time, and a lookup only hits when that stamp equals the
/// reader's version sample. Any mutating task bumps the shard version
/// (scheduler.h), so one increment implicitly invalidates the whole
/// shard's cache — there is no eviction protocol to get wrong. The caller
/// must still re-validate the shard version *after* Lookup returns (see
/// OptimisticVersion::Validate); the cache alone cannot know whether the
/// shard moved on while the slot was being copied.
class ShardReadCache {
 public:
  static constexpr size_t kMaxName = 64;
  static constexpr size_t kMaxValue = 192;

  enum class Outcome : uint8_t {
    kMiss = 0,    // no usable slot; fall through to the task path
    kValue = 1,   // hit: item exists, *value filled
    kAbsent = 2,  // hit: item is known missing-or-deleted
  };

  /// `slots` is rounded up to a power of two (minimum 8).
  explicit ShardReadCache(size_t slots = 256) {
    size_t cap = 8;
    while (cap < slots) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap);
  }

  ShardReadCache(const ShardReadCache&) = delete;
  ShardReadCache& operator=(const ShardReadCache&) = delete;

  /// Optimistic lookup. `version_sample` is the reader's even sample of
  /// the shard's OptimisticVersion; only slots published at exactly that
  /// version hit. On kValue, *value holds a copy.
  Outcome Lookup(std::string_view name, uint64_t version_sample,
                 std::string* value) const {
    if (version_sample == OptimisticVersion::kUnstable ||
        name.size() > kMaxName) {
      return Outcome::kMiss;
    }
    const Slot& slot = slots_[Crc32c(name) & mask_];
    const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if ((s1 & 1) != 0) return Outcome::kMiss;  // mid-publish
    const uint64_t meta = slot.meta.load(kSeqlockOrder);
    const uint64_t published = slot.published.load(kSeqlockOrder);
    const auto state = static_cast<Outcome>(meta & 0xff);
    const size_t name_len = (meta >> 8) & 0xffff;
    const size_t value_len = (meta >> 24) & 0xffff;
    if (state == Outcome::kMiss || published != version_sample ||
        name_len != name.size() || value_len > kMaxValue) {
      return Outcome::kMiss;
    }
    uint64_t words[kDataWords];
    const size_t used = WordsFor(name_len + value_len);
    for (size_t i = 0; i < used; ++i) {
      words[i] = slot.data[i].load(kSeqlockOrder);
    }
    SeqlockAcquireFence();
    if (slot.seq.load(kSeqlockOrder) != s1) {
      return Outcome::kMiss;  // republished underneath us
    }
    const char* bytes = reinterpret_cast<const char*>(words);
    if (std::memcmp(bytes, name.data(), name_len) != 0) {
      return Outcome::kMiss;  // direct-mapped collision
    }
    if (state == Outcome::kValue) {
      value->assign(bytes + name_len, value_len);
    }
    return state;
  }

  /// Publishes a read result. REQUIRES: caller holds the shard's gate (the
  /// slot writer must be unique) and `shard_version` is the shard's
  /// current, even version. Oversized entries are silently skipped — they
  /// simply stay on the task path.
  void Publish(std::string_view name, std::string_view value, bool absent,
               uint64_t shard_version) {
    if (name.size() > kMaxName || (!absent && value.size() > kMaxValue) ||
        (shard_version & 1) != 0) {
      return;
    }
    Slot& slot = slots_[Crc32c(name) & mask_];
    // relaxed: the slot writer is unique (caller holds the shard gate), so
    // this reads our own previous store; the odd/even protocol plus the
    // release fence below orders the publish for readers.
    const uint64_t s = slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(s + 1, kSeqlockOrder);
    SeqlockReleaseFence();
    uint64_t words[kDataWords] = {};
    std::memcpy(words, name.data(), name.size());
    if (!absent) {
      std::memcpy(reinterpret_cast<char*>(words) + name.size(), value.data(),
                  value.size());
    }
    const size_t payload = name.size() + (absent ? 0 : value.size());
    for (size_t i = 0; i < WordsFor(payload); ++i) {
      slot.data[i].store(words[i], kSeqlockOrder);
    }
    const uint64_t state =
        static_cast<uint64_t>(absent ? Outcome::kAbsent : Outcome::kValue);
    slot.meta.store(state | (uint64_t{name.size()} << 8) |
                        (uint64_t{absent ? 0 : value.size()} << 24),
                    kSeqlockOrder);
    slot.published.store(shard_version, kSeqlockOrder);
    slot.seq.store(s + 2, std::memory_order_release);
  }

 private:
  static constexpr size_t kDataWords = (kMaxName + kMaxValue) / 8;
  static_assert((kMaxName + kMaxValue) % 8 == 0);

  static constexpr size_t WordsFor(size_t bytes) { return (bytes + 7) / 8; }

  struct Slot {
    std::atomic<uint64_t> seq{0};
    /// Packed (value_len << 24) | (name_len << 8) | state.
    std::atomic<uint64_t> meta{0};
    /// Shard version at publish time; only an exact match hits.
    std::atomic<uint64_t> published{0};
    std::atomic<uint64_t> data[kDataWords] = {};
  };

  std::unique_ptr<Slot[]> slots_;
  size_t mask_ = 0;
};

}  // namespace epidemic::runtime

#endif  // EPIDEMIC_RUNTIME_READ_CACHE_H_
