#ifndef EPIDEMIC_RUNTIME_MPSC_QUEUE_H_
#define EPIDEMIC_RUNTIME_MPSC_QUEUE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace epidemic::runtime {

/// Bounded multi-producer task channel (Vyukov bounded-queue scheme): a
/// power-of-two ring of cells, each stamped with a sequence number that
/// encodes whether the cell is free for the producer or ready for the
/// consumer. Producers reserve a cell with one CAS on `enqueue_pos_` and
/// never touch consumer state; the consumer side is wait-free.
///
/// Consumption discipline: TryPop/Empty-exact callers must be serialized
/// externally — in this tree by holding the owning shard's gate
/// (scheduler.h). That makes the queue MPSC even though the cell protocol
/// itself would tolerate more. There are no locks anywhere: a full channel
/// reports failure (TryPush) and producers park on `WaitNotFull`, which is
/// the scheduler's backpressure signal, not a mutex.
///
/// All coordination is sequence-stamped atomics, so the queue is safe under
/// TSAN and free of wall-clock or entropy reads (the runtime is covered by
/// protocol_lint's determinism rules).
template <typename T>
class MpscQueue {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit MpscQueue(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; ++i) {
      // relaxed: constructor runs before the queue is shared; publication
      // of the object itself (e.g. unique_ptr hand-off) does the ordering.
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  size_t capacity() const { return mask_ + 1; }

  /// Multi-producer enqueue; returns false when the channel is full
  /// (bounded backpressure — callers decide whether to drain or park).
  bool TryPush(T&& value) {
    Cell* cell;
    // relaxed: the cursor is only a ticket counter — the acquire load of
    // cell->seq below is what synchronizes with the consumer's recycle.
    size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        // relaxed: the CAS only claims the ticket; the value hand-off is
        // published by the release store to cell->seq after the copy.
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // the cell is still occupied: channel full
      } else {
        // relaxed: re-read of the ticket counter; same argument as above.
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    cell->value = std::move(value);
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// Single-consumer dequeue (serialize callers externally). Returns false
  /// when no completed push is visible.
  bool TryPop(T* out) {
    // relaxed: single-consumer — only this thread ever writes the dequeue
    // cursor, so it reads its own last store.
    const size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    const size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0) {
      return false;
    }
    *out = std::move(cell.value);
    cell.value = T{};  // drop captured state eagerly, not at overwrite time
    cell.seq.store(pos + mask_ + 1, std::memory_order_release);
    dequeue_pos_.store(pos + 1, std::memory_order_release);
    if (space_waiters_.load(std::memory_order_acquire) != 0) {
      dequeue_pos_.notify_all();
    }
    return true;
  }

  /// Conservative emptiness check for any thread: may report non-empty for
  /// a push still in flight, but never empty while a completed (or
  /// reserved) push has not been popped. The scheduler's drain-then-release
  /// invariant relies on exactly that one-sided guarantee.
  bool EmptyApprox() const { return SizeApprox() == 0; }

  /// Reserved-but-unpopped cell count; an upper bound on completed pushes.
  size_t SizeApprox() const {
    // relaxed: advisory size — the contract is one-sided (never empty
    // while a completed push is unpopped, which the caller's gate-held
    // re-check guarantees); exact ordering buys nothing here.
    const size_t tail = dequeue_pos_.load(std::memory_order_relaxed);
    const size_t head = enqueue_pos_.load(std::memory_order_relaxed);
    return head >= tail ? head - tail : 0;
  }

  /// Parks the caller until a pop makes space (or space already exists).
  /// Event-driven (atomic wait on the dequeue cursor) — no sleeps, no
  /// clocks.
  void WaitNotFull() {
    const size_t tail = dequeue_pos_.load(std::memory_order_acquire);
    if (SizeApprox() <= mask_) return;  // space already (or push racing)
    space_waiters_.fetch_add(1, std::memory_order_acq_rel);
    if (SizeApprox() > mask_) {
      dequeue_pos_.wait(tail, std::memory_order_acquire);
    }
    space_waiters_.fetch_sub(1, std::memory_order_acq_rel);
  }

 private:
  struct Cell {
    std::atomic<size_t> seq{0};
    T value{};
  };

  std::unique_ptr<Cell[]> cells_;
  size_t mask_ = 0;
  /// Producer and consumer cursors on separate cache lines so producers'
  /// CAS traffic does not bounce the consumer's line.
  alignas(64) std::atomic<size_t> enqueue_pos_{0};
  alignas(64) std::atomic<size_t> dequeue_pos_{0};
  std::atomic<uint32_t> space_waiters_{0};
};

}  // namespace epidemic::runtime

#endif  // EPIDEMIC_RUNTIME_MPSC_QUEUE_H_
