#include "runtime/scheduler.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace epidemic::runtime {

// Futex word lock, the classic three-state scheme: a waiter always leaves
// the lock in state 2 when it acquires after parking, so the eventual
// unlock knows to notify. Only ExecuteExclusive and single-shard inline
// mode ever block here; everything else uses TryLock.
void ShardScheduler::Gate::Lock() {
  uint32_t c = 0;
  // relaxed: failure order — losing the CAS publishes nothing; the retry
  // path below re-reads with its own acquire exchange.
  if (state.compare_exchange_strong(c, 1, std::memory_order_acquire,
                                    std::memory_order_relaxed)) {
    return;
  }
  if (c != 2) c = state.exchange(2, std::memory_order_acquire);
  while (c != 0) {
    // relaxed: the wait is only a parking hint; the acquire exchange on
    // wake is what synchronizes with the releasing Unlock.
    state.wait(2, std::memory_order_relaxed);
    c = state.exchange(2, std::memory_order_acquire);
  }
}

ShardScheduler::ShardScheduler(Options options) : options_(options) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  if (options_.manual) options_.workers = 0;
  options_.workers = std::min(options_.workers, options_.num_shards);

  num_shards_ = options_.num_shards;
  shards_ = std::make_unique<Shard[]>(num_shards_);
  for (size_t i = 0; i < num_shards_; ++i) {
    shards_[i].channel =
        std::make_unique<MpscQueue<Task>>(options_.channel_capacity);
    if (options_.read_cache_slots > 0) {
      shards_[i].cache =
          std::make_unique<ShardReadCache>(options_.read_cache_slots);
    }
  }

  // Owner notification is worth a futex syscall only when another core
  // can actually run the owner; on one hardware thread the inline/helper
  // paths do all the work and wakes would just burn syscalls.
  parallel_ =
      options_.workers > 0 && std::thread::hardware_concurrency() > 1;

  workers_.reserve(options_.workers);
  for (size_t w = 0; w < options_.workers; ++w) {
    workers_.push_back(std::make_unique<WorkerState>());
  }
  for (size_t w = 0; w < options_.workers; ++w) {
    workers_[w]->thread = std::thread([this, w] { WorkerLoop(w); });
  }
}

ShardScheduler::~ShardScheduler() {
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    w->signal.fetch_add(1, std::memory_order_release);
    w->signal.notify_all();
  }
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
  // Leftover tasks (Post with no pump) still run, on the caller's thread:
  // destruction must not strand a queued completion.
  PumpAll();
}

void ShardScheduler::RunTask(size_t shard, Task& task) {
  Shard& sh = shards_[shard];
  const ShardToken token = Token(shard);
  // The task boundary: RunTask is only reached by the thread holding this
  // shard's gate inside a drain loop, so the body executes with the
  // shard-context capability. The assert makes that visible to Clang's
  // thread-safety analysis for the bracket code below; the task body
  // itself (a lambda, analyzed separately) re-asserts from its token.
  AssertShardContext(token);
  if (task.mutates) {
    // relaxed: the epoch probe is conservative-not-lossy (sampled before
    // serving); the seqlock WriteBegin below is the publishing fence.
    mutation_epoch_.fetch_add(1, std::memory_order_relaxed);
    sh.version.WriteBegin();
    task.fn(token);
    sh.version.WriteEnd();
  } else {
    task.fn(token);
  }
  // relaxed: monotonic stats counter, read only by Stats() reporting.
  tasks_by_kind_[static_cast<size_t>(task.kind)].fetch_add(
      1, std::memory_order_relaxed);
}

size_t ShardScheduler::DrainLocked(size_t shard,
                                   std::atomic<uint64_t>* executed_counter) {
  Shard& sh = shards_[shard];
  size_t ran = 0;
  Task task;
  while (sh.channel->TryPop(&task)) {
    RunTask(shard, task);
    ++ran;
  }
  if (ran > 0) {
    // relaxed: monotonic stats counter, read only by Stats() reporting.
    executed_counter->fetch_add(ran, std::memory_order_relaxed);
  }
  return ran;
}

void ShardScheduler::DrainAndUnlock(size_t shard,
                                    std::atomic<uint64_t>* executed_counter) {
  Shard& sh = shards_[shard];
  for (;;) {
    sh.gate.Unlock();
    // The channel refilled behind our drain and nobody owns the gate:
    // re-acquire and keep draining, otherwise the task would sit behind a
    // free gate until the next unrelated acquisition.
    if (sh.channel->EmptyApprox()) return;
    if (!sh.gate.TryLock()) return;  // new holder inherits the invariant
    DrainLocked(shard, executed_counter);
  }
}

void ShardScheduler::PushWithBackpressure(size_t shard, Task task) {
  Shard& sh = shards_[shard];
  while (!sh.channel->TryPush(std::move(task))) {
    if (options_.manual) {
      PumpShard(shard);
    } else if (sh.gate.TryLock()) {
      DrainLocked(shard, &inline_tasks_);
      DrainAndUnlock(shard, &inline_tasks_);
    } else {
      sh.channel->WaitNotFull();  // holder is draining; park until space
    }
  }
  const uint64_t depth = sh.channel->SizeApprox();
  // relaxed: best-effort high-water mark for Stats(); the CAS loop keeps
  // it monotonic, and no other state is ordered against it.
  uint64_t peak = sh.depth_peak.load(std::memory_order_relaxed);
  while (depth > peak &&
         // relaxed: same best-effort high-water mark as the load above.
         !sh.depth_peak.compare_exchange_weak(peak, depth,
                                              std::memory_order_relaxed)) {
  }
}

void ShardScheduler::Execute(size_t shard, TaskKind kind, bool mutates,
                             const std::function<void(const ShardToken&)>& fn) {
  assert(shard < num_shards_);
  Shard& sh = shards_[shard];

  if (options_.manual) {
    // Deterministic synchronous step: queue behind whatever is already
    // pending, then pump this shard to completion. No atomic is contended
    // (manual mode is single-threaded by contract).
    Task task{kind, mutates, [&fn](const ShardToken& token) { fn(token); }};
    PushWithBackpressure(shard, std::move(task));
    PumpShard(shard);
    return;
  }

  // Fast path (flat combining): win the gate while the channel is empty
  // and run inline — the common uncontended case costs one CAS each way,
  // like the striped lock it replaces, but never spins against a convoy.
  if (sh.channel->EmptyApprox() && sh.gate.TryLock()) {
    DrainLocked(shard, &inline_tasks_);  // racing push may have landed
    Task task{kind, mutates, [&fn](const ShardToken& token) { fn(token); }};
    RunTask(shard, task);
    // relaxed: monotonic stats counters, read only by Stats() reporting.
    inline_tasks_.fetch_add(1, std::memory_order_relaxed);
    fast_path_runs_.fetch_add(1, std::memory_order_relaxed);
    DrainAndUnlock(shard, &inline_tasks_);
    return;
  }

  // Slow path: hand the closure to whoever owns the gate. The completion
  // flag is shared-owned because the executing thread touches it after
  // setting it (notify), which may race with this frame unwinding.
  auto done = std::make_shared<std::atomic<uint32_t>>(0);
  Task task{kind, mutates, [&fn, done](const ShardToken& token) {
              fn(token);
              done->store(1, std::memory_order_release);
              done->notify_all();
            }};
  PushWithBackpressure(shard, std::move(task));
  while (done->load(std::memory_order_acquire) == 0) {
    if (sh.gate.TryLock()) {
      DrainLocked(shard, &inline_tasks_);
      DrainAndUnlock(shard, &inline_tasks_);
    } else {
      done->wait(0, std::memory_order_acquire);
    }
  }
}

void ShardScheduler::Post(size_t shard, TaskKind kind, bool mutates,
                          std::function<void(const ShardToken&)> fn) {
  assert(shard < num_shards_);
  PushWithBackpressure(shard, Task{kind, mutates, std::move(fn)});
  if (options_.manual) return;  // runs at the next explicit Pump step
  if (!workers_.empty()) {
    WakeOwner(shard);
  } else if (shards_[shard].gate.TryLock()) {
    DrainLocked(shard, &inline_tasks_);
    DrainAndUnlock(shard, &inline_tasks_);
  }
  // else: the current gate holder's drain-then-release invariant covers it.
}

void ShardScheduler::ExecuteBatch(std::vector<BatchItem> items) {
  if (items.empty()) return;

  if (options_.manual) {
    for (BatchItem& item : items) {
      assert(item.shard < num_shards_);
      PushWithBackpressure(item.shard,
                           Task{item.kind, item.mutates, std::move(item.fn)});
    }
    PumpAll();
    return;
  }

  if (!parallel_) {
    // One hardware thread: an owner can only run when we yield the core,
    // so fanning out through the channels buys no overlap and pays a
    // wrapper closure, two shared counters and a join scan per round.
    // Run each item inline behind its gate instead, deferring only the
    // shards whose gate a concurrent holder owns (that holder's
    // drain-then-release makes the deferred task run promptly).
    std::vector<BatchItem> contended;
    for (BatchItem& item : items) {
      assert(item.shard < num_shards_);
      Shard& sh = shards_[item.shard];
      if (!sh.gate.TryLock()) {
        contended.push_back(std::move(item));
        continue;
      }
      DrainLocked(item.shard, &inline_tasks_);
      Task task{item.kind, item.mutates, std::move(item.fn)};
      RunTask(item.shard, task);
      // relaxed: monotonic stats counter, read only by Stats() reporting.
      inline_tasks_.fetch_add(1, std::memory_order_relaxed);
      DrainAndUnlock(item.shard, &inline_tasks_);
    }
    if (contended.empty()) return;
    items = std::move(contended);  // stragglers take the fan-out/join path
  }

  auto remaining = std::make_shared<std::atomic<size_t>>(items.size());
  auto done = std::make_shared<std::atomic<uint32_t>>(0);

  std::vector<size_t> involved;
  involved.reserve(items.size());
  for (BatchItem& item : items) {
    assert(item.shard < num_shards_);
    involved.push_back(item.shard);
    Task task{item.kind, item.mutates,
              [fn = std::move(item.fn), remaining, done](
                  const ShardToken& token) {
                fn(token);
                if (remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) {
                  done->store(1, std::memory_order_release);
                  done->notify_all();
                }
              }};
    PushWithBackpressure(item.shard, std::move(task));
  }
  std::sort(involved.begin(), involved.end());
  involved.erase(std::unique(involved.begin(), involved.end()),
                 involved.end());

  if (parallel_) {
    // One wake per distinct owner, after full fan-out: the whole round is
    // S tasks and at most W futex signals, not S lock acquisitions.
    std::vector<size_t> owners;
    owners.reserve(involved.size());
    for (size_t shard : involved) owners.push_back(OwnerOf(shard));
    std::sort(owners.begin(), owners.end());
    owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
    for (size_t w : owners) {
      workers_[w]->signal.fetch_add(1, std::memory_order_release);
      workers_[w]->signal.notify_one();
    }
  }

  // Join, helping: drain whatever involved shard is free. When no shard
  // is drainable the remaining tasks are in (or headed into) some
  // holder's drain loop, so parking on the completion flag is safe.
  while (done->load(std::memory_order_acquire) == 0) {
    bool progressed = false;
    for (size_t shard : involved) {
      Shard& sh = shards_[shard];
      if (sh.channel->EmptyApprox() || !sh.gate.TryLock()) continue;
      progressed |= DrainLocked(shard, &inline_tasks_) > 0;
      DrainAndUnlock(shard, &inline_tasks_);
    }
    if (!progressed && done->load(std::memory_order_acquire) == 0) {
      done->wait(0, std::memory_order_acquire);
    }
  }
}

void ShardScheduler::ExecuteBatchIndexed(
    const std::vector<size_t>& shards, TaskKind kind, bool mutates,
    const std::function<void(const ShardToken&, size_t)>& fn) {
  if (shards.empty()) return;

  std::vector<BatchItem> queued;
  if (!parallel_ && !options_.manual) {
    // Same inline discipline as ExecuteBatch's single-hardware-thread
    // path, minus any per-item closure: the Task built here wraps
    // (&fn, i), which std::function stores in place.
    for (size_t i = 0; i < shards.size(); ++i) {
      const size_t shard = shards[i];
      assert(shard < num_shards_);
      Shard& sh = shards_[shard];
      if (!sh.gate.TryLock()) {
        queued.push_back(BatchItem{
            shard, kind, mutates,
            [&fn, i](const ShardToken& token) { fn(token, i); }});
        continue;
      }
      DrainLocked(shard, &inline_tasks_);
      Task task{kind, mutates,
                [&fn, i](const ShardToken& token) { fn(token, i); }};
      RunTask(shard, task);
      // relaxed: monotonic stats counter, read only by Stats() reporting.
      inline_tasks_.fetch_add(1, std::memory_order_relaxed);
      DrainAndUnlock(shard, &inline_tasks_);
    }
    if (queued.empty()) return;
  } else {
    queued.reserve(shards.size());
    for (size_t i = 0; i < shards.size(); ++i) {
      assert(shards[i] < num_shards_);
      queued.push_back(BatchItem{
          shards[i], kind, mutates,
          [&fn, i](const ShardToken& token) { fn(token, i); }});
    }
  }
  // The wrappers borrow `fn`; ExecuteBatch joins before returning, so the
  // reference outlives every execution.
  ExecuteBatch(std::move(queued));
}

void ShardScheduler::ExecuteExclusive(
    bool mutates, const std::function<void(const ExclusiveToken&)>& fn) {
  // relaxed: monotonic stats counter, read only by Stats() reporting.
  exclusive_barriers_.fetch_add(1, std::memory_order_relaxed);
  const ExclusiveToken token;

  if (options_.manual) {
    PumpAll();  // queued work is ordered before the barrier
    if (mutates) {
      // relaxed: epoch probe is conservative-not-lossy; WriteBegin below
      // is the publishing fence.
      mutation_epoch_.fetch_add(1, std::memory_order_relaxed);
      for (size_t i = 0; i < num_shards_; ++i) shards_[i].version.WriteBegin();
    }
    fn(token);
    if (mutates) {
      for (size_t i = 0; i < num_shards_; ++i) shards_[i].version.WriteEnd();
    }
    return;
  }

  // Ascending blocking acquisition is the one place gates are held in
  // bulk; every other holder owns exactly one gate and never blocks on a
  // second, so this order cannot deadlock.
  for (size_t i = 0; i < num_shards_; ++i) {
    shards_[i].gate.Lock();
    DrainLocked(i, &inline_tasks_);
  }
  if (mutates) {
    // relaxed: epoch probe is conservative-not-lossy; WriteBegin below is
    // the publishing fence.
    mutation_epoch_.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i < num_shards_; ++i) shards_[i].version.WriteBegin();
  }
  fn(token);
  if (mutates) {
    for (size_t i = 0; i < num_shards_; ++i) shards_[i].version.WriteEnd();
  }
  for (size_t i = num_shards_; i-- > 0;) {
    DrainAndUnlock(i, &inline_tasks_);
  }
}

size_t ShardScheduler::PumpShard(size_t shard) {
  assert(shard < num_shards_);
  Shard& sh = shards_[shard];
  size_t ran = 0;
  while (!sh.channel->EmptyApprox()) {
    if (!sh.gate.TryLock()) break;  // concurrent holder is draining
    ran += DrainLocked(shard, &inline_tasks_);
    DrainAndUnlock(shard, &inline_tasks_);
  }
  return ran;
}

size_t ShardScheduler::PumpAll() {
  size_t total = 0;
  for (;;) {
    size_t sweep = 0;
    for (size_t i = 0; i < num_shards_; ++i) sweep += PumpShard(i);
    total += sweep;
    if (sweep == 0) return total;  // a full quiet sweep: nothing queued
  }
}

void ShardScheduler::WakeOwner(size_t shard) {
  WorkerState& owner = *workers_[OwnerOf(shard)];
  owner.signal.fetch_add(1, std::memory_order_release);
  owner.signal.notify_one();
}

void ShardScheduler::WorkerLoop(size_t worker_index) {
  WorkerState& me = *workers_[worker_index];
  for (;;) {
    // Sample the wake epoch before scanning: a producer bumping it during
    // the scan makes the park below return immediately, so no wake is
    // ever lost between "saw empty" and "parked".
    const uint64_t epoch = me.signal.load(std::memory_order_acquire);
    size_t ran = 0;
    for (size_t shard = worker_index; shard < num_shards_;
         shard += workers_.size()) {
      Shard& sh = shards_[shard];
      if (sh.channel->EmptyApprox() || !sh.gate.TryLock()) continue;
      ran += DrainLocked(shard, &me.tasks_executed);
      DrainAndUnlock(shard, &me.tasks_executed);
    }
    if (stop_.load(std::memory_order_acquire)) return;
    if (ran == 0) me.signal.wait(epoch, std::memory_order_acquire);
  }
}

// relaxed (whole function): every atomic below is a monotonic stats
// counter with no payload ordered behind it; a torn-across-counters
// snapshot is acceptable in a stats report, and exchange keeps each
// individual counter exact across reset.
SchedulerStats ShardScheduler::Stats(bool reset) const {
  SchedulerStats out;
  out.workers.resize(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) {
    // relaxed: stats counter (see function comment).
    out.workers[w].tasks_executed =
        reset ? workers_[w]->tasks_executed.exchange(
                    0, std::memory_order_relaxed)
              : workers_[w]->tasks_executed.load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < num_shards_; ++i) {
    // relaxed: stats counter (see function comment).
    const uint64_t peak =
        reset ? shards_[i].depth_peak.exchange(0, std::memory_order_relaxed)
              : shards_[i].depth_peak.load(std::memory_order_relaxed);
    out.queue_depth_peak = std::max(out.queue_depth_peak, peak);
    if (!workers_.empty()) {
      SchedulerStats::Worker& w = out.workers[OwnerOf(i)];
      w.queue_depth_peak = std::max(w.queue_depth_peak, peak);
    }
  }
  // relaxed: stats counter (see function comment).
  out.inline_tasks =
      reset ? inline_tasks_.exchange(0, std::memory_order_relaxed)
            : inline_tasks_.load(std::memory_order_relaxed);
  // relaxed: stats counter (see function comment).
  out.fast_path_runs =
      reset ? fast_path_runs_.exchange(0, std::memory_order_relaxed)
            : fast_path_runs_.load(std::memory_order_relaxed);
  // relaxed: stats counter (see function comment).
  out.exclusive_barriers =
      reset ? exclusive_barriers_.exchange(0, std::memory_order_relaxed)
            : exclusive_barriers_.load(std::memory_order_relaxed);
  for (size_t k = 0; k < kNumTaskKinds; ++k) {
    // relaxed: stats counter (see function comment).
    out.tasks_by_kind[k] =
        reset ? tasks_by_kind_[k].exchange(0, std::memory_order_relaxed)
              : tasks_by_kind_[k].load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace epidemic::runtime
