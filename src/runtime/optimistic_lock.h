#ifndef EPIDEMIC_RUNTIME_OPTIMISTIC_LOCK_H_
#define EPIDEMIC_RUNTIME_OPTIMISTIC_LOCK_H_

#include <atomic>
#include <cstdint>

#include "runtime/fence.h"

namespace epidemic::runtime {

/// Seqlock-style optimistic version word for a shard.
///
/// The single writer (whoever holds the shard's gate — owner worker,
/// inline caller, or the exclusive barrier) brackets every mutating task
/// with WriteBegin/WriteEnd, taking the version odd then back to even.
/// Readers never block: they sample the version, require it to be even
/// (no writer in the critical section), read data published *under* that
/// version, and re-validate that the version is unchanged. Any mutation
/// in between bumps the version and invalidates the read, which then
/// falls back to the enqueue path.
///
/// Data published for optimistic readers must itself be stored in atomic
/// words (see read_cache.h) — this class only sequences staleness; it
/// does not make non-atomic reads race-free.
class OptimisticVersion {
 public:
  /// An even sample of the version, or `kUnstable` when a writer is in
  /// the critical section (reader should fall back immediately).
  static constexpr uint64_t kUnstable = ~uint64_t{0};

  uint64_t ReadBegin() const {
    const uint64_t v = v_.load(std::memory_order_acquire);
    return (v & 1) == 0 ? v : kUnstable;
  }

  /// True iff no mutation started since `sample` was taken. The fence
  /// orders the caller's preceding optimistic data reads before the
  /// re-validation load (fence.h explains the TSAN variant).
  bool Validate(uint64_t sample) const {
    SeqlockAcquireFence();
    return sample != kUnstable &&
           v_.load(std::memory_order_acquire) == sample;
  }

  /// Writer side; caller must hold the shard gate (single writer).
  void WriteBegin() { v_.fetch_add(1, std::memory_order_release); }
  void WriteEnd() { v_.fetch_add(1, std::memory_order_release); }

  /// Current raw value (even = stable). Used by the cache to stamp
  /// published entries.
  uint64_t Current() const { return v_.load(std::memory_order_acquire); }

 private:
  std::atomic<uint64_t> v_{0};
};

}  // namespace epidemic::runtime

#endif  // EPIDEMIC_RUNTIME_OPTIMISTIC_LOCK_H_
