#ifndef EPIDEMIC_RUNTIME_SCHEDULER_H_
#define EPIDEMIC_RUNTIME_SCHEDULER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/mpsc_queue.h"
#include "runtime/optimistic_lock.h"
#include "runtime/read_cache.h"
#include "runtime/task.h"

namespace epidemic::runtime {

/// Aggregated scheduler health counters (satellite: surfaced through
/// ReplicaServer::TotalStats and `epidemic_cli stats`).
struct SchedulerStats {
  struct Worker {
    uint64_t tasks_executed = 0;   // tasks drained by this owner thread
    uint64_t queue_depth_peak = 0; // max channel depth across owned shards
  };
  std::vector<Worker> workers;
  uint64_t inline_tasks = 0;       // tasks drained by caller threads
  uint64_t fast_path_runs = 0;     // Execute calls that ran without queuing
  uint64_t exclusive_barriers = 0; // ExecuteExclusive invocations
  /// Max channel depth across all shards (covers workers == 0 too).
  uint64_t queue_depth_peak = 0;
  uint64_t tasks_by_kind[kNumTaskKinds] = {};

  uint64_t TotalTasks() const {
    uint64_t n = inline_tasks;
    for (const Worker& w : workers) n += w.tasks_executed;
    return n;
  }
};

/// Single-writer shard scheduler: every shard is pinned to exactly one
/// owner and all mutation arrives over its bounded MPSC channel.
///
/// ## Ownership model
/// Each shard has a *gate* (a futex-style word lock on one atomic) and a
/// task channel. Whoever holds the gate is the shard's writer of the
/// moment and drains the channel in FIFO order; the gate is only ever
/// (a) try-locked, or (b) blocking-locked one-at-a-time / in ascending
/// shard order (ExecuteExclusive), so there is no lock-order cycle.
///
/// The invariant that makes the channel a real handoff rather than a
/// mailbox nobody checks: **a gate holder drains the channel to empty,
/// releases, and re-checks** — if the channel refilled and the gate is
/// free, the releaser re-acquires and drains again. Combined with
/// producers that try the gate once after pushing, every pushed task is
/// executed by *someone* without any thread needing to be woken. Owner
/// worker threads add parallelism on multi-core hosts; they are not
/// needed for progress, which is what keeps the 1-core configuration at
/// striped-lock speed instead of paying a context switch per operation.
///
/// ## Execution modes
/// - workers > 0: shard k is owned by thread k % workers; producers
///   signal the owner after batch fan-out, and still execute inline when
///   they win the gate (flat combining).
/// - workers == 0: callers do all the work inline behind the gates —
///   semantically the striped-lock configuration, minus lock convoys.
/// - manual: no threads are ever created and nothing parks; work is
///   queued with Post/Execute and run by explicit PumpAll/PumpShard
///   steps in ascending shard order. This is the deterministic pump the
///   model checker (src/check) drives — same scheduler code, zero
///   entropy, zero wall clocks.
///
/// Tasks must not re-enter the scheduler (no Execute/ExecuteBatch/
/// ExecuteExclusive from inside a task): the caller may already hold the
/// task's gate, and nested acquisition would deadlock. Enforced statically
/// by epilint_ast's `scheduler-reentry` rule (tools/epilint_ast.py).
///
/// Mutating tasks are bracketed by the shard's OptimisticVersion, which
/// invalidates the lock-free read path (read_cache.h) in one increment.
class ShardScheduler {
 public:
  struct Options {
    size_t num_shards = 1;
    /// Owner threads. 0 = inline mode (callers drain behind the gates).
    /// Clamped to num_shards.
    size_t workers = 0;
    /// Deterministic mode: no threads, no parking; run via PumpAll.
    bool manual = false;
    /// Per-shard channel capacity (rounded up to a power of two).
    size_t channel_capacity = 256;
    /// Per-shard optimistic read-cache slots (0 disables the cache).
    size_t read_cache_slots = 256;
  };

  explicit ShardScheduler(Options options);
  ~ShardScheduler();

  ShardScheduler(const ShardScheduler&) = delete;
  ShardScheduler& operator=(const ShardScheduler&) = delete;

  size_t num_shards() const { return num_shards_; }
  size_t num_workers() const { return workers_.size(); }
  bool manual() const { return options_.manual; }

  /// Runs `fn` inside shard `shard`'s single-writer section and returns
  /// after it executed. Fast path: win the gate, drain, run inline. Slow
  /// path: enqueue and either help drain or park until the holder runs
  /// it. In manual mode this pumps the shard synchronously (deterministic).
  void Execute(size_t shard, TaskKind kind, bool mutates,
               const std::function<void(const ShardToken&)>& fn);

  /// Queues `fn` without waiting for it. In manual mode the task stays
  /// queued until the next Pump step; otherwise the owner (or the next
  /// gate holder) runs it.
  void Post(size_t shard, TaskKind kind, bool mutates,
            std::function<void(const ShardToken&)> fn);

  /// Fan-out/join: enqueues every item to its shard's channel, wakes the
  /// owners once, helps drain, and returns when all items have executed.
  /// One anti-entropy round is S tasks, not S lock acquisitions.
  struct BatchItem {
    size_t shard = 0;
    TaskKind kind = TaskKind::kOther;
    bool mutates = false;
    std::function<void(const ShardToken&)> fn;
  };
  void ExecuteBatch(std::vector<BatchItem> items);

  /// Indexed fan-out/join: runs `fn(token, i)` inside `shards[i]`'s
  /// single-writer section for every i, with one kind/mutates for the
  /// whole batch. Semantically ExecuteBatch over per-item closures, but
  /// the anti-entropy hot loop builds no closure per segment: on the
  /// single-hardware-thread inline path it allocates nothing at all, and
  /// the queued paths wrap only (&fn, i) — small enough for std::function
  /// to store in place.
  void ExecuteBatchIndexed(
      const std::vector<size_t>& shards, TaskKind kind, bool mutates,
      const std::function<void(const ShardToken&, size_t)>& fn);

  /// Cross-shard barrier, the AllShardsLock replacement: acquires every
  /// gate in ascending order (draining each channel on the way, so queued
  /// work is ordered before the barrier), runs `fn` while owning all
  /// shards, then releases in descending order. `fn` receives an
  /// ExclusiveToken proving it owns every shard's single-writer section
  /// (assert it via AssertShardContext to call REQUIRES_SHARD_CONTEXT
  /// methods); use sparingly (stats, snapshots, reset).
  void ExecuteExclusive(bool mutates,
                        const std::function<void(const ExclusiveToken&)>& fn);

  /// Deterministic step functions (any mode, required for manual mode):
  /// run queued tasks shard-by-shard in ascending order until a full
  /// sweep finds every channel empty. Returns tasks executed.
  size_t PumpAll();
  size_t PumpShard(size_t shard);

  /// Optimistic read support. Readers sample, read published data, then
  /// validate; see read_cache.h for the staleness discipline.
  uint64_t ReadVersion(size_t shard) const {
    return shards_[shard].version.ReadBegin();
  }
  bool ValidateVersion(size_t shard, uint64_t sample) const {
    return shards_[shard].version.Validate(sample);
  }
  /// nullptr when the cache is disabled.
  ShardReadCache* read_cache(size_t shard) const {
    return shards_[shard].cache.get();
  }
  /// Current (even outside mutation brackets) version for stamping cache
  /// publishes; requires the caller to be inside the shard's section.
  uint64_t CurrentVersion(const ShardToken& token) const {
    return shards_[token.shard()].version.Current();
  }

  /// Global mutation epoch: incremented by every mutating task (and every
  /// mutating exclusive barrier) before its effects publish. Since shard
  /// state only changes inside mutating sections — the single-writer
  /// discipline — an unchanged epoch proves the whole database is
  /// unchanged, which is what makes the anti-entropy epoch probe sound
  /// (an O(1) "anything new since my last pull?" check). Starts at 1 so
  /// 0 can serve as a "never sampled" sentinel.
  uint64_t MutationEpoch() const {
    // relaxed: conservative-not-lossy probe — the epoch is sampled BEFORE
    // serving, so a stale read only causes an extra propagation round,
    // never a missed update (DESIGN.md §11).
    return mutation_epoch_.load(std::memory_order_relaxed);
  }

  /// True when tasks can actually run on other threads (owner workers
  /// exist and the host has >1 hardware thread). When false, callers may
  /// prefer shard-at-a-time Execute loops over batch fan-out: there is no
  /// parallelism to lose, and sequential execution lets them share
  /// caller-local state across tasks (e.g. encoding every serve segment
  /// into one response frame).
  bool Parallel() const { return parallel_; }

  SchedulerStats Stats(bool reset = false) const;

 private:
  /// Futex-style word lock: 0 free, 1 held, 2 held with waiters. Not an
  /// epidemic::Mutex on purpose — the runtime's locking discipline is
  /// gates + channels, and protocol_lint bans mutexes on shard state.
  struct Gate {
    std::atomic<uint32_t> state{0};
    bool TryLock() {
      uint32_t expected = 0;
      // relaxed: failure order — a failed try-lock publishes nothing and
      // reads nothing the caller acts on beyond "gate busy".
      return state.compare_exchange_strong(expected, 1,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed);
    }
    void Lock();
    void Unlock() {
      if (state.exchange(0, std::memory_order_release) == 2) {
        state.notify_one();
      }
    }
  };

  struct Shard {
    Gate gate;
    std::unique_ptr<MpscQueue<Task>> channel;
    OptimisticVersion version;
    std::unique_ptr<ShardReadCache> cache;
    /// Peak channel depth observed at push time (relaxed max).
    std::atomic<uint64_t> depth_peak{0};
  };

  struct WorkerState {
    std::thread thread;
    /// Wake epoch: bumped+notified by producers that want the owner to
    /// look at its shards. The worker re-reads it before parking, so a
    /// bump between scan and wait is never lost.
    std::atomic<uint64_t> signal{0};
    std::atomic<uint64_t> tasks_executed{0};
  };

  static ShardToken Token(size_t shard) { return ShardToken(shard); }

  size_t OwnerOf(size_t shard) const { return shard % workers_.size(); }

  /// REQUIRES: gate held. Pops and runs tasks until the channel reports
  /// empty; attributes them to `executed_counter`.
  size_t DrainLocked(size_t shard, std::atomic<uint64_t>* executed_counter);

  /// REQUIRES: gate held and channel drained. Releases the gate, then
  /// re-checks the channel: if it refilled and the gate is free, this
  /// thread re-acquires and drains again, so no task is stranded behind
  /// a free gate.
  void DrainAndUnlock(size_t shard, std::atomic<uint64_t>* executed_counter);

  /// Pushes with backpressure: on a full channel, helps drain (if the
  /// gate is free) or parks until the consumer makes space.
  void PushWithBackpressure(size_t shard, Task task);

  void RunTask(size_t shard, Task& task);
  void WakeOwner(size_t shard);
  void WorkerLoop(size_t worker_index);

  Options options_;
  std::unique_ptr<Shard[]> shards_;  // atomics inside: fixed-place storage
  size_t num_shards_ = 0;
  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::atomic<bool> stop_{false};
  /// True when owner threads exist *and* the host has >1 hardware thread;
  /// gates/futexes only pay for notification when it can actually help.
  bool parallel_ = false;

  std::atomic<uint64_t> mutation_epoch_{1};
  mutable std::atomic<uint64_t> inline_tasks_{0};
  mutable std::atomic<uint64_t> fast_path_runs_{0};
  mutable std::atomic<uint64_t> exclusive_barriers_{0};
  mutable std::atomic<uint64_t> tasks_by_kind_[kNumTaskKinds] = {};
};

}  // namespace epidemic::runtime

#endif  // EPIDEMIC_RUNTIME_SCHEDULER_H_
