#ifndef EPIDEMIC_RUNTIME_TASK_H_
#define EPIDEMIC_RUNTIME_TASK_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/thread_annotations.h"

namespace epidemic::runtime {

/// Taxonomy of shard work. Used for the per-kind execution counters in
/// SchedulerStats; the scheduler itself treats every kind identically.
enum class TaskKind : uint8_t {
  kLocalUpdate = 0,  // client Update/Delete/ResolveConflict
  kServe = 1,        // anti-entropy serve: build a propagation segment
  kAccept = 2,       // anti-entropy accept: apply a peer's segment
  kSnapshot = 3,     // DBVV/checkpoint/scan snapshot work
  kStats = 4,        // stats aggregation or reset
  kRead = 5,         // read task (optimistic fast path missed)
  kOther = 6,
};
inline constexpr size_t kNumTaskKinds = 7;

inline const char* TaskKindName(TaskKind kind) {
  switch (kind) {
    case TaskKind::kLocalUpdate: return "local_update";
    case TaskKind::kServe: return "serve";
    case TaskKind::kAccept: return "accept";
    case TaskKind::kSnapshot: return "snapshot";
    case TaskKind::kStats: return "stats";
    case TaskKind::kRead: return "read";
    case TaskKind::kOther: return "other";
  }
  return "unknown";
}

/// Capability token proving the bearer is executing inside shard
/// `shard()`'s single-writer section (its gate is held by the invoking
/// drain loop). Only ShardScheduler can mint one, so a function taking a
/// `const ShardToken&` is statically reachable only from scheduled tasks —
/// the REQUIRES(mu)-style discipline of PR 2, with channel ownership
/// standing in for the mutex.
class ShardToken {
 public:
  size_t shard() const { return shard_; }

 private:
  friend class ShardScheduler;
  explicit ShardToken(size_t shard) : shard_(shard) {}
  size_t shard_;
};

/// Capability token proving the bearer is inside an ExecuteExclusive
/// section: every shard's gate is held (in ascending index order) and every
/// channel has been drained, so the bearer is the sole writer of the whole
/// replica. Strictly stronger than any single ShardToken. Only
/// ShardScheduler can mint one.
class ExclusiveToken {
 public:
  ExclusiveToken(const ExclusiveToken&) = delete;
  ExclusiveToken& operator=(const ExclusiveToken&) = delete;

 private:
  friend class ShardScheduler;
  ExclusiveToken() = default;
};

/// Converts a scheduler-minted token into the static `shard_context`
/// capability (see common/thread_annotations.h). Called by the scheduler's
/// trampoline before invoking the task body, and by task lambdas whose body
/// the analysis examines separately from the trampoline (lambdas are
/// analyzed as independent functions). Possession of a token IS the proof:
/// the scheduler only passes one to code running inside the owner's
/// drain loop, so the assert carries no runtime check.
inline void AssertShardContext(const ShardToken& token)
    ASSERT_CAPABILITY(::epidemic::shard_context) {
  (void)token;
}

/// ExclusiveToken overload: all gates held implies every shard's
/// single-writer section is ours.
inline void AssertShardContext(const ExclusiveToken& token)
    ASSERT_CAPABILITY(::epidemic::shard_context) {
  (void)token;
}

/// A unit of shard work queued on the owner's channel.
struct Task {
  TaskKind kind = TaskKind::kOther;
  /// Mutating tasks are bracketed by the shard's OptimisticVersion
  /// (WriteBegin/WriteEnd), which invalidates optimistic readers.
  bool mutates = false;
  std::function<void(const ShardToken&)> fn;
};

}  // namespace epidemic::runtime

#endif  // EPIDEMIC_RUNTIME_TASK_H_
