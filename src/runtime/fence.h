#ifndef EPIDEMIC_RUNTIME_FENCE_H_
#define EPIDEMIC_RUNTIME_FENCE_H_

#include <atomic>

namespace epidemic::runtime {

/// Seqlock memory-ordering shims.
///
/// ThreadSanitizer does not model std::atomic_thread_fence (GCC rejects it
/// outright under -Werror=tsan), so the seqlock paths cannot pair relaxed
/// atomic accesses with standalone fences in a TSAN build. Instead, every
/// access that a fence would have ordered uses `kSeqlockOrder`: relaxed in
/// production (the fences do the ordering), seq_cst under TSAN (each access
/// carries its own ordering and the fences compile away). Both variants are
/// race-free — all seqlock-published data lives in atomics — and the
/// production variant keeps the hot read path fence+relaxed.
#if defined(__SANITIZE_THREAD__)
inline constexpr std::memory_order kSeqlockOrder = std::memory_order_seq_cst;
inline void SeqlockAcquireFence() {}
inline void SeqlockReleaseFence() {}
#else
// relaxed: the standalone acquire/release fences below carry the ordering
// for every kSeqlockOrder access (classic seqlock fence+relaxed pairing).
inline constexpr std::memory_order kSeqlockOrder = std::memory_order_relaxed;
inline void SeqlockAcquireFence() {
  std::atomic_thread_fence(std::memory_order_acquire);
}
inline void SeqlockReleaseFence() {
  std::atomic_thread_fence(std::memory_order_release);
}
#endif

}  // namespace epidemic::runtime

#endif  // EPIDEMIC_RUNTIME_FENCE_H_
