#ifndef EPIDEMIC_BASELINES_PER_ITEM_VV_NODE_H_
#define EPIDEMIC_BASELINES_PER_ITEM_VV_NODE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/protocol_node.h"
#include "vv/version_vector.h"

namespace epidemic {

/// Classic per-item version-vector anti-entropy, representing the protocols
/// of §8.3 (Ficus reconciliation, Wuu & Bernstein, Two-phase Gossip, ...).
///
/// Each item replica carries an IVV. One reconciliation pass compares the
/// IVV of *every* item at the source against the recipient's copy and
/// adopts dominating copies, flagging concurrent ones as conflicts. The
/// protocol is correct (meets the §2.1 criteria given transitive
/// scheduling) but its overhead is linear in the total number of data items
/// per exchange — the scalability problem the paper sets out to fix.
class PerItemVvNode : public ProtocolNode {
 public:
  PerItemVvNode(NodeId id, size_t num_nodes);

  NodeId id() const override { return id_; }
  std::string_view protocol_name() const override { return "per-item-vv"; }

  Status ClientUpdate(std::string_view item, std::string_view value) override;
  Result<std::string> ClientRead(std::string_view item) override;

  /// Pulls from `peer`: full pass over the peer's items.
  Status SyncWith(ProtocolNode& peer) override;

  const SyncStats& sync_stats() const override { return sync_stats_; }
  void ResetSyncStats() override { sync_stats_ = SyncStats{}; }

  uint64_t conflicts_detected() const override { return conflicts_; }

  std::vector<std::pair<std::string, std::string>> Snapshot() const override;

 private:
  struct VvItem {
    std::string value;
    VersionVector ivv;
  };

  NodeId id_;
  size_t num_nodes_;
  std::map<std::string, VvItem> items_;
  uint64_t conflicts_ = 0;
  SyncStats sync_stats_;
};

}  // namespace epidemic

#endif  // EPIDEMIC_BASELINES_PER_ITEM_VV_NODE_H_
