#include "baselines/merkle_node.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"

namespace epidemic {

namespace {
uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}
}  // namespace

MerkleNode::MerkleNode(NodeId id, size_t num_nodes, int depth)
    : id_(id),
      depth_(depth),
      num_buckets_(size_t{1} << depth),
      buckets_(num_buckets_),
      tree_(2 * num_buckets_, 0) {
  (void)num_nodes;
  EPI_CHECK(depth >= 1 && depth <= 24) << "unreasonable Merkle depth";
}

uint64_t MerkleNode::EntryDigest(std::string_view name,
                                 const Entry& e) const {
  uint64_t h = Mix(std::hash<std::string_view>{}(name));
  h ^= Mix(std::hash<std::string_view>{}(e.value) + 0x9e3779b97f4a7c15ULL);
  h ^= Mix(e.ts * 1315423911ULL + e.writer);
  return h;
}

size_t MerkleNode::BucketOf(std::string_view name) const {
  return Mix(std::hash<std::string_view>{}(name)) & (num_buckets_ - 1);
}

void MerkleNode::ApplyDigestDelta(size_t bucket, uint64_t delta) {
  // XOR composition makes digests order-independent and incrementally
  // updatable: one root-to-leaf path per write.
  for (size_t node = num_buckets_ + bucket; node >= 1; node /= 2) {
    tree_[node] ^= delta;
    if (node == 1) break;
  }
}

void MerkleNode::Put(std::string_view name, Entry entry) {
  size_t bucket = BucketOf(name);
  auto it = items_.find(std::string(name));
  uint64_t delta = 0;
  if (it != items_.end()) {
    delta ^= EntryDigest(name, it->second);  // remove the old digest
    it->second = std::move(entry);
  } else {
    it = items_.emplace(std::string(name), std::move(entry)).first;
    buckets_[bucket].push_back(it->first);
  }
  delta ^= EntryDigest(name, it->second);
  ApplyDigestDelta(bucket, delta);
}

Status MerkleNode::ClientUpdate(std::string_view item,
                                std::string_view value) {
  if (item.empty()) return Status::InvalidArgument("empty item name");
  Entry entry;
  entry.value = std::string(value);
  entry.ts = ++clock_;
  entry.writer = id_;
  Put(item, std::move(entry));
  return Status::OK();
}

Result<std::string> MerkleNode::ClientRead(std::string_view item) {
  auto it = items_.find(std::string(item));
  if (it == items_.end()) {
    return Status::NotFound("no item named '" + std::string(item) + "'");
  }
  return it->second.value;
}

Status MerkleNode::SyncWith(ProtocolNode& peer) {
  auto& source = static_cast<MerkleNode&>(peer);
  EPI_CHECK(source.depth_ == depth_) << "mismatched Merkle depths";
  ++sync_stats_.exchanges;

  // Tree descent: compare digests top-down, collecting differing leaves.
  // Every comparison is one 8-byte digest on the wire each way.
  std::vector<size_t> differing_buckets;
  std::vector<size_t> frontier = {1};
  while (!frontier.empty()) {
    std::vector<size_t> next;
    for (size_t node : frontier) {
      ++sync_stats_.version_comparisons;
      sync_stats_.control_bytes += 16;  // my digest + theirs
      if (tree_[node] == source.tree_[node]) continue;
      if (node >= num_buckets_) {
        differing_buckets.push_back(node - num_buckets_);
      } else {
        next.push_back(2 * node);
        next.push_back(2 * node + 1);
      }
    }
    frontier = std::move(next);
  }
  if (differing_buckets.empty()) {
    ++sync_stats_.noop_exchanges;
    return Status::OK();
  }

  // For each differing bucket the source ships its complete contents (the
  // overfetch real Merkle repair pays); the recipient adopts entries whose
  // (ts, writer) wins and keeps its own newer ones.
  for (size_t bucket : differing_buckets) {
    for (const std::string& name : source.buckets_[bucket]) {
      const Entry& theirs = source.items_.at(name);
      ++sync_stats_.items_examined;
      sync_stats_.control_bytes += 1 + name.size() + 10;
      sync_stats_.data_bytes += 1 + theirs.value.size();

      auto mine = items_.find(name);
      bool adopt = false;
      if (mine == items_.end()) {
        adopt = true;
      } else {
        const Entry& m = mine->second;
        // (ts, writer) is globally unique per write (each writer's clock is
        // strictly increasing), so ties mean identical entries.
        adopt = theirs.ts > m.ts ||
                (theirs.ts == m.ts && theirs.writer > m.writer);
      }
      if (adopt) {
        clock_ = std::max(clock_, theirs.ts);  // Lamport merge
        Put(name, theirs);
        ++sync_stats_.items_copied;
      }
    }
  }
  return Status::OK();
}

std::vector<std::pair<std::string, std::string>> MerkleNode::Snapshot()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(items_.size());
  for (const auto& [name, entry] : items_) {
    out.emplace_back(name, entry.value);
  }
  return out;
}

}  // namespace epidemic
