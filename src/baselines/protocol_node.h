#ifndef EPIDEMIC_BASELINES_PROTOCOL_NODE_H_
#define EPIDEMIC_BASELINES_PROTOCOL_NODE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "vv/version_vector.h"

namespace epidemic {

/// Cost and traffic accounting for one node's replica-synchronization
/// activity. `items_examined` is the paper's central overhead measure: how
/// many per-item pieces of version state a sync touched. For the paper's
/// protocol it is O(m) in the items actually shipped; for Lotus-style and
/// per-item-VV protocols it grows with the database size (§6, §8).
struct SyncStats {
  uint64_t exchanges = 0;        // sync attempts
  uint64_t noop_exchanges = 0;   // detected "nothing to do"
  uint64_t items_examined = 0;   // per-item metadata inspections
  uint64_t version_comparisons = 0;
  uint64_t items_copied = 0;
  uint64_t records_shipped = 0;  // log/update records moved
  uint64_t control_bytes = 0;    // estimated metadata bytes on the wire
  uint64_t data_bytes = 0;       // estimated payload bytes on the wire
};

/// Uniform protocol driver used by the simulator and the comparison
/// benchmarks. Each replication protocol (the paper's, and the §8
/// baselines) implements this interface.
///
/// `SyncWith(peer)` performs one scheduled synchronization step involving
/// `peer`: pull-based protocols (the paper's, Lotus, per-item VV) pull
/// updates *from* the peer into this node; the push-based Oracle baseline
/// pushes this node's pending updates *to* the peer. The simulator only
/// needs "node A syncs with node B now".
class ProtocolNode {
 public:
  virtual ~ProtocolNode() = default;

  virtual NodeId id() const = 0;

  /// Short protocol name for reports, e.g. "epidemic-dbvv".
  virtual std::string_view protocol_name() const = 0;

  /// Applies a client update at this replica.
  virtual Status ClientUpdate(std::string_view item,
                              std::string_view value) = 0;

  /// Client read at this replica.
  virtual Result<std::string> ClientRead(std::string_view item) = 0;

  /// One synchronization step with `peer`, which is guaranteed by the
  /// caller to be the same concrete protocol type.
  virtual Status SyncWith(ProtocolNode& peer) = 0;

  /// Out-of-bound single-item fetch; only the paper's protocol supports it.
  virtual Status OobFetch(ProtocolNode& peer, std::string_view item) {
    (void)peer;
    (void)item;
    return Status::NotSupported("protocol has no out-of-bound copying");
  }

  /// Structural self-check of the node's replica state (§4.1/§5.2 for the
  /// paper's protocol). Baselines without internal invariants report OK.
  virtual Status CheckInvariants() const { return Status::OK(); }

  virtual const SyncStats& sync_stats() const = 0;
  virtual void ResetSyncStats() = 0;

  /// Conflicts this node has detected and reported so far.
  virtual uint64_t conflicts_detected() const = 0;

  /// Committed (regular) contents, sorted by item name — used by the
  /// harness to check replica convergence.
  virtual std::vector<std::pair<std::string, std::string>> Snapshot()
      const = 0;
};

}  // namespace epidemic

#endif  // EPIDEMIC_BASELINES_PROTOCOL_NODE_H_
