#include "baselines/oracle_node.h"

namespace epidemic {

OracleNode::OracleNode(NodeId id, size_t num_nodes)
    : id_(id), sent_upto_(num_nodes, 0) {}

Status OracleNode::ClientUpdate(std::string_view item,
                                std::string_view value) {
  if (item.empty()) return Status::InvalidArgument("empty item name");
  UpdateRecord rec{std::string(item), std::string(value)};
  Apply(rec);
  log_.push_back(std::move(rec));
  return Status::OK();
}

Result<std::string> OracleNode::ClientRead(std::string_view item) {
  auto it = items_.find(std::string(item));
  if (it == items_.end()) {
    return Status::NotFound("no item named '" + std::string(item) + "'");
  }
  return it->second;
}

Status OracleNode::SyncWith(ProtocolNode& peer) {
  auto& dest = static_cast<OracleNode&>(peer);
  ++sync_stats_.exchanges;
  size_t& upto = sent_upto_[dest.id_];
  if (upto == log_.size()) {
    ++sync_stats_.noop_exchanges;
    return Status::OK();
  }
  // Ship the unsent suffix; the recipient applies records in origin order
  // and never forwards them.
  for (size_t i = upto; i < log_.size(); ++i) {
    const UpdateRecord& rec = log_[i];
    dest.Apply(rec);
    ++sync_stats_.records_shipped;
    ++sync_stats_.items_copied;
    sync_stats_.control_bytes += 1 + rec.item.size();
    sync_stats_.data_bytes += 1 + rec.value.size();
  }
  upto = log_.size();
  return Status::OK();
}

std::vector<std::pair<std::string, std::string>> OracleNode::Snapshot()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(items_.size());
  for (const auto& [name, value] : items_) out.emplace_back(name, value);
  return out;
}

}  // namespace epidemic
