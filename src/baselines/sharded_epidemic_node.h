#ifndef EPIDEMIC_BASELINES_SHARDED_EPIDEMIC_NODE_H_
#define EPIDEMIC_BASELINES_SHARDED_EPIDEMIC_NODE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "baselines/protocol_node.h"
#include "core/conflict.h"
#include "core/sharded_replica.h"

namespace epidemic {

/// ProtocolNode adapter over the sharded replica core, so the simulator can
/// drive sharded nodes with the same harness as every baseline. One
/// SyncWith is one aggregate handshake (all shard DBVVs in one message,
/// O(S) control cost) answered with per-shard segment bodies.
///
/// Byte accounting mirrors EpidemicNode's size model, with the aggregate
/// handshake counted as S version vectors plus one byte per skipped shard.
class ShardedEpidemicNode : public ProtocolNode {
 public:
  ShardedEpidemicNode(NodeId id, size_t num_nodes, size_t num_shards);

  NodeId id() const override { return replica_.id(); }
  std::string_view protocol_name() const override {
    return "epidemic-sharded";
  }

  Status ClientUpdate(std::string_view item, std::string_view value) override {
    // Single-owner escape: the simulator harness drives each node from one
    // thread, which IS every shard's single writer (no scheduler here).
    AssertShardContextHeld();
    return replica_.Update(item, value);
  }

  Result<std::string> ClientRead(std::string_view item) override {
    // Single-owner escape: see ClientUpdate.
    AssertShardContextHeld();
    return replica_.Read(item);
  }

  /// Pulls updates from `peer` via one aggregate sharded round.
  Status SyncWith(ProtocolNode& peer) override;

  /// Out-of-bound fetch of `item` from `peer` (§5.2), routed to its shard.
  Status OobFetch(ProtocolNode& peer, std::string_view item) override;

  Status CheckInvariants() const override { return replica_.CheckInvariants(); }

  const SyncStats& sync_stats() const override { return sync_stats_; }
  void ResetSyncStats() override { sync_stats_ = SyncStats{}; }

  uint64_t conflicts_detected() const override {
    return replica_.TotalStats().conflicts_detected;
  }

  std::vector<std::pair<std::string, std::string>> Snapshot() const override;

  /// Direct access for protocol-specific inspection.
  ShardedReplica& replica() { return replica_; }
  const ShardedReplica& replica() const { return replica_; }
  const RecordingConflictListener& conflicts() const { return listener_; }

 private:
  RecordingConflictListener listener_;
  ShardedReplica replica_;
  SyncStats sync_stats_;
};

}  // namespace epidemic

#endif  // EPIDEMIC_BASELINES_SHARDED_EPIDEMIC_NODE_H_
