#include "baselines/wuu_bernstein_node.h"

#include <algorithm>

#include "common/logging.h"

namespace epidemic {

WuuBernsteinNode::WuuBernsteinNode(NodeId id, size_t num_nodes)
    : id_(id),
      num_nodes_(num_nodes),
      applied_(num_nodes, 0),
      time_table_(num_nodes, std::vector<UpdateCount>(num_nodes, 0)) {}

Status WuuBernsteinNode::ClientUpdate(std::string_view item,
                                      std::string_view value) {
  if (item.empty()) return Status::InvalidArgument("empty item name");
  Record rec;
  rec.origin = id_;
  rec.seq = ++time_table_[id_][id_];
  rec.item = std::string(item);
  rec.value = std::string(value);
  Apply(rec);
  log_.push_back(std::move(rec));
  return Status::OK();
}

Result<std::string> WuuBernsteinNode::ClientRead(std::string_view item) {
  auto it = dictionary_.find(std::string(item));
  if (it == dictionary_.end()) {
    return Status::NotFound("no item named '" + std::string(item) + "'");
  }
  return it->second;
}

void WuuBernsteinNode::Apply(const Record& rec) {
  // Records from one origin arrive in seq order; ignore replays.
  if (rec.seq <= applied_[rec.origin]) return;
  EPI_CHECK(rec.seq == applied_[rec.origin] + 1)
      << "gossip delivered origin " << rec.origin << " out of order";
  applied_[rec.origin] = rec.seq;
  dictionary_[rec.item] = rec.value;
}

Status WuuBernsteinNode::SyncWith(ProtocolNode& peer) {
  auto& source = static_cast<WuuBernsteinNode&>(peer);
  ++sync_stats_.exchanges;

  // The gossip message: every record the source holds that (per its time
  // table) the recipient may not have seen, plus the source's full table.
  // Work at the source is linear in the records scanned (footnote 4: the
  // per-record "hasrecv" test), and the message always carries n^2 clock
  // entries.
  std::vector<Record> news;
  for (const Record& rec : source.log_) {
    ++sync_stats_.records_shipped;  // scanned; shipped if unknown to us
    if (!source.KnownBy(id_, rec.origin, rec.seq)) {
      news.push_back(rec);
      sync_stats_.control_bytes += 1 + rec.item.size() + 10;
      sync_stats_.data_bytes += 1 + rec.value.size();
    }
  }
  sync_stats_.control_bytes += 8ull * num_nodes_ * num_nodes_;  // the table

  // Receiver side: apply in (origin, seq) order.
  std::sort(news.begin(), news.end(),
            [](const Record& a, const Record& b) {
              if (a.origin != b.origin) return a.origin < b.origin;
              return a.seq < b.seq;
            });
  bool copied_any = false;
  for (const Record& rec : news) {
    if (rec.seq > applied_[rec.origin]) {
      Apply(rec);
      log_.push_back(rec);
      ++sync_stats_.items_copied;
      copied_any = true;
    }
  }
  if (!copied_any) ++sync_stats_.noop_exchanges;

  // Merge the tables: row-wise max with the sender's table, and our own
  // row additionally absorbs the sender's own row (we now know everything
  // the sender knew).
  for (NodeId k = 0; k < num_nodes_; ++k) {
    for (NodeId l = 0; l < num_nodes_; ++l) {
      time_table_[k][l] =
          std::max(time_table_[k][l], source.time_table_[k][l]);
    }
  }
  for (NodeId l = 0; l < num_nodes_; ++l) {
    time_table_[id_][l] =
        std::max(time_table_[id_][l], source.time_table_[source.id_][l]);
  }
  // The sender learns nothing in a pull, but it may now record that WE
  // know what it sent us (the paper's 2-phase variant piggybacks this; we
  // update the sender's view directly since the exchange is synchronous).
  for (NodeId l = 0; l < num_nodes_; ++l) {
    source.time_table_[id_][l] =
        std::max(source.time_table_[id_][l], time_table_[id_][l]);
  }

  GarbageCollect();
  source.GarbageCollect();
  return Status::OK();
}

void WuuBernsteinNode::GarbageCollect() {
  // A record everyone is known to have seen will never be needed again.
  auto known_by_all = [this](const Record& rec) {
    for (NodeId k = 0; k < num_nodes_; ++k) {
      if (time_table_[k][rec.origin] < rec.seq) return false;
    }
    return true;
  };
  while (!log_.empty() && known_by_all(log_.front())) log_.pop_front();
  // The deque is not globally ordered by knownness, so sweep the rest too.
  for (auto it = log_.begin(); it != log_.end();) {
    if (known_by_all(*it)) {
      it = log_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<std::pair<std::string, std::string>> WuuBernsteinNode::Snapshot()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(dictionary_.size());
  for (const auto& [name, value] : dictionary_) out.emplace_back(name, value);
  return out;
}

}  // namespace epidemic
