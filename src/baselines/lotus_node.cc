#include "baselines/lotus_node.h"

namespace epidemic {

LotusNode::LotusNode(NodeId id, size_t num_nodes)
    : id_(id), last_prop_to_(num_nodes, 0) {}

Status LotusNode::ClientUpdate(std::string_view item, std::string_view value) {
  if (item.empty()) return Status::InvalidArgument("empty item name");
  LotusItem& it = items_[std::string(item)];
  it.value = value;
  ++it.seqno;
  it.modified_at = Tick();
  db_modified_at_ = it.modified_at;
  return Status::OK();
}

Result<std::string> LotusNode::ClientRead(std::string_view item) {
  auto it = items_.find(std::string(item));
  if (it == items_.end()) {
    return Status::NotFound("no item named '" + std::string(item) + "'");
  }
  return it->second.value;
}

std::vector<LotusNode::ListEntry> LotusNode::BuildModifiedList(
    uint64_t since, uint64_t* scanned) const {
  std::vector<ListEntry> list;
  *scanned = 0;
  // The linear scan the paper charges Lotus for: every item's modification
  // time is compared against the last-propagation time.
  for (const auto& [name, item] : items_) {
    ++*scanned;
    if (item.modified_at > since) {
      list.push_back(ListEntry{name, item.seqno});
    }
  }
  return list;
}

Status LotusNode::SyncWith(ProtocolNode& peer) {
  auto& source = static_cast<LotusNode&>(peer);
  ++sync_stats_.exchanges;
  sync_stats_.control_bytes += 8;  // the request carries the requester id

  // Step 1 at the source: constant-time negative only when *nothing* in the
  // source database changed since the last propagation to us (§8.1).
  uint64_t since = source.last_prop_to_[id_];
  if (source.db_modified_at_ <= since) {
    ++sync_stats_.noop_exchanges;
    sync_stats_.control_bytes += 1;
    return Status::OK();
  }

  uint64_t scanned = 0;
  std::vector<ListEntry> list = source.BuildModifiedList(since, &scanned);
  sync_stats_.items_examined += scanned;
  source.last_prop_to_[id_] = source.logical_time_;

  // Step 2 at the recipient: copy every listed item whose sequence number
  // at the source is greater. Note the silent overwrite on concurrent
  // updates: seqno comparison cannot distinguish "newer" from "diverged".
  bool copied_any = false;
  for (const ListEntry& entry : list) {
    ++sync_stats_.version_comparisons;
    sync_stats_.control_bytes += 1 + entry.name.size() + 8;
    LotusItem& mine = items_[entry.name];
    if (entry.seqno > mine.seqno) {
      const LotusItem& theirs = source.items_.at(entry.name);
      mine.value = theirs.value;
      mine.seqno = entry.seqno;
      mine.modified_at = Tick();
      db_modified_at_ = mine.modified_at;
      ++sync_stats_.items_copied;
      sync_stats_.data_bytes += 1 + theirs.value.size();
      copied_any = true;
    }
  }
  if (!copied_any && list.empty()) ++sync_stats_.noop_exchanges;
  return Status::OK();
}

std::vector<std::pair<std::string, std::string>> LotusNode::Snapshot() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(items_.size());
  for (const auto& [name, item] : items_) out.emplace_back(name, item.value);
  return out;  // std::map iterates in sorted order already
}

}  // namespace epidemic
