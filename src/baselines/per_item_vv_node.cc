#include "baselines/per_item_vv_node.h"

namespace epidemic {

PerItemVvNode::PerItemVvNode(NodeId id, size_t num_nodes)
    : id_(id), num_nodes_(num_nodes) {}

Status PerItemVvNode::ClientUpdate(std::string_view item,
                                   std::string_view value) {
  if (item.empty()) return Status::InvalidArgument("empty item name");
  auto [it, inserted] = items_.try_emplace(
      std::string(item), VvItem{"", VersionVector(num_nodes_)});
  it->second.value = value;
  it->second.ivv.Increment(id_);
  return Status::OK();
}

Result<std::string> PerItemVvNode::ClientRead(std::string_view item) {
  auto it = items_.find(std::string(item));
  if (it == items_.end()) {
    return Status::NotFound("no item named '" + std::string(item) + "'");
  }
  return it->second.value;
}

Status PerItemVvNode::SyncWith(ProtocolNode& peer) {
  auto& source = static_cast<PerItemVvNode&>(peer);
  ++sync_stats_.exchanges;

  // The per-item pass the paper charges this protocol family for: every
  // item's version vector is shipped and compared, whether or not the
  // replicas differ.
  bool copied_any = false;
  for (const auto& [name, theirs] : source.items_) {
    ++sync_stats_.items_examined;
    ++sync_stats_.version_comparisons;
    sync_stats_.control_bytes += 1 + name.size() + 8 * num_nodes_;

    auto [it, inserted] =
        items_.try_emplace(name, VvItem{"", VersionVector(num_nodes_)});
    VvItem& mine = it->second;
    switch (VersionVector::Compare(theirs.ivv, mine.ivv)) {
      case VvOrder::kDominates:
        mine.value = theirs.value;
        mine.ivv = theirs.ivv;
        ++sync_stats_.items_copied;
        sync_stats_.data_bytes += 1 + theirs.value.size();
        copied_any = true;
        break;
      case VvOrder::kConcurrent:
        ++conflicts_;
        break;
      case VvOrder::kEqual:
      case VvOrder::kDominatedBy:
        break;
    }
  }
  if (!copied_any) ++sync_stats_.noop_exchanges;
  return Status::OK();
}

std::vector<std::pair<std::string, std::string>> PerItemVvNode::Snapshot()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(items_.size());
  for (const auto& [name, item] : items_) out.emplace_back(name, item.value);
  return out;
}

}  // namespace epidemic
