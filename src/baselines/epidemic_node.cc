#include "baselines/epidemic_node.h"

#include <algorithm>

#include "common/logging.h"

namespace epidemic {

namespace {
// Size model mirroring the binary codec: varint length prefix (~1 byte for
// short strings) plus payload.
uint64_t StringWireSize(const std::string& s) { return 1 + s.size(); }
uint64_t VvWireSize(size_t n) { return 8 * n; }
}  // namespace

EpidemicNode::EpidemicNode(NodeId id, size_t num_nodes)
    : replica_(id, num_nodes, &listener_) {}

Status EpidemicNode::SyncWith(ProtocolNode& peer) {
  // Single-owner escape: the simulator harness runs exchanges from one
  // thread, which is the single writer of both replicas in this round.
  AssertShardContextHeld();
  auto& source = static_cast<EpidemicNode&>(peer);
  ++sync_stats_.exchanges;

  PropagationRequest req = replica_.BuildPropagationRequest();
  sync_stats_.control_bytes += VvWireSize(req.dbvv.size());

  PropagationResponse resp = source.replica_.HandlePropagationRequest(req);
  if (resp.you_are_current) {
    ++sync_stats_.noop_exchanges;
    sync_stats_.control_bytes += 1;  // the "you-are-current" reply
    return Status::OK();
  }

  for (const auto& tail : resp.tails) {
    for (const WireLogRecord& rec : tail) {
      ++sync_stats_.records_shipped;
      sync_stats_.control_bytes += StringWireSize(rec.item_name) + 8;
    }
  }
  for (const WireItem& item : resp.items) {
    // One IVV comparison per *shipped* item only — the O(m) property.
    ++sync_stats_.items_examined;
    ++sync_stats_.version_comparisons;
    sync_stats_.control_bytes +=
        StringWireSize(item.name) + VvWireSize(item.ivv.size());
    sync_stats_.data_bytes += StringWireSize(item.value);
  }

  uint64_t adopted_before = replica_.stats().items_adopted;
  EPI_RETURN_NOT_OK(replica_.AcceptPropagation(resp));
  sync_stats_.items_copied += replica_.stats().items_adopted - adopted_before;
  return Status::OK();
}

Status EpidemicNode::OobFetch(ProtocolNode& peer, std::string_view item) {
  // Single-owner escape: see SyncWith.
  AssertShardContextHeld();
  auto& source = static_cast<EpidemicNode&>(peer);
  OobRequest req = replica_.BuildOobRequest(item);
  sync_stats_.control_bytes += StringWireSize(req.item_name);
  OobResponse resp = source.replica_.HandleOobRequest(req);
  if (resp.found) {
    sync_stats_.control_bytes +=
        StringWireSize(resp.item_name) + VvWireSize(resp.ivv.size());
    sync_stats_.data_bytes += StringWireSize(resp.value);
  }
  return replica_.AcceptOobResponse(resp);
}

std::vector<std::pair<std::string, std::string>> EpidemicNode::Snapshot()
    const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& item : replica_.items()) {
    out.emplace_back(item->name, item->value);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace epidemic
