#ifndef EPIDEMIC_BASELINES_MERKLE_NODE_H_
#define EPIDEMIC_BASELINES_MERKLE_NODE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/protocol_node.h"
#include "vv/version_vector.h"

namespace epidemic {

/// Merkle-tree anti-entropy, the design the paper's idea evolved into in
/// Dynamo-lineage systems (Cassandra, Riak): not from the paper itself, but
/// included as the modern comparator.
///
/// Items hash into 2^depth leaf buckets; each bucket keeps an incremental
/// (XOR-combined) digest of its contents and internal nodes combine child
/// digests, so a local write updates one root-to-leaf path in O(depth).
/// One synchronization exchange compares the roots — O(1) when the
/// replicas are identical, like the DBVV — and otherwise descends into
/// differing subtrees, finally exchanging the item lists of differing
/// buckets. Divergent items are reconciled last-writer-wins by a logical
/// (timestamp, node-id) pair; genuinely concurrent writes are *silently*
/// resolved, not detected — the correctness trade-off Dynamo makes and the
/// paper's version vectors avoid.
///
/// Costs vs the paper's protocol (experiment E11):
///   * identical replicas: both O(1) (root digest vs DBVV);
///   * m dirty items: Merkle pays O(m · depth) digest comparisons plus the
///     *full contents* of every touched bucket (overfetch), and ships no
///     information about which copy is newer beyond timestamps;
///   * memory: the tree is O(2^depth) digests vs the log vector's ≤ n·N
///     records.
class MerkleNode : public ProtocolNode {
 public:
  /// `depth` leaf-levels give 2^depth buckets. 10 (1024 buckets) suits
  /// benchmarks up to ~1M items.
  MerkleNode(NodeId id, size_t num_nodes, int depth = 10);

  NodeId id() const override { return id_; }
  std::string_view protocol_name() const override { return "merkle-lww"; }

  Status ClientUpdate(std::string_view item, std::string_view value) override;
  Result<std::string> ClientRead(std::string_view item) override;

  /// Pulls differing buckets from `peer` via Merkle descent.
  Status SyncWith(ProtocolNode& peer) override;

  const SyncStats& sync_stats() const override { return sync_stats_; }
  void ResetSyncStats() override { sync_stats_ = SyncStats{}; }

  /// LWW reconciliation detects nothing (see class comment).
  uint64_t conflicts_detected() const override { return 0; }

  std::vector<std::pair<std::string, std::string>> Snapshot() const override;

  /// Root digest — equal roots mean (with overwhelming probability)
  /// identical replicas.
  uint64_t RootDigest() const { return tree_[1]; }

 private:
  struct Entry {
    std::string value;
    uint64_t ts = 0;     // logical last-write time
    NodeId writer = 0;   // tiebreak
  };

  uint64_t EntryDigest(std::string_view name, const Entry& e) const;
  size_t BucketOf(std::string_view name) const;
  void ApplyDigestDelta(size_t bucket, uint64_t delta);
  void Put(std::string_view name, Entry entry);

  NodeId id_;
  int depth_;
  size_t num_buckets_;
  uint64_t clock_ = 0;  // Lamport-style: bumped on write and on receive
  std::map<std::string, Entry> items_;
  std::vector<std::vector<std::string>> buckets_;  // names per bucket
  // Heap-layout tree: tree_[1] is the root; leaves at [num_buckets_, 2N).
  std::vector<uint64_t> tree_;
  SyncStats sync_stats_;
};

}  // namespace epidemic

#endif  // EPIDEMIC_BASELINES_MERKLE_NODE_H_
