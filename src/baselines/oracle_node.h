#ifndef EPIDEMIC_BASELINES_ORACLE_NODE_H_
#define EPIDEMIC_BASELINES_ORACLE_NODE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/protocol_node.h"

namespace epidemic {

/// Oracle Symmetric Replication–style push as described in §8.2.
///
/// Not an epidemic protocol: each server keeps a log of the updates it
/// originated and periodically ships the unsent suffix to every other
/// server directly. Recipients apply the records but never forward them.
///
/// In the absence of failures this is efficient — no per-item state
/// comparison at all. The reproduced weakness: if the originator fails
/// after delivering to only some peers, the rest stay obsolete until the
/// originator recovers, since nobody forwards (experiment E7).
class OracleNode : public ProtocolNode {
 public:
  OracleNode(NodeId id, size_t num_nodes);

  NodeId id() const override { return id_; }
  std::string_view protocol_name() const override { return "oracle-push"; }

  Status ClientUpdate(std::string_view item, std::string_view value) override;
  Result<std::string> ClientRead(std::string_view item) override;

  /// Pushes this node's unsent update records to `peer`.
  Status SyncWith(ProtocolNode& peer) override;

  const SyncStats& sync_stats() const override { return sync_stats_; }
  void ResetSyncStats() override { sync_stats_ = SyncStats{}; }

  /// The scheme has no conflict detection; records overwrite on arrival.
  uint64_t conflicts_detected() const override { return 0; }

  std::vector<std::pair<std::string, std::string>> Snapshot() const override;

  /// Number of originated records not yet delivered to `peer`.
  size_t PendingFor(NodeId peer) const {
    return log_.size() - sent_upto_[peer];
  }

 private:
  struct UpdateRecord {
    std::string item;
    std::string value;
  };

  void Apply(const UpdateRecord& rec) { items_[rec.item] = rec.value; }

  NodeId id_;
  std::map<std::string, std::string> items_;
  std::vector<UpdateRecord> log_;       // updates originated here
  std::vector<size_t> sent_upto_;       // per-peer delivered prefix of log_
  SyncStats sync_stats_;
};

}  // namespace epidemic

#endif  // EPIDEMIC_BASELINES_ORACLE_NODE_H_
