#ifndef EPIDEMIC_BASELINES_WUU_BERNSTEIN_NODE_H_
#define EPIDEMIC_BASELINES_WUU_BERNSTEIN_NODE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/protocol_node.h"
#include "vv/version_vector.h"

namespace epidemic {

/// Wuu & Bernstein's replicated-log protocol (§8.3, reference [15]), the
/// classic gossip solution to the "replicated log and dictionary" problem.
///
/// Each node keeps
///   * an update log of records (origin, seq, item, value);
///   * a two-dimensional time table TT[k][l] — what this node knows about
///     how much of node l's update stream node k has seen.
/// A gossip message from j to i carries the log records j believes i has
/// not seen (judged from TT[i][·]) plus j's whole time table; the receiver
/// applies new records in order and merges the table. Records known by
/// every node are garbage-collected.
///
/// Costs reproduced from the paper's analysis (§8.3 + footnote 4): each
/// exchange does work linear in the records considered *and* ships an
/// n×n table; and because records are per-update (not per-item-latest),
/// repeated updates to one item all travel. Conflict handling: the log
/// merge applies updates from different origins in (origin, seq) arrival
/// order — concurrent writes are not detected, matching the dictionary
/// use-case the protocol was designed for.
class WuuBernsteinNode : public ProtocolNode {
 public:
  WuuBernsteinNode(NodeId id, size_t num_nodes);

  NodeId id() const override { return id_; }
  std::string_view protocol_name() const override { return "wuu-bernstein"; }

  Status ClientUpdate(std::string_view item, std::string_view value) override;
  Result<std::string> ClientRead(std::string_view item) override;

  /// Pulls a gossip message from `peer` into this node.
  Status SyncWith(ProtocolNode& peer) override;

  const SyncStats& sync_stats() const override { return sync_stats_; }
  void ResetSyncStats() override { sync_stats_ = SyncStats{}; }

  uint64_t conflicts_detected() const override { return 0; }

  std::vector<std::pair<std::string, std::string>> Snapshot() const override;

  /// Records currently retained (post-GC) — for the memory comparison with
  /// the paper's bounded log vector.
  size_t log_size() const { return log_.size(); }

  /// hasrecv(TT, k, rec): does node k, per our table, know this record?
  bool KnownBy(NodeId k, NodeId origin, UpdateCount seq) const {
    return time_table_[k][origin] >= seq;
  }

 private:
  struct Record {
    NodeId origin;
    UpdateCount seq;
    std::string item;
    std::string value;
  };

  void Apply(const Record& rec);
  void GarbageCollect();

  NodeId id_;
  size_t num_nodes_;
  std::map<std::string, std::string> dictionary_;
  // Latest applied seq per origin guards in-order application.
  std::vector<UpdateCount> applied_;
  std::deque<Record> log_;
  // time_table_[k][l]: how many of l's updates node k has seen, to this
  // node's knowledge. Row id_ is this node's own version vector.
  std::vector<std::vector<UpdateCount>> time_table_;
  SyncStats sync_stats_;
};

}  // namespace epidemic

#endif  // EPIDEMIC_BASELINES_WUU_BERNSTEIN_NODE_H_
