#ifndef EPIDEMIC_BASELINES_LOTUS_NODE_H_
#define EPIDEMIC_BASELINES_LOTUS_NODE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/protocol_node.h"

namespace epidemic {

/// Lotus Notes–style replication as described in §8.1.
///
/// Every data-item copy carries a *sequence number* — the count of updates
/// the copy reflects. Each node also stamps items with a local logical
/// modification time and remembers, per peer, when it last propagated to
/// that peer. Anti-entropy from source j to recipient i:
///
///   1. j scans for items modified since its last propagation to i and
///      sends their (name, sequence number) list — linear in the database
///      size unless *nothing at all* changed (j keeps a database-level
///      last-modified time for that constant-time negative);
///   2. i copies every listed item whose sequence number on j is greater
///      than its own.
///
/// Two deliberate weaknesses reproduced from the paper's analysis:
///   * identical replicas still pay a linear scan whenever the source was
///     modified since the last direct propagation (e.g. via a third node);
///   * concurrent updates are silently "resolved" in favour of the copy
///     with the larger sequence number — a correctness violation of §2.1
///     (the copy with more updates wins even when the histories diverged).
class LotusNode : public ProtocolNode {
 public:
  LotusNode(NodeId id, size_t num_nodes);

  NodeId id() const override { return id_; }
  std::string_view protocol_name() const override { return "lotus-seqno"; }

  Status ClientUpdate(std::string_view item, std::string_view value) override;
  Result<std::string> ClientRead(std::string_view item) override;

  /// Pulls updates from `peer` (the source) into this node.
  Status SyncWith(ProtocolNode& peer) override;

  const SyncStats& sync_stats() const override { return sync_stats_; }
  void ResetSyncStats() override { sync_stats_ = SyncStats{}; }

  /// Lotus never detects conflicts; it silently overwrites (§8.1).
  uint64_t conflicts_detected() const override { return 0; }

  std::vector<std::pair<std::string, std::string>> Snapshot() const override;

 private:
  struct LotusItem {
    std::string value;
    uint64_t seqno = 0;         // updates reflected in this copy
    uint64_t modified_at = 0;   // local logical time of last change
  };

  /// Entry of the modified-items list j sends to i in step 1.
  struct ListEntry {
    std::string name;
    uint64_t seqno;
  };

  /// Source side of step 1: list of items modified since `since`.
  /// Fills `*scanned` with the number of items examined.
  std::vector<ListEntry> BuildModifiedList(uint64_t since,
                                           uint64_t* scanned) const;

  uint64_t Tick() { return ++logical_time_; }

  NodeId id_;
  uint64_t logical_time_ = 0;
  uint64_t db_modified_at_ = 0;  // database-level last-modified time
  std::map<std::string, LotusItem> items_;
  std::vector<uint64_t> last_prop_to_;  // logical time of last prop to peer
  SyncStats sync_stats_;
};

}  // namespace epidemic

#endif  // EPIDEMIC_BASELINES_LOTUS_NODE_H_
