#ifndef EPIDEMIC_BASELINES_EPIDEMIC_NODE_H_
#define EPIDEMIC_BASELINES_EPIDEMIC_NODE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "baselines/protocol_node.h"
#include "core/conflict.h"
#include "core/replica.h"

namespace epidemic {

/// ProtocolNode adapter over the paper's protocol (core::Replica), so the
/// simulator and comparison benchmarks can drive it uniformly against the
/// §8 baselines.
///
/// Wire-byte accounting uses the same size model as the binary codec in
/// src/net: varint length-prefixed names/values, 8 bytes per version-vector
/// component, 8 bytes per sequence number.
class EpidemicNode : public ProtocolNode {
 public:
  EpidemicNode(NodeId id, size_t num_nodes);

  NodeId id() const override { return replica_.id(); }
  std::string_view protocol_name() const override { return "epidemic-dbvv"; }

  Status ClientUpdate(std::string_view item, std::string_view value) override {
    // Single-owner escape: the simulator harness drives each node from one
    // thread, which IS this replica's single writer (no scheduler here).
    AssertShardContextHeld();
    return replica_.Update(item, value);
  }

  Result<std::string> ClientRead(std::string_view item) override {
    // Single-owner escape: see ClientUpdate.
    AssertShardContextHeld();
    return replica_.Read(item);
  }

  /// Pulls updates from `peer` via one full DBVV-based anti-entropy round.
  Status SyncWith(ProtocolNode& peer) override;

  /// Out-of-bound fetch of `item` from `peer` (§5.2).
  Status OobFetch(ProtocolNode& peer, std::string_view item) override;

  Status CheckInvariants() const override { return replica_.CheckInvariants(); }

  const SyncStats& sync_stats() const override { return sync_stats_; }
  void ResetSyncStats() override { sync_stats_ = SyncStats{}; }

  uint64_t conflicts_detected() const override {
    return replica_.stats().conflicts_detected;
  }

  std::vector<std::pair<std::string, std::string>> Snapshot() const override;

  /// Direct access to the wrapped replica for protocol-specific inspection.
  Replica& replica() { return replica_; }
  const Replica& replica() const { return replica_; }
  const RecordingConflictListener& conflicts() const { return listener_; }

 private:
  RecordingConflictListener listener_;
  Replica replica_;
  SyncStats sync_stats_;
};

}  // namespace epidemic

#endif  // EPIDEMIC_BASELINES_EPIDEMIC_NODE_H_
