#include "baselines/sharded_epidemic_node.h"

#include <algorithm>

#include "common/logging.h"
#include "core/wire.h"

namespace epidemic {

namespace {
uint64_t StringWireSize(const std::string& s) { return 1 + s.size(); }
uint64_t VvWireSize(size_t n) { return 8 * n; }
}  // namespace

ShardedEpidemicNode::ShardedEpidemicNode(NodeId id, size_t num_nodes,
                                         size_t num_shards)
    : replica_(id, num_nodes, num_shards, &listener_) {}

Status ShardedEpidemicNode::SyncWith(ProtocolNode& peer) {
  // Single-owner escape: the simulator harness runs exchanges from one
  // thread, which is the single writer of every shard on both nodes.
  AssertShardContextHeld();
  auto& source = static_cast<ShardedEpidemicNode&>(peer);
  ++sync_stats_.exchanges;

  ShardedPropagationRequest req = replica_.BuildPropagationRequest();
  for (const VersionVector& vv : req.shard_dbvvs) {
    sync_stats_.control_bytes += VvWireSize(vv.size());
  }

  ShardedPropagationResponse resp =
      source.replica_.HandlePropagationRequest(req);
  if (resp.you_are_current()) {
    ++sync_stats_.noop_exchanges;
    sync_stats_.control_bytes += 2;  // shard count + empty segment list
    return Status::OK();
  }

  // Unchanged shards cost one byte of "nothing here" each; shipped shards
  // are accounted from their decoded per-shard bodies, matching the
  // unsharded node's model record for record.
  sync_stats_.control_bytes +=
      resp.num_shards - resp.segments.size();
  for (const ShardedPropagationSegment& seg : resp.segments) {
    Result<PropagationResponse> body = wire::DecodeShardSegmentBody(seg.body);
    if (!body.ok()) return body.status();
    for (const auto& tail : body->tails) {
      for (const WireLogRecord& rec : tail) {
        ++sync_stats_.records_shipped;
        sync_stats_.control_bytes += StringWireSize(rec.item_name) + 8;
      }
    }
    for (const WireItem& item : body->items) {
      ++sync_stats_.items_examined;
      ++sync_stats_.version_comparisons;
      sync_stats_.control_bytes +=
          StringWireSize(item.name) + VvWireSize(item.ivv.size());
      sync_stats_.data_bytes += StringWireSize(item.value);
    }
  }

  uint64_t adopted_before = replica_.TotalStats().items_adopted;
  EPI_RETURN_NOT_OK(replica_.AcceptPropagation(resp));
  sync_stats_.items_copied +=
      replica_.TotalStats().items_adopted - adopted_before;
  return Status::OK();
}

Status ShardedEpidemicNode::OobFetch(ProtocolNode& peer,
                                     std::string_view item) {
  // Single-owner escape: see SyncWith.
  AssertShardContextHeld();
  auto& source = static_cast<ShardedEpidemicNode&>(peer);
  OobRequest req = replica_.BuildOobRequest(item);
  sync_stats_.control_bytes += StringWireSize(req.item_name);
  OobResponse resp = source.replica_.HandleOobRequest(req);
  if (resp.found) {
    sync_stats_.control_bytes +=
        StringWireSize(resp.item_name) + VvWireSize(resp.ivv.size());
    sync_stats_.data_bytes += StringWireSize(resp.value);
  }
  return replica_.AcceptOobResponse(resp);
}

std::vector<std::pair<std::string, std::string>>
ShardedEpidemicNode::Snapshot() const {
  std::vector<std::pair<std::string, std::string>> out;
  for (size_t k = 0; k < replica_.num_shards(); ++k) {
    for (const auto& item : replica_.shard(k).items()) {
      out.emplace_back(item->name, item->value);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace epidemic
