#include "sim/cluster.h"

#include "baselines/epidemic_node.h"
#include "baselines/lotus_node.h"
#include "baselines/sharded_epidemic_node.h"
#include "baselines/merkle_node.h"
#include "baselines/oracle_node.h"
#include "baselines/per_item_vv_node.h"
#include "baselines/wuu_bernstein_node.h"
#include "common/logging.h"

namespace epidemic::sim {

std::string_view ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kEpidemicDbvv:
      return "epidemic-dbvv";
    case ProtocolKind::kLotus:
      return "lotus-seqno";
    case ProtocolKind::kOraclePush:
      return "oracle-push";
    case ProtocolKind::kPerItemVv:
      return "per-item-vv";
    case ProtocolKind::kWuuBernstein:
      return "wuu-bernstein";
    case ProtocolKind::kMerkle:
      return "merkle-lww";
  }
  return "unknown";
}

std::unique_ptr<ProtocolNode> MakeNode(ProtocolKind kind, NodeId id,
                                       size_t num_nodes, size_t num_shards) {
  switch (kind) {
    case ProtocolKind::kEpidemicDbvv:
      if (num_shards > 1) {
        return std::make_unique<ShardedEpidemicNode>(id, num_nodes,
                                                     num_shards);
      }
      return std::make_unique<EpidemicNode>(id, num_nodes);
    case ProtocolKind::kLotus:
      return std::make_unique<LotusNode>(id, num_nodes);
    case ProtocolKind::kOraclePush:
      return std::make_unique<OracleNode>(id, num_nodes);
    case ProtocolKind::kPerItemVv:
      return std::make_unique<PerItemVvNode>(id, num_nodes);
    case ProtocolKind::kWuuBernstein:
      return std::make_unique<WuuBernsteinNode>(id, num_nodes);
    case ProtocolKind::kMerkle:
      return std::make_unique<MerkleNode>(id, num_nodes);
  }
  return nullptr;
}

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      rng_(config.seed),
      workload_(config.workload),
      up_(config.num_nodes, true),
      link_up_(config.num_nodes,
               std::vector<bool>(config.num_nodes, true)) {
  EPI_CHECK(config.num_nodes >= 2) << "a cluster needs at least two nodes";
  nodes_.reserve(config.num_nodes);
  for (NodeId i = 0; i < config.num_nodes; ++i) {
    nodes_.push_back(
        MakeNode(config.protocol, i, config.num_nodes, config.num_shards));
  }
}

void Cluster::ApplyUpdates(size_t count) {
  for (size_t i = 0; i < count; ++i) {
    Workload::Op op = workload_.NextUpdate(num_nodes());
    // Clients retarget their update when the chosen replica is down.
    while (!up_[op.node]) {
      op.node = static_cast<NodeId>(rng_.Uniform(num_nodes()));
    }
    Status s = nodes_[op.node]->ClientUpdate(op.item, op.value);
    EPI_CHECK(s.ok()) << "workload update failed: " << s.ToString();
  }
}

Status Cluster::UpdateAt(NodeId id, std::string_view item,
                         std::string_view value) {
  if (!up_[id]) {
    return Status::Unavailable("node " + std::to_string(id) + " is down");
  }
  return nodes_[id]->ClientUpdate(item, value);
}

Status Cluster::SyncPair(NodeId actor, NodeId peer) {
  if (actor == peer) return Status::InvalidArgument("self-sync");
  if (!up_[actor] || !up_[peer]) {
    return Status::Unavailable("sync pair involves a crashed node");
  }
  if (!link_up_[actor][peer]) {
    return Status::Unavailable("link " + std::to_string(actor) + "<->" +
                               std::to_string(peer) + " is severed");
  }
  return nodes_[actor]->SyncWith(*nodes_[peer]);
}

void Cluster::SetLinkUp(NodeId a, NodeId b, bool up) {
  link_up_[a][b] = up;
  link_up_[b][a] = up;
}

bool Cluster::IsLinkUp(NodeId a, NodeId b) const { return link_up_[a][b]; }

void Cluster::Partition(const std::vector<NodeId>& side_a,
                        const std::vector<NodeId>& side_b) {
  for (NodeId a : side_a) {
    for (NodeId b : side_b) SetLinkUp(a, b, false);
  }
}

void Cluster::HealAllLinks() {
  for (auto& row : link_up_) {
    for (size_t j = 0; j < row.size(); ++j) row[j] = true;
  }
}

size_t Cluster::SyncRound() {
  size_t actions = 0;
  for (NodeId i = 0; i < num_nodes(); ++i) {
    if (!up_[i]) continue;
    NodeId peer;
    if (config_.peering == Peering::kRing) {
      peer = static_cast<NodeId>((i + 1) % num_nodes());
      // Ring neighbor unreachable (down or partitioned): skip this round.
      if (!up_[peer] || !link_up_[i][peer]) continue;
    } else {
      // Pick a random live, reachable peer, if any exists.
      bool any_reachable = false;
      for (NodeId j = 0; j < num_nodes() && !any_reachable; ++j) {
        any_reachable = (j != i && up_[j] && link_up_[i][j]);
      }
      if (!any_reachable) continue;
      do {
        peer = static_cast<NodeId>(rng_.Uniform(num_nodes()));
      } while (peer == i || !up_[peer] || !link_up_[i][peer]);
    }
    Status s = nodes_[i]->SyncWith(*nodes_[peer]);
    EPI_CHECK(s.ok()) << "sync failed: " << s.ToString();
    ++actions;
  }
  return actions;
}

Result<size_t> Cluster::RunUntilConverged(size_t max_rounds) {
  if (IsConverged()) return size_t{0};
  for (size_t round = 1; round <= max_rounds; ++round) {
    SyncRound();
    if (IsConverged()) return round;
  }
  return Status::TimedOut("not converged after " +
                          std::to_string(max_rounds) + " rounds");
}

size_t Cluster::LiveCount() const {
  size_t live = 0;
  for (bool up : up_) live += up ? 1 : 0;
  return live;
}

bool Cluster::IsConverged() const { return CountDivergentFrom(0) == 0; }

Status Cluster::CheckProtocolInvariants() const {
  for (NodeId i = 0; i < num_nodes(); ++i) {
    Status s = nodes_[i]->CheckInvariants();
    if (!s.ok()) {
      return Status::Internal("node " + std::to_string(i) + ": " +
                              s.message());
    }
  }
  return Status::OK();
}

size_t Cluster::CountDivergentFrom(NodeId reference) const {
  // Compare committed snapshots against the first live node (or the given
  // reference if it is live).
  NodeId ref = reference;
  if (!up_[ref]) {
    bool found = false;
    for (NodeId i = 0; i < num_nodes(); ++i) {
      if (up_[i]) {
        ref = i;
        found = true;
        break;
      }
    }
    if (!found) return 0;  // nobody is alive; vacuously converged
  }
  auto ref_snapshot = nodes_[ref]->Snapshot();
  size_t divergent = 0;
  for (NodeId i = 0; i < num_nodes(); ++i) {
    if (i == ref || !up_[i]) continue;
    if (nodes_[i]->Snapshot() != ref_snapshot) ++divergent;
  }
  return divergent;
}

SyncStats Cluster::TotalSyncStats() const {
  SyncStats total;
  for (const auto& node : nodes_) {
    const SyncStats& s = node->sync_stats();
    total.exchanges += s.exchanges;
    total.noop_exchanges += s.noop_exchanges;
    total.items_examined += s.items_examined;
    total.version_comparisons += s.version_comparisons;
    total.items_copied += s.items_copied;
    total.records_shipped += s.records_shipped;
    total.control_bytes += s.control_bytes;
    total.data_bytes += s.data_bytes;
  }
  return total;
}

uint64_t Cluster::TotalConflicts() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->conflicts_detected();
  return total;
}

}  // namespace epidemic::sim
