#ifndef EPIDEMIC_SIM_CLUSTER_H_
#define EPIDEMIC_SIM_CLUSTER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/protocol_node.h"
#include "common/random.h"
#include "common/result.h"
#include "sim/workload.h"

namespace epidemic::sim {

/// Which replication protocol a cluster runs.
enum class ProtocolKind {
  kEpidemicDbvv,   // the paper's protocol
  kLotus,          // §8.1 baseline
  kOraclePush,     // §8.2 baseline
  kPerItemVv,      // §8.3 baseline (Ficus-style reconciliation)
  kWuuBernstein,   // §8.3 baseline (replicated-log gossip, ref [15])
  kMerkle,         // modern comparator: Merkle-tree LWW anti-entropy
};

std::string_view ProtocolKindName(ProtocolKind kind);

/// How a node picks its peer for one anti-entropy round.
enum class Peering {
  kRing,    // node i syncs with (i+1) mod n — deterministic transitive cycle
  kRandom,  // uniform random other node — classic rumor-mongering schedule
};

struct ClusterConfig {
  ProtocolKind protocol = ProtocolKind::kEpidemicDbvv;
  size_t num_nodes = 4;
  Peering peering = Peering::kRing;
  uint64_t seed = 7;
  /// Shards per epidemic node (1 = the unsharded core; >1 switches
  /// kEpidemicDbvv nodes to the sharded core with aggregate handshakes).
  /// Ignored by the baseline protocols.
  size_t num_shards = 1;
  WorkloadConfig workload;
};

/// Creates a fresh protocol node of the given kind. Exposed so tests and
/// benchmarks can assemble ad-hoc topologies without a Cluster.
/// `num_shards` > 1 selects the sharded epidemic core for kEpidemicDbvv.
std::unique_ptr<ProtocolNode> MakeNode(ProtocolKind kind, NodeId id,
                                       size_t num_nodes,
                                       size_t num_shards = 1);

/// Round-based deterministic simulation harness over any ProtocolNode
/// implementation.
///
/// A "round" performs one sync action per live node against a peer chosen
/// by the peering policy. Crashed nodes neither initiate nor serve syncs.
/// With ring peering and no failures, n-1 rounds always suffice for full
/// (transitive) propagation, matching Theorem 5's scheduling premise.
class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  size_t num_nodes() const { return nodes_.size(); }
  ProtocolNode& node(NodeId id) { return *nodes_[id]; }
  const ProtocolNode& node(NodeId id) const { return *nodes_[id]; }

  // -------------------------------------------------------------------
  // Workload.

  /// Applies `count` generated client updates at live nodes (ops targeting
  /// crashed nodes are re-rolled).
  void ApplyUpdates(size_t count);

  /// Direct client update at a specific node.
  Status UpdateAt(NodeId id, std::string_view item, std::string_view value);

  // -------------------------------------------------------------------
  // Synchronization.

  /// One sync action: `actor` syncs with `peer` (pull for epidemic/Lotus/
  /// per-item-VV, push for Oracle). Fails with Unavailable if either node
  /// is down.
  Status SyncPair(NodeId actor, NodeId peer);

  /// One full round per the peering policy. Returns the number of sync
  /// actions that ran (crashed nodes skip).
  size_t SyncRound();

  /// Runs rounds until all live replicas converge, up to `max_rounds`.
  /// Returns the number of rounds taken, or TimedOut.
  Result<size_t> RunUntilConverged(size_t max_rounds);

  // -------------------------------------------------------------------
  // Failure injection.

  void Crash(NodeId id) { up_[id] = false; }
  void Recover(NodeId id) { up_[id] = true; }
  bool IsUp(NodeId id) const { return up_[id]; }
  size_t LiveCount() const;

  /// Link-level failures: a pair with a severed link cannot sync even when
  /// both endpoints are alive (network partitions, flaky WAN links). Links
  /// are symmetric and default to up.
  void SetLinkUp(NodeId a, NodeId b, bool up);
  bool IsLinkUp(NodeId a, NodeId b) const;

  /// Severs every link between the two groups (a partition). Nodes absent
  /// from both groups keep all their links.
  void Partition(const std::vector<NodeId>& side_a,
                 const std::vector<NodeId>& side_b);

  /// Restores every link.
  void HealAllLinks();

  // -------------------------------------------------------------------
  // Observation.

  /// True when every live node's committed snapshot is identical.
  bool IsConverged() const;

  /// Runs every node's ProtocolNode::CheckInvariants (crashed nodes
  /// included — crashes must not corrupt state). Returns the first failure,
  /// prefixed with the offending node id. Gives simulation tests and the
  /// model checker a one-call structural oracle.
  Status CheckProtocolInvariants() const;

  /// Number of live nodes whose snapshot differs from node `reference`'s.
  size_t CountDivergentFrom(NodeId reference) const;

  /// Aggregated sync statistics over all nodes.
  SyncStats TotalSyncStats() const;

  /// Total conflicts detected across all nodes.
  uint64_t TotalConflicts() const;

  Workload& workload() { return workload_; }
  Rng& rng() { return rng_; }
  const ClusterConfig& config() const { return config_; }

 private:
  ClusterConfig config_;
  Rng rng_;
  Workload workload_;
  std::vector<std::unique_ptr<ProtocolNode>> nodes_;
  std::vector<bool> up_;
  std::vector<std::vector<bool>> link_up_;  // symmetric adjacency
};

}  // namespace epidemic::sim

#endif  // EPIDEMIC_SIM_CLUSTER_H_
