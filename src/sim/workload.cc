#include "sim/workload.h"

namespace epidemic::sim {

Workload::Workload(const WorkloadConfig& config)
    : config_(config),
      rng_(config.seed),
      zipf_(config.num_items, config.zipf_s) {}

std::string Workload::ItemName(uint64_t idx) {
  return "item" + std::to_string(idx);
}

uint64_t Workload::SampleItem() { return zipf_.Sample(rng_); }

Workload::Op Workload::NextUpdate(size_t num_nodes) {
  return NextUpdateAt(static_cast<NodeId>(rng_.Uniform(num_nodes)));
}

Workload::Op Workload::NextUpdateAt(NodeId node) {
  Op op;
  op.node = node;
  op.item = ItemName(SampleItem());
  op.value = "u" + std::to_string(++counter_) + "@n" +
             std::to_string(op.node);
  if (op.value.size() < config_.value_len) {
    op.value.resize(config_.value_len, '.');
  }
  return op;
}

}  // namespace epidemic::sim
