#include "sim/event_queue.h"

#include "common/logging.h"

namespace epidemic::sim {

void EventQueue::At(TimeMicros t, Callback cb) {
  EPI_CHECK(t >= now_) << "cannot schedule event in the past (" << t << " < "
                       << now_ << ")";
  heap_.push(Entry{t, next_seq_++, std::move(cb)});
}

bool EventQueue::RunOne() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the callback is moved out via a copy of
  // the entry before popping.
  Entry entry = heap_.top();
  heap_.pop();
  now_ = entry.time;
  entry.cb();
  return true;
}

size_t EventQueue::RunUntil(TimeMicros t) {
  size_t count = 0;
  while (!heap_.empty() && heap_.top().time <= t) {
    RunOne();
    ++count;
  }
  if (t > now_) now_ = t;
  return count;
}

size_t EventQueue::RunAll(size_t max_events) {
  size_t count = 0;
  while (count < max_events && RunOne()) ++count;
  return count;
}

}  // namespace epidemic::sim
