#ifndef EPIDEMIC_SIM_WORKLOAD_H_
#define EPIDEMIC_SIM_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "vv/version_vector.h"

namespace epidemic::sim {

/// Parameters of the synthetic update workload.
///
/// The paper targets workloads where "the fraction of data items updated on
/// a database replica between consecutive update propagations is in general
/// small" (§2); a skewed (Zipf) item-popularity distribution over a large
/// item universe produces exactly that regime, with the skew knob `zipf_s`
/// controlling how hot the hot set is.
struct WorkloadConfig {
  uint64_t num_items = 1000;
  double zipf_s = 0.99;     // 0 = uniform
  size_t value_len = 32;    // payload bytes per update
  uint64_t seed = 42;
};

/// Deterministic generator of client update operations.
class Workload {
 public:
  explicit Workload(const WorkloadConfig& config);

  struct Op {
    NodeId node;       // replica the client contacts
    std::string item;  // item name
    std::string value; // unique payload, traceable to its origin
  };

  /// Next update: uniform random node among `num_nodes`, Zipf-popular item,
  /// globally unique value "u<counter>@n<node>" padded to value_len.
  Op NextUpdate(size_t num_nodes);

  /// Next update targeted at a specific node (same Zipf item stream and
  /// unique-value scheme). Drivers that own the placement policy — the
  /// multi-process cluster bench writes to the round's source replica —
  /// use this instead of NextUpdate's uniform placement.
  Op NextUpdateAt(NodeId node);

  /// Stable item name for index `idx`.
  static std::string ItemName(uint64_t idx);

  /// Item index for the next update (exposed for tests).
  uint64_t SampleItem();

  Rng& rng() { return rng_; }
  const WorkloadConfig& config() const { return config_; }

 private:
  WorkloadConfig config_;
  Rng rng_;
  ZipfSampler zipf_;
  uint64_t counter_ = 0;
};

}  // namespace epidemic::sim

#endif  // EPIDEMIC_SIM_WORKLOAD_H_
