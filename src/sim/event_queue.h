#ifndef EPIDEMIC_SIM_EVENT_QUEUE_H_
#define EPIDEMIC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace epidemic::sim {

/// Single-threaded discrete-event scheduler with a virtual clock.
///
/// Events at equal timestamps run in scheduling order (a strictly
/// increasing tiebreaker), so runs are fully deterministic. Callbacks may
/// schedule further events.
///
/// Deliberately mutex-free: determinism is the point of the simulator, so
/// the queue must stay confined to one thread. Never hand it to the
/// annotated multi-threaded server layer (thread_annotations.h) — drive
/// real servers with their own anti-entropy threads instead.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;

  TimeMicros now() const { return now_; }

  /// Schedules `cb` at absolute virtual time `t` (>= now).
  void At(TimeMicros t, Callback cb);

  /// Schedules `cb` `delay` microseconds from now.
  void After(TimeMicros delay, Callback cb) { At(now_ + delay, std::move(cb)); }

  /// Runs the earliest pending event, advancing the clock to it.
  /// Returns false when the queue is empty.
  bool RunOne();

  /// Runs events with time <= `t`, then advances the clock to `t`.
  /// Returns the number of events run.
  size_t RunUntil(TimeMicros t);

  /// Drains the queue (bounded by `max_events` as a runaway guard).
  /// Returns the number of events run.
  size_t RunAll(size_t max_events = SIZE_MAX);

  size_t pending() const { return heap_.size(); }

 private:
  struct Entry {
    TimeMicros time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  TimeMicros now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

}  // namespace epidemic::sim

#endif  // EPIDEMIC_SIM_EVENT_QUEUE_H_
