#ifndef EPIDEMIC_FUZZ_SEED_CORPUS_H_
#define EPIDEMIC_FUZZ_SEED_CORPUS_H_

#include <string>
#include <vector>

namespace epidemic::fuzz {

struct SeedInput {
  std::string label;  // filesystem-safe, stable across runs
  std::string bytes;
};

/// Deterministic seed corpus for one target, built by running the real
/// encoders over small live replicas: valid frames of every version and
/// flavor (v1/v2/v3, compressed, epoch probes, conflicts, tombstones)
/// plus a few canonical near-miss inputs (truncations, bad magic). The
/// same inputs are exported to tests/testdata/fuzz/<target>/ by
/// fuzz_export_corpus and replayed in-memory by fuzz_corpus_test.
std::vector<SeedInput> BuildSeedCorpus(const std::string& target);

}  // namespace epidemic::fuzz

#endif  // EPIDEMIC_FUZZ_SEED_CORPUS_H_
