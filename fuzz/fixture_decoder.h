#ifndef EPIDEMIC_FUZZ_FIXTURE_DECODER_H_
#define EPIDEMIC_FUZZ_FIXTURE_DECODER_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

/// Self-test decoder for the fuzzing subsystem (DESIGN.md §13).
///
/// A deliberately tiny length-prefixed format — magic byte 'F', varint
/// record count, then per record a one-byte length and that many payload
/// bytes — decoded through RecordingCursor, a stand-in for the real
/// ByteReader that *records* out-of-bounds reads instead of performing
/// them. That makes the classic fuzz finding (missing length check →
/// buffer overread) observable in plain gcc builds with no sanitizer:
/// the oracle is the violation flag rather than an ASan report.
///
/// Compiled twice by fuzz/CMakeLists.txt:
///   - clean: the bounds check below is present; the mini fuzzer must NOT
///     trip the flag (fuzz_fixture_clean_selftest).
///   - EPIFUZZ_SEEDED_DEFECT: the check is removed, re-creating the bug
///     class this subsystem exists to catch; the mini fuzzer must find it
///     within the smoke budget (fuzz_seeded_defect_selftest, WILL_FAIL).
namespace epidemic::fuzz {

/// Bounds-recording byte cursor. Reads past the end return 0 and latch
/// `violated()` — the plain-build analogue of an ASan heap-buffer-overflow.
class RecordingCursor {
 public:
  explicit RecordingCursor(std::string_view data) : data_(data) {}

  uint8_t ReadByteAt(size_t i) {
    if (i >= data_.size()) {
      violated_ = true;
      return 0;
    }
    return static_cast<uint8_t>(data_[i]);
  }

  size_t size() const { return data_.size(); }
  bool violated() const { return violated_; }

 private:
  std::string_view data_;
  bool violated_ = false;
};

struct FixtureDecodeResult {
  bool ok = false;
  uint64_t records = 0;
  uint64_t payload_bytes = 0;
  bool bounds_violation = false;
};

/// Decodes the fixture format. With the seeded defect, a record length
/// larger than the remaining input walks the cursor past the end.
inline FixtureDecodeResult DecodeFixtureFrame(std::string_view frame) {
  FixtureDecodeResult result;
  RecordingCursor cur(frame);
  size_t pos = 0;
  if (cur.size() < 2 || cur.ReadByteAt(pos++) != 'F') {
    result.bounds_violation = cur.violated();
    return result;
  }
  const uint64_t count = cur.ReadByteAt(pos++);
  for (uint64_t rec = 0; rec < count; ++rec) {
    if (pos >= cur.size()) {
      result.bounds_violation = cur.violated();
      return result;  // truncated record header
    }
    const size_t len = cur.ReadByteAt(pos++);
#if !defined(EPIFUZZ_SEEDED_DEFECT)
    // THE bounds check. The seeded-defect build compiles it out, which is
    // precisely the bug a decoder grows when a new field's length is
    // trusted without validation.
    if (len > cur.size() - pos) {
      result.bounds_violation = cur.violated();
      return result;
    }
#endif
    uint64_t sum = 0;
    for (size_t i = 0; i < len; ++i) sum += cur.ReadByteAt(pos + i);
    pos += len;
    result.payload_bytes += len;
    ++result.records;
    (void)sum;
  }
  result.ok = pos == cur.size();
  result.bounds_violation = cur.violated();
  return result;
}

}  // namespace epidemic::fuzz

#endif  // EPIDEMIC_FUZZ_FIXTURE_DECODER_H_
