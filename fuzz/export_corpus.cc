// Writes the generated seed corpus to disk, one file per input:
//   fuzz_export_corpus <out-root>        → <out-root>/<target>/<NN>-<label>
//
// Run against tests/testdata/fuzz/ to refresh the checked-in corpora, or
// against a scratch directory to seed a libFuzzer run. File contents are
// deterministic (the generators use fixed replicas and no clocks), so a
// refresh only produces diffs when an encoder's output changed — which is
// exactly when the corpus *should* change.

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "fuzz/harness.h"
#include "fuzz/seed_corpus.h"

int main(int argc, char** argv) {
  using namespace epidemic::fuzz;
  if (argc != 2) {
    std::fprintf(stderr, "usage: fuzz_export_corpus <out-root>\n");
    return 2;
  }
  const std::string root = argv[1];
  mkdir(root.c_str(), 0755);

  for (const TargetInfo& target : AllTargets()) {
    const std::string dir = root + "/" + target.name;
    mkdir(dir.c_str(), 0755);
    int index = 0;
    for (const SeedInput& seed : BuildSeedCorpus(target.name)) {
      char prefix[16];
      std::snprintf(prefix, sizeof(prefix), "%02d-", index++ % 100);
      const std::string path = dir + "/" + prefix + seed.label + ".bin";
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
      }
      out.write(seed.bytes.data(),
                static_cast<std::streamsize>(seed.bytes.size()));
    }
    std::printf("%-16s %d seeds\n", target.name, index);
  }
  return 0;
}
