#include "fuzz/mutator.h"

#include <algorithm>
#include <cstring>

#include "common/random.h"

namespace epidemic::fuzz {

namespace {

/// Writes `v` as a LEB128 varint at data[pos...], padded with continuation
/// bytes to exactly `width` (so non-minimal when width exceeds the
/// canonical length). Returns bytes written; writes nothing if it would
/// run past `size`.
size_t SpliceVarint(uint8_t* data, size_t size, size_t pos, uint64_t v,
                    size_t width) {
  if (pos + width > size || width == 0) return 0;
  for (size_t i = 0; i + 1 < width; ++i) {
    data[pos + i] = static_cast<uint8_t>((v & 0x7f) | 0x80);
    v >>= 7;
  }
  data[pos + width - 1] = static_cast<uint8_t>(v & 0x7f);
  return width;
}

}  // namespace

size_t MutateFrame(uint8_t* data, size_t size, size_t max_size,
                   unsigned int seed) {
  Rng rng(seed);
  if (max_size == 0) return 0;
  if (size == 0) {
    // Grow an empty input into a plausible tagged frame.
    size = 1 + rng.Uniform(std::min<size_t>(max_size, 16));
    for (size_t i = 0; i < size; ++i) {
      data[i] = static_cast<uint8_t>(rng.Next());
    }
    data[0] = static_cast<uint8_t>(1 + rng.Uniform(18));
    return size;
  }

  switch (rng.Uniform(10)) {
    case 0: {  // single bit flip
      const size_t pos = rng.Uniform(size);
      data[pos] ^= static_cast<uint8_t>(1u << rng.Uniform(8));
      break;
    }
    case 1: {  // overwrite a byte with an interesting value
      static constexpr uint8_t kInteresting[] = {0x00, 0x01, 0x7f, 0x80,
                                                 0x81, 0xff, 0x10, 0x20};
      data[rng.Uniform(size)] =
          kInteresting[rng.Uniform(sizeof(kInteresting))];
      break;
    }
    case 2: {  // truncate
      size = 1 + rng.Uniform(size);
      break;
    }
    case 3: {  // extend with random bytes
      const size_t grow =
          std::min(max_size - size, static_cast<size_t>(rng.Uniform(16) + 1));
      for (size_t i = 0; i < grow; ++i) {
        data[size + i] = static_cast<uint8_t>(rng.Next());
      }
      size += grow;
      break;
    }
    case 4: {  // rewrite the leading message tag (valid + reserved range)
      data[0] = static_cast<uint8_t>(1 + rng.Uniform(31));
      break;
    }
    case 5: {  // varint splice: small / huge / overflowing values
      static constexpr uint64_t kValues[] = {
          0,      1,          127,        128,
          16384,  (1u << 20), ~uint64_t{0} >> 1, ~uint64_t{0}};
      const uint64_t v = kValues[rng.Uniform(sizeof(kValues) / 8)];
      const size_t width = 1 + rng.Uniform(10);
      SpliceVarint(data, size, rng.Uniform(size), v, width);
      break;
    }
    case 6: {  // overlong varint: >10 continuation bytes
      const size_t pos = rng.Uniform(size);
      const size_t run = std::min<size_t>(size - pos, 12);
      std::memset(data + pos, 0x80, run);
      break;
    }
    case 7: {  // duplicate a chunk (length-prefixed structures repeat)
      const size_t from = rng.Uniform(size);
      const size_t len =
          std::min({static_cast<size_t>(rng.Uniform(32) + 1), size - from,
                    max_size - size});
      if (len > 0) {
        std::memmove(data + size, data + from, len);
        size += len;
      }
      break;
    }
    case 8: {  // delete a chunk
      if (size > 1) {
        const size_t from = rng.Uniform(size - 1);
        const size_t len =
            std::min(static_cast<size_t>(rng.Uniform(16) + 1), size - from);
        std::memmove(data + from, data + from + len, size - from - len);
        size -= len;
        if (size == 0) size = 1;
      }
      break;
    }
    default: {  // splice: copy a chunk over another position
      const size_t from = rng.Uniform(size);
      const size_t to = rng.Uniform(size);
      const size_t len = std::min(static_cast<size_t>(rng.Uniform(16) + 1),
                                  size - std::max(from, to));
      std::memmove(data + to, data + from, len);
      break;
    }
  }
  return size;
}

}  // namespace epidemic::fuzz
