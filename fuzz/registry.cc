#include "fuzz/harness.h"

namespace epidemic::fuzz {

const std::vector<TargetInfo>& AllTargets() {
  static const std::vector<TargetInfo> kTargets = {
      {"codec", Target_codec},
      {"wire_segment_v3", Target_wire_segment_v3},
      {"vv_delta", Target_vv_delta},
      {"snapshot", Target_snapshot},
      {"journal", Target_journal},
      {"server_frame", Target_server_frame},
      {"multidb", Target_multidb},
      {"tokens", Target_tokens},
      // The seeded-defect demo decoder, last: not a production boundary.
      {"fixture", Target_fixture},
  };
  return kTargets;
}

const TargetInfo* FindTarget(std::string_view name) {
  for (const TargetInfo& t : AllTargets()) {
    if (name == t.name) return &t;
  }
  return nullptr;
}

}  // namespace epidemic::fuzz
