#include "fuzz/seed_corpus.h"

#include <memory>
#include <utility>

#include "common/bytes.h"
#include "common/hash.h"
#include "common/logging.h"
#include "core/journal.h"
#include "core/snapshot.h"
#include "core/wire.h"
#include "fuzz/harness.h"
#include "multidb/multi_db_server.h"
#include "net/codec.h"
#include "net/inproc_transport.h"
#include "server/replica_server.h"
#include "tokens/token_service.h"
#include "vv/vv_codec.h"

namespace epidemic::fuzz {

namespace {

void Add(std::vector<SeedInput>* out, std::string label, std::string bytes) {
  out->push_back(SeedInput{std::move(label), std::move(bytes)});
}

/// A served, non-current PropagationResponse in the kFuzzNodes world:
/// node 1 (with writes node 0 lacks) answering node 0's handshake.
PropagationResponse ServedResponse() {
  Replica r0(0, kFuzzNodes);
  Replica r1(1, kFuzzNodes);
  EPI_CHECK(r0.Update("alpha", "a0").ok());
  EPI_CHECK(r1.Update("beta", "b1").ok());
  EPI_CHECK(r1.Update("alpha", "a1").ok());  // concurrent: ships a conflict
  EPI_CHECK(r1.Delete("beta").ok());         // and a tombstone
  return r1.HandlePropagationRequest(r0.BuildPropagationRequest());
}

std::string JournalFrame(std::string_view payload) {
  ByteWriter framed;
  framed.PutVarint64(payload.size());
  framed.PutBytes(payload.data(), payload.size());
  framed.PutFixed32(Crc32c(payload));
  return framed.Release();
}

std::vector<SeedInput> CodecSeeds() {
  std::vector<SeedInput> out;
  auto replica = MakeSeededReplica();
  auto sharded = MakeSeededShardedReplica();

  Add(&out, "prop_request",
      net::Encode(net::Message(replica->BuildPropagationRequest())));
  Add(&out, "prop_response", net::Encode(net::Message(ServedResponse())));
  Add(&out, "oob_request",
      net::Encode(net::Message(replica->BuildOobRequest("alpha"))));
  Add(&out, "oob_response",
      net::Encode(net::Message(
          replica->HandleOobRequest(OobRequest{1, "alpha"}))));
  Add(&out, "client_update",
      net::Encode(net::Message(net::ClientUpdateRequest{"alpha", "v"})));
  Add(&out, "client_read",
      net::Encode(net::Message(net::ClientReadRequest{"alpha"})));
  Add(&out, "client_delete",
      net::Encode(net::Message(net::ClientDeleteRequest{"alpha"})));
  Add(&out, "client_stats",
      net::Encode(net::Message(net::ClientStatsRequest{})));
  Add(&out, "client_reset_stats",
      net::Encode(net::Message(net::ClientResetStatsRequest{})));
  Add(&out, "client_scan",
      net::Encode(net::Message(net::ClientScanRequest{"al", 10})));
  Add(&out, "client_sync",
      net::Encode(net::Message(net::ClientSyncRequest{1})));
  Add(&out, "client_checkpoint",
      net::Encode(net::Message(net::ClientCheckpointRequest{})));
  Add(&out, "client_oob_fetch",
      net::Encode(net::Message(net::ClientOobFetchRequest{1, "alpha"})));
  Add(&out, "client_reply",
      net::Encode(net::Message(net::ClientReply{0, "payload"})));

  ShardedPropagationRequest req_v2 = sharded->BuildPropagationRequest();
  Add(&out, "sharded_request_v2", net::Encode(net::Message(req_v2)));
  ShardedPropagationRequest req_v3 = sharded->BuildPropagationRequestV3(
      /*accept_compressed=*/true);
  Add(&out, "sharded_request_v3", net::Encode(net::Message(req_v3)));

  ShardedPropagationRequest probe = req_v3;
  probe.flags = kPropFlagEpochProbe;
  probe.last_epoch = 1;
  probe.shard_dbvvs.clear();
  Add(&out, "sharded_request_v3_probe", net::Encode(net::Message(probe)));

  ShardedReplica source(1, kFuzzNodes, kFuzzShards);
  EPI_CHECK(source.Update("beta", "b1").ok());
  EPI_CHECK(source.Update("gamma", "g1").ok());
  Add(&out, "sharded_response_v2",
      net::Encode(net::Message(source.HandlePropagationRequest(req_v2))));
  Add(&out, "sharded_response_v3",
      net::Encode(net::Message(source.HandlePropagationRequestV3(req_v3))));
  return out;
}

std::vector<SeedInput> WireSegmentV3Seeds() {
  std::vector<SeedInput> out;
  PropagationResponse resp = ServedResponse();
  Replica r1(1, kFuzzNodes);  // rebuild the source for its base DBVV
  EPI_CHECK(r1.Update("beta", "b1").ok());
  EPI_CHECK(r1.Update("alpha", "a1").ok());
  EPI_CHECK(r1.Delete("beta").ok());

  PropagationResponseView view;
  wire::MakeResponseView(resp, &view, /*fill_tail_indices=*/true);

  std::string body;
  wire::EncodeShardSegmentBodyV3(view, r1.dbvv(), wire::V3SegmentOptions{},
                                 nullptr, &body);
  Add(&out, "segment_plain", body);

  wire::V3SegmentOptions compress;
  compress.compress = true;
  compress.min_compress_bytes = 0;
  wire::EncodeShardSegmentBodyV3(view, r1.dbvv(), compress, nullptr, &body);
  Add(&out, "segment_compressed", body);

  Add(&out, "segment_v2", wire::EncodeShardSegmentBody(resp));
  Add(&out, "segment_truncated",
      wire::EncodeShardSegmentBody(resp).substr(0, 7));

  // Regression: the mini fuzzer's first find. A segment shipping a fresh
  // item whose tail record reuses an origin seq the seeded replica's L[1]
  // already holds for gamma — accept used to insert the duplicate and
  // break the origin-order invariant (see ValidatePropagationResponse's
  // merge-scan and RobustnessTest.TailSeqReuseForDifferentItemRejected).
  Add(&out, "seq_reuse_regression",
      std::string("\x00\x03\x00\x03\x00\x02\x05\x61\x6c\x80\x68\x61\x02\x61"
                  "\x31\x00\x02\x01\x01\x04\x62\x65\x00\x61\x00\x01\x02\x01"
                  "\x02\x03\x00\x02\x00\x02\x01\x00\x00",
                  37));
  return out;
}

std::vector<SeedInput> VvDeltaSeeds() {
  std::vector<SeedInput> out;
  for (size_t width : {size_t{0}, size_t{1}, size_t{3}, size_t{8}}) {
    VersionVector base(width);
    for (size_t k = 0; k < width; ++k) base[k] = k * 7 + 1;

    VersionVector sparse(width);
    if (width > 0) sparse[0] = 42;
    VersionVector close = base;
    if (width > 1) close[1] -= 1;

    for (const auto& [name, vv] :
         {std::pair<const char*, VersionVector&>{"sparse", sparse},
          std::pair<const char*, VersionVector&>{"close", close}}) {
      ByteWriter w;
      w.PutU8(static_cast<uint8_t>(width));
      EncodeVersionVectorDelta(&w, vv, base);
      Add(&out, "delta_w" + std::to_string(width) + "_" + name, w.Release());
    }
    ByteWriter w;
    w.PutU8(static_cast<uint8_t>(width));
    EncodeVersionVector(&w, base);
    Add(&out, "dense_w" + std::to_string(width), w.Release());
  }
  return out;
}

std::vector<SeedInput> SnapshotSeeds() {
  std::vector<SeedInput> out;
  auto replica = MakeSeededReplica();
  std::string blob = EncodeSnapshot(*replica);
  Add(&out, "snapshot", blob);
  Add(&out, "snapshot_truncated", blob.substr(0, blob.size() / 2));

  auto sharded = MakeSeededShardedReplica();
  Add(&out, "sharded_snapshot", EncodeShardedSnapshot(*sharded));

  std::string bad_magic = blob;
  if (!bad_magic.empty()) bad_magic[0] ^= 0x20;
  Add(&out, "snapshot_bad_magic", bad_magic);
  return out;
}

std::vector<SeedInput> JournalSeeds() {
  std::vector<SeedInput> out;

  ByteWriter update;
  update.PutU8(1);  // RecordTag::kUpdate
  update.PutString("alpha");
  update.PutString("new-value");
  const std::string update_frame = JournalFrame(update.data());
  Add(&out, "update", update_frame);

  ByteWriter del;
  del.PutU8(2);  // RecordTag::kDelete
  del.PutString("alpha");
  Add(&out, "delete", JournalFrame(del.data()));

  ByteWriter prop;
  prop.PutU8(3);  // RecordTag::kPropagation
  wire::EncodePropagationResponseBody(prop, ServedResponse());
  Add(&out, "propagation", JournalFrame(prop.data()));

  ByteWriter resolve;
  resolve.PutU8(5);  // RecordTag::kResolve
  resolve.PutString("alpha");
  VersionVector vv(kFuzzNodes);
  vv[1] = 1;
  EncodeVersionVector(&resolve, vv);
  resolve.PutString("resolved");
  Add(&out, "resolve", JournalFrame(resolve.data()));

  // A multi-record stream with a torn tail: the replay must stop cleanly.
  std::string stream = update_frame;
  stream += JournalFrame(del.data());
  stream += update_frame.substr(0, update_frame.size() - 3);
  Add(&out, "stream_torn_tail", stream);

  // A CRC-corrupted record: replay stops at the last good prefix.
  std::string corrupt = update_frame;
  corrupt.back() = static_cast<char>(corrupt.back() ^ 0xff);
  Add(&out, "crc_mismatch", corrupt);
  return out;
}

std::vector<SeedInput> ServerFrameSeeds() {
  // The server consumes codec frames; reuse them and add a v3 exchange
  // captured from a live server (the direct-to-frame serve reply).
  std::vector<SeedInput> out = CodecSeeds();

  net::InProcHub hub(kFuzzNodes);
  net::InProcTransport transport(&hub);
  server::ReplicaServer::Options options;
  options.num_shards = kFuzzShards;
  server::ReplicaServer server(1, kFuzzNodes, &transport, options);
  hub.Register(1, &server);
  EPI_CHECK(server.Update("beta", "b1").ok());

  ShardedReplica requester(0, kFuzzNodes, kFuzzShards);
  EPI_CHECK(requester.Update("alpha", "a0").ok());
  std::string reply = server.HandleRequest(net::Encode(
      net::Message(requester.BuildPropagationRequestV3())));
  Add(&out, "served_v3_response_frame", reply);
  return out;
}

std::vector<SeedInput> MultidbSeeds() {
  std::vector<SeedInput> out;
  Add(&out, "summary_request", multidb::SummaryRequestFrame());
  Add(&out, "routed_update",
      multidb::WrapRouted("db-a", net::Encode(net::Message(
                                      net::ClientUpdateRequest{"alpha", "v"}))));
  Add(&out, "routed_read",
      multidb::WrapRouted("db-a", net::Encode(net::Message(
                                      net::ClientReadRequest{"alpha"}))));
  Add(&out, "routed_delete",
      multidb::WrapRouted("db-b", net::Encode(net::Message(
                                      net::ClientDeleteRequest{"beta"}))));

  Replica peer(1, kFuzzNodes);
  EPI_CHECK(peer.Update("alpha", "a1").ok());
  Add(&out, "routed_prop_request",
      multidb::WrapRouted("db-a", net::Encode(net::Message(
                                      peer.BuildPropagationRequest()))));
  Add(&out, "routed_oob_request",
      multidb::WrapRouted("db-a", net::Encode(net::Message(
                                      peer.BuildOobRequest("alpha")))));
  std::string routed = out.back().bytes;
  Add(&out, "routed_truncated", routed.substr(0, routed.size() / 2));
  return out;
}

std::vector<SeedInput> TokensSeeds() {
  std::vector<SeedInput> out;
  tokens::TokenService service(0, kFuzzNodes);
  // Find one item homed here and one homed elsewhere (the denial path).
  std::string home_item, foreign_item;
  for (int i = 0; i < 64 && (home_item.empty() || foreign_item.empty()); ++i) {
    std::string item = "item-" + std::to_string(i);
    (service.HomeOf(item) == 0 ? home_item : foreign_item) = item;
  }
  EPI_CHECK(!home_item.empty() && !foreign_item.empty());

  Add(&out, "request_home",
      tokens::EncodeTokenRequest(tokens::TokenRequest{1, home_item}));
  Add(&out, "request_foreign",
      tokens::EncodeTokenRequest(tokens::TokenRequest{1, foreign_item}));
  Add(&out, "release_home",
      tokens::EncodeTokenRelease(tokens::TokenRelease{1, home_item}));
  Add(&out, "release_foreign",
      tokens::EncodeTokenRelease(tokens::TokenRelease{1, foreign_item}));
  Add(&out, "reply_frame",
      tokens::EncodeTokenReply(tokens::TokenReply{true, 1, home_item}));
  Add(&out, "request_truncated",
      tokens::EncodeTokenRequest(tokens::TokenRequest{1, home_item})
          .substr(0, 2));
  return out;
}

std::vector<SeedInput> FixtureSeeds() {
  std::vector<SeedInput> out;
  Add(&out, "empty_records", std::string("F\x00", 2));
  Add(&out, "two_records", std::string("F\x02\x03"
                                       "abc"
                                       "\x01"
                                       "z",
                                       8));
  Add(&out, "max_len_record", std::string("F\x01\x04"
                                          "wxyz",
                                          7));
  Add(&out, "bad_magic", std::string("G\x01\x01"
                                     "a",
                                     4));
  return out;
}

}  // namespace

std::vector<SeedInput> BuildSeedCorpus(const std::string& target) {
  if (target == "codec") return CodecSeeds();
  if (target == "wire_segment_v3") return WireSegmentV3Seeds();
  if (target == "vv_delta") return VvDeltaSeeds();
  if (target == "snapshot") return SnapshotSeeds();
  if (target == "journal") return JournalSeeds();
  if (target == "server_frame") return ServerFrameSeeds();
  if (target == "multidb") return MultidbSeeds();
  if (target == "tokens") return TokensSeeds();
  if (target == "fixture") return FixtureSeeds();
  return {};
}

}  // namespace epidemic::fuzz
