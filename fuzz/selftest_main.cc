// Seeded-defect self-test driver (DESIGN.md §13): runs the deterministic
// mini fuzzer against the fixture decoder and exits 1 the moment the
// bounds oracle trips (clean exit, not abort — ctest's WILL_FAIL inverts
// exit codes, not signals).
//
// Built twice: fuzz_seeded_defect_selftest compiles the fixture decoder
// with EPIFUZZ_SEEDED_DEFECT (bounds check removed) and is registered
// WILL_FAIL — the smoke fuzz MUST find the overread. The clean twin
// fuzz_fixture_clean_selftest must survive the identical budget.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fuzz/harness.h"
#include "fuzz/seed_corpus.h"

int main(int argc, char** argv) {
  using namespace epidemic::fuzz;

  uint64_t runs = 20000, seed = 7;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strcmp(argv[i], "--runs") == 0) {
      runs = std::strtoull(argv[i + 1], nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }

  SetCleanExitOnOracleFailure(true);
  std::vector<std::string> seeds;
  for (const SeedInput& s : BuildSeedCorpus("fixture")) {
    seeds.push_back(s.bytes);
  }
  MiniFuzzResult result =
      RunMiniFuzz(Target_fixture, std::move(seeds), runs, seed,
                  /*max_len=*/512);
#if defined(EPIFUZZ_SEEDED_DEFECT)
  // Reaching this line means the budget expired without finding the
  // seeded bug — the WILL_FAIL test would pass, failing the suite.
  std::fprintf(stderr,
               "seeded defect NOT found in %llu runs — smoke fuzz budget or "
               "mutator regressed\n",
               static_cast<unsigned long long>(result.runs));
  return 0;
#else
  std::printf("clean fixture survived %llu mutated runs\n",
              static_cast<unsigned long long>(result.runs));
  return 0;
#endif
}
