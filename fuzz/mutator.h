#ifndef EPIDEMIC_FUZZ_MUTATOR_H_
#define EPIDEMIC_FUZZ_MUTATOR_H_

#include <cstddef>
#include <cstdint>

namespace epidemic::fuzz {

/// Structure-aware mutation of a tagged protocol frame, in place.
/// Deterministic in (data, size, seed). Returns the new size (<= max_size).
///
/// Beyond generic byte-level mutations it knows the frame shapes this
/// codebase decodes: a leading one-byte message tag (net::MessageType 1-18,
/// with 17-31 reserved), LEB128 varints (including overlong/non-minimal and
/// 2^64-overflow encodings — exactly the aliases the canonical decoder must
/// reject), and length-prefixed chunks worth duplicating or truncating.
/// Used both as the libFuzzer custom mutator and by the in-tree mini
/// fuzzer, so gcc-only hosts exercise the same mutation space.
size_t MutateFrame(uint8_t* data, size_t size, size_t max_size,
                   unsigned int seed);

}  // namespace epidemic::fuzz

#endif  // EPIDEMIC_FUZZ_MUTATOR_H_
