#include "fuzz/harness.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/random.h"
#include "core/wire.h"
#include "fuzz/mutator.h"

namespace epidemic::fuzz {

namespace {
bool g_clean_exit = false;
}  // namespace

void SetCleanExitOnOracleFailure(bool clean) { g_clean_exit = clean; }

void OracleFail(const char* target, const std::string& detail) {
  std::fprintf(stderr, "FUZZ ORACLE FAILURE [%s]: %s\n", target,
               detail.c_str());
  std::fflush(stderr);
  if (g_clean_exit) std::exit(1);
  std::abort();
}

void OracleExpectOk(const Status& s, const char* target, const char* what) {
  if (s.ok()) return;
  OracleFail(target, std::string(what) + ": " + s.ToString());
}

std::unique_ptr<Replica> MakeSeededReplica() {
  // Node 0's view of a 3-node world where all three nodes wrote and node 0
  // pulled from node 1: non-trivial DBVV, logs and per-item IVVs.
  auto r0 = std::make_unique<Replica>(0, kFuzzNodes);
  Replica r1(1, kFuzzNodes);
  EPI_CHECK(r0->Update("alpha", "a0").ok());
  EPI_CHECK(r0->Update("beta", "b0").ok());
  EPI_CHECK(r1.Update("beta", "b1").ok());
  EPI_CHECK(r1.Update("gamma", "g1").ok());
  PropagationResponse resp =
      r1.HandlePropagationRequest(r0->BuildPropagationRequest());
  // The concurrent beta writes conflict — also legitimate state.
  Status s = r0->AcceptPropagation(resp);
  EPI_CHECK(s.ok() || s.IsConflict()) << s.ToString();
  EPI_CHECK(r0->CheckInvariants().ok());
  return r0;
}

std::unique_ptr<ShardedReplica> MakeSeededShardedReplica() {
  auto r0 = std::make_unique<ShardedReplica>(0, kFuzzNodes, kFuzzShards);
  ShardedReplica r1(1, kFuzzNodes, kFuzzShards);
  EPI_CHECK(r0->Update("alpha", "a0").ok());
  EPI_CHECK(r1.Update("beta", "b1").ok());
  EPI_CHECK(r1.Update("gamma", "g1").ok());
  ShardedPropagationResponse resp =
      r1.HandlePropagationRequest(r0->BuildPropagationRequest());
  Status s = r0->AcceptPropagation(resp);
  EPI_CHECK(s.ok() || s.IsConflict()) << s.ToString();
  EPI_CHECK(r0->CheckInvariants().ok());
  return r0;
}

MiniFuzzResult RunMiniFuzz(TargetFn fn, std::vector<std::string> seeds,
                           uint64_t runs, uint64_t seed, size_t max_len) {
  if (seeds.empty()) seeds.push_back(std::string());
  // Crash triage: with EPIFUZZ_DUMP=<path> every input is written to
  // <path> before execution, so the input that tripped the oracle (and
  // took the process down with it) is on disk afterwards.
  const char* dump_path = std::getenv("EPIFUZZ_DUMP");
  Rng rng(seed);
  MiniFuzzResult result;
  std::vector<uint8_t> buf(max_len);
  for (uint64_t i = 0; i < runs; ++i) {
    const std::string& pick = seeds[rng.Uniform(seeds.size())];
    size_t n = pick.size() < max_len ? pick.size() : max_len;
    std::copy(pick.begin(), pick.begin() + static_cast<ptrdiff_t>(n),
              buf.begin());
    const uint64_t rounds = 1 + rng.Uniform(4);
    for (uint64_t m = 0; m < rounds; ++m) {
      n = MutateFrame(buf.data(), n, max_len,
                      static_cast<unsigned>(rng.Next()));
    }
    if (dump_path != nullptr) {
      if (std::FILE* f = std::fopen(dump_path, "wb")) {
        std::fwrite(buf.data(), 1, n, f);
        std::fclose(f);
      }
    }
    fn(buf.data(), n);
    ++result.runs;
    result.executed_bytes += n;
  }
  return result;
}

}  // namespace epidemic::fuzz
