// Standalone driver for the fuzz targets: corpus replay and an in-tree
// deterministic mutation fuzzer. This is what plain (non-libFuzzer) builds
// get on every compiler; the clang EPIDEMIC_FUZZ build additionally
// produces one coverage-guided libFuzzer binary per target.
//
// Usage:
//   fuzz_replay --list
//   fuzz_replay <target> [file|dir]...          replay inputs once each
//   fuzz_replay <target> --seed-corpus          replay the generated seeds
//   fuzz_replay <target> --fuzz [--runs N] [--seed S] [--max-len L] [dir]...
//   fuzz_replay --all <corpus-root>             replay <root>/<target>/* +
//                                               generated seeds, all targets
//
// Exit code: 0 on success; an oracle failure aborts (see harness.h).

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/harness.h"
#include "fuzz/seed_corpus.h"

namespace epidemic::fuzz {
namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool IsDirectory(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// Collects regular files in `dir` (sorted for determinism).
std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> files;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return files;
  while (dirent* entry = readdir(d)) {
    if (entry->d_name[0] == '.') continue;
    files.push_back(dir + "/" + entry->d_name);
  }
  closedir(d);
  std::sort(files.begin(), files.end());
  return files;
}

uint64_t ReplayPaths(const TargetInfo& target,
                     const std::vector<std::string>& paths) {
  uint64_t executed = 0;
  for (const std::string& path : paths) {
    if (IsDirectory(path)) {
      executed += ReplayPaths(target, ListDir(path));
      continue;
    }
    std::string bytes;
    if (!ReadFile(path, &bytes)) {
      std::fprintf(stderr, "warning: cannot read %s\n", path.c_str());
      continue;
    }
    target.fn(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
    ++executed;
  }
  return executed;
}

uint64_t ReplaySeedCorpus(const TargetInfo& target) {
  uint64_t executed = 0;
  for (const SeedInput& seed : BuildSeedCorpus(target.name)) {
    target.fn(reinterpret_cast<const uint8_t*>(seed.bytes.data()),
              seed.bytes.size());
    ++executed;
  }
  return executed;
}

int Usage() {
  std::fprintf(stderr,
               "usage: fuzz_replay --list\n"
               "       fuzz_replay --all <corpus-root>\n"
               "       fuzz_replay <target> [file|dir]... [--seed-corpus]\n"
               "       fuzz_replay <target> --fuzz [--runs N] [--seed S]\n"
               "                   [--max-len L] [dir]...\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();

  if (std::strcmp(argv[1], "--list") == 0) {
    for (const TargetInfo& t : AllTargets()) std::printf("%s\n", t.name);
    return 0;
  }

  if (std::strcmp(argv[1], "--all") == 0) {
    if (argc != 3) return Usage();
    const std::string root = argv[2];
    for (const TargetInfo& t : AllTargets()) {
      uint64_t executed = ReplaySeedCorpus(t);
      const std::string dir = root + "/" + t.name;
      if (IsDirectory(dir)) executed += ReplayPaths(t, {dir});
      std::printf("%-16s %llu inputs OK\n", t.name,
                  static_cast<unsigned long long>(executed));
    }
    return 0;
  }

  const TargetInfo* target = FindTarget(argv[1]);
  if (target == nullptr) {
    std::fprintf(stderr, "unknown target '%s' (try --list)\n", argv[1]);
    return 2;
  }

  bool fuzz = false, seed_corpus = false;
  uint64_t runs = 10000, seed = 1;
  size_t max_len = 4096;
  std::vector<std::string> paths;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next_u64 = [&](uint64_t* out) {
      if (i + 1 >= argc) std::exit(Usage());
      *out = std::strtoull(argv[++i], nullptr, 10);
    };
    if (arg == "--fuzz") {
      fuzz = true;
    } else if (arg == "--seed-corpus") {
      seed_corpus = true;
    } else if (arg == "--runs") {
      next_u64(&runs);
    } else if (arg == "--seed") {
      next_u64(&seed);
    } else if (arg == "--max-len") {
      uint64_t v = 0;
      next_u64(&v);
      max_len = static_cast<size_t>(v);
    } else if (!arg.empty() && arg[0] == '-') {
      // Ignore unknown dashed flags (libFuzzer-style invocations).
    } else {
      paths.push_back(std::move(arg));
    }
  }

  if (fuzz) {
    std::vector<std::string> seeds;
    for (const SeedInput& s : BuildSeedCorpus(target->name)) {
      seeds.push_back(s.bytes);
    }
    for (const std::string& path : paths) {
      std::vector<std::string> files =
          IsDirectory(path) ? ListDir(path) : std::vector<std::string>{path};
      for (const std::string& f : files) {
        std::string bytes;
        if (ReadFile(f, &bytes)) seeds.push_back(std::move(bytes));
      }
    }
    MiniFuzzResult result =
        RunMiniFuzz(target->fn, std::move(seeds), runs, seed, max_len);
    std::printf("%s: %llu mutated runs OK (%llu bytes)\n", target->name,
                static_cast<unsigned long long>(result.runs),
                static_cast<unsigned long long>(result.executed_bytes));
    return 0;
  }

  uint64_t executed = ReplayPaths(*target, paths);
  if (seed_corpus || paths.empty()) executed += ReplaySeedCorpus(*target);
  std::printf("%s: %llu inputs OK\n", target->name,
              static_cast<unsigned long long>(executed));
  return 0;
}

}  // namespace
}  // namespace epidemic::fuzz

int main(int argc, char** argv) { return epidemic::fuzz::Main(argc, argv); }
