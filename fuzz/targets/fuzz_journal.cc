#include <string_view>

#include "core/journal.h"
#include "fuzz/harness.h"

namespace epidemic::fuzz {

/// Boundary: journal recovery — ReplayJournalBytes runs the exact frame
/// loop JournaledReplica::Open uses (varint length + payload + CRC-32C,
/// torn-tail tolerant) and applies each record through the replica's
/// ordinary mutation paths.
///
/// Oracle: replay of arbitrary bytes either stops cleanly (torn/corrupt
/// tail), returns a Status, or applies records — and in every case the
/// replica's invariants hold afterward. The CRC gate means most mutations
/// stop the loop, which is itself the property being checked: nothing
/// unchecksummed may reach the state machine.
int Target_journal(const uint8_t* data, size_t size) {
  std::string_view bytes(reinterpret_cast<const char*>(data), size);
  auto replica = MakeSeededReplica();
  (void)ReplayJournalBytes(*replica, bytes);
  OracleExpectOk(replica->CheckInvariants(), "journal",
                 "invariants after journal replay");
  return 0;
}

}  // namespace epidemic::fuzz

EPIFUZZ_DEFINE_TARGET(journal)
