#include <string_view>

#include "core/wire.h"
#include "fuzz/harness.h"

namespace epidemic::fuzz {

/// Boundary: wire::DecodeShardSegmentBodyV3 — the zero-copy v3 segment
/// decoder (flags byte, optional LZ compression, base DBVV, delta-IVV
/// items, indexed tails), straight into a live replica's accept path.
///
/// Oracle: whatever the decoder accepts, the replica either rejects with a
/// clean Status or absorbs while keeping the §4.1/§5.2 invariants.
///
/// This target found the origin-seq reuse hole: after a conflict leaves
/// DBVV[k] below the largest seq in L[k], a crafted tail could claim an
/// already-used seq for a fresh item and break the log-order invariant
/// (now rejected by ValidatePropagationResponse's log merge-scan, kept
/// honest by the seq_reuse regression seed).
int Target_wire_segment_v3(const uint8_t* data, size_t size) {
  std::string_view body(reinterpret_cast<const char*>(data), size);
  wire::SegmentViewStorage storage;
  PropagationResponseView view;
  if (!wire::DecodeShardSegmentBodyV3(body, &storage, &view).ok()) return 0;

  auto replica = MakeSeededReplica();
  // Accept may legitimately fail (wrong vector widths, unknown origins):
  // failure must be a Status, never a crash or an invariant break.
  (void)replica->AcceptPropagation(view);
  OracleExpectOk(replica->CheckInvariants(), "wire_segment_v3",
                 "invariants after v3 segment accept");

  // The v2 view decoder shares the storage plumbing; feed it the same
  // bytes for free coverage of the non-delta layout.
  wire::SegmentViewStorage storage2;
  PropagationResponseView view2;
  if (wire::DecodePropagationResponseBodyView(body, &storage2, &view2).ok()) {
    auto replica2 = MakeSeededReplica();
    (void)replica2->AcceptPropagation(view2);
    OracleExpectOk(replica2->CheckInvariants(), "wire_segment_v3",
                   "invariants after v2 view accept");
  }
  return 0;
}

}  // namespace epidemic::fuzz

EPIFUZZ_DEFINE_TARGET(wire_segment_v3)
