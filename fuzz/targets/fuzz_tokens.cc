#include <string_view>

#include "common/logging.h"
#include "fuzz/harness.h"
#include "tokens/token_service.h"

namespace epidemic::fuzz {

/// Boundary: TokenServiceHandler::HandleRequest — self-tagged token
/// request/release frames from arbitrary peers.
///
/// Oracle: every frame gets a decodable TokenReply. The home check lives
/// in the handler — before it, a token request whose item hashed to a
/// different home node EPI_CHECK-aborted the process, the first bug this
/// harness's boundary audit surfaced.
int Target_tokens(const uint8_t* data, size_t size) {
  std::string_view frame(reinterpret_cast<const char*>(data), size);

  tokens::TokenService service(0, kFuzzNodes);
  tokens::TokenServiceHandler handler(&service);

  std::string reply = handler.HandleRequest(frame);
  OracleExpectOk(tokens::DecodeTokenReply(reply).status(), "tokens",
                 "reply decodes as a TokenReply");
  return 0;
}

}  // namespace epidemic::fuzz

EPIFUZZ_DEFINE_TARGET(tokens)
