#include <string_view>

#include "common/logging.h"
#include "fuzz/harness.h"
#include "multidb/multi_db_server.h"
#include "net/codec.h"
#include "net/inproc_transport.h"

namespace epidemic::fuzz {

/// Boundary: MultiDbServer::HandleRequest — the multi-database envelope
/// (routed frames and summary requests) plus the inner codec frame it
/// unwraps and dispatches per database.
///
/// Oracle: every input produces a reply, and the reply is itself
/// well-formed — a decodable codec frame for routed requests, a decodable
/// summary for summary requests. A server that answers garbage with
/// garbage just moves the parsing crash to the peer.
int Target_multidb(const uint8_t* data, size_t size) {
  std::string_view frame(reinterpret_cast<const char*>(data), size);

  net::InProcHub hub(kFuzzNodes);
  net::InProcTransport transport(&hub);
  multidb::MultiDbServer server(0, kFuzzNodes, &transport);
  EPI_CHECK(server.Update("db-a", "alpha", "a0").ok());
  EPI_CHECK(server.Update("db-b", "beta", "b0").ok());

  std::string reply = server.HandleRequest(frame);

  if (!frame.empty() && frame[0] == 2 && frame.size() == 1) {
    OracleExpectOk(multidb::DecodeSummary(reply).status(), "multidb",
                   "summary reply decodes");
  } else {
    OracleExpectOk(net::Decode(reply).status(), "multidb",
                   "routed reply is a well-formed codec frame");
  }
  return 0;
}

}  // namespace epidemic::fuzz

EPIFUZZ_DEFINE_TARGET(multidb)
