#include <string_view>

#include "common/bytes.h"
#include "fuzz/harness.h"
#include "vv/vv_codec.h"

namespace epidemic::fuzz {

/// Boundary: the version-vector codecs — dense (DecodeVersionVector) and
/// the wire-v3 sparse delta (DecodeVersionVectorDelta).
///
/// Input shape: byte 0 selects the delta base width (0-8); the rest is fed
/// first to the delta decoder against a fixed base of that width, then to
/// the dense decoder. Oracle: accepted vectors must re-encode/re-decode to
/// the same vector (the delta encoder may pick a different mode than the
/// input used, so equality is on the decoded value, not the bytes).
int Target_vv_delta(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const size_t width = data[0] % 9;
  std::string_view body(reinterpret_cast<const char*>(data + 1), size - 1);

  VersionVector base(width);
  for (size_t k = 0; k < width; ++k) {
    base[k] = k * 7 + 1;  // any fixed, nonzero, distinct counts
  }

  {
    ByteReader r(body);
    Result<VersionVector> vv = DecodeVersionVectorDelta(&r, base);
    if (vv.ok()) {
      ByteWriter w;
      EncodeVersionVectorDelta(&w, *vv, base);
      if (w.size() != VersionVectorDeltaSize(*vv, base)) {
        OracleFail("vv_delta", "VersionVectorDeltaSize disagrees with the "
                               "encoder");
      }
      ByteReader r2(w.data());
      Result<VersionVector> vv2 = DecodeVersionVectorDelta(&r2, base);
      OracleExpectOk(vv2.status(), "vv_delta", "re-decode of re-encoded delta");
      if (!(*vv2 == *vv)) {
        OracleFail("vv_delta", "delta round trip changed the vector");
      }
    }
  }
  {
    ByteReader r(body);
    Result<VersionVector> vv = DecodeVersionVector(&r);
    if (vv.ok()) {
      ByteWriter w;
      EncodeVersionVector(&w, *vv);
      ByteReader r2(w.data());
      Result<VersionVector> vv2 = DecodeVersionVector(&r2);
      OracleExpectOk(vv2.status(), "vv_delta", "re-decode of dense vector");
      if (!(*vv2 == *vv)) {
        OracleFail("vv_delta", "dense round trip changed the vector");
      }
    }
  }
  return 0;
}

}  // namespace epidemic::fuzz

EPIFUZZ_DEFINE_TARGET(vv_delta)
