#include <string_view>

#include "fuzz/fixture_decoder.h"
#include "fuzz/harness.h"

namespace epidemic::fuzz {

/// Self-test target over the fixture decoder (fixture_decoder.h). Not a
/// production boundary: it exists to prove, in every build mode, that the
/// smoke fuzz finds a real missing bounds check. The clean build must
/// never trip the oracle; the EPIFUZZ_SEEDED_DEFECT build must trip it
/// within the smoke budget.
int Target_fixture(const uint8_t* data, size_t size) {
  std::string_view frame(reinterpret_cast<const char*>(data), size);
  FixtureDecodeResult result = DecodeFixtureFrame(frame);
  if (result.bounds_violation) {
    OracleFail("fixture", "decoder read past the end of its input");
  }
  return 0;
}

}  // namespace epidemic::fuzz

EPIFUZZ_DEFINE_TARGET(fixture)
