#include <string_view>

#include "core/snapshot.h"
#include "fuzz/harness.h"

namespace epidemic::fuzz {

/// Boundary: snapshot load — DecodeSnapshot (EPISNAP1) and
/// DecodeShardedSnapshot (EPISHRD1), the bytes a recovering node trusts
/// most and validates hardest (magic, CRC-32C, then full §4.1 invariant
/// re-check before the replica is handed out).
///
/// Oracle: an accepted snapshot yields a replica whose invariants hold and
/// which re-encodes to a blob that decodes again.
int Target_snapshot(const uint8_t* data, size_t size) {
  std::string_view blob(reinterpret_cast<const char*>(data), size);

  if (auto replica = DecodeSnapshot(blob); replica.ok()) {
    OracleExpectOk((*replica)->CheckInvariants(), "snapshot",
                   "invariants of a decoded snapshot");
    auto again = DecodeSnapshot(EncodeSnapshot(**replica));
    OracleExpectOk(again.status(), "snapshot",
                   "re-decode of a re-encoded snapshot");
  }

  if (auto sharded = DecodeShardedSnapshot(blob); sharded.ok()) {
    OracleExpectOk((*sharded)->CheckInvariants(), "snapshot",
                   "invariants of a decoded sharded snapshot");
    auto again = DecodeShardedSnapshot(EncodeShardedSnapshot(**sharded));
    OracleExpectOk(again.status(), "snapshot",
                   "re-decode of a re-encoded sharded snapshot");
  }
  return 0;
}

}  // namespace epidemic::fuzz

EPIFUZZ_DEFINE_TARGET(snapshot)
