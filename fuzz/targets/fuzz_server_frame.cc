#include <string_view>

#include "common/logging.h"
#include "fuzz/harness.h"
#include "net/inproc_transport.h"
#include "server/replica_server.h"

namespace epidemic::fuzz {

/// Boundary: ReplicaServer::HandleRequest — the full network entry point
/// (decode, version negotiation, scheduler dispatch, serve/accept), fed a
/// raw frame exactly as the transport would deliver it.
///
/// Oracle: the server must answer every frame with *some* reply and come
/// out with its sharded replica's invariants intact. This is the boundary
/// where the DBVV width checks live — before them, one wrong-width
/// handshake aborted the whole process.
int Target_server_frame(const uint8_t* data, size_t size) {
  std::string_view frame(reinterpret_cast<const char*>(data), size);

  net::InProcHub hub(kFuzzNodes);
  net::InProcTransport transport(&hub);
  server::ReplicaServer::Options options;
  options.num_shards = kFuzzShards;
  options.ae_workers = 0;        // serial scheduler: deterministic
  options.read_cache_slots = 8;  // exercise the optimistic read path
  server::ReplicaServer server(0, kFuzzNodes, &transport, options);
  hub.Register(0, &server);
  EPI_CHECK(server.Update("alpha", "a0").ok());
  EPI_CHECK(server.Update("gamma", "g0").ok());

  (void)server.HandleRequest(frame);

  server.WithReplica([](const ShardedReplica& replica) {
    OracleExpectOk(replica.CheckInvariants(), "server_frame",
                   "invariants after serving a frame");
  });
  return 0;
}

}  // namespace epidemic::fuzz

EPIFUZZ_DEFINE_TARGET(server_frame)
