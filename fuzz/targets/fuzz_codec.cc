#include <string_view>
#include <variant>

#include "fuzz/harness.h"
#include "net/codec.h"

namespace epidemic::fuzz {

/// Boundary: net::Decode — every tagged frame the transport delivers
/// (wire v1 tags 1-13, v2 tags 14-16, v3 tags 17-18).
///
/// Oracle beyond sanitizers: any frame the decoder accepts must survive an
/// encode/decode round trip, and the re-encoding must be a fixed point.
/// (The original bytes need not equal the re-encoding: the padded
/// backpatch-slot varints are deliberate non-canonical aliases.)
int Target_codec(const uint8_t* data, size_t size) {
  std::string_view frame(reinterpret_cast<const char*>(data), size);
  Result<net::Message> decoded = net::Decode(frame);
  if (!decoded.ok()) return 0;

  std::string encoded = net::Encode(*decoded);
  Result<net::Message> again = net::Decode(encoded);
  OracleExpectOk(again.status(), "codec",
                 "re-decode of an accepted, re-encoded frame");
  if (net::Encode(*again) != encoded) {
    OracleFail("codec", "encode is not a fixed point over decode");
  }
  return 0;
}

}  // namespace epidemic::fuzz

EPIFUZZ_DEFINE_TARGET(codec)
