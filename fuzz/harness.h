#ifndef EPIDEMIC_FUZZ_HARNESS_H_
#define EPIDEMIC_FUZZ_HARNESS_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/replica.h"
#include "core/sharded_replica.h"

/// Shared fuzzing harness (DESIGN.md §13).
///
/// Every decode boundary gets a `Target_<name>` function with the libFuzzer
/// signature. A target feeds the input through the *real* decode-then-accept
/// path into a live replica and then asserts the §4.1/§5.2 invariants, so
/// the oracle is "no sanitizer finding AND no invariant violation" — a
/// decoder that accepts garbage into a state the invariant checker rejects
/// is just as broken as one that reads past a buffer.
///
/// The same target functions run in three drivers:
///   - per-target libFuzzer binaries (clang, EPIDEMIC_FUZZ=ON): the TU is
///     compiled with EPIFUZZ_ENTRY so EPIFUZZ_DEFINE_TARGET emits
///     LLVMFuzzerTestOneInput + the structure-aware custom mutator;
///   - the standalone `fuzz_replay` driver (any compiler): corpus replay
///     and a deterministic in-tree mutation fuzzer (`--fuzz`);
///   - the `fuzz_corpus_test` ctest, which replays the checked-in corpora
///     and the generated seed corpus in every CI matrix leg.
namespace epidemic::fuzz {

using TargetFn = int (*)(const uint8_t* data, size_t size);

// One entry per decode boundary; see targets/fuzz_<name>.cc.
int Target_codec(const uint8_t* data, size_t size);
int Target_wire_segment_v3(const uint8_t* data, size_t size);
int Target_vv_delta(const uint8_t* data, size_t size);
int Target_snapshot(const uint8_t* data, size_t size);
int Target_journal(const uint8_t* data, size_t size);
int Target_server_frame(const uint8_t* data, size_t size);
int Target_multidb(const uint8_t* data, size_t size);
int Target_tokens(const uint8_t* data, size_t size);
int Target_fixture(const uint8_t* data, size_t size);

struct TargetInfo {
  const char* name;
  TargetFn fn;
};

/// All registered targets (registry.cc). `fixture` is last — it is the
/// seeded-defect demo decoder, not a production boundary.
const std::vector<TargetInfo>& AllTargets();
const TargetInfo* FindTarget(std::string_view name);

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

/// By default an oracle failure abort()s — that is what libFuzzer and ctest
/// both treat as the crash signal. The seeded-defect self-test flips this
/// so the expected failure is a clean exit(1) (ctest's WILL_FAIL inverts
/// exit codes, not signals).
void SetCleanExitOnOracleFailure(bool clean);

/// Reports an oracle violation and terminates (abort or exit(1), above).
[[noreturn]] void OracleFail(const char* target, const std::string& detail);

/// Fails the oracle when `s` is not OK. `what` names the claim being
/// checked, e.g. "invariants after accept".
void OracleExpectOk(const Status& s, const char* target, const char* what);

// ---------------------------------------------------------------------------
// Live-replica builders
// ---------------------------------------------------------------------------

/// Node count every harness replica uses. Seed corpora are generated for
/// the same width so decoded vectors line up with the acceptors.
inline constexpr size_t kFuzzNodes = 3;
inline constexpr size_t kFuzzShards = 4;

/// Fresh single replica (node 0 of kFuzzNodes) carrying a little real
/// state — local updates plus one accepted propagation from a peer — so
/// the invariant check after an accept is not vacuous.
std::unique_ptr<Replica> MakeSeededReplica();

/// Sharded twin of MakeSeededReplica (kFuzzShards shards).
std::unique_ptr<ShardedReplica> MakeSeededShardedReplica();

// ---------------------------------------------------------------------------
// In-tree mutation fuzzer (plain builds)
// ---------------------------------------------------------------------------

struct MiniFuzzResult {
  uint64_t runs = 0;
  uint64_t executed_bytes = 0;
};

/// Deterministic mutation fuzzer: repeatedly picks a seed, applies 1-4
/// structure-aware mutations (mutator.h) and runs `fn`. No coverage
/// feedback — this is the gcc-only smoke layer; coverage-guided runs are
/// the clang libFuzzer binaries. Oracle failures terminate inside `fn`.
MiniFuzzResult RunMiniFuzz(TargetFn fn, std::vector<std::string> seeds,
                           uint64_t runs, uint64_t seed,
                           size_t max_len = 4096);

}  // namespace epidemic::fuzz

// Expands to the libFuzzer entry points in fuzzer builds (EPIFUZZ_ENTRY is
// defined per-binary by fuzz/CMakeLists.txt) and to nothing everywhere
// else, so the same TU also links into the standalone replay driver.
#if defined(EPIFUZZ_ENTRY)
#include "fuzz/mutator.h"
#define EPIFUZZ_DEFINE_TARGET(name)                                           \
  extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {   \
    return ::epidemic::fuzz::Target_##name(data, size);                       \
  }                                                                           \
  extern "C" size_t LLVMFuzzerCustomMutator(uint8_t* data, size_t size,       \
                                            size_t max_size, unsigned seed) { \
    return ::epidemic::fuzz::MutateFrame(data, size, max_size, seed);         \
  }
#else
#define EPIFUZZ_DEFINE_TARGET(name)
#endif

#endif  // EPIDEMIC_FUZZ_HARNESS_H_
