// Quickstart: three database replicas, a few updates, one anti-entropy
// pass, and the constant-time "already identical" check.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/replica.h"

using epidemic::PropagateOnce;
using epidemic::RecordingConflictListener;
using epidemic::Replica;

int main() {
  // A database replicated across three fixed servers (node ids 0..2).
  RecordingConflictListener conflicts;
  Replica n0(0, 3, &conflicts);
  Replica n1(1, 3, &conflicts);
  Replica n2(2, 3, &conflicts);

  // Clients write at whichever replica is nearby (epidemic model: a user
  // operation touches exactly one server).
  (void)n0.Update("motd", "hello from node 0");
  (void)n0.Update("config/timeout", "30s");
  (void)n1.Update("motd:translated", "bonjour");

  std::printf("before anti-entropy:\n");
  std::printf("  n2 knows 'motd'?               %s\n",
              n2.Read("motd").ok() ? "yes" : "no");
  std::printf("  n0 DBVV = %s, n1 = %s, n2 = %s\n",
              n0.dbvv().ToString().c_str(), n1.dbvv().ToString().c_str(),
              n2.dbvv().ToString().c_str());

  // The anti-entropy activity: each node pulls from its ring successor.
  // Two passes give transitive propagation for three nodes (Theorem 5's
  // premise).
  for (int pass = 0; pass < 2; ++pass) {
    (void)PropagateOnce(/*source=*/n1, /*recipient=*/n0);
    (void)PropagateOnce(/*source=*/n2, /*recipient=*/n1);
    (void)PropagateOnce(/*source=*/n0, /*recipient=*/n2);
  }

  std::printf("\nafter two ring passes:\n");
  std::printf("  n2 reads motd              -> '%s'\n",
              n2.Read("motd")->c_str());
  std::printf("  n0 reads motd:translated   -> '%s'\n",
              n0.Read("motd:translated")->c_str());
  std::printf("  DBVVs: n0 = %s, n1 = %s, n2 = %s\n",
              n0.dbvv().ToString().c_str(), n1.dbvv().ToString().c_str(),
              n2.dbvv().ToString().c_str());

  // The headline property: once replicas are identical, detecting "nothing
  // to do" is ONE version-vector comparison, independent of database size.
  n1.ResetStats();
  (void)PropagateOnce(/*source=*/n1, /*recipient=*/n0);
  std::printf("\nidentical-replica exchange cost at the source:\n");
  std::printf("  DBVV comparisons: %llu, log records examined: %llu, "
              "items shipped: %llu\n",
              static_cast<unsigned long long>(n1.stats().dbvv_comparisons),
              static_cast<unsigned long long>(
                  n1.stats().log_records_selected),
              static_cast<unsigned long long>(n1.stats().items_shipped));

  std::printf("\nconflicts detected: %zu (expected 0)\n", conflicts.count());
  return 0;
}
