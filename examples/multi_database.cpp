// Multi-database replication (§2): one server hosts several independently
// replicated databases; a pair of servers synchronizes all of them in one
// sweep that costs a single DBVV comparison per database — most of which
// say "already current" and are skipped entirely.
//
//   ./build/examples/multi_database

#include <cstdio>

#include "multidb/multi_db_node.h"

using epidemic::multidb::MultiDbNode;

int main() {
  MultiDbNode office(0, 2);
  MultiDbNode branch(1, 2);

  // The office hosts three databases with very different sizes.
  for (int i = 0; i < 500; ++i) {
    (void)office.Update("archive", "doc" + std::to_string(i), "cold");
  }
  (void)office.Update("config", "timeout", "30s");
  (void)office.Update("config", "retries", "3");
  (void)office.Update("inbox", "msg1", "hello branch");

  auto first = branch.PullAllFrom(office);
  std::printf("first sweep: %zu database(s) transferred "
              "(archive, config, inbox)\n",
              first.ok() ? *first : 0);
  std::printf("  branch reads config/timeout = '%s'\n",
              branch.Read("config", "timeout")->c_str());
  std::printf("  branch reads inbox/msg1     = '%s'\n",
              branch.Read("inbox", "msg1")->c_str());

  // Day-to-day: only the inbox changes. The sweep touches the other
  // databases' protocol instances not at all — their DBVVs already match.
  (void)office.Update("inbox", "msg2", "meeting at 10");
  for (const std::string& db : branch.ListDatabases()) {
    branch.FindDatabase(db)->ResetStats();
    office.FindDatabase(db)->ResetStats();
  }
  auto second = branch.PullAllFrom(office);
  std::printf("\nsecond sweep: %zu database(s) transferred\n",
              second.ok() ? *second : 0);
  std::printf("  archive instance invoked at the office: %llu time(s)\n",
              static_cast<unsigned long long>(
                  office.FindDatabase("archive")
                      ->stats()
                      .propagation_requests_served));
  std::printf("  branch reads inbox/msg2 = '%s'\n",
              branch.Read("inbox", "msg2")->c_str());

  // Same item name in different databases: fully independent replicas.
  (void)office.Update("config", "shared-name", "from config");
  (void)office.Update("inbox", "shared-name", "from inbox");
  (void)branch.PullAllFrom(office);
  std::printf("\nsame item name, independent databases:\n");
  std::printf("  config/shared-name = '%s'\n",
              branch.Read("config", "shared-name")->c_str());
  std::printf("  inbox/shared-name  = '%s'\n",
              branch.Read("inbox", "shared-name")->c_str());
  return 0;
}
