// Conflict lifecycle: detect (the protocol's job, §2.1 criterion 1),
// choose (the application's job, §2), and resolve so the choice wins
// everywhere (Replica::ResolveConflict merges the version vectors).
//
//   ./build/examples/conflict_resolution

#include <cstdio>

#include "core/replica.h"

using epidemic::ConflictEvent;
using epidemic::PropagateOnce;
using epidemic::RecordingConflictListener;
using epidemic::Replica;

int main() {
  RecordingConflictListener conflicts;
  Replica laptop(0, 2, &conflicts);
  Replica desktop(1, 2);

  // Both machines edit the same document while disconnected.
  (void)laptop.Update("doc", "laptop draft: restructure chapter 2");
  (void)desktop.Update("doc", "desktop draft: fix typos in chapter 2");

  // The next anti-entropy exchange detects the divergence instead of
  // silently overwriting either side (contrast: Lotus §8.1, Merkle LWW).
  (void)PropagateOnce(desktop, laptop);
  std::printf("conflicts detected: %zu\n", conflicts.count());
  const ConflictEvent& event = conflicts.events()[0];
  std::printf("  item: '%s'\n", event.item_name.c_str());
  std::printf("  local vv  = %s\n", event.local_vv.ToString().c_str());
  std::printf("  remote vv = %s (concurrent: neither dominates)\n",
              event.remote_vv.ToString().c_str());
  std::printf("  laptop still reads: '%s' (nothing was overwritten)\n\n",
              laptop.Read("doc")->c_str());

  // The application (here: a human) merges the two drafts and resolves.
  epidemic::Status resolved = laptop.ResolveConflict(
      "doc", event.remote_vv,
      "merged draft: restructure chapter 2 + typo fixes");
  std::printf("resolution applied: %s\n", resolved.ToString().c_str());
  std::printf("  merged IVV: %s (dominates both branches)\n",
              laptop.FindItem("doc")->ivv.ToString().c_str());

  // Normal propagation carries the resolution everywhere; no new conflict.
  (void)PropagateOnce(laptop, desktop);
  std::printf("\ndesktop now reads: '%s'\n", desktop.Read("doc")->c_str());
  std::printf("replicas identical: %s, total conflicts ever: %zu\n",
              laptop.dbvv() == desktop.dbvv() ? "yes" : "no",
              conflicts.count());
  return 0;
}
