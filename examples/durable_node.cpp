// Durability walkthrough: a journaled replica crashes and recovers.
//
// Every input to the replica — user updates/deletes, accepted propagation
// responses, out-of-bound responses — is appended to a write-ahead journal
// before it is applied. Recovery replays the journal (on top of the last
// snapshot checkpoint) through the ordinary protocol code paths, rebuilding
// the exact state: values, version vectors, logs, even pending auxiliary
// records.
//
//   ./build/examples/durable_node

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/journal.h"
#include "core/replica.h"

using epidemic::JournaledReplica;
using epidemic::PropagationRequest;
using epidemic::PropagationResponse;
using epidemic::Replica;

int main() {
  const std::string dir = "/tmp/epidemic_durable_node";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  Replica peer(1, 2);
  (void)peer.Update("shared/config", "v1");

  std::string dbvv_at_crash;
  {
    auto node = JournaledReplica::Open(dir, /*id=*/0, /*num_nodes=*/2);
    if (!node.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   node.status().ToString().c_str());
      return 1;
    }
    (void)(*node)->Update("local/notes", "draft 1");
    (void)(*node)->Update("local/notes", "draft 2");

    // Pull from the peer — the received response is journaled too.
    PropagationRequest req = (*node)->BuildPropagationRequest();
    PropagationResponse resp = peer.HandlePropagationRequest(req);
    (void)(*node)->AcceptPropagation(resp);

    // Checkpoint: snapshot + journal truncation.
    (void)(*node)->Checkpoint();
    (void)(*node)->Update("local/notes", "draft 3 (after checkpoint)");

    dbvv_at_crash = (*node)->replica().dbvv().ToString();
    std::printf("before crash: notes='%s', DBVV=%s, journal records=%llu\n",
                (*node)->Read("local/notes")->c_str(),
                dbvv_at_crash.c_str(),
                static_cast<unsigned long long>(
                    (*node)->records_since_checkpoint()));
  }  // <- process "crashes" here; only the files in `dir` survive

  auto recovered = JournaledReplica::Open(dir, 0, 2);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  std::printf("after recovery: notes='%s', config='%s', DBVV=%s\n",
              (*recovered)->Read("local/notes")->c_str(),
              (*recovered)->Read("shared/config")->c_str(),
              (*recovered)->replica().dbvv().ToString().c_str());
  std::printf("state identical to pre-crash: %s\n",
              (*recovered)->replica().dbvv().ToString() == dbvv_at_crash
                  ? "yes"
                  : "NO");

  // The revived node resumes anti-entropy exactly where it stopped: the
  // unchanged peer answers "you-are-current" in one DBVV comparison.
  peer.ResetStats();
  PropagationRequest req = (*recovered)->BuildPropagationRequest();
  PropagationResponse resp = peer.HandlePropagationRequest(req);
  (void)(*recovered)->AcceptPropagation(resp);
  std::printf("first post-recovery exchange was a no-op: %s\n",
              peer.stats().you_are_current_replies == 1 ? "yes" : "NO");

  std::filesystem::remove_all(dir);
  return 0;
}
