// A real deployment in miniature: three replica servers on TCP sockets
// (127.0.0.1), each running a background anti-entropy thread, with clients
// doing updates, reads, and an out-of-bound priority read over the wire.
//
//   ./build/examples/tcp_cluster

#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "net/tcp_transport.h"
#include "server/replica_server.h"

using epidemic::NodeId;
using epidemic::net::TcpServer;
using epidemic::net::TcpTransport;
using epidemic::server::ReplicaClient;
using epidemic::server::ReplicaServer;

int main() {
  constexpr size_t kNodes = 3;
  TcpTransport transport(kNodes);

  // Bring up three servers with 20 ms anti-entropy pulls, round-robin over
  // their peers.
  std::vector<std::unique_ptr<ReplicaServer>> servers;
  std::vector<std::unique_ptr<TcpServer>> listeners;
  for (NodeId i = 0; i < kNodes; ++i) {
    ReplicaServer::Options options;
    for (NodeId p = 0; p < kNodes; ++p) {
      if (p != i) options.peers.push_back(p);
    }
    options.anti_entropy_interval_micros = 20'000;
    servers.push_back(
        std::make_unique<ReplicaServer>(i, kNodes, &transport, options));
    listeners.push_back(std::make_unique<TcpServer>(servers.back().get()));
    if (!listeners.back()->Start(0).ok()) {
      std::fprintf(stderr, "failed to start TCP listener %u\n", i);
      return 1;
    }
    transport.SetPeerPort(i, listeners.back()->port());
    std::printf("node %u listening on 127.0.0.1:%u\n", i,
                listeners.back()->port());
  }
  for (auto& s : servers) s->Start();

  // Clients, one per node.
  ReplicaClient c0(&transport, 0), c1(&transport, 1), c2(&transport, 2);

  (void)c0.Update("greeting", "hello over TCP");
  (void)c1.Update("counter", "1");

  // Priority read: node 2's client wants 'greeting' before anti-entropy
  // gets around to it.
  auto hot = c2.OobRead(/*from_peer=*/0, "greeting");
  std::printf("priority read at node 2: '%s'\n",
              hot.ok() ? hot->c_str() : hot.status().ToString().c_str());

  // Wait for the background anti-entropy threads to spread everything.
  bool converged = false;
  for (int i = 0; i < 200 && !converged; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    converged = c2.Read("greeting").ok() && c0.Read("counter").ok() &&
                c1.Read("greeting").ok();
  }
  std::printf("background anti-entropy converged: %s\n",
              converged ? "yes" : "no");
  if (converged) {
    std::printf("  node 2 reads greeting = '%s'\n",
                c2.Read("greeting")->c_str());
    std::printf("  node 0 reads counter  = '%s'\n",
                c0.Read("counter")->c_str());
  }

  for (auto& s : servers) s->Stop();
  for (auto& l : listeners) l->Stop();
  return converged ? 0 : 1;
}
