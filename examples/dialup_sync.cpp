// Dial-up synchronization: the paper's motivating deployment (§1) — update
// propagation "at a convenient time, i.e. during the next dial-up session",
// with many updates bundled into a single transfer.
//
// A laptop (node 2) connects to the office pair (nodes 0, 1) only during
// short dial-up windows, driven by the discrete-event simulator. Between
// windows, everyone keeps writing. Each dial-up session is ONE anti-entropy
// exchange, no matter how many updates accumulated.
//
//   ./build/examples/dialup_sync

#include <cstdio>
#include <string>

#include "core/replica.h"
#include "sim/event_queue.h"

using epidemic::PropagateOnce;
using epidemic::Replica;
using epidemic::sim::EventQueue;

namespace {

constexpr int64_t kMinute = 60LL * 1000 * 1000;  // virtual microseconds
int g_doc_rev = 0;

void OfficeWork(EventQueue& q, Replica& office0, Replica& office1) {
  // The office edits a handful of shared documents every few minutes, and
  // the two office servers run anti-entropy often.
  (void)office0.Update("doc/spec", "rev" + std::to_string(++g_doc_rev));
  (void)office1.Update("doc/notes", "rev" + std::to_string(g_doc_rev));
  (void)PropagateOnce(office0, office1);
  (void)PropagateOnce(office1, office0);
  q.After(5 * kMinute, [&q, &office0, &office1] {
    OfficeWork(q, office0, office1);
  });
}

void LaptopWork(EventQueue& q, Replica& laptop) {
  // Offline edits on the laptop's own files.
  (void)laptop.Update("laptop/draft", "offline-edit@" +
                                          std::to_string(q.now() / kMinute));
  q.After(7 * kMinute, [&q, &laptop] { LaptopWork(q, laptop); });
}

void DialUp(Replica& laptop, Replica& office) {
  office.ResetStats();
  laptop.ResetStats();
  auto pulled = PropagateOnce(/*source=*/office, /*recipient=*/laptop);
  auto pushed = PropagateOnce(/*source=*/laptop, /*recipient=*/office);
  std::printf(
      "  dial-up session: laptop pulled %2zu items (%llu records), "
      "pushed %2zu items; office examined %llu log records total\n",
      pulled.ok() ? *pulled : 0,
      static_cast<unsigned long long>(office.stats().log_records_selected),
      pushed.ok() ? *pushed : 0,
      static_cast<unsigned long long>(office.stats().log_records_selected +
                                      laptop.stats().log_records_selected));
}

}  // namespace

int main() {
  Replica office0(0, 3), office1(1, 3), laptop(2, 3);
  EventQueue q;

  OfficeWork(q, office0, office1);
  LaptopWork(q, laptop);

  // The laptop dials in once an hour for the working day.
  std::printf("one simulated working day, dial-up every hour:\n");
  for (int hour = 1; hour <= 8; ++hour) {
    q.At(hour * 60 * kMinute,
         [&laptop, &office0] { DialUp(laptop, office0); });
  }
  q.RunUntil(8 * 60 * kMinute + 1);

  std::printf("\nend of day:\n");
  std::printf("  laptop sees doc/spec  = '%s'\n",
              laptop.Read("doc/spec")->c_str());
  std::printf("  office sees the laptop draft = '%s'\n",
              office0.Read("laptop/draft")->c_str());
  std::printf("  laptop DBVV %s vs office %s\n",
              laptop.dbvv().ToString().c_str(),
              office0.dbvv().ToString().c_str());
  std::printf(
      "\nnote: every hour ~12 office updates collapse into a bundle of at\n"
      "most 2 documents on the wire — the log keeps only the latest record\n"
      "per item (Fig. 1), so transfer cost tracks *dirty items*, not\n"
      "updates.\n");
  return 0;
}
