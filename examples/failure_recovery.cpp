// Failure story (§8.2): an originator pushes an update to some peers and
// crashes. Under an Oracle-style push scheme nobody forwards, so the rest
// of the cluster stays obsolete until the originator is repaired. Under the
// paper's epidemic protocol the survivors detect the divergence through
// DBVV comparison and forward the update among themselves.
//
//   ./build/examples/failure_recovery

#include <cstdio>

#include "sim/cluster.h"

using epidemic::sim::Cluster;
using epidemic::sim::ClusterConfig;
using epidemic::sim::Peering;
using epidemic::sim::ProtocolKind;

namespace {

void RunStory(ProtocolKind protocol) {
  constexpr size_t kNodes = 6;
  ClusterConfig config;
  config.protocol = protocol;
  config.num_nodes = kNodes;
  config.peering = Peering::kRandom;
  config.seed = 2026;
  Cluster cluster(config);

  std::printf("--- %s ---\n",
              std::string(ProtocolKindName(protocol)).c_str());

  // Node 0 commits an update and manages to deliver it to nodes 1 and 2
  // before crashing.
  (void)cluster.UpdateAt(0, "critical-config", "v2");
  if (protocol == ProtocolKind::kOraclePush) {
    (void)cluster.SyncPair(/*actor=*/0, /*peer=*/1);
    (void)cluster.SyncPair(/*actor=*/0, /*peer=*/2);
  } else {
    (void)cluster.SyncPair(/*actor=*/1, /*peer=*/0);
    (void)cluster.SyncPair(/*actor=*/2, /*peer=*/0);
  }
  cluster.Crash(0);
  std::printf("node 0 crashed after reaching 2 of 5 peers\n");

  for (int round = 1; round <= 10; ++round) {
    cluster.SyncRound();
    size_t stale = cluster.CountDivergentFrom(1);
    std::printf("  round %2d: %zu of 5 live replicas still obsolete\n",
                round, stale);
    if (stale == 0) break;
  }

  size_t final_stale = cluster.CountDivergentFrom(1);
  if (final_stale == 0) {
    std::printf("=> healed: survivors forwarded the update.\n\n");
  } else {
    std::printf(
        "=> stuck: %zu replicas stay obsolete until node 0 is repaired\n"
        "   (no forwarding in a push-only scheme).\n\n",
        final_stale);
  }
}

}  // namespace

int main() {
  RunStory(ProtocolKind::kOraclePush);
  RunStory(ProtocolKind::kEpidemicDbvv);
  return 0;
}
