// Pessimistic replica control (§2): a unique token per data item, acquired
// before updating, makes concurrent conflicting updates impossible — the
// epidemic propagation machinery is unchanged, only the write discipline
// differs. Compare with ./conflict_resolution (the optimistic path).
//
//   ./build/examples/pessimistic_tokens

#include <cstdio>

#include "core/replica.h"
#include "net/inproc_transport.h"
#include "tokens/token_service.h"

using epidemic::NodeId;
using epidemic::PropagateOnce;
using epidemic::RecordingConflictListener;
using epidemic::Replica;
using epidemic::tokens::TokenService;
using epidemic::tokens::TokenServiceHandler;

int main() {
  constexpr size_t kNodes = 2;
  RecordingConflictListener conflicts;
  Replica alice(0, kNodes, &conflicts), bob(1, kNodes, &conflicts);

  // Token services served over a transport (here in-process; TCP works the
  // same way via TcpServer + TokenServiceHandler).
  epidemic::net::InProcHub hub(kNodes);
  epidemic::net::InProcTransport transport(&hub);
  TokenService tokens_alice(0, kNodes), tokens_bob(1, kNodes);
  TokenServiceHandler handler_alice(&tokens_alice), handler_bob(&tokens_bob);
  hub.Register(0, &handler_alice);
  hub.Register(1, &handler_bob);

  // Alice acquires the ledger's token and edits.
  (void)tokens_alice.Acquire(transport, "ledger");
  (void)alice.Update("ledger", "balance = 100");
  std::printf("alice holds the token and wrote: '%s'\n",
              alice.Read("ledger")->c_str());

  // Bob tries to write concurrently — the token says no, so the write that
  // WOULD have conflicted never happens.
  epidemic::Status bob_try = tokens_bob.Acquire(transport, "ledger");
  std::printf("bob's acquire: %s\n", bob_try.ToString().c_str());

  // Token hand-off: alice propagates her updates, then releases. (The
  // propagate-before-release is what keeps the next holder's write causally
  // *after* alice's — see docs/PROTOCOL.md.)
  (void)PropagateOnce(alice, bob);
  (void)tokens_alice.Release(transport, "ledger");
  (void)tokens_bob.Acquire(transport, "ledger");
  (void)bob.Update("ledger", "balance = 100 - 30 = 70");
  std::printf("token handed to bob; he wrote: '%s'\n",
              bob.Read("ledger")->c_str());

  (void)PropagateOnce(bob, alice);
  std::printf("\nalice now reads: '%s'\n", alice.Read("ledger")->c_str());
  std::printf("conflicts detected across the whole run: %zu (pessimistic "
              "mode: always 0)\n",
              conflicts.count());
  return 0;
}
