// Priority reads via out-of-bound copying (§5.2): a node needs the latest
// version of ONE hot item right now, without waiting for (or paying for)
// a full scheduled anti-entropy pass — and keeps serving its own writes on
// the auxiliary copy until the regular copy catches up (Fig. 4).
//
//   ./build/examples/priority_reads

#include <cstdio>

#include "core/replica.h"

using epidemic::OobRequest;
using epidemic::OobResponse;
using epidemic::PropagateOnce;
using epidemic::Replica;

namespace {
void OobFetch(Replica& source, Replica& dest, const char* item) {
  OobRequest req = dest.BuildOobRequest(item);
  OobResponse resp = source.HandleOobRequest(req);
  epidemic::Status s = dest.AcceptOobResponse(resp);
  std::printf("  out-of-bound fetch of '%s' from node %u: %s\n", item,
              source.id(), s.ToString().c_str());
}

const char* HasAux(const Replica& r, const char* item) {
  const epidemic::Item* it = r.FindItem(item);
  return (it != nullptr && it->HasAux()) ? "yes" : "no";
}
}  // namespace

int main() {
  Replica editor(0, 2);   // the node where a user is editing
  Replica archive(1, 2);  // a far-away node holding the newest copy

  // The archive holds the latest revision of a shared document, plus a
  // large amount of unrelated data we do NOT want to pull right now.
  (void)archive.Update("doc/contract", "rev-42 (archive)");
  for (int i = 0; i < 1000; ++i) {
    (void)archive.Update("bulk/item" + std::to_string(i), "cold data");
  }

  std::printf("user at the editor node asks for doc/contract NOW:\n");
  OobFetch(archive, editor, "doc/contract");
  std::printf("  editor reads: '%s' (auxiliary copy: %s)\n",
              editor.Read("doc/contract")->c_str(),
              HasAux(editor, "doc/contract"));
  std::printf("  regular DBVV still %s — no regular state was touched\n\n",
              editor.dbvv().ToString().c_str());

  // The user keeps editing; updates go to the auxiliary copy and are
  // remembered in the auxiliary (redo) log.
  (void)editor.Update("doc/contract", "rev-43 (local edit)");
  (void)editor.Update("doc/contract", "rev-44 (local edit)");
  std::printf("after two local edits on the out-of-bound copy:\n");
  std::printf("  user-visible value: '%s'\n",
              editor.Read("doc/contract")->c_str());
  std::printf("  auxiliary log holds %zu redo records\n\n",
              editor.aux_log().size());

  // Eventually the scheduled anti-entropy runs. It copies the regular data
  // (including doc/contract — OOB never reduces propagation work, §5.1),
  // then intra-node propagation replays the two local edits and discards
  // the auxiliary copy.
  auto copied = PropagateOnce(/*source=*/archive, /*recipient=*/editor);
  std::printf("scheduled anti-entropy pass copied %zu items\n",
              copied.ok() ? *copied : 0);
  std::printf("  intra-node replays applied: %llu\n",
              static_cast<unsigned long long>(
                  editor.stats().intra_node_ops_applied));
  std::printf("  auxiliary copy remaining:   %s\n",
              HasAux(editor, "doc/contract"));
  std::printf("  final value:                '%s'\n",
              editor.Read("doc/contract")->c_str());
  std::printf("  invariants: %s\n",
              editor.CheckInvariants().ToString().c_str());

  // The replayed edits are now regular local updates: the archive can pull
  // them back through normal propagation.
  (void)PropagateOnce(/*source=*/editor, /*recipient=*/archive);
  std::printf("\narchive after pulling back: '%s'\n",
              archive.Read("doc/contract")->c_str());
  return 0;
}
