// Multi-process TCP cluster benchmark (EXPERIMENTS.md N1).
//
// Forks N real `epidemicd` processes on loopback and drives them from this
// process over a TcpTransport: every round writes a Zipf-skewed update
// burst to a fixed source node, then makes every other node pull from it
// (TriggerSync → probe + full v3 handshake), then sweeps a few quiescent
// probe rounds — the paper's anti-entropy cadence, where most exchanges
// find nothing new. Two legs A/B the network pipeline end to end:
//
//   pooled    — daemons keep one persistent connection per peer (default);
//               after warmup a round opens zero connections.
//   unpooled  — daemons run --no-conn-pool (connect-per-call, the legacy
//               shape); every probe and every transfer pays a TCP connect
//               plus a server accept/thread spawn.
//
// The pooled leg doubles as the fan-out serve-cache leg: the N-1 pullers
// are byte-identical requesters (same DBVVs, same flags), so per round the
// source encodes the reply once and replays it N-2 times — the
// `serve_cache:` counters from the source's ResetStats are reported as the
// hit rate.
//
// Latency percentiles cover the sync phase only (write bursts are
// untimed): that is the propagation pipeline under test, and it is
// identical in both legs except for connection handling.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp_transport.h"
#include "server/replica_server.h"
#include "sim/workload.h"

#ifndef EPI_BUILD_TYPE
#define EPI_BUILD_TYPE "unknown"
#endif

namespace {

using epidemic::NodeId;
using epidemic::server::ReplicaClient;

struct Config {
  std::string epidemicd;  // path to the daemon binary (required)
  int nodes = 5;
  int rounds = 300;
  int warmup_rounds = 5;
  int writes_per_round = 8;
  int probes_per_round = 4;  // quiescent probe sweeps after the transfer
  int shards = 8;
  bool json = false;
};

struct Percentiles {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Nearest-rank percentiles over microsecond samples (destructive sort).
Percentiles ComputePercentiles(std::vector<double>& samples_us) {
  Percentiles p;
  if (samples_us.empty()) return p;
  std::sort(samples_us.begin(), samples_us.end());
  auto at = [&samples_us](double q) {
    const size_t idx = static_cast<size_t>(
        q * static_cast<double>(samples_us.size() - 1) + 0.5);
    return samples_us[std::min(idx, samples_us.size() - 1)];
  };
  p.p50 = at(0.50);
  p.p95 = at(0.95);
  p.p99 = at(0.99);
  return p;
}

/// Counters parsed from one daemon's ResetStats summary lines
/// ("net: ...", "serve_cache: ...").
struct DaemonNetStats {
  uint64_t calls = 0;
  uint64_t opened = 0;
  uint64_t reused = 0;
  uint64_t reconnects = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

uint64_t ParseCounter(const std::string& line, const std::string& key) {
  const std::string needle = key + "=";
  const size_t pos = line.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtoull(line.c_str() + pos + needle.size(), nullptr, 10);
}

/// Extracts the summary line starting with `prefix` (up to its newline).
std::string SummaryLine(const std::string& text, const std::string& prefix) {
  const size_t pos = text.find("\n" + prefix);
  if (pos == std::string::npos) return "";
  const size_t start = pos + 1;
  const size_t end = text.find('\n', start);
  return text.substr(start, end == std::string::npos ? std::string::npos
                                                     : end - start);
}

DaemonNetStats ParseDaemonStats(const std::string& summary) {
  DaemonNetStats s;
  const std::string net = SummaryLine(summary, "net: ");
  s.calls = ParseCounter(net, "calls");
  s.opened = ParseCounter(net, "opened");
  s.reused = ParseCounter(net, "reused");
  s.reconnects = ParseCounter(net, "reconnects");
  s.bytes_sent = ParseCounter(net, "bytes_sent");
  s.bytes_received = ParseCounter(net, "bytes_received");
  const std::string cache = SummaryLine(summary, "serve_cache: ");
  s.cache_hits = ParseCounter(cache, "hits");
  s.cache_misses = ParseCounter(cache, "misses");
  return s;
}

/// Reserves `n` distinct loopback ports by holding them all bound until
/// every one is picked (sequential bind/close could hand the same port out
/// twice). The usual bind-then-release race with other processes remains —
/// acceptable for a lab driver.
std::vector<uint16_t> PickFreePorts(size_t n) {
  std::vector<int> fds;
  std::vector<uint16_t> ports;
  for (size_t i = 0; i < n; ++i) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    socklen_t len = sizeof(addr);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      ::close(fd);
      break;
    }
    fds.push_back(fd);
    ports.push_back(ntohs(addr.sin_port));
  }
  for (int fd : fds) ::close(fd);
  return ports;
}

/// One forked epidemicd cluster plus the driver-side client plumbing.
class Cluster {
 public:
  Cluster(const Config& cfg, bool pool_connections) : cfg_(cfg) {
    ports_ = PickFreePorts(static_cast<size_t>(cfg.nodes));
    if (ports_.size() != static_cast<size_t>(cfg.nodes)) {
      std::fprintf(stderr, "cannot reserve %d loopback ports\n", cfg.nodes);
      std::exit(1);
    }
    for (int i = 0; i < cfg.nodes; ++i) {
      std::vector<std::string> args;
      args.push_back(cfg.epidemicd);
      args.push_back("--id=" + std::to_string(i));
      args.push_back("--nodes=" + std::to_string(cfg.nodes));
      args.push_back("--port=" + std::to_string(ports_[i]));
      args.push_back("--shards=" + std::to_string(cfg.shards));
      args.push_back("--ae-interval-ms=0");  // driver-paced rounds only
      for (int j = 0; j < cfg.nodes; ++j) {
        if (j == i) continue;
        args.push_back("--peer=" + std::to_string(j) + ":" +
                       std::to_string(ports_[j]));
      }
      if (!pool_connections) args.push_back("--no-conn-pool");
      pids_.push_back(Spawn(args));
    }
    // The driver's own admin transport: short backoff so readiness polling
    // is not parked by the sticky window.
    epidemic::net::TcpTransport::Options topts;
    topts.backoff_initial_micros = 2 * 1000;
    topts.backoff_max_micros = 20 * 1000;
    transport_ = std::make_unique<epidemic::net::TcpTransport>(
        static_cast<size_t>(cfg.nodes), topts);
    for (int i = 0; i < cfg.nodes; ++i) {
      transport_->SetPeerPort(static_cast<NodeId>(i), ports_[i]);
      clients_.emplace_back(transport_.get(), static_cast<NodeId>(i));
    }
    WaitUntilReady();
  }

  ~Cluster() {
    for (pid_t pid : pids_) ::kill(pid, SIGTERM);
    for (pid_t pid : pids_) ::waitpid(pid, nullptr, 0);
  }

  ReplicaClient& client(int i) { return clients_[static_cast<size_t>(i)]; }
  int nodes() const { return cfg_.nodes; }

 private:
  static pid_t Spawn(const std::vector<std::string>& args) {
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      std::exit(1);
    }
    if (pid == 0) {
      // Child: route the daemon's banner to /dev/null, keep stderr.
      std::FILE* devnull = std::freopen("/dev/null", "w", stdout);
      (void)devnull;
      ::execv(argv[0], argv.data());
      std::perror("execv epidemicd");
      ::_exit(127);
    }
    return pid;
  }

  void WaitUntilReady() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(15);
    for (int i = 0; i < cfg_.nodes; ++i) {
      for (;;) {
        if (client(i).Stats().ok()) break;
        if (std::chrono::steady_clock::now() > deadline) {
          std::fprintf(stderr, "node %d never became ready\n", i);
          std::exit(1);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  }

  Config cfg_;
  std::vector<uint16_t> ports_;
  std::vector<pid_t> pids_;
  std::unique_ptr<epidemic::net::TcpTransport> transport_;
  std::vector<ReplicaClient> clients_;
};

struct LegResult {
  double rounds_per_sec = 0;
  Percentiles sync_us;
  double bytes_per_round = 0;
  DaemonNetStats net;  // summed across daemons (cache from the source)
};

/// One measured leg: fresh cluster, warmup, R rounds of
/// write-burst → full sync sweep → quiescent probe sweeps.
LegResult RunLeg(const Config& cfg, bool pool_connections) {
  Cluster cluster(cfg, pool_connections);
  epidemic::sim::WorkloadConfig wcfg;
  wcfg.num_items = 2000;
  wcfg.zipf_s = 0.99;
  wcfg.value_len = 64;
  epidemic::sim::Workload workload(wcfg);

  const auto one_round = [&](bool burst) {
    if (burst) {
      for (int w = 0; w < cfg.writes_per_round; ++w) {
        const auto op = workload.NextUpdateAt(0);  // source-placed Zipf write
        if (!cluster.client(0).Update(op.item, op.value).ok()) {
          std::fprintf(stderr, "update failed\n");
          std::exit(1);
        }
      }
    }
    for (int sweep = 0; sweep < 1 + cfg.probes_per_round; ++sweep) {
      for (int i = 1; i < cfg.nodes; ++i) {
        // Sweep 0 transfers the burst (probe miss → full handshake); later
        // sweeps are the quiescent cadence (one O(1) probe each).
        if (!cluster.client(i).TriggerSync(0).ok()) {
          std::fprintf(stderr, "sync failed\n");
          std::exit(1);
        }
      }
    }
  };

  for (int r = 0; r < cfg.warmup_rounds; ++r) one_round(true);
  // Zero every daemon's counters after warmup: the measured window then
  // shows steady-state behavior (pooled connections already established —
  // the churn criterion is opened == 0 across the whole window).
  for (int i = 0; i < cfg.nodes; ++i) {
    if (!cluster.client(i).ResetStats().ok()) {
      std::fprintf(stderr, "reset failed\n");
      std::exit(1);
    }
  }

  std::vector<double> sync_us;
  sync_us.reserve(static_cast<size_t>(cfg.rounds));
  const auto bench_start = std::chrono::steady_clock::now();
  for (int r = 0; r < cfg.rounds; ++r) {
    for (int w = 0; w < cfg.writes_per_round; ++w) {
      const auto op = workload.NextUpdateAt(0);
      if (!cluster.client(0).Update(op.item, op.value).ok()) std::exit(1);
    }
    const auto t0 = std::chrono::steady_clock::now();
    one_round(/*burst=*/false);  // sync + probe sweeps only, timed
    const auto t1 = std::chrono::steady_clock::now();
    sync_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  const double total_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();

  LegResult result;
  result.rounds_per_sec = cfg.rounds / total_s;
  result.sync_us = ComputePercentiles(sync_us);
  for (int i = 0; i < cluster.nodes(); ++i) {
    auto summary = cluster.client(i).ResetStats();
    if (!summary.ok()) std::exit(1);
    const DaemonNetStats s = ParseDaemonStats(*summary);
    result.net.calls += s.calls;
    result.net.opened += s.opened;
    result.net.reused += s.reused;
    result.net.reconnects += s.reconnects;
    result.net.bytes_sent += s.bytes_sent;
    result.net.bytes_received += s.bytes_received;
    result.net.cache_hits += s.cache_hits;
    result.net.cache_misses += s.cache_misses;
  }
  result.bytes_per_round =
      static_cast<double>(result.net.bytes_sent + result.net.bytes_received) /
      cfg.rounds;
  return result;
}

void PrintLegJson(const char* name, const LegResult& r, bool last) {
  std::printf(
      "  \"%s\": {\n"
      "    \"rounds_per_sec\": %.1f,\n"
      "    \"sync_p50_us\": %.1f,\n"
      "    \"sync_p95_us\": %.1f,\n"
      "    \"sync_p99_us\": %.1f,\n"
      "    \"bytes_per_round\": %.1f,\n"
      "    \"net_calls\": %llu,\n"
      "    \"net_connections_opened\": %llu,\n"
      "    \"net_connections_reused\": %llu,\n"
      "    \"net_reconnects\": %llu,\n"
      "    \"serve_cache_hits\": %llu,\n"
      "    \"serve_cache_misses\": %llu\n"
      "  }%s\n",
      name, r.rounds_per_sec, r.sync_us.p50, r.sync_us.p95, r.sync_us.p99,
      r.bytes_per_round, static_cast<unsigned long long>(r.net.calls),
      static_cast<unsigned long long>(r.net.opened),
      static_cast<unsigned long long>(r.net.reused),
      static_cast<unsigned long long>(r.net.reconnects),
      static_cast<unsigned long long>(r.net.cache_hits),
      static_cast<unsigned long long>(r.net.cache_misses), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--epidemicd=", 12) == 0) {
      cfg.epidemicd = arg + 12;
    } else if (std::strncmp(arg, "--nodes=", 8) == 0) {
      cfg.nodes = std::atoi(arg + 8);
    } else if (std::strncmp(arg, "--rounds=", 9) == 0) {
      cfg.rounds = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--writes-per-round=", 19) == 0) {
      cfg.writes_per_round = std::atoi(arg + 19);
    } else if (std::strncmp(arg, "--probes-per-round=", 19) == 0) {
      cfg.probes_per_round = std::atoi(arg + 19);
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      cfg.shards = std::atoi(arg + 9);
    } else if (std::strcmp(arg, "--json") == 0) {
      cfg.json = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return 2;
    }
  }
  if (cfg.epidemicd.empty() || cfg.nodes < 2 || cfg.rounds < 1) {
    std::fprintf(stderr,
                 "usage: bench_tcp_cluster --epidemicd=<path> [--nodes=N] "
                 "[--rounds=R] [--writes-per-round=W] [--probes-per-round=Q] "
                 "[--shards=S] [--json]\n");
    return 2;
  }
  // Reap any child that dies unexpectedly instead of hanging in waitpid
  // order; the Cluster destructor still collects them.
  std::signal(SIGPIPE, SIG_IGN);

  const LegResult pooled = RunLeg(cfg, /*pool_connections=*/true);
  const LegResult unpooled = RunLeg(cfg, /*pool_connections=*/false);
  const double speedup =
      unpooled.rounds_per_sec > 0
          ? pooled.rounds_per_sec / unpooled.rounds_per_sec
          : 0;
  const uint64_t fanout_total =
      pooled.net.cache_hits + pooled.net.cache_misses;
  const double hit_rate =
      fanout_total > 0
          ? static_cast<double>(pooled.net.cache_hits) / fanout_total
          : 0;

  if (cfg.json) {
    std::printf("{\n  \"build_type\": \"%s\",\n", EPI_BUILD_TYPE);
    std::printf("  \"hardware_concurrency\": %u,\n",
                std::thread::hardware_concurrency());
    std::printf("  \"nodes\": %d,\n  \"rounds\": %d,\n", cfg.nodes,
                cfg.rounds);
    std::printf("  \"writes_per_round\": %d,\n  \"probes_per_round\": %d,\n",
                cfg.writes_per_round, cfg.probes_per_round);
    std::printf("  \"shards\": %d,\n", cfg.shards);
    PrintLegJson("pooled", pooled, /*last=*/false);
    PrintLegJson("unpooled", unpooled, /*last=*/false);
    std::printf("  \"pooled_speedup\": %.2f,\n", speedup);
    std::printf("  \"serve_cache_hit_rate\": %.3f\n}\n", hit_rate);
  } else {
    std::printf(
        "tcp cluster: %d nodes, %d rounds, %d writes/round, %d probe "
        "sweeps (build=%s)\n",
        cfg.nodes, cfg.rounds, cfg.writes_per_round, cfg.probes_per_round,
        EPI_BUILD_TYPE);
    std::printf(
        "%-9s %12s %10s %10s %10s %12s %8s %8s\n", "leg", "rounds/s",
        "p50(us)", "p95(us)", "p99(us)", "bytes/round", "opened", "reused");
    for (const auto& [name, leg] :
         {std::pair<const char*, const LegResult&>{"pooled", pooled},
          {"unpooled", unpooled}}) {
      std::printf("%-9s %12.1f %10.1f %10.1f %10.1f %12.1f %8llu %8llu\n",
                  name, leg.rounds_per_sec, leg.sync_us.p50, leg.sync_us.p95,
                  leg.sync_us.p99, leg.bytes_per_round,
                  static_cast<unsigned long long>(leg.net.opened),
                  static_cast<unsigned long long>(leg.net.reused));
    }
    std::printf("pooled speedup: %.2fx; serve cache hit rate %.3f (%llu/%llu)\n",
                speedup, hit_rate,
                static_cast<unsigned long long>(pooled.net.cache_hits),
                static_cast<unsigned long long>(fanout_total));
  }
  return 0;
}
