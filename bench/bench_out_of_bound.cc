// Experiment E5 (DESIGN.md): out-of-bound machinery costs (§6).
//   * An OOB copy is O(1) beyond moving the data item itself.
//   * Intra-node propagation is linear in the number of updates the
//     auxiliary copy accumulated — the price paid for out-of-bound data,
//     which the workload assumption (§2) keeps small.

#include <benchmark/benchmark.h>

#include <string>

#include "core/replica.h"

namespace {

using epidemic::OobRequest;
using epidemic::OobResponse;
using epidemic::PropagateOnce;
using epidemic::Replica;

void OobFetch(Replica& source, Replica& dest, const std::string& item) {
  OobRequest req = dest.BuildOobRequest(item);
  OobResponse resp = source.HandleOobRequest(req);
  (void)dest.AcceptOobResponse(resp);
}

// OOB fetch cost with a database of range(0) items behind it: flat in N.
void BM_OobFetch(benchmark::State& state) {
  const int64_t num_items = state.range(0);
  Replica source(0, 2), dest(1, 2);
  for (int64_t i = 0; i < num_items; ++i) {
    (void)source.Update("k" + std::to_string(i), "v");
  }
  int tick = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // Freshen the hot item at the source so every fetch adopts.
    (void)source.Update("k0", "v" + std::to_string(++tick));
    state.ResumeTiming();
    OobFetch(source, dest, "k0");
  }
  state.counters["N_items"] = static_cast<double>(num_items);
}

// Intra-node replay cost as a function of accumulated auxiliary updates:
// linear in range(0), by design.
void BM_IntraNodeReplay(benchmark::State& state) {
  const int64_t aux_updates = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    Replica source(0, 2), dest(1, 2);
    (void)source.Update("hot", "base");
    OobFetch(source, dest, "hot");
    for (int64_t i = 0; i < aux_updates; ++i) {
      (void)dest.Update("hot", "local" + std::to_string(i));
    }
    state.ResumeTiming();
    // The propagation triggers the Fig. 4 replay of all pending records.
    benchmark::DoNotOptimize(PropagateOnce(source, dest));
    state.PauseTiming();
    benchmark::DoNotOptimize(dest.stats().intra_node_ops_applied);
    state.ResumeTiming();
  }
  state.counters["aux_updates"] = static_cast<double>(aux_updates);
}

// User update latency on an out-of-bound (auxiliary) item vs a regular
// item: both must be O(1); the aux path additionally stores a redo record.
void BM_UpdateRegularItem(benchmark::State& state) {
  Replica r(0, 2);
  (void)r.Update("item", "v");
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.Update("item", "w"));
  }
}

void BM_UpdateAuxItem(benchmark::State& state) {
  Replica source(0, 2), dest(1, 2);
  (void)source.Update("item", "v");
  OobFetch(source, dest, "item");
  for (auto _ : state) {
    benchmark::DoNotOptimize(dest.Update("item", "w"));
  }
  state.counters["aux_log_records"] =
      static_cast<double>(dest.aux_log().size());
}

}  // namespace

BENCHMARK(BM_OobFetch)->RangeMultiplier(16)->Range(1 << 8, 1 << 16)
    ->Unit(benchmark::kNanosecond);
BENCHMARK(BM_IntraNodeReplay)
    ->RangeMultiplier(4)
    ->Range(1, 1 << 10)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_UpdateRegularItem);
// Fixed iteration count: every aux update appends a redo record, so an
// adaptive run would grow the auxiliary log without bound.
BENCHMARK(BM_UpdateAuxItem)->Iterations(1 << 16);

BENCHMARK_MAIN();
