// Experiment E1 (DESIGN.md): cost of an anti-entropy exchange between
// (nearly) identical database replicas, as the database size N grows.
//
// Scenario (the §8.1 weakness): nodes a and b both track a third node c.
// One fresh update flows c -> b -> a each iteration, so a and b differ by
// exactly ONE item — yet Lotus rescans b's whole database (b was "modified
// since the last propagation to a", albeit indirectly) and per-item-VV
// anti-entropy always compares every item. The paper's protocol does one
// DBVV comparison plus O(1) work for the single dirty item.
//
// Paper claim (§6, §8.1): epidemic-dbvv flat in N; baselines linear in N.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "sim/cluster.h"

namespace {

using epidemic::ProtocolNode;
using epidemic::sim::MakeNode;
using epidemic::sim::ProtocolKind;

struct Triple {
  std::unique_ptr<ProtocolNode> a, b, c;
  int tick = 0;
};

Triple Setup(ProtocolKind kind, int64_t num_items) {
  Triple t;
  t.a = MakeNode(kind, 0, 3);
  t.b = MakeNode(kind, 1, 3);
  t.c = MakeNode(kind, 2, 3);
  for (int64_t i = 0; i < num_items; ++i) {
    std::string key = "k" + std::to_string(i);
    (void)t.c->ClientUpdate(key, "v0");
  }
  (void)t.b->SyncWith(*t.c);
  (void)t.a->SyncWith(*t.b);
  return t;
}

void RunExchange(benchmark::State& state, ProtocolKind kind) {
  const int64_t num_items = state.range(0);
  Triple t = Setup(kind, num_items);
  t.a->ResetSyncStats();

  for (auto _ : state) {
    state.PauseTiming();
    // One fresh update reaches b indirectly (through c).
    (void)t.c->ClientUpdate("k0", "v" + std::to_string(++t.tick));
    (void)t.b->SyncWith(*t.c);
    state.ResumeTiming();

    // The measured exchange: a pulls from b; replicas differ by one item.
    benchmark::DoNotOptimize(t.a->SyncWith(*t.b));
  }

  state.counters["items_in_db"] = static_cast<double>(num_items);
  state.counters["items_examined_per_exchange"] =
      benchmark::Counter(static_cast<double>(t.a->sync_stats().items_examined),
                         benchmark::Counter::kAvgIterations);
  state.counters["ctrl_bytes_per_exchange"] =
      benchmark::Counter(static_cast<double>(t.a->sync_stats().control_bytes),
                         benchmark::Counter::kAvgIterations);
}

void BM_Epidemic(benchmark::State& state) {
  RunExchange(state, ProtocolKind::kEpidemicDbvv);
}
void BM_Lotus(benchmark::State& state) {
  RunExchange(state, ProtocolKind::kLotus);
}
void BM_PerItemVv(benchmark::State& state) {
  RunExchange(state, ProtocolKind::kPerItemVv);
}

}  // namespace

BENCHMARK(BM_Epidemic)->RangeMultiplier(8)->Range(1 << 10, 1 << 18)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_Lotus)->RangeMultiplier(8)->Range(1 << 10, 1 << 18)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PerItemVv)->RangeMultiplier(8)->Range(1 << 10, 1 << 18)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
