// Experiment E11 (extension): the paper's DBVV+log protocol vs the design
// its problem statement evolved into — Merkle-tree anti-entropy as used by
// Dynamo-lineage stores — and vs Wuu & Bernstein's replicated-log gossip
// (§8.3 ref [15]).
//
// Both DBVV and a Merkle root answer "are these replicas identical?" in
// O(1). They differ once replicas diverge:
//   * the paper's log vector enumerates exactly the m dirty items (O(m));
//   * Merkle descent costs O(m·depth) digest round-trips and re-ships the
//     complete contents of every bucket containing a dirty item;
//   * Wuu-Bernstein ships one record per *update* (not per item) plus an
//     n×n time table per message.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "sim/cluster.h"

namespace {

using epidemic::ProtocolNode;
using epidemic::sim::MakeNode;
using epidemic::sim::ProtocolKind;

struct Pair {
  std::unique_ptr<ProtocolNode> src;
  std::unique_ptr<ProtocolNode> dst;
  int tick = 0;
};

Pair Setup(ProtocolKind kind, int64_t num_items) {
  Pair p;
  p.src = MakeNode(kind, 0, 2);
  p.dst = MakeNode(kind, 1, 2);
  for (int64_t i = 0; i < num_items; ++i) {
    (void)p.src->ClientUpdate("k" + std::to_string(i), std::string(32, 'v'));
  }
  (void)p.dst->SyncWith(*p.src);
  return p;
}

// One exchange with exactly `dirty` fresh items, on an N-item database.
void RunDirtySweep(benchmark::State& state, ProtocolKind kind) {
  const int64_t num_items = 1 << 15;
  const int64_t dirty = state.range(0);
  Pair p = Setup(kind, num_items);
  p.dst->ResetSyncStats();

  for (auto _ : state) {
    state.PauseTiming();
    ++p.tick;
    for (int64_t i = 0; i < dirty; ++i) {
      // Spread dirty items across the key space (and hence buckets).
      (void)p.src->ClientUpdate(
          "k" + std::to_string((i * 977) % num_items),
          "u" + std::to_string(p.tick));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(p.dst->SyncWith(*p.src));
  }

  state.counters["m_dirty"] = static_cast<double>(dirty);
  state.counters["digests_or_vv_compares"] = benchmark::Counter(
      static_cast<double>(p.dst->sync_stats().version_comparisons),
      benchmark::Counter::kAvgIterations);
  state.counters["items_examined"] = benchmark::Counter(
      static_cast<double>(p.dst->sync_stats().items_examined),
      benchmark::Counter::kAvgIterations);
  state.counters["ctrl_bytes"] = benchmark::Counter(
      static_cast<double>(p.dst->sync_stats().control_bytes),
      benchmark::Counter::kAvgIterations);
}

void BM_EpidemicDirty(benchmark::State& state) {
  RunDirtySweep(state, ProtocolKind::kEpidemicDbvv);
}
void BM_MerkleDirty(benchmark::State& state) {
  RunDirtySweep(state, ProtocolKind::kMerkle);
}
void BM_WuuBernsteinDirty(benchmark::State& state) {
  RunDirtySweep(state, ProtocolKind::kWuuBernstein);
}

// Identical replicas: both DBVV and Merkle root are O(1); Wuu-Bernstein
// still ships its n×n table and scans retained records.
void RunIdentical(benchmark::State& state, ProtocolKind kind) {
  Pair p = Setup(kind, state.range(0));
  // One more sync so both sides' metadata (time tables, roots) quiesce.
  (void)p.dst->SyncWith(*p.src);
  p.dst->ResetSyncStats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.dst->SyncWith(*p.src));
  }
  state.counters["N_items"] = static_cast<double>(state.range(0));
}

void BM_EpidemicIdentical(benchmark::State& state) {
  RunIdentical(state, ProtocolKind::kEpidemicDbvv);
}
void BM_MerkleIdentical(benchmark::State& state) {
  RunIdentical(state, ProtocolKind::kMerkle);
}

}  // namespace

BENCHMARK(BM_EpidemicDirty)->RangeMultiplier(8)->Range(1, 1 << 9)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MerkleDirty)->RangeMultiplier(8)->Range(1, 1 << 9)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_WuuBernsteinDirty)->RangeMultiplier(8)->Range(1, 1 << 9)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EpidemicIdentical)->RangeMultiplier(16)->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MerkleIdentical)->RangeMultiplier(16)->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
