// Experiment E8 (DESIGN.md): conflict safety (§2.1 criteria vs §8.1).
//
// Workload: pairs of nodes concurrently update the same items, then the
// cluster gossips to quiescence. A correct protocol must *detect* each
// inconsistency and must never let one concurrent write silently overwrite
// the other. Lotus resolves by sequence number — the copy with more updates
// wins and the other write is silently lost.
//
// Reported: conflicts detected, and writes silently lost (a value that one
// client successfully wrote, overwritten by a concurrent value without any
// conflict report).

#include <cstdio>
#include <set>
#include <string>

#include "sim/cluster.h"

namespace {

using epidemic::sim::Cluster;
using epidemic::sim::ClusterConfig;
using epidemic::sim::Peering;
using epidemic::sim::ProtocolKind;

void RunRow(ProtocolKind protocol, int concurrent_pairs) {
  ClusterConfig config;
  config.protocol = protocol;
  config.num_nodes = 4;
  config.peering = Peering::kRing;
  config.seed = 5;
  Cluster cluster(config);

  // Each contested item k gets one write at node 0 and TWO writes at node
  // 1 (so the node-1 copy always has the larger Lotus sequence number, and
  // genuinely concurrent version vectors).
  std::set<std::string> wrote_a, wrote_b;
  for (int k = 0; k < concurrent_pairs; ++k) {
    std::string item = "contested" + std::to_string(k);
    (void)cluster.UpdateAt(0, item, "A" + std::to_string(k));
    (void)cluster.UpdateAt(1, item, "Bfirst" + std::to_string(k));
    (void)cluster.UpdateAt(1, item, "B" + std::to_string(k));
    wrote_a.insert("A" + std::to_string(k));
    wrote_b.insert("B" + std::to_string(k));
  }
  for (int round = 0; round < 12; ++round) cluster.SyncRound();

  // A write is "silently lost" if no replica carries it anymore.
  size_t lost = 0;
  for (const std::set<std::string>* writes : {&wrote_a, &wrote_b}) {
    for (const std::string& value : *writes) {
      bool survives = false;
      for (epidemic::NodeId i = 0; i < 4 && !survives; ++i) {
        for (const auto& [item, v] : cluster.node(i).Snapshot()) {
          if (v == value) {
            survives = true;
            break;
          }
        }
      }
      if (!survives) ++lost;
    }
  }
  uint64_t detected = cluster.TotalConflicts();
  size_t divergent = cluster.CountDivergentFrom(0);
  // §2.1 is satisfied when every surviving inconsistency was *detected*:
  // either nothing was lost and everyone agrees, or conflicts were
  // reported for the application to resolve. Silent loss (Lotus, Merkle
  // LWW) and silent permanent divergence (log-gossip with overwrite ops)
  // both violate it.
  bool ok = detected > 0 || (lost == 0 && divergent == 0);
  std::printf("%-14s %10d %12llu %14zu %10zu %10s\n",
              std::string(ProtocolKindName(protocol)).c_str(),
              concurrent_pairs, static_cast<unsigned long long>(detected),
              lost, divergent, ok ? "ok" : "VIOLATED");
}

}  // namespace

int main() {
  std::printf(
      "E8: conflict detection vs silent overwrite "
      "(4 nodes, concurrent writers on shared items)\n\n");
  std::printf("%-14s %10s %12s %14s %10s %10s\n", "protocol", "pairs",
              "detected", "writes_lost", "divergent", "criteria");
  for (int pairs : {1, 8, 32}) {
    RunRow(ProtocolKind::kEpidemicDbvv, pairs);
    RunRow(ProtocolKind::kPerItemVv, pairs);
    RunRow(ProtocolKind::kLotus, pairs);
    RunRow(ProtocolKind::kMerkle, pairs);
    RunRow(ProtocolKind::kWuuBernstein, pairs);
    std::printf("\n");
  }
  std::printf(
      "shape check (paper §8.1): lotus-seqno loses one of each concurrent\n"
      "write pair with zero conflicts reported, and merkle-lww does the\n"
      "same by timestamp; wuu-bernstein log gossip leaves replicas\n"
      "permanently divergent with nothing reported (overwrite ops are not\n"
      "commutative). None satisfy §2.1. epidemic-dbvv and per-item-vv\n"
      "detect every inconsistency and preserve both copies for\n"
      "resolution.\n");
  return 0;
}
