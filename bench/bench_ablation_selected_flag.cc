// Ablation A2: computing the item set S with the paper's IsSelected flag
// (§6) vs a general-purpose hash set.
//
// SendPropagation must union the items referenced by all tails D_k. The
// paper stores a flag in each item's control state (reachable for free from
// the log record), making the union O(1) per record with zero allocation.
// The obvious alternative — an unordered_set of item ids built per request —
// allocates and hashes. This benchmark measures the dedup step in isolation
// on identical tail shapes.

#include <benchmark/benchmark.h>

#include <string>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "core/replica.h"

namespace {

using epidemic::NodeId;
using epidemic::PropagationRequest;
using epidemic::PropagationResponse;
using epidemic::Replica;
using epidemic::Rng;

// Builds a source replica whose next propagation response will reference
// `dirty` items from `origins` different origins (so the same item appears
// in several tails and the dedup step actually has duplicates to remove).
struct Fixture {
  std::unique_ptr<Replica> src;
  PropagationRequest req;

  Fixture(int64_t dirty, size_t origins) {
    const size_t n = origins + 1;
    std::vector<std::unique_ptr<Replica>> writers;
    for (NodeId i = 0; i < origins; ++i) {
      writers.push_back(std::make_unique<Replica>(i, n));
    }
    src = std::make_unique<Replica>(static_cast<NodeId>(origins), n);

    // Each origin in turn syncs with the hub, rewrites every dirty item,
    // and hands the batch back — sequenced through propagation so the
    // writes never conflict. Afterwards the hub's log references every
    // item once per origin, so a cold requester's tails carry `origins`
    // duplicates of each item for the dedup step to collapse.
    for (NodeId i = 0; i < origins; ++i) {
      (void)epidemic::PropagateOnce(*src, *writers[i]);
      for (int64_t k = 0; k < dirty; ++k) {
        (void)writers[i]->Update("k" + std::to_string(k), "v");
      }
      (void)epidemic::PropagateOnce(*writers[i], *src);
    }
    req = PropagationRequest{0, epidemic::VersionVector(n)};
  }
};

// The real SendPropagation (IsSelected flags).
void BM_SelectedFlag(benchmark::State& state) {
  Fixture fx(state.range(0), /*origins=*/4);
  for (auto _ : state) {
    PropagationResponse resp = fx.src->HandlePropagationRequest(fx.req);
    benchmark::DoNotOptimize(resp.items.size());
  }
  state.counters["dirty_items"] = static_cast<double>(state.range(0));
}

// The ablation: identical tail walk, but S computed with a hash set.
void BM_HashSetDedup(benchmark::State& state) {
  Fixture fx(state.range(0), /*origins=*/4);
  for (auto _ : state) {
    // Collect the tails exactly as SendPropagation would...
    PropagationResponse resp = fx.src->HandlePropagationRequest(fx.req);
    // ...then redo the union with a hash set over item names, the way a
    // protocol without per-item control-state flags must.
    std::unordered_set<std::string> selected;
    size_t items = 0;
    for (const auto& tail : resp.tails) {
      for (const auto& rec : tail) {
        if (selected.insert(rec.item_name).second) ++items;
      }
    }
    benchmark::DoNotOptimize(items);
  }
  state.counters["dirty_items"] = static_cast<double>(state.range(0));
}

}  // namespace

BENCHMARK(BM_SelectedFlag)
    ->RangeMultiplier(8)
    ->Range(64, 1 << 14)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_HashSetDedup)
    ->RangeMultiplier(8)
    ->Range(64, 1 << 14)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
