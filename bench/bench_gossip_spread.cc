// Experiment E10: epidemic spreading dynamics under random peering — the
// classic anti-entropy curve (Demers et al. [4], which the paper builds
// on). One node commits an update; each round every node pulls from a
// random peer. The infected fraction should follow the logistic S-curve,
// reaching everyone in O(log n) expected rounds — this is the premise that
// makes DBVV-based anti-entropy *timely* as well as cheap.

#include <cstdio>
#include <string>
#include <vector>

#include "sim/cluster.h"

namespace {

using epidemic::sim::Cluster;
using epidemic::sim::ClusterConfig;
using epidemic::sim::Peering;
using epidemic::sim::ProtocolKind;

// Fraction of nodes (x1000) holding the update after each round, averaged
// over `trials` seeds.
std::vector<double> SpreadCurve(size_t num_nodes, int max_rounds,
                                int trials) {
  std::vector<double> infected(max_rounds + 1, 0.0);
  for (int t = 0; t < trials; ++t) {
    ClusterConfig config;
    config.protocol = ProtocolKind::kEpidemicDbvv;
    config.num_nodes = num_nodes;
    config.peering = Peering::kRandom;
    config.seed = 1000 + static_cast<uint64_t>(t);
    Cluster cluster(config);
    (void)cluster.UpdateAt(0, "rumor", "v");

    for (int round = 0; round <= max_rounds; ++round) {
      size_t have = 0;
      for (epidemic::NodeId i = 0; i < num_nodes; ++i) {
        if (cluster.node(i).ClientRead("rumor").ok()) ++have;
      }
      infected[round] += static_cast<double>(have) /
                         static_cast<double>(num_nodes);
      if (round < max_rounds) cluster.SyncRound();
    }
  }
  for (double& f : infected) f /= trials;
  return infected;
}

}  // namespace

int main() {
  constexpr int kRounds = 12;
  constexpr int kTrials = 20;
  std::printf(
      "E10: fraction of replicas holding a single update vs gossip round\n"
      "(random pull peering, averaged over %d seeds)\n\n", kTrials);
  std::printf("%6s", "nodes");
  for (int r = 0; r <= kRounds; ++r) std::printf(" r%-4d", r);
  std::printf("\n");

  for (size_t n : {8, 16, 32, 64, 128}) {
    std::vector<double> curve = SpreadCurve(n, kRounds, kTrials);
    std::printf("%6zu", n);
    for (double f : curve) std::printf(" %.3f", f);
    std::printf("\n");
  }
  std::printf(
      "\nshape check: logistic growth; rounds to full coverage grow\n"
      "~logarithmically in n. Each of those exchanges costs one DBVV\n"
      "comparison when the puller is already current — which is most of\n"
      "them late in the epidemic.\n");
  return 0;
}
