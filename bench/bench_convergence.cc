// Experiment E6 (DESIGN.md): convergence behaviour under transitive
// scheduling (Theorem 5) and the total anti-entropy work it costs, across
// cluster sizes and peering policies, for the paper's protocol and the §8
// baselines.
//
// Workload: single-writer keys (conflict-free), 25 updates per node over a
// 4096-item database. Reported per row: rounds to convergence, per-item
// version state examined (the §6 overhead measure), records shipped, and
// estimated wire bytes.

#include <cstdio>
#include <string>

#include "sim/cluster.h"

namespace {

using epidemic::sim::Cluster;
using epidemic::sim::ClusterConfig;
using epidemic::sim::Peering;
using epidemic::sim::ProtocolKind;

void RunRow(ProtocolKind protocol, size_t num_nodes, Peering peering) {
  ClusterConfig config;
  config.protocol = protocol;
  config.num_nodes = num_nodes;
  config.peering = peering;
  config.seed = 99;
  Cluster cluster(config);

  // Conflict-free updates: node i owns keys "n<i>-k*".
  for (epidemic::NodeId i = 0; i < num_nodes; ++i) {
    for (int k = 0; k < 25; ++k) {
      (void)cluster.UpdateAt(i,
                             "n" + std::to_string(i) + "-k" +
                                 std::to_string(k),
                             std::string(64, 'x'));
    }
  }

  auto rounds = cluster.RunUntilConverged(16 * num_nodes);
  epidemic::SyncStats stats = cluster.TotalSyncStats();
  std::printf("%-14s %6zu %-7s %8s %12llu %10llu %12llu %12llu\n",
              std::string(ProtocolKindName(protocol)).c_str(), num_nodes,
              peering == Peering::kRing ? "ring" : "random",
              rounds.ok() ? std::to_string(*rounds).c_str() : "n/a",
              static_cast<unsigned long long>(stats.items_examined),
              static_cast<unsigned long long>(stats.items_copied),
              static_cast<unsigned long long>(stats.records_shipped),
              static_cast<unsigned long long>(stats.control_bytes +
                                              stats.data_bytes));
}

}  // namespace

int main() {
  std::printf(
      "E6: rounds-to-convergence and total anti-entropy work "
      "(conflict-free workload, 25 updates/node)\n\n");
  std::printf("%-14s %6s %-7s %8s %12s %10s %12s %12s\n", "protocol",
              "nodes", "peering", "rounds", "items_exam", "copied",
              "records", "est_bytes");

  for (Peering peering : {Peering::kRing, Peering::kRandom}) {
    for (size_t n : {2, 4, 8, 16, 32}) {
      RunRow(ProtocolKind::kEpidemicDbvv, n, peering);
    }
    std::printf("\n");
  }
  for (size_t n : {2, 4, 8, 16}) RunRow(ProtocolKind::kLotus, n, Peering::kRing);
  std::printf("\n");
  for (size_t n : {2, 4, 8, 16}) {
    RunRow(ProtocolKind::kPerItemVv, n, Peering::kRing);
  }
  std::printf("\n");
  for (size_t n : {2, 4, 8, 16}) {
    RunRow(ProtocolKind::kWuuBernstein, n, Peering::kRing);
  }
  std::printf("\n");
  for (size_t n : {2, 4, 8, 16}) {
    RunRow(ProtocolKind::kMerkle, n, Peering::kRing);
  }
  std::printf(
      "\nshape check: all pull protocols converge in O(n) ring rounds (or\n"
      "O(log n)-ish random rounds); epidemic-dbvv examines orders of\n"
      "magnitude fewer per-item version entries than per-item-vv, which\n"
      "rescans every item every exchange.\n");
  return 0;
}
