// Experiment E7 (DESIGN.md): vulnerability to originator failure (§8.2).
//
// The originator delivers its update to a fraction of the peers, then
// crashes. Under Oracle-style push (no forwarding) the remaining replicas
// stay obsolete indefinitely; under the paper's protocol the survivors
// detect divergence via DBVV comparison and heal. We report how many live
// replicas are still obsolete after each gossip round.

#include <cstdio>
#include <string>
#include <vector>

#include "sim/cluster.h"

namespace {

using epidemic::sim::Cluster;
using epidemic::sim::ClusterConfig;
using epidemic::sim::Peering;
using epidemic::sim::ProtocolKind;

// Returns the number of live-but-obsolete replicas after each round,
// indexed 0..max_rounds (entry 0 = right after the crash).
std::vector<size_t> RunScenario(ProtocolKind protocol, size_t num_nodes,
                                size_t reached_before_crash,
                                int max_rounds) {
  ClusterConfig config;
  config.protocol = protocol;
  config.num_nodes = num_nodes;
  config.peering = Peering::kRandom;
  config.seed = 4242;
  Cluster cluster(config);

  (void)cluster.UpdateAt(0, "critical", "v2");
  for (size_t p = 1; p <= reached_before_crash; ++p) {
    epidemic::NodeId peer = static_cast<epidemic::NodeId>(p);
    if (protocol == ProtocolKind::kOraclePush) {
      (void)cluster.SyncPair(/*actor=*/0, peer);  // push
    } else {
      (void)cluster.SyncPair(peer, /*peer=*/0);  // pull
    }
  }
  cluster.Crash(0);

  std::vector<size_t> stale;
  stale.push_back(cluster.CountDivergentFrom(1));
  for (int round = 1; round <= max_rounds; ++round) {
    cluster.SyncRound();
    stale.push_back(cluster.CountDivergentFrom(1));
  }
  return stale;
}

void PrintRow(const char* label, const std::vector<size_t>& stale) {
  std::printf("%-14s", label);
  for (size_t s : stale) std::printf(" %4zu", s);
  std::printf("\n");
}

}  // namespace

int main() {
  constexpr int kRounds = 8;
  std::printf(
      "E7: obsolete live replicas after originator crash "
      "(16 nodes; update delivered to K peers before the crash)\n\n");
  std::printf("%-14s", "round:");
  for (int r = 0; r <= kRounds; ++r) std::printf(" %4d", r);
  std::printf("\n");

  for (size_t reached : {1, 4, 8}) {
    std::printf("\nK = %zu peers reached before crash\n", reached);
    PrintRow("oracle-push",
             RunScenario(ProtocolKind::kOraclePush, 16, reached, kRounds));
    PrintRow("epidemic-dbvv",
             RunScenario(ProtocolKind::kEpidemicDbvv, 16, reached, kRounds));
  }

  std::printf(
      "\nshape check: oracle-push rows are constant (staleness persists\n"
      "until the originator recovers); epidemic-dbvv rows fall to 0 within\n"
      "a few gossip rounds, at the price of one DBVV comparison per\n"
      "exchange (§8.2).\n");
  return 0;
}
