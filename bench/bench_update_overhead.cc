// Experiment E3 (DESIGN.md): the per-update bookkeeping the protocol adds
// on top of applying the update itself is constant — IVV increment, DBVV
// increment, and the O(1) AddLogRecord of §4.2 / Fig. 1 — regardless of
// database size or how many updates the log has absorbed.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/replica.h"
#include "log/log_vector.h"

namespace {

using epidemic::ItemId;
using epidemic::LogRecord;
using epidemic::OriginLog;
using epidemic::Replica;

// Full user-update path at a replica whose database already holds
// `range(0)` items: must be flat across sizes.
void BM_UpdateExistingItem(benchmark::State& state) {
  const int64_t num_items = state.range(0);
  Replica r(0, 4);
  for (int64_t i = 0; i < num_items; ++i) {
    (void)r.Update("k" + std::to_string(i), "v");
  }
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        r.Update("k" + std::to_string(i++ % num_items), "w"));
  }
  state.counters["N_items"] = static_cast<double>(num_items);
  state.SetItemsProcessed(state.iterations());
}

// Raw AddLogRecord: replacing the latest record for one of `range(0)`
// items, O(1) by construction (pointer splice through P(x)).
void BM_AddLogRecord(benchmark::State& state) {
  const int64_t num_items = state.range(0);
  OriginLog log;
  std::vector<LogRecord*> p(static_cast<size_t>(num_items), nullptr);
  epidemic::UpdateCount seq = 0;
  ItemId item = 0;
  for (auto _ : state) {
    log.AddLogRecord(item, ++seq, &p[item]);
    item = static_cast<ItemId>((item + 1) % num_items);
  }
  state.counters["N_items"] = static_cast<double>(num_items);
  state.SetItemsProcessed(state.iterations());
}

// Update of the same item over and over: the log must not grow (one
// record), so neither time nor memory depends on update count.
void BM_RepeatedSameItem(benchmark::State& state) {
  Replica r(0, 4);
  (void)r.Update("hot", "v");
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.Update("hot", "w"));
  }
  state.counters["log_records_total"] =
      static_cast<double>(r.log_vector().TotalRecords());
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

BENCHMARK(BM_UpdateExistingItem)
    ->RangeMultiplier(16)
    ->Range(1 << 8, 1 << 20);
BENCHMARK(BM_AddLogRecord)->RangeMultiplier(16)->Range(1 << 8, 1 << 20);
BENCHMARK(BM_RepeatedSameItem);

BENCHMARK_MAIN();
