// Persistence substrate benchmark: snapshot encode/decode and journal
// append/replay throughput as the replica grows. Not a paper experiment —
// it sizes the durability machinery added on top (DESIGN.md §6 extensions)
// so checkpoint cadence can be chosen sensibly.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "core/journal.h"
#include "core/replica.h"
#include "core/snapshot.h"

namespace {

using epidemic::DecodeSnapshot;
using epidemic::EncodeSnapshot;
using epidemic::JournaledReplica;
using epidemic::Replica;

void Populate(Replica& r, int64_t items) {
  for (int64_t i = 0; i < items; ++i) {
    (void)r.Update("item" + std::to_string(i), std::string(64, 'x'));
  }
}

void BM_SnapshotEncode(benchmark::State& state) {
  Replica r(0, 4);
  Populate(r, state.range(0));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string blob = EncodeSnapshot(r);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob);
  }
  state.counters["items"] = static_cast<double>(state.range(0));
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
}

void BM_SnapshotDecode(benchmark::State& state) {
  Replica r(0, 4);
  Populate(r, state.range(0));
  std::string blob = EncodeSnapshot(r);
  for (auto _ : state) {
    auto restored = DecodeSnapshot(blob);
    benchmark::DoNotOptimize(restored.ok());
  }
  state.counters["items"] = static_cast<double>(state.range(0));
  state.SetBytesProcessed(static_cast<int64_t>(blob.size()) *
                          state.iterations());
}

void BM_JournaledUpdate(benchmark::State& state) {
  const std::string dir = "/tmp/epidemic_bench_journal";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  auto jr = JournaledReplica::Open(dir, 0, 4);
  if (!jr.ok()) {
    state.SkipWithError("cannot open journal dir");
    return;
  }
  int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        (*jr)->Update("item" + std::to_string(i++ % 128), "value"));
  }
  state.SetItemsProcessed(state.iterations());
  std::filesystem::remove_all(dir);
}

void BM_JournalRecovery(benchmark::State& state) {
  const std::string dir = "/tmp/epidemic_bench_recovery";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    auto jr = JournaledReplica::Open(dir, 0, 4);
    if (!jr.ok()) {
      state.SkipWithError("cannot open journal dir");
      return;
    }
    for (int64_t i = 0; i < state.range(0); ++i) {
      (void)(*jr)->Update("item" + std::to_string(i % 128), "value");
    }
  }
  for (auto _ : state) {
    auto recovered = JournaledReplica::Open(dir, 0, 4);
    benchmark::DoNotOptimize(recovered.ok());
  }
  state.counters["journal_records"] = static_cast<double>(state.range(0));
  std::filesystem::remove_all(dir);
}

}  // namespace

BENCHMARK(BM_SnapshotEncode)
    ->RangeMultiplier(16)
    ->Range(1 << 8, 1 << 16)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SnapshotDecode)
    ->RangeMultiplier(16)
    ->Range(1 << 8, 1 << 16)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_JournaledUpdate)->Iterations(1 << 14);
BENCHMARK(BM_JournalRecovery)
    ->RangeMultiplier(8)
    ->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
