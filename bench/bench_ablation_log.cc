// Ablation A1: the log vector's latest-record-per-item replacement rule
// (§4.2, Fig. 1) vs a naive append-only update log.
//
// The paper's constraint: "only a constant number of log records per data
// item being copied can be examined or sent over the network", although the
// number of log records "is normally equal to the number of updates and can
// be very large". This table quantifies exactly that: between two syncs the
// source applies U updates spread over D distinct items; the paper's log
// ships max one record per dirty item while the append-only variant ships
// (and stores) one per update.

#include <cstdio>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "core/replica.h"

namespace {

using epidemic::PropagateOnce;
using epidemic::RealClock;
using epidemic::Replica;
using epidemic::Rng;

/// The ablated design: an append-only per-origin update log, as a classic
/// log-shipping scheme would keep. Tail selection must scan records (and
/// ships every one newer than the recipient's horizon).
struct AppendOnlyLog {
  struct Record {
    uint32_t item;
    uint64_t seq;
  };
  std::vector<Record> records;

  void Add(uint32_t item, uint64_t seq) { records.push_back({item, seq}); }

  // Returns records with seq > after (they are in seq order already).
  size_t CollectTail(uint64_t after, std::vector<Record>* out) const {
    // Binary search for the suffix start, like a real implementation would.
    size_t lo = 0, hi = records.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (records[mid].seq > after) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    out->insert(out->end(), records.begin() + static_cast<long>(lo),
                records.end());
    return records.size() - lo;
  }
};

void RunRow(uint64_t updates_between_syncs, uint64_t distinct_items) {
  // --- paper's log, via the real protocol ---
  Replica src(0, 2), dst(1, 2);
  Rng rng(3);
  for (uint64_t u = 0; u < updates_between_syncs; ++u) {
    (void)src.Update("k" + std::to_string(rng.Uniform(distinct_items)),
                     "v" + std::to_string(u));
  }
  src.ResetStats();
  int64_t t0 = RealClock::Default()->NowMicros();
  (void)PropagateOnce(src, dst);
  int64_t paper_us = RealClock::Default()->NowMicros() - t0;
  uint64_t paper_shipped = src.stats().log_records_selected;
  size_t paper_stored = src.log_vector().TotalRecords();

  // --- append-only ablation (same update stream) ---
  AppendOnlyLog log;
  Rng rng2(3);
  for (uint64_t u = 0; u < updates_between_syncs; ++u) {
    (void)rng2.Uniform(distinct_items);
    log.Add(static_cast<uint32_t>(u % distinct_items), u + 1);
  }
  std::vector<AppendOnlyLog::Record> tail;
  t0 = RealClock::Default()->NowMicros();
  size_t naive_shipped = log.CollectTail(/*after=*/0, &tail);
  int64_t naive_us = RealClock::Default()->NowMicros() - t0;

  std::printf("%10llu %8llu | %13zu %13llu %9lld | %13zu %13zu %9lld\n",
              static_cast<unsigned long long>(updates_between_syncs),
              static_cast<unsigned long long>(distinct_items), paper_stored,
              static_cast<unsigned long long>(paper_shipped),
              static_cast<long long>(paper_us), log.records.size(),
              naive_shipped, static_cast<long long>(naive_us));
}

}  // namespace

int main() {
  std::printf(
      "A1: latest-record log (paper §4.2) vs append-only update log\n"
      "U updates over D distinct items between two syncs\n\n");
  std::printf("%10s %8s | %13s %13s %9s | %13s %13s %9s\n", "U", "D",
              "paper_stored", "paper_shipped", "paper_us", "naive_stored",
              "naive_shipped", "naive_us");
  for (uint64_t updates : {1000ull, 10000ull, 100000ull, 1000000ull}) {
    RunRow(updates, /*distinct=*/100);
  }
  std::printf("\n");
  for (uint64_t distinct : {10ull, 100ull, 1000ull, 10000ull}) {
    RunRow(/*updates=*/100000, distinct);
  }
  std::printf(
      "\nshape check: the paper's log stores and ships at most D records\n"
      "regardless of U; the append-only log stores and ships U records —\n"
      "the gap is the update/item ratio (hot items make it arbitrarily\n"
      "large).\n");
  return 0;
}
