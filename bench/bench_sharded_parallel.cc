// Sharded anti-entropy under write contention.
//
// Two served replicas; the destination pulls from the source in a tight
// loop while writer threads hammer the source's local API. With one shard
// (the old single-mutex shape) every writer and every per-shard propagation
// step convoy on the same lock; with 16 shards on the shard-owner scheduler
// (runtime/scheduler.h) each operation is one task in its shard's
// single-writer section and an anti-entropy round is one batch fan-out, so
// writers and the serve path only meet when they touch the same shard. The
// table reports anti-entropy rounds/second, concurrent writer throughput,
// and p50/p95/p99 latency for both, per configuration.
//
// Note on parallelism: on a single-core host the gain comes from removing
// the lock convoy (the scheduler's inline fast path costs one CAS, and
// writers no longer serialize the whole serve path), not from CPU-parallel
// shard processing — results carry hardware_concurrency and the build type
// so the artifact is self-describing.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/inproc_transport.h"
#include "server/replica_server.h"

#ifndef EPI_BUILD_TYPE
#define EPI_BUILD_TYPE "unknown"
#endif

namespace {

using epidemic::NodeId;
using epidemic::server::ReplicaServer;

struct Percentiles {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Nearest-rank percentiles over microsecond samples (destructive sort).
Percentiles ComputePercentiles(std::vector<double>& samples_us) {
  Percentiles p;
  if (samples_us.empty()) return p;
  std::sort(samples_us.begin(), samples_us.end());
  auto at = [&samples_us](double q) {
    const size_t idx = static_cast<size_t>(
        q * static_cast<double>(samples_us.size() - 1) + 0.5);
    return samples_us[std::min(idx, samples_us.size() - 1)];
  };
  p.p50 = at(0.50);
  p.p95 = at(0.95);
  p.p99 = at(0.99);
  return p;
}

struct RowResult {
  double rounds_per_sec = 0;
  double full_rounds_per_sec = 0;  // rounds that ran the per-shard handshake
  double writes_per_sec = 0;
  Percentiles round_us;   // one anti-entropy pull, all shards
  Percentiles update_us;  // one client Update under load
};

size_t g_payload_bytes = 16 * 1024;
size_t g_keys_per_writer = 32;

RowResult RunRow(size_t num_shards, size_t ae_workers, size_t writer_threads,
                 double seconds) {
  epidemic::net::InProcHub hub(2);
  epidemic::net::InProcTransport transport(&hub);
  ReplicaServer::Options options;
  options.num_shards = num_shards;
  options.ae_workers = ae_workers;
  ReplicaServer src(0, 2, &transport, options);
  ReplicaServer dst(1, 2, &transport, options);
  hub.Register(0, &src);
  hub.Register(1, &dst);

  // Preload a working set so every round has per-shard state to compare,
  // and warm the destination with one full transfer.
  for (int i = 0; i < 512; ++i) {
    (void)src.Update("pre/" + std::to_string(i), "x");
  }
  (void)dst.PullFrom(0);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writes{0};
  std::vector<std::thread> writers;
  std::vector<std::vector<double>> writer_lat_us(writer_threads);
  for (size_t w = 0; w < writer_threads; ++w) {
    writer_lat_us[w].reserve(1 << 18);
    writers.emplace_back([&src, &stop, &writes, &writer_lat_us, w] {
      // Direct local API: every update is one task in its shard's
      // single-writer section, contending exactly like a co-located
      // client thread. Values are sized like real documents so each task
      // occupies its shard for a meaningful stretch — with one shard
      // that serializes the whole serve path.
      std::string prefix = "w" + std::to_string(w) + "/";
      const std::string payload(g_payload_bytes, 'x');
      std::vector<double>& lat = writer_lat_us[w];
      for (uint64_t n = 0; !stop.load(std::memory_order_relaxed); ++n) {
        auto t0 = std::chrono::steady_clock::now();
        (void)src.Update(prefix + std::to_string(n % g_keys_per_writer),
                         payload);
        lat.push_back(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
        writes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  uint64_t rounds = 0;
  // Full (non-probe) rounds snapshot every shard's DBVV at the requester;
  // counting those tasks separates O(1) epoch-probe rounds from rounds
  // that ran the per-shard handshake.
  const auto snapshot_tasks = [&dst] {
    return dst.SchedulerHealth()
        .tasks_by_kind[static_cast<size_t>(
            epidemic::runtime::TaskKind::kSnapshot)];
  };
  const uint64_t snapshots_before = snapshot_tasks();
  std::vector<double> round_lat_us;
  round_lat_us.reserve(1 << 16);
  auto start = std::chrono::steady_clock::now();
  auto deadline = start + std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    auto t0 = std::chrono::steady_clock::now();
    if (dst.PullFrom(0).ok()) {
      ++rounds;
      round_lat_us.push_back(std::chrono::duration<double, std::micro>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count());
    }
  }
  auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const uint64_t full_rounds =
      (snapshot_tasks() - snapshots_before) / num_shards;
  stop.store(true);
  for (auto& t : writers) t.join();

  hub.Register(0, nullptr);
  hub.Register(1, nullptr);
  RowResult result;
  result.rounds_per_sec = static_cast<double>(rounds) / elapsed;
  result.full_rounds_per_sec = static_cast<double>(full_rounds) / elapsed;
  result.writes_per_sec = static_cast<double>(writes.load()) / elapsed;
  result.round_us = ComputePercentiles(round_lat_us);
  std::vector<double> all_updates_us;
  for (auto& lat : writer_lat_us) {
    all_updates_us.insert(all_updates_us.end(), lat.begin(), lat.end());
  }
  result.update_us = ComputePercentiles(all_updates_us);
  return result;
}

/// Second experiment: worst-case client-operation stall while a large
/// serve is in flight. With one shard the serve encodes the entire dirty
/// database inside the single lock, so a concurrent Read waits for all of
/// it; with striped locks it waits only for its own shard's segment. This
/// is the lock-convoy component in isolation — visible even on one core,
/// where rounds/sec is dominated by CPU scheduling instead.
double MaxReadStallMicros(size_t num_shards, int num_items) {
  epidemic::net::InProcHub hub(2);
  epidemic::net::InProcTransport transport(&hub);
  ReplicaServer::Options options;
  options.num_shards = num_shards;
  ReplicaServer src(0, 2, &transport, options);
  ReplicaServer dst(1, 2, &transport, options);
  hub.Register(0, &src);
  hub.Register(1, &dst);

  const std::string payload(1024, 'x');
  for (int i = 0; i < num_items; ++i) {
    (void)src.Update("pre/" + std::to_string(i), payload);
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> max_stall_us{0};
  std::thread reader([&src, &stop, &max_stall_us] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto t0 = std::chrono::steady_clock::now();
      (void)src.Read("pre/0");
      auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
      uint64_t prev = max_stall_us.load(std::memory_order_relaxed);
      while (static_cast<uint64_t>(us) > prev &&
             !max_stall_us.compare_exchange_weak(prev,
                                                 static_cast<uint64_t>(us))) {
      }
    }
  });

  // Give the reader a moment to start, then run full transfers.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < num_items; i += 7) {  // re-dirty a large subset
      (void)src.Update("pre/" + std::to_string(i), payload);
    }
    (void)dst.PullFrom(0);
  }
  stop.store(true);
  reader.join();
  hub.Register(0, nullptr);
  hub.Register(1, nullptr);
  return static_cast<double>(max_stall_us.load());
}

}  // namespace

int main(int argc, char** argv) {
  // Positional args (seconds, payload bytes, keys/writer) plus an optional
  // `--json` anywhere: machine-readable output for scripts/run_benchmarks.sh.
  bool json = false;
  double seconds = 1.0;
  int pos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      continue;
    }
    ++pos;
    if (pos == 1) seconds = std::atof(argv[i]);
    if (pos == 2) g_payload_bytes = static_cast<size_t>(std::atol(argv[i]));
    if (pos == 3) g_keys_per_writer = static_cast<size_t>(std::atol(argv[i]));
  }

  if (json) {
    std::printf("{\n  \"build_type\": \"%s\",\n", EPI_BUILD_TYPE);
    std::printf("  \"hardware_concurrency\": %u,\n  \"seconds\": %.3f,\n",
                std::thread::hardware_concurrency(), seconds);
    std::printf("  \"trials_per_row\": 3,\n");
    std::printf("  \"rows\": [\n");
    // Loaded pair (the acceptance comparison) plus the unloaded pair for
    // the raw round-cost parity check. Each row is the median-of-3 trial
    // by rounds/s: on a contended 1-core host individual trials swing with
    // CFS timeslice luck, and the median discards the outlier runs the
    // same way for both configs.
    const size_t shard_configs[][3] = {
        {1, 0, 0}, {16, 4, 0}, {1, 0, 4}, {16, 4, 4}};
    double baseline = 0, sharded = 0;
    double unloaded_baseline = 0, unloaded_sharded = 0;
    for (size_t i = 0; i < 4; ++i) {
      const auto& c = shard_configs[i];
      RowResult trials[3];
      for (auto& t : trials) t = RunRow(c[0], c[1], c[2], seconds);
      std::sort(std::begin(trials), std::end(trials),
                [](const RowResult& a, const RowResult& b) {
                  return a.rounds_per_sec < b.rounds_per_sec;
                });
      const RowResult& r = trials[1];
      std::printf(
          "%s    {\"shards\": %zu, \"workers\": %zu, \"writers\": %zu, "
          "\"rounds_per_sec\": %.2f, \"full_rounds_per_sec\": %.2f, "
          "\"writes_per_sec\": %.0f,\n"
          "     \"round_p50_us\": %.1f, \"round_p95_us\": %.1f, "
          "\"round_p99_us\": %.1f,\n"
          "     \"update_p50_us\": %.1f, \"update_p95_us\": %.1f, "
          "\"update_p99_us\": %.1f}",
          i == 0 ? "" : ",\n", c[0], c[1], c[2], r.rounds_per_sec,
          r.full_rounds_per_sec, r.writes_per_sec, r.round_us.p50,
          r.round_us.p95, r.round_us.p99, r.update_us.p50, r.update_us.p95,
          r.update_us.p99);
      if (c[2] == 0) {
        if (c[0] == 1) unloaded_baseline = r.rounds_per_sec;
        if (c[0] == 16) unloaded_sharded = r.rounds_per_sec;
      } else {
        if (c[0] == 1) baseline = r.rounds_per_sec;
        if (c[0] == 16) sharded = r.rounds_per_sec;
      }
    }
    std::printf("\n  ],\n  \"unloaded_speedup\": %.3f,\n",
                unloaded_baseline > 0 ? unloaded_sharded / unloaded_baseline
                                      : 0.0);
    std::printf("  \"loaded_speedup\": %.3f\n}\n",
                baseline > 0 ? sharded / baseline : 0.0);
    return 0;
  }

  std::printf(
      "Sharded parallel anti-entropy: pull rounds/sec while writers hit the "
      "source\n(build=%s hardware_concurrency=%u payload=%zuB "
      "keys/writer=%zu)\n\n",
      EPI_BUILD_TYPE, std::thread::hardware_concurrency(), g_payload_bytes,
      g_keys_per_writer);
  std::printf("%7s %8s %8s %12s %9s %12s %10s %10s %11s %11s\n", "shards",
              "workers", "writers", "rounds/s", "fulls/s", "writes/s",
              "rnd p50us", "rnd p99us", "upd p50us", "upd p99us");

  struct Config {
    size_t shards, workers, writers;
  };
  const Config configs[] = {
      {1, 0, 0},   // unsharded, unloaded: raw round cost
      {16, 0, 0},  // sharded, serial: handshake overhead of S shards
      {16, 4, 0},  // sharded, owner threads: dispatch overhead
      {1, 0, 4},   // unsharded + writers: the single-mutex convoy
      {16, 0, 4},  // sharded + writers, callers inline behind the gates
      {16, 4, 4},  // sharded + writers: shard-owner scheduler, full config
  };
  double baseline_loaded = 0, sharded_loaded = 0;
  for (const Config& c : configs) {
    RowResult r = RunRow(c.shards, c.workers, c.writers, seconds);
    std::printf(
        "%7zu %8zu %8zu %12.1f %9.1f %12.0f %10.1f %10.1f %11.1f %11.1f\n",
        c.shards, c.workers, c.writers, r.rounds_per_sec,
        r.full_rounds_per_sec, r.writes_per_sec, r.round_us.p50,
        r.round_us.p99, r.update_us.p50, r.update_us.p99);
    if (c.writers > 0 && c.shards == 1) baseline_loaded = r.rounds_per_sec;
    if (c.writers > 0 && c.shards == 16) sharded_loaded = r.rounds_per_sec;
  }
  if (baseline_loaded > 0) {
    std::printf("\nloaded speedup (16 shards / 1 shard): %.2fx\n",
                sharded_loaded / baseline_loaded);
  }

  std::printf(
      "\nWorst-case client read stall during full-database serves\n"
      "(the lock-convoy component in isolation; 1 KiB values)\n\n");
  std::printf("%7s %8s %15s\n", "shards", "items", "max stall (us)");
  const int kStallItems = 20000;
  double stall1 = MaxReadStallMicros(1, kStallItems);
  std::printf("%7d %8d %15.0f\n", 1, kStallItems, stall1);
  double stall16 = MaxReadStallMicros(16, kStallItems);
  std::printf("%7d %8d %15.0f\n", 16, kStallItems, stall16);
  if (stall16 > 0) {
    std::printf("\nstall reduction (1 shard / 16 shards): %.1fx\n",
                stall1 / stall16);
  }
  return 0;
}
