// Sharded anti-entropy under write contention.
//
// Two served replicas; the destination pulls from the source in a tight
// loop while writer threads hammer the source's local API. With one shard
// (the old single-mutex shape) every writer and every per-shard propagation
// step convoy on the same lock; with 16 shards and striped locks they only
// collide when they actually touch the same shard. The table reports
// anti-entropy rounds/second and concurrent writer throughput for each
// configuration, with and without load.
//
// Note on parallelism: on a single-core host the gain comes from removing
// the lock convoy (writers no longer serialize the whole serve path), not
// from CPU-parallel shard processing — report the core count with results.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/inproc_transport.h"
#include "server/replica_server.h"

namespace {

using epidemic::NodeId;
using epidemic::server::ReplicaServer;

struct RowResult {
  double rounds_per_sec = 0;
  double writes_per_sec = 0;
};

size_t g_payload_bytes = 16 * 1024;
size_t g_keys_per_writer = 32;

RowResult RunRow(size_t num_shards, size_t ae_workers, size_t writer_threads,
                 double seconds) {
  epidemic::net::InProcHub hub(2);
  epidemic::net::InProcTransport transport(&hub);
  ReplicaServer::Options options;
  options.num_shards = num_shards;
  options.ae_workers = ae_workers;
  ReplicaServer src(0, 2, &transport, options);
  ReplicaServer dst(1, 2, &transport, options);
  hub.Register(0, &src);
  hub.Register(1, &dst);

  // Preload a working set so every round has per-shard state to compare,
  // and warm the destination with one full transfer.
  for (int i = 0; i < 512; ++i) {
    (void)src.Update("pre/" + std::to_string(i), "x");
  }
  (void)dst.PullFrom(0);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writes{0};
  std::vector<std::thread> writers;
  for (size_t w = 0; w < writer_threads; ++w) {
    writers.emplace_back([&src, &stop, &writes, w] {
      // Direct local API: contends on the source's shard locks exactly
      // like a co-located client thread. Values are sized like real
      // documents so each update holds its shard's lock for a meaningful
      // stretch — with one shard that serializes the whole serve path.
      std::string prefix = "w" + std::to_string(w) + "/";
      const std::string payload(g_payload_bytes, 'x');
      for (uint64_t n = 0; !stop.load(std::memory_order_relaxed); ++n) {
        (void)src.Update(prefix + std::to_string(n % g_keys_per_writer),
                         payload);
        writes.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  uint64_t rounds = 0;
  auto start = std::chrono::steady_clock::now();
  auto deadline = start + std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (dst.PullFrom(0).ok()) ++rounds;
  }
  auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  stop.store(true);
  for (auto& t : writers) t.join();

  hub.Register(0, nullptr);
  hub.Register(1, nullptr);
  RowResult result;
  result.rounds_per_sec = static_cast<double>(rounds) / elapsed;
  result.writes_per_sec = static_cast<double>(writes.load()) / elapsed;
  return result;
}

/// Second experiment: worst-case client-operation stall while a large
/// serve is in flight. With one shard the serve encodes the entire dirty
/// database inside the single lock, so a concurrent Read waits for all of
/// it; with striped locks it waits only for its own shard's segment. This
/// is the lock-convoy component in isolation — visible even on one core,
/// where rounds/sec is dominated by CPU scheduling instead.
double MaxReadStallMicros(size_t num_shards, int num_items) {
  epidemic::net::InProcHub hub(2);
  epidemic::net::InProcTransport transport(&hub);
  ReplicaServer::Options options;
  options.num_shards = num_shards;
  ReplicaServer src(0, 2, &transport, options);
  ReplicaServer dst(1, 2, &transport, options);
  hub.Register(0, &src);
  hub.Register(1, &dst);

  const std::string payload(1024, 'x');
  for (int i = 0; i < num_items; ++i) {
    (void)src.Update("pre/" + std::to_string(i), payload);
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> max_stall_us{0};
  std::thread reader([&src, &stop, &max_stall_us] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto t0 = std::chrono::steady_clock::now();
      (void)src.Read("pre/0");
      auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
      uint64_t prev = max_stall_us.load(std::memory_order_relaxed);
      while (static_cast<uint64_t>(us) > prev &&
             !max_stall_us.compare_exchange_weak(prev,
                                                 static_cast<uint64_t>(us))) {
      }
    }
  });

  // Give the reader a moment to start, then run full transfers.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < num_items; i += 7) {  // re-dirty a large subset
      (void)src.Update("pre/" + std::to_string(i), payload);
    }
    (void)dst.PullFrom(0);
  }
  stop.store(true);
  reader.join();
  hub.Register(0, nullptr);
  hub.Register(1, nullptr);
  return static_cast<double>(max_stall_us.load());
}

}  // namespace

int main(int argc, char** argv) {
  // Positional args (seconds, payload bytes, keys/writer) plus an optional
  // `--json` anywhere: machine-readable output for scripts/run_benchmarks.sh.
  bool json = false;
  double seconds = 1.0;
  int pos = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
      continue;
    }
    ++pos;
    if (pos == 1) seconds = std::atof(argv[i]);
    if (pos == 2) g_payload_bytes = static_cast<size_t>(std::atol(argv[i]));
    if (pos == 3) g_keys_per_writer = static_cast<size_t>(std::atol(argv[i]));
  }

  if (json) {
    std::printf("{\n  \"hardware_concurrency\": %u,\n  \"seconds\": %.3f,\n",
                std::thread::hardware_concurrency(), seconds);
    std::printf("  \"rows\": [\n");
    const size_t shard_configs[][3] = {{1, 0, 4}, {16, 4, 4}};
    double baseline = 0, sharded = 0;
    for (size_t i = 0; i < 2; ++i) {
      const auto& c = shard_configs[i];
      RowResult r = RunRow(c[0], c[1], c[2], seconds);
      std::printf(
          "%s    {\"shards\": %zu, \"workers\": %zu, \"writers\": %zu, "
          "\"rounds_per_sec\": %.2f, \"writes_per_sec\": %.0f}",
          i == 0 ? "" : ",\n", c[0], c[1], c[2], r.rounds_per_sec,
          r.writes_per_sec);
      if (c[0] == 1) baseline = r.rounds_per_sec;
      if (c[0] == 16) sharded = r.rounds_per_sec;
    }
    std::printf("\n  ],\n  \"loaded_speedup\": %.3f\n}\n",
                baseline > 0 ? sharded / baseline : 0.0);
    return 0;
  }

  std::printf(
      "Sharded parallel anti-entropy: pull rounds/sec while writers hit the "
      "source\n(hardware_concurrency=%u payload=%zuB keys/writer=%zu)\n\n",
      std::thread::hardware_concurrency(), g_payload_bytes,
      g_keys_per_writer);
  std::printf("%7s %8s %8s %12s %12s\n", "shards", "workers", "writers",
              "rounds/s", "writes/s");

  struct Config {
    size_t shards, workers, writers;
  };
  const Config configs[] = {
      {1, 0, 0},   // unsharded, unloaded: raw round cost
      {16, 0, 0},  // sharded, serial: handshake overhead of S shards
      {16, 4, 0},  // sharded, pooled: worker-dispatch overhead
      {1, 0, 4},   // unsharded + writers: the single-mutex convoy
      {16, 0, 4},  // sharded + writers, serial shard processing
      {16, 4, 4},  // sharded + writers: striped locks + worker pool
  };
  double baseline_loaded = 0, sharded_loaded = 0;
  for (const Config& c : configs) {
    RowResult r = RunRow(c.shards, c.workers, c.writers, seconds);
    std::printf("%7zu %8zu %8zu %12.1f %12.0f\n", c.shards, c.workers,
                c.writers, r.rounds_per_sec, r.writes_per_sec);
    if (c.writers > 0 && c.shards == 1) baseline_loaded = r.rounds_per_sec;
    if (c.writers > 0 && c.shards == 16) sharded_loaded = r.rounds_per_sec;
  }
  if (baseline_loaded > 0) {
    std::printf("\nloaded speedup (16 shards / 1 shard): %.2fx\n",
                sharded_loaded / baseline_loaded);
  }

  std::printf(
      "\nWorst-case client read stall during full-database serves\n"
      "(the lock-convoy component in isolation; 1 KiB values)\n\n");
  std::printf("%7s %8s %15s\n", "shards", "items", "max stall (us)");
  const int kStallItems = 20000;
  double stall1 = MaxReadStallMicros(1, kStallItems);
  std::printf("%7d %8d %15.0f\n", 1, kStallItems, stall1);
  double stall16 = MaxReadStallMicros(16, kStallItems);
  std::printf("%7d %8d %15.0f\n", 16, kStallItems, stall16);
  if (stall16 > 0) {
    std::printf("\nstall reduction (1 shard / 16 shards): %.1fx\n",
                stall1 / stall16);
  }
  return 0;
}
