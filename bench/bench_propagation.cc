// Experiment E2 (DESIGN.md): update-propagation cost is O(m) in the number
// of data items actually copied, independent of the database size N (§6).
//
// Part A fixes N = 65536 items and sweeps m (dirty items per exchange).
// Part B fixes m = 64 and sweeps N: the paper's protocol must stay flat,
// while a per-item pass grows with N.
//
// Part C (wire v3, DESIGN.md §10) measures the same exchange through the
// zero-copy view pipeline (PropagateOnceFast) against the owned baseline,
// and the sharded exchange through the real v2 vs v3 wire codecs. The
// `serve_allocs`/`accept_allocs` counters are ReplicaStats'
// *_staging_allocs: owned-string materializations per exchange, which the
// view path must drive to zero.

#include <benchmark/benchmark.h>

#include <string>
#include <utility>

#include "core/replica.h"
#include "core/sharded_replica.h"
#include "net/codec.h"

#ifndef EPI_BUILD_TYPE
#define EPI_BUILD_TYPE "unknown"
#endif

namespace {

using epidemic::BufferPool;
using epidemic::PropagateOnce;
using epidemic::PropagateOnceFast;
using epidemic::Replica;
using epidemic::ShardedPropagationRequest;
using epidemic::ShardedPropagationResponse;
using epidemic::ShardedReplica;

// Values sized like small real documents (matches bench_message_size's
// convention); big enough to defeat SSO so every owned-path copy is a
// real allocation.
constexpr size_t kValueLen = 256;

// Builds two converged replicas holding `n` items.
void Preload(Replica& src, Replica& dst, int64_t n) {
  const std::string value(kValueLen, 'a');
  for (int64_t i = 0; i < n; ++i) {
    (void)src.Update("k" + std::to_string(i), value);
  }
  (void)PropagateOnce(src, dst);
}

// Measures one exchange that ships exactly `m` dirty items, through the
// owned baseline or the zero-copy view pipeline.
void MeasureExchange(benchmark::State& state, int64_t n, int64_t m,
                     bool fast) {
  Replica src(0, 2), dst(1, 2);
  Preload(src, dst, n);
  src.ResetStats();
  dst.ResetStats();
  int tick = 0;

  for (auto _ : state) {
    state.PauseTiming();
    ++tick;
    const std::string value(kValueLen, static_cast<char>('a' + tick % 26));
    for (int64_t i = 0; i < m; ++i) {
      (void)src.Update("k" + std::to_string(i), value);
    }
    state.ResumeTiming();
    if (fast) {
      benchmark::DoNotOptimize(PropagateOnceFast(src, dst));
    } else {
      benchmark::DoNotOptimize(PropagateOnce(src, dst));
    }
  }

  state.counters["N_items"] = static_cast<double>(n);
  state.counters["m_dirty"] = static_cast<double>(m);
  state.counters["records_selected"] = benchmark::Counter(
      static_cast<double>(src.stats().log_records_selected),
      benchmark::Counter::kAvgIterations);
  state.counters["items_shipped"] = benchmark::Counter(
      static_cast<double>(src.stats().items_shipped),
      benchmark::Counter::kAvgIterations);
  state.counters["serve_allocs"] = benchmark::Counter(
      static_cast<double>(src.stats().serve_staging_allocs),
      benchmark::Counter::kAvgIterations);
  state.counters["accept_allocs"] = benchmark::Counter(
      static_cast<double>(dst.stats().accept_staging_allocs),
      benchmark::Counter::kAvgIterations);

  // Untimed: the wire frame one such exchange would produce, so these rows
  // report frame_bytes like the sharded-wire rows do (the JSON artifact
  // used to carry null here). Dirty the same m items again — the replicas
  // are converged after the loop, so a fresh burst reproduces the shape.
  {
    const std::string value(kValueLen, 'z');
    for (int64_t i = 0; i < m; ++i) {
      (void)src.Update("k" + std::to_string(i), value);
    }
    const epidemic::PropagationResponse resp =
        src.HandlePropagationRequest(dst.BuildPropagationRequest());
    const std::string frame =
        epidemic::net::Encode(epidemic::net::Message(resp));
    state.counters["frame_bytes"] = static_cast<double>(frame.size());
  }
}

void BM_SweepDirtyItems(benchmark::State& state) {
  MeasureExchange(state, /*n=*/65536, /*m=*/state.range(0), /*fast=*/false);
}

void BM_SweepDirtyItemsFast(benchmark::State& state) {
  MeasureExchange(state, /*n=*/65536, /*m=*/state.range(0), /*fast=*/true);
}

void BM_SweepDatabaseSize(benchmark::State& state) {
  MeasureExchange(state, /*n=*/state.range(0), /*m=*/64, /*fast=*/false);
}

// One sharded anti-entropy exchange through the REAL wire codec: build the
// handshake, encode+decode the request frame, serve, encode+decode the
// response frame, accept. `wire_version` selects tags 14/15 (v2, owned)
// or 17/18 (v3, delta segments + zero-copy accept).
void MeasureShardedWire(benchmark::State& state, int wire_version) {
  constexpr int64_t kDbItems = 65536;  // database size N
  constexpr int64_t kDirty = 4096;     // m dirty items per exchange
  constexpr size_t kShards = 8;
  constexpr size_t kNodes = 16;  // wide IVVs: where delta encoding pays
  ShardedReplica src(0, kNodes, kShards), dst(1, kNodes, kShards);
  const std::string preload_value(kValueLen, 'a');
  for (int64_t i = 0; i < kDbItems; ++i) {
    (void)src.Update("k" + std::to_string(i), preload_value);
  }
  (void)PropagateOnceSharded(src, dst);
  BufferPool pool;
  int tick = 0;
  uint64_t bytes = 0;
  uint64_t exchanges = 0;

  for (auto _ : state) {
    state.PauseTiming();
    ++tick;
    const std::string value(kValueLen, static_cast<char>('a' + tick % 26));
    for (int64_t i = 0; i < kDirty; ++i) {
      (void)src.Update("k" + std::to_string(i), value);
    }
    state.ResumeTiming();

    ShardedPropagationRequest req =
        wire_version >= 3 ? dst.BuildPropagationRequestV3()
                          : dst.BuildPropagationRequest();
    auto req2 = epidemic::net::Decode(
        epidemic::net::Encode(epidemic::net::Message(req)));
    ShardedPropagationResponse resp =
        wire_version >= 3
            ? src.HandlePropagationRequestV3(
                  std::get<ShardedPropagationRequest>(*req2), &pool)
            : src.HandlePropagationRequest(
                  std::get<ShardedPropagationRequest>(*req2));
    std::string frame = epidemic::net::Encode(epidemic::net::Message(resp));
    bytes += frame.size();
    ++exchanges;
    if (wire_version >= 3) {
      for (auto& seg : resp.segments) pool.Put(std::move(seg.body));
    }
    auto resp2 = epidemic::net::Decode(frame);
    benchmark::DoNotOptimize(
        dst.AcceptPropagation(std::get<ShardedPropagationResponse>(*resp2)));
  }

  state.counters["N_items"] = static_cast<double>(kDbItems);
  state.counters["m_dirty"] = static_cast<double>(kDirty);
  state.counters["wire_version"] = static_cast<double>(wire_version);
  state.counters["frame_bytes"] = exchanges > 0
      ? static_cast<double>(bytes) / static_cast<double>(exchanges)
      : 0.0;
}

void BM_ShardedWireExchangeV2(benchmark::State& state) {
  MeasureShardedWire(state, /*wire_version=*/2);
}

void BM_ShardedWireExchangeV3(benchmark::State& state) {
  MeasureShardedWire(state, /*wire_version=*/3);
}

}  // namespace

BENCHMARK(BM_SweepDirtyItems)
    ->RangeMultiplier(4)
    ->Range(1, 1 << 12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SweepDirtyItemsFast)
    ->RangeMultiplier(4)
    ->Range(1, 1 << 12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SweepDatabaseSize)
    ->RangeMultiplier(8)
    ->Range(1 << 10, 1 << 18)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ShardedWireExchangeV2)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ShardedWireExchangeV3)->Unit(benchmark::kMicrosecond);

// Custom main so the JSON context says what build produced OUR code. The
// google-benchmark *library* build type is reported separately by the
// library itself (library_build_type) — see the note in
// scripts/run_benchmarks.sh about the distro-prebuilt library.
int main(int argc, char** argv) {
  benchmark::AddCustomContext("epi_build_type", EPI_BUILD_TYPE);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
