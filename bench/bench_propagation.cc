// Experiment E2 (DESIGN.md): update-propagation cost is O(m) in the number
// of data items actually copied, independent of the database size N (§6).
//
// Part A fixes N = 65536 items and sweeps m (dirty items per exchange).
// Part B fixes m = 64 and sweeps N: the paper's protocol must stay flat,
// while a per-item pass grows with N.

#include <benchmark/benchmark.h>

#include <string>

#include "core/replica.h"

namespace {

using epidemic::PropagateOnce;
using epidemic::Replica;

// Builds two converged replicas holding `n` items.
void Preload(Replica& src, Replica& dst, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    (void)src.Update("k" + std::to_string(i), "v0");
  }
  (void)PropagateOnce(src, dst);
}

// Measures one exchange that ships exactly `m` dirty items.
void MeasureExchange(benchmark::State& state, int64_t n, int64_t m) {
  Replica src(0, 2), dst(1, 2);
  Preload(src, dst, n);
  int tick = 0;

  for (auto _ : state) {
    state.PauseTiming();
    ++tick;
    for (int64_t i = 0; i < m; ++i) {
      (void)src.Update("k" + std::to_string(i), "v" + std::to_string(tick));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(PropagateOnce(src, dst));
  }

  state.counters["N_items"] = static_cast<double>(n);
  state.counters["m_dirty"] = static_cast<double>(m);
  state.counters["records_selected"] = benchmark::Counter(
      static_cast<double>(src.stats().log_records_selected),
      benchmark::Counter::kAvgIterations);
  state.counters["items_shipped"] = benchmark::Counter(
      static_cast<double>(src.stats().items_shipped),
      benchmark::Counter::kAvgIterations);
}

void BM_SweepDirtyItems(benchmark::State& state) {
  MeasureExchange(state, /*n=*/65536, /*m=*/state.range(0));
}

void BM_SweepDatabaseSize(benchmark::State& state) {
  MeasureExchange(state, /*n=*/state.range(0), /*m=*/64);
}

}  // namespace

BENCHMARK(BM_SweepDirtyItems)
    ->RangeMultiplier(4)
    ->Range(1, 1 << 12)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SweepDatabaseSize)
    ->RangeMultiplier(8)
    ->Range(1 << 10, 1 << 18)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
