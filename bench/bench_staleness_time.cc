// Experiment E12 (extension): update-propagation delay in *time*, not
// rounds. The epidemic model's knob is the anti-entropy period (§1: "update
// propagation can be done at a convenient time"); this experiment drives
// replicas on a virtual clock — each node pulls from a random peer every P
// ms (staggered phases) — and measures how long a committed update takes to
// reach every replica.
//
// Reported per (nodes, period): mean / p95 / max full-coverage delay over
// many marker updates, in units of the period. The shape to check: delay
// scales linearly with the period and ~logarithmically with the node count
// (the gossip rounds of E10, stretched onto the clock).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "sim/cluster.h"
#include "sim/event_queue.h"

namespace {

using epidemic::NodeId;
using epidemic::Rng;
using epidemic::sim::EventQueue;
using epidemic::sim::MakeNode;
using epidemic::sim::ProtocolKind;

constexpr int64_t kMilli = 1000;  // virtual microseconds per ms

struct Marker {
  std::string item;
  int64_t committed_at;
  int64_t covered_at = -1;
};

void RunRow(size_t num_nodes, int64_t period_ms, int num_markers) {
  EventQueue queue;
  Rng rng(808);
  std::vector<std::unique_ptr<epidemic::ProtocolNode>> nodes;
  for (NodeId i = 0; i < num_nodes; ++i) {
    nodes.push_back(MakeNode(ProtocolKind::kEpidemicDbvv, i, num_nodes));
  }
  std::vector<Marker> markers;

  auto covered = [&](const Marker& m) {
    for (auto& node : nodes) {
      if (!node->ClientRead(m.item).ok()) return false;
    }
    return true;
  };

  // Each node pulls from a random peer every period, phases staggered.
  std::function<void(NodeId)> schedule_sync = [&](NodeId i) {
    NodeId peer;
    do {
      peer = static_cast<NodeId>(rng.Uniform(num_nodes));
    } while (peer == i);
    (void)nodes[i]->SyncWith(*nodes[peer]);
    // After state changed, check open markers for full coverage.
    for (Marker& m : markers) {
      if (m.covered_at < 0 && covered(m)) m.covered_at = queue.now();
    }
    queue.After(period_ms * kMilli, [&, i] { schedule_sync(i); });
  };
  for (NodeId i = 0; i < num_nodes; ++i) {
    queue.At(static_cast<int64_t>(rng.Uniform(
                 static_cast<uint64_t>(period_ms * kMilli))),
             [&, i] { schedule_sync(i); });
  }

  // A marker update lands at a random node every 3 periods (so markers
  // rarely overlap and coverage checks stay cheap).
  std::function<void(int)> schedule_marker = [&](int k) {
    if (k >= num_markers) return;
    NodeId origin = static_cast<NodeId>(rng.Uniform(num_nodes));
    Marker m;
    m.item = "marker" + std::to_string(k);
    m.committed_at = queue.now();
    (void)nodes[origin]->ClientUpdate(m.item, "v");
    markers.push_back(std::move(m));
    queue.After(3 * period_ms * kMilli, [&, k] { schedule_marker(k + 1); });
  };
  queue.After(period_ms * kMilli, [&] { schedule_marker(0); });

  // Run long enough for every marker to be planted and spread.
  queue.RunUntil((3 * num_markers + 40) * period_ms * kMilli);

  std::vector<double> delays;  // in periods
  for (const Marker& m : markers) {
    if (m.covered_at < 0) continue;  // did not converge in time (none)
    delays.push_back(static_cast<double>(m.covered_at - m.committed_at) /
                     static_cast<double>(period_ms * kMilli));
  }
  std::sort(delays.begin(), delays.end());
  double mean = 0;
  for (double d : delays) mean += d;
  if (!delays.empty()) mean /= static_cast<double>(delays.size());
  double p95 = delays.empty() ? 0 : delays[delays.size() * 95 / 100];
  double max = delays.empty() ? 0 : delays.back();

  std::printf("%6zu %10lld %9zu %11.2f %11.2f %11.2f %14.1f\n", num_nodes,
              static_cast<long long>(period_ms), delays.size(), mean, p95,
              max, mean * static_cast<double>(period_ms));
}

}  // namespace

int main() {
  std::printf(
      "E12: full-coverage delay of an update vs anti-entropy period\n"
      "(random pull peering on a virtual clock, delays in periods)\n\n");
  std::printf("%6s %10s %9s %11s %11s %11s %14s\n", "nodes", "period_ms",
              "markers", "mean_pds", "p95_pds", "max_pds", "mean_ms");
  for (size_t n : {4, 8, 16, 32}) {
    RunRow(n, /*period_ms=*/100, /*num_markers=*/60);
  }
  std::printf("\n");
  for (int64_t period : {10, 100, 1000}) {
    RunRow(/*num_nodes=*/16, period, /*num_markers=*/60);
  }
  std::printf(
      "\nshape check: delay in *periods* depends only on the node count\n"
      "(~log n gossip rounds); delay in wall time scales linearly with the\n"
      "anti-entropy period — the timeliness/overhead knob the protocol's\n"
      "cheap exchanges let you turn down (§8.1 discussion).\n");
  return 0;
}
