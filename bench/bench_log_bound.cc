// Experiment E4 (DESIGN.md): the log vector's memory is bounded by
// n · N records no matter how many updates flow through the system (§4.2):
// each component L_ij keeps only the latest record per data item.
//
// A naive append-only log grows with the update count; this table shows the
// paper's log staying at its bound while updates grow by orders of
// magnitude.

#include <cstdio>
#include <string>

#include "common/random.h"
#include "core/replica.h"

namespace {

using epidemic::PropagateOnce;
using epidemic::Replica;
using epidemic::Rng;

void RunRow(uint64_t total_updates, uint64_t num_items, size_t num_nodes) {
  // All nodes update a shared item space and gossip on a ring, so every
  // node's log vector sees records from every origin.
  std::vector<std::unique_ptr<Replica>> nodes;
  for (epidemic::NodeId i = 0; i < num_nodes; ++i) {
    nodes.push_back(std::make_unique<Replica>(i, num_nodes));
  }
  Rng rng(13);
  for (uint64_t u = 0; u < total_updates; ++u) {
    // Single-writer key ranges to keep the run conflict-free: item k is
    // owned by node k mod n.
    uint64_t k = rng.Uniform(num_items);
    epidemic::NodeId owner = static_cast<epidemic::NodeId>(k % num_nodes);
    (void)nodes[owner]->Update("k" + std::to_string(k),
                               "v" + std::to_string(u));
    if (u % 64 == 0) {
      epidemic::NodeId i =
          static_cast<epidemic::NodeId>(rng.Uniform(num_nodes));
      (void)PropagateOnce(*nodes[(i + 1) % num_nodes], *nodes[i]);
    }
  }
  // Converge so logs are maximally populated.
  for (size_t pass = 0; pass < num_nodes; ++pass) {
    for (epidemic::NodeId i = 0; i < num_nodes; ++i) {
      (void)PropagateOnce(*nodes[(i + 1) % num_nodes], *nodes[i]);
    }
  }

  size_t max_records = 0;
  for (const auto& node : nodes) {
    max_records = std::max(max_records, node->log_vector().TotalRecords());
  }
  const uint64_t bound = num_items * num_nodes;
  std::printf("%12llu %10llu %8zu %16zu %14llu %9s\n",
              static_cast<unsigned long long>(total_updates),
              static_cast<unsigned long long>(num_items), num_nodes,
              max_records, static_cast<unsigned long long>(bound),
              max_records <= bound ? "yes" : "NO");
}

}  // namespace

int main() {
  std::printf(
      "E4: log-vector memory stays bounded by n*N records (paper §4.2)\n\n");
  std::printf("%12s %10s %8s %16s %14s %9s\n", "updates", "items", "nodes",
              "max_log_records", "bound_n*N", "bounded?");
  for (uint64_t updates : {1000ull, 10000ull, 100000ull, 1000000ull}) {
    RunRow(updates, /*num_items=*/500, /*num_nodes=*/4);
  }
  std::printf("\n");
  for (uint64_t items : {100ull, 1000ull, 10000ull}) {
    RunRow(/*total_updates=*/200000, items, /*num_nodes=*/4);
  }
  std::printf("\n");
  for (size_t nodes : {2ull, 4ull, 8ull}) {
    RunRow(/*total_updates=*/100000, /*num_items=*/500, nodes);
  }
  std::printf(
      "\nshape check: records track min(updates, n*N) and never exceed the\n"
      "bound, while an append-only log would hold one record per update.\n");
  return 0;
}
