// Experiment E9 (DESIGN.md): wire-size accounting through the REAL codec.
//
// §6: the propagation message contains the shipped data items "plus a
// constant amount of information per data item" (the IVV and one log
// record per origin that updated it). This table encodes actual
// PropagationResponse messages for growing m and measures bytes/item,
// separating metadata from payload.
//
// Experiment W1 (DESIGN.md §10): the same accounting for the sharded
// exchange under wire v2 (dense IVVs, owned bodies, tag 15) vs wire v3
// (delta IVVs against the shard DBVV, indexed tails, tag 18). The v3
// claim is about CONTROL bytes — payload is identical by construction —
// so the table separates the two and reports the control-byte reduction.
// `--json` emits the W1 rows as a JSON object for scripts/run_benchmarks.sh.

#include <cstdio>
#include <cstring>
#include <string>

#include "common/compress.h"
#include "core/replica.h"
#include "core/sharded_replica.h"
#include "net/codec.h"

namespace {

using epidemic::PropagationRequest;
using epidemic::PropagationResponse;
using epidemic::Replica;
using epidemic::ShardedPropagationRequest;
using epidemic::ShardedPropagationResponse;
using epidemic::ShardedReplica;

void RunRow(int64_t m, size_t value_len, size_t num_nodes) {
  Replica src(0, num_nodes), dst(1, num_nodes);
  for (int64_t i = 0; i < m; ++i) {
    (void)src.Update("item" + std::to_string(i),
                     std::string(value_len, 'x'));
  }
  PropagationRequest req = dst.BuildPropagationRequest();
  PropagationResponse resp = src.HandlePropagationRequest(req);

  const std::string frame = epidemic::net::Encode(epidemic::net::Message(resp));
  // Payload bytes: the raw values. Everything else is protocol metadata.
  size_t payload = 0;
  for (const auto& item : resp.items) payload += item.value.size();
  const size_t metadata = frame.size() - payload;
  // What the TCP transport would actually ship on a dial-up link.
  const size_t compressed = epidemic::Compress(frame).size();

  std::printf("%8lld %10zu %7zu %12zu %12zu %12zu %14.1f %12zu\n",
              static_cast<long long>(m), value_len, num_nodes, frame.size(),
              payload, metadata,
              m > 0 ? static_cast<double>(metadata) / static_cast<double>(m)
                    : 0.0,
              compressed);
}

// One W1 measurement: a sharded source with m single-origin updates serves
// a cold recipient under both wire formats. Payload (the item values) is
// identical on both wires, so control = frame - payload isolates the
// format's own cost: envelope, names, IVVs, tails.
struct W1Row {
  size_t nodes = 0;
  int64_t m = 0;
  size_t value_len = 0;
  size_t v2_frame = 0;
  size_t v3_frame = 0;
  size_t payload = 0;
  size_t v2_control = 0;
  size_t v3_control = 0;
  double control_reduction_pct = 0;
};

W1Row RunW1Row(size_t nodes, int64_t m, size_t value_len) {
  constexpr size_t kShards = 8;
  ShardedReplica src(0, nodes, kShards), dst(1, nodes, kShards);
  for (int64_t i = 0; i < m; ++i) {
    (void)src.Update("item" + std::to_string(i),
                     std::string(value_len, 'x'));
  }

  ShardedPropagationResponse v2 =
      src.HandlePropagationRequest(dst.BuildPropagationRequest());
  ShardedPropagationResponse v3 =
      src.HandlePropagationRequestV3(dst.BuildPropagationRequestV3());

  W1Row row;
  row.nodes = nodes;
  row.m = m;
  row.value_len = value_len;
  row.v2_frame = epidemic::net::Encode(epidemic::net::Message(v2)).size();
  row.v3_frame = epidemic::net::Encode(epidemic::net::Message(v3)).size();
  row.payload = static_cast<size_t>(m) * value_len;
  row.v2_control = row.v2_frame - row.payload;
  row.v3_control = row.v3_frame - row.payload;
  row.control_reduction_pct =
      row.v2_control > 0
          ? 100.0 * (1.0 - static_cast<double>(row.v3_control) /
                               static_cast<double>(row.v2_control))
          : 0.0;
  return row;
}

constexpr size_t kW1Nodes[] = {4, 16, 32};
constexpr int64_t kW1Items[] = {64, 256, 4096};

void PrintW1Table() {
  std::printf(
      "\nW1: sharded exchange, wire v2 vs v3 (8 shards, 64-byte values,\n"
      "single origin, cold recipient); control = frame - payload\n\n");
  std::printf("%7s %8s %10s %10s %10s %12s %12s %10s\n", "nodes", "m_items",
              "v2_frame", "v3_frame", "payload", "v2_control", "v3_control",
              "saved");
  for (size_t nodes : kW1Nodes) {
    for (int64_t m : kW1Items) {
      W1Row r = RunW1Row(nodes, m, /*value_len=*/64);
      std::printf("%7zu %8lld %10zu %10zu %10zu %12zu %12zu %9.1f%%\n",
                  r.nodes, static_cast<long long>(r.m), r.v2_frame, r.v3_frame,
                  r.payload, r.v2_control, r.v3_control,
                  r.control_reduction_pct);
    }
  }
  std::printf(
      "\nshape check: the reduction grows with the replica count (dense\n"
      "IVVs cost one varint per node; deltas cost one pair per WRITER).\n");
}

void PrintW1Json() {
  std::printf("{\n  \"w1_rows\": [\n");
  bool first = true;
  for (size_t nodes : kW1Nodes) {
    for (int64_t m : kW1Items) {
      W1Row r = RunW1Row(nodes, m, /*value_len=*/64);
      std::printf(
          "%s    {\"nodes\": %zu, \"m_items\": %lld, \"value_len\": %zu, "
          "\"v2_frame_bytes\": %zu, \"v3_frame_bytes\": %zu, "
          "\"payload_bytes\": %zu, \"v2_control_bytes\": %zu, "
          "\"v3_control_bytes\": %zu, \"control_reduction_pct\": %.2f}",
          first ? "" : ",\n", r.nodes, static_cast<long long>(r.m),
          r.value_len, r.v2_frame, r.v3_frame, r.payload, r.v2_control,
          r.v3_control, r.control_reduction_pct);
      first = false;
    }
  }
  std::printf("\n  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      PrintW1Json();
      return 0;
    }
  }

  std::printf(
      "E9: encoded propagation-message size; metadata must be constant "
      "per shipped item (§6)\n\n");
  std::printf("%8s %10s %7s %12s %12s %12s %14s %12s\n", "m_items",
              "value_len", "nodes", "frame_bytes", "payload", "metadata",
              "meta/item", "compressed");
  for (int64_t m : {1, 16, 256, 4096}) {
    RunRow(m, /*value_len=*/64, /*num_nodes=*/4);
  }
  std::printf("\n");
  for (size_t value_len : {0ull, 64ull, 1024ull}) {
    RunRow(/*m=*/256, value_len, /*num_nodes=*/4);
  }
  std::printf("\n");
  for (size_t nodes : {2ull, 8ull, 32ull}) {
    RunRow(/*m=*/256, /*value_len=*/64, nodes);
  }
  std::printf(
      "\nshape check: metadata/item is flat in m and in value size, and\n"
      "grows only with the replica count (one IVV entry and potentially\n"
      "one log record per origin node).\n");

  // The no-op exchange: a "you-are-current" reply is a handful of bytes,
  // independent of everything.
  Replica a(0, 4), b(1, 4);
  for (int i = 0; i < 1000; ++i) (void)b.Update("k" + std::to_string(i), "v");
  (void)epidemic::PropagateOnce(b, a);
  PropagationResponse current = b.HandlePropagationRequest(
      a.BuildPropagationRequest());
  std::printf("\n'you-are-current' reply over a 1000-item database: %zu bytes\n",
              epidemic::net::Encode(epidemic::net::Message(current)).size());

  PrintW1Table();
  return 0;
}
