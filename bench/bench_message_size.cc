// Experiment E9 (DESIGN.md): wire-size accounting through the REAL codec.
//
// §6: the propagation message contains the shipped data items "plus a
// constant amount of information per data item" (the IVV and one log
// record per origin that updated it). This table encodes actual
// PropagationResponse messages for growing m and measures bytes/item,
// separating metadata from payload.

#include <cstdio>
#include <string>

#include "common/compress.h"
#include "core/replica.h"
#include "net/codec.h"

namespace {

using epidemic::PropagationRequest;
using epidemic::PropagationResponse;
using epidemic::Replica;

void RunRow(int64_t m, size_t value_len, size_t num_nodes) {
  Replica src(0, num_nodes), dst(1, num_nodes);
  for (int64_t i = 0; i < m; ++i) {
    (void)src.Update("item" + std::to_string(i),
                     std::string(value_len, 'x'));
  }
  PropagationRequest req = dst.BuildPropagationRequest();
  PropagationResponse resp = src.HandlePropagationRequest(req);

  const std::string frame = epidemic::net::Encode(epidemic::net::Message(resp));
  // Payload bytes: the raw values. Everything else is protocol metadata.
  size_t payload = 0;
  for (const auto& item : resp.items) payload += item.value.size();
  const size_t metadata = frame.size() - payload;
  // What the TCP transport would actually ship on a dial-up link.
  const size_t compressed = epidemic::Compress(frame).size();

  std::printf("%8lld %10zu %7zu %12zu %12zu %12zu %14.1f %12zu\n",
              static_cast<long long>(m), value_len, num_nodes, frame.size(),
              payload, metadata,
              m > 0 ? static_cast<double>(metadata) / static_cast<double>(m)
                    : 0.0,
              compressed);
}

}  // namespace

int main() {
  std::printf(
      "E9: encoded propagation-message size; metadata must be constant "
      "per shipped item (§6)\n\n");
  std::printf("%8s %10s %7s %12s %12s %12s %14s %12s\n", "m_items",
              "value_len", "nodes", "frame_bytes", "payload", "metadata",
              "meta/item", "compressed");
  for (int64_t m : {1, 16, 256, 4096}) {
    RunRow(m, /*value_len=*/64, /*num_nodes=*/4);
  }
  std::printf("\n");
  for (size_t value_len : {0ull, 64ull, 1024ull}) {
    RunRow(/*m=*/256, value_len, /*num_nodes=*/4);
  }
  std::printf("\n");
  for (size_t nodes : {2ull, 8ull, 32ull}) {
    RunRow(/*m=*/256, /*value_len=*/64, nodes);
  }
  std::printf(
      "\nshape check: metadata/item is flat in m and in value size, and\n"
      "grows only with the replica count (one IVV entry and potentially\n"
      "one log record per origin node).\n");

  // The no-op exchange: a "you-are-current" reply is a handful of bytes,
  // independent of everything.
  Replica a(0, 4), b(1, 4);
  for (int i = 0; i < 1000; ++i) (void)b.Update("k" + std::to_string(i), "v");
  (void)epidemic::PropagateOnce(b, a);
  PropagationResponse current = b.HandlePropagationRequest(
      a.BuildPropagationRequest());
  std::printf("\n'you-are-current' reply over a 1000-item database: %zu bytes\n",
              epidemic::net::Encode(epidemic::net::Message(current)).size());
  return 0;
}
