// epidemicd — a standalone replica server daemon.
//
// Runs one node of a replicated database over TCP, with background
// anti-entropy against its configured peers:
//
//   epidemicd --id=0 --nodes=3 --port=7000
//             --peer=1:7001 --peer=2:7002 --ae-interval-ms=500
//             [--shards=16] [--ae-workers=4]
//             [--data-dir=/var/lib/epidemic/node0]
//
// With --data-dir the node is durable: all inputs are write-ahead
// journaled, state is recovered on startup, and a snapshot checkpoint is
// taken on clean shutdown.
//
// All endpoints are 127.0.0.1 (this daemon is a lab/replication endpoint,
// not a hardened public service). Stop with SIGINT/SIGTERM.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/tcp_transport.h"
#include "server/replica_server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

struct Options {
  int id = -1;
  int nodes = -1;
  int port = 0;
  long ae_interval_ms = 500;
  int shards = 16;      // every node of a cluster must agree
  int ae_workers = 0;   // shard-owner worker threads (0 = callers inline)
  bool conn_pool = true;  // persistent peer connections (off = legacy
                          // connect-per-call, the cluster bench baseline)
  std::string data_dir;  // empty = in-memory
  std::vector<std::pair<int, int>> peers;  // (id, port)
};

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --id=<node id> --nodes=<count> --port=<port>\n"
               "          [--peer=<id>:<port>]... [--ae-interval-ms=<ms>]\n"
               "          [--shards=<count>] [--ae-workers=<threads>]\n"
               "          [--data-dir=<dir>] [--no-conn-pool]\n",
               argv0);
}

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--id=", 5) == 0) {
      opts->id = std::atoi(arg + 5);
    } else if (std::strncmp(arg, "--nodes=", 8) == 0) {
      opts->nodes = std::atoi(arg + 8);
    } else if (std::strncmp(arg, "--port=", 7) == 0) {
      opts->port = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--ae-interval-ms=", 17) == 0) {
      opts->ae_interval_ms = std::atol(arg + 17);
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      opts->shards = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--ae-workers=", 13) == 0) {
      opts->ae_workers = std::atoi(arg + 13);
    } else if (std::strcmp(arg, "--no-conn-pool") == 0) {
      opts->conn_pool = false;
    } else if (std::strncmp(arg, "--data-dir=", 11) == 0) {
      opts->data_dir = arg + 11;
    } else if (std::strncmp(arg, "--peer=", 7) == 0) {
      const char* spec = arg + 7;
      const char* colon = std::strchr(spec, ':');
      if (colon == nullptr) {
        std::fprintf(stderr, "bad --peer spec '%s' (want id:port)\n", spec);
        return false;
      }
      opts->peers.emplace_back(std::atoi(spec), std::atoi(colon + 1));
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg);
      return false;
    }
  }
  if (opts->id < 0 || opts->nodes < 2 || opts->id >= opts->nodes) {
    std::fprintf(stderr, "--id and --nodes are required (id < nodes)\n");
    return false;
  }
  if (opts->shards < 1 || opts->ae_workers < 0) {
    std::fprintf(stderr, "--shards must be >= 1, --ae-workers >= 0\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    Usage(argv[0]);
    return 2;
  }

  epidemic::net::TcpTransport::Options transport_opts;
  transport_opts.pool_connections = opts.conn_pool;
  epidemic::net::TcpTransport transport(static_cast<size_t>(opts.nodes),
                                        transport_opts);
  epidemic::server::ReplicaServer::Options server_opts;
  for (const auto& [peer_id, peer_port] : opts.peers) {
    if (peer_id < 0 || peer_id >= opts.nodes || peer_id == opts.id) {
      std::fprintf(stderr, "peer id %d out of range\n", peer_id);
      return 2;
    }
    transport.SetPeerPort(static_cast<epidemic::NodeId>(peer_id),
                          static_cast<uint16_t>(peer_port));
    server_opts.peers.push_back(static_cast<epidemic::NodeId>(peer_id));
  }
  server_opts.anti_entropy_interval_micros = opts.ae_interval_ms * 1000;
  server_opts.num_shards = static_cast<size_t>(opts.shards);
  server_opts.ae_workers = static_cast<size_t>(opts.ae_workers);

  std::unique_ptr<epidemic::server::ReplicaServer> server;
  if (opts.data_dir.empty()) {
    server = std::make_unique<epidemic::server::ReplicaServer>(
        static_cast<epidemic::NodeId>(opts.id),
        static_cast<size_t>(opts.nodes), &transport, server_opts);
  } else {
    auto durable = epidemic::JournaledShardedReplica::Open(
        opts.data_dir, static_cast<epidemic::NodeId>(opts.id),
        static_cast<size_t>(opts.nodes), static_cast<size_t>(opts.shards));
    if (!durable.ok()) {
      std::fprintf(stderr, "cannot open data dir: %s\n",
                   durable.status().ToString().c_str());
      return 1;
    }
    std::printf("epidemicd: recovered durable state from %s (%d shards)\n",
                opts.data_dir.c_str(), opts.shards);
    server = std::make_unique<epidemic::server::ReplicaServer>(
        std::move(*durable), &transport, server_opts);
  }
  epidemic::net::TcpServer listener(server.get());
  epidemic::Status started =
      listener.Start(static_cast<uint16_t>(opts.port));
  if (!started.ok()) {
    std::fprintf(stderr, "cannot listen: %s\n", started.ToString().c_str());
    return 1;
  }
  server->Start();
  std::printf("epidemicd: node %d/%d serving on 127.0.0.1:%u, "
              "anti-entropy every %ld ms against %zu peer(s)\n",
              opts.id, opts.nodes, listener.port(), opts.ae_interval_ms,
              server_opts.peers.size());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    // The accept loop and anti-entropy thread do the work; just idle.
    struct timespec ts = {0, 100 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }

  std::printf("epidemicd: shutting down (conflicts detected: %llu)\n",
              static_cast<unsigned long long>(server->conflicts_detected()));
  server->Stop();
  listener.Stop();
  if (server->is_durable()) {
    epidemic::Status cp = server->Checkpoint();
    if (!cp.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n",
                   cp.ToString().c_str());
    }
  }
  return 0;
}
