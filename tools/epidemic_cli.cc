// epidemic_cli — command-line client for an epidemicd server.
//
//   epidemic_cli --port=7000 put <item> <value>
//   epidemic_cli --port=7000 get <item>
//   epidemic_cli --port=7000 del <item>
//   epidemic_cli --port=7000 oobget <peer-id> <item>   # priority read
//
// `oobget` asks the contacted server to out-of-bound-fetch the item from
// the named peer (§5.2) before answering, so the reply is at least as
// fresh as that peer.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/tcp_transport.h"
#include "server/replica_server.h"

namespace {
void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port=<server port> <command> [args...]\n"
               "commands:\n"
               "  put <item> <value>\n"
               "  get <item>\n"
               "  del <item>\n"
               "  oobget <peer-id> <item>\n"
               "  scan [prefix]\n"
               "  stats\n"
               "  stats-reset         # read counters and zero them atomically\n"
               "  sync <peer-id>      # pull from peer now\n"
               "  checkpoint          # snapshot + truncate journal\n",
               argv0);
}
}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  int argi = 1;
  if (argi < argc && std::strncmp(argv[argi], "--port=", 7) == 0) {
    port = std::atoi(argv[argi] + 7);
    ++argi;
  }
  if (port <= 0 || argi >= argc) {
    Usage(argv[0]);
    return 2;
  }

  // The CLI talks to a single server; it occupies slot 0 of its transport.
  epidemic::net::TcpTransport transport(1);
  transport.SetPeerPort(0, static_cast<uint16_t>(port));
  epidemic::server::ReplicaClient client(&transport, 0);

  const std::string command = argv[argi++];
  if (command == "put" && argi + 1 < argc) {
    epidemic::Status s = client.Update(argv[argi], argv[argi + 1]);
    if (!s.ok()) {
      std::fprintf(stderr, "put failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("OK\n");
    return 0;
  }
  if (command == "get" && argi < argc) {
    auto v = client.Read(argv[argi]);
    if (!v.ok()) {
      std::fprintf(stderr, "get failed: %s\n", v.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", v->c_str());
    return 0;
  }
  if (command == "del" && argi < argc) {
    epidemic::Status s = client.Delete(argv[argi]);
    if (!s.ok()) {
      std::fprintf(stderr, "del failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("OK\n");
    return 0;
  }
  if (command == "oobget" && argi + 1 < argc) {
    int peer = std::atoi(argv[argi]);
    auto v = client.OobRead(static_cast<epidemic::NodeId>(peer),
                            argv[argi + 1]);
    if (!v.ok()) {
      std::fprintf(stderr, "oobget failed: %s\n",
                   v.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", v->c_str());
    return 0;
  }

  if (command == "scan") {
    const char* prefix = (argi < argc) ? argv[argi] : "";
    auto items = client.Scan(prefix);
    if (!items.ok()) {
      std::fprintf(stderr, "scan failed: %s\n",
                   items.status().ToString().c_str());
      return 1;
    }
    for (const auto& [name, value] : *items) {
      std::printf("%s\t%s\n", name.c_str(), value.c_str());
    }
    return 0;
  }
  if (command == "sync" && argi < argc) {
    epidemic::Status s = client.TriggerSync(
        static_cast<epidemic::NodeId>(std::atoi(argv[argi])));
    if (!s.ok()) {
      std::fprintf(stderr, "sync failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("OK\n");
    return 0;
  }
  if (command == "checkpoint") {
    epidemic::Status s = client.TriggerCheckpoint();
    if (!s.ok()) {
      std::fprintf(stderr, "checkpoint failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("OK\n");
    return 0;
  }
  if (command == "stats") {
    auto stats = client.Stats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", stats->c_str());
    return 0;
  }
  if (command == "stats-reset") {
    auto stats = client.ResetStats();
    if (!stats.ok()) {
      std::fprintf(stderr, "stats-reset failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", stats->c_str());
    return 0;
  }

  Usage(argv[0]);
  return 2;
}
