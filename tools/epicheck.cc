// epicheck — bounded exhaustive model checker for the propagation protocol.
//
//   epicheck --nodes 2 --items 2 --depth 8            # explore, expect clean
//   epicheck --nodes 3 --items 2 --depth 6 --shards 2 # sharded core + wire v3
//   epicheck --nodes 2 --items 2 --depth 6 --shards 2 --wire 2  # legacy v2
//   epicheck --nodes 2 --items 1 --depth 4 --mutate amnesia
//            --trace-out amnesia.trace                # seeded-defect self-test
//   epicheck --replay amnesia.trace                   # deterministic replay
//
// Explores every interleaving of the action alphabet (update, delete, sync,
// oob, pump, crash) up to --depth against the real Replica/ShardedReplica
// code, asserting the §4.1/§5.2 invariants, conflict soundness, version
// monotonicity and the quiescence criterion after every transition
// (DESIGN.md §9). Exit codes: 0 = clean, 1 = violation found (or reproduced
// under --replay), 2 = usage error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/action.h"
#include "check/checker.h"
#include "check/world.h"

namespace {

using epidemic::check::Action;
using epidemic::check::CheckerConfig;
using epidemic::check::CheckReport;
using epidemic::check::Mutation;
using epidemic::check::TraceFile;
using epidemic::check::WorldConfig;

void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --nodes <n>        replicas, 2..3 (default 2)\n"
      "  --items <N>        data items, 1..3 (default 2)\n"
      "  --depth <D>        max schedule length (default 8)\n"
      "  --shards <S>       shards per replica; >1 drives the sharded core\n"
      "                     through the real wire segments (default 1)\n"
      "  --wire <V>         wire format for the sharded path: 3 = v3 delta\n"
      "                     segments (default), 2 = legacy owned segments\n"
      "  --mutate <m>       seeded defect for checker self-test:\n"
      "                     none | amnesia | mute-conflicts | tamper-ivv\n"
      "  --actions <list>   comma list of optional actions to enable:\n"
      "                     oob,pump,crash,delete (default oob,pump,crash)\n"
      "  --trace-out <file> where to write the minimized violation trace\n"
      "  --replay <file>    replay a trace file instead of exploring\n",
      argv0);
}

bool ParseSize(const char* arg, size_t* out) {
  char* end = nullptr;
  unsigned long v = std::strtoul(arg, &end, 10);
  if (end == arg || *end != '\0') return false;
  *out = static_cast<size_t>(v);
  return true;
}

void PrintTrace(const TraceFile& trace) {
  std::printf("trace (%zu actions):\n", trace.actions.size());
  for (const Action& action : trace.actions) {
    std::printf("  %s\n", epidemic::check::FormatAction(action).c_str());
  }
}

int ReportResult(const CheckReport& report, const WorldConfig& world,
                 const std::string& trace_out, bool minimize) {
  std::printf("states explored:     %llu\n",
              static_cast<unsigned long long>(report.states_explored));
  std::printf("transitions checked: %llu\n",
              static_cast<unsigned long long>(report.transitions));
  std::printf("deduplicated:        %llu\n",
              static_cast<unsigned long long>(report.dedup_hits));
  if (!report.violation.has_value()) {
    std::printf("result: no violations\n");
    return 0;
  }

  std::printf("result: VIOLATION — %s\n",
              report.violation->description.c_str());
  std::vector<Action> trace = report.violation->trace;
  if (minimize) {
    trace = epidemic::check::MinimizeTrace(world, trace);
    std::printf("minimized from %zu to %zu actions\n",
                report.violation->trace.size(), trace.size());
  }
  TraceFile file;
  file.nodes = static_cast<uint32_t>(world.num_nodes);
  file.items = static_cast<uint32_t>(world.num_items);
  file.shards = static_cast<uint32_t>(world.num_shards);
  file.wire = static_cast<uint32_t>(world.wire_version);
  file.mutation = std::string(epidemic::check::MutationName(world.mutation));
  file.actions = trace;
  PrintTrace(file);
  if (!trace_out.empty()) {
    std::ofstream out(trace_out, std::ios::binary | std::ios::trunc);
    out << epidemic::check::EncodeTrace(file);
    if (!out.good()) {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   trace_out.c_str());
    } else {
      std::printf("trace written to %s\n", trace_out.c_str());
    }
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CheckerConfig config;
  config.with_oob = true;
  config.with_pump = true;
  config.with_crash = true;
  std::string trace_out;
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    std::string inline_value;
    bool has_inline = false;
    size_t eq = flag.find('=');
    if (eq != std::string::npos) {
      inline_value = flag.substr(eq + 1);
      flag = flag.substr(0, eq);
      has_inline = true;
    }
    // Accepts both "--flag value" and "--flag=value".
    auto value = [&]() -> const char* {
      if (has_inline) return inline_value.c_str();
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };

    bool ok = true;
    if (flag == "--nodes") {
      const char* v = value();
      ok = v != nullptr && ParseSize(v, &config.world.num_nodes);
    } else if (flag == "--items") {
      const char* v = value();
      ok = v != nullptr && ParseSize(v, &config.world.num_items);
    } else if (flag == "--depth") {
      const char* v = value();
      ok = v != nullptr && ParseSize(v, &config.max_depth);
    } else if (flag == "--shards") {
      const char* v = value();
      ok = v != nullptr && ParseSize(v, &config.world.num_shards);
    } else if (flag == "--wire") {
      const char* v = value();
      ok = v != nullptr && ParseSize(v, &config.world.wire_version);
    } else if (flag == "--mutate") {
      const char* v = value();
      if (v == nullptr) {
        ok = false;
      } else {
        auto m = epidemic::check::ParseMutation(v);
        if (!m.ok()) {
          std::fprintf(stderr, "%s\n", m.status().message().c_str());
          return 2;
        }
        config.world.mutation = *m;
      }
    } else if (flag == "--actions") {
      const char* v = value();
      if (v == nullptr) {
        ok = false;
      } else {
        config.with_oob = config.with_pump = config.with_crash = false;
        config.world.with_deletes = false;
        std::stringstream ss(v);
        std::string tok;
        while (std::getline(ss, tok, ',')) {
          if (tok == "oob") {
            config.with_oob = true;
          } else if (tok == "pump") {
            config.with_pump = true;
          } else if (tok == "crash") {
            config.with_crash = true;
          } else if (tok == "delete") {
            config.world.with_deletes = true;
          } else if (!tok.empty()) {
            std::fprintf(stderr, "unknown action '%s' in --actions\n",
                         tok.c_str());
            return 2;
          }
        }
      }
    } else if (flag == "--trace-out") {
      const char* v = value();
      ok = v != nullptr;
      if (ok) trace_out = v;
    } else if (flag == "--replay") {
      const char* v = value();
      ok = v != nullptr;
      if (ok) replay_path = v;
    } else {
      ok = false;
    }
    if (!ok) {
      Usage(argv[0]);
      return 2;
    }
  }

  if (!replay_path.empty()) {
    std::ifstream in(replay_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", replay_path.c_str());
      return 2;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    auto trace = epidemic::check::DecodeTrace(buf.str());
    if (!trace.ok()) {
      std::fprintf(stderr, "bad trace file: %s\n",
                   trace.status().message().c_str());
      return 2;
    }
    WorldConfig world;
    world.num_nodes = trace->nodes;
    world.num_items = trace->items;
    world.num_shards = trace->shards;
    world.wire_version = trace->wire;
    auto m = epidemic::check::ParseMutation(trace->mutation);
    if (!m.ok()) {
      std::fprintf(stderr, "bad trace file: %s\n",
                   m.status().message().c_str());
      return 2;
    }
    world.mutation = *m;
    std::printf("replaying %zu actions (nodes=%zu items=%zu shards=%zu "
                "wire=%zu mutate=%s)\n",
                trace->actions.size(), world.num_nodes, world.num_items,
                world.num_shards, world.wire_version,
                trace->mutation.c_str());
    CheckReport report =
        epidemic::check::ReplayTrace(world, trace->actions);
    return ReportResult(report, world, /*trace_out=*/"", /*minimize=*/false);
  }

  if (config.world.num_nodes < 2 || config.world.num_nodes > 4 ||
      config.world.num_items < 1 || config.world.num_items > 4 ||
      config.world.num_shards < 1 || config.max_depth < 1 ||
      config.world.wire_version < 2 || config.world.wire_version > 3) {
    Usage(argv[0]);
    return 2;
  }
  if (config.world.mutation == Mutation::kTamperIvv &&
      config.world.num_shards > 1) {
    std::fprintf(stderr,
                 "--mutate tamper-ivv requires --shards 1 (the tamper edits "
                 "the unsharded in-memory reply)\n");
    return 2;
  }

  std::printf("epicheck: nodes=%zu items=%zu depth=%zu shards=%zu "
              "wire=%zu mutate=%s\n",
              config.world.num_nodes, config.world.num_items,
              config.max_depth, config.world.num_shards,
              config.world.wire_version,
              std::string(epidemic::check::MutationName(config.world.mutation))
                  .c_str());
  CheckReport report = epidemic::check::RunCheck(config);
  return ReportResult(report, config.world, trace_out, /*minimize=*/true);
}
