#!/usr/bin/env python3
"""Protocol-level lint for the epidemic tree.

Catches hazards the compiler (even with -Wthread-safety) cannot see:

  wire-tag-duplicate    two entries of a wire enum share a numeric tag
                        (src/net/codec.h, src/core/wire.h)
  wire-tag-v3-range     tags 17-31 are reserved for wire v3: an enum entry
                        named *V3 must take a value in that range, and a
                        non-V3 entry must not (docs/PROTOCOL.md)
  unlogged-store-write  a mutation path in core/replica.cc obtains a
                        mutable item (store_.GetOrCreate) without a paired
                        AddLogRecord / DBVV bump in the same function
  doc-unknown-tag       docs/PROTOCOL.md, EXPERIMENTS.md or DESIGN.md
                        reference a wire tag number that does not exist in
                        net::MessageType
  unguarded-mutex       a raw std::mutex declaration (must use the
                        annotated epidemic::Mutex), or an epidemic::Mutex
                        member no GUARDED_BY/PT_GUARDED_BY/REQUIRES names
  shard-lock-outside-runtime
                        shard state synchronized with mutexes outside
                        src/runtime: a striped mutex array, a shard-named
                        mutex, or an indexed per-shard MutexLock. Shards
                        are single-writer — all access runs as tasks on
                        runtime::ShardScheduler (DESIGN.md §11)
  nondeterminism        protocol code (src/core, src/log, src/vv, src/sim,
                        src/runtime)
                        reads wall clocks, host entropy, C-library RNG
                        state, std <random> engines, or iterates/hashes by
                        pointer address — any of which would make epicheck's
                        state exploration and trace replay unsound
  serve-cache-discipline
                        the fan-out serve cache (DESIGN.md §14) publishes
                        frames to concurrent serves through shared_ptr: a
                        cached-frame slot or entry typed as a non-const
                        shared_ptr (mutable after publication), or an
                        InsertServeCache call with no MutationEpoch()
                        re-check nearby (a frame built across a mutation
                        could mix shard states from two epochs)
  stale-waiver          a NOLINT-PROTOCOL comment (or one of the rules it
                        names) that no longer suppresses any finding; stale
                        waivers must be deleted or narrowed, not waived

A finding can be waived with a same-function (unlogged-store-write) or
nearby-line comment:

    // NOLINT-PROTOCOL(<rule>): <reason>

The reason is mandatory: waivers are how exceptions to the protocol
discipline get documented. Every waiver must currently suppress at least
one finding — otherwise it is itself reported (stale-waiver).

Usage:
    protocol_lint.py                 # lint the whole repository
    protocol_lint.py FILE [FILE...]  # lint specific files (fixture/test
                                     # mode: wire-tag + mutex rules only)

Exit status: 0 when clean, 1 when any violation is reported, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

WAIVER_RE = re.compile(r"NOLINT-PROTOCOL\((?P<rules>[\w,\s-]+)\)\s*:\s*\S")

# Declaration of a raw standard mutex (any flavour). Template usages such
# as std::lock_guard<std::mutex> also match on purpose: they imply a raw
# mutex somewhere and bypass the annotated epidemic::Mutex.
STD_MUTEX_RE = re.compile(r"\bstd::(?:recursive_|shared_|timed_)*mutex\b")

# Declaration of an annotated mutex member/global:
#   Mutex mu_;   mutable Mutex mu;   epidemic::Mutex g_mu;
# and the striped-array form: std::unique_ptr<Mutex[]> shard_mu_;
EPI_MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:epidemic::)?Mutex\s+(?P<name>\w+)"
    r"(?:\s+\w+\([^;]*\))?\s*(?:;|=|\{)"  # optional ACQUIRED_BEFORE(...) etc.
)
EPI_MUTEX_ARRAY_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?std::unique_ptr<(?:epidemic::)?Mutex\[\]>\s+"
    r"(?P<name>\w+)\s*;"
)

ENUM_HEAD_RE = re.compile(r"^\s*enum\s+(?:class\s+|struct\s+)?(?P<name>\w+)")
ENUM_ENTRY_RE = re.compile(r"^\s*(?P<entry>k\w+)\s*(?:=\s*(?P<value>\d+))?\s*,?")

# "tag 14", "tags 14/15/16", "Tags 14-16", "tags 14–16" (en dash).
DOC_TAG_RE = re.compile(r"\btags?\s+(?P<spec>\d+(?:\s*[-–—/,]\s*\d+)*)", re.I)

FUNC_DEF_RE = re.compile(r"^[\w:<>,&*~\s]+\b(?P<name>\w+)::(?P<method>\w+)\s*\(")

MUTATING_STORE_RE = re.compile(r"\bstore_\.GetOrCreate\s*\(")
BOOKKEEPING_RE = re.compile(
    r"\bAddLogRecord\s*\(|\bdbvv_\.(?:Increment|AddDelta)\s*\("
)

# Sources of run-to-run nondeterminism banned from protocol code. The model
# checker replays snapshots of this code and hashes its canonical state; one
# wall-clock read or address-ordered iteration makes counterexample replay
# unsound. (pattern, explanation) — the first matching pattern per line wins.
NONDET_PATTERNS: list[tuple[re.Pattern[str], str]] = [
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device draws host entropy — thread a seeded "
     "epidemic::Rng through instead"),
    (re.compile(r"\b(?:std::)?(?:s?rand|[dlm]rand48)\s*\("),
     "C-library RNG reads hidden global state"),
    (re.compile(r"\bstd::(?:mt19937(?:_64)?|minstd_rand0?"
                r"|default_random_engine|ranlux\d+(?:_base)?|knuth_b)\b"),
     "std <random> engine — use the explicitly seeded epidemic::Rng"),
    (re.compile(r"\bstd::chrono::(?:system|steady|high_resolution)"
                r"_clock::now\b|\bgettimeofday\s*\(|\bclock_gettime\s*\("
                r"|\btime\s*\(\s*(?:nullptr|NULL|0)?\s*\)|\bRealClock\b"),
     "wall-clock read — protocol code must take time as an argument "
     "(the sim's virtual clock, a TimeMicros parameter)"),
    (re.compile(r"\bstd::hash<[^<>]*\*\s*>"),
     "hashing a pointer is address-dependent and varies run to run"),
    (re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)"
                r"<\s*(?:const\s+)?[\w:\s]+\*"),
     "container keyed on pointer addresses iterates in a run-dependent "
     "order"),
]

# Directories under src/ whose code feeds the model checker's state space
# and therefore must be schedule-deterministic. "runtime" is here because
# the scheduler's manual mode IS the checker's pump: a clock or entropy
# read in the task runtime would leak into every sharded exploration.
NONDET_DIRS = ("core", "log", "vv", "sim", "runtime")

# Striped shard locking, the shape the shard-owner scheduler retired
# (DESIGN.md §11): an array of mutexes indexed by shard, a mutex named
# after shards, or an indexed per-shard lock acquisition. Shard state is
# single-writer — access runs as tasks on runtime::ShardScheduler, and
# only src/runtime may implement the synchronization underneath.
SHARD_LOCK_PATTERNS: list[tuple[re.Pattern[str], str]] = [
    (re.compile(r"std::unique_ptr<\s*(?:epidemic::|std::)?[Mm]utex\s*"
                r"\[\s*\]\s*>|"
                r"std::(?:vector|array)<\s*(?:epidemic::|std::)?[Mm]utex\b"),
     "an array of mutexes is the striped-shard-lock shape the scheduler "
     "replaced"),
    (re.compile(r"^\s*(?:mutable\s+)?(?:epidemic::)?Mutex\s+"
                r"\w*[Ss]hard\w*\s*(?:;|=|\{)"),
     "a mutex named after shards guards shard state directly"),
    (re.compile(r"\bMutexLock\s+\w+\s*\(\s*[^)]*[Ss]hard[^)]*\["),
     "indexed acquisition of a per-shard mutex (striped-lock relapse)"),
]


# Serve-cache discipline (DESIGN.md §14). Cached reply frames are handed
# to concurrent serve paths by aliasing shared_ptr, so they must be
# immutable the moment they are published: any cached-frame slot or entry
# declared as shared_ptr<T> with a mutable T is a data race waiting for
# the first post-publication touch. And a frame is only sound to cache if
# the scheduler's mutation epoch provably did not advance while it was
# being built — epoch keying pins every in-between sample to one state.
SERVE_CACHE_MUTABLE_RE = re.compile(
    r"std::shared_ptr<\s*(?!const\b)[^<>]*Cached\w*Frame"
)
SERVE_CACHE_INSERT_RE = re.compile(r"\bInsertServeCache\s*\(")
# Definition/declaration lines ("void [Class::]InsertServeCache(...)")
# are not call sites.
SERVE_CACHE_DEF_RE = re.compile(r"\bvoid\b[^;{=]*\bInsertServeCache\s*\(")
SERVE_CACHE_EPOCH_RE = re.compile(
    r"MutationEpoch\s*\(\s*\)\s*==|==\s*[\w.>-]*\s*MutationEpoch\s*\(\s*\)"
)
SERVE_CACHE_EPOCH_WINDOW = 12


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.findings: list[str] = []
        # (path, 0-based line, rule) of every waiver rule that suppressed a
        # finding. Tracked per rule, not per line: a waiver naming several
        # rules is stale rule-by-rule, and one live rule must not carry its
        # dead neighbours.
        self.used_waivers: set[tuple[Path, int, str]] = set()

    def report(self, path: Path, line: int, rule: str, message: str) -> None:
        try:
            shown = path.relative_to(self.root)
        except ValueError:
            shown = path
        self.findings.append(f"{shown}:{line}: [{rule}] {message}")

    # -- waivers ----------------------------------------------------------

    def waived(self, path: Path, lines: list[str], idx: int,
               rule: str) -> bool:
        """True if line idx (0-based) or the contiguous comment block right
        above it carries a NOLINT-PROTOCOL waiver naming `rule`. Matching
        waivers are recorded as used for stale-waiver detection."""
        probe = idx
        while probe >= 0:
            m = WAIVER_RE.search(lines[probe])
            if m:
                if rule in [r.strip() for r in m.group("rules").split(",")]:
                    self.used_waivers.add((path, probe, rule))
                    return True
                return False
            if probe < idx and not lines[probe].lstrip().startswith("//"):
                return False
            probe -= 1
        return False

    # -- rule: wire-tag-duplicate ----------------------------------------

    def check_wire_tags(self, path: Path) -> dict[str, set[int]]:
        """Reports duplicated tag values; returns {enum name: {values}}."""
        enums: dict[str, set[int]] = {}
        if not path.exists():
            return enums
        lines = path.read_text().splitlines()
        current = None
        seen: dict[int, str] = {}
        next_implicit = 0
        for i, line in enumerate(lines):
            head = ENUM_HEAD_RE.match(line)
            if head:
                current = head.group("name")
                enums[current] = set()
                seen = {}
                next_implicit = 0
                continue
            if current is None:
                continue
            if "}" in line:
                current = None
                continue
            entry = ENUM_ENTRY_RE.match(line)
            if not entry:
                continue
            value = (
                int(entry.group("value"))
                if entry.group("value") is not None
                else next_implicit
            )
            next_implicit = value + 1
            name = entry.group("entry")
            if value in seen and not self.waived(path, lines, i,
                                                 "wire-tag-duplicate"):
                self.report(
                    path, i + 1, "wire-tag-duplicate",
                    f"{current}::{name} reuses tag {value} already taken by "
                    f"{seen[value]} — wire tags are append-only and must be "
                    "unique (CONTRIBUTING.md)",
                )
            seen.setdefault(value, name)
            enums[current].add(value)

            # -- rule: wire-tag-v3-range ---------------------------------
            # docs/PROTOCOL.md reserves tags 17-31 for the v3 wire format:
            # the range is what lets a v2 decoder classify an unseen v3 tag
            # as "newer format" rather than garbage. Enforce it both ways.
            in_v3_range = 17 <= value <= 31
            is_v3_name = "V3" in name
            if (in_v3_range != is_v3_name and
                    not self.waived(path, lines, i, "wire-tag-v3-range")):
                if is_v3_name:
                    why = (f"{current}::{name} is a v3 entry but takes tag "
                           f"{value}, outside the reserved v3 range 17-31")
                else:
                    why = (f"{current}::{name} takes tag {value} inside the "
                           "range 17-31, which is reserved for wire-v3 "
                           "entries (suffix V3)")
                self.report(path, i + 1, "wire-tag-v3-range",
                            why + " (docs/PROTOCOL.md)")
        return enums

    # -- rule: unlogged-store-write --------------------------------------

    def check_store_mutations(self, path: Path) -> None:
        if not path.exists():
            return
        text = path.read_text()
        lines = text.splitlines()
        # Walk top-level function definitions by brace matching.
        i = 0
        while i < len(lines):
            m = FUNC_DEF_RE.match(lines[i])
            if not m:
                i += 1
                continue
            # Find the opening brace of the body, then its matching close.
            depth = 0
            start = i
            opened = False
            j = i
            while j < len(lines):
                depth += lines[j].count("{") - lines[j].count("}")
                if "{" in lines[j]:
                    opened = True
                if opened and depth == 0:
                    break
                j += 1
            body = "\n".join(lines[start : j + 1])
            func = f"{m.group('name')}::{m.group('method')}"
            if MUTATING_STORE_RE.search(body):
                in_body_re = re.compile(
                    r"NOLINT-PROTOCOL\([^)]*unlogged-store-write[^)]*\)\s*:\s*\S"
                )
                in_body = None
                for bi in range(start, j + 1):
                    if bi < len(lines) and in_body_re.search(lines[bi]):
                        in_body = bi
                        break
                if in_body is not None:
                    self.used_waivers.add((path, in_body,
                                           "unlogged-store-write"))
                if (not BOOKKEEPING_RE.search(body) and in_body is None
                        and not self.waived(path, lines, start,
                                            "unlogged-store-write")):
                    self.report(
                        path, start + 1, "unlogged-store-write",
                        f"{func} mutates the item store "
                        "(store_.GetOrCreate) without a paired AddLogRecord "
                        "or DBVV bump — the §4.1 invariant "
                        "V_i[l] == Σ_x v_i(x)[l] breaks if the copy changes "
                        "without bookkeeping",
                    )
            i = j + 1

    # -- rule: doc-unknown-tag -------------------------------------------

    def check_doc_tags(self, doc: Path, known: set[int]) -> None:
        if not doc.exists():
            return
        for i, line in enumerate(doc.read_text().splitlines()):
            for m in DOC_TAG_RE.finditer(line):
                spec = m.group("spec")
                nums = [int(x) for x in re.split(r"[-–—/,]", spec) if x.strip()]
                referenced: set[int] = set()
                if len(nums) == 2 and ("-" in spec or "–" in spec or "—" in spec):
                    referenced.update(range(nums[0], nums[1] + 1))
                else:
                    referenced.update(nums)
                for tag in sorted(referenced):
                    if tag not in known:
                        self.report(
                            doc, i + 1, "doc-unknown-tag",
                            f"references wire tag {tag}, which does not "
                            "exist in net::MessageType — fix the doc or add "
                            "the tag",
                        )

    # -- rule: unguarded-mutex -------------------------------------------

    def check_mutexes(self, path: Path) -> None:
        if not path.exists():
            return
        text = path.read_text()
        lines = text.splitlines()
        for i, line in enumerate(lines):
            code = line.split("//", 1)[0]
            if STD_MUTEX_RE.search(code):
                if not self.waived(path, lines, i, "unguarded-mutex"):
                    self.report(
                        path, i + 1, "unguarded-mutex",
                        "raw std::mutex — use the annotated epidemic::Mutex "
                        "and MutexLock from common/thread_annotations.h so "
                        "-Wthread-safety can check the lock discipline",
                    )
                continue
            decl = EPI_MUTEX_DECL_RE.match(code) or EPI_MUTEX_ARRAY_DECL_RE.match(
                code
            )
            if decl:
                name = decl.group("name")
                guarded = re.search(
                    r"\b(?:PT_)?GUARDED_BY\(\s*" + re.escape(name) + r"\b",
                    text,
                ) or re.search(
                    r"\bREQUIRES(?:_SHARED)?\(\s*" + re.escape(name) + r"\b",
                    text,
                )
                if not guarded and not self.waived(path, lines, i,
                                                   "unguarded-mutex"):
                    self.report(
                        path, i + 1, "unguarded-mutex",
                        f"mutex '{name}' guards nothing: no GUARDED_BY/"
                        "PT_GUARDED_BY/REQUIRES in this file names it — "
                        "annotate what it protects, or waive with "
                        "NOLINT-PROTOCOL(unguarded-mutex): <reason>",
                    )

    # -- rule: shard-lock-outside-runtime --------------------------------

    def check_shard_locks(self, path: Path) -> None:
        if not path.exists():
            return
        lines = path.read_text().splitlines()
        for i, line in enumerate(lines):
            code = line.split("//", 1)[0]
            for pattern, why in SHARD_LOCK_PATTERNS:
                if not pattern.search(code):
                    continue
                if not self.waived(path, lines, i,
                                   "shard-lock-outside-runtime"):
                    self.report(
                        path, i + 1, "shard-lock-outside-runtime",
                        f"{why} — shard state is single-writer: route the "
                        "access through a runtime::ShardScheduler task "
                        "(DESIGN.md §11); only src/runtime implements shard "
                        "synchronization",
                    )
                break  # one finding per line

    # -- rule: serve-cache-discipline ------------------------------------

    def check_serve_cache(self, path: Path) -> None:
        if not path.exists():
            return
        lines = path.read_text().splitlines()
        for i, line in enumerate(lines):
            code = line.split("//", 1)[0]
            if SERVE_CACHE_MUTABLE_RE.search(code):
                if not self.waived(path, lines, i, "serve-cache-discipline"):
                    self.report(
                        path, i + 1, "serve-cache-discipline",
                        "cached serve frame held through a non-const "
                        "shared_ptr — a published frame is read by "
                        "concurrent serves and must be immutable: type the "
                        "slot/entry std::shared_ptr<const ...> and finish "
                        "building before publishing (DESIGN.md §14)",
                    )
                continue
            if (SERVE_CACHE_INSERT_RE.search(code)
                    and not SERVE_CACHE_DEF_RE.search(code)):
                lo = max(0, i - SERVE_CACHE_EPOCH_WINDOW)
                window = [ln.split("//", 1)[0] for ln in lines[lo:i + 1]]
                if any(SERVE_CACHE_EPOCH_RE.search(w) for w in window):
                    continue
                if not self.waived(path, lines, i, "serve-cache-discipline"):
                    self.report(
                        path, i + 1, "serve-cache-discipline",
                        "InsertServeCache call with no MutationEpoch() "
                        "equality re-check in the preceding "
                        f"{SERVE_CACHE_EPOCH_WINDOW} lines — a frame built "
                        "while a mutation landed can mix shard states from "
                        "two epochs; sample the epoch before building and "
                        "insert only if it is unchanged (DESIGN.md §14)",
                    )

    # -- rule: nondeterminism --------------------------------------------

    def check_nondeterminism(self, path: Path) -> None:
        if not path.exists():
            return
        lines = path.read_text().splitlines()
        for i, line in enumerate(lines):
            code = line.split("//", 1)[0]
            for pattern, why in NONDET_PATTERNS:
                if not pattern.search(code):
                    continue
                if not self.waived(path, lines, i, "nondeterminism"):
                    self.report(
                        path, i + 1, "nondeterminism",
                        f"{why} — protocol code must be deterministic so "
                        "epicheck's state hashing and trace replay stay "
                        "sound; waive with NOLINT-PROTOCOL(nondeterminism): "
                        "<reason> if the value provably never reaches "
                        "protocol state",
                    )
                break  # one finding per line

    # -- rule: stale-waiver ----------------------------------------------

    def check_stale_waivers(self, paths: list[Path]) -> None:
        """Must run after every other check: reports waiver rules that
        suppressed nothing. Checked per rule — a waiver naming several rules
        only stays if *every* named rule still fires; otherwise the dead
        rules are reported individually. Deliberately unwaivable — a stale
        waiver is dead documentation and gets deleted (or narrowed), not
        re-waived."""
        skip = self.root / "src" / "common" / "thread_annotations.h"
        for path in sorted(set(paths)):
            if path == skip or not path.exists():
                continue
            lines = path.read_text().splitlines()
            for i, line in enumerate(lines):
                m = WAIVER_RE.search(line)
                if not m:
                    continue
                rules = [r.strip() for r in m.group("rules").split(",")]
                dead = [r for r in rules
                        if (path, i, r) not in self.used_waivers]
                if not dead:
                    continue
                if len(dead) == len(rules):
                    self.report(
                        path, i + 1, "stale-waiver",
                        f"NOLINT-PROTOCOL({', '.join(rules)}) no longer "
                        "suppresses any finding — the waived code is gone or "
                        "the rule no longer fires; delete the waiver",
                    )
                else:
                    self.report(
                        path, i + 1, "stale-waiver",
                        f"NOLINT-PROTOCOL({', '.join(rules)}) names "
                        f"rule(s) that no longer fire here: {', '.join(dead)}"
                        " — narrow the waiver to the rules it still "
                        "suppresses",
                    )

    # -- drivers ----------------------------------------------------------

    def lint_repo(self) -> None:
        codec = self.root / "src" / "net" / "codec.h"
        wire = self.root / "src" / "core" / "wire.h"
        enums = self.check_wire_tags(codec)
        self.check_wire_tags(wire)
        known = enums.get("MessageType", set())
        self.check_store_mutations(self.root / "src" / "core" / "replica.cc")
        for doc in ("docs/PROTOCOL.md", "EXPERIMENTS.md", "DESIGN.md"):
            self.check_doc_tags(self.root / doc, known)
        skip = self.root / "src" / "common" / "thread_annotations.h"
        sources = sorted((self.root / "src").rglob("*.h")) + sorted(
            (self.root / "src").rglob("*.cc")
        )
        runtime_dir = self.root / "src" / "runtime"
        for path in sources:
            if path == skip:
                continue
            self.check_mutexes(path)
            self.check_serve_cache(path)
            if runtime_dir not in path.parents:
                self.check_shard_locks(path)
        for sub in NONDET_DIRS:
            for path in sorted((self.root / "src" / sub).rglob("*.h")) + sorted(
                (self.root / "src" / sub).rglob("*.cc")
            ):
                self.check_nondeterminism(path)
        self.check_stale_waivers(sources)

    def lint_files(self, files: list[Path]) -> None:
        for path in files:
            if not path.exists():
                print(f"error: no such file: {path}", file=sys.stderr)
                sys.exit(2)
            self.check_wire_tags(path)
            if path.suffix in (".h", ".cc"):
                self.check_mutexes(path)
                self.check_serve_cache(path)
                self.check_shard_locks(path)
                self.check_nondeterminism(path)
            if path.name == "replica.cc":
                self.check_store_mutations(path)
        self.check_stale_waivers(files)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)",
    )
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="specific files to lint instead of the whole repository",
    )
    args = parser.parse_args()

    linter = Linter(args.root.resolve())
    if args.files:
        linter.lint_files(args.files)
    else:
        linter.lint_repo()

    for finding in linter.findings:
        print(finding)
    if linter.findings:
        print(f"protocol_lint: {len(linter.findings)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
