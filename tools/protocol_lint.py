#!/usr/bin/env python3
"""Protocol-level lint for the epidemic tree.

Catches hazards the compiler (even with -Wthread-safety) cannot see:

  wire-tag-duplicate    two entries of a wire enum share a numeric tag
                        (src/net/codec.h, src/core/wire.h)
  unlogged-store-write  a mutation path in core/replica.cc obtains a
                        mutable item (store_.GetOrCreate) without a paired
                        AddLogRecord / DBVV bump in the same function
  doc-unknown-tag       docs/PROTOCOL.md, EXPERIMENTS.md or DESIGN.md
                        reference a wire tag number that does not exist in
                        net::MessageType
  unguarded-mutex       a raw std::mutex declaration (must use the
                        annotated epidemic::Mutex), or an epidemic::Mutex
                        member no GUARDED_BY/PT_GUARDED_BY/REQUIRES names

A finding can be waived with a same-function (unlogged-store-write) or
nearby-line comment:

    // NOLINT-PROTOCOL(<rule>): <reason>

The reason is mandatory: waivers are how exceptions to the protocol
discipline get documented.

Usage:
    protocol_lint.py                 # lint the whole repository
    protocol_lint.py FILE [FILE...]  # lint specific files (fixture/test
                                     # mode: wire-tag + mutex rules only)

Exit status: 0 when clean, 1 when any violation is reported, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

WAIVER_RE = re.compile(r"NOLINT-PROTOCOL\((?P<rules>[\w,\s-]+)\)\s*:\s*\S")

# Declaration of a raw standard mutex (any flavour). Template usages such
# as std::lock_guard<std::mutex> also match on purpose: they imply a raw
# mutex somewhere and bypass the annotated epidemic::Mutex.
STD_MUTEX_RE = re.compile(r"\bstd::(?:recursive_|shared_|timed_)*mutex\b")

# Declaration of an annotated mutex member/global:
#   Mutex mu_;   mutable Mutex mu;   epidemic::Mutex g_mu;
# and the striped-array form: std::unique_ptr<Mutex[]> shard_mu_;
EPI_MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:epidemic::)?Mutex\s+(?P<name>\w+)"
    r"(?:\s+\w+\([^;]*\))?\s*(?:;|=|\{)"  # optional ACQUIRED_BEFORE(...) etc.
)
EPI_MUTEX_ARRAY_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?std::unique_ptr<(?:epidemic::)?Mutex\[\]>\s+"
    r"(?P<name>\w+)\s*;"
)

ENUM_HEAD_RE = re.compile(r"^\s*enum\s+(?:class\s+|struct\s+)?(?P<name>\w+)")
ENUM_ENTRY_RE = re.compile(r"^\s*(?P<entry>k\w+)\s*(?:=\s*(?P<value>\d+))?\s*,?")

# "tag 14", "tags 14/15/16", "Tags 14-16", "tags 14–16" (en dash).
DOC_TAG_RE = re.compile(r"\btags?\s+(?P<spec>\d+(?:\s*[-–—/,]\s*\d+)*)", re.I)

FUNC_DEF_RE = re.compile(r"^[\w:<>,&*~\s]+\b(?P<name>\w+)::(?P<method>\w+)\s*\(")

MUTATING_STORE_RE = re.compile(r"\bstore_\.GetOrCreate\s*\(")
BOOKKEEPING_RE = re.compile(
    r"\bAddLogRecord\s*\(|\bdbvv_\.(?:Increment|AddDelta)\s*\("
)


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.findings: list[str] = []

    def report(self, path: Path, line: int, rule: str, message: str) -> None:
        try:
            shown = path.relative_to(self.root)
        except ValueError:
            shown = path
        self.findings.append(f"{shown}:{line}: [{rule}] {message}")

    # -- waivers ----------------------------------------------------------

    @staticmethod
    def waived(lines: list[str], idx: int, rule: str) -> bool:
        """True if line idx (0-based) or the contiguous comment block right
        above it carries a NOLINT-PROTOCOL waiver naming `rule`."""
        probe = idx
        while probe >= 0:
            m = WAIVER_RE.search(lines[probe])
            if m:
                return rule in [r.strip() for r in m.group("rules").split(",")]
            if probe < idx and not lines[probe].lstrip().startswith("//"):
                return False
            probe -= 1
        return False

    # -- rule: wire-tag-duplicate ----------------------------------------

    def check_wire_tags(self, path: Path) -> dict[str, set[int]]:
        """Reports duplicated tag values; returns {enum name: {values}}."""
        enums: dict[str, set[int]] = {}
        if not path.exists():
            return enums
        lines = path.read_text().splitlines()
        current = None
        seen: dict[int, str] = {}
        next_implicit = 0
        for i, line in enumerate(lines):
            head = ENUM_HEAD_RE.match(line)
            if head:
                current = head.group("name")
                enums[current] = set()
                seen = {}
                next_implicit = 0
                continue
            if current is None:
                continue
            if "}" in line:
                current = None
                continue
            entry = ENUM_ENTRY_RE.match(line)
            if not entry:
                continue
            value = (
                int(entry.group("value"))
                if entry.group("value") is not None
                else next_implicit
            )
            next_implicit = value + 1
            name = entry.group("entry")
            if value in seen and not self.waived(lines, i, "wire-tag-duplicate"):
                self.report(
                    path, i + 1, "wire-tag-duplicate",
                    f"{current}::{name} reuses tag {value} already taken by "
                    f"{seen[value]} — wire tags are append-only and must be "
                    "unique (CONTRIBUTING.md)",
                )
            seen.setdefault(value, name)
            enums[current].add(value)
        return enums

    # -- rule: unlogged-store-write --------------------------------------

    def check_store_mutations(self, path: Path) -> None:
        if not path.exists():
            return
        text = path.read_text()
        lines = text.splitlines()
        # Walk top-level function definitions by brace matching.
        i = 0
        while i < len(lines):
            m = FUNC_DEF_RE.match(lines[i])
            if not m:
                i += 1
                continue
            # Find the opening brace of the body, then its matching close.
            depth = 0
            start = i
            opened = False
            j = i
            while j < len(lines):
                depth += lines[j].count("{") - lines[j].count("}")
                if "{" in lines[j]:
                    opened = True
                if opened and depth == 0:
                    break
                j += 1
            body = "\n".join(lines[start : j + 1])
            func = f"{m.group('name')}::{m.group('method')}"
            if MUTATING_STORE_RE.search(body):
                in_body = re.search(
                    r"NOLINT-PROTOCOL\([^)]*unlogged-store-write[^)]*\)\s*:\s*\S",
                    body,
                )
                if (not BOOKKEEPING_RE.search(body) and not in_body
                        and not self.waived(lines, start,
                                            "unlogged-store-write")):
                    self.report(
                        path, start + 1, "unlogged-store-write",
                        f"{func} mutates the item store "
                        "(store_.GetOrCreate) without a paired AddLogRecord "
                        "or DBVV bump — the §4.1 invariant "
                        "V_i[l] == Σ_x v_i(x)[l] breaks if the copy changes "
                        "without bookkeeping",
                    )
            i = j + 1

    # -- rule: doc-unknown-tag -------------------------------------------

    def check_doc_tags(self, doc: Path, known: set[int]) -> None:
        if not doc.exists():
            return
        for i, line in enumerate(doc.read_text().splitlines()):
            for m in DOC_TAG_RE.finditer(line):
                spec = m.group("spec")
                nums = [int(x) for x in re.split(r"[-–—/,]", spec) if x.strip()]
                referenced: set[int] = set()
                if len(nums) == 2 and ("-" in spec or "–" in spec or "—" in spec):
                    referenced.update(range(nums[0], nums[1] + 1))
                else:
                    referenced.update(nums)
                for tag in sorted(referenced):
                    if tag not in known:
                        self.report(
                            doc, i + 1, "doc-unknown-tag",
                            f"references wire tag {tag}, which does not "
                            "exist in net::MessageType — fix the doc or add "
                            "the tag",
                        )

    # -- rule: unguarded-mutex -------------------------------------------

    def check_mutexes(self, path: Path) -> None:
        if not path.exists():
            return
        text = path.read_text()
        lines = text.splitlines()
        for i, line in enumerate(lines):
            code = line.split("//", 1)[0]
            if STD_MUTEX_RE.search(code):
                if not self.waived(lines, i, "unguarded-mutex"):
                    self.report(
                        path, i + 1, "unguarded-mutex",
                        "raw std::mutex — use the annotated epidemic::Mutex "
                        "and MutexLock from common/thread_annotations.h so "
                        "-Wthread-safety can check the lock discipline",
                    )
                continue
            decl = EPI_MUTEX_DECL_RE.match(code) or EPI_MUTEX_ARRAY_DECL_RE.match(
                code
            )
            if decl:
                name = decl.group("name")
                guarded = re.search(
                    r"\b(?:PT_)?GUARDED_BY\(\s*" + re.escape(name) + r"\b",
                    text,
                ) or re.search(
                    r"\bREQUIRES(?:_SHARED)?\(\s*" + re.escape(name) + r"\b",
                    text,
                )
                if not guarded and not self.waived(lines, i, "unguarded-mutex"):
                    self.report(
                        path, i + 1, "unguarded-mutex",
                        f"mutex '{name}' guards nothing: no GUARDED_BY/"
                        "PT_GUARDED_BY/REQUIRES in this file names it — "
                        "annotate what it protects, or waive with "
                        "NOLINT-PROTOCOL(unguarded-mutex): <reason>",
                    )

    # -- drivers ----------------------------------------------------------

    def lint_repo(self) -> None:
        codec = self.root / "src" / "net" / "codec.h"
        wire = self.root / "src" / "core" / "wire.h"
        enums = self.check_wire_tags(codec)
        self.check_wire_tags(wire)
        known = enums.get("MessageType", set())
        self.check_store_mutations(self.root / "src" / "core" / "replica.cc")
        for doc in ("docs/PROTOCOL.md", "EXPERIMENTS.md", "DESIGN.md"):
            self.check_doc_tags(self.root / doc, known)
        skip = self.root / "src" / "common" / "thread_annotations.h"
        for path in sorted((self.root / "src").rglob("*.h")) + sorted(
            (self.root / "src").rglob("*.cc")
        ):
            if path == skip:
                continue
            self.check_mutexes(path)

    def lint_files(self, files: list[Path]) -> None:
        for path in files:
            if not path.exists():
                print(f"error: no such file: {path}", file=sys.stderr)
                sys.exit(2)
            self.check_wire_tags(path)
            if path.suffix in (".h", ".cc"):
                self.check_mutexes(path)
            if path.name == "replica.cc":
                self.check_store_mutations(path)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)",
    )
    parser.add_argument(
        "files",
        nargs="*",
        type=Path,
        help="specific files to lint instead of the whole repository",
    )
    args = parser.parse_args()

    linter = Linter(args.root.resolve())
    if args.files:
        linter.lint_files(args.files)
    else:
        linter.lint_repo()

    for finding in linter.findings:
        print(finding)
    if linter.findings:
        print(f"protocol_lint: {len(linter.findings)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
