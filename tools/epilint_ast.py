#!/usr/bin/env python3
"""AST-grounded concurrency lint for the epidemic tree (epilint).

protocol_lint.py catches protocol-shape hazards with line regexes; the rules
here need real syntax — lambda extents, capture lists, call structure — so
they run on the clang AST via the `clang` python bindings (libclang).

  task-capture-lifetime     a lambda handed to ShardScheduler::Post captures
                            by reference ([&] or [&x]): Post is
                            fire-and-forget, so the task can outlive every
                            captured frame and the reference dangles.
                            Execute/ExecuteBatch*/ExecuteExclusive join
                            before returning, so reference captures are fine
                            there (and idiomatic).
  seqlock-read-discipline   between an optimistic read sample (ReadBegin /
                            ReadVersion) and its Validate / ValidateVersion,
                            code must not write member or global state and
                            must not take the address of members: the read
                            section may be observing a torn snapshot, so it
                            has to stay side-effect free until validation
                            (runtime/optimistic_lock.h).
  relaxed-atomic-rationale  every std::memory_order_relaxed use needs a
                            `// relaxed:` comment on the same line or within
                            the 4 preceding lines saying why relaxed
                            ordering is sound (the window covers the
                            multi-line reset ? exchange : load statements in
                            Stats()-style reporting).
  scheduler-reentry         a task body calls back into a scheduler
                            (Execute / ExecuteBatch / ExecuteBatchIndexed /
                            ExecuteExclusive / Post): the task already runs
                            behind a shard gate, so re-entry self-deadlocks
                            or violates the drain-then-release invariant
                            (runtime/scheduler.h's reentry contract).
  decode-bounds-discipline  inside the decode TUs (the files that parse
                            untrusted network / disk bytes — DECODE_TUS
                            below), every read must flow through the
                            bounds-checked ByteReader / view API
                            (common/bytes.h). Raw pointer arithmetic,
                            subscripts on raw pointers, and memcpy/memmove
                            calls are rejected: each one is a place where a
                            forged length can walk past the end of the
                            input, which is exactly the bug class the fuzz
                            harnesses (fuzz/) exist to catch at run time.

relaxed-atomic-rationale is purely lexical and ALWAYS runs. The others
need libclang; when the bindings are unavailable the tool prints a skip
diagnostic and exits 0, so gcc-only checkouts stay usable while the CI
lint-ast job (pinned libclang) enforces the full set.

Findings are waivable with the same comment protocol_lint.py uses, on the
flagged line or the comment block right above it:

    // NOLINT-PROTOCOL(<rule>): <reason>

Usage:
    epilint_ast.py                     # lint src/ (uses build/compile_commands.json when present)
    epilint_ast.py --build-dir out     # explicit compilation database dir
    epilint_ast.py FILE [FILE...]      # lint specific files (fixture mode:
                                       # parsed standalone as C++17)
    epilint_ast.py --probe             # report whether libclang is usable

Exit status: 0 clean (or AST rules skipped), 1 violations, 2 usage errors;
--probe exits 0 when libclang loads and 3 when it does not.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

WAIVER_RE = re.compile(r"NOLINT-PROTOCOL\((?P<rules>[\w,\s-]+)\)\s*:\s*\S")
RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
RATIONALE_RE = re.compile(r"//.*\brelaxed:")
# Lines the relaxed rule must not count as uses: the rationale convention
# documentation itself and string literals in this linter's fixtures.
RELAXED_LOOKBACK = 4

SCHEDULER_METHODS = {
    "Execute", "ExecuteBatch", "ExecuteBatchIndexed", "ExecuteExclusive",
    "Post",
}
READ_SAMPLE_METHODS = {"ReadBegin", "ReadVersion"}
READ_VALIDATE_METHODS = {"Validate", "ValidateVersion"}

# The TUs that decode untrusted bytes (network frames, snapshots, journal
# replay): decode-bounds-discipline applies only here. common/bytes.h is
# the blessed cursor implementation and is deliberately NOT listed — it is
# the one place allowed to do arithmetic, and its own correctness is pinned
# by common_bytes_test and the fuzz corpora.
DECODE_TUS = {
    "src/core/wire.h", "src/core/wire.cc",
    "src/core/snapshot.h", "src/core/snapshot.cc",
    "src/core/journal.h", "src/core/journal.cc",
    "src/net/codec.h", "src/net/codec.cc",
    "src/vv/vv_codec.h", "src/vv/vv_codec.cc",
    "src/tokens/token_service.cc",
    "src/multidb/multi_db_server.cc",
}
RAW_COPY_FNS = {"memcpy", "memmove", "__builtin_memcpy", "__builtin_memmove"}


def is_decode_tu(path: Path, root: Path) -> bool:
    """True when `path` is one of the decode TUs (or a decode_bounds
    fixture, so the rule is testable standalone)."""
    if "decode_bounds" in path.name:
        return True
    try:
        return str(path.resolve().relative_to(root)) in DECODE_TUS
    except ValueError:
        return False


class Findings:
    def __init__(self, root: Path):
        self.root = root
        self.items: list[str] = []

    def report(self, path: Path, line: int, rule: str, message: str) -> None:
        try:
            shown = path.relative_to(self.root)
        except ValueError:
            shown = path
        self.items.append(f"{shown}:{line}: [{rule}] {message}")


def waived(lines: list[str], idx: int, rule: str) -> bool:
    """True if 0-based line idx or the contiguous comment block right above
    it carries a NOLINT-PROTOCOL waiver naming `rule` (same contract as
    protocol_lint.py; staleness of epilint waivers is protocol_lint's job
    via the shared syntax)."""
    probe = idx
    while probe >= 0:
        m = WAIVER_RE.search(lines[probe])
        if m:
            return rule in [r.strip() for r in m.group("rules").split(",")]
        if probe < idx and not lines[probe].lstrip().startswith("//"):
            return False
        probe -= 1
    return False


# ---------------------------------------------------------------------------
# Lexical rule: relaxed-atomic-rationale (no libclang needed).


def check_relaxed_rationale(findings: Findings, path: Path) -> None:
    lines = path.read_text().splitlines()
    for i, line in enumerate(lines):
        code = line.split("//", 1)[0]
        if not RELAXED_RE.search(code):
            continue
        window = lines[max(0, i - RELAXED_LOOKBACK): i + 1]
        if any(RATIONALE_RE.search(w) for w in window):
            continue
        if waived(lines, i, "relaxed-atomic-rationale"):
            continue
        findings.report(
            path, i + 1, "relaxed-atomic-rationale",
            "memory_order_relaxed without a `// relaxed:` rationale on this "
            "line or the 4 lines above — say why dropping the ordering is "
            "sound (monotonic stats counter, conservative probe, seqlock "
            "fence pairing, ...) per CONTRIBUTING.md",
        )


# ---------------------------------------------------------------------------
# AST rules (libclang).


def load_libclang():
    """Returns the clang.cindex module with a working Index, or None."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        # Bindings importable but libclang.so missing or version-mismatched;
        # try the common soname stems before giving up.
        for stem in ("libclang.so", "libclang-14.so.1", "libclang.so.14",
                     "libclang.so.1"):
            try:
                cindex.Config.set_library_file(stem)
                cindex.Index.create()
                return cindex
            except Exception:
                cindex.Config.loaded = False
                continue
        return None


def libclang_version(cindex) -> str:
    """Resolved libclang version string for --probe, e.g. 'clang version
    14.0.6'. Defensive: the CXString plumbing differs across binding
    versions, so any failure degrades to 'version unknown'."""
    try:
        from clang.cindex import _CXString  # type: ignore
        fn = cindex.conf.lib.clang_getClangVersion
        fn.restype = _CXString
        fn.errcheck = _CXString.from_result
        return str(fn())
    except Exception:
        return "version unknown"


def compile_args_for(path: Path, build_dir: Path, root: Path) -> list[str]:
    """Arguments for parsing `path`: from compile_commands.json when the
    build exported one, else a standalone C++17 parse against src/."""
    db = build_dir / "compile_commands.json"
    if db.exists():
        try:
            for entry in json.loads(db.read_text()):
                if Path(entry["file"]).resolve() == path.resolve():
                    raw = entry.get("arguments") or entry["command"].split()
                    args = []
                    skip_next = False
                    for a in raw[1:]:  # drop the compiler itself
                        if skip_next:
                            skip_next = False
                            continue
                        if a in ("-c", str(path)):
                            continue
                        if a == "-o":
                            skip_next = True
                            continue
                        args.append(a)
                    return args
        except (json.JSONDecodeError, KeyError, OSError):
            pass
    return ["-x", "c++", "-std=c++17", f"-I{root / 'src'}",
            "-DEPIDEMIC_CHECK_SHARD_CONTEXT=1"]


def walk(cursor):
    for child in cursor.get_children():
        yield child
        yield from walk(child)


def in_file(cursor, path: Path) -> bool:
    loc = cursor.location
    return loc.file is not None and Path(loc.file.name).resolve() == path


def extent_contains(outer, inner) -> bool:
    return (outer.start.offset <= inner.start.offset
            and inner.end.offset <= outer.end.offset)


def capture_list_tokens(cindex, lam) -> list[str]:
    """Tokens of the lambda introducer `[...]` (balanced brackets)."""
    out: list[str] = []
    depth = 0
    for tok in lam.get_tokens():
        s = tok.spelling
        out.append(s)
        if s == "[":
            depth += 1
        elif s == "]":
            depth -= 1
            if depth == 0:
                break
    return out


def binop_opcode(cursor) -> str:
    """Spelling of a BINARY_OPERATOR's operator token (py bindings for
    clang 14 do not expose it directly): the first token between the two
    operand extents."""
    children = list(cursor.get_children())
    if len(children) != 2:
        return ""
    lhs_end = children[0].extent.end.offset
    rhs_start = children[1].extent.start.offset
    for tok in cursor.get_tokens():
        off = tok.extent.start.offset
        if lhs_end <= off < rhs_start:
            return tok.spelling
    return ""


def pointer_operand(cindex, cursor) -> bool:
    """True when any direct operand of `cursor` has pointer type."""
    TK = cindex.TypeKind
    for child in cursor.get_children():
        if child.type.kind == TK.POINTER:
            return True
    return False


def check_decode_bounds(cindex, findings: Findings, path: Path, lines,
                        cursors) -> None:
    """decode-bounds-discipline: no raw pointer reads in decode TUs."""
    CK = cindex.CursorKind
    TK = cindex.TypeKind
    rule = "decode-bounds-discipline"
    for c in cursors:
        hit = None
        if c.kind in (CK.BINARY_OPERATOR, CK.COMPOUND_ASSIGNMENT_OPERATOR):
            op = binop_opcode(c)
            if op in ("+", "-", "+=", "-=") and pointer_operand(cindex, c):
                hit = ("raw pointer arithmetic in a decode TU — route the "
                       "read through ByteReader (GetBytesView/GetStringView "
                       "advance the cursor with bounds checks); a forged "
                       "length here walks past the end of the input")
        elif c.kind == CK.ARRAY_SUBSCRIPT_EXPR:
            base = next(iter(c.get_children()), None)
            if base is not None and base.type.kind == TK.POINTER:
                hit = ("subscript on a raw pointer in a decode TU — index "
                       "math on attacker-supplied offsets must go through "
                       "the bounds-checked cursor/view API (common/bytes.h)")
        elif c.kind == CK.CALL_EXPR and c.spelling in RAW_COPY_FNS:
            hit = (f"{c.spelling} in a decode TU — the length operand is "
                   "unchecked against the source; use ByteReader::GetBytes/"
                   "GetBytesView or PutBytes, which carry the bounds check")
        if hit is None:
            continue
        line = c.location.line
        if waived(lines, line - 1, rule):
            continue
        findings.report(path, line, rule, hit)


def check_ast_rules(cindex, findings: Findings, path: Path,
                    args: list[str], decode_tu: bool = False) -> bool:
    """Runs the AST rules on one TU. Returns False when the parse was
    too broken to trust (caller reports the diagnostic)."""
    index = cindex.Index.create()
    try:
        tu = index.parse(str(path), args=args)
    except cindex.TranslationUnitLoadError:
        return False
    fatal = [d for d in tu.diagnostics
             if d.severity >= cindex.Diagnostic.Fatal]
    if fatal:
        print(f"epilint: warning: {path}: parse failed "
              f"({fatal[0].spelling}); AST rules skipped for this file",
              file=sys.stderr)
        return False

    lines = path.read_text().splitlines()
    rpath = path.resolve()

    CK = cindex.CursorKind
    cursors = [c for c in walk(tu.cursor) if in_file(c, rpath)]

    if decode_tu:
        check_decode_bounds(cindex, findings, path, lines, cursors)

    lambdas = [c for c in cursors if c.kind == CK.LAMBDA_EXPR]
    sched_calls = [c for c in cursors
                   if c.kind == CK.CALL_EXPR
                   and c.spelling in SCHEDULER_METHODS]

    # A task lambda is one lexically inside a scheduler call's argument
    # list. Track the owning call so the reentry rule does not count it
    # against its own body.
    task_lambdas = []
    for lam in lambdas:
        owners = [c for c in sched_calls if extent_contains(c.extent,
                                                            lam.extent)]
        if owners:
            # Innermost owner: the call whose extent starts last.
            owner = max(owners, key=lambda c: c.extent.start.offset)
            task_lambdas.append((lam, owner))

    # -- rule: scheduler-reentry ----------------------------------------
    for lam, owner in task_lambdas:
        for call in sched_calls:
            if call is owner:
                continue
            if not extent_contains(lam.extent, call.extent):
                continue
            # A call nested in an inner lambda that is NOT itself inside
            # this lambda's task section still re-enters at run time if the
            # inner lambda runs inline; stay conservative and flag it.
            line = call.location.line
            if waived(lines, line - 1, "scheduler-reentry"):
                continue
            findings.report(
                path, line, "scheduler-reentry",
                f"task body calls ShardScheduler::{call.spelling} — the "
                "task already holds its shard gate, so re-entry "
                "self-deadlocks (inline fast path) or breaks the "
                "drain-then-release invariant (runtime/scheduler.h)",
            )

    # -- rule: task-capture-lifetime -------------------------------------
    for lam, owner in task_lambdas:
        if owner.spelling != "Post":
            continue
        toks = capture_list_tokens(cindex, lam)
        if "&" not in toks:
            continue
        line = lam.location.line
        if waived(lines, line - 1, "task-capture-lifetime"):
            continue
        findings.report(
            path, line, "task-capture-lifetime",
            "lambda posted fire-and-forget captures by reference "
            f"([{''.join(toks[1:-1])}]) — Post does not join, so the task "
            "can outlive the captured frame; capture by value or use "
            "Execute/ExecuteBatch, which join before returning",
        )

    # -- rule: seqlock-read-discipline -----------------------------------
    # For every function-like body that both samples (ReadBegin/ReadVersion)
    # and validates (Validate/ValidateVersion), the statements between the
    # first sample and the last validation must not write members/globals
    # or take a member's address.
    bodies = [c for c in cursors
              if c.kind in (CK.FUNCTION_DECL, CK.CXX_METHOD, CK.LAMBDA_EXPR,
                            CK.CONSTRUCTOR, CK.FUNCTION_TEMPLATE)
              and c.is_definition()]
    for body in bodies:
        calls = [c for c in cursors
                 if c.kind == CK.CALL_EXPR
                 and extent_contains(body.extent, c.extent)]
        samples = [c for c in calls if c.spelling in READ_SAMPLE_METHODS]
        validates = [c for c in calls if c.spelling in READ_VALIDATE_METHODS]
        if not samples or not validates:
            continue
        lo = min(c.extent.end.offset for c in samples)
        hi = max(c.extent.start.offset for c in validates)
        if hi <= lo:
            continue

        def in_section(c) -> bool:
            return lo <= c.extent.start.offset <= hi

        for c in cursors:
            if not extent_contains(body.extent, c.extent) or not in_section(c):
                continue
            hit = None
            if c.kind in (CK.BINARY_OPERATOR,
                          CK.COMPOUND_ASSIGNMENT_OPERATOR):
                op = binop_opcode(c)
                if (op == "=" or op.endswith("=")) and op not in (
                        "==", "!=", "<=", ">="):
                    lhs = next(iter(c.get_children()), None)
                    if lhs is not None and any(
                            d.kind == CK.MEMBER_REF_EXPR
                            for d in [lhs, *walk(lhs)]):
                        hit = ("writes member/shared state inside an "
                               "optimistic read section — the snapshot is "
                               "unvalidated and may be torn; buffer into "
                               "locals and commit after Validate "
                               "(runtime/optimistic_lock.h)")
            elif c.kind == CK.UNARY_OPERATOR:
                toks = list(c.get_tokens())
                if toks and toks[0].spelling == "&" and any(
                        d.kind == CK.MEMBER_REF_EXPR for d in walk(c)):
                    hit = ("takes the address of shared state inside an "
                           "optimistic read section — a retained pointer "
                           "outlives validation and can dangle into a "
                           "torn snapshot (runtime/optimistic_lock.h)")
            if hit is None:
                continue
            line = c.location.line
            if waived(lines, line - 1, "seqlock-read-discipline"):
                continue
            findings.report(path, line, "seqlock-read-discipline", hit)
    return True


# ---------------------------------------------------------------------------
# Drivers.


def default_sources(root: Path) -> list[Path]:
    src = root / "src"
    return sorted(src.rglob("*.h")) + sorted(src.rglob("*.cc"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)")
    parser.add_argument(
        "--build-dir", type=Path, default=None,
        help="build directory holding compile_commands.json "
             "(default: <root>/build)")
    parser.add_argument(
        "--probe", action="store_true",
        help="report whether libclang is usable and exit (0 yes, 3 no)")
    parser.add_argument(
        "files", nargs="*", type=Path,
        help="specific files to lint instead of src/ (fixture mode)")
    args = parser.parse_args()

    root = args.root.resolve()
    build_dir = (args.build_dir or (root / "build")).resolve()

    cindex = load_libclang()
    if args.probe:
        if cindex is None:
            print("epilint: libclang unavailable (need the python `clang` "
                  "bindings plus a loadable libclang.so)")
            return 3
        print(f"epilint: libclang available ({libclang_version(cindex)})")
        return 0

    if args.files:
        files = [f.resolve() for f in args.files]
        for f in files:
            if not f.exists():
                print(f"error: no such file: {f}", file=sys.stderr)
                return 2
    else:
        files = default_sources(root)

    findings = Findings(root)
    for f in files:
        if f.suffix in (".h", ".cc", ".cpp"):
            check_relaxed_rationale(findings, f)

    if cindex is None:
        print("epilint: libclang unavailable — AST rules "
              "(task-capture-lifetime, seqlock-read-discipline, "
              "scheduler-reentry, decode-bounds-discipline) SKIPPED; only "
              "relaxed-atomic-rationale ran. The CI lint-ast job enforces "
              "the full set.",
              file=sys.stderr)
    else:
        for f in files:
            if f.suffix not in (".h", ".cc", ".cpp"):
                continue
            check_ast_rules(cindex, findings, f,
                            compile_args_for(f, build_dir, root),
                            decode_tu=is_decode_tu(f, root))

    for item in findings.items:
        print(item)
    if findings.items:
        print(f"epilint: {len(findings.items)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
