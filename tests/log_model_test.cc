// Model-based testing of OriginLog against a trivially-correct reference
// implementation: a map item -> seq plus a sorted view. After thousands of
// random operations the intrusive list must agree with the model exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/random.h"
#include "log/log_vector.h"

namespace epidemic {
namespace {

/// Reference model: latest seq per item; ordering = ascending seq.
class ModelLog {
 public:
  void Add(ItemId item, UpdateCount seq) { latest_[item] = seq; }

  void Remove(ItemId item) { latest_.erase(item); }

  std::vector<std::pair<ItemId, UpdateCount>> Ordered() const {
    std::vector<std::pair<ItemId, UpdateCount>> out(latest_.begin(),
                                                    latest_.end());
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
    return out;
  }

  std::vector<std::pair<ItemId, UpdateCount>> Tail(UpdateCount after) const {
    auto all = Ordered();
    std::vector<std::pair<ItemId, UpdateCount>> out;
    for (const auto& e : all) {
      if (e.second > after) out.push_back(e);
    }
    return out;
  }

  size_t size() const { return latest_.size(); }

 private:
  std::map<ItemId, UpdateCount> latest_;
};

std::vector<std::pair<ItemId, UpdateCount>> Walk(const OriginLog& log) {
  std::vector<std::pair<ItemId, UpdateCount>> out;
  for (const LogRecord* r = log.head(); r != nullptr; r = r->next) {
    out.emplace_back(r->item, r->seq);
  }
  return out;
}

class LogModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LogModelTest, AgreesWithReferenceUnderRandomOps) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const ItemId num_items = static_cast<ItemId>(2 + rng.Uniform(30));

  OriginLog log;
  ModelLog model;
  std::vector<LogRecord*> p(num_items, nullptr);
  UpdateCount seq = 0;

  for (int step = 0; step < 3000; ++step) {
    double dice = rng.NextDouble();
    if (dice < 0.75 || model.size() == 0) {
      ItemId item = static_cast<ItemId>(rng.Uniform(num_items));
      log.AddLogRecord(item, ++seq, &p[item]);
      model.Add(item, seq);
    } else {
      // Remove a random present record (the conflict-drop path).
      auto ordered = model.Ordered();
      ItemId item = ordered[rng.Uniform(ordered.size())].first;
      log.Remove(p[item], &p[item]);
      model.Remove(item);
    }

    // Full-state agreement every step.
    ASSERT_EQ(log.size(), model.size()) << "seed=" << seed;
    ASSERT_EQ(Walk(log), model.Ordered()) << "seed=" << seed;

    // Tail agreement at a random horizon.
    UpdateCount after = rng.Uniform(seq + 2);
    std::vector<LogRecord> tail_buf;
    log.CollectTail(after, &tail_buf);
    std::vector<std::pair<ItemId, UpdateCount>> got;
    for (const LogRecord& r : tail_buf) got.emplace_back(r.item, r.seq);
    ASSERT_EQ(got, model.Tail(after)) << "seed=" << seed << " after=" << after;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogModelTest,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace epidemic
