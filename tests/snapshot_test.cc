#include "core/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/random.h"
#include "core/replica.h"

namespace epidemic {
namespace {

Status OobFetch(Replica& source, Replica& dest, std::string_view item) {
  OobRequest req = dest.BuildOobRequest(item);
  OobResponse resp = source.HandleOobRequest(req);
  return dest.AcceptOobResponse(resp);
}

// Drives `r` into a rich state: values, tombstones, foreign updates,
// auxiliary copies, pending aux-log records.
void PopulateRich(Replica& r, Replica& peer) {
  ASSERT_TRUE(peer.Update("shared", "from-peer").ok());
  ASSERT_TRUE(peer.Update("hot", "peer-hot").ok());
  ASSERT_TRUE(PropagateOnce(peer, r).ok());

  ASSERT_TRUE(r.Update("local", "mine").ok());
  ASSERT_TRUE(r.Update("local", "mine2").ok());
  ASSERT_TRUE(r.Delete("doomed").ok());

  // Out-of-bound fetch of a fresher 'hot' plus pending local edits.
  ASSERT_TRUE(peer.Update("hot", "peer-hot2").ok());
  ASSERT_TRUE(OobFetch(peer, r, "hot").ok());
  ASSERT_TRUE(r.Update("hot", "local-hot").ok());
  ASSERT_TRUE(r.Update("hot", "local-hot2").ok());
}

void ExpectEquivalent(const Replica& a, const Replica& b) {
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.dbvv(), b.dbvv());
  EXPECT_EQ(a.items().size(), b.items().size());
  for (const auto& item : a.items()) {
    const Item* other = b.FindItem(item->name);
    ASSERT_NE(other, nullptr) << item->name;
    EXPECT_EQ(item->value, other->value) << item->name;
    EXPECT_EQ(item->deleted, other->deleted) << item->name;
    EXPECT_EQ(item->ivv, other->ivv) << item->name;
    EXPECT_EQ(item->HasAux(), other->HasAux()) << item->name;
    if (item->HasAux() && other->HasAux()) {
      EXPECT_EQ(item->aux->value, other->aux->value);
      EXPECT_EQ(item->aux->deleted, other->aux->deleted);
      EXPECT_EQ(item->aux->ivv, other->aux->ivv);
    }
  }
  EXPECT_EQ(a.log_vector().TotalRecords(), b.log_vector().TotalRecords());
  EXPECT_EQ(a.aux_log().size(), b.aux_log().size());
}

TEST(SnapshotTest, EmptyReplicaRoundTrip) {
  Replica r(1, 3);
  auto restored = DecodeSnapshot(EncodeSnapshot(r));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectEquivalent(r, **restored);
  EXPECT_TRUE((*restored)->CheckInvariants().ok());
}

TEST(SnapshotTest, RichStateRoundTrip) {
  Replica r(0, 3), peer(1, 3);
  PopulateRich(r, peer);
  ASSERT_TRUE(r.CheckInvariants().ok());

  auto restored = DecodeSnapshot(EncodeSnapshot(r));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectEquivalent(r, **restored);
  EXPECT_TRUE((*restored)->CheckInvariants().ok());

  // The restored replica behaves like the original: user reads agree.
  EXPECT_EQ(*(*restored)->Read("hot"), *r.Read("hot"));
  EXPECT_TRUE((*restored)->Read("doomed").status().IsNotFound());
}

TEST(SnapshotTest, RestoredReplicaResumesProtocol) {
  Replica r(0, 3), peer(1, 3);
  PopulateRich(r, peer);

  auto restored = DecodeSnapshot(EncodeSnapshot(r));
  ASSERT_TRUE(restored.ok());
  Replica& revived = **restored;

  // Peer made progress while we were "down"; the revived node pulls and
  // completes the pending intra-node replay.
  ASSERT_TRUE(peer.Update("shared", "newer").ok());
  ASSERT_TRUE(PropagateOnce(peer, revived).ok());
  EXPECT_EQ(*revived.Read("shared"), "newer");
  EXPECT_EQ(*revived.Read("hot"), "local-hot2");
  EXPECT_FALSE(revived.FindItem("hot")->HasAux());  // replay completed
  EXPECT_TRUE(revived.CheckInvariants().ok());

  // And it can serve as a source again.
  Replica n2(2, 3);
  ASSERT_TRUE(PropagateOnce(revived, n2).ok());
  EXPECT_EQ(*n2.Read("local"), "mine2");
}

TEST(SnapshotTest, SaveAndLoadFile) {
  const std::string path = ::testing::TempDir() + "/epi_snapshot_test.bin";
  Replica r(0, 2), peer(1, 2);
  PopulateRich(r, peer);
  ASSERT_TRUE(SaveSnapshot(r, path).ok());

  auto loaded = LoadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectEquivalent(r, **loaded);
  std::remove(path.c_str());
}

TEST(SnapshotTest, LoadMissingFileIsNotFound) {
  auto loaded = LoadSnapshot("/nonexistent/dir/snap.bin");
  EXPECT_TRUE(loaded.status().IsNotFound());
}

TEST(SnapshotTest, BadMagicRejected) {
  auto r = DecodeSnapshot("WRONGMAGIC-and-some-data");
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(SnapshotTest, EmptyBlobRejected) {
  EXPECT_TRUE(DecodeSnapshot("").status().IsCorruption());
}

TEST(SnapshotTest, TruncatedSnapshotsFailCleanly) {
  Replica r(0, 3), peer(1, 3);
  PopulateRich(r, peer);
  std::string blob = EncodeSnapshot(r);
  // Every strict prefix must fail with Corruption (or, for a cut exactly at
  // a section boundary, an Internal invariant failure) — never crash.
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    size_t cut = rng.Uniform(blob.size());
    auto restored = DecodeSnapshot(std::string_view(blob).substr(0, cut));
    EXPECT_FALSE(restored.ok()) << "prefix " << cut << " decoded";
  }
}

TEST(SnapshotTest, EveryByteFlipCaughtByChecksum) {
  Replica r(0, 2), peer(1, 2);
  PopulateRich(r, peer);
  std::string blob = EncodeSnapshot(r);
  Rng rng(9);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = blob;
    size_t pos = rng.Uniform(mutated.size());
    char flip = static_cast<char>(1 + rng.Uniform(255));  // guaranteed change
    mutated[pos] = static_cast<char>(mutated[pos] ^ flip);
    auto restored = DecodeSnapshot(mutated);
    // Every byte is covered by the trailing CRC-32C (or *is* the CRC), so
    // any flip must be rejected — no silent acceptance of bit rot.
    EXPECT_FALSE(restored.ok()) << "pos=" << pos;
    if (!restored.ok()) {
      EXPECT_TRUE(restored.status().IsCorruption());
    }
  }
}

TEST(SnapshotTest, SnapshotIsDeterministic) {
  Replica r(0, 2), peer(1, 2);
  PopulateRich(r, peer);
  EXPECT_EQ(EncodeSnapshot(r), EncodeSnapshot(r));
}

}  // namespace
}  // namespace epidemic
