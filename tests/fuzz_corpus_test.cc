// Corpus-backed harness tests (DESIGN.md §13): every fuzz target replays
// its generated seed corpus and the checked-in corpus under
// tests/testdata/fuzz/<target>/ inside a plain gtest binary, so the
// gcc/asan/ubsan/tsan ctest legs all drive the real decode-then-accept
// harnesses without libFuzzer. An oracle failure aborts, which gtest
// reports as a crashed test.

#include <dirent.h>
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/harness.h"
#include "fuzz/mutator.h"
#include "fuzz/seed_corpus.h"

namespace epidemic::fuzz {
namespace {

std::vector<std::string> CorpusFiles(const std::string& target) {
  const std::string dir =
      std::string(EPI_SOURCE_DIR) + "/tests/testdata/fuzz/" + target;
  std::vector<std::string> paths;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return paths;
  while (dirent* entry = readdir(d)) {
    if (entry->d_name[0] == '.') continue;
    paths.push_back(dir + "/" + entry->d_name);
  }
  closedir(d);
  return paths;
}

class FuzzTargetTest : public ::testing::TestWithParam<const char*> {};

TEST_P(FuzzTargetTest, SeedCorpusIsNonEmptyAndReplays) {
  const TargetInfo* target = FindTarget(GetParam());
  ASSERT_NE(target, nullptr);
  std::vector<SeedInput> seeds = BuildSeedCorpus(target->name);
  ASSERT_FALSE(seeds.empty()) << "no generated seeds for " << target->name;
  for (const SeedInput& seed : seeds) {
    SCOPED_TRACE(seed.label);
    target->fn(reinterpret_cast<const uint8_t*>(seed.bytes.data()),
               seed.bytes.size());
  }
}

TEST_P(FuzzTargetTest, CheckedInCorpusReplays) {
  const TargetInfo* target = FindTarget(GetParam());
  ASSERT_NE(target, nullptr);
  std::vector<std::string> files = CorpusFiles(target->name);
  ASSERT_FALSE(files.empty())
      << "tests/testdata/fuzz/" << target->name
      << " is missing — regenerate with fuzz_export_corpus";
  for (const std::string& path : files) {
    SCOPED_TRACE(path);
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "cannot read " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string bytes = buf.str();
    target->fn(reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllTargets, FuzzTargetTest,
                         ::testing::Values("codec", "wire_segment_v3",
                                           "vv_delta", "snapshot", "journal",
                                           "server_frame", "multidb", "tokens",
                                           "fixture"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(FuzzRegistryTest, EveryRegisteredTargetHasSeeds) {
  for (const TargetInfo& target : AllTargets()) {
    EXPECT_FALSE(BuildSeedCorpus(target.name).empty())
        << "target " << target.name << " has no seed generator";
  }
}

TEST(FuzzMutatorTest, MutationsStayInBoundsAndGrowFromEmpty) {
  uint8_t buf[64] = {0};
  size_t n = 0;
  for (unsigned seed = 0; seed < 500; ++seed) {
    n = MutateFrame(buf, n, sizeof(buf), seed);
    ASSERT_LE(n, sizeof(buf));
  }
  EXPECT_GT(n, 0u);  // the empty input grows into a tagged frame
}

// A short deterministic mini-fuzz of the clean fixture decoder: the same
// loop the seeded-defect self-test runs, kept here so every sanitizer leg
// exercises the mutation engine end to end.
TEST(FuzzMiniTest, CleanFixtureSurvivesSmokeBudget) {
  std::vector<std::string> seeds;
  for (const SeedInput& s : BuildSeedCorpus("fixture")) {
    seeds.push_back(s.bytes);
  }
  MiniFuzzResult result =
      RunMiniFuzz(Target_fixture, std::move(seeds), /*runs=*/2000, /*seed=*/3,
                  /*max_len=*/256);
  EXPECT_EQ(result.runs, 2000u);
}

}  // namespace
}  // namespace epidemic::fuzz
