#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "baselines/epidemic_node.h"
#include "baselines/lotus_node.h"
#include "baselines/oracle_node.h"
#include "baselines/per_item_vv_node.h"

namespace epidemic {
namespace {

// ---------------------------------------------------------------------------
// EpidemicNode adapter.

TEST(EpidemicNodeTest, BasicSyncAndAccounting) {
  EpidemicNode a(0, 2), b(1, 2);
  ASSERT_TRUE(b.ClientUpdate("x", "v").ok());
  ASSERT_TRUE(a.SyncWith(b).ok());
  EXPECT_EQ(*a.ClientRead("x"), "v");
  EXPECT_EQ(a.sync_stats().items_copied, 1u);
  EXPECT_EQ(a.sync_stats().items_examined, 1u);
  EXPECT_GT(a.sync_stats().control_bytes, 0u);
  EXPECT_GT(a.sync_stats().data_bytes, 0u);
}

TEST(EpidemicNodeTest, NoopSyncIsConstantWork) {
  EpidemicNode a(0, 2), b(1, 2);
  ASSERT_TRUE(b.ClientUpdate("x", "v").ok());
  ASSERT_TRUE(a.SyncWith(b).ok());
  a.ResetSyncStats();
  ASSERT_TRUE(a.SyncWith(b).ok());
  EXPECT_EQ(a.sync_stats().noop_exchanges, 1u);
  EXPECT_EQ(a.sync_stats().items_examined, 0u);  // O(1): DBVV compare only
}

TEST(EpidemicNodeTest, OobFetchSupported) {
  EpidemicNode a(0, 2), b(1, 2);
  ASSERT_TRUE(b.ClientUpdate("x", "v").ok());
  ASSERT_TRUE(a.OobFetch(b, "x").ok());
  EXPECT_EQ(*a.ClientRead("x"), "v");
}

TEST(EpidemicNodeTest, SnapshotIsSortedRegularContent) {
  EpidemicNode a(0, 2);
  ASSERT_TRUE(a.ClientUpdate("b", "2").ok());
  ASSERT_TRUE(a.ClientUpdate("a", "1").ok());
  auto snap = a.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a");
  EXPECT_EQ(snap[1].first, "b");
}

// ---------------------------------------------------------------------------
// Lotus baseline (§8.1).

TEST(LotusNodeTest, BasicPropagation) {
  LotusNode a(0, 2), b(1, 2);
  ASSERT_TRUE(b.ClientUpdate("x", "v").ok());
  ASSERT_TRUE(a.SyncWith(b).ok());
  EXPECT_EQ(*a.ClientRead("x"), "v");
  EXPECT_EQ(a.sync_stats().items_copied, 1u);
}

TEST(LotusNodeTest, ConstantTimeNegativeOnlyWhenSourceUnmodified) {
  LotusNode a(0, 2), b(1, 2);
  ASSERT_TRUE(b.ClientUpdate("x", "v").ok());
  ASSERT_TRUE(a.SyncWith(b).ok());
  a.ResetSyncStats();
  // Source unmodified since last prop to us: constant-time negative.
  ASSERT_TRUE(a.SyncWith(b).ok());
  EXPECT_EQ(a.sync_stats().items_examined, 0u);
  EXPECT_EQ(a.sync_stats().noop_exchanges, 1u);
}

TEST(LotusNodeTest, LinearScanWhenSourceModifiedElsewhere) {
  // The §8.1 weakness: identical replicas still pay a per-item scan when
  // the source changed since the last direct propagation.
  LotusNode a(0, 3), b(1, 3), c(2, 3);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(c.ClientUpdate("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(a.SyncWith(c).ok());
  ASSERT_TRUE(b.SyncWith(c).ok());
  // a and b are now identical; yet a pulling from b scans b's whole DB
  // because b changed (by copying) since b last propagated to a (never).
  a.ResetSyncStats();
  ASSERT_TRUE(a.SyncWith(b).ok());
  EXPECT_EQ(a.sync_stats().items_examined, 50u);
  EXPECT_EQ(a.sync_stats().items_copied, 0u);
}

TEST(LotusNodeTest, SilentlyMisresolvesConflicts) {
  // §8.1: i makes two updates, j makes one concurrent update; i's copy has
  // the larger sequence number and silently overwrites j's.
  LotusNode i(0, 2), j(1, 2);
  ASSERT_TRUE(i.ClientUpdate("x", "i1").ok());
  ASSERT_TRUE(i.ClientUpdate("x", "i2").ok());
  ASSERT_TRUE(j.ClientUpdate("x", "j1").ok());  // concurrent, never saw i's

  ASSERT_TRUE(j.SyncWith(i).ok());
  EXPECT_EQ(*j.ClientRead("x"), "i2");  // j's own update silently lost
  EXPECT_EQ(j.conflicts_detected(), 0u);  // and nothing was reported
}

TEST(LotusNodeTest, ReadMissingItem) {
  LotusNode a(0, 2);
  EXPECT_TRUE(a.ClientRead("ghost").status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Oracle push baseline (§8.2).

TEST(OracleNodeTest, PushDeliversPendingRecords) {
  OracleNode a(0, 3), b(1, 3), c(2, 3);
  ASSERT_TRUE(a.ClientUpdate("x", "v").ok());
  EXPECT_EQ(a.PendingFor(1), 1u);
  ASSERT_TRUE(a.SyncWith(b).ok());
  EXPECT_EQ(a.PendingFor(1), 0u);
  EXPECT_EQ(a.PendingFor(2), 1u);  // c not yet pushed to
  EXPECT_EQ(*b.ClientRead("x"), "v");
  EXPECT_TRUE(c.ClientRead("x").status().IsNotFound());
}

TEST(OracleNodeTest, NoPerItemWorkOnPush) {
  OracleNode a(0, 2), b(1, 2);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(a.ClientUpdate("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(a.SyncWith(b).ok());
  EXPECT_EQ(a.sync_stats().items_examined, 0u);
  EXPECT_EQ(a.sync_stats().records_shipped, 100u);
  a.ResetSyncStats();
  ASSERT_TRUE(a.SyncWith(b).ok());
  EXPECT_EQ(a.sync_stats().noop_exchanges, 1u);
}

TEST(OracleNodeTest, RecipientsNeverForward) {
  // The §8.2 vulnerability in miniature: b received a's update but pushing
  // b->c ships nothing because b did not originate it.
  OracleNode a(0, 3), b(1, 3), c(2, 3);
  ASSERT_TRUE(a.ClientUpdate("x", "v").ok());
  ASSERT_TRUE(a.SyncWith(b).ok());
  ASSERT_TRUE(b.SyncWith(c).ok());
  EXPECT_TRUE(c.ClientRead("x").status().IsNotFound());
}

TEST(OracleNodeTest, OriginOrderPreserved) {
  OracleNode a(0, 2), b(1, 2);
  ASSERT_TRUE(a.ClientUpdate("x", "v1").ok());
  ASSERT_TRUE(a.ClientUpdate("x", "v2").ok());
  ASSERT_TRUE(a.SyncWith(b).ok());
  EXPECT_EQ(*b.ClientRead("x"), "v2");
}

// ---------------------------------------------------------------------------
// Per-item version-vector baseline (§8.3).

TEST(PerItemVvNodeTest, BasicPropagationAndConflictDetection) {
  PerItemVvNode a(0, 2), b(1, 2);
  ASSERT_TRUE(b.ClientUpdate("x", "v").ok());
  ASSERT_TRUE(a.SyncWith(b).ok());
  EXPECT_EQ(*a.ClientRead("x"), "v");

  // Concurrent writes are detected, not overwritten.
  ASSERT_TRUE(a.ClientUpdate("y", "fromA").ok());
  ASSERT_TRUE(b.ClientUpdate("y", "fromB").ok());
  ASSERT_TRUE(a.SyncWith(b).ok());
  EXPECT_EQ(*a.ClientRead("y"), "fromA");
  EXPECT_EQ(a.conflicts_detected(), 1u);
}

TEST(PerItemVvNodeTest, ExaminesEveryItemEvenWhenIdentical) {
  // The scalability problem the paper fixes: identical replicas still cost
  // a full per-item pass.
  PerItemVvNode a(0, 2), b(1, 2);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(b.ClientUpdate("k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(a.SyncWith(b).ok());
  a.ResetSyncStats();
  ASSERT_TRUE(a.SyncWith(b).ok());  // replicas identical now
  EXPECT_EQ(a.sync_stats().items_examined, 64u);
  EXPECT_EQ(a.sync_stats().items_copied, 0u);
  EXPECT_EQ(a.sync_stats().noop_exchanges, 1u);
}

TEST(PerItemVvNodeTest, TransitivePropagationWorks) {
  PerItemVvNode a(0, 3), b(1, 3), c(2, 3);
  ASSERT_TRUE(a.ClientUpdate("x", "v").ok());
  ASSERT_TRUE(b.SyncWith(a).ok());
  ASSERT_TRUE(c.SyncWith(b).ok());
  EXPECT_EQ(*c.ClientRead("x"), "v");
}

// ---------------------------------------------------------------------------
// Cross-protocol comparison: the headline scalability contrast.

TEST(ComparisonTest, IdenticalReplicaOverheadContrast) {
  const int kItems = 128;

  EpidemicNode ea(0, 2), eb(1, 2);
  LotusNode la(0, 2), lb(1, 2);
  PerItemVvNode pa(0, 2), pb(1, 2);

  for (int i = 0; i < kItems; ++i) {
    std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(eb.ClientUpdate(key, "v").ok());
    ASSERT_TRUE(lb.ClientUpdate(key, "v").ok());
    ASSERT_TRUE(pb.ClientUpdate(key, "v").ok());
  }
  // First sync: everyone copies everything.
  ASSERT_TRUE(ea.SyncWith(eb).ok());
  ASSERT_TRUE(la.SyncWith(lb).ok());
  ASSERT_TRUE(pa.SyncWith(pb).ok());

  // The interesting round: replicas identical, but the Lotus source was
  // "modified" meanwhile (self-inflicted via an unrelated item), and
  // per-item VV always scans.
  ASSERT_TRUE(lb.ClientUpdate("extra", "e").ok());
  ASSERT_TRUE(eb.ClientUpdate("extra", "e").ok());
  ASSERT_TRUE(pb.ClientUpdate("extra", "e").ok());
  ASSERT_TRUE(ea.SyncWith(eb).ok());
  ASSERT_TRUE(la.SyncWith(lb).ok());
  ASSERT_TRUE(pa.SyncWith(pb).ok());

  ea.ResetSyncStats();
  la.ResetSyncStats();
  pa.ResetSyncStats();
  ASSERT_TRUE(eb.ClientUpdate("extra", "e2").ok());
  ASSERT_TRUE(lb.ClientUpdate("extra", "e2").ok());
  ASSERT_TRUE(pb.ClientUpdate("extra", "e2").ok());
  ASSERT_TRUE(ea.SyncWith(eb).ok());
  ASSERT_TRUE(la.SyncWith(lb).ok());
  ASSERT_TRUE(pa.SyncWith(pb).ok());

  // One dirty item: our protocol examines exactly 1; Lotus scans all
  // items; per-item VV scans all items.
  EXPECT_EQ(ea.sync_stats().items_examined, 1u);
  EXPECT_EQ(la.sync_stats().items_examined,
            static_cast<uint64_t>(kItems + 1));
  EXPECT_EQ(pa.sync_stats().items_examined,
            static_cast<uint64_t>(kItems + 1));
}

}  // namespace
}  // namespace epidemic
