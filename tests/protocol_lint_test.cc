// Tests for tools/protocol_lint.py — the lint that guards the wire-tag,
// store-mutation and mutex-annotation discipline. Shells out to python3;
// skipped (not failed) on hosts without a python3 interpreter.

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "gtest/gtest.h"

namespace {

#ifndef EPI_SOURCE_DIR
#error "EPI_SOURCE_DIR must be defined by the build"
#endif

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

RunResult RunLint(const std::string& args) {
  const std::string cmd =
      "python3 " + std::string(EPI_SOURCE_DIR) + "/tools/protocol_lint.py " +
      args + " 2>&1";
  RunResult result;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 4096> buf;
  size_t n;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

bool HavePython3() {
  return std::system("python3 -c 'pass' > /dev/null 2>&1") == 0;
}

class ProtocolLintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!HavePython3()) GTEST_SKIP() << "python3 not available on this host";
  }
};

// The checked-in tree must be clean: every mutex annotated or waived,
// wire tags unique, docs referencing only real tags.
TEST_F(ProtocolLintTest, RepositoryIsClean) {
  const RunResult result = RunLint("");
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

// The seeded fixtures must trip the lint, and the report must name both
// rules so a reader can find the discipline being enforced.
TEST_F(ProtocolLintTest, FixturesAreReported) {
  const std::string fixtures =
      std::string(EPI_SOURCE_DIR) + "/tests/testdata/lint/bad_codec.h " +
      std::string(EPI_SOURCE_DIR) + "/tests/testdata/lint/bad_mutex.h";
  const RunResult result = RunLint(fixtures);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("wire-tag-duplicate"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("unguarded-mutex"), std::string::npos)
      << result.output;
  // The duplicate tag is attributed to the entry that reused the value.
  EXPECT_NE(result.output.find("kOobRequestV2"), std::string::npos)
      << result.output;
  // Both the raw std::mutex and the orphan Mutex are reported.
  EXPECT_NE(result.output.find("raw std::mutex"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("orphan_mu_"), std::string::npos)
      << result.output;
}

// The determinism fixture: four hazards reported (entropy, wall clock,
// C-library RNG, pointer-keyed container), while the constant-seeded
// engine's reasoned waiver both suppresses its finding and is counted as
// used — no stale-waiver report.
TEST_F(ProtocolLintTest, DeterminismFixtureIsReported) {
  const RunResult result = RunLint(
      std::string(EPI_SOURCE_DIR) + "/tests/testdata/lint/bad_determinism.cc");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("nondeterminism"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("host entropy"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("wall-clock read"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("4 violation(s)"), std::string::npos)
      << result.output;
  EXPECT_EQ(result.output.find("stale-waiver"), std::string::npos)
      << result.output;
}

// The v3-range fixture: a *V3 entry below tag 17 and a non-V3 entry
// squatting inside the reserved 17-31 band are both reported.
TEST_F(ProtocolLintTest, WireV3RangeFixtureIsReported) {
  const RunResult result = RunLint(
      std::string(EPI_SOURCE_DIR) + "/tests/testdata/lint/bad_wire_v3_tag.h");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("wire-tag-v3-range"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("kShardedPropagationRequestV3"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("kNewFancyRequest"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("2 violation(s)"), std::string::npos)
      << result.output;
}

// The striped-shard-lock fixture: the mutex array, the shard-named mutex
// and the indexed acquisition are each reported (plus unguarded-mutex for
// the two un-annotated declarations, as any real relapse would trip too).
TEST_F(ProtocolLintTest, ShardLockFixtureIsReported) {
  const RunResult result = RunLint(
      std::string(EPI_SOURCE_DIR) + "/tests/testdata/lint/bad_shard_lock.h");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("shard-lock-outside-runtime"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("striped-shard-lock shape"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("indexed acquisition of a per-shard mutex"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("named after shards"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("5 violation(s)"), std::string::npos)
      << result.output;
}

// The serve-cache fixture: a mutable cached-frame shared_ptr (twice: the
// insert parameter and the slot itself) and an InsertServeCache call with
// no MutationEpoch() re-check are each reported.
TEST_F(ProtocolLintTest, ServeCacheFixtureIsReported) {
  const RunResult result = RunLint(
      std::string(EPI_SOURCE_DIR) + "/tests/testdata/lint/bad_serve_cache.h");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("serve-cache-discipline"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("non-const shared_ptr"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("no MutationEpoch() equality re-check"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("3 violation(s)"), std::string::npos)
      << result.output;
}

// A waiver that suppresses nothing is itself a finding.
TEST_F(ProtocolLintTest, StaleWaiverIsReported) {
  const RunResult result = RunLint(
      std::string(EPI_SOURCE_DIR) + "/tests/testdata/lint/stale_waiver.h");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("stale-waiver"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("delete the waiver"), std::string::npos)
      << result.output;
}

// A waiver naming several rules where only some still fire is reported
// per rule: the dead rule is named and the message asks for a narrowed
// waiver, not deletion (the live rule is still doing its job).
TEST_F(ProtocolLintTest, PartiallyStaleWaiverIsNarrowed) {
  const RunResult result = RunLint(
      std::string(EPI_SOURCE_DIR) +
      "/tests/testdata/lint/stale_waiver_multi.h");
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("stale-waiver"), std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("no longer fire here: nondeterminism"),
            std::string::npos)
      << result.output;
  EXPECT_NE(result.output.find("narrow the waiver"), std::string::npos)
      << result.output;
  // The live rule stays suppressed: no unguarded-mutex finding, and no
  // "delete the waiver" demand for a waiver that is still partly earning
  // its keep.
  EXPECT_EQ(result.output.find("unguarded-mutex]"), std::string::npos)
      << result.output;
  EXPECT_EQ(result.output.find("delete the waiver"), std::string::npos)
      << result.output;
}

// Pointing the lint at a nonexistent file is a usage error (exit 2),
// distinct from "violations found" (exit 1).
TEST_F(ProtocolLintTest, MissingFileIsUsageError) {
  const RunResult result = RunLint("tests/testdata/lint/no_such_file.h");
  EXPECT_EQ(result.exit_code, 2) << result.output;
}

}  // namespace
