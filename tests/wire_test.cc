// Direct tests of the shared message-body serialization (core/wire.h) that
// both the network codec and the journal depend on.

#include "core/wire.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "vv/vv_codec.h"

namespace epidemic::wire {
namespace {

VersionVector Vv(std::vector<UpdateCount> counts) {
  return VersionVector(std::move(counts));
}

TEST(WireTest, PropagationRequestBodyRoundTrip) {
  PropagationRequest m{7, Vv({1, 2, 3})};
  ByteWriter w;
  EncodePropagationRequestBody(w, m);
  ByteReader r(w.data());
  auto out = DecodePropagationRequestBody(r);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->requester, 7u);
  EXPECT_EQ(out->dbvv, Vv({1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, PropagationResponseBodyRoundTrip) {
  PropagationResponse m;
  m.tails.resize(2);
  m.tails[0].push_back(WireLogRecord{"a", 9});
  m.items.push_back(WireItem{"a", "val", true, Vv({9, 0})});
  ByteWriter w;
  EncodePropagationResponseBody(w, m);
  ByteReader r(w.data());
  auto out = DecodePropagationResponseBody(r);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->you_are_current);
  ASSERT_EQ(out->tails.size(), 2u);
  EXPECT_EQ(out->tails[0][0].seq, 9u);
  ASSERT_EQ(out->items.size(), 1u);
  EXPECT_TRUE(out->items[0].deleted);
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, YouAreCurrentBodyIsOneByte) {
  PropagationResponse m;
  m.you_are_current = true;
  ByteWriter w;
  EncodePropagationResponseBody(w, m);
  EXPECT_EQ(w.size(), 1u);
  ByteReader r(w.data());
  auto out = DecodePropagationResponseBody(r);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->you_are_current);
}

TEST(WireTest, OobBodiesRoundTrip) {
  {
    OobRequest m{3, "item"};
    ByteWriter w;
    EncodeOobRequestBody(w, m);
    ByteReader r(w.data());
    auto out = DecodeOobRequestBody(r);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->requester, 3u);
    EXPECT_EQ(out->item_name, "item");
  }
  {
    OobResponse m;
    m.found = true;
    m.item_name = "item";
    m.value = "v";
    m.deleted = true;
    m.ivv = Vv({4});
    ByteWriter w;
    EncodeOobResponseBody(w, m);
    ByteReader r(w.data());
    auto out = DecodeOobResponseBody(r);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out->found);
    EXPECT_TRUE(out->deleted);
    EXPECT_EQ(out->ivv, Vv({4}));
  }
}

TEST(WireTest, BodiesComposeInOneBuffer) {
  // The journal writes a tag byte then a body; several records share one
  // buffer. Bodies must consume exactly their own bytes.
  ByteWriter w;
  EncodeOobRequestBody(w, OobRequest{1, "x"});
  EncodePropagationRequestBody(w, PropagationRequest{2, Vv({5, 6})});
  ByteReader r(w.data());
  auto first = DecodeOobRequestBody(r);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->item_name, "x");
  auto second = DecodePropagationRequestBody(r);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->dbvv, Vv({5, 6}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, TruncatedBodiesFail) {
  PropagationResponse m;
  m.tails.resize(1);
  m.tails[0].push_back(WireLogRecord{"abc", 5});
  m.items.push_back(WireItem{"abc", "value", false, Vv({5})});
  ByteWriter w;
  EncodePropagationResponseBody(w, m);
  std::string data = w.Release();
  for (size_t cut = 0; cut < data.size(); ++cut) {
    ByteReader r(std::string_view(data).substr(0, cut));
    EXPECT_FALSE(DecodePropagationResponseBody(r).ok()) << cut;
  }
}

// ---------------------------------------------------------------------------
// Wire v3: delta-encoded IVVs, self-framed segments, zero-copy views.
// ---------------------------------------------------------------------------

/// Field-by-field equality for owned responses (no operator== on the wire
/// structs — they are plain carriers).
void ExpectResponsesEqual(const PropagationResponse& a,
                          const PropagationResponse& b) {
  EXPECT_EQ(a.you_are_current, b.you_are_current);
  ASSERT_EQ(a.tails.size(), b.tails.size());
  for (size_t k = 0; k < a.tails.size(); ++k) {
    ASSERT_EQ(a.tails[k].size(), b.tails[k].size()) << "tail " << k;
    for (size_t i = 0; i < a.tails[k].size(); ++i) {
      EXPECT_EQ(a.tails[k][i].item_name, b.tails[k][i].item_name);
      EXPECT_EQ(a.tails[k][i].seq, b.tails[k][i].seq);
    }
  }
  ASSERT_EQ(a.items.size(), b.items.size());
  for (size_t i = 0; i < a.items.size(); ++i) {
    EXPECT_EQ(a.items[i].name, b.items[i].name);
    EXPECT_EQ(a.items[i].value, b.items[i].value);
    EXPECT_EQ(a.items[i].deleted, b.items[i].deleted);
    EXPECT_EQ(a.items[i].ivv, b.items[i].ivv);
  }
}

// Property test: random IVVs delta-encode and decode identically against
// random bases — dominated vectors (both modes eligible), arbitrary
// vectors (mode-0 fallback), and sparse ones. The declared size always
// matches the bytes written.
TEST(WireV3Test, DeltaIvvPropertyRoundTrip) {
  std::mt19937 rng(0xE51DE11C);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t n = 1 + rng() % 12;
    std::vector<UpdateCount> base_counts(n);
    for (auto& c : base_counts) c = rng() % 1000;
    VersionVector base(base_counts);

    std::vector<UpdateCount> counts(n);
    switch (trial % 3) {
      case 0:  // dominated by base: complement mode is legal
        for (size_t k = 0; k < n; ++k) counts[k] = rng() % (base[k] + 1);
        break;
      case 1:  // arbitrary: encoder must fall back to absolute mode
        for (auto& c : counts) c = rng() % 2000;
        break;
      default:  // sparse: mostly zero, the per-item common case
        for (auto& c : counts) c = (rng() % 4 == 0) ? rng() % 1000 : 0;
        break;
    }
    VersionVector vv(counts);

    ByteWriter w;
    EncodeVersionVectorDelta(&w, vv, base);
    EXPECT_EQ(w.size(), VersionVectorDeltaSize(vv, base)) << "trial " << trial;
    ByteReader r(w.data());
    auto out = DecodeVersionVectorDelta(&r, base);
    ASSERT_TRUE(out.ok()) << "trial " << trial << ": "
                          << out.status().message();
    EXPECT_EQ(*out, vv) << "trial " << trial;
    EXPECT_TRUE(r.AtEnd());
  }
}

// The two one-byte extremes: a vector equal to the base (complement mode,
// zero pairs) and an all-zero vector (absolute mode, zero pairs).
TEST(WireV3Test, DeltaIvvExtremesAreOneByte) {
  VersionVector base(Vv({5, 9, 1000}));
  for (const VersionVector& vv : {base, VersionVector(3)}) {
    ByteWriter w;
    EncodeVersionVectorDelta(&w, vv, base);
    EXPECT_EQ(w.size(), 1u);
    ByteReader r(w.data());
    auto out = DecodeVersionVectorDelta(&r, base);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(*out, vv);
  }
}

// Decoding rejects indices past the base's width.
TEST(WireV3Test, DeltaIvvRejectsOutOfRangeIndex) {
  ByteWriter w;
  w.PutVarint64((1 << 1) | 0);  // one absolute pair
  w.PutVarint64(7);             // index 7 — but the base is 3 wide
  w.PutVarint64(1);
  ByteReader r(w.data());
  EXPECT_FALSE(DecodeVersionVectorDelta(&r, Vv({1, 2, 3})).ok());
}

/// A representative response: two items (one tombstone), tails from two
/// origins referencing them, strictly increasing seqs per tail.
PropagationResponse SampleResponse() {
  PropagationResponse m;
  m.tails.resize(3);
  m.tails[0].push_back(WireLogRecord{"alpha", 3});
  m.tails[0].push_back(WireLogRecord{"beta", 4});
  m.tails[2].push_back(WireLogRecord{"alpha", 2});
  m.items.push_back(WireItem{"alpha", "value-a", false, Vv({3, 0, 2})});
  m.items.push_back(WireItem{"beta", "", true, Vv({4, 0, 0})});
  return m;
}

/// The base must dominate every item IVV (§4.1 guarantees this for real
/// segments: the shard DBVV is the per-origin sum of its item IVVs).
VersionVector SampleBase() { return Vv({7, 2, 2}); }

TEST(WireV3Test, SegmentBodyRoundTrip) {
  PropagationResponse m = SampleResponse();
  PropagationResponseView view;
  MakeResponseView(m, &view, /*fill_tail_indices=*/true);

  std::string body;
  EncodeShardSegmentBodyV3(view, SampleBase(), V3SegmentOptions{}, nullptr,
                           &body);

  SegmentViewStorage storage;
  PropagationResponseView decoded;
  ASSERT_TRUE(DecodeShardSegmentBodyV3(body, &storage, &decoded).ok());
  ExpectResponsesEqual(MaterializeResponse(decoded), m);
  // v3 tails carry indices; the decoder resolves both index and name.
  EXPECT_EQ(decoded.tails[0][1].item_index, 1u);
  EXPECT_EQ(decoded.tails[0][1].item_name, "beta");
}

// Compression is kept only when it wins, round-trips bit-exactly, and is
// visible in the segment's flags byte.
TEST(WireV3Test, SegmentBodyCompressedRoundTrip) {
  PropagationResponse m = SampleResponse();
  m.items[0].value = std::string(4096, 'x');  // compressible payload
  PropagationResponseView view;
  MakeResponseView(m, &view, /*fill_tail_indices=*/true);

  std::string plain;
  EncodeShardSegmentBodyV3(view, SampleBase(), V3SegmentOptions{}, nullptr,
                           &plain);
  V3SegmentOptions opts;
  opts.compress = true;
  std::string packed;
  EncodeShardSegmentBodyV3(view, SampleBase(), opts, nullptr, &packed);

  EXPECT_LT(packed.size(), plain.size());
  EXPECT_EQ(static_cast<uint8_t>(packed[0]) & kSegFlagCompressed,
            kSegFlagCompressed);

  SegmentViewStorage storage;
  PropagationResponseView decoded;
  ASSERT_TRUE(DecodeShardSegmentBodyV3(packed, &storage, &decoded).ok());
  ExpectResponsesEqual(MaterializeResponse(decoded), m);
}

// Tiny bodies skip the compression attempt even when negotiated.
TEST(WireV3Test, SegmentBodySkipsCompressionBelowThreshold) {
  PropagationResponse m = SampleResponse();  // must outlive the view
  PropagationResponseView view;
  MakeResponseView(m, &view, /*fill_tail_indices=*/true);
  V3SegmentOptions opts;
  opts.compress = true;
  opts.min_compress_bytes = 1 << 20;
  std::string body;
  EncodeShardSegmentBodyV3(view, SampleBase(), opts, nullptr, &body);
  EXPECT_EQ(static_cast<uint8_t>(body[0]) & kSegFlagCompressed, 0);
}

TEST(WireV3Test, SegmentBodyRejectsTrailingAndUnknownFlags) {
  PropagationResponse m = SampleResponse();  // must outlive the view
  PropagationResponseView view;
  MakeResponseView(m, &view, /*fill_tail_indices=*/true);
  std::string body;
  EncodeShardSegmentBodyV3(view, SampleBase(), V3SegmentOptions{}, nullptr,
                           &body);

  SegmentViewStorage storage;
  PropagationResponseView decoded;
  std::string trailing = body + '\0';
  EXPECT_FALSE(DecodeShardSegmentBodyV3(trailing, &storage, &decoded).ok());

  std::string bad_flags = body;
  bad_flags[0] = static_cast<char>(bad_flags[0] | 0x80);
  EXPECT_FALSE(DecodeShardSegmentBodyV3(bad_flags, &storage, &decoded).ok());
}

// A tail index pointing past the item set is corruption, not a crash.
TEST(WireV3Test, SegmentBodyRejectsOutOfRangeTailIndex) {
  PropagationResponse m = SampleResponse();
  PropagationResponseView view;
  MakeResponseView(m, &view, /*fill_tail_indices=*/true);
  view.tails[0][0].item_index = 99;  // S has 2 entries
  std::string body;
  EncodeShardSegmentBodyV3(view, SampleBase(), V3SegmentOptions{}, nullptr,
                           &body);
  SegmentViewStorage storage;
  PropagationResponseView decoded;
  EXPECT_FALSE(DecodeShardSegmentBodyV3(body, &storage, &decoded).ok());
}

// Owned → view → owned is the identity, including the you-are-current
// degenerate case.
TEST(WireV3Test, MakeResponseViewMaterializeRoundTrip) {
  PropagationResponse m = SampleResponse();
  PropagationResponseView view;
  MakeResponseView(m, &view);
  ExpectResponsesEqual(MaterializeResponse(view), m);

  PropagationResponse current;
  current.you_are_current = true;
  MakeResponseView(current, &view);
  EXPECT_TRUE(view.you_are_current);
  EXPECT_TRUE(MaterializeResponse(view).you_are_current);
}

// The zero-copy v2 decoder agrees with the owned one on the same bytes.
TEST(WireV3Test, V2ViewDecodeMatchesOwnedDecode) {
  PropagationResponse m = SampleResponse();
  ByteWriter w;
  EncodePropagationResponseBody(w, m);
  const std::string body = w.Release();

  ByteReader r(body);
  auto owned = DecodePropagationResponseBody(r);
  ASSERT_TRUE(owned.ok());

  SegmentViewStorage storage;
  PropagationResponseView view;
  ASSERT_TRUE(DecodePropagationResponseBodyView(body, &storage, &view).ok());
  ExpectResponsesEqual(MaterializeResponse(view), *owned);
  // Views really are zero-copy: they point into the caller's buffer.
  ASSERT_FALSE(view.items.empty());
  const char* data_begin = body.data();
  const char* data_end = body.data() + body.size();
  EXPECT_GE(view.items[0].name.data(), data_begin);
  EXPECT_LT(view.items[0].name.data(), data_end);
}

// Random segments round-trip through the v3 codec, with and without
// compression: the full-pipeline property test.
TEST(WireV3Test, SegmentBodyPropertyRoundTrip) {
  std::mt19937 rng(0x5EC3E247);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 2 + rng() % 4;  // origins
    std::vector<UpdateCount> base_counts(n, 0);

    PropagationResponse m;
    m.tails.resize(n);
    const size_t num_items = 1 + rng() % 8;
    for (size_t i = 0; i < num_items; ++i) {
      WireItem item;
      item.name = "item" + std::to_string(i);
      item.value = std::string(rng() % 64, static_cast<char>('a' + i % 26));
      item.deleted = rng() % 8 == 0;
      std::vector<UpdateCount> counts(n);
      for (size_t k = 0; k < n; ++k) {
        counts[k] = rng() % 20;
        base_counts[k] += counts[k];  // §4.1: DBVV = sum of item IVVs
      }
      item.ivv = VersionVector(counts);
      m.items.push_back(std::move(item));
    }
    for (size_t k = 0; k < n; ++k) {
      UpdateCount seq = 0;
      const size_t records = rng() % 5;
      for (size_t j = 0; j < records; ++j) {
        seq += 1 + rng() % 10;  // strictly increasing within a tail
        m.tails[k].push_back(
            WireLogRecord{m.items[rng() % num_items].name, seq});
      }
    }

    PropagationResponseView view;
    MakeResponseView(m, &view, /*fill_tail_indices=*/true);
    V3SegmentOptions opts;
    opts.compress = trial % 2 == 0;
    opts.min_compress_bytes = 16;
    std::string body;
    EncodeShardSegmentBodyV3(view, VersionVector(base_counts), opts, nullptr,
                             &body);

    SegmentViewStorage storage;
    PropagationResponseView decoded;
    ASSERT_TRUE(DecodeShardSegmentBodyV3(body, &storage, &decoded).ok())
        << "trial " << trial;
    ExpectResponsesEqual(MaterializeResponse(decoded), m);
  }
}

TEST(WireV3Test, EpochProbeRequestRoundTrip) {
  ShardedPropagationRequest m;
  m.requester = 4;
  m.wire_version = kWireV3;
  m.flags = kPropFlagEpochProbe | kPropFlagAcceptCompressed;
  m.last_epoch = 123456789;
  ByteWriter w;
  EncodeShardedPropagationRequestBodyV3(w, m);
  ByteReader r(w.data());
  auto out = DecodeShardedPropagationRequestBodyV3(r);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->requester, 4u);
  EXPECT_EQ(out->flags, m.flags);
  EXPECT_EQ(out->last_epoch, 123456789u);
  EXPECT_TRUE(out->shard_dbvvs.empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireV3Test, EpochProbeWithDbvvsRejected) {
  // A probe by definition carries no per-shard handshake; a frame that
  // claims both is malformed, not "a probe with extra hints".
  ShardedPropagationRequest m;
  m.wire_version = kWireV3;
  m.flags = kPropFlagEpochProbe;
  m.last_epoch = 7;
  m.shard_dbvvs.push_back(Vv({1}));
  ByteWriter w;
  EncodeShardedPropagationRequestBodyV3(w, m);
  ByteReader r(w.data());
  EXPECT_TRUE(DecodeShardedPropagationRequestBodyV3(r).status().IsCorruption());
}

TEST(WireV3Test, ResponseEnvelopeCarriesEpochAndFlags) {
  ShardedPropagationResponse m;
  m.wire_version = kWireV3;
  m.num_shards = 4;
  m.epoch = 42;
  m.resp_flags = kPropRespFlagResend;
  ByteWriter w;
  EncodeShardedPropagationResponseBodyV3(w, m);
  ByteReader r(w.data());
  auto out = DecodeShardedPropagationResponseBodyV3(r);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->wire_version, kWireV3);
  EXPECT_EQ(out->num_shards, 4u);
  EXPECT_EQ(out->epoch, 42u);
  EXPECT_TRUE(out->resend_requested());
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireV3Test, ResponseEnvelopeRejectsBadFlagCombos) {
  // Unknown flag bits must fail decode (forward-compat discipline).
  {
    ShardedPropagationResponse m;
    m.wire_version = kWireV3;
    m.num_shards = 1;
    m.resp_flags = 0x80;
    ByteWriter w;
    EncodeShardedPropagationResponseBodyV3(w, m);
    ByteReader r(w.data());
    EXPECT_TRUE(
        DecodeShardedPropagationResponseBodyV3(r).status().IsCorruption());
  }
  // A resend request is a control frame; payload segments alongside it
  // mean the source is confused (or the frame was tampered with).
  {
    ShardedPropagationResponse m;
    m.wire_version = kWireV3;
    m.num_shards = 2;
    m.resp_flags = kPropRespFlagResend;
    ShardedPropagationSegment seg;
    seg.shard = 0;
    seg.body = "x";
    m.segments.push_back(std::move(seg));
    ByteWriter w;
    EncodeShardedPropagationResponseBodyV3(w, m);
    ByteReader r(w.data());
    EXPECT_TRUE(
        DecodeShardedPropagationResponseBodyV3(r).status().IsCorruption());
  }
}

}  // namespace
}  // namespace epidemic::wire
