// Direct tests of the shared message-body serialization (core/wire.h) that
// both the network codec and the journal depend on.

#include "core/wire.h"

#include <gtest/gtest.h>

#include <string>

namespace epidemic::wire {
namespace {

VersionVector Vv(std::vector<UpdateCount> counts) {
  return VersionVector(std::move(counts));
}

TEST(WireTest, PropagationRequestBodyRoundTrip) {
  PropagationRequest m{7, Vv({1, 2, 3})};
  ByteWriter w;
  EncodePropagationRequestBody(w, m);
  ByteReader r(w.data());
  auto out = DecodePropagationRequestBody(r);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->requester, 7u);
  EXPECT_EQ(out->dbvv, Vv({1, 2, 3}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, PropagationResponseBodyRoundTrip) {
  PropagationResponse m;
  m.tails.resize(2);
  m.tails[0].push_back(WireLogRecord{"a", 9});
  m.items.push_back(WireItem{"a", "val", true, Vv({9, 0})});
  ByteWriter w;
  EncodePropagationResponseBody(w, m);
  ByteReader r(w.data());
  auto out = DecodePropagationResponseBody(r);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->you_are_current);
  ASSERT_EQ(out->tails.size(), 2u);
  EXPECT_EQ(out->tails[0][0].seq, 9u);
  ASSERT_EQ(out->items.size(), 1u);
  EXPECT_TRUE(out->items[0].deleted);
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, YouAreCurrentBodyIsOneByte) {
  PropagationResponse m;
  m.you_are_current = true;
  ByteWriter w;
  EncodePropagationResponseBody(w, m);
  EXPECT_EQ(w.size(), 1u);
  ByteReader r(w.data());
  auto out = DecodePropagationResponseBody(r);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->you_are_current);
}

TEST(WireTest, OobBodiesRoundTrip) {
  {
    OobRequest m{3, "item"};
    ByteWriter w;
    EncodeOobRequestBody(w, m);
    ByteReader r(w.data());
    auto out = DecodeOobRequestBody(r);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->requester, 3u);
    EXPECT_EQ(out->item_name, "item");
  }
  {
    OobResponse m;
    m.found = true;
    m.item_name = "item";
    m.value = "v";
    m.deleted = true;
    m.ivv = Vv({4});
    ByteWriter w;
    EncodeOobResponseBody(w, m);
    ByteReader r(w.data());
    auto out = DecodeOobResponseBody(r);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out->found);
    EXPECT_TRUE(out->deleted);
    EXPECT_EQ(out->ivv, Vv({4}));
  }
}

TEST(WireTest, BodiesComposeInOneBuffer) {
  // The journal writes a tag byte then a body; several records share one
  // buffer. Bodies must consume exactly their own bytes.
  ByteWriter w;
  EncodeOobRequestBody(w, OobRequest{1, "x"});
  EncodePropagationRequestBody(w, PropagationRequest{2, Vv({5, 6})});
  ByteReader r(w.data());
  auto first = DecodeOobRequestBody(r);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->item_name, "x");
  auto second = DecodePropagationRequestBody(r);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->dbvv, Vv({5, 6}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, TruncatedBodiesFail) {
  PropagationResponse m;
  m.tails.resize(1);
  m.tails[0].push_back(WireLogRecord{"abc", 5});
  m.items.push_back(WireItem{"abc", "value", false, Vv({5})});
  ByteWriter w;
  EncodePropagationResponseBody(w, m);
  std::string data = w.Release();
  for (size_t cut = 0; cut < data.size(); ++cut) {
    ByteReader r(std::string_view(data).substr(0, cut));
    EXPECT_FALSE(DecodePropagationResponseBody(r).ok()) << cut;
  }
}

}  // namespace
}  // namespace epidemic::wire
