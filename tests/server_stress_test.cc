// Concurrency stress: client threads hammer a served cluster while the
// background anti-entropy threads run; after quiescing, every replica must
// be structurally sound and fully converged.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/inproc_transport.h"
#include "server/replica_server.h"

namespace epidemic::server {
namespace {

TEST(ServerStressTest, ConcurrentClientsAndAntiEntropyConverge) {
  constexpr size_t kNodes = 3;
  constexpr int kWritersPerNode = 2;
  constexpr int kUpdatesPerWriter = 150;

  net::InProcHub hub(kNodes);
  net::InProcTransport transport(&hub);
  std::vector<std::unique_ptr<ReplicaServer>> servers;
  for (NodeId i = 0; i < kNodes; ++i) {
    ReplicaServer::Options options;
    for (NodeId p = 0; p < kNodes; ++p) {
      if (p != i) options.peers.push_back(p);
    }
    options.anti_entropy_interval_micros = 500;  // aggressive
    servers.push_back(
        std::make_unique<ReplicaServer>(i, kNodes, &transport, options));
    hub.Register(i, servers.back().get());
  }
  for (auto& s : servers) s->Start();

  // Writers use disjoint key ranges (node, writer) so the workload is
  // conflict-free; readers hammer random keys concurrently.
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> threads;
  for (NodeId node = 0; node < kNodes; ++node) {
    for (int w = 0; w < kWritersPerNode; ++w) {
      threads.emplace_back([&transport, node, w] {
        ReplicaClient client(&transport, node);
        std::string prefix =
            "n" + std::to_string(node) + "w" + std::to_string(w) + "-";
        for (int u = 0; u < kUpdatesPerWriter; ++u) {
          ASSERT_TRUE(client
                          .Update(prefix + std::to_string(u % 10),
                                  "v" + std::to_string(u))
                          .ok());
        }
      });
    }
  }
  threads.emplace_back([&transport, &stop_readers] {
    ReplicaClient client(&transport, 1);
    while (!stop_readers.load()) {
      (void)client.Read("n0w0-3");
      (void)client.Scan("n2", 5);
      (void)client.Stats();
    }
  });

  for (size_t t = 0; t + 1 < threads.size(); ++t) threads[t].join();
  stop_readers.store(true);
  threads.back().join();

  // Quiesce: run explicit pulls until everyone matches (the background
  // threads are still running; explicit pulls just speed it up).
  bool converged = false;
  for (int attempt = 0; attempt < 200 && !converged; ++attempt) {
    for (NodeId i = 0; i < kNodes; ++i) {
      for (NodeId p = 0; p < kNodes; ++p) {
        if (p != i) (void)servers[i]->PullFrom(p);
      }
    }
    VersionVector dbvv0;
    servers[0]->WithReplica(
        [&dbvv0](const Replica& r) { dbvv0 = r.dbvv(); });
    converged = true;
    for (NodeId i = 1; i < kNodes && converged; ++i) {
      servers[i]->WithReplica([&dbvv0, &converged](const Replica& r) {
        converged = (r.dbvv() == dbvv0);
      });
    }
    if (!converged) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_TRUE(converged);

  for (auto& s : servers) {
    s->Stop();
    s->WithReplica([](const Replica& r) {
      EXPECT_TRUE(r.CheckInvariants().ok());
      // All six writers' latest values present.
      EXPECT_EQ(r.items().size(), 3u * 2u * 10u);
      EXPECT_EQ(r.stats().conflicts_detected, 0u);
    });
  }
  for (NodeId i = 0; i < kNodes; ++i) hub.Register(i, nullptr);
}

}  // namespace
}  // namespace epidemic::server
