// Concurrency stress: client threads hammer a served cluster while the
// background anti-entropy threads run; after quiescing, every replica must
// be structurally sound and fully converged.
//
// Two workloads run concurrently against the striped-lock server:
//   * disjoint writers — every (node, writer) pair owns its key range, so
//     the workload is conflict-free and must converge byte-identically;
//   * overlapping writers — every node writes the same small key set, so
//     cross-node conflicts are guaranteed; a designated resolver node
//     settles them and the resolutions must propagate and stick.
// Readers run throughout and assert no torn reads: every value is
// self-describing ("<key>=<tag>"), so a read that returns bytes from two
// different writes is detectable.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/inproc_transport.h"
#include "server/replica_server.h"

namespace epidemic::server {
namespace {

constexpr size_t kNodes = 3;

class StressCluster {
 public:
  explicit StressCluster(size_t num_shards, size_t ae_workers)
      : hub_(kNodes), transport_(&hub_) {
    for (NodeId i = 0; i < kNodes; ++i) {
      ReplicaServer::Options options;
      for (NodeId p = 0; p < kNodes; ++p) {
        if (p != i) options.peers.push_back(p);
      }
      options.anti_entropy_interval_micros = 500;  // aggressive
      options.num_shards = num_shards;
      options.ae_workers = ae_workers;
      servers_.push_back(
          std::make_unique<ReplicaServer>(i, kNodes, &transport_, options));
      hub_.Register(i, servers_.back().get());
    }
    for (auto& s : servers_) s->Start();
  }

  ~StressCluster() {
    for (auto& s : servers_) s->Stop();
    for (NodeId i = 0; i < kNodes; ++i) hub_.Register(i, nullptr);
  }

  ReplicaServer& server(NodeId i) { return *servers_[i]; }
  net::InProcTransport& transport() { return transport_; }

  /// Joins the background gossip threads; serving and explicit pulls keep
  /// working. Lets a test stage guaranteed-concurrent writes.
  void StopAntiEntropy() {
    for (auto& s : servers_) s->Stop();
  }

  /// Drives explicit pulls (on top of the background threads) until all
  /// aggregate DBVVs match and the listings are byte-identical. Node 0
  /// resolves any conflicts that surface; other nodes discard theirs
  /// (a resolution dominates both branches once it propagates, so one
  /// resolver is enough and concurrent resolutions cannot ping-pong).
  bool Quiesce(bool resolve_conflicts) {
    for (int attempt = 0; attempt < 300; ++attempt) {
      for (NodeId i = 0; i < kNodes; ++i) {
        for (NodeId p = 0; p < kNodes; ++p) {
          if (p != i) (void)servers_[i]->PullFrom(p);
        }
      }
      for (NodeId i = 0; i < kNodes; ++i) {
        std::vector<ConflictEvent> conflicts = servers_[i]->TakeConflicts();
        if (!resolve_conflicts || i != 0) continue;
        for (const ConflictEvent& c : conflicts) {
          // Failures are expected (stale vector after another adoption);
          // the next round re-reports anything still concurrent.
          (void)servers_[0]->ResolveConflict(c.item_name, c.remote_vv,
                                             "resolved:" + c.item_name);
        }
      }
      if (Converged()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }

  bool Converged() {
    VersionVector dbvv0;
    servers_[0]->WithReplica(
        [&dbvv0](const ShardedReplica& r) { dbvv0 = r.AggregateDbvv(); });
    for (NodeId i = 1; i < kNodes; ++i) {
      bool equal = false;
      servers_[i]->WithReplica([&dbvv0, &equal](const ShardedReplica& r) {
        equal = (r.AggregateDbvv() == dbvv0);
      });
      if (!equal) return false;
    }
    auto listing0 = servers_[0]->Scan("");
    for (NodeId i = 1; i < kNodes; ++i) {
      if (servers_[i]->Scan("") != listing0) return false;
    }
    return true;
  }

  void CheckInvariantsEverywhere() {
    for (auto& s : servers_) {
      s->WithReplica([](const ShardedReplica& r) {
        EXPECT_TRUE(r.CheckInvariants().ok());
      });
    }
  }

 private:
  net::InProcHub hub_;
  net::InProcTransport transport_;
  std::vector<std::unique_ptr<ReplicaServer>> servers_;
};

/// A value is torn if it is not exactly "<key>=<tag>" for its key.
void AssertUntorn(const std::string& key, const std::string& value) {
  ASSERT_EQ(value.rfind(key + "=", 0), 0u)
      << "torn read: key '" << key << "' returned '" << value << "'";
}

TEST(ServerStressTest, DisjointWritersConvergeWithoutConflicts) {
  constexpr int kWritersPerNode = 2;
  constexpr int kUpdatesPerWriter = 150;
  StressCluster cluster(/*num_shards=*/16, /*ae_workers=*/2);

  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> writers;
  for (NodeId node = 0; node < kNodes; ++node) {
    for (int w = 0; w < kWritersPerNode; ++w) {
      writers.emplace_back([&cluster, node, w] {
        ReplicaClient client(&cluster.transport(), node);
        std::string prefix =
            "n" + std::to_string(node) + "w" + std::to_string(w) + "-";
        for (int u = 0; u < kUpdatesPerWriter; ++u) {
          std::string key = prefix + std::to_string(u % 10);
          ASSERT_TRUE(
              client.Update(key, key + "=" + std::to_string(u)).ok());
        }
      });
    }
  }
  std::thread reader([&cluster, &stop_readers] {
    ReplicaClient client(&cluster.transport(), 1);
    while (!stop_readers.load()) {
      auto v = client.Read("n0w0-3");
      if (v.ok()) AssertUntorn("n0w0-3", *v);
      auto listed = client.Scan("n2", 5);
      if (listed.ok()) {
        for (const auto& [key, value] : *listed) AssertUntorn(key, value);
      }
      (void)client.Stats();
    }
  });

  for (auto& t : writers) t.join();
  stop_readers.store(true);
  reader.join();

  EXPECT_TRUE(cluster.Quiesce(/*resolve_conflicts=*/false));
  cluster.CheckInvariantsEverywhere();
  for (NodeId i = 0; i < kNodes; ++i) {
    cluster.server(i).WithReplica([](const ShardedReplica& r) {
      // All six writers' key ranges present, and the workload was
      // conflict-free by construction.
      EXPECT_EQ(r.TotalItems(), 3u * 2u * 10u);
      EXPECT_EQ(r.TotalStats().conflicts_detected, 0u);
    });
  }
}

TEST(ServerStressTest, OverlappingWritersConflictAndResolve) {
  constexpr int kUpdatesPerWriter = 60;
  constexpr int kSharedKeys = 5;
  StressCluster cluster(/*num_shards=*/16, /*ae_workers=*/2);

  // Every node hammers the same five keys while anti-entropy gossips the
  // concurrent versions around: cross-node conflicts are guaranteed.
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> writers;
  for (NodeId node = 0; node < kNodes; ++node) {
    writers.emplace_back([&cluster, node] {
      ReplicaClient client(&cluster.transport(), node);
      for (int u = 0; u < kUpdatesPerWriter; ++u) {
        std::string key = "shared-" + std::to_string(u % kSharedKeys);
        std::string tag = "n" + std::to_string(node) + "u" + std::to_string(u);
        ASSERT_TRUE(client.Update(key, key + "=" + tag).ok());
      }
    });
  }
  std::thread reader([&cluster, &stop_readers] {
    ReplicaClient client(&cluster.transport(), 2);
    while (!stop_readers.load()) {
      for (int k = 0; k < kSharedKeys; ++k) {
        std::string key = "shared-" + std::to_string(k);
        auto v = client.Read(key);
        if (v.ok()) {
          // Any complete write (or a complete resolution) is fine; a
          // mixture of two writes is not.
          if (v->rfind("resolved:", 0) != 0) AssertUntorn(key, *v);
        }
      }
    }
  });

  for (auto& t : writers) t.join();
  stop_readers.store(true);
  reader.join();

  // A one-core scheduler can serialize the writers so thoroughly that
  // gossip orders every version — a legal, conflict-free outcome that
  // would make the assertion below flaky. Pin it: with the background
  // gossip stopped, two writes to a fresh key are concurrent by
  // construction, so quiescing must detect at least that conflict.
  cluster.StopAntiEntropy();
  {
    ReplicaClient c0(&cluster.transport(), 0);
    ReplicaClient c1(&cluster.transport(), 1);
    ASSERT_TRUE(c0.Update("shared-seeded", "shared-seeded=n0").ok());
    ASSERT_TRUE(c1.Update("shared-seeded", "shared-seeded=n1").ok());
  }

  EXPECT_TRUE(cluster.Quiesce(/*resolve_conflicts=*/true));
  cluster.CheckInvariantsEverywhere();
  uint64_t conflicts = 0;
  for (NodeId i = 0; i < kNodes; ++i) {
    cluster.server(i).WithReplica([&conflicts](const ShardedReplica& r) {
      EXPECT_EQ(r.TotalItems(), static_cast<size_t>(kSharedKeys) + 1);
      conflicts += r.TotalStats().conflicts_detected;
    });
  }
  // The whole point of the overlap: the protocol must have noticed.
  EXPECT_GT(conflicts, 0u);
}

}  // namespace
}  // namespace epidemic::server
