// Wire-robustness: a frame of every message type (tags 1-18), truncated at
// every byte boundary, must come back from Decode as a clean Status error —
// never a crash, never an out-of-range read (the ASan/UBSan CI jobs run
// this test under both sanitizers), and never a silent success.

#include <string>
#include <vector>

#include "core/wire.h"
#include "gtest/gtest.h"
#include "net/codec.h"
#include "vv/version_vector.h"

namespace epidemic {
namespace {

VersionVector MakeVv() {
  VersionVector vv(3);
  vv[0] = 7;
  vv[1] = 0;
  vv[2] = 300;  // two-byte varint, so truncation can split it
  return vv;
}

PropagationResponse MakePropagationResponse() {
  PropagationResponse resp;
  resp.tails.resize(3);
  resp.tails[0].push_back(WireLogRecord{"k0", 7});
  resp.tails[2].push_back(WireLogRecord{"k0", 299});
  resp.tails[2].push_back(WireLogRecord{"k1", 300});
  resp.items.push_back(WireItem{"k0", "value-zero", false, MakeVv()});
  resp.items.push_back(WireItem{"k1", "", true, MakeVv()});
  return resp;
}

/// A populated v3 segment body (optionally LZ77-compressed) over the same
/// sample response, with the base chosen to dominate every item IVV.
std::string EncodeV3SegmentBody(bool compressed) {
  PropagationResponse resp = MakePropagationResponse();
  if (compressed) resp.items[0].value = std::string(2048, 'x');
  PropagationResponseView view;
  wire::MakeResponseView(resp, &view, /*fill_tail_indices=*/true);
  VersionVector base(3);
  base[0] = 100;
  base[1] = 100;
  base[2] = 1000;
  wire::V3SegmentOptions opts;
  opts.compress = compressed;
  opts.min_compress_bytes = 16;
  std::string body;
  wire::EncodeShardSegmentBodyV3(view, base, opts, nullptr, &body);
  return body;
}

// One fully populated representative of every net::Message alternative, in
// wire-tag order 1..18.
std::vector<net::Message> RepresentativeMessages() {
  std::vector<net::Message> msgs;
  msgs.push_back(PropagationRequest{2, MakeVv()});      // tag 1
  msgs.push_back(MakePropagationResponse());            // tag 2
  msgs.push_back(OobRequest{1, "k0"});                  // tag 3
  msgs.push_back(OobResponse{true, "k0", "v", false, MakeVv()});  // tag 4
  msgs.push_back(net::ClientUpdateRequest{"k0", "value"});        // tag 5
  msgs.push_back(net::ClientReadRequest{"k0"});         // tag 6
  msgs.push_back(net::ClientOobFetchRequest{2, "k0"});  // tag 7
  msgs.push_back(net::ClientReply{1, "payload"});       // tag 8
  msgs.push_back(net::ClientDeleteRequest{"k0"});       // tag 9
  msgs.push_back(net::ClientStatsRequest{});            // tag 10
  msgs.push_back(net::ClientScanRequest{"k", 128});     // tag 11
  msgs.push_back(net::ClientSyncRequest{1});            // tag 12
  msgs.push_back(net::ClientCheckpointRequest{});       // tag 13

  ShardedPropagationRequest sharded_req;                // tag 14
  sharded_req.requester = 2;
  sharded_req.shard_dbvvs = {MakeVv(), MakeVv()};
  msgs.push_back(sharded_req);

  ShardedPropagationResponse sharded_resp;              // tag 15
  sharded_resp.num_shards = 2;
  sharded_resp.segments.push_back(ShardedPropagationSegment{
      0, wire::EncodeShardSegmentBody(MakePropagationResponse())});
  sharded_resp.segments.push_back(
      ShardedPropagationSegment{1, wire::EncodeShardSegmentBody({})});
  msgs.push_back(sharded_resp);

  msgs.push_back(net::ClientResetStatsRequest{});       // tag 16

  ShardedPropagationRequest sharded_req_v3 = sharded_req;  // tag 17
  sharded_req_v3.wire_version = kWireV3;
  sharded_req_v3.flags = kPropFlagAcceptCompressed;
  msgs.push_back(sharded_req_v3);

  ShardedPropagationResponse sharded_resp_v3;           // tag 18
  sharded_resp_v3.wire_version = kWireV3;
  sharded_resp_v3.num_shards = 2;
  sharded_resp_v3.segments.push_back(
      ShardedPropagationSegment{0, EncodeV3SegmentBody(false)});
  sharded_resp_v3.segments.push_back(
      ShardedPropagationSegment{1, EncodeV3SegmentBody(true)});
  msgs.push_back(sharded_resp_v3);
  return msgs;
}

TEST(WireTruncationTest, EveryPrefixOfEveryMessageIsRejected) {
  const std::vector<net::Message> msgs = RepresentativeMessages();
  ASSERT_EQ(msgs.size(), 18u);
  for (size_t m = 0; m < msgs.size(); ++m) {
    const std::string frame = net::Encode(msgs[m]);
    ASSERT_FALSE(frame.empty());
    // The full frame must round-trip to the same alternative.
    auto full = net::Decode(frame);
    ASSERT_TRUE(full.ok()) << "message " << m << ": " <<
        full.status().message();
    EXPECT_EQ(full->index(), msgs[m].index()) << "message " << m;
    // Every strict prefix must be rejected with a clean error.
    for (size_t cut = 0; cut < frame.size(); ++cut) {
      auto r = net::Decode(std::string_view(frame.data(), cut));
      EXPECT_FALSE(r.ok())
          << "message " << m << " decoded OK from a " << cut << "-byte prefix"
          << " of its " << frame.size() << "-byte frame";
    }
  }
}

// The opaque per-shard segment bodies of a sharded reply are decoded by a
// separate entry point (under the shard's lock); they get the same
// treatment.
TEST(WireTruncationTest, EveryPrefixOfShardSegmentBodyIsRejected) {
  const std::string body = wire::EncodeShardSegmentBody(
      MakePropagationResponse());
  ASSERT_FALSE(body.empty());
  ASSERT_TRUE(wire::DecodeShardSegmentBody(body).ok());
  for (size_t cut = 0; cut < body.size(); ++cut) {
    auto r = wire::DecodeShardSegmentBody(
        std::string_view(body.data(), cut));
    EXPECT_FALSE(r.ok()) << "segment body decoded OK from a " << cut
                         << "-byte prefix of " << body.size() << " bytes";
  }
}

// Flipping the tag byte to values outside 1..18 must be rejected cleanly.
TEST(WireTruncationTest, UnknownTagIsRejected) {
  std::string frame = net::Encode(net::ClientReadRequest{"k0"});
  for (int tag : {0, 19, 42, 255}) {
    frame[0] = static_cast<char>(tag);
    auto r = net::Decode(frame);
    EXPECT_FALSE(r.ok()) << "tag " << tag << " decoded OK";
  }
}

// v3 segment bodies — plain and compressed — get the same every-prefix
// treatment through their zero-copy decoder.
TEST(WireTruncationTest, EveryPrefixOfV3SegmentBodyIsRejected) {
  for (bool compressed : {false, true}) {
    const std::string body = EncodeV3SegmentBody(compressed);
    ASSERT_FALSE(body.empty());
    wire::SegmentViewStorage storage;
    PropagationResponseView view;
    ASSERT_TRUE(wire::DecodeShardSegmentBodyV3(body, &storage, &view).ok());
    for (size_t cut = 0; cut < body.size(); ++cut) {
      Status s = wire::DecodeShardSegmentBodyV3(
          std::string_view(body.data(), cut), &storage, &view);
      EXPECT_FALSE(s.ok())
          << (compressed ? "compressed" : "plain") << " v3 segment body "
          << "decoded OK from a " << cut << "-byte prefix of " << body.size()
          << " bytes";
    }
  }
}

}  // namespace
}  // namespace epidemic
