// Stability-frontier tracking (extension): a node passively learns peers'
// DBVVs from the propagation requests they send and exposes which updates
// are known replicated everywhere.

#include <gtest/gtest.h>

#include "core/replica.h"

namespace epidemic {
namespace {

VersionVector Vv(std::vector<UpdateCount> counts) {
  return VersionVector(std::move(counts));
}

TEST(StabilityTest, FrontierStartsAtZero) {
  Replica r(0, 3);
  ASSERT_TRUE(r.Update("x", "v").ok());
  // Nobody has told us anything: nothing is stable.
  EXPECT_EQ(r.StabilityFrontier(), Vv({0, 0, 0}));
  EXPECT_FALSE(r.IsStable(*r.FindItem("x")));
  EXPECT_EQ(r.CountStable().stable_items, 0u);
}

TEST(StabilityTest, FrontierAdvancesAsPeersReport) {
  Replica a(0, 3), b(1, 3), c(2, 3);
  ASSERT_TRUE(a.Update("x", "v").ok());

  // b pulls from a: a learns b's (empty) DBVV — frontier still zero.
  ASSERT_TRUE(PropagateOnce(a, b).ok());
  EXPECT_EQ(a.StabilityFrontier(), Vv({0, 0, 0}));

  // c pulls from b, then both pull from a again: now their requests carry
  // DBVVs that include a's update.
  ASSERT_TRUE(PropagateOnce(b, c).ok());
  ASSERT_TRUE(PropagateOnce(a, b).ok());
  ASSERT_TRUE(PropagateOnce(a, c).ok());
  EXPECT_EQ(a.StabilityFrontier(), Vv({1, 0, 0}));
  EXPECT_TRUE(a.IsStable(*a.FindItem("x")));
  EXPECT_EQ(a.CountStable().stable_items, 1u);
}

TEST(StabilityTest, UnstableWhileAnyPeerLags) {
  Replica a(0, 3), b(1, 3), c(2, 3);
  ASSERT_TRUE(a.Update("x", "v").ok());
  ASSERT_TRUE(PropagateOnce(a, b).ok());
  ASSERT_TRUE(PropagateOnce(a, b).ok());  // b reports knowledge of x
  // c never talked to a: x cannot be declared stable.
  EXPECT_FALSE(a.IsStable(*a.FindItem("x")));
}

TEST(StabilityTest, StableTombstonesCounted) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(a.Update("keep", "v").ok());
  ASSERT_TRUE(a.Delete("gone").ok());
  ASSERT_TRUE(PropagateOnce(a, b).ok());
  ASSERT_TRUE(PropagateOnce(a, b).ok());  // second pull reports knowledge
  auto info = a.CountStable();
  EXPECT_EQ(info.stable_items, 2u);
  EXPECT_EQ(info.stable_tombstones, 1u);
}

TEST(StabilityTest, FresherUpdateResetsStability) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(a.Update("x", "v1").ok());
  ASSERT_TRUE(PropagateOnce(a, b).ok());
  ASSERT_TRUE(PropagateOnce(a, b).ok());
  ASSERT_TRUE(a.IsStable(*a.FindItem("x")));
  // A new local update moves the item above the frontier again.
  ASSERT_TRUE(a.Update("x", "v2").ok());
  EXPECT_FALSE(a.IsStable(*a.FindItem("x")));
}

TEST(StabilityTest, LastKnownDbvvExposed) {
  Replica a(0, 2), b(1, 2);
  ASSERT_TRUE(b.Update("y", "w").ok());
  ASSERT_TRUE(PropagateOnce(a, b).ok());  // b's request carries {0,1}
  EXPECT_EQ(a.LastKnownDbvvOf(1), Vv({0, 1}));
  EXPECT_EQ(a.LastKnownDbvvOf(0), Vv({0, 0}));  // never set for self
}

}  // namespace
}  // namespace epidemic
