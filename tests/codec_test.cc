#include "net/codec.h"

#include <gtest/gtest.h>

#include <string>
#include <variant>

namespace epidemic::net {
namespace {

VersionVector Vv(std::vector<UpdateCount> counts) {
  return VersionVector(std::move(counts));
}

TEST(CodecTest, VersionVectorRoundTrip) {
  ByteWriter w;
  EncodeVersionVector(&w, Vv({0, 1, 1234567890123ull}));
  ByteReader r(w.data());
  auto vv = DecodeVersionVector(&r);
  ASSERT_TRUE(vv.ok());
  EXPECT_EQ(*vv, Vv({0, 1, 1234567890123ull}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(CodecTest, EmptyVersionVector) {
  ByteWriter w;
  EncodeVersionVector(&w, VersionVector());
  ByteReader r(w.data());
  auto vv = DecodeVersionVector(&r);
  ASSERT_TRUE(vv.ok());
  EXPECT_EQ(vv->size(), 0u);
}

TEST(CodecTest, PropagationRequestRoundTrip) {
  PropagationRequest req;
  req.requester = 3;
  req.dbvv = Vv({5, 0, 9, 2});
  auto decoded = Decode(Encode(Message(req)));
  ASSERT_TRUE(decoded.ok());
  auto* out = std::get_if<PropagationRequest>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->requester, 3u);
  EXPECT_EQ(out->dbvv, req.dbvv);
}

TEST(CodecTest, YouAreCurrentResponseRoundTrip) {
  PropagationResponse resp;
  resp.you_are_current = true;
  auto decoded = Decode(Encode(Message(resp)));
  ASSERT_TRUE(decoded.ok());
  auto* out = std::get_if<PropagationResponse>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->you_are_current);
  EXPECT_TRUE(out->tails.empty());
  EXPECT_TRUE(out->items.empty());
}

TEST(CodecTest, FullPropagationResponseRoundTrip) {
  PropagationResponse resp;
  resp.you_are_current = false;
  resp.tails.resize(3);
  resp.tails[0].push_back(WireLogRecord{"alpha", 7});
  resp.tails[2].push_back(WireLogRecord{"beta", 1});
  resp.tails[2].push_back(WireLogRecord{"alpha", 9});
  resp.items.push_back(WireItem{"alpha", std::string("\x00\x01", 2),
                                /*deleted=*/false, Vv({1, 0, 2})});
  resp.items.push_back(WireItem{"beta", "", /*deleted=*/true, Vv({0, 0, 1})});

  auto decoded = Decode(Encode(Message(resp)));
  ASSERT_TRUE(decoded.ok());
  auto* out = std::get_if<PropagationResponse>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_FALSE(out->you_are_current);
  ASSERT_EQ(out->tails.size(), 3u);
  EXPECT_TRUE(out->tails[1].empty());
  ASSERT_EQ(out->tails[2].size(), 2u);
  EXPECT_EQ(out->tails[2][1].item_name, "alpha");
  EXPECT_EQ(out->tails[2][1].seq, 9u);
  ASSERT_EQ(out->items.size(), 2u);
  EXPECT_EQ(out->items[0].value, std::string("\x00\x01", 2));
  EXPECT_FALSE(out->items[0].deleted);
  EXPECT_EQ(out->items[0].ivv, Vv({1, 0, 2}));
  EXPECT_EQ(out->items[1].value, "");
  EXPECT_TRUE(out->items[1].deleted);
}

TEST(CodecTest, OobRequestRoundTrip) {
  OobRequest req{2, "hot-item"};
  auto decoded = Decode(Encode(Message(req)));
  ASSERT_TRUE(decoded.ok());
  auto* out = std::get_if<OobRequest>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->requester, 2u);
  EXPECT_EQ(out->item_name, "hot-item");
}

TEST(CodecTest, OobResponseFoundRoundTrip) {
  OobResponse resp;
  resp.found = true;
  resp.item_name = "x";
  resp.value = "payload";
  resp.ivv = Vv({3, 4});
  auto decoded = Decode(Encode(Message(resp)));
  ASSERT_TRUE(decoded.ok());
  auto* out = std::get_if<OobResponse>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->found);
  EXPECT_EQ(out->value, "payload");
  EXPECT_EQ(out->ivv, Vv({3, 4}));
}

TEST(CodecTest, OobResponseNotFoundOmitsBody) {
  OobResponse resp;
  resp.found = false;
  resp.item_name = "ghost";
  std::string encoded = Encode(Message(resp));
  auto decoded = Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  auto* out = std::get_if<OobResponse>(&*decoded);
  ASSERT_NE(out, nullptr);
  EXPECT_FALSE(out->found);
  EXPECT_EQ(out->item_name, "ghost");
  EXPECT_TRUE(out->value.empty());
}

TEST(CodecTest, ClientMessagesRoundTrip) {
  {
    auto decoded =
        Decode(Encode(Message(ClientUpdateRequest{"item", "value"})));
    ASSERT_TRUE(decoded.ok());
    auto* out = std::get_if<ClientUpdateRequest>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->item_name, "item");
    EXPECT_EQ(out->value, "value");
  }
  {
    auto decoded = Decode(Encode(Message(ClientReadRequest{"item"})));
    ASSERT_TRUE(decoded.ok());
    ASSERT_NE(std::get_if<ClientReadRequest>(&*decoded), nullptr);
  }
  {
    auto decoded = Decode(Encode(Message(ClientOobFetchRequest{4, "item"})));
    ASSERT_TRUE(decoded.ok());
    auto* out = std::get_if<ClientOobFetchRequest>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->from_peer, 4u);
  }
  {
    auto decoded = Decode(Encode(Message(ClientReply{7, "oops"})));
    ASSERT_TRUE(decoded.ok());
    auto* out = std::get_if<ClientReply>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->code, 7);
    EXPECT_EQ(out->payload, "oops");
  }
}

TEST(CodecTest, StatsAndScanMessagesRoundTrip) {
  {
    auto decoded = Decode(Encode(Message(ClientStatsRequest{})));
    ASSERT_TRUE(decoded.ok());
    EXPECT_NE(std::get_if<ClientStatsRequest>(&*decoded), nullptr);
  }
  {
    auto decoded = Decode(Encode(Message(ClientScanRequest{"pre", 42})));
    ASSERT_TRUE(decoded.ok());
    auto* out = std::get_if<ClientScanRequest>(&*decoded);
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(out->prefix, "pre");
    EXPECT_EQ(out->limit, 42u);
  }
}

TEST(CodecTest, ScanListingRoundTrip) {
  std::vector<std::pair<std::string, std::string>> items = {
      {"a", "1"}, {"b", ""}, {"c", std::string("\x00\x01", 2)}};
  auto decoded = DecodeScanListing(EncodeScanListing(items));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, items);

  auto empty = DecodeScanListing(EncodeScanListing({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(CodecTest, ScanListingTruncationRejected) {
  std::string payload = EncodeScanListing({{"name", "value"}});
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeScanListing(payload.substr(0, cut)).ok()) << cut;
  }
}

TEST(CodecTest, EmptyFrameRejected) {
  EXPECT_TRUE(Decode("").status().IsCorruption());
}

TEST(CodecTest, UnknownTagRejected) {
  std::string frame(1, '\x7f');
  EXPECT_TRUE(Decode(frame).status().IsCorruption());
}

TEST(CodecTest, TrailingBytesRejected) {
  std::string frame = Encode(Message(ClientReadRequest{"x"}));
  frame += "junk";
  EXPECT_TRUE(Decode(frame).status().IsCorruption());
}

// Truncation fuzzing: every strict prefix of a valid frame must decode to
// an error, never crash or succeed.
class TruncationTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TruncationTest, EveryPrefixFailsCleanly) {
  PropagationResponse resp;
  resp.you_are_current = false;
  resp.tails.resize(2);
  resp.tails[0].push_back(WireLogRecord{"item-with-a-long-name", 12345});
  resp.items.push_back(WireItem{"item-with-a-long-name", "some value bytes",
                                /*deleted=*/false, Vv({9, 8})});
  std::string frame = Encode(Message(resp));

  size_t cut = GetParam();
  if (cut >= frame.size()) GTEST_SKIP() << "prefix length beyond frame";
  auto decoded = Decode(frame.substr(0, cut));
  EXPECT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

INSTANTIATE_TEST_SUITE_P(Prefixes, TruncationTest,
                         ::testing::Range(size_t{0}, size_t{60}));

TEST(CodecTest, AbsurdVersionVectorSizeRejected) {
  // Hand-craft a propagation request claiming a gigantic DBVV.
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(MessageType::kPropagationRequest));
  w.PutVarint64(0);              // requester
  w.PutVarint64(1ull << 40);     // absurd vv length
  EXPECT_TRUE(Decode(w.data()).status().IsCorruption());
}

}  // namespace
}  // namespace epidemic::net
