#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "net/inproc_transport.h"
#include "net/tcp_transport.h"

namespace epidemic::net {
namespace {

/// Echo-with-prefix handler used by all transport tests.
class EchoHandler : public RequestHandler {
 public:
  explicit EchoHandler(std::string prefix) : prefix_(std::move(prefix)) {}
  std::string HandleRequest(std::string_view request) override {
    ++calls_;
    return prefix_ + std::string(request);
  }
  int calls() const { return calls_.load(); }

 private:
  std::string prefix_;
  std::atomic<int> calls_{0};  // handlers may run on connection threads
};

// ---------------------------------------------------------------------------
// In-process hub.

TEST(InProcTest, DispatchesToRegisteredHandler) {
  InProcHub hub(2);
  EchoHandler h0("n0:"), h1("n1:");
  hub.Register(0, &h0);
  hub.Register(1, &h1);

  InProcTransport transport(&hub);
  auto r = transport.Call(1, "ping");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "n1:ping");
  EXPECT_EQ(h1.calls(), 1);
  EXPECT_EQ(h0.calls(), 0);
}

TEST(InProcTest, UnregisteredNodeUnavailable) {
  InProcHub hub(2);
  InProcTransport transport(&hub);
  EXPECT_TRUE(transport.Call(0, "x").status().IsUnavailable());
}

TEST(InProcTest, OutOfRangeNodeRejected) {
  InProcHub hub(2);
  InProcTransport transport(&hub);
  EXPECT_TRUE(transport.Call(9, "x").status().IsInvalidArgument());
}

TEST(InProcTest, DownNodeUnavailableAndRecovers) {
  InProcHub hub(2);
  EchoHandler h("n:");
  hub.Register(1, &h);
  InProcTransport transport(&hub);

  hub.SetNodeUp(1, false);
  EXPECT_FALSE(hub.IsNodeUp(1));
  EXPECT_TRUE(transport.Call(1, "x").status().IsUnavailable());

  hub.SetNodeUp(1, true);
  EXPECT_TRUE(transport.Call(1, "x").ok());
}

TEST(InProcTest, ConcurrentCallsSerialized) {
  InProcHub hub(1);
  EchoHandler h("");
  hub.Register(0, &h);
  InProcTransport transport(&hub);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&transport] {
      for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(transport.Call(0, "x").ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.calls(), 400);
}

// ---------------------------------------------------------------------------
// TCP transport.

TEST(TcpTest, StartStopIdempotent) {
  EchoHandler h("");
  TcpServer server(&h);
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_GT(server.port(), 0);
  EXPECT_TRUE(server.Start(0).IsFailedPrecondition());
  server.Stop();
  server.Stop();  // safe to repeat
}

TEST(TcpTest, RequestResponseRoundTrip) {
  EchoHandler h("srv:");
  TcpServer server(&h);
  ASSERT_TRUE(server.Start(0).ok());

  TcpTransport transport(1);
  transport.SetPeerPort(0, server.port());
  auto r = transport.Call(0, "hello");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "srv:hello");
  server.Stop();
}

TEST(TcpTest, LargePayloadRoundTrip) {
  EchoHandler h("");
  TcpServer server(&h);
  ASSERT_TRUE(server.Start(0).ok());
  TcpTransport transport(1);
  transport.SetPeerPort(0, server.port());

  std::string big(1 << 20, 'q');  // 1 MiB
  auto r = transport.Call(0, big);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), big.size());
  EXPECT_EQ(*r, big);
  server.Stop();
}

TEST(TcpTest, BinaryPayloadPreserved) {
  EchoHandler h("");
  TcpServer server(&h);
  ASSERT_TRUE(server.Start(0).ok());
  TcpTransport transport(1);
  transport.SetPeerPort(0, server.port());

  std::string binary;
  for (int i = 0; i < 256; ++i) binary.push_back(static_cast<char>(i));
  auto r = transport.Call(0, binary);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, binary);
  server.Stop();
}

TEST(TcpTest, UnconfiguredPeerRejected) {
  TcpTransport transport(2);
  EXPECT_TRUE(transport.Call(0, "x").status().IsInvalidArgument());
  EXPECT_TRUE(transport.Call(5, "x").status().IsInvalidArgument());
}

TEST(TcpTest, ConnectionRefusedIsUnavailable) {
  TcpTransport transport(1);
  transport.SetPeerPort(0, 1);  // almost certainly nothing listens on :1
  EXPECT_TRUE(transport.Call(0, "x").status().IsUnavailable());
}

TEST(TcpTest, ManySequentialCalls) {
  EchoHandler h("");
  TcpServer server(&h);
  ASSERT_TRUE(server.Start(0).ok());
  TcpTransport transport(1);
  transport.SetPeerPort(0, server.port());
  for (int i = 0; i < 50; ++i) {
    auto r = transport.Call(0, "m" + std::to_string(i));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, "m" + std::to_string(i));
  }
  EXPECT_EQ(h.calls(), 50);
  server.Stop();
}

TEST(TcpTest, ConcurrentClients) {
  EchoHandler h("");
  TcpServer server(&h);
  ASSERT_TRUE(server.Start(0).ok());

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&server] {
      TcpTransport transport(1);
      transport.SetPeerPort(0, server.port());
      for (int i = 0; i < 25; ++i) {
        auto r = transport.Call(0, "x");
        ASSERT_TRUE(r.ok());
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.calls(), 100);
  server.Stop();
}

}  // namespace
}  // namespace epidemic::net
